#!/usr/bin/env bash
# Full verification pass: configure, build (warnings-as-errors), run the
# complete test suite, then every experiment bench and example.  This is
# the command CI (or a suspicious reviewer) runs.
#
#   scripts/check.sh                # regular pass
#   scripts/check.sh --asan         # additionally build + ctest under ASan/UBSan
#   scripts/check.sh --lint         # additionally run wrt_lint (+ clang-tidy
#                                   # and cppcheck when installed)
#   scripts/check.sh --bench-smoke  # build only, then run every bench with
#                                   # --smoke --json-dir and validate the
#                                   # emitted BENCH_*.json schema
#   scripts/check.sh --chaos-smoke  # build only, then run the fixed 16-seed
#                                   # wrt_chaos soak (FaultPlan chaos +
#                                   # recovery-SLO + invariant audit)
set -euo pipefail
cd "$(dirname "$0")/.."

WITH_ASAN=0
WITH_LINT=0
BENCH_SMOKE=0
CHAOS_SMOKE=0
for arg in "$@"; do
  case "$arg" in
    --asan) WITH_ASAN=1 ;;
    --lint) WITH_LINT=1 ;;
    --bench-smoke) BENCH_SMOKE=1 ;;
    --chaos-smoke) CHAOS_SMOKE=1 ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

# Reuse the generator of an existing build tree; prefer Ninja on a fresh one.
configure() {
  local dir="$1"; shift
  if [ -f "$dir/CMakeCache.txt" ]; then
    cmake -B "$dir" "$@"
  else
    cmake -B "$dir" -G Ninja "$@"
  fi
}

configure build
cmake --build build

if [ "$BENCH_SMOKE" = 1 ]; then
  echo "== bench smoke: BENCH_*.json emission + schema =="
  BENCH_JSON_DIR="${BENCH_JSON_DIR:-build/bench-json}"
  rm -rf "$BENCH_JSON_DIR"
  mkdir -p "$BENCH_JSON_DIR"
  for b in build/bench/bench_*; do
    echo "--- $(basename "$b")"
    "$b" --smoke --json-dir="$BENCH_JSON_DIR" > /dev/null
  done
  python3 scripts/validate_bench_json.py "$BENCH_JSON_DIR"
  echo "BENCH SMOKE PASSED"
  exit 0
fi

if [ "$CHAOS_SMOKE" = 1 ]; then
  echo "== chaos smoke: 16-seed fault-plan soak with recovery SLO =="
  # Fixed seed matrix (1..16, the wrt_chaos default): every run draws a
  # random FaultPlan from its seed, layers an ambient bursty channel, and
  # must reconverge within the analytic deadline with a clean invariant
  # audit.  Deterministic, so a failure here is a real regression.
  build/tools/wrt_chaos
  echo "CHAOS SMOKE PASSED"
  exit 0
fi

ctest --test-dir build --output-on-failure

if [ "$WITH_LINT" = 1 ]; then
  echo "== lint: wrt_lint =="
  build/tools/wrt_lint src

  # External analyzers are optional (not baked into every container); the
  # repo-specific linter above is the part that must always run and gate.
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "== lint: clang-tidy =="
    find src tools -name '*.cpp' -print0 |
      xargs -0 clang-tidy -p build --quiet
  else
    echo "== lint: clang-tidy not installed, skipping =="
  fi

  if command -v cppcheck >/dev/null 2>&1; then
    echo "== lint: cppcheck =="
    cppcheck --enable=warning,performance,portability --inline-suppr \
      --suppressions-list=scripts/cppcheck.suppressions \
      --error-exitcode=1 --quiet -I src src tools/wrt_lint.cpp
  else
    echo "== lint: cppcheck not installed, skipping =="
  fi
fi

if [ "$WITH_ASAN" = 1 ]; then
  echo "== ASan/UBSan build + tests =="
  SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  configure build-asan -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="$SAN_FLAGS" -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
  cmake --build build-asan
  ctest --test-dir build-asan --output-on-failure
fi

echo "== engine hot-path smoke =="
# Fixed-seed behaviour digest (deterministic) + a short throughput sample.
build/bench/bench_engine_hot_path --digest
build/bench/bench_engine_hot_path --benchmark_min_time=0.05 \
  --benchmark_filter='BM_HotPathSteadyState/32' > /dev/null

echo "== benches =="
for b in build/bench/bench_*; do
  [ "$(basename "$b")" = bench_engine_hot_path ] && continue  # smoke above
  echo "--- $(basename "$b")"
  "$b" > /dev/null
done

echo "== examples =="
for e in build/examples/*; do
  [ -f "$e" ] && [ -x "$e" ] || continue
  echo "--- $(basename "$e")"
  "$e" > /dev/null
done

echo "ALL CHECKS PASSED"
