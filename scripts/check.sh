#!/usr/bin/env bash
# Full verification pass: configure, build (warnings-as-errors), run the
# complete test suite, then every experiment bench and example.  This is
# the command CI (or a suspicious reviewer) runs.
#
#   scripts/check.sh                # regular pass
#   scripts/check.sh --asan         # additionally build + ctest under ASan/UBSan
#   scripts/check.sh --lint         # additionally run wrt_lint (+ clang-tidy
#                                   # and cppcheck when installed)
#   scripts/check.sh --bench-smoke  # build only, then run every bench with
#                                   # --smoke --json-dir and validate the
#                                   # emitted BENCH_*.json schema
#   scripts/check.sh --chaos-smoke  # build only, then run the fixed 16-seed
#                                   # wrt_chaos soak (FaultPlan chaos +
#                                   # recovery-SLO + invariant audit) plus
#                                   # the flapping-link RecoveryFsm A/B
#                                   # matrix (BENCH_recovery_fsm.json)
#   scripts/check.sh --voice-smoke  # build bench_voice_capacity only, run
#                                   # the short E16 sweep, validate its JSON
#                                   # and gate the WRT-vs-Aloha capacity
#                                   # ordering at the saturation cell
#   scripts/check.sh --federation-smoke
#                                   # build bench_federation only, then run
#                                   # its --determinism mode: same (seed, K)
#                                   # must digest identically for worker
#                                   # counts W in {1,2,8}
#   scripts/check.sh --tsan         # ThreadSanitizer build (build-tsan/) and
#                                   # the concurrency suite: K engines on K
#                                   # threads must be race-free AND digest
#                                   # bit-identical to their serial runs
set -euo pipefail
cd "$(dirname "$0")/.."

WITH_ASAN=0
WITH_LINT=0
WITH_TSAN=0
BENCH_SMOKE=0
CHAOS_SMOKE=0
FEDERATION_SMOKE=0
VOICE_SMOKE=0
for arg in "$@"; do
  case "$arg" in
    --asan) WITH_ASAN=1 ;;
    --lint) WITH_LINT=1 ;;
    --tsan) WITH_TSAN=1 ;;
    --bench-smoke) BENCH_SMOKE=1 ;;
    --chaos-smoke) CHAOS_SMOKE=1 ;;
    --federation-smoke) FEDERATION_SMOKE=1 ;;
    --voice-smoke) VOICE_SMOKE=1 ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

# Reuse the generator of an existing build tree; prefer Ninja on a fresh one.
configure() {
  local dir="$1"; shift
  if [ -f "$dir/CMakeCache.txt" ]; then
    cmake -B "$dir" "$@"
  else
    cmake -B "$dir" -G Ninja "$@"
  fi
}

if [ "$WITH_TSAN" = 1 ]; then
  echo "== TSan build + concurrency suite =="
  # Standalone mode (skips the regular build): builds only the test targets
  # that exercise threads, because a TSan pass over the serial suite spends
  # hours to probe nothing.  The shard smoke test is both the race probe
  # (engines flush telemetry into the shared registry while running) and
  # the determinism gate (parallel digests must equal serial digests).
  # test_concurrency also carries the federation determinism test: worker
  # threads post/drain the epoch mailboxes and flush telemetry while the
  # coordinator owns the buffer flips — the PR 8 race surface.
  TSAN_FLAGS="-fsanitize=thread -fno-omit-frame-pointer -g"
  configure build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="$TSAN_FLAGS" -DCMAKE_EXE_LINKER_FLAGS="$TSAN_FLAGS"
  cmake --build build-tsan --target test_concurrency test_telemetry test_sim
  export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
  build-tsan/tests/test_concurrency
  build-tsan/tests/test_telemetry
  build-tsan/tests/test_sim --gtest_filter='Replication*'
  echo "TSAN PASSED"
  exit 0
fi

if [ "$FEDERATION_SMOKE" = 1 ]; then
  echo "== federation smoke: worker-count determinism =="
  # Standalone mode: builds only the federation bench and runs its
  # determinism oracle (same (seed, K) -> same digest for W in {1,2,8}).
  # The full federation scaling run (1M+ stations) happens in the regular
  # bench pass below; this gate is the seconds-cheap CI version.
  configure build
  cmake --build build --target bench_federation
  build/bench/bench_federation --determinism
  echo "FEDERATION SMOKE PASSED"
  exit 0
fi

if [ "$VOICE_SMOKE" = 1 ]; then
  echo "== voice smoke: E16 capacity sweep + MOS ordering gate =="
  # Standalone mode: builds only the voice capacity bench, runs the short
  # sweep, validates the emitted JSON, and asserts the headline protocol
  # claim the full run demonstrates — WRT-Ring sustains strictly more
  # MOS-compliant calls than slotted Aloha at the N=32 saturation cell.
  configure build
  cmake --build build --target bench_voice_capacity
  VOICE_JSON_DIR="${VOICE_JSON_DIR:-build/voice-json}"
  rm -rf "$VOICE_JSON_DIR"
  mkdir -p "$VOICE_JSON_DIR"
  build/bench/bench_voice_capacity --smoke --json-dir="$VOICE_JSON_DIR" \
    > /dev/null
  python3 scripts/validate_bench_json.py "$VOICE_JSON_DIR"
  python3 - "$VOICE_JSON_DIR/BENCH_voice_capacity.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
metrics = {m["metric"]: m["value"] for m in doc["metrics"]}
wrt = metrics["wrt_clean_n32_compliant"]
aloha = metrics["aloha_clean_n32_compliant"]
assert wrt > aloha, f"expected WRT > Aloha at clean n=32, got {wrt} vs {aloha}"
print(f"voice gate: WRT {wrt:g} > Aloha {aloha:g} compliant calls at n=32")
PY
  echo "VOICE SMOKE PASSED"
  exit 0
fi

configure build
cmake --build build

if [ "$BENCH_SMOKE" = 1 ]; then
  echo "== bench smoke: BENCH_*.json emission + schema =="
  BENCH_JSON_DIR="${BENCH_JSON_DIR:-build/bench-json}"
  rm -rf "$BENCH_JSON_DIR"
  mkdir -p "$BENCH_JSON_DIR"
  for b in build/bench/bench_*; do
    echo "--- $(basename "$b")"
    "$b" --smoke --json-dir="$BENCH_JSON_DIR" > /dev/null
  done
  python3 scripts/validate_bench_json.py "$BENCH_JSON_DIR"
  echo "BENCH SMOKE PASSED"
  exit 0
fi

if [ "$CHAOS_SMOKE" = 1 ]; then
  echo "== chaos smoke: 16-seed fault-plan soak with recovery SLO =="
  # Fixed seed matrix (1..16, the wrt_chaos default): every run draws a
  # random FaultPlan from its seed, layers an ambient bursty channel, and
  # must reconverge within the analytic deadline with a clean invariant
  # audit.  Deterministic, so a failure here is a real regression.
  build/tools/wrt_chaos

  echo "== chaos smoke: 16-seed flapping-link matrix (RecoveryFsm A/B) =="
  # Every seed's flap-only plan runs twice — all-defaults recovery vs
  # guard+WTR+revertive — and the run gates on what the FSM must buy:
  # zero spurious cut-outs under the guard, strictly fewer ring
  # re-formations than baseline, and a p99 MTTR no worse.  The headline
  # numbers are published as schema-v1 BENCH_recovery_fsm.json.
  CHAOS_JSON_DIR=build/chaos_json
  rm -rf "$CHAOS_JSON_DIR"
  mkdir -p "$CHAOS_JSON_DIR"
  build/tools/wrt_chaos --flap-matrix --json-dir="$CHAOS_JSON_DIR"
  python3 scripts/validate_bench_json.py "$CHAOS_JSON_DIR"
  echo "CHAOS SMOKE PASSED"
  exit 0
fi

ctest --test-dir build --output-on-failure

if [ "$WITH_LINT" = 1 ]; then
  echo "== lint: wrt_lint =="
  # Everything that ships: library code, tools, benches and examples.
  # tests/ is exempt (fixtures under tests/lint/fixtures are deliberately
  # rule-violating inputs for the linter's own self-test).
  build/tools/wrt_lint src tools bench examples

  echo "== lint: suppression inventory =="
  # Fails on suppressions that name a rule wrt_lint does not implement.
  build/tools/wrt_lint --list-suppressions src tools bench examples

  # External analyzers are optional (not baked into every container); the
  # repo-specific linter above is the part that must always run and gate.
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "== lint: clang-tidy =="
    find src tools bench examples -name '*.cpp' -print0 |
      xargs -0 clang-tidy -p build --quiet
  else
    echo "== lint: clang-tidy not installed, skipping =="
  fi

  if command -v cppcheck >/dev/null 2>&1; then
    echo "== lint: cppcheck =="
    cppcheck --enable=warning,performance,portability --inline-suppr \
      --suppressions-list=scripts/cppcheck.suppressions \
      --error-exitcode=1 --quiet -I src src tools bench examples
  else
    echo "== lint: cppcheck not installed, skipping =="
  fi
fi

if [ "$WITH_ASAN" = 1 ]; then
  echo "== ASan/UBSan build + tests =="
  SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  configure build-asan -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="$SAN_FLAGS" -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
  cmake --build build-asan
  ctest --test-dir build-asan --output-on-failure
fi

echo "== engine hot-path smoke =="
# Fixed-seed behaviour digest (deterministic) + a short throughput sample.
build/bench/bench_engine_hot_path --digest
build/bench/bench_engine_hot_path --benchmark_min_time=0.05 \
  --benchmark_filter='BM_HotPathSteadyState/32' > /dev/null

echo "== benches =="
for b in build/bench/bench_*; do
  [ "$(basename "$b")" = bench_engine_hot_path ] && continue  # smoke above
  echo "--- $(basename "$b")"
  "$b" > /dev/null
done

echo "== examples =="
for e in build/examples/*; do
  [ -f "$e" ] && [ -x "$e" ] || continue
  echo "--- $(basename "$e")"
  "$e" > /dev/null
done

echo "ALL CHECKS PASSED"
