#!/usr/bin/env bash
# Full verification pass: configure, build (warnings-as-errors), run the
# complete test suite, then every experiment bench and example.  This is
# the command CI (or a suspicious reviewer) runs.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

echo "== benches =="
for b in build/bench/bench_*; do
  echo "--- $(basename "$b")"
  "$b" > /dev/null
done

echo "== examples =="
for e in build/examples/*; do
  [ -f "$e" ] && [ -x "$e" ] || continue
  echo "--- $(basename "$e")"
  "$e" > /dev/null
done

echo "ALL CHECKS PASSED"
