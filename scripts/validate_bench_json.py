#!/usr/bin/env python3
"""Validate BENCH_<name>.json files against the bench::Reporter schema.

Schema (bench/bench_common.hpp, schema_version 1):
  {
    "bench":          str, non-empty, matches the BENCH_<name>.json filename
    "schema_version": 1
    "git_rev":        str, non-empty
    "timestamp":      str, ISO-8601 UTC (YYYY-MM-DDTHH:MM:SSZ)
    "smoke":          bool
    "seeds":          list of non-negative ints
    "metrics":        non-empty list of {"metric": str, "value": number|null,
                                         "units": str}
  }

Usage: validate_bench_json.py FILE_OR_DIR [...]
A directory argument validates every BENCH_*.json inside it.  Exit 0 when all
files validate, 1 otherwise.
"""
import json
import pathlib
import re
import sys

TIMESTAMP_RE = re.compile(r"^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z$")


def validate(path: pathlib.Path) -> list:
    errors = []
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable or invalid JSON: {exc}"]
    if not isinstance(doc, dict):
        return ["top level is not an object"]

    def check(key, predicate, expect):
        if key not in doc:
            errors.append(f"missing key {key!r}")
        elif not predicate(doc[key]):
            errors.append(f"{key!r} is not {expect}: {doc[key]!r}")

    check("bench", lambda v: isinstance(v, str) and v, "a non-empty string")
    check("schema_version", lambda v: v == 1, "1")
    check("git_rev", lambda v: isinstance(v, str) and v, "a non-empty string")
    check("timestamp", lambda v: isinstance(v, str) and TIMESTAMP_RE.match(v),
          "an ISO-8601 UTC timestamp")
    check("smoke", lambda v: isinstance(v, bool), "a bool")
    check("seeds", lambda v: isinstance(v, list) and all(
        isinstance(s, int) and s >= 0 and not isinstance(s, bool) for s in v),
        "a list of non-negative ints")

    name = doc.get("bench")
    if isinstance(name, str) and path.name != f"BENCH_{name}.json":
        errors.append(f"filename {path.name} does not match bench name "
                      f"{name!r}")

    metrics = doc.get("metrics")
    if not isinstance(metrics, list) or not metrics:
        errors.append("'metrics' is not a non-empty list")
    else:
        for i, metric in enumerate(metrics):
            if not isinstance(metric, dict):
                errors.append(f"metrics[{i}] is not an object")
                continue
            if not (isinstance(metric.get("metric"), str) and metric["metric"]):
                errors.append(f"metrics[{i}].metric missing or empty")
            value = metric.get("value", "absent")
            if value == "absent":
                errors.append(f"metrics[{i}].value missing")
            elif value is not None and (isinstance(value, bool)
                                        or not isinstance(value, (int, float))):
                errors.append(f"metrics[{i}].value is not a number or null")
            if not isinstance(metric.get("units"), str):
                errors.append(f"metrics[{i}].units missing or not a string")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    files = []
    for arg in argv[1:]:
        path = pathlib.Path(arg)
        if path.is_dir():
            files.extend(sorted(path.glob("BENCH_*.json")))
        else:
            files.append(path)
    if not files:
        print("validate_bench_json: no BENCH_*.json files found", file=sys.stderr)
        return 1
    failed = 0
    for path in files:
        errors = validate(path)
        if errors:
            failed += 1
            for error in errors:
                print(f"{path}: {error}")
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
