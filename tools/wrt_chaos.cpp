// wrt_chaos: randomized fault-plan soak with a recovery SLO.
//
// For each seed this runner builds a 2-hop-range circle network plus a pool
// of parked joiner candidates, attaches a seed-randomized bursty
// Gilbert–Elliott channel (data + SAT + control), generates a survivable
// random FaultPlan (crashes, stalls, leaves, link degrades/breaks,
// partitions, one-shot SAT/handshake drops, forced joins — all healed
// before the final tenth of the horizon), applies it through the Scenario
// layer with the invariant auditor installed, and then holds the run to a
// recovery service-level objective:
//
//   * liveness   — at the horizon the SAT circulates, or the alive
//                  connectivity graph provably admits no ring;
//   * SLO        — detection latency (MTTD) stays within the analytic
//                  SAT_TIMER window (staleness + Theorem-1 timeout), and
//                  after forced rejoins every alive, reachable station is
//                  back in the ring within a bounded number of RAP rounds;
//   * integrity  — the auditor records zero violations, Engine::
//                  check_invariants() holds (including the frame-accounting
//                  identity: transmissions == delivered + losses + drops +
//                  in-flight), so nothing leaks across the fault storm.
//
//   $ build/tools/wrt_chaos                       # default 16-seed matrix
//   $ build/tools/wrt_chaos --seeds 7 --print-plan
//   $ build/tools/wrt_chaos --plan storm.fplan --seeds 1,2,3
//   $ build/tools/wrt_chaos --json > chaos.json
//
// --flap-matrix switches to the RecoveryFsm A/B experiment instead: every
// seed draws a flap-only plan (periodic link break/heal cycling, the
// classic ERPS stimulus) and runs it twice — once with the all-defaults
// recovery config (no guard, no WTR) and once with guard + WTR + revertive
// enabled.  The gates assert what the FSM is for: zero spurious cut-outs
// under the guard, strictly fewer ring re-formations than the baseline,
// and a p99 MTTR no worse.  --json-dir=DIR emits the comparison as
// schema-v1 BENCH_recovery_fsm.json (scripts/validate_bench_json.py).
//
// Exit status: 0 when every seed meets the SLO, 1 otherwise, 2 on usage
// errors.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <numbers>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "bench/bench_common.hpp"
#include "check/invariants.hpp"
#include "fault/fault_plan.hpp"
#include "fault/gilbert_elliott.hpp"
#include "phy/topology.hpp"
#include "ring/virtual_ring.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "wrtring/engine.hpp"
#include "wrtring/scenario.hpp"

namespace wrt {
namespace {

struct SeedResult {
  std::uint64_t seed = 0;
  bool passed = true;
  std::vector<std::string> failures;

  // Recovery metrics.
  double mttd_mean_slots = 0.0;
  double mttd_max_slots = 0.0;
  double mttr_mean_slots = 0.0;
  double mttr_max_slots = 0.0;
  std::uint64_t sat_losses = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t rebuilds = 0;
  std::uint64_t control_lost = 0;
  std::uint64_t join_retries = 0;
  std::uint64_t joins_abandoned = 0;
  std::uint64_t frames_lost_link = 0;
  std::uint64_t frames_lost_rebuild = 0;
  std::uint64_t frames_lost_churn = 0;
  std::uint64_t auditor_violations = 0;
  std::int64_t reconverge_slots = -1;  ///< horizon -> full membership
};

struct Options {
  std::vector<std::int64_t> seeds;
  std::size_t n = 12;
  std::size_t parked = 4;
  std::int64_t horizon_slots = 8000;
  std::size_t plan_events = 8;
  std::string plan_path;  ///< non-empty: fixed plan instead of random
  bool print_plan = false;
  bool json = false;

  // --flap-matrix mode (RecoveryFsm A/B experiment).
  bool flap_matrix = false;
  std::size_t flap_events = 4;
  std::int64_t guard_slots = 32;
  std::int64_t wtr_slots = 128;
};

phy::Topology circle_topology(std::size_t n) {
  const double radius = 10.0;
  const double chord =
      2.0 * radius * std::sin(std::numbers::pi / static_cast<double>(n));
  return phy::Topology(phy::placement::circle(n, radius),
                       phy::RadioParams{chord * 2.4, 0.0});
}

traffic::FlowSpec rt_flow(FlowId id, NodeId src, std::size_t n) {
  traffic::FlowSpec spec;
  spec.id = id;
  spec.src = src;
  spec.dst = static_cast<NodeId>((src + n / 2) % n);
  spec.cls = TrafficClass::kRealTime;
  spec.kind = traffic::ArrivalKind::kCbr;
  spec.period_slots = 40.0;
  return spec;
}

/// Seed-randomized ambient channel: mild bursty data loss everywhere, a
/// whiff of SAT and control loss so every recovery path stays exercised.
fault::ChannelConfig random_channel(std::uint64_t seed) {
  util::RngStream rng(seed, 0xC0FFEEu);
  fault::ChannelConfig channel;
  channel.data = fault::GeParams::bursty(
      0.005 + 0.02 * rng.uniform(),
      1.0 + std::floor(rng.uniform() * 16.0));
  channel.sat = fault::GeParams::iid(0.002 + 0.006 * rng.uniform());
  channel.control = fault::GeParams::iid(0.01 + 0.05 * rng.uniform());
  return channel;
}

SeedResult run_seed(std::uint64_t seed, const Options& options,
                    const fault::FaultPlan* fixed_plan) {
  SeedResult result;
  result.seed = seed;
  const auto fail = [&](std::string why) {
    result.passed = false;
    result.failures.push_back(std::move(why));
  };

  phy::Topology topology = circle_topology(options.n);
  std::vector<NodeId> parked;
  for (std::size_t i = 0; i < options.parked; ++i) {
    const phy::Vec2 base =
        topology.position(static_cast<NodeId>((i * 3) % options.n));
    const NodeId id = topology.add_node(base * 1.08);
    topology.set_alive(id, false);  // parked until the plan joins them
    parked.push_back(id);
  }

  wrtring::Config config;
  config.rap_policy = wrtring::RapPolicy::kRotating;
  config.auto_rejoin = true;
  config.channel = random_channel(seed);
  wrtring::Engine engine(&topology, config, seed);
  const auto init = engine.init();
  if (!init.ok()) {
    fail("init: " + init.error().message);
    return result;
  }
  for (NodeId n = 0; n < static_cast<NodeId>(options.n); ++n) {
    engine.add_source(rt_flow(n, n, options.n));
  }

  // The analytic recovery deadline for the largest ring this run can have:
  // SAT_TIMER staleness + Theorem-1 timeout, plus the modelled re-formation
  // downtime, plus one RAP.  Everything the SLO asserts scales from this.
  const std::int64_t bound0 = analysis::sat_time_bound(engine.ring_params());
  const std::int64_t rebuild_cost =
      config.rebuild_base_slots +
      config.rebuild_per_station_slots *
          static_cast<std::int64_t>(options.n + options.parked);
  const std::int64_t deadline_slots =
      4 * bound0 + rebuild_cost + config.t_rap_slots();

  fault::FaultPlan plan;
  if (fixed_plan != nullptr) {
    plan = *fixed_plan;
  } else {
    fault::FaultPlan::RandomOptions plan_options;
    plan_options.n_stations = options.n;
    plan_options.parked = parked;
    plan_options.horizon_slots = options.horizon_slots;
    plan_options.events = options.plan_events;
    plan = fault::FaultPlan::random(seed, plan_options);
  }
  if (options.print_plan && !options.json) {
    std::printf("# seed %llu\n%s\n",
                static_cast<unsigned long long>(seed),
                plan.to_text().c_str());
  }

  check::InvariantAuditor auditor(engine);
  auditor.install(engine, 64);

  wrtring::Scenario scenario;
  scenario.apply_plan(plan);
  (void)scenario.run(engine, topology, options.horizon_slots);

  // Liveness at the horizon: the plan healed every disturbance by 9/10 of
  // the horizon, so either the SAT circulates or no ring is possible.
  // The ambient channel keeps losing SATs forever, so a point-in-time state
  // sample can land mid-recovery; the SLO is "circulates again within the
  // analytic deadline", not "circulating at this exact slot".
  const auto circulating = [&] {
    return engine.sat_state() == wrtring::SatState::kInTransit ||
           engine.sat_state() == wrtring::SatState::kHeld;
  };
  const auto circulates_within = [&](std::int64_t budget) {
    for (std::int64_t i = 0; i < budget && !circulating(); ++i) {
      engine.step();
    }
    return circulating();
  };
  if (!circulates_within(deadline_slots)) {
    const auto attempt =
        ring::build_ring_over(topology, ring::largest_component(topology));
    if (attempt.ok()) {
      fail("SAT did not recover within " + std::to_string(deadline_slots) +
           " slots of the horizon despite a buildable ring");
    }
  }

  // Forced reconvergence: every alive station re-enters the ring (or
  // legitimately exhausts its join attempts) within a bounded number of
  // deadline windows.
  const std::int64_t reconverge_start = engine.now_slots();
  for (int round = 0; round < 8; ++round) {
    std::vector<NodeId> missing;
    for (NodeId n = 0; n < topology.node_count(); ++n) {
      if (topology.alive(n) && !engine.station_stalled(n) &&
          !engine.virtual_ring().contains(n)) {
        missing.push_back(n);
      }
    }
    if (missing.empty()) break;
    for (const NodeId n : missing) engine.request_join(n, {1, 1});
    engine.run_slots(deadline_slots);
  }
  result.reconverge_slots = engine.now_slots() - reconverge_start;
  for (NodeId n = 0; n < topology.node_count(); ++n) {
    if (topology.alive(n) && !engine.station_stalled(n) &&
        !engine.virtual_ring().contains(n)) {
      fail("station " + std::to_string(n) +
           " still outside the ring after forced rejoins");
    }
  }
  if (!circulates_within(deadline_slots)) {
    fail("SAT not circulating within " + std::to_string(deadline_slots) +
         " slots after the reconvergence tail");
  }

  // Detection SLO: a SAT_TIMER can be stale by up to one full rotation when
  // the loss happens, so MTTD is bounded by twice the Theorem-1 window
  // (plus the hop granularity).
  const auto& stats = engine.stats();
  result.sat_losses = stats.sat_losses_detected;
  result.recoveries = stats.sat_recoveries;
  result.rebuilds = stats.ring_rebuilds;
  result.control_lost = stats.control_messages_lost;
  result.join_retries = stats.join_retries;
  result.joins_abandoned = stats.joins_abandoned;
  result.frames_lost_link = stats.frames_lost_link;
  result.frames_lost_rebuild = stats.frames_lost_rebuild;
  result.frames_lost_churn = stats.frames_lost_churn;
  if (stats.sat_loss_detection_slots.count() > 0) {
    result.mttd_mean_slots = stats.sat_loss_detection_slots.mean();
    result.mttd_max_slots = stats.sat_loss_detection_slots.max();
    if (result.mttd_max_slots > static_cast<double>(2 * bound0 + 8)) {
      fail("MTTD " + std::to_string(result.mttd_max_slots) +
           " slots exceeds the analytic window " +
           std::to_string(2 * bound0 + 8));
    }
  }
  if (stats.recovery_total_slots.count() > 0) {
    result.mttr_mean_slots = stats.recovery_total_slots.mean();
    result.mttr_max_slots = stats.recovery_total_slots.max();
  }

  // Integrity: auditor clean, invariants (incl. the accounting identity).
  result.auditor_violations = auditor.total_violations();
  if (!auditor.clean()) {
    fail("auditor recorded " + std::to_string(auditor.total_violations()) +
         " violations (first: " + auditor.violations().front().check + ": " +
         auditor.violations().front().detail + ")");
  }
  if (const auto status = engine.check_invariants(); !status.ok()) {
    fail("check_invariants: " + status.error().message);
  }
  return result;
}

// --- flap matrix (RecoveryFsm A/B) ----------------------------------------

/// One seed under one recovery config: the flap plan runs to the horizon
/// (clean ambient channel, so every disturbance is the flapping link), the
/// SAT must circulate again within the analytic deadline, and the auditor
/// (including the FSM checks) must stay clean.
struct FlapVariant {
  bool passed = true;
  std::vector<std::string> failures;
  std::uint64_t spurious_cutouts = 0;
  std::uint64_t reformations = 0;  ///< cut-outs + full ring rebuilds
  std::uint64_t stale_rec_suppressed = 0;
  std::uint64_t wtr_holdoffs = 0;
  std::vector<double> mttr_slots;
};

FlapVariant run_flap_variant(std::uint64_t seed, const Options& options,
                             const fault::FaultPlan& plan, bool with_fsm) {
  FlapVariant result;
  const auto fail = [&](std::string why) {
    result.passed = false;
    result.failures.push_back(std::move(why));
  };

  phy::Topology topology = circle_topology(options.n);
  wrtring::Config config;
  config.rap_policy = wrtring::RapPolicy::kRotating;
  config.auto_rejoin = true;
  if (with_fsm) {
    config.guard_slots = options.guard_slots;
    config.wtr_slots = options.wtr_slots;
    config.revertive = true;
  }
  wrtring::Engine engine(&topology, config, seed);
  const auto init = engine.init();
  if (!init.ok()) {
    fail("init: " + init.error().message);
    return result;
  }
  for (NodeId n = 0; n < static_cast<NodeId>(options.n); ++n) {
    engine.add_source(rt_flow(n, n, options.n));
  }

  check::InvariantAuditor auditor(engine);
  auditor.install(engine, 64);

  wrtring::Scenario scenario;
  scenario.apply_plan(plan);
  (void)scenario.run(engine, topology, options.horizon_slots);

  // Liveness tail: the plan healed every flap by 9/10 of the horizon (and
  // WTR hold-offs may still be draining), so give the ring one analytic
  // deadline plus the configured hold-off to circulate again.
  const std::int64_t bound0 = analysis::sat_time_bound(engine.ring_params());
  const std::int64_t rebuild_cost =
      config.rebuild_base_slots +
      config.rebuild_per_station_slots * static_cast<std::int64_t>(options.n);
  const std::int64_t deadline_slots = 4 * bound0 + rebuild_cost +
                                      config.t_rap_slots() +
                                      options.wtr_slots;
  const auto circulating = [&] {
    return engine.sat_state() == wrtring::SatState::kInTransit ||
           engine.sat_state() == wrtring::SatState::kHeld;
  };
  for (std::int64_t i = 0; i < deadline_slots && !circulating(); ++i) {
    engine.step();
  }
  if (!circulating()) {
    fail("SAT not circulating within " + std::to_string(deadline_slots) +
         " slots after the flap storm");
  }

  const auto& stats = engine.stats();
  result.spurious_cutouts = stats.spurious_cutouts;
  result.reformations = stats.cut_outs + stats.ring_rebuilds;
  const wrtring::RecoveryFsm& fsm = engine.recovery_fsm();
  result.stale_rec_suppressed = fsm.stale_rec_suppressed();
  result.wtr_holdoffs = fsm.wtr_holdoffs();
  result.mttr_slots = fsm.mttr_samples();

  if (!auditor.clean()) {
    fail("auditor recorded " + std::to_string(auditor.total_violations()) +
         " violations (first: " + auditor.violations().front().check + ": " +
         auditor.violations().front().detail + ")");
  }
  if (const auto status = engine.check_invariants(); !status.ok()) {
    fail("check_invariants: " + status.error().message);
  }
  return result;
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(std::min<double>(
      std::ceil(p * static_cast<double>(samples.size())),
      static_cast<double>(samples.size())));
  return samples[rank == 0 ? 0 : rank - 1];
}

int run_flap_matrix(const Options& options, bench::Reporter& reporter) {
  std::uint64_t base_spurious = 0, fsm_spurious = 0;
  std::uint64_t base_reform = 0, fsm_reform = 0;
  std::uint64_t suppressed = 0, holdoffs = 0;
  std::vector<double> base_mttr, fsm_mttr;
  bool all_clean = true;

  std::printf("flap matrix: %zu flaps/seed, guard=%lld wtr=%lld\n",
              options.flap_events,
              static_cast<long long>(options.guard_slots),
              static_cast<long long>(options.wtr_slots));
  for (const std::int64_t seed : options.seeds) {
    fault::FaultPlan::RandomOptions plan_options;
    plan_options.n_stations = options.n;
    plan_options.horizon_slots = options.horizon_slots;
    plan_options.events = 0;  // flap-only: clean A/B attribution
    plan_options.flap_events = options.flap_events;
    const fault::FaultPlan plan =
        fault::FaultPlan::random(static_cast<std::uint64_t>(seed),
                                 plan_options);
    if (options.print_plan) {
      std::printf("# seed %lld\n%s\n", static_cast<long long>(seed),
                  plan.to_text().c_str());
    }

    const FlapVariant base = run_flap_variant(
        static_cast<std::uint64_t>(seed), options, plan, false);
    const FlapVariant fsm = run_flap_variant(
        static_cast<std::uint64_t>(seed), options, plan, true);
    reporter.seed(static_cast<std::uint64_t>(seed));

    std::printf(
        "seed %-4lld base: spurious %3llu reform %3llu mttr p99 %7.1f | "
        "fsm: spurious %3llu reform %3llu mttr p99 %7.1f "
        "(suppressed %llu holdoffs %llu)%s\n",
        static_cast<long long>(seed),
        static_cast<unsigned long long>(base.spurious_cutouts),
        static_cast<unsigned long long>(base.reformations),
        percentile(base.mttr_slots, 0.99),
        static_cast<unsigned long long>(fsm.spurious_cutouts),
        static_cast<unsigned long long>(fsm.reformations),
        percentile(fsm.mttr_slots, 0.99),
        static_cast<unsigned long long>(fsm.stale_rec_suppressed),
        static_cast<unsigned long long>(fsm.wtr_holdoffs),
        base.passed && fsm.passed ? "" : "  !!");
    for (const FlapVariant* v : {&base, &fsm}) {
      for (const std::string& why : v->failures) {
        std::printf("         !! %s\n", why.c_str());
      }
    }

    all_clean = all_clean && base.passed && fsm.passed;
    base_spurious += base.spurious_cutouts;
    fsm_spurious += fsm.spurious_cutouts;
    base_reform += base.reformations;
    fsm_reform += fsm.reformations;
    suppressed += fsm.stale_rec_suppressed;
    holdoffs += fsm.wtr_holdoffs;
    base_mttr.insert(base_mttr.end(), base.mttr_slots.begin(),
                     base.mttr_slots.end());
    fsm_mttr.insert(fsm_mttr.end(), fsm.mttr_slots.begin(),
                    fsm.mttr_slots.end());
  }

  const double base_p50 = percentile(base_mttr, 0.50);
  const double base_p99 = percentile(base_mttr, 0.99);
  const double fsm_p50 = percentile(fsm_mttr, 0.50);
  const double fsm_p99 = percentile(fsm_mttr, 0.99);
  reporter.metric("baseline_spurious_cutouts",
                  static_cast<double>(base_spurious), "count");
  reporter.metric("fsm_spurious_cutouts", static_cast<double>(fsm_spurious),
                  "count");
  reporter.metric("baseline_reformations", static_cast<double>(base_reform),
                  "count");
  reporter.metric("fsm_reformations", static_cast<double>(fsm_reform),
                  "count");
  reporter.metric("stale_rec_suppressed", static_cast<double>(suppressed),
                  "count");
  reporter.metric("wtr_holdoffs", static_cast<double>(holdoffs), "count");
  reporter.metric("baseline_mttr_p50", base_p50, "slots");
  reporter.metric("baseline_mttr_p99", base_p99, "slots");
  reporter.metric("fsm_mttr_p50", fsm_p50, "slots");
  reporter.metric("fsm_mttr_p99", fsm_p99, "slots");

  // The gates: what guard + WTR must buy over the legacy behaviour.
  bool passed = all_clean;
  if (fsm_spurious != 0) {
    passed = false;
    std::printf("GATE FAIL: %llu spurious cut-outs with the guard enabled\n",
                static_cast<unsigned long long>(fsm_spurious));
  }
  if (fsm_reform >= base_reform) {
    passed = false;
    std::printf("GATE FAIL: re-formations %llu (fsm) not below %llu "
                "(baseline)\n",
                static_cast<unsigned long long>(fsm_reform),
                static_cast<unsigned long long>(base_reform));
  }
  if (fsm_p99 > base_p99) {
    passed = false;
    std::printf("GATE FAIL: p99 MTTR %.1f slots (fsm) worse than %.1f "
                "(baseline)\n", fsm_p99, base_p99);
  }
  std::printf("totals    base: spurious %llu reform %llu mttr %.1f/%.1f | "
              "fsm: spurious %llu reform %llu mttr %.1f/%.1f — %s\n",
              static_cast<unsigned long long>(base_spurious),
              static_cast<unsigned long long>(base_reform), base_p50,
              base_p99, static_cast<unsigned long long>(fsm_spurious),
              static_cast<unsigned long long>(fsm_reform), fsm_p50, fsm_p99,
              passed ? "PASS" : "FAIL");
  return passed ? 0 : 1;
}

void print_text(const SeedResult& r) {
  std::printf("seed %-4llu %s  mttd %6.1f/%6.1f  mttr %6.1f/%6.1f  "
              "losses %llu rec %llu rebuilds %llu ctrl-lost %llu "
              "retries %llu abandoned %llu reconverge %lld\n",
              static_cast<unsigned long long>(r.seed),
              r.passed ? "PASS" : "FAIL", r.mttd_mean_slots, r.mttd_max_slots,
              r.mttr_mean_slots, r.mttr_max_slots,
              static_cast<unsigned long long>(r.sat_losses),
              static_cast<unsigned long long>(r.recoveries),
              static_cast<unsigned long long>(r.rebuilds),
              static_cast<unsigned long long>(r.control_lost),
              static_cast<unsigned long long>(r.join_retries),
              static_cast<unsigned long long>(r.joins_abandoned),
              static_cast<long long>(r.reconverge_slots));
  for (const std::string& why : r.failures) {
    std::printf("         !! %s\n", why.c_str());
  }
}

void print_json(const std::vector<SeedResult>& results) {
  std::printf("{\n  \"seeds\": [");
  bool first = true;
  for (const SeedResult& r : results) {
    std::printf("%s\n    {\"seed\": %llu, \"passed\": %s, "
                "\"mttd_mean_slots\": %.2f, \"mttd_max_slots\": %.2f, "
                "\"mttr_mean_slots\": %.2f, \"mttr_max_slots\": %.2f, "
                "\"sat_losses\": %llu, \"recoveries\": %llu, "
                "\"rebuilds\": %llu, \"control_lost\": %llu, "
                "\"join_retries\": %llu, \"joins_abandoned\": %llu, "
                "\"frames_lost_link\": %llu, \"frames_lost_rebuild\": %llu, "
                "\"frames_lost_churn\": %llu, "
                "\"auditor_violations\": %llu, \"reconverge_slots\": %lld}",
                first ? "" : ",",
                static_cast<unsigned long long>(r.seed),
                r.passed ? "true" : "false", r.mttd_mean_slots,
                r.mttd_max_slots, r.mttr_mean_slots, r.mttr_max_slots,
                static_cast<unsigned long long>(r.sat_losses),
                static_cast<unsigned long long>(r.recoveries),
                static_cast<unsigned long long>(r.rebuilds),
                static_cast<unsigned long long>(r.control_lost),
                static_cast<unsigned long long>(r.join_retries),
                static_cast<unsigned long long>(r.joins_abandoned),
                static_cast<unsigned long long>(r.frames_lost_link),
                static_cast<unsigned long long>(r.frames_lost_rebuild),
                static_cast<unsigned long long>(r.frames_lost_churn),
                static_cast<unsigned long long>(r.auditor_violations),
                static_cast<long long>(r.reconverge_slots));
    first = false;
  }
  std::printf("\n  ]\n}\n");
}

}  // namespace
}  // namespace wrt

int main(int argc, char** argv) {
  wrt::util::Args args(argc, argv);
  if (args.has("help")) {
    std::puts(
        "usage: wrt_chaos [--seeds 1,2,...] [--n 12] [--parked 4]\n"
        "                 [--slots 8000] [--events 8] [--plan file]\n"
        "                 [--print-plan] [--json]\n"
        "       wrt_chaos --flap-matrix [--flap-events 4] [--guard 32]\n"
        "                 [--wtr 128] [--json-dir=DIR]");
    return 0;
  }
  wrt::Options options;
  options.seeds = args.get_int_list(
      "seeds", {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  options.n = static_cast<std::size_t>(args.get_int("n", 12));
  options.parked = static_cast<std::size_t>(args.get_int("parked", 4));
  options.horizon_slots = args.get_int("slots", 8000);
  options.plan_events = static_cast<std::size_t>(args.get_int("events", 8));
  options.plan_path = args.get_string("plan", "");
  options.print_plan = args.has("print-plan");
  options.json = args.has("json");
  options.flap_matrix = args.has("flap-matrix");
  options.flap_events =
      static_cast<std::size_t>(args.get_int("flap-events", 4));
  options.guard_slots = args.get_int("guard", 32);
  options.wtr_slots = args.get_int("wtr", 128);
  (void)args.get_string("json-dir", "");  // parsed by bench::Reporter
  for (const std::string& flag : args.unknown_flags()) {
    std::fprintf(stderr, "wrt_chaos: unknown flag --%s\n", flag.c_str());
    return 2;
  }
  if (options.n < 5) {
    std::fprintf(stderr, "wrt_chaos: --n must be >= 5\n");
    return 2;
  }

  if (options.flap_matrix) {
    wrt::bench::Reporter reporter("recovery_fsm", argc, argv);
    return wrt::run_flap_matrix(options, reporter);
  }

  wrt::fault::FaultPlan fixed_plan;
  bool have_fixed_plan = false;
  if (!options.plan_path.empty()) {
    auto loaded = wrt::fault::FaultPlan::load(options.plan_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "wrt_chaos: %s\n",
                   loaded.error().message.c_str());
      return 2;
    }
    fixed_plan = std::move(loaded.value());
    have_fixed_plan = true;
  }

  std::vector<wrt::SeedResult> results;
  bool all_passed = true;
  for (const std::int64_t seed : options.seeds) {
    wrt::SeedResult result =
        wrt::run_seed(static_cast<std::uint64_t>(seed), options,
                      have_fixed_plan ? &fixed_plan : nullptr);
    all_passed = all_passed && result.passed;
    if (!options.json) wrt::print_text(result);
    results.push_back(std::move(result));
  }
  if (options.json) {
    wrt::print_json(results);
  } else {
    std::printf("%zu/%zu seeds passed\n",
                results.size() -
                    static_cast<std::size_t>(std::count_if(
                        results.begin(), results.end(),
                        [](const wrt::SeedResult& r) { return !r.passed; })),
                results.size());
  }
  return all_passed ? 0 : 1;
}
