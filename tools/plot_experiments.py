#!/usr/bin/env python3
"""Plot the experiment benches' CSV output and BENCH_*.json summaries.

Usage:
    for b in build/bench/bench_*; do $b --csv > out/$(basename $b).csv; done
    python3 tools/plot_experiments.py out/*.csv -o plots/

    scripts/check.sh --bench-smoke            # emits build/bench-json/
    python3 tools/plot_experiments.py build/bench-json/BENCH_*.json -o plots/

Each bench emits one or more CSV tables separated by `# <title>` comment
lines; this script splits them, guesses a sensible x-axis (the first
numeric column) and plots every other numeric column as a series.  A
BENCH_<name>.json file (the standardized headline-metric summary every
bench writes with --json-dir) becomes a horizontal bar chart of its
metrics, annotated with units and the recorded git revision.  It is a
convenience for eyeballing shapes, not a publication pipeline.
"""

import argparse
import csv
import json
import pathlib
import sys


def split_tables(path):
    """Yields (title, header, rows) per `# title`-delimited CSV block."""
    title = path.stem
    header = None
    rows = []
    with open(path, newline="") as handle:
        for record in csv.reader(handle):
            if not record:
                continue
            if record[0].startswith("#"):
                if header and rows:
                    yield title, header, rows
                title = record[0].lstrip("# ").strip()
                header, rows = None, []
            elif header is None:
                header = record
            else:
                rows.append(record)
    if header and rows:
        yield title, header, rows


def numeric_columns(header, rows):
    """Indices of columns where every row parses as a float."""
    result = []
    for idx in range(len(header)):
        try:
            for row in rows:
                float(row[idx])
        except (ValueError, IndexError):
            continue
        result.append(idx)
    return result


def plot_table(title, header, rows, out_dir):
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    numeric = numeric_columns(header, rows)
    if len(numeric) < 2:
        print(f"  skip (needs >= 2 numeric columns): {title}")
        return
    x_idx, y_idxs = numeric[0], numeric[1:]

    fig, ax = plt.subplots(figsize=(7, 4.5))
    xs = [float(row[x_idx]) for row in rows]
    for y_idx in y_idxs:
        ys = [float(row[y_idx]) for row in rows]
        ax.plot(xs, ys, marker="o", label=header[y_idx])
    ax.set_xlabel(header[x_idx])
    ax.set_title(title)
    ax.grid(True, alpha=0.3)
    ax.legend(fontsize=8)
    safe = "".join(c if c.isalnum() or c in "-_" else "_" for c in title)[:80]
    target = out_dir / f"{safe}.png"
    fig.tight_layout()
    fig.savefig(target, dpi=120)
    plt.close(fig)
    print(f"  wrote {target}")


def plot_voice_frontier(doc, path, out_dir):
    """Capacity frontier for BENCH_voice_capacity.json: compliant calls vs
    offered fleet size, one panel per channel regime, one line per MAC.
    Returns False when the metric grid is absent (falls back to bars)."""
    import re

    grid = {}  # (regime, mac) -> {n: compliant}
    for m in doc.get("metrics", []):
        match = re.fullmatch(r"(wrt|tpt|aloha)_(\w+)_n(\d+)_compliant",
                             m["metric"])
        if match and isinstance(m.get("value"), (int, float)):
            mac, regime, n = match.group(1), match.group(2), int(match.group(3))
            grid.setdefault((regime, mac), {})[n] = float(m["value"])
    if not grid:
        return False

    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    regimes = sorted({regime for regime, _ in grid},
                     key=lambda r: ("clean", "mobility", "bursty").index(r)
                     if r in ("clean", "mobility", "bursty") else 99)
    macs = [m for m in ("wrt", "tpt", "aloha")
            if any(mac == m for _, mac in grid)]
    labels = {"wrt": "WRT-Ring", "tpt": "TPT", "aloha": "slotted Aloha"}

    fig, axes = plt.subplots(1, len(regimes),
                             figsize=(4.0 * len(regimes), 4.0),
                             sharey=True, squeeze=False)
    for ax, regime in zip(axes[0], regimes):
        for mac in macs:
            series = grid.get((regime, mac))
            if not series:
                continue
            ns = sorted(series)
            ax.plot(ns, [series[n] for n in ns], marker="o",
                    label=labels.get(mac, mac))
        ax.set_xscale("log", base=2)
        ax.set_xlabel("offered calls N")
        ax.set_title(regime)
        ax.grid(True, alpha=0.3)
    axes[0][0].set_ylabel("MOS >= threshold calls")
    axes[0][0].legend(fontsize=8)
    smoke = " (smoke)" if doc.get("smoke") else ""
    fig.suptitle(f"voice capacity frontier{smoke} "
                 f"@ {doc.get('git_rev', '?')}", fontsize=10)
    target = out_dir / f"{path.stem}_frontier.png"
    fig.tight_layout()
    fig.savefig(target, dpi=120)
    plt.close(fig)
    print(f"  wrote {target}")
    return True


def plot_bench_json(path, out_dir):
    """Renders one BENCH_<name>.json as a horizontal bar chart of metrics."""
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    with open(path) as handle:
        doc = json.load(handle)
    if doc.get("bench") == "voice_capacity" and \
            plot_voice_frontier(doc, path, out_dir):
        return
    metrics = [m for m in doc.get("metrics", [])
               if isinstance(m.get("value"), (int, float))]
    if not metrics:
        print(f"  skip (no numeric metrics): {path}")
        return
    labels = [f"{m['metric']} [{m['units']}]" for m in metrics]
    values = [float(m["value"]) for m in metrics]

    fig, ax = plt.subplots(figsize=(7, 0.5 * len(metrics) + 1.5))
    ypos = range(len(metrics))
    ax.barh(ypos, values, color="steelblue")
    ax.set_yticks(list(ypos), labels=labels, fontsize=8)
    ax.invert_yaxis()
    for y, value in zip(ypos, values):
        ax.annotate(f" {value:g}", (value, y), va="center", fontsize=8)
    smoke = " (smoke)" if doc.get("smoke") else ""
    ax.set_title(f"{doc.get('bench', path.stem)}{smoke} "
                 f"@ {doc.get('git_rev', '?')}", fontsize=10)
    ax.grid(True, axis="x", alpha=0.3)
    target = out_dir / f"{path.stem}.png"
    fig.tight_layout()
    fig.savefig(target, dpi=120)
    plt.close(fig)
    print(f"  wrote {target}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("inputs", nargs="+", type=pathlib.Path,
                        metavar="csv_or_bench_json")
    parser.add_argument("-o", "--out", type=pathlib.Path,
                        default=pathlib.Path("plots"))
    args = parser.parse_args()
    args.out.mkdir(parents=True, exist_ok=True)
    for path in args.inputs:
        print(path)
        if path.suffix == ".json":
            plot_bench_json(path, args.out)
            continue
        for title, header, rows in split_tables(path):
            plot_table(title, header, rows, args.out)


if __name__ == "__main__":
    sys.exit(main())
