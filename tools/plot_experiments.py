#!/usr/bin/env python3
"""Plot the experiment benches' CSV output.

Usage:
    for b in build/bench/bench_*; do $b --csv > out/$(basename $b).csv; done
    python3 tools/plot_experiments.py out/*.csv -o plots/

Each bench emits one or more CSV tables separated by `# <title>` comment
lines; this script splits them, guesses a sensible x-axis (the first
numeric column) and plots every other numeric column as a series.  It is a
convenience for eyeballing shapes, not a publication pipeline.
"""

import argparse
import csv
import pathlib
import sys


def split_tables(path):
    """Yields (title, header, rows) per `# title`-delimited CSV block."""
    title = path.stem
    header = None
    rows = []
    with open(path, newline="") as handle:
        for record in csv.reader(handle):
            if not record:
                continue
            if record[0].startswith("#"):
                if header and rows:
                    yield title, header, rows
                title = record[0].lstrip("# ").strip()
                header, rows = None, []
            elif header is None:
                header = record
            else:
                rows.append(record)
    if header and rows:
        yield title, header, rows


def numeric_columns(header, rows):
    """Indices of columns where every row parses as a float."""
    result = []
    for idx in range(len(header)):
        try:
            for row in rows:
                float(row[idx])
        except (ValueError, IndexError):
            continue
        result.append(idx)
    return result


def plot_table(title, header, rows, out_dir):
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    numeric = numeric_columns(header, rows)
    if len(numeric) < 2:
        print(f"  skip (needs >= 2 numeric columns): {title}")
        return
    x_idx, y_idxs = numeric[0], numeric[1:]

    fig, ax = plt.subplots(figsize=(7, 4.5))
    xs = [float(row[x_idx]) for row in rows]
    for y_idx in y_idxs:
        ys = [float(row[y_idx]) for row in rows]
        ax.plot(xs, ys, marker="o", label=header[y_idx])
    ax.set_xlabel(header[x_idx])
    ax.set_title(title)
    ax.grid(True, alpha=0.3)
    ax.legend(fontsize=8)
    safe = "".join(c if c.isalnum() or c in "-_" else "_" for c in title)[:80]
    target = out_dir / f"{safe}.png"
    fig.tight_layout()
    fig.savefig(target, dpi=120)
    plt.close(fig)
    print(f"  wrote {target}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csv_files", nargs="+", type=pathlib.Path)
    parser.add_argument("-o", "--out", type=pathlib.Path,
                        default=pathlib.Path("plots"))
    args = parser.parse_args()
    args.out.mkdir(parents=True, exist_ok=True)
    for path in args.csv_files:
        print(path)
        for title, header, rows in split_tables(path):
            plot_table(title, header, rows, args.out)


if __name__ == "__main__":
    sys.exit(main())
