// wrt_report: turn a binary telemetry journal into a per-station QoS report.
//
// Reads a journal written by telemetry::Journal::save() (see
// examples/telemetry_demo.cpp for a producer) and checks the run against the
// paper's delay-bounded service claims:
//
//   * SAT rotation: per-station inter-arrival of kSatArrive events, reported
//     as observed max / mean against the Theorem 1 bound
//     S + T_rap + 2 * sum_j (l_j + k_j) evaluated from the RingMeta embedded
//     in the journal file.
//   * Access delay: per-Diffserv-class queue->transmit delay from kTransmit
//     events, with the real-time class checked against Theorem 3 (x = 0).
//   * Membership and recovery: joins, leaves, cut-outs and SAT_REC
//     start/done events, plus per-station ring overwrite (drop) counts so a
//     truncated history is never mistaken for a quiet station.
//
//   $ build/tools/wrt_report run.jrnl          # human-readable report
//   $ build/tools/wrt_report --json run.jrnl   # machine-readable JSON
//
// Exit status: 0 when every per-station observed SAT rotation maximum is
// within the Theorem 1 bound (or no bound is present), 1 on violation,
// 2 on usage / I/O errors.
#include <algorithm>
#include <array>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "telemetry/journal.hpp"
#include "util/types.hpp"

namespace {

using wrt::telemetry::Journal;
using wrt::telemetry::JournalEvent;
using wrt::telemetry::JournalKind;

struct ClassStats {
  std::uint64_t transmits = 0;
  double delay_sum_slots = 0.0;
  double delay_max_slots = 0.0;

  void add(double delay_slots) {
    ++transmits;
    delay_sum_slots += delay_slots;
    delay_max_slots = std::max(delay_max_slots, delay_slots);
  }
  [[nodiscard]] double mean() const {
    return transmits == 0 ? 0.0
                          : delay_sum_slots / static_cast<double>(transmits);
  }
};

struct StationReport {
  wrt::NodeId station = wrt::kInvalidNode;
  std::uint64_t sat_arrivals = 0;
  double rotation_mean_slots = 0.0;
  double rotation_max_slots = 0.0;
  std::array<ClassStats, 3> by_class{};  // indexed by TrafficClass
  std::uint64_t deliveries = 0;
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t cut_outs = 0;
  std::uint64_t sat_rec_started = 0;
  std::uint64_t sat_rec_done = 0;
  std::uint64_t stalls = 0;
  std::uint64_t resumes = 0;
  std::uint64_t control_losses = 0;
  std::uint64_t rebuild_drop_frames = 0;  ///< in-flight frames torn down here
  std::uint64_t dropped = 0;
  bool rotation_within_bound = true;
};

StationReport analyze_station(const Journal& journal, wrt::NodeId station,
                              std::int64_t sat_bound_slots) {
  StationReport report;
  report.station = station;
  report.dropped = journal.dropped(station);

  wrt::Tick last_arrival = wrt::kNeverTick;
  double rotation_sum = 0.0;
  std::uint64_t rotations = 0;
  for (const JournalEvent& event : journal.events(station)) {
    switch (event.kind) {
      case JournalKind::kSatArrive: {
        ++report.sat_arrivals;
        if (last_arrival != wrt::kNeverTick) {
          const double rotation =
              wrt::ticks_to_slots_real(event.tick - last_arrival);
          rotation_sum += rotation;
          ++rotations;
          report.rotation_max_slots =
              std::max(report.rotation_max_slots, rotation);
        }
        last_arrival = event.tick;
        break;
      }
      case JournalKind::kTransmit: {
        const std::uint32_t cls = event.arg;
        if (cls < report.by_class.size()) {
          report.by_class[cls].add(
              wrt::ticks_to_slots_real(static_cast<wrt::Tick>(event.value)));
        }
        break;
      }
      case JournalKind::kDeliver: ++report.deliveries; break;
      case JournalKind::kJoin: ++report.joins; break;
      case JournalKind::kLeave: ++report.leaves; break;
      case JournalKind::kCutOut: ++report.cut_outs; break;
      case JournalKind::kSatRecStart: ++report.sat_rec_started; break;
      case JournalKind::kSatRecDone: ++report.sat_rec_done; break;
      case JournalKind::kStall: ++report.stalls; break;
      case JournalKind::kResume: ++report.resumes; break;
      case JournalKind::kControlLost: ++report.control_losses; break;
      case JournalKind::kRebuildDrop:
        report.rebuild_drop_frames += event.value;
        break;
      case JournalKind::kSatRelease:
      case JournalKind::kQueueDepth:
      case JournalKind::kSnapshot:
        break;
    }
  }
  if (rotations > 0) {
    report.rotation_mean_slots = rotation_sum / static_cast<double>(rotations);
  }
  // The Theorem 1 inequality is strict (SAT_TIME < bound); a ring that
  // wrapped may have lost the arrival that anchored the worst rotation, so
  // the check is only meaningful on the surviving window — drops are
  // reported alongside so the reader can judge.
  if (sat_bound_slots > 0 &&
      report.rotation_max_slots >= static_cast<double>(sat_bound_slots)) {
    report.rotation_within_bound = false;
  }
  return report;
}

const char* class_name(std::size_t cls) {
  switch (cls) {
    case 0: return "real_time";
    case 1: return "assured";
    default: return "best_effort";
  }
}

void print_text(std::ostream& out, const Journal& journal,
                const std::vector<StationReport>& reports,
                std::int64_t sat_bound_slots, std::int64_t access_bound_slots) {
  const auto& meta = journal.meta();
  out << "WRT-Ring QoS report\n"
      << "  stations with events : " << reports.size() << '\n'
      << "  events recorded      : " << journal.total_recorded()
      << " (dropped " << journal.total_dropped() << ")\n"
      << "  ring latency S       : " << meta.ring_latency_slots << " slots\n"
      << "  T_rap                : " << meta.t_rap_slots << " slots\n";
  if (sat_bound_slots > 0) {
    out << "  Theorem 1 SAT bound  : " << sat_bound_slots << " slots\n"
        << "  Theorem 3 access bnd : " << access_bound_slots
        << " slots (x = 0)\n";
  } else {
    out << "  Theorem 1 SAT bound  : n/a (journal has no ring metadata)\n";
  }
  out << '\n';

  out << std::fixed << std::setprecision(2);
  for (const StationReport& r : reports) {
    out << "station " << r.station << '\n'
        << "  SAT arrivals " << r.sat_arrivals << ", rotation mean "
        << r.rotation_mean_slots << " / max " << r.rotation_max_slots
        << " slots";
    if (sat_bound_slots > 0) {
      out << (r.rotation_within_bound ? "  [within bound]"
                                      : "  [BOUND VIOLATED]");
    }
    out << '\n';
    for (std::size_t cls = 0; cls < r.by_class.size(); ++cls) {
      const ClassStats& c = r.by_class[cls];
      if (c.transmits == 0) continue;
      out << "  " << std::setw(11) << class_name(cls) << ": " << c.transmits
          << " tx, access delay mean " << c.mean() << " / max "
          << c.delay_max_slots << " slots\n";
    }
    if (r.deliveries != 0) out << "  deliveries " << r.deliveries << '\n';
    if (r.joins + r.leaves + r.cut_outs != 0) {
      out << "  membership: joins " << r.joins << ", leaves " << r.leaves
          << ", cut-outs " << r.cut_outs << '\n';
    }
    if (r.sat_rec_started + r.sat_rec_done != 0) {
      out << "  SAT_REC: started " << r.sat_rec_started << ", completed "
          << r.sat_rec_done << '\n';
    }
    if (r.stalls + r.resumes != 0) {
      out << "  faults: stalled " << r.stalls << ", resumed " << r.resumes
          << '\n';
    }
    if (r.control_losses != 0) {
      out << "  lost join-handshake messages " << r.control_losses << '\n';
    }
    if (r.rebuild_drop_frames != 0) {
      out << "  frames torn down by re-formations " << r.rebuild_drop_frames
          << '\n';
    }
    if (r.dropped != 0) {
      out << "  journal ring overwrote " << r.dropped
          << " events (oldest history truncated)\n";
    }
  }
}

void print_json(std::ostream& out, const Journal& journal,
                const std::vector<StationReport>& reports,
                std::int64_t sat_bound_slots, std::int64_t access_bound_slots) {
  const auto& meta = journal.meta();
  out << "{\n"
      << "  \"events_recorded\": " << journal.total_recorded() << ",\n"
      << "  \"events_dropped\": " << journal.total_dropped() << ",\n"
      << "  \"ring_latency_slots\": " << meta.ring_latency_slots << ",\n"
      << "  \"t_rap_slots\": " << meta.t_rap_slots << ",\n"
      << "  \"theorem1_sat_bound_slots\": " << sat_bound_slots << ",\n"
      << "  \"theorem3_access_bound_slots\": " << access_bound_slots << ",\n"
      << "  \"stations\": [";
  bool first = true;
  for (const StationReport& r : reports) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"station\": " << r.station
        << ", \"sat_arrivals\": " << r.sat_arrivals
        << ", \"rotation_mean_slots\": " << r.rotation_mean_slots
        << ", \"rotation_max_slots\": " << r.rotation_max_slots
        << ", \"rotation_within_bound\": "
        << (r.rotation_within_bound ? "true" : "false")
        << ", \"deliveries\": " << r.deliveries << ", \"joins\": " << r.joins
        << ", \"leaves\": " << r.leaves << ", \"cut_outs\": " << r.cut_outs
        << ", \"sat_rec_started\": " << r.sat_rec_started
        << ", \"sat_rec_done\": " << r.sat_rec_done
        << ", \"stalls\": " << r.stalls << ", \"resumes\": " << r.resumes
        << ", \"control_losses\": " << r.control_losses
        << ", \"rebuild_drop_frames\": " << r.rebuild_drop_frames
        << ", \"journal_dropped\": " << r.dropped << ", \"classes\": {";
    bool first_class = true;
    for (std::size_t cls = 0; cls < r.by_class.size(); ++cls) {
      const ClassStats& c = r.by_class[cls];
      if (c.transmits == 0) continue;
      if (!first_class) out << ", ";
      first_class = false;
      out << '"' << class_name(cls) << "\": {\"transmits\": " << c.transmits
          << ", \"delay_mean_slots\": " << c.mean()
          << ", \"delay_max_slots\": " << c.delay_max_slots << '}';
    }
    out << "}}";
  }
  out << "\n  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: wrt_report [--json] <journal-file>\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "wrt_report: unknown option " << arg << '\n';
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: wrt_report [--json] <journal-file>\n";
    return 2;
  }

  auto loaded = wrt::telemetry::Journal::load(path);
  if (!loaded.ok()) {
    std::cerr << "wrt_report: " << loaded.error().message << '\n';
    return 2;
  }
  const Journal& journal = loaded.value();

  // Evaluate the paper's bounds from the embedded metadata.
  const auto& meta = journal.meta();
  std::int64_t sat_bound_slots = 0;
  std::int64_t access_bound_slots = 0;
  if (!meta.quotas.empty()) {
    wrt::analysis::RingParams params;
    params.ring_latency_slots = meta.ring_latency_slots;
    params.t_rap_slots = meta.t_rap_slots;
    params.quotas.reserve(meta.quotas.size());
    for (const auto& [node, quota] : meta.quotas) params.quotas.push_back(quota);
    sat_bound_slots = wrt::analysis::sat_time_bound(params);
    access_bound_slots = wrt::analysis::access_time_bound(params, 0, 0);
  }

  std::vector<StationReport> reports;
  bool all_within_bound = true;
  for (const wrt::NodeId station : journal.stations()) {
    reports.push_back(analyze_station(journal, station, sat_bound_slots));
    all_within_bound = all_within_bound && reports.back().rotation_within_bound;
  }

  if (json) {
    print_json(std::cout, journal, reports, sat_bound_slots,
               access_bound_slots);
  } else {
    print_text(std::cout, journal, reports, sat_bound_slots,
               access_bound_slots);
  }
  return all_within_bound ? 0 : 1;
}
