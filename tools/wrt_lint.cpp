// wrt_lint — repo-specific static analysis for the WRT-Ring code base.
//
// Generic linters cannot know this repo's contracts, so this tool encodes
// them directly (see docs/API.md "Correctness tooling" for the rule table):
//
//   hot-path-assoc       The per-slot engine hot path is position-indexed
//                        by design (PR 1); node-based associative
//                        containers are banned from the hot-path files.
//   by-value-frame-param Packet / LinkFrame parameters must be passed by
//                        reference (or moved); silent copies on the data
//                        path are the repo's most common perf regression.
//   stale-include        A curated table of std headers whose usage is
//                        reliably greppable; flags includes with no use.
//   missing-nodiscard    Zero-argument const accessors in headers must be
//                        [[nodiscard]] — dropping an accessor result is
//                        always a bug.
//   kernel-aos-access    The per-slot passes operate on the SlotKernel's
//                        dense arrays (PR 6); `stations_[...]` access in a
//                        kernel file reintroduces the per-station object
//                        indirection the SoA refactor removed.
//   mutable-global-state Non-const namespace-scope / static-local mutable
//                        variables are banned: a federation shard must own
//                        its state, and a hidden global is cross-shard
//                        state nobody annotated.  The sanctioned globals
//                        (the MetricRegistry singleton, the log sinks)
//                        carry justified suppressions — the whitelist is
//                        the suppression list, auditable via
//                        --list-suppressions.
//   cross-shard-handle   Ring/engine code (wrtring/, tpt/) may not declare
//                        raw pointer/reference variables or fields to
//                        Engine / SlotKernel / Station: a stored handle
//                        into another shard's mutable core bypasses the
//                        epoch-synchronized gateway-message path.  Handles
//                        to *own-shard* objects get a justified
//                        suppression.  Additionally, `*Frame` structs in
//                        ring code must be pure value types (no pointer or
//                        reference members): mailbox frames cross shard
//                        boundaries by design (PR 8), so a pointer member
//                        would smuggle a handle into another shard's epoch.
//   unguarded-shared-field
//                        Types registered as shared via
//                        `// wrt-lint-shared-type(Name): <why>` (anywhere
//                        in the scanned tree) must have every field atomic,
//                        const, a lock, annotated WRT_GUARDED_BY /
//                        WRT_PT_GUARDED_BY, or itself a registered shared
//                        type — the textual complement of Clang's
//                        -Wthread-safety pass.
//   recovery-side-effect Ring recovery has exactly one decision point: the
//                        RecoveryFsm (PR 10).  Direct calls to the engine's
//                        start_recovery / start_rebuild from anywhere else
//                        in wrtring/ bypass the guard window, WTR hold-off,
//                        and request de-duplication; the FSM's own
//                        dispatch sites carry justified suppressions.
//
// Suppressions (a justification is mandatory):
//   // wrt-lint-allow(<rule>): <reason>        same line or line above
//   // wrt-lint-allow-file(<rule>): <reason>   whole file
//
// Usage: wrt_lint [--list-rules] [--list-suppressions] [dir-or-file ...]
// (default: src).  Exits 0 when clean, 1 when any finding survives
// suppression.  --list-suppressions dumps every active wrt-lint-allow with
// its justification and fails on suppressions naming a rule that no longer
// exists (stale-suppression rot).
//
// The scanner is textual by intent: it blanks comments and string literals
// and then works with regular expressions.  That keeps it dependency-free
// (no libclang in the container) and fast enough to run on every check.

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string path;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct SourceFile {
  std::string path;            // repo-relative, as given
  std::string raw;             // exact file content
  std::string code;            // comments + string literals blanked
  bool is_header = false;
  // rule -> raw lines carrying a justified wrt-lint-allow for it.
  std::map<std::string, std::set<std::size_t>> suppressed_lines;
  std::set<std::string> suppressed_rules;  // file-wide
};

const std::set<std::string> kRules = {
    "hot-path-assoc",       "by-value-frame-param", "stale-include",
    "missing-nodiscard",    "kernel-aos-access",    "mutable-global-state",
    "cross-shard-handle",   "unguarded-shared-field",
    "recovery-side-effect"};

/// Active suppression, for --list-suppressions.
struct Suppression {
  std::string path;
  std::size_t line = 0;
  std::string rule;
  std::string reason;
  bool file_wide = false;
};

/// Cross-file context built in a first pass over every input file: the
/// shared-type registrations the unguarded-shared-field rule checks.
struct LintContext {
  std::set<std::string> shared_types;
  std::vector<Suppression> suppressions;
};

// Files whose per-slot code must stay free of associative lookups.
const std::vector<std::string> kHotPathFiles = {
    "wrtring/engine.hpp", "wrtring/engine.cpp", "wrtring/station.hpp",
    "wrtring/station.cpp", "traffic/traffic.hpp", "traffic/traffic.cpp",
    "ring/frame.hpp",      "ring/frame.cpp"};

// Files implementing the slot-kernel passes: all per-station state must be
// reached through the SlotKernel arrays, never a station-object vector.
const std::vector<std::string> kKernelFiles = {
    "wrtring/engine.cpp", "wrtring/soa_kernel.hpp", "wrtring/soa_kernel.cpp"};

// stale-include table: header -> regex proving it is used.  Only headers
// whose entire API is reliably greppable belong here.
const std::vector<std::pair<std::string, std::string>> kIncludeUsage = {
    {"map", R"(std::(multi)?map\s*<)"},
    {"set", R"(std::(multi)?set\s*<)"},
    {"unordered_map", R"(std::unordered_(multi)?map\s*<)"},
    {"unordered_set", R"(std::unordered_(multi)?set\s*<)"},
    {"deque", R"(std::deque\s*<)"},
    {"queue", R"(std::(priority_)?queue\s*<)"},
    {"list", R"(std::(forward_)?list\s*<)"},
    {"optional",
     R"(std::optional|std::nullopt|std::make_optional|std::in_place)"},
    {"functional",
     R"(std::function\s*<|std::bind|std::invoke|std::ref\b|std::cref\b|)"
     R"(std::hash\s*<|std::plus|std::minus|std::less|std::greater)"},
    {"memory",
     R"(std::unique_ptr|std::shared_ptr|std::weak_ptr|std::make_unique|)"
     R"(std::make_shared|std::addressof|std::pmr)"},
    {"sstream", R"(std::[io]?stringstream)"},
};

std::size_t line_of(const std::string& text, std::size_t offset) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() +
                            static_cast<std::ptrdiff_t>(offset), '\n'));
}

/// Blanks //- and /* */-comments plus string and char literals with spaces
/// (newlines preserved so offsets keep mapping to the same lines).
std::string strip_comments_and_strings(const std::string& raw) {
  std::string out = raw;
  enum class State { kCode, kLine, kBlock, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') {
            if (i + 1 < out.size()) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < out.size()) out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

void parse_suppressions(SourceFile& file, LintContext& context,
                        std::vector<Finding>& findings) {
  // Rule names start with a letter, so the regex cannot match its own
  // source text (where "-file(" follows "allow") when tools/ lints itself.
  static const std::regex kAllow(
      R"(wrt-lint-allow(-file)?\(([a-z][a-z0-9-]*)\)\s*:?\s*(.*))");
  std::istringstream stream(file.raw);
  std::string line;
  for (std::size_t number = 1; std::getline(stream, line); ++number) {
    std::smatch match;
    if (!std::regex_search(line, match, kAllow)) continue;
    const bool file_wide = match[1].matched;
    const std::string rule = match[2].str();
    const std::string reason = match[3].str();
    if (kRules.find(rule) == kRules.end()) {
      findings.push_back({file.path, number, "lint-suppression",
                          "suppression names unknown rule '" + rule + "'"});
      continue;
    }
    if (reason.find_first_not_of(" \t") == std::string::npos) {
      findings.push_back({file.path, number, "lint-suppression",
                          "suppression for '" + rule +
                              "' lacks a justification"});
      continue;
    }
    context.suppressions.push_back({file.path, number, rule, reason,
                                    file_wide});
    if (file_wide) {
      file.suppressed_rules.insert(rule);
    } else {
      // Covers the annotated line and the one below it.
      file.suppressed_lines[rule].insert(number);
      file.suppressed_lines[rule].insert(number + 1);
    }
  }
}

/// Collects `// wrt-lint-shared-type(Name)` registrations: the classes the
/// unguarded-shared-field rule audits, declared next to their definition so
/// the shared-type list lives with the code it describes.
void parse_shared_types(const SourceFile& file, LintContext& context) {
  static const std::regex kSharedType(R"(wrt-lint-shared-type\((\w+)\))");
  for (auto it = std::sregex_iterator(file.raw.begin(), file.raw.end(),
                                      kSharedType);
       it != std::sregex_iterator(); ++it) {
    context.shared_types.insert((*it)[1].str());
  }
}

bool suppressed(const SourceFile& file, const std::string& rule,
                std::size_t line) {
  if (file.suppressed_rules.count(rule) != 0) return true;
  const auto it = file.suppressed_lines.find(rule);
  return it != file.suppressed_lines.end() && it->second.count(line) != 0;
}

void report(const SourceFile& file, const std::string& rule,
            std::size_t line, const std::string& message,
            std::vector<Finding>& findings) {
  if (!suppressed(file, rule, line)) {
    findings.push_back({file.path, line, rule, message});
  }
}

bool is_hot_path(const std::string& path) {
  for (const std::string& suffix : kHotPathFiles) {
    if (path.size() >= suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      return true;
    }
  }
  return false;
}

void rule_hot_path_assoc(const SourceFile& file,
                         std::vector<Finding>& findings) {
  if (!is_hot_path(file.path)) return;
  static const std::regex kAssoc(
      R"((std::(unordered_)?(multi)?(map|set)\s*<)|(#\s*include\s*<(map|set|unordered_map|unordered_set)>))");
  for (auto it = std::sregex_iterator(file.code.begin(), file.code.end(),
                                      kAssoc);
       it != std::sregex_iterator(); ++it) {
    report(file, "hot-path-assoc",
           line_of(file.code, static_cast<std::size_t>(it->position())),
           "associative container '" + it->str() +
               "' in a hot-path file; use util::FlatMap, a dense "
               "position-indexed vector, or a sorted vector",
           findings);
  }
}

void rule_by_value_frame_param(const SourceFile& file,
                               std::vector<Finding>& findings) {
  static const std::regex kByValue(
      R"([(,]\s*(const\s+)?((\w+::)*)(Packet|LinkFrame)\s+(\w+)\s*[,)])");
  for (auto it = std::sregex_iterator(file.code.begin(), file.code.end(),
                                      kByValue);
       it != std::sregex_iterator(); ++it) {
    const std::smatch& match = *it;
    report(file, "by-value-frame-param",
           line_of(file.code, static_cast<std::size_t>(match.position())),
           "parameter '" + match[5].str() + "' takes " + match[4].str() +
               " by value; pass by (const) reference or rvalue reference",
           findings);
  }
}

void rule_stale_include(const SourceFile& file,
                        std::vector<Finding>& findings) {
  for (const auto& [header, usage] : kIncludeUsage) {
    const std::regex include_re("#\\s*include\\s*<" + header + ">");
    std::smatch include_match;
    if (!std::regex_search(file.code, include_match, include_re)) continue;
    if (std::regex_search(file.code, std::regex(usage))) continue;
    report(file, "stale-include",
           line_of(file.code,
                   static_cast<std::size_t>(include_match.position())),
           "<" + header + "> is included but nothing from it is used",
           findings);
  }
}

void rule_missing_nodiscard(const SourceFile& file,
                            std::vector<Finding>& findings) {
  if (!file.is_header) return;
  static const std::regex kConstAccessor(R"(\(\s*\)\s*const\b[^;{}]*[;{])");
  const std::string& code = file.code;
  for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                      kConstAccessor);
       it != std::sregex_iterator(); ++it) {
    const auto open = static_cast<std::size_t>(it->position());
    // Back up to the start of the declaration (past the previous ';', '{'
    // or '}') to see the attributes and the return type.
    std::size_t start = code.find_last_of(";{}", open);
    start = start == std::string::npos ? 0 : start + 1;
    std::string decl = code.substr(start, open - start);
    // Drop a leading access specifier left in range.
    for (const char* spec : {"public:", "private:", "protected:"}) {
      const std::size_t at = decl.rfind(spec);
      if (at != std::string::npos) {
        decl = decl.substr(at + std::string(spec).size());
      }
    }
    if (decl.find("[[nodiscard]]") != std::string::npos) continue;
    if (decl.find("operator") != std::string::npos) continue;
    if (decl.find("friend") != std::string::npos) continue;
    if (decl.find("~") != std::string::npos) continue;
    // Name = last identifier before '('; everything before is the return
    // type.  A void return has nothing to discard.
    static const std::regex kName(R"((\w+)\s*$)");
    std::smatch name_match;
    if (!std::regex_search(decl, name_match, kName)) continue;
    const std::string name = name_match[1].str();
    const std::string return_part =
        decl.substr(0, static_cast<std::size_t>(name_match.position()));
    if (std::regex_search(return_part, std::regex(R"(\bvoid\b(?!\s*\*))"))) {
      continue;
    }
    if (return_part.find_first_not_of(" \t\n") == std::string::npos) {
      continue;  // constructor-like, nothing to discard
    }
    report(file, "missing-nodiscard", line_of(code, open),
           "zero-argument const accessor '" + name +
               "()' lacks [[nodiscard]]",
           findings);
  }
}

void rule_kernel_aos_access(const SourceFile& file,
                            std::vector<Finding>& findings) {
  bool kernel = false;
  for (const std::string& suffix : kKernelFiles) {
    if (file.path.size() >= suffix.size() &&
        file.path.compare(file.path.size() - suffix.size(), suffix.size(),
                          suffix) == 0) {
      kernel = true;
      break;
    }
  }
  if (!kernel) return;
  static const std::regex kAosAccess(R"(\bstations_\s*\[)");
  for (auto it = std::sregex_iterator(file.code.begin(), file.code.end(),
                                      kAosAccess);
       it != std::sregex_iterator(); ++it) {
    report(file, "kernel-aos-access",
           line_of(file.code, static_cast<std::size_t>(it->position())),
           "per-station object indexing 'stations_[...]' in a kernel file; "
           "go through the SlotKernel arrays (or a Station view) instead",
           findings);
  }
}

/// recovery-side-effect: ring recovery decisions are owned by RecoveryFsm
/// (PR 10) — a direct start_recovery / start_rebuild call anywhere else in
/// wrtring/ skips the guard window, the WTR hold-off, and the request
/// de-duplication the FSM provides.  Declarations and the Engine method
/// definitions themselves (segments led by `void`) are not call sites; the
/// FSM's dispatch lines carry justified suppressions.  tpt/ is out of
/// scope: TptEngine::start_rebuild is a different, unrelated method.
void rule_recovery_side_effect(const SourceFile& file,
                               std::vector<Finding>& findings) {
  if (file.path.find("wrtring/") == std::string::npos) return;
  static const std::regex kCall(R"(\b(start_recovery|start_rebuild)\s*\()");
  const std::string& code = file.code;
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kCall);
       it != std::sregex_iterator(); ++it) {
    const auto at = static_cast<std::size_t>(it->position());
    // The statement segment before the name tells call from definition:
    // `void Engine::start_rebuild() {` / `void start_rebuild();` lead with
    // the return type, a call site never does.
    std::size_t start = code.find_last_of(";{}", at);
    start = start == std::string::npos ? 0 : start + 1;
    const std::string before = code.substr(start, at - start);
    if (std::regex_search(before, std::regex(R"(\bvoid\s*$|\bvoid\s+Engine\s*::\s*$)"))) {
      continue;
    }
    report(file, "recovery-side-effect", line_of(code, at),
           "direct '" + (*it)[1].str() +
               "' call outside RecoveryFsm — recovery decisions must go "
               "through the FSM (guard/WTR/de-dup); justify a suppression "
               "only for the FSM's own dispatch",
           findings);
  }
}

// --- shard-safety rules (PR 7) --------------------------------------------

/// True when the declaration segment contains any of the words that make a
/// `static`/global immutable or per-thread (and therefore shard-safe).
bool is_immutable_decl(const std::string& segment) {
  static const std::regex kImmutable(
      R"(\b(const|constexpr|constinit|thread_local)\b)");
  return std::regex_search(segment, kImmutable);
}

/// mutable-global-state, detector 1: `static` storage-duration variables at
/// any scope (static locals and static data members).  A declaration whose
/// first delimiter is '(' is a function or a direct-initialised object and
/// is skipped — parenthesised initialisers of mutable statics are rare
/// enough that the fixture covers the brace/equals forms only.
void rule_mutable_static(const SourceFile& file,
                         std::vector<Finding>& findings) {
  static const std::regex kStatic(R"(\bstatic\b)");
  const std::string& code = file.code;
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kStatic);
       it != std::sregex_iterator(); ++it) {
    const auto at = static_cast<std::size_t>(it->position());
    const std::size_t delim = code.find_first_of(";{(", at);
    if (delim == std::string::npos || code[delim] != ';') {
      if (delim == std::string::npos || code[delim] == '(') continue;
      // '{' first: brace-initialised static variable — still a static.
    }
    const std::size_t stop = std::min(delim, code.size());
    std::string segment = code.substr(at, stop - at);
    if (segment.find('(') != std::string::npos) continue;
    if (is_immutable_decl(segment)) continue;
    // The declarator name precedes any `= ...` initializer.
    const std::size_t init = segment.find('=');
    if (init != std::string::npos) segment = segment.substr(0, init);
    // Name = last identifier of the segment.
    static const std::regex kName(R"((\w+)\s*$)");
    std::smatch name;
    std::string trimmed = segment;
    const std::size_t end = trimmed.find_last_not_of(" \t\n");
    if (end != std::string::npos) trimmed = trimmed.substr(0, end + 1);
    if (!std::regex_search(trimmed, name, kName)) continue;
    if (name[1].str() == "static") continue;  // bare keyword (e.g. macros)
    report(file, "mutable-global-state", line_of(code, at),
           "mutable static '" + name[1].str() +
               "' — shards must own their state; make it const, "
               "thread_local, or justify a suppression",
           findings);
  }
}

/// mutable-global-state, detector 2: namespace-scope mutable globals.  The
/// repo writes namespace-scope declarations at column 0 (function bodies
/// and class members are indented), so the scan is line-anchored: a
/// column-0 declaration with no parentheses and no const/using/type-intro
/// keyword is a mutable global.
void rule_mutable_namespace_global(const SourceFile& file,
                                   std::vector<Finding>& findings) {
  static const std::regex kDecl(
      R"(^(?:inline\s+)?[A-Za-z_][\w:]*(?:\s*<[^;()]*>)?[\w:\s*&\[\]]*[\s*&](\w+)\s*(?:\{[^;]*\}|=[^;]*)?;)");
  static const std::regex kSkip(
      R"(^\s*(?:using|typedef|extern|template|friend|namespace|struct|class|enum|union|return|public|private|protected|#)\b)");
  std::istringstream stream(file.code);
  std::string line;
  std::size_t number = 0;
  while (std::getline(stream, line)) {
    ++number;
    if (line.empty() || std::isspace(static_cast<unsigned char>(line[0]))) {
      continue;
    }
    if (line.find('(') != std::string::npos) continue;
    if (std::regex_search(line, kSkip)) continue;
    if (is_immutable_decl(line)) continue;
    if (line.find("static") != std::string::npos) continue;  // detector 1
    std::smatch match;
    if (!std::regex_search(line, match, kDecl)) continue;
    report(file, "mutable-global-state", number,
           "mutable namespace-scope variable '" + match[1].str() +
               "' — shards must own their state; make it const, "
               "thread_local, or justify a suppression",
           findings);
  }
}

void rule_mutable_global_state(const SourceFile& file,
                               std::vector<Finding>& findings) {
  rule_mutable_static(file, findings);
  rule_mutable_namespace_global(file, findings);
}

/// cross-shard-handle applies to the ring/engine trees: a stored pointer or
/// reference to another shard's Engine/SlotKernel/Station would let one
/// worker thread reach into a second shard's mutable core.
bool is_ring_code(const std::string& path) {
  return path.find("wrtring/") != std::string::npos ||
         path.find("tpt/") != std::string::npos;
}

/// cross-shard-handle, detector 2: `*Frame` structs in ring code must be
/// pure value types.  Mailbox frames cross shard boundaries by design
/// (wrtring/mailbox.hpp), so ANY pointer or reference member — not just
/// the Engine/SlotKernel/Station trio — would hand the receiving shard a
/// live handle into the sender's mutable state.
void rule_frame_value_type(const SourceFile& file,
                           std::vector<Finding>& findings) {
  static const std::regex kFrameType(R"(\bstruct\s+(\w*Frame)\b[^;{]*\{)");
  const std::string& code = file.code;
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kFrameType);
       it != std::sregex_iterator(); ++it) {
    const std::string type = (*it)[1].str();
    const auto body_open =
        static_cast<std::size_t>(it->position() + it->length()) - 1;
    // Walk the body like the shared-field rule: depth-1 statements are the
    // members; nested braces (methods, nested types) are skipped.
    int depth = 0;
    std::string statement;
    std::size_t statement_start = body_open;
    for (std::size_t i = body_open; i < code.size(); ++i) {
      const char c = code[i];
      if (c == '{') {
        ++depth;
        if (depth == 2) statement.clear();
        continue;
      }
      if (c == '}') {
        --depth;
        if (depth == 0) break;
        if (depth == 1) {
          statement.clear();
          statement_start = i + 1;
        }
        continue;
      }
      if (depth != 1) continue;
      if (c == ';') {
        // Members only: methods / ctors carry parentheses.  Cut the
        // initializer so a '*' inside `= a * b` cannot false-positive; the
        // declarator's pointer/reference marker sits before the name.
        if (!statement.empty() &&
            statement.find('(') == std::string::npos) {
          std::string decl = statement;
          const std::size_t cut = decl.find_first_of("={");
          if (cut != std::string::npos) decl = decl.substr(0, cut);
          static const std::regex kPointerMember(R"([*&]+\s*(\w+)\s*$)");
          std::smatch member;
          if (std::regex_search(decl, member, kPointerMember)) {
            report(file, "cross-shard-handle",
                   line_of(code, statement_start),
                   "frame type '" + type + "' has pointer/reference member '" +
                       member[1].str() +
                       "' — mailbox frames cross shards and must be pure "
                       "value types",
                   findings);
          }
        }
        statement.clear();
        continue;
      }
      if (statement.empty()) {
        if (std::isspace(static_cast<unsigned char>(c)) != 0) continue;
        statement_start = i;
      }
      statement += c;
    }
  }
}

void rule_cross_shard_handle(const SourceFile& file,
                             std::vector<Finding>& findings) {
  if (!is_ring_code(file.path)) return;
  rule_frame_value_type(file, findings);
  static const std::regex kHandle(
      R"((?:\bconst\s+)?(?:\w+::)*\b(Engine|SlotKernel|Station)\s*[*&]+\s*(\w+)\s*(?:=[^;{}()]*)?;)");
  const std::string& code = file.code;
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kHandle);
       it != std::sregex_iterator(); ++it) {
    const auto at = static_cast<std::size_t>(it->position());
    // Declaration statements only: the segment since the previous
    // ';'/'{'/'}' must not sit inside a parameter list (no parens).
    std::size_t start = code.find_last_of(";{}", at);
    start = start == std::string::npos ? 0 : start + 1;
    const std::string before = code.substr(start, at - start);
    if (before.find('(') != std::string::npos ||
        before.find(')') != std::string::npos) {
      continue;
    }
    report(file, "cross-shard-handle", line_of(code, at),
           "stored raw handle '" + (*it)[2].str() + "' to a " +
               (*it)[1].str() +
               " — inter-ring communication must use value-type gateway "
               "messages; same-shard handles need a justified suppression",
           findings);
  }
}

/// One depth-1 statement of a registered shared type's body: flag it when
/// it is a field with no visible concurrency contract.
void check_shared_field(const SourceFile& file, const std::string& type,
                        const std::string& statement, std::size_t offset,
                        const LintContext& context,
                        std::vector<Finding>& findings) {
  std::string decl = statement;
  // Access specifiers share the statement slot with the first declaration
  // after them; strip them.
  static const std::regex kAccess(R"(\b(public|private|protected)\s*:)");
  decl = std::regex_replace(decl, kAccess, "");
  const std::size_t first = decl.find_first_not_of(" \t\n");
  if (first == std::string::npos) return;
  decl = decl.substr(first);
  static const std::regex kNotAField(
      R"(^(?:using|typedef|friend|template|static_assert|struct|class|enum|union)\b)");
  if (std::regex_search(decl, kNotAField)) return;
  const bool annotated =
      decl.find("WRT_GUARDED_BY") != std::string::npos ||
      decl.find("WRT_PT_GUARDED_BY") != std::string::npos;
  std::string probe = decl;
  static const std::regex kAnnotation(R"(WRT(_PT)?_GUARDED_BY\s*\([^)]*\))");
  probe = std::regex_replace(probe, kAnnotation, "");
  if (probe.find('(') != std::string::npos) return;  // method, ctor, =default
  static const std::regex kField(R"((\w+)\s*(?:\{[^;]*\}|=[^;]*)?$)");
  std::smatch name;
  if (!std::regex_search(probe, name, kField)) return;
  if (annotated || is_immutable_decl(probe)) return;
  static const std::regex kSyncType(
      R"(atomic|Mutex|mutex|once_flag|condition_variable)");
  if (std::regex_search(probe, kSyncType)) return;
  for (const std::string& shared : context.shared_types) {
    if (probe.find(shared) != std::string::npos) return;
  }
  report(file, "unguarded-shared-field", line_of(file.code, offset),
         "field '" + name[1].str() + "' of shared type '" + type +
             "' has no concurrency annotation — make it atomic/const, "
             "guard it with WRT_GUARDED_BY, or justify a suppression",
         findings);
}

/// unguarded-shared-field: every field of a registered shared type must
/// carry a concurrency story the analyser can see.
void rule_unguarded_shared_field(const SourceFile& file,
                                 const LintContext& context,
                                 std::vector<Finding>& findings) {
  if (context.shared_types.empty()) return;
  // alignas(...) is the one paren construct legitimate in a field decl;
  // blank it (preserving offsets) so the function-vs-field test stays "has
  // parentheses".
  std::string code = file.code;
  static const std::regex kAlignas(R"(\balignas\s*\([^)]*\))");
  for (std::smatch match;
       std::regex_search(code, match, kAlignas);) {
    for (std::size_t i = 0; i < static_cast<std::size_t>(match.length());
         ++i) {
      char& c = code[static_cast<std::size_t>(match.position()) + i];
      if (c != '\n') c = ' ';
    }
  }
  for (const std::string& type : context.shared_types) {
    const std::regex class_re("(?:class|struct)\\s+(?:[A-Za-z_]\\w*\\s+)*" +
                              type + "\\b[^;{]*\\{");
    std::smatch class_match;
    std::string::const_iterator search_from = code.cbegin();
    if (!std::regex_search(search_from, code.cend(), class_match, class_re)) {
      continue;
    }
    const auto body_open =
        static_cast<std::size_t>(class_match.position() +
                                 class_match.length()) - 1;
    // Walk the class body: statements at depth 1 are member declarations;
    // nested braces (inline method bodies, nested types) are skipped, and
    // returning to depth 1 resets the statement so a field following an
    // inline body is still seen.
    int depth = 0;
    std::string statement;
    std::size_t statement_start = body_open;
    for (std::size_t i = body_open; i < code.size(); ++i) {
      const char c = code[i];
      if (c == '{') {
        ++depth;
        if (depth == 2) statement.clear();
        continue;
      }
      if (c == '}') {
        --depth;
        if (depth == 0) break;
        if (depth == 1) {
          statement.clear();
          statement_start = i + 1;
        }
        continue;
      }
      if (depth != 1) continue;
      if (c == ';') {
        if (!statement.empty()) {
          check_shared_field(file, type, statement, statement_start,
                             context, findings);
        }
        statement.clear();
        continue;
      }
      if (statement.empty()) {
        if (std::isspace(static_cast<unsigned char>(c)) != 0) continue;
        statement_start = i;
      }
      statement += c;
    }
  }
}

bool load(const fs::path& path, SourceFile& file, LintContext& context,
          std::vector<Finding>& findings) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "wrt_lint: cannot read " << path << '\n';
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  file.path = path.generic_string();
  file.raw = buffer.str();
  file.code = strip_comments_and_strings(file.raw);
  file.is_header = path.extension() == ".hpp" || path.extension() == ".h";
  parse_suppressions(file, context, findings);
  parse_shared_types(file, context);
  return true;
}

void collect(const fs::path& root, std::vector<fs::path>& files) {
  if (fs::is_regular_file(root)) {
    files.push_back(root);
    return;
  }
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& p = entry.path();
    if (p.extension() == ".hpp" || p.extension() == ".cpp" ||
        p.extension() == ".h") {
      files.push_back(p);
    }
  }
  std::sort(files.begin(), files.end());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> roots;
  bool list_suppressions = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& rule : kRules) std::cout << rule << '\n';
      return 0;
    }
    if (arg == "--list-suppressions") {
      list_suppressions = true;
      continue;
    }
    roots.emplace_back(arg);
  }
  if (roots.empty()) roots.emplace_back("src");

  std::vector<fs::path> files;
  for (const fs::path& root : roots) {
    if (!fs::exists(root)) {
      std::cerr << "wrt_lint: no such path: " << root << '\n';
      return 2;
    }
    collect(root, files);
  }

  // Pass 1: load everything — suppressions and shared-type registrations
  // are cross-file context the rules need before any file is judged.
  std::vector<Finding> findings;
  LintContext context;
  std::vector<SourceFile> sources(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (!load(files[i], sources[i], context, findings)) return 2;
  }

  if (list_suppressions) {
    // Audit mode: every active suppression with its justification.  The
    // unknown-rule / missing-justification findings recorded during the
    // load pass still gate, so a suppression naming a retired rule rots
    // loudly instead of silently.
    for (const Suppression& s : context.suppressions) {
      std::cout << s.path << ':' << s.line << ": ["
                << (s.file_wide ? "file" : "line") << "] " << s.rule << ": "
                << s.reason << '\n';
    }
    std::cout << "wrt_lint: " << context.suppressions.size()
              << " active suppression(s)\n";
    for (const Finding& finding : findings) {
      std::cout << finding.path << ':' << finding.line << ": ["
                << finding.rule << "] " << finding.message << '\n';
    }
    return findings.empty() ? 0 : 1;
  }

  // Pass 2: the rules.
  for (SourceFile& file : sources) {
    rule_hot_path_assoc(file, findings);
    rule_by_value_frame_param(file, findings);
    rule_stale_include(file, findings);
    rule_missing_nodiscard(file, findings);
    rule_kernel_aos_access(file, findings);
    rule_recovery_side_effect(file, findings);
    rule_mutable_global_state(file, findings);
    rule_cross_shard_handle(file, findings);
    rule_unguarded_shared_field(file, context, findings);
  }

  for (const Finding& finding : findings) {
    std::cout << finding.path << ':' << finding.line << ": ["
              << finding.rule << "] " << finding.message << '\n';
  }
  if (findings.empty()) {
    std::cout << "wrt_lint: clean (" << files.size() << " files)\n";
    return 0;
  }
  std::cout << "wrt_lint: " << findings.size() << " finding(s) in "
            << files.size() << " files\n";
  return 1;
}
