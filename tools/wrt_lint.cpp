// wrt_lint — repo-specific static analysis for the WRT-Ring code base.
//
// Generic linters cannot know this repo's contracts, so this tool encodes
// them directly (see docs/API.md "Correctness tooling" for the rule table):
//
//   hot-path-assoc       The per-slot engine hot path is position-indexed
//                        by design (PR 1); node-based associative
//                        containers are banned from the hot-path files.
//   by-value-frame-param Packet / LinkFrame parameters must be passed by
//                        reference (or moved); silent copies on the data
//                        path are the repo's most common perf regression.
//   stale-include        A curated table of std headers whose usage is
//                        reliably greppable; flags includes with no use.
//   missing-nodiscard    Zero-argument const accessors in headers must be
//                        [[nodiscard]] — dropping an accessor result is
//                        always a bug.
//   kernel-aos-access    The per-slot passes operate on the SlotKernel's
//                        dense arrays (PR 6); `stations_[...]` access in a
//                        kernel file reintroduces the per-station object
//                        indirection the SoA refactor removed.
//
// Suppressions (a justification is mandatory):
//   // wrt-lint-allow(<rule>): <reason>        same line or line above
//   // wrt-lint-allow-file(<rule>): <reason>   whole file
//
// Usage: wrt_lint [--list-rules] [dir-or-file ...]   (default: src)
// Exits 0 when clean, 1 when any finding survives suppression.
//
// The scanner is textual by intent: it blanks comments and string literals
// and then works with regular expressions.  That keeps it dependency-free
// (no libclang in the container) and fast enough to run on every check.

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string path;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct SourceFile {
  std::string path;            // repo-relative, as given
  std::string raw;             // exact file content
  std::string code;            // comments + string literals blanked
  bool is_header = false;
  // rule -> raw lines carrying a justified wrt-lint-allow for it.
  std::map<std::string, std::set<std::size_t>> suppressed_lines;
  std::set<std::string> suppressed_rules;  // file-wide
};

const std::set<std::string> kRules = {
    "hot-path-assoc", "by-value-frame-param", "stale-include",
    "missing-nodiscard", "kernel-aos-access"};

// Files whose per-slot code must stay free of associative lookups.
const std::vector<std::string> kHotPathFiles = {
    "wrtring/engine.hpp", "wrtring/engine.cpp", "wrtring/station.hpp",
    "wrtring/station.cpp", "traffic/traffic.hpp", "traffic/traffic.cpp",
    "ring/frame.hpp",      "ring/frame.cpp"};

// Files implementing the slot-kernel passes: all per-station state must be
// reached through the SlotKernel arrays, never a station-object vector.
const std::vector<std::string> kKernelFiles = {
    "wrtring/engine.cpp", "wrtring/soa_kernel.hpp", "wrtring/soa_kernel.cpp"};

// stale-include table: header -> regex proving it is used.  Only headers
// whose entire API is reliably greppable belong here.
const std::vector<std::pair<std::string, std::string>> kIncludeUsage = {
    {"map", R"(std::(multi)?map\s*<)"},
    {"set", R"(std::(multi)?set\s*<)"},
    {"unordered_map", R"(std::unordered_(multi)?map\s*<)"},
    {"unordered_set", R"(std::unordered_(multi)?set\s*<)"},
    {"deque", R"(std::deque\s*<)"},
    {"queue", R"(std::(priority_)?queue\s*<)"},
    {"list", R"(std::(forward_)?list\s*<)"},
    {"optional",
     R"(std::optional|std::nullopt|std::make_optional|std::in_place)"},
    {"functional",
     R"(std::function\s*<|std::bind|std::invoke|std::ref\b|std::cref\b|)"
     R"(std::hash\s*<|std::plus|std::minus|std::less|std::greater)"},
    {"memory",
     R"(std::unique_ptr|std::shared_ptr|std::weak_ptr|std::make_unique|)"
     R"(std::make_shared|std::addressof|std::pmr)"},
    {"sstream", R"(std::[io]?stringstream)"},
};

std::size_t line_of(const std::string& text, std::size_t offset) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() +
                            static_cast<std::ptrdiff_t>(offset), '\n'));
}

/// Blanks //- and /* */-comments plus string and char literals with spaces
/// (newlines preserved so offsets keep mapping to the same lines).
std::string strip_comments_and_strings(const std::string& raw) {
  std::string out = raw;
  enum class State { kCode, kLine, kBlock, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') {
            if (i + 1 < out.size()) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < out.size()) out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

void parse_suppressions(SourceFile& file, std::vector<Finding>& findings) {
  static const std::regex kAllow(
      R"(wrt-lint-allow(-file)?\(([a-z0-9-]+)\)\s*:?\s*(.*))");
  std::istringstream stream(file.raw);
  std::string line;
  for (std::size_t number = 1; std::getline(stream, line); ++number) {
    std::smatch match;
    if (!std::regex_search(line, match, kAllow)) continue;
    const bool file_wide = match[1].matched;
    const std::string rule = match[2].str();
    const std::string reason = match[3].str();
    if (kRules.find(rule) == kRules.end()) {
      findings.push_back({file.path, number, "lint-suppression",
                          "suppression names unknown rule '" + rule + "'"});
      continue;
    }
    if (reason.find_first_not_of(" \t") == std::string::npos) {
      findings.push_back({file.path, number, "lint-suppression",
                          "suppression for '" + rule +
                              "' lacks a justification"});
      continue;
    }
    if (file_wide) {
      file.suppressed_rules.insert(rule);
    } else {
      // Covers the annotated line and the one below it.
      file.suppressed_lines[rule].insert(number);
      file.suppressed_lines[rule].insert(number + 1);
    }
  }
}

bool suppressed(const SourceFile& file, const std::string& rule,
                std::size_t line) {
  if (file.suppressed_rules.count(rule) != 0) return true;
  const auto it = file.suppressed_lines.find(rule);
  return it != file.suppressed_lines.end() && it->second.count(line) != 0;
}

void report(const SourceFile& file, const std::string& rule,
            std::size_t line, const std::string& message,
            std::vector<Finding>& findings) {
  if (!suppressed(file, rule, line)) {
    findings.push_back({file.path, line, rule, message});
  }
}

bool is_hot_path(const std::string& path) {
  for (const std::string& suffix : kHotPathFiles) {
    if (path.size() >= suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      return true;
    }
  }
  return false;
}

void rule_hot_path_assoc(const SourceFile& file,
                         std::vector<Finding>& findings) {
  if (!is_hot_path(file.path)) return;
  static const std::regex kAssoc(
      R"((std::(unordered_)?(multi)?(map|set)\s*<)|(#\s*include\s*<(map|set|unordered_map|unordered_set)>))");
  for (auto it = std::sregex_iterator(file.code.begin(), file.code.end(),
                                      kAssoc);
       it != std::sregex_iterator(); ++it) {
    report(file, "hot-path-assoc",
           line_of(file.code, static_cast<std::size_t>(it->position())),
           "associative container '" + it->str() +
               "' in a hot-path file; use util::FlatMap, a dense "
               "position-indexed vector, or a sorted vector",
           findings);
  }
}

void rule_by_value_frame_param(const SourceFile& file,
                               std::vector<Finding>& findings) {
  static const std::regex kByValue(
      R"([(,]\s*(const\s+)?((\w+::)*)(Packet|LinkFrame)\s+(\w+)\s*[,)])");
  for (auto it = std::sregex_iterator(file.code.begin(), file.code.end(),
                                      kByValue);
       it != std::sregex_iterator(); ++it) {
    const std::smatch& match = *it;
    report(file, "by-value-frame-param",
           line_of(file.code, static_cast<std::size_t>(match.position())),
           "parameter '" + match[5].str() + "' takes " + match[4].str() +
               " by value; pass by (const) reference or rvalue reference",
           findings);
  }
}

void rule_stale_include(const SourceFile& file,
                        std::vector<Finding>& findings) {
  for (const auto& [header, usage] : kIncludeUsage) {
    const std::regex include_re("#\\s*include\\s*<" + header + ">");
    std::smatch include_match;
    if (!std::regex_search(file.code, include_match, include_re)) continue;
    if (std::regex_search(file.code, std::regex(usage))) continue;
    report(file, "stale-include",
           line_of(file.code,
                   static_cast<std::size_t>(include_match.position())),
           "<" + header + "> is included but nothing from it is used",
           findings);
  }
}

void rule_missing_nodiscard(const SourceFile& file,
                            std::vector<Finding>& findings) {
  if (!file.is_header) return;
  static const std::regex kConstAccessor(R"(\(\s*\)\s*const\b[^;{}]*[;{])");
  const std::string& code = file.code;
  for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                      kConstAccessor);
       it != std::sregex_iterator(); ++it) {
    const auto open = static_cast<std::size_t>(it->position());
    // Back up to the start of the declaration (past the previous ';', '{'
    // or '}') to see the attributes and the return type.
    std::size_t start = code.find_last_of(";{}", open);
    start = start == std::string::npos ? 0 : start + 1;
    std::string decl = code.substr(start, open - start);
    // Drop a leading access specifier left in range.
    for (const char* spec : {"public:", "private:", "protected:"}) {
      const std::size_t at = decl.rfind(spec);
      if (at != std::string::npos) {
        decl = decl.substr(at + std::string(spec).size());
      }
    }
    if (decl.find("[[nodiscard]]") != std::string::npos) continue;
    if (decl.find("operator") != std::string::npos) continue;
    if (decl.find("friend") != std::string::npos) continue;
    if (decl.find("~") != std::string::npos) continue;
    // Name = last identifier before '('; everything before is the return
    // type.  A void return has nothing to discard.
    static const std::regex kName(R"((\w+)\s*$)");
    std::smatch name_match;
    if (!std::regex_search(decl, name_match, kName)) continue;
    const std::string name = name_match[1].str();
    const std::string return_part =
        decl.substr(0, static_cast<std::size_t>(name_match.position()));
    if (std::regex_search(return_part, std::regex(R"(\bvoid\b(?!\s*\*))"))) {
      continue;
    }
    if (return_part.find_first_not_of(" \t\n") == std::string::npos) {
      continue;  // constructor-like, nothing to discard
    }
    report(file, "missing-nodiscard", line_of(code, open),
           "zero-argument const accessor '" + name +
               "()' lacks [[nodiscard]]",
           findings);
  }
}

void rule_kernel_aos_access(const SourceFile& file,
                            std::vector<Finding>& findings) {
  bool kernel = false;
  for (const std::string& suffix : kKernelFiles) {
    if (file.path.size() >= suffix.size() &&
        file.path.compare(file.path.size() - suffix.size(), suffix.size(),
                          suffix) == 0) {
      kernel = true;
      break;
    }
  }
  if (!kernel) return;
  static const std::regex kAosAccess(R"(\bstations_\s*\[)");
  for (auto it = std::sregex_iterator(file.code.begin(), file.code.end(),
                                      kAosAccess);
       it != std::sregex_iterator(); ++it) {
    report(file, "kernel-aos-access",
           line_of(file.code, static_cast<std::size_t>(it->position())),
           "per-station object indexing 'stations_[...]' in a kernel file; "
           "go through the SlotKernel arrays (or a Station view) instead",
           findings);
  }
}

bool load(const fs::path& path, SourceFile& file,
          std::vector<Finding>& findings) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "wrt_lint: cannot read " << path << '\n';
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  file.path = path.generic_string();
  file.raw = buffer.str();
  file.code = strip_comments_and_strings(file.raw);
  file.is_header = path.extension() == ".hpp" || path.extension() == ".h";
  parse_suppressions(file, findings);
  return true;
}

void collect(const fs::path& root, std::vector<fs::path>& files) {
  if (fs::is_regular_file(root)) {
    files.push_back(root);
    return;
  }
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& p = entry.path();
    if (p.extension() == ".hpp" || p.extension() == ".cpp" ||
        p.extension() == ".h") {
      files.push_back(p);
    }
  }
  std::sort(files.begin(), files.end());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& rule : kRules) std::cout << rule << '\n';
      return 0;
    }
    roots.emplace_back(arg);
  }
  if (roots.empty()) roots.emplace_back("src");

  std::vector<fs::path> files;
  for (const fs::path& root : roots) {
    if (!fs::exists(root)) {
      std::cerr << "wrt_lint: no such path: " << root << '\n';
      return 2;
    }
    collect(root, files);
  }

  std::vector<Finding> findings;
  for (const fs::path& path : files) {
    SourceFile file;
    if (!load(path, file, findings)) return 2;
    rule_hot_path_assoc(file, findings);
    rule_by_value_frame_param(file, findings);
    rule_stale_include(file, findings);
    rule_missing_nodiscard(file, findings);
    rule_kernel_aos_access(file, findings);
  }

  for (const Finding& finding : findings) {
    std::cout << finding.path << ':' << finding.line << ": ["
              << finding.rule << "] " << finding.message << '\n';
  }
  if (findings.empty()) {
    std::cout << "wrt_lint: clean (" << files.size() << " files)\n";
    return 0;
  }
  std::cout << "wrt_lint: " << findings.size() << " finding(s) in "
            << files.size() << " files\n";
  return 1;
}
