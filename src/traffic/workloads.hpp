// Ready-made workload mixes for the scenarios the paper motivates
// (Section 1: "from university campus to airport lounge, from conference
// site to coffee store").  Each builder returns the flow specs and traces
// for one station population; experiments attach them to either MAC engine
// so comparisons always run the same offered load.
#pragma once

#include <cstdint>
#include <vector>

#include "traffic/trace.hpp"
#include "traffic/traffic.hpp"

namespace wrt::traffic {

/// A complete station workload: stochastic flows plus replayable traces.
struct Workload {
  std::vector<FlowSpec> flows;
  struct BoundTrace {
    Trace trace;
    FlowId flow;
    NodeId src;
    NodeId dst;
    std::int64_t deadline_slots;
  };
  std::vector<BoundTrace> traces;

  /// Mean offered load of everything, packets/slot.
  [[nodiscard]] double offered_load() const;
};

/// Conference site: every attendee runs a voice spurt trace to the
/// opposite station and light bursty browsing to a neighbour.
[[nodiscard]] Workload conference(std::size_t n_stations,
                                  std::int64_t rt_deadline_slots,
                                  Tick horizon, std::uint64_t seed);

/// Airport lounge: a few video (GOP) watchers, many bursty web users.
[[nodiscard]] Workload lounge(std::size_t n_stations,
                              std::size_t n_video,
                              std::int64_t rt_deadline_slots,
                              std::uint64_t seed);

/// Sensor/industrial floor: periodic tiny RT reports from everyone plus a
/// sink-directed best-effort trickle — the classic delay-bounded control
/// traffic profile.
[[nodiscard]] Workload sensor_floor(std::size_t n_stations,
                                    std::int64_t report_period_slots,
                                    std::int64_t rt_deadline_slots);

}  // namespace wrt::traffic
