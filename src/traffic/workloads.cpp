#include "traffic/workloads.hpp"

namespace wrt::traffic {

double Workload::offered_load() const {
  double total = 0.0;
  for (const FlowSpec& spec : flows) total += spec.offered_load();
  for (const BoundTrace& bound : traces) total += bound.trace.offered_load();
  return total;
}

Workload conference(std::size_t n_stations, std::int64_t rt_deadline_slots,
                    Tick horizon, std::uint64_t seed) {
  Workload workload;
  FlowId next_flow = 1;
  for (std::size_t s = 0; s < n_stations; ++s) {
    const auto src = static_cast<NodeId>(s);
    const auto opposite =
        static_cast<NodeId>((s + n_stations / 2) % n_stations);
    const auto neighbour = static_cast<NodeId>((s + 1) % n_stations);

    VoiceParams voice;
    workload.traces.push_back({make_voice_trace(voice, horizon, seed + s),
                               next_flow++, src, opposite,
                               rt_deadline_slots});

    FlowSpec browse;
    browse.id = next_flow++;
    browse.src = src;
    browse.dst = neighbour;
    browse.cls = TrafficClass::kBestEffort;
    browse.kind = ArrivalKind::kOnOff;
    browse.rate_per_slot = 0.15;
    browse.on_mean_slots = 100.0;
    browse.off_mean_slots = 500.0;
    workload.flows.push_back(browse);
  }
  return workload;
}

Workload lounge(std::size_t n_stations, std::size_t n_video,
                std::int64_t rt_deadline_slots, std::uint64_t seed) {
  Workload workload;
  FlowId next_flow = 1;
  for (std::size_t s = 0; s < n_stations; ++s) {
    const auto src = static_cast<NodeId>(s);
    const auto dst = static_cast<NodeId>((s + n_stations / 2) % n_stations);
    if (s < n_video) {
      GopParams gop;  // defaults: ~30 fps, GOP 12
      workload.traces.push_back({make_gop_trace(gop, 3000), next_flow++, src,
                                 dst, rt_deadline_slots});
    } else {
      FlowSpec web;
      web.id = next_flow++;
      web.src = src;
      web.dst = dst;
      web.cls = s % 3 == 0 ? TrafficClass::kAssured
                           : TrafficClass::kBestEffort;
      web.kind = ArrivalKind::kOnOff;
      web.rate_per_slot = 0.3;
      web.on_mean_slots = 60.0;
      web.off_mean_slots = 400.0 + static_cast<double>((seed + s) % 200);
      workload.flows.push_back(web);
    }
  }
  return workload;
}

Workload sensor_floor(std::size_t n_stations,
                      std::int64_t report_period_slots,
                      std::int64_t rt_deadline_slots) {
  Workload workload;
  FlowId next_flow = 1;
  const auto sink = static_cast<NodeId>(0);
  for (std::size_t s = 1; s < n_stations; ++s) {
    FlowSpec report;
    report.id = next_flow++;
    report.src = static_cast<NodeId>(s);
    report.dst = sink;
    report.cls = TrafficClass::kRealTime;
    report.kind = ArrivalKind::kCbr;
    report.period_slots = static_cast<double>(report_period_slots);
    report.deadline_slots = rt_deadline_slots;
    // Stagger phases so reports do not all collide on one slot.
    report.start_slot = static_cast<std::int64_t>(s) *
                        (report_period_slots /
                         static_cast<std::int64_t>(n_stations));
    workload.flows.push_back(report);

    FlowSpec log_upload;
    log_upload.id = next_flow++;
    log_upload.src = static_cast<NodeId>(s);
    log_upload.dst = sink;
    log_upload.cls = TrafficClass::kBestEffort;
    log_upload.kind = ArrivalKind::kPoisson;
    log_upload.rate_per_slot = 0.01;
    workload.flows.push_back(log_upload);
  }
  return workload;
}

}  // namespace wrt::traffic
