#include "traffic/traffic.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace wrt::traffic {

double FlowSpec::offered_load() const noexcept {
  switch (kind) {
    case ArrivalKind::kCbr:
      return period_slots > 0.0 ? 1.0 / period_slots : 0.0;
    case ArrivalKind::kPoisson:
      return rate_per_slot;
    case ArrivalKind::kOnOff: {
      const double duty =
          on_mean_slots / (on_mean_slots + off_mean_slots);
      return rate_per_slot * duty;
    }
  }
  return 0.0;
}

TrafficSource::TrafficSource(FlowSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)),
      rng_(seed, 0xF10B + spec_.id),
      next_arrival_(slots_to_ticks(spec_.start_slot)) {
  if (spec_.kind == ArrivalKind::kOnOff) {
    phase_end_ = next_arrival_ +
                 static_cast<Tick>(rng_.exponential(
                     static_cast<double>(slots_to_ticks(1)) * spec_.on_mean_slots));
  }
}

Tick TrafficSource::draw_gap() {
  const auto ticks_per_slot = static_cast<double>(kTicksPerSlot);
  switch (spec_.kind) {
    case ArrivalKind::kCbr:
      return std::max<Tick>(
          1, static_cast<Tick>(std::llround(spec_.period_slots * ticks_per_slot)));
    case ArrivalKind::kPoisson:
    case ArrivalKind::kOnOff: {
      if (spec_.rate_per_slot <= 0.0) return kNeverTick;
      const double mean_ticks = ticks_per_slot / spec_.rate_per_slot;
      return std::max<Tick>(1, static_cast<Tick>(rng_.exponential(mean_ticks)));
    }
  }
  return kNeverTick;
}

void TrafficSource::poll(Tick now, std::vector<Packet>& out) {
  while (next_arrival_ <= now && next_arrival_ != kNeverTick) {
    if (spec_.kind == ArrivalKind::kOnOff) {
      // Advance the on/off phase machine past the arrival instant.
      while (phase_end_ <= next_arrival_) {
        on_ = !on_;
        const double mean_slots = on_ ? spec_.on_mean_slots : spec_.off_mean_slots;
        phase_end_ += std::max<Tick>(
            1, static_cast<Tick>(rng_.exponential(
                   mean_slots * static_cast<double>(kTicksPerSlot))));
      }
      if (!on_) {
        // Skip arrivals during OFF: jump to the phase boundary.
        next_arrival_ = phase_end_;
        continue;
      }
    }
    Packet packet;
    packet.flow = spec_.id;
    packet.cls = spec_.cls;
    packet.src = spec_.src;
    packet.dst = spec_.dst;
    packet.created = next_arrival_;
    packet.sequence = sequence_++;
    packet.deadline = spec_.cls == TrafficClass::kRealTime &&
                              spec_.deadline_slots > 0
                          ? next_arrival_ + slots_to_ticks(spec_.deadline_slots)
                          : kNeverTick;
    out.push_back(packet);
    const Tick gap = draw_gap();
    if (gap == kNeverTick) {
      next_arrival_ = kNeverTick;
      return;
    }
    next_arrival_ += gap;
  }
}

std::vector<Packet> SaturatedSource::take(Tick now, std::size_t count) {
  std::vector<Packet> packets;
  packets.reserve(count);
  take_into(now, count, packets);
  return packets;
}

void SaturatedSource::take_into(Tick now, std::size_t count,
                                std::vector<Packet>& out) {
  for (std::size_t i = 0; i < count; ++i) {
    Packet packet;
    packet.flow = spec_.id;
    packet.cls = spec_.cls;
    packet.src = spec_.src;
    packet.dst = spec_.dst;
    packet.created = now;
    packet.sequence = sequence_++;
    packet.deadline = spec_.cls == TrafficClass::kRealTime &&
                              spec_.deadline_slots > 0
                          ? now + slots_to_ticks(spec_.deadline_slots)
                          : kNeverTick;
    out.push_back(packet);
  }
}

void Sink::record_delivery(const Packet& packet, Tick now) {
  auto& cls = classes_[static_cast<std::size_t>(packet.cls)];
  const double delay = ticks_to_slots_real(now - packet.created);
  cls.delay_slots.add(delay);
  ++cls.delivered;
  if (packet.deadline != kNeverTick && now > packet.deadline) {
    ++cls.deadline_misses;
    ++per_flow_counts_[packet.flow].deadline_misses;
  }
  per_flow_delay_[packet.flow].add(delay);
}

void Sink::record_drop(const Packet& packet) {
  ++classes_[static_cast<std::size_t>(packet.cls)].dropped;
  ++per_flow_counts_[packet.flow].dropped;
}

const Sink::ClassStats& Sink::by_class(TrafficClass cls) const {
  return classes_[static_cast<std::size_t>(cls)];
}

std::uint64_t Sink::total_delivered() const noexcept {
  return classes_[0].delivered + classes_[1].delivered + classes_[2].delivered;
}

double Sink::rt_miss_ratio() const noexcept {
  const auto& rt = classes_[static_cast<std::size_t>(TrafficClass::kRealTime)];
  const std::uint64_t total = rt.delivered + rt.dropped;
  if (total == 0) return 0.0;
  return static_cast<double>(rt.deadline_misses + rt.dropped) /
         static_cast<double>(total);
}

double Sink::throughput(Tick t0, Tick t1) const noexcept {
  if (t1 <= t0) return 0.0;
  return static_cast<double>(total_delivered()) / ticks_to_slots_real(t1 - t0);
}

}  // namespace wrt::traffic
