#include "traffic/trace.hpp"

#include <algorithm>
#include <cassert>

namespace wrt::traffic {

Trace::Trace(std::vector<TraceEntry> entries) : entries_(std::move(entries)) {
  assert(std::is_sorted(
      entries_.begin(), entries_.end(),
      [](const TraceEntry& a, const TraceEntry& b) { return a.at < b.at; }));
}

Trace Trace::record(TrafficSource& source, Tick horizon) {
  std::vector<Packet> packets;
  source.poll(horizon, packets);
  std::vector<TraceEntry> entries;
  entries.reserve(packets.size());
  for (const Packet& packet : packets) {
    if (!entries.empty() && entries.back().at == packet.created &&
        entries.back().cls == packet.cls) {
      ++entries.back().packets;
    } else {
      entries.push_back({packet.created, packet.cls, 1});
    }
  }
  return Trace(std::move(entries));
}

Trace Trace::merge(const Trace& a, const Trace& b) {
  std::vector<TraceEntry> merged;
  merged.reserve(a.entries_.size() + b.entries_.size());
  std::merge(a.entries_.begin(), a.entries_.end(), b.entries_.begin(),
             b.entries_.end(), std::back_inserter(merged),
             [](const TraceEntry& x, const TraceEntry& y) {
               return x.at < y.at;
             });
  return Trace(std::move(merged));
}

std::uint64_t Trace::total_packets() const noexcept {
  std::uint64_t total = 0;
  for (const TraceEntry& entry : entries_) total += entry.packets;
  return total;
}

double Trace::offered_load() const noexcept {
  if (entries_.empty()) return 0.0;
  const Tick span = entries_.back().at - entries_.front().at;
  if (span <= 0) return 0.0;
  return static_cast<double>(total_packets()) / ticks_to_slots_real(span);
}

TraceSource::TraceSource(Trace trace, FlowId flow, NodeId src, NodeId dst,
                         std::int64_t deadline_slots)
    : trace_(std::move(trace)),
      flow_(flow),
      src_(src),
      dst_(dst),
      deadline_slots_(deadline_slots) {}

void TraceSource::poll(Tick now, std::vector<Packet>& out) {
  const auto& entries = trace_.entries();
  while (cursor_ < entries.size() && entries[cursor_].at <= now) {
    const TraceEntry& entry = entries[cursor_];
    for (std::uint32_t i = 0; i < entry.packets; ++i) {
      Packet packet;
      packet.flow = flow_;
      packet.cls = entry.cls;
      packet.src = src_;
      packet.dst = dst_;
      packet.created = entry.at;
      packet.sequence = sequence_++;
      packet.deadline =
          entry.cls == TrafficClass::kRealTime && deadline_slots_ > 0
              ? entry.at + slots_to_ticks(deadline_slots_)
              : kNeverTick;
      out.push_back(packet);
    }
    ++cursor_;
  }
}

Trace make_gop_trace(const GopParams& params, std::uint32_t frames,
                     Tick start) {
  std::vector<TraceEntry> entries;
  entries.reserve(frames);
  for (std::uint32_t frame = 0; frame < frames; ++frame) {
    const Tick at =
        start + slots_to_ticks(params.frame_period_slots) *
                    static_cast<Tick>(frame);
    const std::uint32_t in_gop = frame % params.gop_length;
    std::uint32_t packets = params.b_frame_packets;
    if (in_gop == 0) {
      packets = params.i_frame_packets;
    } else if (params.p_spacing > 0 && in_gop % params.p_spacing == 0) {
      packets = params.p_frame_packets;
    }
    entries.push_back({at, TrafficClass::kRealTime, packets});
  }
  return Trace(std::move(entries));
}

Trace make_voice_trace(const VoiceParams& params, Tick horizon,
                       std::uint64_t seed) {
  util::RngStream rng(seed, 0x701CE);
  std::vector<TraceEntry> entries;
  Tick now = 0;
  bool talking = true;
  Tick phase_end = static_cast<Tick>(
      rng.exponential(params.talkspurt_mean_slots)) * kTicksPerSlot;
  while (now < horizon) {
    if (talking) {
      while (now < phase_end && now < horizon) {
        entries.push_back({now, TrafficClass::kRealTime, 1});
        now += slots_to_ticks(params.packet_period_slots);
      }
    } else {
      now = std::min(phase_end, horizon);
    }
    talking = !talking;
    const double mean = talking ? params.talkspurt_mean_slots
                                : params.silence_mean_slots;
    phase_end = now + static_cast<Tick>(rng.exponential(mean)) * kTicksPerSlot;
  }
  return Trace(std::move(entries));
}

}  // namespace wrt::traffic
