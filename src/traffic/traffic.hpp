// Traffic generation and accounting.
//
// The paper's applications fall into two MAC types (real-time with
// deadlines, best-effort without — Section 2.2) refined into three Diffserv
// classes (Section 2.3).  Flows are described by a FlowSpec; TrafficSource
// turns a spec into a deterministic, seeded arrival process (CBR for
// audio/video-like QoS streams, Poisson and on-off bursts for data); the
// Sink records delivery delay, deadline misses, and throughput per flow and
// per class.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/stats.hpp"
#include "util/flat_map.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace wrt::traffic {

/// One MAC-layer packet (i.e. one slot payload).
struct Packet {
  FlowId flow = kInvalidFlow;
  TrafficClass cls = TrafficClass::kBestEffort;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Tick created = 0;
  Tick deadline = kNeverTick;  ///< absolute; kNeverTick for best-effort
  std::uint64_t sequence = 0;
};

/// Growable circular FIFO of packets.  Class queues sit on the per-slot hot
/// path (empty/front checks every slot, pop/push on every transmission), so
/// they are ring buffers over one contiguous allocation: steady-state
/// enqueue/dequeue never allocates and never shifts elements, unlike a
/// std::deque's chunk churn.  Capacity doubles on overflow (amortised O(1)).
class PacketRing {
 public:
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] Packet& front() noexcept { return slots_[head_]; }
  [[nodiscard]] const Packet& front() const noexcept { return slots_[head_]; }

  void pop_front() noexcept {
    head_ = head_ + 1 == slots_.size() ? 0 : head_ + 1;
    --count_;
  }

  void push_back(Packet&& packet) {
    if (count_ == slots_.size()) grow();
    std::size_t tail = head_ + count_;
    if (tail >= slots_.size()) tail -= slots_.size();
    slots_[tail] = std::move(packet);
    ++count_;
  }
  void push_back(const Packet& packet) { push_back(Packet(packet)); }

  void clear() noexcept {
    head_ = 0;
    count_ = 0;
  }

 private:
  void grow() {
    std::vector<Packet> bigger(slots_.empty() ? 8 : slots_.size() * 2);
    for (std::size_t i = 0; i < count_; ++i) {
      std::size_t at = head_ + i;
      if (at >= slots_.size()) at -= slots_.size();
      bigger[i] = std::move(slots_[at]);
    }
    slots_ = std::move(bigger);
    head_ = 0;
  }

  std::vector<Packet> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

enum class ArrivalKind : std::uint8_t {
  kCbr,      ///< one packet every `period_slots` slots (jitter-free)
  kPoisson,  ///< exponential inter-arrivals with mean 1/`rate_per_slot`
  kOnOff,    ///< bursty: exponential ON (CBR at rate) / OFF periods
};

struct FlowSpec {
  FlowId id = kInvalidFlow;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  TrafficClass cls = TrafficClass::kBestEffort;
  ArrivalKind kind = ArrivalKind::kCbr;

  double period_slots = 10.0;     ///< kCbr: inter-arrival in slots
  double rate_per_slot = 0.1;     ///< kPoisson / kOnOff-on: packets per slot
  double on_mean_slots = 100.0;   ///< kOnOff: mean ON duration
  double off_mean_slots = 100.0;  ///< kOnOff: mean OFF duration

  /// Relative deadline in slots for real-time flows (kNever for BE).
  std::int64_t deadline_slots = 0;

  /// Slot offset of the first arrival.
  std::int64_t start_slot = 0;

  /// Mean offered load of this flow in packets/slot.
  [[nodiscard]] double offered_load() const noexcept;
};

/// Seeded arrival process for one flow.
class TrafficSource {
 public:
  TrafficSource(FlowSpec spec, std::uint64_t seed);

  /// Appends to `out` every packet arriving in (last_poll, now]; sets
  /// created/deadline from arrival time.
  void poll(Tick now, std::vector<Packet>& out);

  [[nodiscard]] const FlowSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint64_t generated() const noexcept { return sequence_; }

 private:
  [[nodiscard]] Tick draw_gap();

  FlowSpec spec_;
  util::RngStream rng_;
  Tick next_arrival_;
  std::uint64_t sequence_ = 0;
  bool on_ = true;           // kOnOff phase
  Tick phase_end_ = 0;       // kOnOff phase boundary
};

/// Always-backlogged source: keeps a station's queue non-empty.  Used for
/// saturation/worst-case experiments where the analytical bounds assume
/// every station always has traffic ready (Section 2.6).
class SaturatedSource {
 public:
  SaturatedSource(FlowSpec spec) : spec_(std::move(spec)) {}

  /// Produces up to `count` packets stamped at `now`.
  [[nodiscard]] std::vector<Packet> take(Tick now, std::size_t count);

  /// Allocation-free variant: appends the packets to `out` instead of
  /// returning a fresh vector.  The engine polls saturated sources every
  /// slot, so topping up a queue must not cost a heap allocation per slot.
  void take_into(Tick now, std::size_t count, std::vector<Packet>& out);

  [[nodiscard]] const FlowSpec& spec() const noexcept { return spec_; }

 private:
  FlowSpec spec_;
  std::uint64_t sequence_ = 0;
};

/// Delivery accounting, per class and per flow.
///
/// Degenerate distributions are first-class: a class (or flow) with zero or
/// one delivery reports finite, well-defined statistics — mean()/min()/max()
/// of an empty series are 0.0 and quantile() of a single sample is that
/// sample — so sweep harnesses (e.g. the voice admission cliff, where a
/// class legitimately sees nothing) never have to guard their reporting.
class Sink {
 public:
  void record_delivery(const Packet& packet, Tick now);
  void record_drop(const Packet& packet);

  struct ClassStats {
    sim::SampleStats delay_slots;  ///< creation -> delivery, in slots
    std::uint64_t delivered = 0;
    std::uint64_t deadline_misses = 0;
    std::uint64_t dropped = 0;
  };

  /// Per-flow deadline-miss / drop counters.  Per-flow *delay* lives in
  /// per_flow(); this is the loss side, which per-call quality scoring
  /// (app::score_call) needs flow-resolved rather than class-aggregated.
  struct FlowCounts {
    std::uint64_t deadline_misses = 0;  ///< delivered, but past deadline
    std::uint64_t dropped = 0;
  };

  [[nodiscard]] const ClassStats& by_class(TrafficClass cls) const;
  [[nodiscard]] std::uint64_t total_delivered() const noexcept;

  /// Deadline-miss ratio among delivered+dropped real-time packets.
  [[nodiscard]] double rt_miss_ratio() const noexcept;

  /// Mean delivered throughput in packets/slot over [t0, t1].
  [[nodiscard]] double throughput(Tick t0, Tick t1) const noexcept;

  /// Per-flow delay stats (present only for flows with deliveries).
  [[nodiscard]] const util::FlatMap<FlowId, sim::SampleStats>& per_flow()
      const {
    return per_flow_delay_;
  }

  /// Per-flow miss/drop counters (present only for flows that missed a
  /// deadline or were dropped; a clean flow has no entry).
  [[nodiscard]] const util::FlatMap<FlowId, FlowCounts>& per_flow_counts()
      const {
    return per_flow_counts_;
  }

 private:
  ClassStats classes_[3];
  // Flat map: record_delivery() sits on the per-delivery hot path and a
  // simulation has few distinct flows.
  util::FlatMap<FlowId, sim::SampleStats> per_flow_delay_;
  // Touched only on the miss/drop paths, so clean runs pay nothing.
  util::FlatMap<FlowId, FlowCounts> per_flow_counts_;
};

}  // namespace wrt::traffic
