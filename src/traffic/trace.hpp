// Trace-driven and application-shaped traffic.
//
// The paper motivates WRT-Ring with QoS applications (audio/video in
// meeting rooms); real deployments would feed the MAC with encoder output,
// which is neither CBR nor Poisson.  Since no production traces ship with
// this reproduction, this module provides the synthetic equivalents:
//
//  * Trace        — an explicit (slot, class) arrival list, recordable from
//                   any source and replayable bit-exactly (regression
//                   workloads, cross-protocol A/B runs).
//  * VideoGopSource — an MPEG-like group-of-pictures pattern: a large I
//                   burst followed by smaller P/B bursts at the frame rate;
//                   the bursty shape is what stresses the SAT-hold path.
//  * VoiceSource  — talkspurt/silence (exponential on/off) CBR-in-spurt
//                   voice, the classic conversational-speech model.
#pragma once

#include <cstdint>
#include <vector>

#include "traffic/traffic.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace wrt::traffic {

/// One recorded arrival.
struct TraceEntry {
  Tick at = 0;
  TrafficClass cls = TrafficClass::kBestEffort;
  std::uint32_t packets = 1;  ///< burst size arriving together
};

/// An arrival trace: replayable, mergeable, recordable.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<TraceEntry> entries);

  /// Records every arrival a TrafficSource produces up to `horizon`.
  [[nodiscard]] static Trace record(TrafficSource& source, Tick horizon);

  /// Merges two traces (stable by time).
  [[nodiscard]] static Trace merge(const Trace& a, const Trace& b);

  [[nodiscard]] const std::vector<TraceEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Total packets in the trace.
  [[nodiscard]] std::uint64_t total_packets() const noexcept;

  /// Mean offered load in packets/slot over the trace span.
  [[nodiscard]] double offered_load() const noexcept;

 private:
  std::vector<TraceEntry> entries_;  // sorted by `at`
};

/// Replays a trace as packets of one flow.
class TraceSource {
 public:
  TraceSource(Trace trace, FlowId flow, NodeId src, NodeId dst,
              std::int64_t deadline_slots = 0);

  /// Appends packets arriving in (last poll, now].
  void poll(Tick now, std::vector<Packet>& out);

  [[nodiscard]] bool exhausted() const noexcept {
    return cursor_ >= trace_.size();
  }

 private:
  Trace trace_;
  FlowId flow_;
  NodeId src_;
  NodeId dst_;
  std::int64_t deadline_slots_;
  std::size_t cursor_ = 0;
  std::uint64_t sequence_ = 0;
};

/// MPEG-like GOP pattern generator.
struct GopParams {
  std::int64_t frame_period_slots = 33;  ///< ~30 fps at 1 ms slots
  std::uint32_t gop_length = 12;         ///< frames per GOP (1 I + rest P/B)
  std::uint32_t i_frame_packets = 8;
  std::uint32_t p_frame_packets = 3;
  std::uint32_t b_frame_packets = 1;
  /// Pattern position of P frames inside the GOP (every 3rd frame here).
  std::uint32_t p_spacing = 3;
};

/// Builds a deterministic GOP trace of `frames` frames.
[[nodiscard]] Trace make_gop_trace(const GopParams& params,
                                   std::uint32_t frames,
                                   Tick start = 0);

/// Talkspurt/silence voice model.
struct VoiceParams {
  std::int64_t packet_period_slots = 20;  ///< packetisation interval
  double talkspurt_mean_slots = 1000.0;
  double silence_mean_slots = 1350.0;     ///< Brady-model-ish ratio
};

/// Draws a seeded voice trace covering `horizon` slots.
[[nodiscard]] Trace make_voice_trace(const VoiceParams& params, Tick horizon,
                                     std::uint64_t seed);

}  // namespace wrt::traffic
