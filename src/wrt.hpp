// Umbrella header: the full public API of the WRT-Ring reproduction.
//
//   #include "wrt.hpp"
//
// pulls in the protocol engine, the TPT baseline, the analytical bounds and
// every substrate.  Fine-grained consumers should include the individual
// module headers instead (each is self-contained).
#pragma once

#include "analysis/allocation.hpp"   // IWYU pragma: export
#include "analysis/delay_model.hpp"  // IWYU pragma: export
#include "analysis/bounds.hpp"       // IWYU pragma: export
#include "analysis/schedulability.hpp"  // IWYU pragma: export
#include "cdma/channel.hpp"          // IWYU pragma: export
#include "cdma/code_assignment.hpp"  // IWYU pragma: export
#include "diffserv/diffserv.hpp"     // IWYU pragma: export
#include "phy/link_quality.hpp"      // IWYU pragma: export
#include "phy/mobility.hpp"          // IWYU pragma: export
#include "phy/topology.hpp"          // IWYU pragma: export
#include "ring/frame.hpp"            // IWYU pragma: export
#include "ring/virtual_ring.hpp"     // IWYU pragma: export
#include "sim/batch_means.hpp"       // IWYU pragma: export
#include "sim/event_trace.hpp"       // IWYU pragma: export
#include "sim/replication.hpp"       // IWYU pragma: export
#include "sim/scheduler.hpp"         // IWYU pragma: export
#include "sim/stats.hpp"             // IWYU pragma: export
#include "tpt/allocation.hpp"        // IWYU pragma: export
#include "tpt/engine.hpp"            // IWYU pragma: export
#include "tpt/tree.hpp"              // IWYU pragma: export
#include "traffic/trace.hpp"         // IWYU pragma: export
#include "traffic/workloads.hpp"     // IWYU pragma: export
#include "traffic/traffic.hpp"       // IWYU pragma: export
#include "util/args.hpp"             // IWYU pragma: export
#include "util/log.hpp"              // IWYU pragma: export
#include "util/result.hpp"           // IWYU pragma: export
#include "util/rng.hpp"              // IWYU pragma: export
#include "util/table.hpp"            // IWYU pragma: export
#include "util/types.hpp"            // IWYU pragma: export
#include "wrtring/admission.hpp"     // IWYU pragma: export
#include "wrtring/engine.hpp"        // IWYU pragma: export
#include "wrtring/gateway.hpp"       // IWYU pragma: export
#include "wrtring/report.hpp"        // IWYU pragma: export
#include "wrtring/multiring.hpp"     // IWYU pragma: export
#include "wrtring/scenario.hpp"      // IWYU pragma: export
