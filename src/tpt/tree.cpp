#include "tpt/tree.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace wrt::tpt {

util::Result<Tree> Tree::build(const phy::Topology& topology, NodeId root) {
  if (root >= topology.node_count() || !topology.alive(root)) {
    return util::Error::invalid_argument("bad tree root");
  }
  Tree tree;
  tree.root_ = root;
  tree.parent_.assign(topology.node_count(), kInvalidNode);
  tree.children_.assign(topology.node_count(), {});

  std::vector<bool> seen(topology.node_count(), false);
  std::queue<NodeId> frontier;
  frontier.push(root);
  seen[root] = true;
  tree.members_.push_back(root);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    std::vector<NodeId> neighbors = topology.neighbors(u);
    std::sort(neighbors.begin(), neighbors.end());
    for (const NodeId v : neighbors) {
      if (seen[v]) continue;
      seen[v] = true;
      tree.parent_[v] = u;
      tree.children_[u].push_back(v);
      tree.members_.push_back(v);
      frontier.push(v);
    }
  }

  std::size_t alive_count = 0;
  for (NodeId n = 0; n < topology.node_count(); ++n) {
    if (topology.alive(n)) ++alive_count;
  }
  if (tree.members_.size() != alive_count) {
    return util::Error::not_reachable(
        "alive subgraph is not connected; tree covers only part of it");
  }
  return tree;
}

bool Tree::contains(NodeId node) const {
  return std::find(members_.begin(), members_.end(), node) != members_.end();
}

NodeId Tree::parent(NodeId node) const {
  if (node >= parent_.size()) throw std::out_of_range("Tree::parent");
  return parent_[node];
}

const std::vector<NodeId>& Tree::children(NodeId node) const {
  if (node >= children_.size()) throw std::out_of_range("Tree::children");
  return children_[node];
}

void Tree::add_child(NodeId parent, NodeId node) {
  if (!contains(parent)) throw std::invalid_argument("parent not in tree");
  if (contains(node)) throw std::invalid_argument("node already in tree");
  if (node >= parent_.size()) {
    parent_.resize(node + 1, kInvalidNode);
    children_.resize(node + 1);
  }
  parent_[node] = parent;
  children_[parent].push_back(node);
  members_.push_back(node);
}

void Tree::tour_visit(NodeId node, std::vector<NodeId>& tour) const {
  tour.push_back(node);
  for (const NodeId child : children_[node]) {
    tour_visit(child, tour);
    tour.push_back(node);
  }
}

std::vector<NodeId> Tree::euler_tour() const {
  std::vector<NodeId> tour;
  tour.reserve(2 * members_.size());
  tour_visit(root_, tour);
  return tour;
}

std::vector<NodeId> Tree::path_to_root(NodeId node) const {
  std::vector<NodeId> path;
  NodeId current = node;
  while (current != kInvalidNode) {
    path.push_back(current);
    current = parent_[current];
  }
  return path;
}

std::vector<NodeId> Tree::path(NodeId a, NodeId b) const {
  const std::vector<NodeId> up_a = path_to_root(a);
  const std::vector<NodeId> up_b = path_to_root(b);
  // Find the lowest common ancestor by marking a's ancestors.
  std::vector<bool> on_a(parent_.size(), false);
  for (const NodeId n : up_a) on_a[n] = true;
  NodeId lca = kInvalidNode;
  for (const NodeId n : up_b) {
    if (on_a[n]) {
      lca = n;
      break;
    }
  }
  if (lca == kInvalidNode) throw std::invalid_argument("nodes not in one tree");

  std::vector<NodeId> result;
  for (const NodeId n : up_a) {
    result.push_back(n);
    if (n == lca) break;
  }
  std::vector<NodeId> down;
  for (const NodeId n : up_b) {
    if (n == lca) break;
    down.push_back(n);
  }
  std::reverse(down.begin(), down.end());
  result.insert(result.end(), down.begin(), down.end());
  return result;
}

NodeId Tree::next_hop(NodeId from, NodeId to) const {
  const std::vector<NodeId> route = path(from, to);
  if (route.size() < 2) return to;
  return route[1];
}

bool Tree::valid_over(const phy::Topology& topology) const {
  for (const NodeId node : members_) {
    if (!topology.alive(node)) return false;
    if (node == root_) continue;
    if (!topology.reachable(node, parent_[node])) return false;
  }
  return true;
}

}  // namespace wrt::tpt
