// Token-passing tree topology (Section 3.1, after Jianqiang et al. [11]).
//
// TPT organises the ad hoc network as a tree rooted at the initiator; the
// token visits every station with a depth-first walk, so one full round
// traverses every tree edge twice: 2 (N - 1) link traversals (Section 3.2.1,
// Figure 4a).  This module builds BFS trees over the connectivity graph,
// produces the Euler (DFS) token tour, and answers routing queries for
// multi-hop forwarding along tree paths.
#pragma once

#include <vector>

#include "phy/topology.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace wrt::tpt {

class Tree {
 public:
  Tree() = default;

  /// Builds a BFS tree over the alive subgraph from `root`.  Fails when the
  /// alive subgraph is not connected.
  [[nodiscard]] static util::Result<Tree> build(const phy::Topology& topology,
                                                NodeId root);

  [[nodiscard]] NodeId root() const noexcept { return root_; }
  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] bool contains(NodeId node) const;

  [[nodiscard]] NodeId parent(NodeId node) const;
  [[nodiscard]] const std::vector<NodeId>& children(NodeId node) const;
  [[nodiscard]] const std::vector<NodeId>& members() const noexcept {
    return members_;
  }

  /// Adds `node` as a child of `parent` (join procedure, Section 3.1.1).
  void add_child(NodeId parent, NodeId node);

  /// The depth-first token tour: the sequence of stations the token visits
  /// in one round, starting and ending at the root.  Consecutive entries
  /// are adjacent in the tree; the sequence has 2 (N - 1) + 1 entries, i.e.
  /// 2 (N - 1) link traversals.
  [[nodiscard]] std::vector<NodeId> euler_tour() const;

  /// Tree path from a to b (inclusive endpoints) through the common
  /// ancestor; used to forward data that is out of direct radio range.
  [[nodiscard]] std::vector<NodeId> path(NodeId a, NodeId b) const;

  /// Next hop from `from` toward `to` along the tree.
  [[nodiscard]] NodeId next_hop(NodeId from, NodeId to) const;

  /// True iff every tree edge is still up in `topology`.
  [[nodiscard]] bool valid_over(const phy::Topology& topology) const;

 private:
  void tour_visit(NodeId node, std::vector<NodeId>& tour) const;
  [[nodiscard]] std::vector<NodeId> path_to_root(NodeId node) const;

  NodeId root_ = kInvalidNode;
  std::vector<NodeId> members_;
  // Indexed by NodeId (sparse; kInvalidNode parent for non-members & root).
  std::vector<NodeId> parent_;
  std::vector<std::vector<NodeId>> children_;
};

}  // namespace wrt::tpt
