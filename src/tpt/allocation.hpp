// Synchronous bandwidth allocation for the timed-token baseline.
//
// TPT inherits the timed-token admission rules (Section 3.1.2): each
// station reserves H_e,i slots per token visit, TTRT is negotiated, and a
// flow set is schedulable when
//
//     sum_i H_e,i + 2 (N-1) (T_proc + T_prop) + T_rap <= D / 2,  D = min D_i
//
// together with the protocol constraint that a station's reservation
// covers its per-period demand within the deadline: a batch of C_i packets
// is served after at most ceil(C_i / H_e,i) + 1 token visits, each at most
// 2 TTRT apart (the timed-token worst case [12]).
//
// The same allocation schemes as analysis::allocate are provided so the
// E7/E12 comparisons hand both protocols identical flow sets and equally
// smart allocators — the measured difference is then the protocols', not
// the allocators'.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/allocation.hpp"
#include "analysis/bounds.hpp"
#include "util/result.hpp"

namespace wrt::tpt {

struct TptAllocationInput {
  std::int64_t n_stations = 0;
  double t_proc_prop_slots = 1.0;
  std::int64_t t_rap_slots = 0;
  std::int64_t ttrt_slots = 0;         ///< 0 = derive the smallest feasible
  std::int64_t total_h_budget = 0;     ///< slots per round to distribute
  std::vector<analysis::RtRequirement> flows;
};

struct TptAllocation {
  analysis::TptParams params;
  std::int64_t ttrt_slots = 0;
};

/// Distributes the H budget over the flows' stations under `scheme`, picks
/// (or checks) TTRT, and verifies both the Eq (7) feasibility and each
/// flow's visit-count deadline test.  Fails with kAdmissionRejected when
/// no feasible allocation exists.
[[nodiscard]] util::Result<TptAllocation> allocate_tpt(
    analysis::AllocationScheme scheme, const TptAllocationInput& input);

/// The per-flow timed-token deadline test used by allocate_tpt: worst-case
/// wait of a C-packet batch at a station with quota H_e under the given
/// TTRT.
[[nodiscard]] std::int64_t tpt_access_time_bound(std::int64_t ttrt_slots,
                                                 std::int64_t h_e,
                                                 std::int64_t packets);

}  // namespace wrt::tpt
