#include "tpt/engine.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <string>

#include "telemetry/metrics.hpp"
#include "util/log.hpp"

namespace wrt::tpt {

TptEngine::TptEngine(phy::Topology* topology, TptConfig config,
                     std::uint64_t seed)
    : topology_(topology), config_(std::move(config)), seed_(seed) {
  assert(topology_ != nullptr);
  assert(config_.t_proc_prop_slots >= 1);
}

util::Status TptEngine::init() {
  assert(!initialised_);
  NodeId root = kInvalidNode;
  for (NodeId n = 0; n < topology_->node_count(); ++n) {
    if (topology_->alive(n)) {
      root = n;
      break;
    }
  }
  if (root == kInvalidNode) {
    return util::Error::invalid_argument("no alive stations");
  }
  auto tree_result = Tree::build(*topology_, root);
  if (!tree_result.ok()) return tree_result.error();
  tree_ = std::move(tree_result.value());
  for (const NodeId member : tree_.members()) {
    stations_[member];  // default-construct state
  }
  loss_field_.configure(config_.channel, seed_ ^ 0x7907F00Du);
  initialised_ = true;
  launch_token();
  return util::Status::success();
}

void TptEngine::degrade_link(NodeId a, NodeId b,
                             const fault::GeParams& params) {
  for (const auto purpose :
       {fault::LossPurpose::kData, fault::LossPurpose::kSat}) {
    loss_field_.set_link_params(purpose, a, b, params);
    loss_field_.set_link_params(purpose, b, a, params);
  }
}

void TptEngine::heal_link(NodeId a, NodeId b) {
  for (const auto purpose :
       {fault::LossPurpose::kData, fault::LossPurpose::kSat}) {
    loss_field_.clear_link_params(purpose, a, b);
    loss_field_.clear_link_params(purpose, b, a);
  }
}

std::int64_t TptEngine::h_sync_for(NodeId node) const {
  if (node < config_.h_sync.size() && config_.h_sync[node] > 0) {
    return config_.h_sync[node];
  }
  return config_.h_sync_default;
}

analysis::TptParams TptEngine::params() const {
  analysis::TptParams params;
  params.h_sync_slots.reserve(tree_.size());
  for (const NodeId member : tree_.members()) {
    params.h_sync_slots.push_back(h_sync_for(member));
  }
  params.t_proc_plus_prop_slots =
      static_cast<double>(config_.t_proc_prop_slots);
  params.t_rap_slots = config_.rap_every_rounds > 0 ? config_.t_rap_slots : 0;
  params.ttrt_slots = config_.ttrt_slots;
  return params;
}

// ---------------------------------------------------------------------------
// Traffic
// ---------------------------------------------------------------------------

void TptEngine::add_source(const traffic::FlowSpec& spec) {
  sources_.push_back(
      {traffic::TrafficSource(spec, seed_ ^ (0x70707070u + spec.id)),
       spec.src});
}

void TptEngine::add_saturated_source(const traffic::FlowSpec& spec,
                                     std::size_t backlog) {
  saturated_.push_back({traffic::SaturatedSource(spec), spec.src, backlog});
}

void TptEngine::add_trace_source(traffic::Trace trace, FlowId flow,
                                 NodeId src, NodeId dst,
                                 std::int64_t deadline_slots) {
  traces_.push_back(
      {traffic::TraceSource(std::move(trace), flow, src, dst, deadline_slots),
       src});
}

// wrt-lint-allow(by-value-frame-param): deliberate sink, moved into queue
bool TptEngine::inject_packet(traffic::Packet packet) {
  const auto it = stations_.find(packet.src);
  if (it == stations_.end()) return false;
  auto& queue = packet.cls == TrafficClass::kRealTime ? it->second.rt_queue
                                                      : it->second.be_queue;
  if (queue.size() >= config_.queue_capacity) return false;
  queue.push_back(std::move(packet));
  return true;
}

void TptEngine::poll_traffic() {
  for (auto& bound : sources_) {
    scratch_.clear();
    bound.source.poll(now_, scratch_);
    for (auto& packet : scratch_) {
      if (!inject_packet(std::move(packet))) {
        stats_.sink.record_drop(packet);
      }
    }
  }
  for (auto& bound : traces_) {
    scratch_.clear();
    bound.source.poll(now_, scratch_);
    for (auto& packet : scratch_) {
      if (!inject_packet(std::move(packet))) {
        stats_.sink.record_drop(packet);
      }
    }
  }
  for (auto& bound : saturated_) {
    const auto it = stations_.find(bound.station);
    if (it == stations_.end()) continue;
    auto& queue = bound.source.spec().cls == TrafficClass::kRealTime
                      ? it->second.rt_queue
                      : it->second.be_queue;
    if (queue.size() < bound.backlog) {
      for (auto& packet :
           bound.source.take(now_, bound.backlog - queue.size())) {
        queue.push_back(std::move(packet));
      }
    }
  }
}

util::Status TptEngine::check_invariants() const {
  if (stations_.size() != tree_.size()) {
    return util::Error::protocol_violation(
        "station map size does not match tree size");
  }
  if (tour_.empty() || tour_index_ >= tour_.size()) {
    return util::Error::protocol_violation("token tour index out of range");
  }
  if (tour_.size() != 2 * (tree_.size() - 1) &&
      tree_.size() > 1) {
    return util::Error::protocol_violation(
        "tour length is not 2 (N - 1)");
  }
  for (const NodeId member : tree_.members()) {
    if (!stations_.contains(member)) {
      return util::Error::protocol_violation(
          "tree member " + std::to_string(member) + " has no state");
    }
  }
  for (const NodeId visited : tour_) {
    if (!tree_.contains(visited)) {
      return util::Error::protocol_violation(
          "tour visits non-member " + std::to_string(visited));
    }
  }
  if (sync_budget_ < 0 || async_budget_ < 0) {
    return util::Error::protocol_violation("negative holder budget");
  }
  if (stats_.sink.total_delivered() > stats_.data_transmissions) {
    return util::Error::protocol_violation(
        "more deliveries than transmissions");
  }
  return util::Status::success();
}

// ---------------------------------------------------------------------------
// Token machinery
// ---------------------------------------------------------------------------

void TptEngine::refresh_tour() {
  tour_ = tree_.euler_tour();
  // The Euler tour lists the root at both ends; drop the duplicate so the
  // circular index wraps from the last pre-root station straight to the
  // root (2 (N - 1) link traversals per round, no root->root self-hop).
  if (tour_.size() > 1) tour_.pop_back();
}

void TptEngine::launch_token() {
  refresh_tour();
  tour_index_ = 0;
  token_lost_at_ = kNeverTick;
  for (auto& [node, st] : stations_) {
    st.last_token_departure = now_;
    st.last_token_arrival = kNeverTick;
    st.last_round_transmitted = ~std::uint64_t{0};
  }
  state_ = TokenState::kAtStation;
  token_arrive();
}

void TptEngine::token_arrive() {
  const NodeId holder = tour_[tour_index_];
  if (!topology_->alive(holder)) {
    state_ = TokenState::kLost;
    if (token_lost_at_ == kNeverTick) token_lost_at_ = now_;
    return;
  }
  auto& st = stations_.at(holder);

  if (tour_index_ == 0) {
    ++stats_.token_rounds;
    WRT_COUNT(kTptTokenRounds);
    ++rounds_since_rap_;
    if (config_.rap_every_rounds > 0 &&
        rounds_since_rap_ >=
            static_cast<std::uint64_t>(config_.rap_every_rounds)) {
      open_rap(holder);
      return;
    }
  }

  const bool first_visit = st.last_round_transmitted != stats_.token_rounds;
  if (!first_visit) {
    // Interior re-visit: pure forwarding.
    holder_transmits_ = false;
    state_ = TokenState::kAtStation;
    pass_token();
    return;
  }

  // Timed-token accounting (FDDI rules): measure TRT, arm budgets.
  std::int64_t trt_slots = config_.ttrt_slots;
  if (st.last_token_arrival != kNeverTick) {
    trt_slots = ticks_to_slots(now_ - st.last_token_arrival);
    stats_.token_rotation_slots.add(
        ticks_to_slots_real(now_ - st.last_token_arrival));
  }
  st.last_token_arrival = now_;
  st.last_round_transmitted = stats_.token_rounds;
  sync_budget_ = h_sync_for(holder);
  async_budget_ = std::max<std::int64_t>(0, config_.ttrt_slots - trt_slots);
  holder_transmits_ = true;
  state_ = TokenState::kAtStation;
  // A station with nothing to send releases the token immediately; holding
  // it for an idle slot would inflate every rotation by N slots.
  if (st.forward_queue.empty() && st.rt_queue.empty() &&
      (st.be_queue.empty() || async_budget_ <= 0)) {
    pass_token();
  }
}

void TptEngine::transmit_one(NodeId holder) {
  auto& st = stations_.at(holder);
  traffic::Packet packet;
  bool from_local = false;
  if (!st.forward_queue.empty() && sync_budget_ > 0) {
    packet = std::move(st.forward_queue.front());
    st.forward_queue.pop_front();
    --sync_budget_;
  } else if (!st.rt_queue.empty() && sync_budget_ > 0) {
    packet = std::move(st.rt_queue.front());
    st.rt_queue.pop_front();
    --sync_budget_;
    from_local = true;
  } else if (!st.be_queue.empty() && async_budget_ > 0) {
    packet = std::move(st.be_queue.front());
    st.be_queue.pop_front();
    --async_budget_;
    from_local = true;
  } else {
    return;
  }

  if (from_local) {
    const double delay = ticks_to_slots_real(now_ - packet.created);
    stats_.access_delay_slots.add(delay);
    if (packet.cls == TrafficClass::kRealTime) {
      stats_.rt_access_delay_slots.add(delay);
      WRT_OBSERVE(kRtAccessDelaySlots, delay);
    } else {
      WRT_OBSERVE(kBeAccessDelaySlots, delay);
    }
  }
  ++stats_.data_transmissions;

  if (packet.dst == holder || topology_->reachable(holder, packet.dst)) {
    if (packet.dst != holder &&
        loss_field_.enabled(fault::LossPurpose::kData) &&
        loss_field_.offer(fault::LossPurpose::kData, holder, packet.dst)) {
      ++stats_.data_channel_losses;
      ++stats_.frames_lost;
      stats_.sink.record_drop(packet);
      return;
    }
    stats_.sink.record_delivery(packet, now_);
    return;
  }
  // Out of direct range: one tree hop toward the destination — unless the
  // destination is no longer part of the tree (died / dropped by a
  // rebuild), in which case the packet is undeliverable.
  if (!tree_.contains(packet.dst)) {
    ++stats_.frames_lost;
    stats_.sink.record_drop(packet);
    return;
  }
  const NodeId next = tree_.next_hop(holder, packet.dst);
  if (!topology_->reachable(holder, next)) {
    ++stats_.frames_lost;
    stats_.sink.record_drop(packet);
    return;
  }
  if (loss_field_.enabled(fault::LossPurpose::kData) &&
      loss_field_.offer(fault::LossPurpose::kData, holder, next)) {
    ++stats_.data_channel_losses;
    ++stats_.frames_lost;
    stats_.sink.record_drop(packet);
    return;
  }
  auto& next_st = stations_.at(next);
  if (next_st.forward_queue.size() >= config_.queue_capacity) {
    ++stats_.frames_lost;
    stats_.sink.record_drop(packet);
    return;
  }
  next_st.forward_queue.push_back(std::move(packet));
}

void TptEngine::pass_token() {
  const NodeId from = tour_[tour_index_];
  stations_.at(from).last_token_departure = now_;
  tour_index_ = (tour_index_ + 1) % tour_.size();
  const NodeId to = tour_[tour_index_];
  if (drop_token_pending_) {
    drop_token_pending_ = false;
    state_ = TokenState::kLost;
    token_lost_at_ = now_;
    trace_.record(sim::EventKind::kTokenLost, now_, from, to);
    return;
  }
  if (!topology_->reachable(from, to)) {
    state_ = TokenState::kLost;
    if (token_lost_at_ == kNeverTick) token_lost_at_ = now_;
    trace_.record(sim::EventKind::kTokenLost, now_, from, to);
    return;
  }
  // A token hop faded by the channel is a lost token: nobody holds it and
  // the 2·TTRT timers must notice (the same recovery path as a dead link).
  if (loss_field_.enabled(fault::LossPurpose::kSat) &&
      loss_field_.offer(fault::LossPurpose::kSat, from, to)) {
    ++stats_.token_channel_losses;
    state_ = TokenState::kLost;
    token_lost_at_ = now_;
    trace_.record(sim::EventKind::kTokenLost, now_, from, to);
    return;
  }
  state_ = TokenState::kInTransit;
  transit_arrival_ = now_ + slots_to_ticks(config_.t_proc_prop_slots);
  ++stats_.token_hops;
  WRT_COUNT(kTptTokenPasses);
}

void TptEngine::token_step() {
  switch (state_) {
    case TokenState::kInTransit:
      if (now_ >= transit_arrival_) token_arrive();
      break;
    case TokenState::kAtStation: {
      const NodeId holder = tour_[tour_index_];
      if (!topology_->alive(holder)) {
        state_ = TokenState::kLost;
        if (token_lost_at_ == kNeverTick) token_lost_at_ = now_;
        break;
      }
      auto& st = stations_.at(holder);
      const bool can_sync =
          sync_budget_ > 0 &&
          (!st.forward_queue.empty() || !st.rt_queue.empty());
      const bool can_async = async_budget_ > 0 && !st.be_queue.empty();
      if (holder_transmits_ && (can_sync || can_async)) {
        transmit_one(holder);
      } else {
        pass_token();
      }
      break;
    }
    case TokenState::kClaimInTransit: {
      if (now_ < transit_arrival_) break;
      const NodeId at = tour_[claim_index_ % tour_.size()];
      const NodeId next = tour_[(claim_index_ + 1) % tour_.size()];
      if (!topology_->alive(at) || !topology_->reachable(at, next)) {
        // Claim stalls; the claim deadline will trigger the rebuild.
        break;
      }
      ++claim_index_;
      --claim_hops_remaining_;
      if (claim_hops_remaining_ == 0) {
        // Claim returned to its origin: the tree is still valid.
        ++stats_.claims_succeeded;
        trace_.record(sim::EventKind::kClaimSucceeded, now_, claim_origin_);
        if (token_lost_at_ != kNeverTick) {
          stats_.recovery_total_slots.add(
              ticks_to_slots_real(now_ - token_lost_at_));
          token_lost_at_ = kNeverTick;
        }
        claim_deadline_ = kNeverTick;
        tour_index_ = claim_index_ % tour_.size();
        token_arrive();
        break;
      }
      transit_arrival_ = now_ + slots_to_ticks(config_.t_proc_prop_slots);
      break;
    }
    case TokenState::kRap:
      if (now_ >= rap_end_) finish_rap();
      break;
    case TokenState::kLost:
      break;
    case TokenState::kRebuilding:
      if (now_ >= rebuild_done_) finish_rebuild();
      break;
  }
}

void TptEngine::check_timers() {
  if (state_ == TokenState::kClaimInTransit &&
      claim_deadline_ != kNeverTick && now_ > claim_deadline_) {
    // "otherwise the tree is considered lost" (Section 3.1.3).
    start_rebuild();
    return;
  }
  if (state_ != TokenState::kLost) return;

  // Per-station timer: armed to 2 TTRT at token departure.
  const Tick timeout = slots_to_ticks(2 * config_.ttrt_slots);
  NodeId detector = kInvalidNode;
  Tick earliest = kNeverTick;
  for (const auto& [node, st] : stations_) {
    if (!topology_->alive(node)) continue;
    const Tick expiry = st.last_token_departure + timeout;
    if (now_ > expiry && expiry < earliest) {
      earliest = expiry;
      detector = node;
    }
  }
  if (detector != kInvalidNode) {
    ++stats_.losses_detected;
    if (token_lost_at_ != kNeverTick) {
      stats_.loss_detection_slots.add(
          ticks_to_slots_real(now_ - token_lost_at_));
    }
    start_claim(detector);
  }
}

void TptEngine::start_claim(NodeId detector) {
  WRT_COUNT(kTptClaims);
  trace_.record(sim::EventKind::kClaimStarted, now_, detector);
  util::log(util::LogLevel::kInfo,
            "TPT: token loss detected by station " + std::to_string(detector));
  // The claim token re-walks the full tour from the detector's position.
  claim_origin_ = detector;
  claim_index_ = 0;
  for (std::size_t i = 0; i < tour_.size(); ++i) {
    if (tour_[i] == detector) {
      claim_index_ = i;
      break;
    }
  }
  claim_hops_remaining_ = tour_.size();
  claim_deadline_ = now_ + slots_to_ticks(2 * config_.ttrt_slots);
  stations_.at(detector).last_token_departure = now_;
  state_ = TokenState::kClaimInTransit;
  transit_arrival_ = now_ + slots_to_ticks(config_.t_proc_prop_slots);
}

void TptEngine::start_rebuild() {
  ++stats_.tree_rebuilds;
  WRT_COUNT(kTptTreeRebuilds);
  util::log(util::LogLevel::kInfo, "TPT: tree rebuild started");
  state_ = TokenState::kRebuilding;
  claim_deadline_ = kNeverTick;
  std::int64_t alive = 0;
  for (NodeId n = 0; n < topology_->node_count(); ++n) {
    if (topology_->alive(n)) ++alive;
  }
  rebuild_done_ = now_ + slots_to_ticks(config_.rebuild_base_slots +
                                        config_.rebuild_per_station_slots *
                                            alive);
}

void TptEngine::finish_rebuild() {
  NodeId root = kInvalidNode;
  if (claim_origin_ != kInvalidNode && topology_->alive(claim_origin_)) {
    root = claim_origin_;
  } else {
    for (NodeId n = 0; n < topology_->node_count(); ++n) {
      if (topology_->alive(n)) {
        root = n;
        break;
      }
    }
  }
  if (root == kInvalidNode) {
    rebuild_done_ = now_ + slots_to_ticks(config_.rebuild_base_slots);
    return;
  }
  auto tree_result = Tree::build(*topology_, root);
  if (!tree_result.ok()) {
    rebuild_done_ = now_ + slots_to_ticks(config_.rebuild_base_slots);
    return;
  }
  tree_ = std::move(tree_result.value());
  std::set<NodeId> members(tree_.members().begin(), tree_.members().end());
  for (auto it = stations_.begin(); it != stations_.end();) {
    if (!members.contains(it->first)) {
      it = stations_.erase(it);
    } else {
      ++it;
    }
  }
  for (const NodeId member : tree_.members()) stations_[member];
  if (token_lost_at_ != kNeverTick) {
    stats_.recovery_total_slots.add(
        ticks_to_slots_real(now_ - token_lost_at_));
  }
  util::log(util::LogLevel::kInfo,
            "TPT: tree rebuilt, size " + std::to_string(tree_.size()));
  trace_.record(sim::EventKind::kTreeRebuilt, now_);
  launch_token();
}

void TptEngine::open_rap(NodeId at) {
  rounds_since_rap_ = 0;
  rap_station_ = at;
  rap_end_ = now_ + slots_to_ticks(config_.t_rap_slots);
  state_ = TokenState::kRap;
}

void TptEngine::finish_rap() {
  const NodeId at = rap_station_;
  rap_station_ = kInvalidNode;
  // A requesting station that can hear the RAP holder joins as its child
  // (Section 3.1.1).  One join per RAP.
  for (auto it = pending_joins_.begin(); it != pending_joins_.end(); ++it) {
    const NodeId joiner = it->first;
    if (!topology_->alive(joiner) || !topology_->reachable(at, joiner)) {
      continue;
    }
    tree_.add_child(at, joiner);
    stations_[joiner];
    refresh_tour();
    // Re-locate the token (still at `at`) in the refreshed tour.
    for (std::size_t i = 0; i < tour_.size(); ++i) {
      if (tour_[i] == at) {
        tour_index_ = i;
        break;
      }
    }
    ++stats_.joins_completed;
    stats_.join_latency_slots.add(ticks_to_slots_real(now_ - it->second));
    pending_joins_.erase(it);
    break;
  }
  // Resume the holder's window (budgets were armed on arrival only when the
  // RAP interrupted a first visit; arm them now for the root's visit).
  auto& st = stations_.at(at);
  std::int64_t trt_slots = config_.ttrt_slots;
  if (st.last_token_arrival != kNeverTick) {
    trt_slots = ticks_to_slots(now_ - st.last_token_arrival);
    stats_.token_rotation_slots.add(
        ticks_to_slots_real(now_ - st.last_token_arrival));
  }
  st.last_token_arrival = now_;
  st.last_round_transmitted = stats_.token_rounds;
  sync_budget_ = h_sync_for(at);
  async_budget_ = std::max<std::int64_t>(0, config_.ttrt_slots - trt_slots);
  holder_transmits_ = true;
  state_ = TokenState::kAtStation;
}

void TptEngine::request_join(NodeId node) {
  // A tree rebuild may have recruited the requester already.
  if (tree_.contains(node)) return;
  pending_joins_[node] = now_;
}

void TptEngine::kill_station(NodeId node) {
  topology_->set_alive(node, false);
  if ((state_ == TokenState::kAtStation || state_ == TokenState::kRap) &&
      tour_[tour_index_] == node) {
    state_ = TokenState::kLost;
    token_lost_at_ = now_;
  }
}

void TptEngine::step() {
  assert(initialised_);
  poll_traffic();
  token_step();
  check_timers();
  now_ += kTicksPerSlot;
}

void TptEngine::run_slots(std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) step();
}

}  // namespace wrt::tpt
