#include "tpt/allocation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <string>

#include "util/math.hpp"

namespace wrt::tpt {

std::int64_t tpt_access_time_bound(std::int64_t ttrt_slots, std::int64_t h_e,
                                   std::int64_t packets) {
  if (h_e <= 0) return std::numeric_limits<std::int64_t>::max();
  // ceil(C / H) full service visits plus the partial round in progress,
  // each inter-visit gap at most 2 TTRT (timed-token worst case).
  const std::int64_t visits = util::ceil_div(packets, h_e) + 1;
  return visits * 2 * ttrt_slots;
}

util::Result<TptAllocation> allocate_tpt(analysis::AllocationScheme scheme,
                                         const TptAllocationInput& input) {
  if (input.n_stations <= 0) {
    return util::Error::invalid_argument("need stations");
  }
  std::set<std::size_t> seen;
  for (const auto& flow : input.flows) {
    if (flow.station >= static_cast<std::size_t>(input.n_stations)) {
      return util::Error::invalid_argument("flow station out of range");
    }
    if (!seen.insert(flow.station).second) {
      return util::Error::invalid_argument("one flow per station");
    }
    if (flow.period_slots <= 0 || flow.packets_per_period <= 0) {
      return util::Error::invalid_argument("flow needs positive P and C");
    }
  }

  // Reuse the ring allocator for the H shares: identical weighting logic,
  // k = 0 (TPT has no per-station async reservation).
  analysis::AllocationInput ring_like;
  ring_like.ring_latency_slots = 0;
  ring_like.t_rap_slots = input.t_rap_slots;
  ring_like.k_per_station = 0;
  ring_like.total_l_budget = input.total_h_budget;
  ring_like.flows = input.flows;
  auto shares = analysis::allocate(
      scheme, ring_like, static_cast<std::size_t>(input.n_stations));
  if (!shares.ok()) return shares.error();

  TptAllocation allocation;
  allocation.params.t_proc_plus_prop_slots = input.t_proc_prop_slots;
  allocation.params.t_rap_slots = input.t_rap_slots;
  allocation.params.h_sync_slots.reserve(
      static_cast<std::size_t>(input.n_stations));
  for (const Quota& quota : shares.value().quotas) {
    allocation.params.h_sync_slots.push_back(quota.l);
  }

  // TTRT: given or the smallest value covering one full loaded round
  // (protocol constraint: sum H + walk + RAP <= TTRT).
  const double walk = 2.0 * static_cast<double>(input.n_stations - 1) *
                      input.t_proc_prop_slots;
  const auto min_ttrt = static_cast<std::int64_t>(
      std::ceil(static_cast<double>(allocation.params.h_sum()) + walk +
                static_cast<double>(input.t_rap_slots)));
  allocation.ttrt_slots =
      input.ttrt_slots > 0 ? input.ttrt_slots : min_ttrt;
  allocation.params.ttrt_slots = allocation.ttrt_slots;
  if (allocation.ttrt_slots < min_ttrt) {
    return util::Error::admission_rejected(
        "TTRT " + std::to_string(allocation.ttrt_slots) +
        " below the loaded round length " + std::to_string(min_ttrt));
  }

  // Feasibility: Eq (7) against the tightest deadline plus the per-flow
  // visit-count test.
  std::int64_t tightest = std::numeric_limits<std::int64_t>::max();
  for (const auto& flow : input.flows) {
    tightest = std::min(tightest, flow.deadline_slots);
  }
  if (!input.flows.empty() &&
      !analysis::tpt_feasible(allocation.params, tightest)) {
    return util::Error::admission_rejected(
        "Eq (7) violated for the tightest deadline " +
        std::to_string(tightest));
  }
  for (std::size_t idx = 0; idx < input.flows.size(); ++idx) {
    const auto& flow = input.flows[idx];
    const std::int64_t h_e = allocation.params.h_sync_slots[flow.station];
    const std::int64_t wait = tpt_access_time_bound(
        allocation.ttrt_slots, h_e, flow.packets_per_period);
    if (wait > flow.deadline_slots) {
      return util::Error::admission_rejected(
          "flow " + std::to_string(idx) + ": worst-case wait " +
          std::to_string(wait) + " exceeds deadline " +
          std::to_string(flow.deadline_slots));
    }
  }
  return allocation;
}

}  // namespace wrt::tpt
