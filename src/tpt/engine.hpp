// TPT (Token Passing Tree) protocol engine — the paper's baseline
// (Section 3.1, after Jianqiang/Shengming/Dajiang [11]).
//
// Timed-token MAC over a tree:
//  * Only the token holder transmits (one packet per slot on the single
//    shared channel — no spatial reuse, the defining contrast with
//    WRT-Ring's CDMA concurrency).
//  * Synchronous (real-time) traffic: up to H_e,i slots per visit, always.
//  * Asynchronous (best-effort): only with the token-holding budget
//    THT = max(0, TTRT - TRT) measured on token arrival (FDDI rules [12]).
//  * The token walks the tree depth-first: 2 (N - 1) link traversals per
//    round, each costing T_proc + T_prop slots.
//  * Interior stations transmit on their first visit of a round; later
//    visits of the same round just forward the token.
//  * Token loss: per-station timer armed to 2 TTRT at token departure; on
//    expiry the station issues a claim token that re-walks the tour.  If
//    the claim survives, it becomes the new token; if it dies (a station or
//    link is gone), the whole tree is rebuilt (Section 3.1.3) — TPT has no
//    cut-out shortcut, which is exactly the reaction-time disadvantage the
//    paper's Section 3.3 argues.
//  * Join: every `rap_every_rounds` rounds the root opens a T_rap random
//    access period; a reachable requesting station joins as a child of the
//    station that accepted it (Section 3.1.1).
//
// Data delivery: direct when src and dst are in radio range (the indoor
// dense case); otherwise hop-by-hop along the tree path through forward
// queues served with priority inside the holder's synchronous window.
#pragma once

#include <deque>
#include <map>
#include <vector>

#include "analysis/bounds.hpp"
#include "fault/gilbert_elliott.hpp"
#include "phy/topology.hpp"
#include "sim/event_trace.hpp"
#include "sim/stats.hpp"
#include "tpt/tree.hpp"
#include "traffic/trace.hpp"
#include "traffic/traffic.hpp"
#include "util/result.hpp"

namespace wrt::tpt {

struct TptConfig {
  std::int64_t ttrt_slots = 64;          ///< Target Token Rotation Time
  std::int64_t h_sync_default = 1;       ///< H_e,i (slots per visit)
  std::vector<std::int64_t> h_sync;      ///< per-station override (by index)
  std::int64_t t_proc_prop_slots = 1;    ///< token transfer per link
  std::int64_t rap_every_rounds = 0;     ///< 0 = no RAP
  std::int64_t t_rap_slots = 6;
  std::int64_t rebuild_base_slots = 8;
  std::int64_t rebuild_per_station_slots = 2;
  std::size_t queue_capacity = 4096;

  /// Gilbert–Elliott per-link loss, same plane as the other engines: kData
  /// governs data frames (direct and hop-by-hop), kSat governs token and
  /// claim hops (a faded token is a lost token, Section 3.1.3's trigger).
  /// All processes disabled by default — zero RNG draws, so existing
  /// fixed-seed TPT behaviour is untouched.
  fault::ChannelConfig channel;
};

struct TptStats {
  sim::SampleStats token_rotation_slots;
  sim::SampleStats access_delay_slots;
  sim::SampleStats rt_access_delay_slots;
  traffic::Sink sink;
  std::uint64_t token_hops = 0;
  std::uint64_t token_rounds = 0;
  std::uint64_t data_transmissions = 0;
  std::uint64_t losses_detected = 0;
  std::uint64_t claims_succeeded = 0;
  std::uint64_t tree_rebuilds = 0;
  std::uint64_t joins_completed = 0;
  std::uint64_t frames_lost = 0;
  std::uint64_t data_channel_losses = 0;   ///< Gilbert–Elliott data fades
  std::uint64_t token_channel_losses = 0;  ///< token hops lost to fades
  sim::SampleStats loss_detection_slots;
  sim::SampleStats recovery_total_slots;
  sim::SampleStats join_latency_slots;
};

enum class TokenState : std::uint8_t {
  kAtStation,
  kInTransit,
  kClaimInTransit,
  kLost,
  kRap,
  kRebuilding,
};

class TptEngine final {
 public:
  TptEngine(phy::Topology* topology, TptConfig config, std::uint64_t seed);

  TptEngine(const TptEngine&) = delete;
  TptEngine& operator=(const TptEngine&) = delete;

  /// Builds the tree (rooted at the lowest alive node id) and launches the
  /// token.
  [[nodiscard]] util::Status init();

  void add_source(const traffic::FlowSpec& spec);
  void add_saturated_source(const traffic::FlowSpec& spec,
                            std::size_t backlog = 4);

  /// Replays a recorded/synthetic trace as one flow (same semantics as
  /// wrtring::Engine::add_trace_source, for identical-arrival comparisons).
  void add_trace_source(traffic::Trace trace, FlowId flow, NodeId src,
                        NodeId dst, std::int64_t deadline_slots = 0);

  // wrt-lint-allow(by-value-frame-param): deliberate sink, moved into queue
  bool inject_packet(traffic::Packet packet);

  void step();
  void run_slots(std::int64_t n);
  [[nodiscard]] Tick now() const noexcept { return now_; }

  void request_join(NodeId node);
  void kill_station(NodeId node);
  void drop_token_once() noexcept { drop_token_pending_ = true; }

  /// Gilbert–Elliott override on a <-> b for both purposes the tree uses
  /// (data frames and token hops), mirroring wrtring::Engine::degrade_link.
  void degrade_link(NodeId a, NodeId b, const fault::GeParams& params);
  void heal_link(NodeId a, NodeId b);

  [[nodiscard]] const TptStats& stats() const noexcept { return stats_; }

  /// Ordered protocol events (token losses, claims, rebuilds, ...).
  [[nodiscard]] const sim::EventTrace& event_trace() const noexcept {
    return trace_;
  }
  [[nodiscard]] const Tree& tree() const noexcept { return tree_; }
  [[nodiscard]] TokenState token_state() const noexcept { return state_; }

  /// Analytical parameters matching the current tree, for Eq (7).
  [[nodiscard]] analysis::TptParams params() const;

  /// Internal-consistency audit (tour/tree/station alignment, budget and
  /// accounting sanity); mirrors wrtring::Engine::check_invariants.
  [[nodiscard]] util::Status check_invariants() const;

 private:
  struct StationState {
    std::deque<traffic::Packet> rt_queue;
    std::deque<traffic::Packet> be_queue;
    std::deque<traffic::Packet> forward_queue;  ///< multi-hop transit
    Tick last_token_arrival = kNeverTick;
    Tick last_token_departure = kNeverTick;
    std::uint64_t last_round_transmitted = ~std::uint64_t{0};
  };

  void poll_traffic();
  void token_step();
  void check_timers();
  void token_arrive();
  void pass_token();
  void start_claim(NodeId detector);
  void start_rebuild();
  void finish_rebuild();
  void transmit_one(NodeId holder);
  [[nodiscard]] std::int64_t h_sync_for(NodeId node) const;
  void refresh_tour();
  void launch_token();
  void open_rap(NodeId at);
  void finish_rap();

  phy::Topology* topology_;
  TptConfig config_;
  std::uint64_t seed_;
  Tick now_ = 0;
  bool initialised_ = false;
  fault::LinkLossField loss_field_;

  Tree tree_;
  std::vector<NodeId> tour_;
  std::size_t tour_index_ = 0;  ///< position of the token in the tour
  TokenState state_ = TokenState::kLost;
  Tick transit_arrival_ = kNeverTick;
  Tick token_lost_at_ = kNeverTick;
  Tick rebuild_done_ = kNeverTick;

  // Holder bookkeeping.
  std::int64_t sync_budget_ = 0;
  std::int64_t async_budget_ = 0;
  bool holder_transmits_ = false;  ///< first visit of this round?

  // Claim bookkeeping.
  NodeId claim_origin_ = kInvalidNode;
  std::size_t claim_index_ = 0;
  std::size_t claim_hops_remaining_ = 0;
  Tick claim_deadline_ = kNeverTick;

  // RAP bookkeeping.
  Tick rap_end_ = 0;
  NodeId rap_station_ = kInvalidNode;
  std::uint64_t rounds_since_rap_ = 0;

  std::map<NodeId, StationState> stations_;
  std::map<NodeId, Tick> pending_joins_;  ///< joiner -> request time

  struct BoundSource {
    traffic::TrafficSource source;
    NodeId station;
  };
  struct BoundSaturated {
    traffic::SaturatedSource source;
    NodeId station;
    std::size_t backlog;
  };
  struct BoundTrace {
    traffic::TraceSource source;
    NodeId station;
  };
  std::vector<BoundSource> sources_;
  std::vector<BoundSaturated> saturated_;
  std::vector<BoundTrace> traces_;
  std::vector<traffic::Packet> scratch_;

  bool drop_token_pending_ = false;

  TptStats stats_;
  sim::EventTrace trace_;
};

}  // namespace wrt::tpt
