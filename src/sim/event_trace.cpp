#include "sim/event_trace.hpp"

#include <ostream>

namespace wrt::sim {

std::string to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kSatLaunched:
      return "sat-launched";
    case EventKind::kSatLost:
      return "sat-lost";
    case EventKind::kLossDetected:
      return "loss-detected";
    case EventKind::kSatRecStarted:
      return "sat-rec-started";
    case EventKind::kCutOut:
      return "cut-out";
    case EventKind::kRecovered:
      return "recovered";
    case EventKind::kRebuildStarted:
      return "rebuild-started";
    case EventKind::kRebuildCompleted:
      return "rebuild-completed";
    case EventKind::kRapStarted:
      return "rap-started";
    case EventKind::kJoinCompleted:
      return "join-completed";
    case EventKind::kJoinRejected:
      return "join-rejected";
    case EventKind::kLeaveCompleted:
      return "leave-completed";
    case EventKind::kStationStalled:
      return "station-stalled";
    case EventKind::kStationResumed:
      return "station-resumed";
    case EventKind::kTokenLost:
      return "token-lost";
    case EventKind::kClaimStarted:
      return "claim-started";
    case EventKind::kClaimSucceeded:
      return "claim-succeeded";
    case EventKind::kTreeRebuilt:
      return "tree-rebuilt";
  }
  return "unknown";
}

std::string ProtocolEvent::to_line() const {
  std::string line = "[";
  line += std::to_string(ticks_to_slots(at));
  line += "] ";
  line += to_string(kind);
  if (station != kInvalidNode) line += " station=" + std::to_string(station);
  if (other != kInvalidNode) line += " other=" + std::to_string(other);
  return line;
}

void EventTrace::record(EventKind kind, Tick at, NodeId station,
                        NodeId other) {
  events_.push_back({kind, at, station, other});
  ++total_;
  if (events_.size() > capacity_) events_.pop_front();
}

std::vector<ProtocolEvent> EventTrace::of_kind(EventKind kind) const {
  std::vector<ProtocolEvent> result;
  for (const auto& event : events_) {
    if (event.kind == kind) result.push_back(event);
  }
  return result;
}

const ProtocolEvent* EventTrace::first_after(EventKind kind, Tick from) const {
  for (const auto& event : events_) {
    if (event.kind == kind && event.at >= from) return &event;
  }
  return nullptr;
}

bool EventTrace::ordered(EventKind a, EventKind b) const {
  const ProtocolEvent* first_a = nullptr;
  const ProtocolEvent* first_b = nullptr;
  for (const auto& event : events_) {
    if (first_a == nullptr && event.kind == a) first_a = &event;
    if (first_b == nullptr && event.kind == b) first_b = &event;
  }
  if (first_a == nullptr || first_b == nullptr) return false;
  return first_a->at <= first_b->at;
}

void EventTrace::to_json(std::ostream& out) const {
  out << "{\"total_recorded\": " << total_ << ", \"dropped\": " << dropped()
      << ", \"events\": [";
  bool first = true;
  for (const auto& event : events_) {
    out << (first ? "" : ", ");
    first = false;
    out << "{\"kind\": \"" << to_string(event.kind)
        << "\", \"tick\": " << event.at
        << ", \"slot\": " << ticks_to_slots(event.at) << ", \"station\": ";
    if (event.station == kInvalidNode) {
      out << "null";
    } else {
      out << event.station;
    }
    out << ", \"other\": ";
    if (event.other == kInvalidNode) {
      out << "null";
    } else {
      out << event.other;
    }
    out << '}';
  }
  out << "]}";
}

void EventTrace::clear() {
  events_.clear();
  total_ = 0;
}

}  // namespace wrt::sim
