#include "sim/scheduler.hpp"

#include <cassert>
#include <stdexcept>

namespace wrt::sim {

EventHandle Scheduler::schedule_at(Tick when, EventFn fn) {
  if (when < now_) {
    throw std::invalid_argument("Scheduler::schedule_at: time in the past");
  }
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{when, next_sequence_++, id, std::move(fn)});
  live_ids_.insert(id);
  return EventHandle{id};
}

void Scheduler::cancel(EventHandle handle) {
  // Erasing from the live set is the cancellation; an unknown or
  // already-fired id is absent, so the call is a true no-op and leaves
  // nothing behind.
  if (handle.id == 0) return;
  live_ids_.erase(handle.id);
}

bool Scheduler::execute_top() {
  // Copy out then pop so an event may schedule new events freely.
  Entry entry = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  if (live_ids_.erase(entry.id) == 0) return false;  // cancelled
  now_ = entry.when;
  entry.fn();
  return true;
}

std::uint64_t Scheduler::run_until(Tick horizon) {
  std::uint64_t executed = 0;
  while (!queue_.empty() && queue_.top().when <= horizon) {
    if (execute_top()) ++executed;
  }
  if (now_ < horizon) now_ = horizon;
  return executed;
}

bool Scheduler::step() {
  if (queue_.empty()) return false;
  const Tick tick = queue_.top().when;
  while (!queue_.empty() && queue_.top().when == tick) execute_top();
  return true;
}

}  // namespace wrt::sim
