#include "sim/scheduler.hpp"

#include <cassert>
#include <stdexcept>

namespace wrt::sim {

EventHandle Scheduler::schedule_at(Tick when, EventFn fn) {
  if (when < now_) {
    throw std::invalid_argument("Scheduler::schedule_at: time in the past");
  }
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{when, next_sequence_++, id, /*period=*/0, std::move(fn)});
  live_ids_.insert(id);
  return EventHandle{id};
}

EventHandle Scheduler::schedule_every(Tick period, EventFn fn) {
  if (period <= 0) {
    throw std::invalid_argument("Scheduler::schedule_every: period must be > 0");
  }
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{now_ + period, next_sequence_++, id, period, std::move(fn)});
  live_ids_.insert(id);
  return EventHandle{id};
}

void Scheduler::cancel(EventHandle handle) {
  // Erasing from the live set is the cancellation; an unknown or
  // already-fired id is absent, so the call is a true no-op and leaves
  // nothing behind.
  if (handle.id == 0) return;
  live_ids_.erase(handle.id);
}

bool Scheduler::execute_top() {
  // Copy out then pop so an event may schedule new events freely.
  Entry entry = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  if (entry.period > 0) {
    // Recurring: the id stays live across firings so the original handle can
    // cancel it at any time, including from inside its own callback.
    if (live_ids_.count(entry.id) == 0) return false;  // cancelled
    now_ = entry.when;
    entry.fn();
    if (live_ids_.count(entry.id) != 0) {
      const Tick next = entry.when + entry.period;
      queue_.push(Entry{next, next_sequence_++, entry.id, entry.period,
                        std::move(entry.fn)});
    }
    return true;
  }
  if (live_ids_.erase(entry.id) == 0) return false;  // cancelled
  now_ = entry.when;
  entry.fn();
  return true;
}

std::uint64_t Scheduler::run_until(Tick horizon) {
  std::uint64_t executed = 0;
  while (!queue_.empty() && queue_.top().when <= horizon) {
    if (execute_top()) ++executed;
  }
  if (now_ < horizon) now_ = horizon;
  return executed;
}

bool Scheduler::step() {
  if (queue_.empty()) return false;
  const Tick tick = queue_.top().when;
  while (!queue_.empty() && queue_.top().when == tick) execute_top();
  return true;
}

}  // namespace wrt::sim
