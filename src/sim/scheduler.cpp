#include "sim/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace wrt::sim {

EventHandle Scheduler::schedule_at(Tick when, EventFn fn) {
  if (when < now_) {
    throw std::invalid_argument("Scheduler::schedule_at: time in the past");
  }
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{when, next_sequence_++, id, std::move(fn)});
  return EventHandle{id};
}

void Scheduler::cancel(EventHandle handle) {
  if (handle.id == 0) return;
  cancelled_.push_back(handle.id);
  ++cancelled_count_;
}

void Scheduler::execute_top() {
  // Copy out then pop so an event may schedule new events freely.
  Entry entry = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  const auto it = std::find(cancelled_.begin(), cancelled_.end(), entry.id);
  if (it != cancelled_.end()) {
    cancelled_.erase(it);
    --cancelled_count_;
    return;
  }
  now_ = entry.when;
  entry.fn();
}

std::uint64_t Scheduler::run_until(Tick horizon) {
  std::uint64_t executed = 0;
  while (!queue_.empty() && queue_.top().when <= horizon) {
    execute_top();
    ++executed;
  }
  if (now_ < horizon) now_ = horizon;
  return executed;
}

bool Scheduler::step() {
  if (queue_.empty()) return false;
  const Tick tick = queue_.top().when;
  while (!queue_.empty() && queue_.top().when == tick) execute_top();
  return true;
}

}  // namespace wrt::sim
