// Parallel independent-replication runner.
//
// Experiments report confidence intervals over R independent replications
// (distinct seeds).  Each replication builds its own Simulation object, so
// threads share no mutable state; this is the classic embarrassingly
// parallel HPC pattern and scales linearly with cores.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace wrt::sim {

/// Result of one replication: arbitrary named scalar metrics.
struct ReplicationResult {
  std::vector<std::pair<std::string, double>> metrics;

  void add(std::string name, double value) {
    metrics.emplace_back(std::move(name), value);
  }
};

/// Aggregate of a metric across replications.
struct MetricSummary {
  std::string name;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t samples = 0;

  /// Half-width of the ~95% normal confidence interval.
  [[nodiscard]] double ci95_half_width() const noexcept;
};

/// Runs `body(seed)` for `replications` distinct seeds derived from
/// `master_seed`, on up to `max_threads` worker threads (0 = hardware
/// concurrency), and aggregates metrics by name.  `body` must be thread-safe
/// with respect to itself given distinct seeds (i.e. touch no shared state).
std::vector<MetricSummary> run_replications(
    std::uint32_t replications, std::uint64_t master_seed,
    const std::function<ReplicationResult(std::uint64_t seed)>& body,
    unsigned max_threads = 0);

/// Finds a metric by name; throws std::out_of_range if absent.
const MetricSummary& find_metric(const std::vector<MetricSummary>& summaries,
                                 const std::string& name);

}  // namespace wrt::sim
