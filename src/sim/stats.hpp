// Statistics collectors.
//
// The experiment harnesses report means, maxima, quantiles, and
// time-weighted averages of protocol quantities (SAT rotation time, access
// delay, queue length, throughput).  Collectors store exact sample moments
// plus a bounded reservoir for quantiles, so memory stays O(1) per metric
// over arbitrarily long runs.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace wrt::sim {

/// Scalar sample statistics: count / mean / variance (Welford) / min / max,
/// plus a fixed-size uniform reservoir for quantile estimates.
class SampleStats {
 public:
  explicit SampleStats(std::size_t reservoir_capacity = 4096,
                       std::uint64_t seed = 0x5eed);

  void add(double value);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Empty collectors report 0.0 (not +/-inf) so per-class tables and JSON
  /// emission stay finite when a sweep cell produced no samples — e.g. the
  /// voice admission cliff, where a class sees zero deliveries.
  [[nodiscard]] double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double sum() const noexcept { return count_ == 0 ? 0.0 : mean_ * static_cast<double>(count_); }

  /// Quantile in [0, 1] from the reservoir; exact when count <= capacity.
  /// Degenerate distributions are well-defined rather than caller-guarded:
  /// an empty collector returns 0.0 for every q, a single-sample collector
  /// returns that sample for every q.  q outside [0, 1] always throws.
  [[nodiscard]] double quantile(double q) const;

  void reset();

  /// Merges another collector (used when aggregating replications).  The
  /// merged reservoir is a capacity-bounded subsample of both.
  void merge(const SampleStats& other);

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  std::vector<double> reservoir_;
  std::size_t reservoir_capacity_;
  util::RngStream rng_;
};

/// Time-weighted average of a piecewise-constant signal (queue lengths,
/// number of busy slots, ...).
class TimeWeightedStats {
 public:
  /// Records that the signal had `value` from the last update until `now`.
  void update(Tick now, double value);

  [[nodiscard]] double time_average(Tick now);
  [[nodiscard]] double current() const noexcept { return value_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  void reset(Tick now);

 private:
  Tick last_update_ = 0;
  double value_ = 0.0;
  double weighted_sum_ = 0.0;
  double max_ = 0.0;
  Tick start_ = 0;
};

/// Monotonic counter with rate helper.
class Counter {
 public:
  void increment(std::uint64_t by = 1) noexcept { value_ += by; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  /// Events per slot over [t0, t1].
  [[nodiscard]] double rate_per_slot(Tick t0, Tick t1) const noexcept;
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Fixed-width histogram over [lo, hi) with overflow/underflow bins;
/// used for delay distributions in the benches.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value) noexcept;

  [[nodiscard]] std::uint64_t bin_count(std::size_t bin) const;
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double bin_lower(std::size_t bin) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Quantile estimate by linear interpolation inside the located bin.
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace wrt::sim
