// Discrete-event scheduler.
//
// The MAC engines are slot-synchronous state machines, so the dominant event
// is a recurring per-slot tick; traffic generators and failure injectors
// schedule sparse events in between.  Events at the same tick run in
// insertion order (stable), which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/thread_safety.hpp"
#include "util/types.hpp"

namespace wrt::sim {

using EventFn = std::function<void()>;

/// Handle used to cancel a pending event.
struct EventHandle {
  std::uint64_t id = 0;
};

/// Shard-confined: a scheduler belongs to exactly one simulation shard and
/// has no internal locking.  Federation workers each own a private
/// Scheduler; cross-shard event injection must go through value-type
/// gateway messages, never by scheduling into another shard's queue.
class WRT_SHARD_CONFINED Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulation time.
  [[nodiscard]] Tick now() const noexcept { return now_; }

  /// Schedules `fn` at absolute tick `when` (must be >= now()).
  EventHandle schedule_at(Tick when, EventFn fn);

  /// Schedules `fn` after `delay` ticks.
  EventHandle schedule_after(Tick delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` every `period` ticks, first firing at now() + period.
  /// The event re-arms itself after each firing until cancelled; the
  /// returned handle stays valid across firings.  Periodic snapshotting
  /// (telemetry::SnapshotTimeline) is the motivating client.
  EventHandle schedule_every(Tick period, EventFn fn);

  /// Cancels a pending event; cancelling an already-fired or unknown handle
  /// is a no-op.  For recurring events this also stops future re-arms.
  void cancel(EventHandle handle);

  /// Runs until the queue empties or `horizon` is passed (events strictly
  /// after `horizon` stay queued).  Returns the number of events executed.
  std::uint64_t run_until(Tick horizon);

  /// Executes exactly the events of the next occupied tick.  Returns false
  /// if the queue is empty.
  bool step();

  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t pending() const noexcept {
    return live_ids_.size();
  }

 private:
  struct Entry {
    Tick when = 0;
    std::uint64_t sequence = 0;  // tie-break: stable FIFO within a tick
    std::uint64_t id = 0;
    Tick period = 0;  // > 0: re-arm `period` ticks after firing
    EventFn fn;

    // std::priority_queue is a max-heap; invert so earliest (when, sequence)
    // is on top.
    [[nodiscard]] bool operator<(const Entry& other) const noexcept {
      if (when != other.when) return when > other.when;
      return sequence > other.sequence;
    }
  };

  /// Pops the top entry; returns true iff its event actually ran (false for
  /// entries cancelled while queued).
  bool execute_top();

  Tick now_ = 0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t next_id_ = 1;
  std::priority_queue<Entry> queue_;
  // Ids of scheduled-but-not-yet-fired events.  cancel() erases from here
  // (O(1)); execute purges the fired id, so a handle cancelled after its
  // event already ran cannot accumulate.
  std::unordered_set<std::uint64_t> live_ids_;
};

}  // namespace wrt::sim
