#include "sim/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/math.hpp"

namespace wrt::sim {

SampleStats::SampleStats(std::size_t reservoir_capacity, std::uint64_t seed)
    : reservoir_capacity_(reservoir_capacity), rng_(seed) {
  reservoir_.reserve(std::min<std::size_t>(reservoir_capacity_, 1024));
}

void SampleStats::add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);

  if (reservoir_.size() < reservoir_capacity_) {
    reservoir_.push_back(value);
  } else if (reservoir_capacity_ > 0) {
    // Vitter's algorithm R.
    const auto slot = rng_.uniform_int(count_);
    if (slot < reservoir_capacity_) reservoir_[slot] = value;
  }
}

double SampleStats::mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }

double SampleStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double SampleStats::stddev() const noexcept { return std::sqrt(variance()); }

double SampleStats::quantile(double q) const {
  // Validate q before the degenerate-size checks so a bad argument is
  // reported even on an empty collector.
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile q out of [0,1]");
  if (reservoir_.empty()) return 0.0;
  if (reservoir_.size() == 1) return reservoir_.front();
  std::vector<double> sorted = reservoir_;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= sorted.size()) return sorted.back();
  return sorted[idx] * (1.0 - frac) + sorted[idx + 1] * frac;
}

void SampleStats::reset() {
  count_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
  reservoir_.clear();
}

void SampleStats::merge(const SampleStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel-merge of moments.
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  for (const double value : other.reservoir_) {
    if (reservoir_.size() < reservoir_capacity_) {
      reservoir_.push_back(value);
    } else if (reservoir_capacity_ > 0 &&
               rng_.bernoulli(n2 / total)) {
      reservoir_[rng_.uniform_int(reservoir_capacity_)] = value;
    }
  }
}

void TimeWeightedStats::update(Tick now, double value) {
  assert(now >= last_update_);
  weighted_sum_ +=
      value_ * static_cast<double>(now - last_update_);
  last_update_ = now;
  value_ = value;
  max_ = std::max(max_, value);
}

double TimeWeightedStats::time_average(Tick now) {
  update(now, value_);  // flush the current segment
  const Tick elapsed = now - start_;
  return elapsed == 0 ? value_ : weighted_sum_ / static_cast<double>(elapsed);
}

void TimeWeightedStats::reset(Tick now) {
  last_update_ = now;
  start_ = now;
  weighted_sum_ = 0.0;
  max_ = 0.0;
}

double Counter::rate_per_slot(Tick t0, Tick t1) const noexcept {
  if (t1 <= t0) return 0.0;
  const double slots = ticks_to_slots_real(t1 - t0);
  return slots == 0.0 ? 0.0 : static_cast<double>(value_) / slots;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (bins == 0 || hi <= lo) {
    throw std::invalid_argument("Histogram: need bins > 0 and hi > lo");
  }
}

void Histogram::add(double value) noexcept {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  const auto bin = static_cast<std::size_t>((value - lo_) / width_);
  ++counts_[std::min(bin, counts_.size() - 1)];
}

std::uint64_t Histogram::bin_count(std::size_t bin) const {
  return counts_.at(bin);
}

double Histogram::bin_lower(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::bin_lower");
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_));
  std::uint64_t cumulative = underflow_;
  if (cumulative > target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (cumulative + counts_[i] > target) {
      const double inside =
          counts_[i] == 0
              ? 0.0
              : static_cast<double>(target - cumulative) /
                    static_cast<double>(counts_[i]);
      return bin_lower(i) + inside * width_;
    }
    cumulative += counts_[i];
  }
  return hi_;
}

}  // namespace wrt::sim
