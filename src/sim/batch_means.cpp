#include "sim/batch_means.hpp"

#include <cmath>
#include <stdexcept>

namespace wrt::sim {

BatchMeans::BatchMeans(std::size_t batches, double warmup_fraction)
    : batches_(batches), warmup_fraction_(warmup_fraction) {
  if (batches_ < 2) throw std::invalid_argument("need >= 2 batches");
  if (warmup_fraction_ < 0.0 || warmup_fraction_ >= 1.0) {
    throw std::invalid_argument("warmup fraction must be in [0, 1)");
  }
}

BatchMeansResult BatchMeans::estimate() const {
  BatchMeansResult result;
  if (observations_.empty()) return result;

  const auto warmup = static_cast<std::size_t>(
      warmup_fraction_ * static_cast<double>(observations_.size()));
  const std::size_t usable = observations_.size() - warmup;

  double total = 0.0;
  for (std::size_t i = warmup; i < observations_.size(); ++i) {
    total += observations_[i];
  }
  result.mean = total / static_cast<double>(usable);
  result.observations_used = usable;

  const std::size_t batch_size = usable / batches_;
  if (batch_size == 0) return result;  // plain mean only

  std::vector<double> batch_means;
  batch_means.reserve(batches_);
  for (std::size_t b = 0; b < batches_; ++b) {
    double sum = 0.0;
    const std::size_t begin = warmup + b * batch_size;
    for (std::size_t i = begin; i < begin + batch_size; ++i) {
      sum += observations_[i];
    }
    batch_means.push_back(sum / static_cast<double>(batch_size));
  }

  double grand = 0.0;
  for (const double m : batch_means) grand += m;
  grand /= static_cast<double>(batch_means.size());
  double sq = 0.0;
  for (const double m : batch_means) sq += (m - grand) * (m - grand);
  const double variance =
      sq / static_cast<double>(batch_means.size() - 1);
  // t-quantile approximated by 2.09 (t_{0.975, 19}) for the default 20
  // batches; the normal 1.96 for larger counts.
  const double t = batch_means.size() <= 20 ? 2.09 : 1.96;
  result.ci95_half_width =
      t * std::sqrt(variance / static_cast<double>(batch_means.size()));
  result.batches = batch_means.size();
  result.mean = grand;
  return result;
}

}  // namespace wrt::sim
