#include "sim/replication.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <stdexcept>
#include <thread>

#include "util/rng.hpp"

namespace wrt::sim {

double MetricSummary::ci95_half_width() const noexcept {
  // A single sample (or none) carries no dispersion information, and a
  // zero-variance metric has a degenerate interval: both report 0 rather
  // than NaN so "x +/- 0" formats sanely.
  if (samples < 2 || !std::isfinite(stddev) || stddev <= 0.0) return 0.0;
  return 1.96 * stddev / std::sqrt(static_cast<double>(samples));
}

std::vector<MetricSummary> run_replications(
    std::uint32_t replications, std::uint64_t master_seed,
    const std::function<ReplicationResult(std::uint64_t seed)>& body,
    unsigned max_threads) {
  if (replications == 0) return {};

  // Derive well-separated per-replication seeds.
  std::vector<std::uint64_t> seeds(replications);
  std::uint64_t sm = master_seed;
  for (auto& seed : seeds) seed = util::splitmix64(sm);

  std::vector<ReplicationResult> results(replications);
  unsigned threads = max_threads == 0
                         ? std::max(1u, std::thread::hardware_concurrency())
                         : max_threads;
  threads = std::min<unsigned>(threads, replications);

  if (threads <= 1) {
    for (std::uint32_t i = 0; i < replications; ++i) results[i] = body(seeds[i]);
  } else {
    std::atomic<std::uint32_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&] {
        for (;;) {
          const std::uint32_t i = next.fetch_add(1);
          if (i >= replications) return;
          results[i] = body(seeds[i]);
        }
      });
    }
    for (auto& worker : workers) worker.join();
  }

  // Aggregate by metric name, preserving first-seen order.
  std::vector<std::string> order;
  std::map<std::string, std::vector<double>> by_name;
  for (const auto& result : results) {
    for (const auto& [name, value] : result.metrics) {
      auto [it, inserted] = by_name.try_emplace(name);
      if (inserted) order.push_back(name);
      it->second.push_back(value);
    }
  }

  std::vector<MetricSummary> summaries;
  summaries.reserve(order.size());
  for (const auto& name : order) {
    const auto& values = by_name[name];
    MetricSummary summary;
    summary.name = name;
    summary.samples = values.size();
    summary.min = *std::min_element(values.begin(), values.end());
    summary.max = *std::max_element(values.begin(), values.end());
    double sum = 0.0;
    for (const double v : values) sum += v;
    summary.mean = sum / static_cast<double>(values.size());
    double sq = 0.0;
    for (const double v : values) sq += (v - summary.mean) * (v - summary.mean);
    summary.stddev = values.size() < 2
                         ? 0.0
                         : std::sqrt(sq / static_cast<double>(values.size() - 1));
    summaries.push_back(std::move(summary));
  }
  return summaries;
}

const MetricSummary& find_metric(const std::vector<MetricSummary>& summaries,
                                 const std::string& name) {
  for (const auto& summary : summaries) {
    if (summary.name == name) return summary;
  }
  throw std::out_of_range("metric not found: " + name);
}

}  // namespace wrt::sim
