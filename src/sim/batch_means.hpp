// Steady-state output analysis: warmup trimming + batch means.
//
// The experiment harnesses report steady-state quantities (mean rotation,
// mean delay, throughput) from single long runs; the classic way to attach
// a confidence interval without independent replications is the method of
// batch means — drop the warmup prefix, split the remaining observations
// into B contiguous batches, and treat batch averages as approximately
// independent samples.
#pragma once

#include <cstddef>
#include <vector>

namespace wrt::sim {

struct BatchMeansResult {
  double mean = 0.0;
  double ci95_half_width = 0.0;
  std::size_t batches = 0;
  std::size_t observations_used = 0;
};

class BatchMeans {
 public:
  /// `warmup_fraction` of the observations is discarded from the front;
  /// the rest is split into `batches` batches (>= 2).
  explicit BatchMeans(std::size_t batches = 20, double warmup_fraction = 0.1);

  void add(double observation) { observations_.push_back(observation); }

  [[nodiscard]] std::size_t count() const noexcept {
    return observations_.size();
  }

  /// Computes the estimate; requires enough observations for at least two
  /// non-empty batches after warmup (otherwise batches = 0 is returned and
  /// mean falls back to the plain average).
  [[nodiscard]] BatchMeansResult estimate() const;

 private:
  std::size_t batches_;
  double warmup_fraction_;
  std::vector<double> observations_;
};

}  // namespace wrt::sim
