// Structured protocol event tracing.
//
// Counters (EngineStats) say how often things happened; the event trace
// says in what order and when — which is what debugging a distributed
// protocol actually needs, and what lets tests assert on causal sequences
// ("detection happened before the cut-out, which happened before the next
// full round").  A bounded ring buffer keeps memory constant on long runs.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace wrt::sim {

enum class EventKind : std::uint8_t {
  kSatLaunched,
  kSatLost,
  kLossDetected,
  kSatRecStarted,
  kCutOut,
  kRecovered,
  kRebuildStarted,
  kRebuildCompleted,
  kRapStarted,
  kJoinCompleted,
  kJoinRejected,
  kLeaveCompleted,
  kStationStalled,   // fault plane: wedged (alive but silent)
  kStationResumed,   // fault plane: un-wedged
  kTokenLost,        // TPT
  kClaimStarted,     // TPT
  kClaimSucceeded,   // TPT
  kTreeRebuilt,      // TPT
};

[[nodiscard]] std::string to_string(EventKind kind);

struct ProtocolEvent {
  EventKind kind{};
  Tick at = 0;
  NodeId station = kInvalidNode;  ///< primary subject (detector, joiner, ...)
  NodeId other = kInvalidNode;    ///< secondary subject (failed station, ...)

  [[nodiscard]] std::string to_line() const;
};

class EventTrace {
 public:
  explicit EventTrace(std::size_t capacity = 1024) : capacity_(capacity) {}

  void record(EventKind kind, Tick at, NodeId station = kInvalidNode,
              NodeId other = kInvalidNode);

  [[nodiscard]] const std::deque<ProtocolEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] std::uint64_t total_recorded() const noexcept {
    return total_;
  }

  /// Events pushed out of the ring since the last clear().  Exports surface
  /// this so a wrapped trace is never mistaken for the full history.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return total_ - events_.size();
  }

  /// JSON export: {"total_recorded", "dropped", "events": [{kind, tick,
  /// slot, station, other}, ...]} with events oldest first.  station/other
  /// are null when unset (kInvalidNode).
  void to_json(std::ostream& out) const;

  /// Events of one kind, oldest first.
  [[nodiscard]] std::vector<ProtocolEvent> of_kind(EventKind kind) const;

  /// First event of `kind` at or after `from`; nullptr when absent.
  [[nodiscard]] const ProtocolEvent* first_after(EventKind kind,
                                                 Tick from) const;

  /// True iff, in trace order, an event of `a` precedes one of `b`
  /// (earliest occurrences).
  [[nodiscard]] bool ordered(EventKind a, EventKind b) const;

  void clear();

 private:
  std::size_t capacity_;
  std::deque<ProtocolEvent> events_;
  std::uint64_t total_ = 0;
};

}  // namespace wrt::sim
