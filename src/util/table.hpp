// Tabular output for benches and experiment harnesses.
//
// Every bench binary prints the paper-shaped series as aligned text tables
// and can optionally mirror them to CSV, so EXPERIMENTS.md rows can be
// regenerated mechanically.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace wrt::util {

/// A cell is a string, an integer, or a real (printed with fixed precision).
using Cell = std::variant<std::string, std::int64_t, double>;

class Table {
 public:
  explicit Table(std::string title, std::vector<std::string> columns);

  /// Appends one row; the number of cells must match the column count.
  void add_row(std::vector<Cell> cells);

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  [[nodiscard]] const std::string& title() const noexcept { return title_; }

  /// Renders an aligned, boxed text table.
  void print(std::ostream& os) const;

  /// Renders RFC-4180-style CSV (no quoting of embedded commas needed for
  /// our numeric tables, but strings containing commas are quoted anyway).
  void print_csv(std::ostream& os) const;

  /// Renders a GitHub-flavoured markdown table (for EXPERIMENTS.md rows).
  void print_markdown(std::ostream& os) const;

  /// Real-number print precision (digits after the point); default 3.
  void set_precision(int digits) noexcept { precision_ = digits; }

 private:
  [[nodiscard]] std::string render_cell(const Cell& cell) const;

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 3;
};

}  // namespace wrt::util
