// Deterministic random number generation.
//
// Every stochastic entity in the simulator (traffic generator, mobility
// model, failure injector, ...) owns an independent stream derived from
// (master seed, entity id).  Identical seeds reproduce identical simulation
// runs bit-for-bit, which keeps property tests and regression benches stable
// and lets replications run on parallel threads with no shared state.
#pragma once

#include <array>
#include <cstdint>

namespace wrt::util {

/// SplitMix64: used to expand a (seed, stream) pair into xoshiro state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator from a master seed and a stream id so that
  /// different entities get decorrelated streams.
  explicit Xoshiro256(std::uint64_t seed, std::uint64_t stream = 0) noexcept {
    std::uint64_t sm = seed ^ (0xd1b54a32d192ed03ULL * (stream + 1));
    for (auto& word : state_) word = splitmix64(sm);
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~std::uint64_t{0};
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x,
                                                    int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Convenience wrapper bundling a generator with the distributions the
/// simulator actually uses.  Distribution algorithms are implemented here
/// (not via <random> classes) so results are identical across standard
/// library implementations.
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed, std::uint64_t stream = 0) noexcept
      : gen_(seed, stream) {}

  /// Uniform in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n) using Lemire's unbiased method.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo,
                                         std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform_int(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial.
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Exponential with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Standard normal via Marsaglia polar method.
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0) noexcept;

  /// Geometric: number of failures before first success, p in (0, 1].
  [[nodiscard]] std::uint64_t geometric(double p) noexcept;

  /// Poisson-distributed count with the given mean (Knuth for small mean,
  /// normal approximation for large mean).
  [[nodiscard]] std::uint64_t poisson(double mean) noexcept;

  /// Raw 64 random bits.
  [[nodiscard]] std::uint64_t bits() noexcept { return gen_(); }

  /// Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) noexcept {
    const auto n = c.size();
    for (std::size_t i = n; i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  Xoshiro256 gen_;
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace wrt::util
