#include "util/types.hpp"

namespace wrt {

std::string to_string(TrafficClass c) {
  switch (c) {
    case TrafficClass::kRealTime:
      return "real-time";
    case TrafficClass::kAssured:
      return "assured";
    case TrafficClass::kBestEffort:
      return "best-effort";
  }
  return "unknown";
}

}  // namespace wrt
