#include "util/args.hpp"

#include <cstdlib>

namespace wrt::util {

Args::Args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) continue;
    token = token.substr(2);
    const auto equals = token.find('=');
    if (equals != std::string::npos) {
      values_[token.substr(0, equals)] = token.substr(equals + 1);
      continue;
    }
    // `--name value` when the next token is not itself a flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[token] = argv[i + 1];
      ++i;
    } else {
      values_[token] = "";
    }
  }
}

bool Args::has(const std::string& name) const {
  queried_[name] = true;
  return values_.contains(name);
}

std::int64_t Args::get_int(const std::string& name,
                           std::int64_t fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Args::get_double(const std::string& name, double fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

std::string Args::get_string(const std::string& name,
                             std::string fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second;
}

std::vector<std::int64_t> Args::get_int_list(
    const std::string& name, std::vector<std::int64_t> fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  std::vector<std::int64_t> result;
  std::size_t start = 0;
  const std::string& text = it->second;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string piece =
        text.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!piece.empty()) {
      result.push_back(std::strtoll(piece.c_str(), nullptr, 10));
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return result.empty() ? fallback : result;
}

std::vector<std::string> Args::unknown_flags() const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : values_) {
    if (!queried_.contains(name)) unknown.push_back(name);
  }
  return unknown;
}

}  // namespace wrt::util
