// Core vocabulary types shared across the WRT-Ring code base.
//
// The paper normalises every time quantity to the slot duration; we keep a
// finer integer unit (the "tick") so that sub-slot quantities such as the
// control-signal processing/propagation time (T_proc + T_prop, Section 3.3)
// remain representable without floating point.  One slot is kTicksPerSlot
// ticks; all protocol state machines advance in ticks and expose
// slot-normalised values at the API boundary.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace wrt {

/// Integer simulation time in ticks.
using Tick = std::int64_t;

/// Number of ticks per MAC slot.  Chosen as a power of two so that
/// slot <-> tick conversions are exact and cheap.
inline constexpr Tick kTicksPerSlot = 16;

/// Sentinel for "no time" / "never".
inline constexpr Tick kNeverTick = std::numeric_limits<Tick>::max();

/// Convert a slot count to ticks.
[[nodiscard]] constexpr Tick slots_to_ticks(std::int64_t slots) noexcept {
  return slots * kTicksPerSlot;
}

/// Convert ticks to whole slots (floor).
[[nodiscard]] constexpr std::int64_t ticks_to_slots(Tick ticks) noexcept {
  return ticks / kTicksPerSlot;
}

/// Convert ticks to slots as a real number (for reporting only).
[[nodiscard]] constexpr double ticks_to_slots_real(Tick ticks) noexcept {
  return static_cast<double>(ticks) / static_cast<double>(kTicksPerSlot);
}

/// Identifier of a station (node).  Stations keep their identifier across
/// topology changes; ring positions are separate (see ring::VirtualRing).
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Identifier of a traffic flow.
using FlowId = std::uint32_t;
inline constexpr FlowId kInvalidFlow = std::numeric_limits<FlowId>::max();

/// Identifier of a CDMA spreading code.
using CdmaCode = std::uint16_t;
inline constexpr CdmaCode kInvalidCode = std::numeric_limits<CdmaCode>::max();
/// The common (broadcast) code every station owns in addition to its own
/// receive code (Section 2.1: "each station is provided with a common code").
inline constexpr CdmaCode kBroadcastCode = 0;

/// Traffic classes.  The paper integrates two MAC-level types (real-time and
/// best-effort, Section 2.2) and maps them onto three Diffserv classes
/// (Section 2.3): l <-> Premium, k = k1 (Assured) + k2 (best-effort).
enum class TrafficClass : std::uint8_t {
  kRealTime = 0,  ///< Premium / delay-bounded; consumes the l quota.
  kAssured = 1,   ///< Assured; consumes the k1 share of the k quota.
  kBestEffort = 2 ///< Best-effort; consumes the k2 share of the k quota.
};

/// True for classes that consume the non-real-time (k) quota.
[[nodiscard]] constexpr bool is_non_real_time(TrafficClass c) noexcept {
  return c != TrafficClass::kRealTime;
}

[[nodiscard]] std::string to_string(TrafficClass c);

/// Per-station transmission quotas (Section 2.2).  `l` bounds the number of
/// real-time packets a station may transmit per SAT round; `k` bounds the
/// non-real-time packets.  For Diffserv (Section 2.3) `k` is split into
/// `k1` (Assured) and `k2` (best-effort) with k1 + k2 = k.
struct Quota {
  std::uint32_t l = 1;
  std::uint32_t k = 1;

  friend constexpr auto operator<=>(const Quota&, const Quota&) = default;

  [[nodiscard]] constexpr std::uint32_t total() const noexcept { return l + k; }
};

}  // namespace wrt
