// Minimal Result<T> error-handling vocabulary (std::expected is C++23; this
// project targets C++20).  Protocol operations that can fail for expected,
// recoverable reasons (admission rejected, join refused, no ring possible)
// return Result<T> rather than throwing; exceptions are reserved for
// programming errors.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace wrt::util {

/// A failure description: machine-checkable code plus human message.
struct Error {
  enum class Code {
    kInvalidArgument,
    kAdmissionRejected,
    kNotReachable,
    kNoRingPossible,
    kNotFound,
    kProtocolViolation,
    kCapacityExceeded,
    kTimeout,
  };

  Code code = Code::kInvalidArgument;
  std::string message;

  [[nodiscard]] static Error invalid_argument(std::string msg) {
    return {Code::kInvalidArgument, std::move(msg)};
  }
  [[nodiscard]] static Error admission_rejected(std::string msg) {
    return {Code::kAdmissionRejected, std::move(msg)};
  }
  [[nodiscard]] static Error not_reachable(std::string msg) {
    return {Code::kNotReachable, std::move(msg)};
  }
  [[nodiscard]] static Error no_ring_possible(std::string msg) {
    return {Code::kNoRingPossible, std::move(msg)};
  }
  [[nodiscard]] static Error not_found(std::string msg) {
    return {Code::kNotFound, std::move(msg)};
  }
  [[nodiscard]] static Error protocol_violation(std::string msg) {
    return {Code::kProtocolViolation, std::move(msg)};
  }
  [[nodiscard]] static Error capacity_exceeded(std::string msg) {
    return {Code::kCapacityExceeded, std::move(msg)};
  }
  [[nodiscard]] static Error timeout(std::string msg) {
    return {Code::kTimeout, std::move(msg)};
  }
};

[[nodiscard]] std::string to_string(Error::Code code);

/// Result<T>: either a value or an Error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}             // NOLINT(google-explicit-constructor)
  Result(Error error) : storage_(std::move(error)) {}         // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(storage_);
  }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(storage_));
  }

  [[nodiscard]] const Error& error() const& {
    assert(!ok());
    return std::get<Error>(storage_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> storage_;
};

/// Result<void> specialisation-equivalent for operations with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)), ok_(false) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] static Status success() { return {}; }

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  explicit operator bool() const noexcept { return ok_; }

  [[nodiscard]] const Error& error() const {
    assert(!ok_);
    return error_;
  }

 private:
  Error error_{};
  bool ok_ = true;
};

}  // namespace wrt::util
