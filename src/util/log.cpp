#include "util/log.hpp"

#include <atomic>
#include <iostream>

namespace wrt::util {
namespace {

// wrt-lint-allow(mutable-global-state): process-wide atomic log level; per-shard levels would fragment operator UX
std::atomic<LogLevel> g_level{LogLevel::kWarn};
// wrt-lint-allow(mutable-global-state): one atomic sink pointer for the whole process, installed before workers start
std::atomic<LogSink> g_sink{nullptr};

void default_sink(LogLevel level, const std::string& message) {
  std::cerr << '[' << to_string(level) << "] " << message << '\n';
}

}  // namespace

std::string to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "trace";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void set_log_sink(LogSink sink) noexcept { g_sink.store(sink); }

bool detail::enabled(LogLevel level) noexcept {
  return level >= g_level.load(std::memory_order_relaxed);
}

void log(LogLevel level, const std::string& message) {
  if (!detail::enabled(level)) return;
  if (LogSink sink = g_sink.load()) {
    sink(level, message);
  } else {
    default_sink(level, message);
  }
}

}  // namespace wrt::util
