// Small numeric helpers used by the analytical bounds and the statistics
// collectors.
#pragma once

#include <cassert>
#include <cstdint>

namespace wrt::util {

/// Ceiling division for non-negative integers; Theorem 3 of the paper uses
/// ceil((x + 1) / l).
[[nodiscard]] constexpr std::int64_t ceil_div(std::int64_t num,
                                              std::int64_t den) noexcept {
  assert(den > 0);
  assert(num >= 0);
  return (num + den - 1) / den;
}

/// Conversion helper for mixed-width arithmetic in stats code.
template <typename Integer>
[[nodiscard]] constexpr double as_double(Integer v) noexcept {
  return static_cast<double>(v);
}

}  // namespace wrt::util
