// Sorted-vector associative map.
//
// The engine hot path is position-indexed and must stay free of node-based
// associative containers (the wrt_lint `hot-path-assoc` rule enforces
// this).  The few key->value tables that remain on protocol control paths
// (pending joins, per-flow accounting) are small — a handful to a few
// dozen entries — where a contiguous sorted vector beats a red-black tree
// on every operation and keeps iteration deterministic (ascending key
// order, matching std::map semantics digest-for-digest).
//
// Deliberately minimal: exactly the std::map surface the code base uses
// (find/contains/at/operator[]/erase/ordered iteration), nothing more.
#pragma once

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

namespace wrt::util {

template <typename Key, typename Value>
class FlatMap {
 public:
  using value_type = std::pair<Key, Value>;
  using storage_type = std::vector<value_type>;
  using iterator = typename storage_type::iterator;
  using const_iterator = typename storage_type::const_iterator;

  [[nodiscard]] iterator begin() noexcept { return items_.begin(); }
  [[nodiscard]] iterator end() noexcept { return items_.end(); }
  [[nodiscard]] const_iterator begin() const noexcept {
    return items_.begin();
  }
  [[nodiscard]] const_iterator end() const noexcept { return items_.end(); }

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  void clear() noexcept { items_.clear(); }

  [[nodiscard]] iterator find(const Key& key) {
    const iterator it = lower_bound(key);
    return it != items_.end() && it->first == key ? it : items_.end();
  }
  [[nodiscard]] const_iterator find(const Key& key) const {
    const const_iterator it = lower_bound(key);
    return it != items_.end() && it->first == key ? it : items_.end();
  }
  [[nodiscard]] bool contains(const Key& key) const {
    return find(key) != items_.end();
  }
  [[nodiscard]] std::size_t count(const Key& key) const {
    return contains(key) ? 1 : 0;
  }

  [[nodiscard]] Value& at(const Key& key) {
    const iterator it = find(key);
    assert(it != items_.end());
    return it->second;
  }
  [[nodiscard]] const Value& at(const Key& key) const {
    const const_iterator it = find(key);
    assert(it != items_.end());
    return it->second;
  }

  /// std::map-style subscript: default-constructs a missing entry.
  Value& operator[](const Key& key) {
    const iterator it = lower_bound(key);
    if (it != items_.end() && it->first == key) return it->second;
    return items_.insert(it, value_type(key, Value{}))->second;
  }

  std::size_t erase(const Key& key) {
    const iterator it = find(key);
    if (it == items_.end()) return 0;
    items_.erase(it);
    return 1;
  }
  iterator erase(const_iterator position) { return items_.erase(position); }

 private:
  [[nodiscard]] iterator lower_bound(const Key& key) {
    return std::lower_bound(
        items_.begin(), items_.end(), key,
        [](const value_type& item, const Key& k) { return item.first < k; });
  }
  [[nodiscard]] const_iterator lower_bound(const Key& key) const {
    return std::lower_bound(
        items_.begin(), items_.end(), key,
        [](const value_type& item, const Key& k) { return item.first < k; });
  }

  storage_type items_;
};

}  // namespace wrt::util
