#include "util/result.hpp"

namespace wrt::util {

std::string to_string(Error::Code code) {
  switch (code) {
    case Error::Code::kInvalidArgument:
      return "invalid-argument";
    case Error::Code::kAdmissionRejected:
      return "admission-rejected";
    case Error::Code::kNotReachable:
      return "not-reachable";
    case Error::Code::kNoRingPossible:
      return "no-ring-possible";
    case Error::Code::kNotFound:
      return "not-found";
    case Error::Code::kProtocolViolation:
      return "protocol-violation";
    case Error::Code::kCapacityExceeded:
      return "capacity-exceeded";
    case Error::Code::kTimeout:
      return "timeout";
  }
  return "unknown";
}

}  // namespace wrt::util
