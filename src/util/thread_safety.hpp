// Thread-safety annotation layer (Clang thread-safety analysis).
//
// The sharded multi-ring federation (ROADMAP) runs one shard — one engine,
// one scheduler, one journal — per worker thread, with the process-wide
// MetricRegistry as the only sanctioned cross-shard state.  That contract
// is machine-checked on two levels:
//
//   1. Clang builds compile with `-Wthread-safety -Werror`, so every mutex
//      acquisition is checked against the WRT_GUARDED_BY / WRT_REQUIRES
//      annotations below (GCC compiles the macros to nothing; CI runs the
//      Clang leg).
//   2. `tools/wrt_lint` enforces the textual half: shared types register
//      with `// wrt-lint-shared-type(Name)` and every field must then be
//      atomic, const, a mutex, or carry a WRT_GUARDED_BY annotation
//      (rule `unguarded-shared-field`); mutable globals are banned
//      (`mutable-global-state`) and engine code may not hold raw handles
//      into another shard (`cross-shard-handle`).
//
// The macro set mirrors clang's attribute names with a WRT_ prefix so the
// annotations read as repo vocabulary and compile away on any toolchain
// without the attributes.  See DESIGN.md "Concurrency model & shard-safety
// contract" for which state is shared and which is shard-local.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define WRT_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef WRT_THREAD_ANNOTATION_
#define WRT_THREAD_ANNOTATION_(x)  // no-op: GCC / MSVC / old Clang
#endif

/// Class is a lockable capability (mutex wrappers).
#define WRT_CAPABILITY(x) WRT_THREAD_ANNOTATION_(capability(x))

/// RAII type that acquires a capability in its constructor and releases it
/// in its destructor (lock_guard wrappers).
#define WRT_SCOPED_CAPABILITY WRT_THREAD_ANNOTATION_(scoped_lockable)

/// Field or variable may only be read/written while holding `x`.
#define WRT_GUARDED_BY(x) WRT_THREAD_ANNOTATION_(guarded_by(x))

/// Pointee (not the pointer itself) is protected by `x`.
#define WRT_PT_GUARDED_BY(x) WRT_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the listed capabilities held exclusively on entry.
#define WRT_REQUIRES(...) \
  WRT_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function requires the listed capabilities held shared on entry.
#define WRT_REQUIRES_SHARED(...) \
  WRT_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the listed capabilities and does not release them.
#define WRT_ACQUIRE(...) \
  WRT_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

#define WRT_ACQUIRE_SHARED(...) \
  WRT_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the listed capabilities (which must be held on entry).
#define WRT_RELEASE(...) \
  WRT_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

#define WRT_RELEASE_SHARED(...) \
  WRT_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held
/// (deadlock-by-reentry guard).
#define WRT_EXCLUDES(...) WRT_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function acquires the capability iff it returns `result`.
#define WRT_TRY_ACQUIRE(result, ...) \
  WRT_THREAD_ANNOTATION_(try_acquire_capability(result, __VA_ARGS__))

/// Function returns a reference to the named capability.
#define WRT_RETURN_CAPABILITY(x) WRT_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the analysis is wrong or intentionally bypassed here; a
/// comment explaining why is mandatory at every use site.
#define WRT_NO_THREAD_SAFETY_ANALYSIS \
  WRT_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// Documentation marker (expands to nothing on every compiler): instances
/// of this class are confined to a single shard/worker thread — no internal
/// locking, callers must not share one across threads.  The federation
/// contract in one word; place it on the class, right before the name:
///
///   class WRT_SHARD_CONFINED Scheduler { ... };
///
/// Cross-thread use of a shard-confined type is a bug even where TSan
/// happens not to observe a race.
#define WRT_SHARD_CONFINED

#include <mutex>

namespace wrt::util {

/// std::mutex with the capability annotations the analysis needs —
/// libstdc++'s mutex carries no attributes, so guarding a field with a bare
/// std::mutex silences nothing and proves nothing.  Every lock guarding
/// shared state in this repo must be a util::Mutex so Clang can see
/// acquire/release pairs.
class WRT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() WRT_ACQUIRE() { mutex_.lock(); }
  void unlock() WRT_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() WRT_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

 private:
  std::mutex mutex_;
};

/// Scoped lock over util::Mutex (annotated std::lock_guard equivalent).
class WRT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) WRT_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() WRT_RELEASE() { mutex_.unlock(); }

 private:
  Mutex& mutex_;
};

}  // namespace wrt::util
