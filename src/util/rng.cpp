#include "util/rng.hpp"

#include <cmath>

namespace wrt::util {

std::uint64_t RngStream::uniform_int(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = gen_();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = gen_();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double RngStream::exponential(double mean) noexcept {
  // Inversion; guard against log(0).
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double RngStream::normal(double mean, double stddev) noexcept {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return mean + stddev * u * factor;
}

std::uint64_t RngStream::geometric(double p) noexcept {
  if (p >= 1.0) return 0;
  if (p <= 0.0) return ~std::uint64_t{0};
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

std::uint64_t RngStream::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplicative method.
    const double limit = std::exp(-mean);
    std::uint64_t count = 0;
    double product = uniform();
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction for large means.
  const double sample = normal(mean, std::sqrt(mean));
  return sample < 0.5 ? 0 : static_cast<std::uint64_t>(sample + 0.5);
}

}  // namespace wrt::util
