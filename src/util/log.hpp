// Lightweight levelled logging.
//
// Protocol engines log topology events (joins, leaves, SAT loss/recovery) at
// kInfo and per-slot detail at kTrace.  The sink is a free function pointer
// so tests can capture output and benches can silence it without touching
// global iostream state.
#pragma once

#include <cstdint>
#include <string>

namespace wrt::util {

enum class LogLevel : std::uint8_t {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

[[nodiscard]] std::string to_string(LogLevel level);

/// Sink callback: receives the level and the fully formatted message.
using LogSink = void (*)(LogLevel, const std::string&);

/// Sets the global minimum level (default kWarn: simulations are quiet).
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Replaces the sink; nullptr restores the default (stderr) sink.
void set_log_sink(LogSink sink) noexcept;

/// Emits `message` if `level` >= the global minimum.
void log(LogLevel level, const std::string& message);

namespace detail {
[[nodiscard]] bool enabled(LogLevel level) noexcept;
}  // namespace detail

}  // namespace wrt::util
