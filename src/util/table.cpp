#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace wrt::util {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  assert(!columns_.empty());
}

void Table::add_row(std::vector<Cell> cells) {
  assert(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render_cell(const Cell& cell) const {
  if (const auto* str = std::get_if<std::string>(&cell)) return *str;
  if (const auto* integer = std::get_if<std::int64_t>(&cell)) {
    return std::to_string(*integer);
  }
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision_) << std::get<double>(cell);
  return oss.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) widths[i] = columns_[i].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      cells.push_back(render_cell(row[i]));
      widths[i] = std::max(widths[i], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  const auto rule = [&] {
    os << '+';
    for (const auto width : widths) os << std::string(width + 2, '-') << '+';
    os << '\n';
  };

  os << "== " << title_ << " ==\n";
  rule();
  os << '|';
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    os << ' ' << std::left << std::setw(static_cast<int>(widths[i]))
       << columns_[i] << " |";
  }
  os << '\n';
  rule();
  for (const auto& row : rendered) {
    os << '|';
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << ' ' << std::right << std::setw(static_cast<int>(widths[i]))
         << row[i] << " |";
    }
    os << '\n';
  }
  rule();
}

void Table::print_markdown(std::ostream& os) const {
  os << "**" << title_ << "**\n\n|";
  for (const auto& column : columns_) os << ' ' << column << " |";
  os << "\n|";
  for (std::size_t i = 0; i < columns_.size(); ++i) os << "---|";
  os << '\n';
  for (const auto& row : rows_) {
    os << '|';
    for (const auto& cell : row) os << ' ' << render_cell(cell) << " |";
    os << '\n';
  }
}

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&os](const std::string& text) {
    if (text.find(',') != std::string::npos) {
      os << '"' << text << '"';
    } else {
      os << text;
    }
  };
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i != 0) os << ',';
    emit(columns_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) os << ',';
      emit(render_cell(row[i]));
    }
    os << '\n';
  }
}

}  // namespace wrt::util
