// Build-time audit switch for the correctness tooling (src/check/).
//
// WRT_AUDIT_LEVEL selects how much runtime self-checking is compiled in:
//   0  release: every WRT_AUDIT / WRT_ASSERT expands to nothing — the hot
//      path carries zero audit overhead (the check.sh digest oracle relies
//      on this);
//   1  audit build: WRT_AUDIT(stmt) executes `stmt` and WRT_ASSERT aborts
//      with a diagnostic on violation.
//
// The default follows NDEBUG (release builds are level 0), and can be
// forced either way with -DWRT_AUDIT_LEVEL=0/1.  Code that needs to branch
// on the mode at compile time uses util::kAuditEnabled with `if constexpr`.
#pragma once

#include <cstdlib>
#include <string>

#include "util/log.hpp"

#ifndef WRT_AUDIT_LEVEL
#ifdef NDEBUG
#define WRT_AUDIT_LEVEL 0
#else
#define WRT_AUDIT_LEVEL 1
#endif
#endif

namespace wrt::util {

inline constexpr bool kAuditEnabled = WRT_AUDIT_LEVEL != 0;

namespace detail {
/// Reports a failed WRT_ASSERT and aborts.  Out-of-line of the macro so the
/// cold path costs one call even in audit builds.
[[noreturn]] inline void audit_fail(const char* file, int line,
                                    const char* condition,
                                    const std::string& message) {
  log(LogLevel::kError, std::string("WRT_ASSERT failed at ") + file + ":" +
                            std::to_string(line) + ": (" + condition +
                            ") " + message);
  std::abort();
}
}  // namespace detail

}  // namespace wrt::util

#if WRT_AUDIT_LEVEL
/// Executes `stmt` in audit builds only.
#define WRT_AUDIT(stmt) \
  do {                  \
    stmt;               \
  } while (false)
/// Aborts with a diagnostic when `cond` is false (audit builds only).
#define WRT_ASSERT(cond, message)                                     \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::wrt::util::detail::audit_fail(__FILE__, __LINE__, #cond,      \
                                      (message));                     \
    }                                                                 \
  } while (false)
#else
#define WRT_AUDIT(stmt) ((void)0)
#define WRT_ASSERT(cond, message) ((void)0)
#endif
