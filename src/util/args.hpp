// Minimal command-line flag parsing for benches and examples.
//
// Supports `--name value`, `--name=value` and boolean `--name` forms; every
// experiment binary keeps its defaults (so `for b in bench/*; do $b; done`
// reproduces the recorded tables) while letting a user re-run any sweep
// with different sizes, seeds or horizons.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wrt::util {

class Args {
 public:
  Args(int argc, char** argv);

  /// True when the flag appeared (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] std::string get_string(const std::string& name,
                                       std::string fallback) const;

  /// Comma-separated integer list, e.g. --sizes 4,8,16.
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      const std::string& name, std::vector<std::int64_t> fallback) const;

  /// Flags that were passed but never queried (typo detection).
  [[nodiscard]] std::vector<std::string> unknown_flags() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace wrt::util
