#include "app/emodel.hpp"

#include <algorithm>

namespace wrt::app {

double delay_impairment_ms(double delay_ms) {
  const double d = std::max(0.0, delay_ms);
  double id = 0.024 * d;
  if (d > 177.3) id += 0.11 * (d - 177.3);
  return id;
}

double loss_impairment(double loss_fraction, const EModelParams& params) {
  const double ppl = 100.0 * std::clamp(loss_fraction, 0.0, 1.0);
  if (ppl <= 0.0) return params.ie;
  return params.ie + (95.0 - params.ie) * ppl / (ppl + params.bpl);
}

double r_factor(double delay_ms, double loss_fraction,
                const EModelParams& params) {
  return params.r0 - delay_impairment_ms(delay_ms) -
         loss_impairment(loss_fraction, params);
}

double mos_from_r(double r) {
  if (r <= 0.0) return 1.0;
  if (r >= 100.0) return 4.5;
  const double m = 1.0 + 0.035 * r + r * (r - 60.0) * (100.0 - r) * 7.0e-6;
  // The Annex-B cubic dips slightly below 1 for small positive R; MOS is
  // defined on [1, 4.5].
  return std::clamp(m, 1.0, 4.5);
}

double mos(double delay_ms, double loss_fraction, const EModelParams& params) {
  return mos_from_r(r_factor(delay_ms, loss_fraction, params));
}

}  // namespace wrt::app
