// ITU-T G.107 E-model voice-quality scoring.
//
// The E-model condenses a call's transmission impairments into a scalar
// rating R = R0 - Id - Ie_eff, which maps to the familiar 1..4.5 MOS scale.
// This reproduction uses the narrowband default parameter set (R0 = 93.2,
// i.e. every impairment factor the MAC cannot influence held at its G.107
// default) and the two terms the MAC *does* influence:
//
//  * Id     — delay impairment from one-way mouth-to-ear delay (G.107 §7.4
//             simplified form: 0.024 d + 0.11 (d - 177.3) H(d - 177.3)),
//  * Ie_eff — effective equipment impairment from the codec's intrinsic
//             impairment Ie plus random packet loss, Ie_eff = Ie +
//             (95 - Ie) * Ppl / (Ppl + Bpl) with Ppl in percent.
//
// Frames that arrive past their playout deadline are useless to the decoder,
// so the scorer folds late frames into Ppl alongside genuine drops.
//
// Reference anchors (unit-tested): R = 93.2 -> MOS 4.41 (zero impairment),
// R = 75 -> MOS 3.8 ("satisfied" threshold), R = 50 -> MOS 2.6, and the
// clamp points MOS = 1.0 below R = 0 and 4.5 above R = 100.
#pragma once

namespace wrt::app {

/// Codec-dependent E-model constants.  Defaults are G.711 (Ie = 0,
/// Bpl = 4.3) on the default transmission-plan rating R0 = 93.2.
struct EModelParams {
  double r0 = 93.2;   ///< base rating with all static impairments at default
  double ie = 0.0;    ///< codec equipment impairment factor
  double bpl = 4.3;   ///< codec packet-loss robustness factor
};

/// Delay impairment Id for a one-way mouth-to-ear delay in milliseconds.
[[nodiscard]] double delay_impairment_ms(double delay_ms);

/// Effective equipment impairment Ie_eff for a loss *fraction* in [0, 1]
/// (late frames count as lost; the fraction is converted to percent
/// internally, per the G.107 formula).
[[nodiscard]] double loss_impairment(double loss_fraction,
                                     const EModelParams& params = {});

/// Full rating R = R0 - Id(delay) - Ie_eff(loss).
[[nodiscard]] double r_factor(double delay_ms, double loss_fraction,
                              const EModelParams& params = {});

/// G.107 Annex B mapping from rating to mean opinion score: clamped to
/// [1.0, 4.5], cubic in between.
[[nodiscard]] double mos_from_r(double r);

/// Convenience: MOS for a (delay, loss) pair under `params`.
[[nodiscard]] double mos(double delay_ms, double loss_fraction,
                         const EModelParams& params = {});

}  // namespace wrt::app
