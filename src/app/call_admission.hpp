// Call-level admission control over the MAC's real-time reservation path.
//
// Section 2.4.1's admission check, lifted to application terms: a voice
// call asks for one frame per packetisation period with a playout deadline,
// and the controller translates that into a wrtring::SessionRequest against
// the ring's Theorem-3 feasibility test.  The MAC-level deadline handed to
// the reservation is the playout deadline minus a transit allowance (slots
// the frame spends crossing the ring after winning channel access), so the
// guarantee the MAC signs is the part it actually controls.
//
// The controller records the admitted-vs-offered frontier — after each
// offer, how many calls asked and how many hold reservations — which is the
// capacity curve bench_voice_capacity plots.
#pragma once

#include <cstdint>
#include <vector>

#include "app/voice_call.hpp"
#include "util/types.hpp"
#include "wrtring/admission.hpp"

namespace wrt::app {

class CallAdmission {
 public:
  /// `controller` must outlive this object.  `transit_allowance_slots` is
  /// subtracted from the playout deadline to form the MAC access-delay
  /// deadline (callers typically use ring size + 2).
  CallAdmission(wrtring::AdmissionController* controller,
                std::int64_t transit_allowance_slots);

  /// Offers one call; returns true iff the ring reserved quota for it.
  /// A call whose MAC deadline would be non-positive is rejected outright.
  bool offer(const VoiceCall& call, const VoiceCallParams& params);

  /// Releases a previously admitted call's reservation.
  void release(FlowId flow);

  [[nodiscard]] bool is_admitted(FlowId flow) const;

  /// One point per offer(): cumulative calls offered and calls holding a
  /// reservation at that moment.
  struct FrontierPoint {
    std::size_t offered = 0;
    std::size_t admitted = 0;
  };
  [[nodiscard]] const std::vector<FrontierPoint>& frontier() const noexcept {
    return frontier_;
  }

  [[nodiscard]] std::size_t offered_count() const noexcept {
    return offered_;
  }
  [[nodiscard]] std::size_t admitted_count() const noexcept {
    return admitted_.size();
  }
  [[nodiscard]] const std::vector<FlowId>& admitted_flows() const noexcept {
    return admitted_;
  }

 private:
  wrtring::AdmissionController* controller_;
  std::int64_t transit_allowance_slots_;
  std::size_t offered_ = 0;
  std::vector<FlowId> admitted_;
  std::vector<FrontierPoint> frontier_;
};

}  // namespace wrt::app
