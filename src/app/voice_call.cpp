#include "app/voice_call.hpp"

#include <algorithm>

namespace wrt::app {

VoiceFleet::VoiceFleet(std::size_t n_calls, std::size_t n_stations,
                       Tick horizon, std::uint64_t seed,
                       VoiceCallParams params)
    : params_(params) {
  calls_.reserve(n_calls);
  const std::size_t half = std::max<std::size_t>(1, n_stations / 2);
  for (std::size_t i = 0; i < n_calls; ++i) {
    VoiceCall call;
    call.flow = params_.base_flow + static_cast<FlowId>(i);
    call.src = static_cast<NodeId>(i % n_stations);
    call.dst = static_cast<NodeId>((call.src + half) % n_stations);
    if (call.dst == call.src) {
      call.dst = static_cast<NodeId>((call.src + 1) % n_stations);
    }
    // Per-call seed stream: distinct spurt phases per call, reproducible
    // across engines for the same (seed, i).
    call.trace = traffic::make_voice_trace(params_.voice, horizon,
                                           seed + 0x9E3779B97F4A7C15ull * (i + 1));
    call.offered = call.trace.total_packets();
    calls_.push_back(std::move(call));
  }
}

std::uint64_t VoiceFleet::offered_packets() const noexcept {
  std::uint64_t total = 0;
  for (const VoiceCall& call : calls_) total += call.offered;
  return total;
}

double VoiceFleet::offered_load(Tick horizon) const noexcept {
  if (horizon <= 0) return 0.0;
  return static_cast<double>(offered_packets()) /
         ticks_to_slots_real(horizon);
}

CallScore score_call(const VoiceCall& call, const traffic::Sink& sink,
                     const VoiceCallParams& params) {
  CallScore score;
  score.flow = call.flow;
  score.offered = call.offered;

  std::uint64_t delivered = 0;
  double mean_delay_slots = 0.0;
  if (const auto it = sink.per_flow().find(call.flow);
      it != sink.per_flow().end()) {
    delivered = it->second.count();
    mean_delay_slots = it->second.mean();
  }
  std::uint64_t misses = 0;
  if (const auto it = sink.per_flow_counts().find(call.flow);
      it != sink.per_flow_counts().end()) {
    misses = it->second.deadline_misses;
  }
  // Late frames are delivered but useless to the playout buffer; undelivered
  // frames (drops and still-queued at the horizon) never reached it at all.
  score.on_time = delivered > misses ? delivered - misses : 0;
  score.mean_delay_ms = mean_delay_slots * params.slot_ms;
  score.loss_fraction =
      call.offered == 0
          ? 0.0
          : 1.0 - static_cast<double>(std::min(score.on_time, call.offered)) /
                      static_cast<double>(call.offered);
  score.r = r_factor(score.mean_delay_ms, score.loss_fraction);
  score.mos = mos_from_r(score.r);
  return score;
}

std::vector<CallScore> score_fleet(const VoiceFleet& fleet,
                                   const traffic::Sink& sink) {
  std::vector<CallScore> scores;
  scores.reserve(fleet.calls().size());
  for (const VoiceCall& call : fleet.calls()) {
    scores.push_back(score_call(call, sink, fleet.params()));
  }
  return scores;
}

std::size_t compliant_calls(const std::vector<CallScore>& scores,
                            double mos_threshold) {
  return static_cast<std::size_t>(
      std::count_if(scores.begin(), scores.end(),
                    [mos_threshold](const CallScore& s) {
                      return s.mos >= mos_threshold;
                    }));
}

}  // namespace wrt::app
