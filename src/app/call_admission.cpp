#include "app/call_admission.hpp"

#include <algorithm>

namespace wrt::app {

CallAdmission::CallAdmission(wrtring::AdmissionController* controller,
                             std::int64_t transit_allowance_slots)
    : controller_(controller),
      transit_allowance_slots_(transit_allowance_slots) {}

bool CallAdmission::offer(const VoiceCall& call,
                          const VoiceCallParams& params) {
  ++offered_;
  const std::int64_t mac_deadline =
      params.deadline_slots - transit_allowance_slots_;
  bool accepted = false;
  if (mac_deadline > 0) {
    wrtring::SessionRequest request;
    request.flow = call.flow;
    request.station = call.src;
    request.period_slots = params.voice.packet_period_slots;
    request.packets_per_period = 1;
    request.deadline_slots = mac_deadline;
    accepted = controller_->admit(request).ok();
  }
  if (accepted) admitted_.push_back(call.flow);
  frontier_.push_back({offered_, admitted_.size()});
  return accepted;
}

void CallAdmission::release(FlowId flow) {
  const auto it = std::find(admitted_.begin(), admitted_.end(), flow);
  if (it == admitted_.end()) return;
  admitted_.erase(it);
  (void)controller_->release(flow);
  frontier_.push_back({offered_, admitted_.size()});
}

bool CallAdmission::is_admitted(FlowId flow) const {
  return std::find(admitted_.begin(), admitted_.end(), flow) !=
         admitted_.end();
}

}  // namespace wrt::app
