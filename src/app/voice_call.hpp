// Voice-call workload and per-call quality scoring.
//
// The application layer the paper motivates but never simulates: N
// concurrent two-party voice calls placed around the ring, each an on/off
// exponential talk-spurt source (traffic::make_voice_trace — the repo's one
// canonical voice arrival model) emitting fixed-size frames with a per-frame
// playout deadline.  After a run, each call is scored with the G.107
// E-model (app/emodel.hpp): mean MAC delay becomes the delay impairment,
// and late-plus-lost frames become the loss impairment; a call "works" when
// its MOS clears the satisfaction threshold (3.8 by convention).
//
// The fleet is engine-agnostic: attach() feeds the same pre-recorded traces
// to any MAC implementing add_trace_source(trace, flow, src, dst, deadline)
// — WRT-Ring, TPT, or slotted Aloha — so capacity comparisons always run
// bit-identical offered load.
#pragma once

#include <cstdint>
#include <vector>

#include "app/emodel.hpp"
#include "traffic/trace.hpp"
#include "traffic/traffic.hpp"
#include "util/types.hpp"

namespace wrt::app {

/// Shape of one voice call.
struct VoiceCallParams {
  traffic::VoiceParams voice;          ///< talk-spurt / packetisation model
  std::int64_t deadline_slots = 150;   ///< per-frame playout deadline
  double slot_ms = 1.0;                ///< wall-clock per slot (E-model delay)
  double mos_threshold = 3.8;          ///< "satisfied user" bar (R ~ 75)
  FlowId base_flow = 1000;             ///< first call's FlowId
};

/// One placed call: a seeded spurt trace bound to a (src, dst) pair.
struct VoiceCall {
  FlowId flow = kInvalidFlow;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  traffic::Trace trace;
  std::uint64_t offered = 0;  ///< trace.total_packets()
};

/// N concurrent calls spread round-robin over the stations, each talking to
/// the diametrically opposite station (the conference placement, worst-case
/// for hop count and best-case for CDMA spatial reuse).
class VoiceFleet {
 public:
  VoiceFleet(std::size_t n_calls, std::size_t n_stations, Tick horizon,
             std::uint64_t seed, VoiceCallParams params = {});

  [[nodiscard]] const std::vector<VoiceCall>& calls() const noexcept {
    return calls_;
  }
  [[nodiscard]] const VoiceCallParams& params() const noexcept {
    return params_;
  }

  /// Total frames the fleet offers over the horizon.
  [[nodiscard]] std::uint64_t offered_packets() const noexcept;

  /// Mean offered load in packets/slot over `horizon`.
  [[nodiscard]] double offered_load(Tick horizon) const noexcept;

  /// Feeds every call's trace to `engine` (any MAC with the shared
  /// add_trace_source signature).  Traces are copied so the fleet can be
  /// attached to several engines for A/B runs.
  template <typename Engine>
  void attach(Engine& engine) const {
    for (const VoiceCall& call : calls_) {
      engine.add_trace_source(call.trace, call.flow, call.src, call.dst,
                              params_.deadline_slots);
    }
  }

  /// Attaches only the calls whose FlowId satisfies `admitted` (e.g. the
  /// subset a CallAdmission controller accepted).
  template <typename Engine, typename Predicate>
  void attach_if(Engine& engine, Predicate admitted) const {
    for (const VoiceCall& call : calls_) {
      if (!admitted(call.flow)) continue;
      engine.add_trace_source(call.trace, call.flow, call.src, call.dst,
                              params_.deadline_slots);
    }
  }

 private:
  VoiceCallParams params_;
  std::vector<VoiceCall> calls_;
};

/// Per-call quality after a run.
struct CallScore {
  FlowId flow = kInvalidFlow;
  std::uint64_t offered = 0;
  std::uint64_t on_time = 0;      ///< delivered within the playout deadline
  double mean_delay_ms = 0.0;     ///< mean MAC delay of delivered frames
  double loss_fraction = 0.0;     ///< 1 - on_time/offered (late == lost)
  double r = 0.0;                 ///< E-model rating
  double mos = 1.0;
};

/// Scores one call from the sink's per-flow delay series and miss/drop
/// counters.  A call with zero deliveries scores MOS 1.0 (all frames lost);
/// degenerate distributions are safe by the SampleStats contract.
[[nodiscard]] CallScore score_call(const VoiceCall& call,
                                   const traffic::Sink& sink,
                                   const VoiceCallParams& params);

/// Scores every call in the fleet.
[[nodiscard]] std::vector<CallScore> score_fleet(const VoiceFleet& fleet,
                                                 const traffic::Sink& sink);

/// Number of scores at or above the MOS threshold.
[[nodiscard]] std::size_t compliant_calls(const std::vector<CallScore>& scores,
                                          double mos_threshold = 3.8);

}  // namespace wrt::app
