// CDMA code assignment.
//
// Section 2.1: "a unique code [is assigned] to each station, such that two
// stations can communicate only using the assigned code... the assignment of
// these codes goes beyond the scope of this paper" (it cites Hu's distributed
// code assignment, ref [19]).  We build the substrate the paper assumes:
//
//  * For receiver-based CDMA to be collision-free, two stations that share a
//    potential receiver must not share a code — i.e. codes must be distinct
//    within every 2-hop neighbourhood (the classic L(1,1) / distance-2
//    colouring condition from Hu '93).
//  * assign_greedy_two_hop: centralised greedy colouring (what "codes are
//    given when the virtual ring is created" means operationally).
//  * assign_distributed: a simulated message-passing variant in the spirit
//    of [19]: nodes repeatedly pick the smallest code unused within two hops
//    until stable; the returned round count feeds the setup-cost accounting.
//
// Code 0 is reserved for the common/broadcast channel (Section 2.1).
#pragma once

#include <vector>

#include "phy/topology.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace wrt::cdma {

/// Per-node receive codes; index = NodeId.  All codes are >= 1
/// (kBroadcastCode = 0 is reserved).
using CodeMap = std::vector<CdmaCode>;

/// Greedy distance-2 colouring in node-id order.
[[nodiscard]] CodeMap assign_greedy_two_hop(const phy::Topology& topology);

/// Simulated distributed assignment: random node order per round, each node
/// re-picks the smallest code not used in its 2-hop neighbourhood, until a
/// round changes nothing.  Writes the number of rounds to `rounds_out` when
/// non-null.
[[nodiscard]] CodeMap assign_distributed(const phy::Topology& topology,
                                         std::uint64_t seed,
                                         std::size_t* rounds_out = nullptr);

/// Verifies the distance-2 condition: no two distinct alive nodes within two
/// hops share a code, and no node uses the broadcast code.
[[nodiscard]] bool verify_two_hop_distinct(const phy::Topology& topology,
                                           const CodeMap& codes);

/// Number of distinct codes used (the "spreading-code budget").
[[nodiscard]] std::size_t codes_used(const CodeMap& codes);

/// Collects the 2-hop neighbourhood of `node` (excluding `node` itself).
[[nodiscard]] std::vector<NodeId> two_hop_neighbors(
    const phy::Topology& topology, NodeId node);

}  // namespace wrt::cdma
