// Slotted CDMA channel model.
//
// Reproduces Figure 1 of the paper: within one TDMA slot, any number of
// stations may transmit simultaneously; a listener tuned to code c decodes
// exactly the transmissions spread with c that reach it.  Two or more
// same-code transmissions arriving at one listener in the same slot collide
// and destroy each other (this is what happens "if CDMA would not be used",
// and what a broken code assignment produces).  Per-slot operation:
//
//     channel.begin_slot(now);
//     channel.transmit(sender, code, payload);   // any number of calls
//     channel.end_slot();                        // resolves receptions
//     for (auto& rx : channel.receptions(node)) ...
//
// The channel is templated on the payload so each MAC keeps its own frame
// type; the interference logic only depends on topology and codes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "phy/topology.hpp"
#include "util/types.hpp"

namespace wrt::cdma {

template <typename Payload>
class Channel {
 public:
  struct Reception {
    NodeId sender = kInvalidNode;
    CdmaCode code = kInvalidCode;
    Payload payload{};
  };

  explicit Channel(const phy::Topology* topology) : topology_(topology) {}

  /// Registers the codes `node` listens on (its own receive code plus the
  /// broadcast code, normally).  Replaces any previous registration.
  void set_listen_codes(NodeId node, std::vector<CdmaCode> codes) {
    if (node >= listeners_.size()) listeners_.resize(node + 1);
    listeners_[node] = std::move(codes);
  }

  void begin_slot(Tick now) {
    now_ = now;
    transmissions_.clear();
    for (auto& bucket : receptions_) bucket.clear();
  }

  /// `sender` spreads `payload` with `code` this slot.
  void transmit(NodeId sender, CdmaCode code, Payload payload) {
    transmissions_.push_back({sender, code, std::move(payload)});
  }

  /// Resolves all receptions for the current slot.  Returns the number of
  /// code collisions observed (same-code frames overlapping at a listener).
  std::size_t end_slot() {
    if (receptions_.size() < listeners_.size()) {
      receptions_.resize(listeners_.size());
    }
    std::size_t collisions = 0;
    for (NodeId node = 0; node < listeners_.size(); ++node) {
      if (listeners_[node].empty() || !topology_->alive(node)) continue;
      for (const CdmaCode code : listeners_[node]) {
        const Reception* heard = nullptr;
        bool collided = false;
        for (const auto& tx : transmissions_) {
          if (tx.code != code) continue;
          if (!topology_->reachable(tx.sender, node)) continue;
          if (heard != nullptr) {
            collided = true;
            break;
          }
          heard = &tx;
        }
        if (collided) {
          ++collisions;
          total_collisions_ += 1;
        } else if (heard != nullptr) {
          receptions_[node].push_back(*heard);
          total_deliveries_ += 1;
        }
      }
    }
    return collisions;
  }

  /// Frames successfully decoded by `node` in the slot just ended.
  [[nodiscard]] const std::vector<Reception>& receptions(NodeId node) const {
    static const std::vector<Reception> kEmpty;
    return node < receptions_.size() ? receptions_[node] : kEmpty;
  }

  [[nodiscard]] std::uint64_t total_collisions() const noexcept {
    return total_collisions_;
  }
  [[nodiscard]] std::uint64_t total_deliveries() const noexcept {
    return total_deliveries_;
  }
  [[nodiscard]] Tick now() const noexcept { return now_; }

  /// Re-points the channel at a (possibly replaced) topology.
  void set_topology(const phy::Topology* topology) { topology_ = topology; }

 private:
  const phy::Topology* topology_;
  Tick now_ = 0;
  std::vector<Reception> transmissions_;
  std::vector<std::vector<Reception>> receptions_;
  std::vector<std::vector<CdmaCode>> listeners_;
  std::uint64_t total_collisions_ = 0;
  std::uint64_t total_deliveries_ = 0;
};

}  // namespace wrt::cdma
