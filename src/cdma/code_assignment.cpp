#include "cdma/code_assignment.hpp"

#include <algorithm>
#include <set>

namespace wrt::cdma {

std::vector<NodeId> two_hop_neighbors(const phy::Topology& topology,
                                      NodeId node) {
  std::set<NodeId> result;
  for (const NodeId n1 : topology.neighbors(node)) {
    result.insert(n1);
    for (const NodeId n2 : topology.neighbors(n1)) {
      if (n2 != node) result.insert(n2);
    }
  }
  return {result.begin(), result.end()};
}

namespace {

/// Smallest code >= 1 not present in `used`.
CdmaCode smallest_free(const std::set<CdmaCode>& used) {
  CdmaCode code = 1;
  while (used.contains(code)) ++code;
  return code;
}

}  // namespace

CodeMap assign_greedy_two_hop(const phy::Topology& topology) {
  const auto n = topology.node_count();
  CodeMap codes(n, kInvalidCode);
  for (NodeId node = 0; node < n; ++node) {
    if (!topology.alive(node)) continue;
    std::set<CdmaCode> used;
    for (const NodeId other : two_hop_neighbors(topology, node)) {
      if (codes[other] != kInvalidCode) used.insert(codes[other]);
    }
    codes[node] = smallest_free(used);
  }
  return codes;
}

CodeMap assign_distributed(const phy::Topology& topology, std::uint64_t seed,
                           std::size_t* rounds_out) {
  const auto n = topology.node_count();
  // Start from an intentionally conflicting state: everyone picks code 1.
  CodeMap codes(n, kInvalidCode);
  std::vector<NodeId> order;
  for (NodeId node = 0; node < n; ++node) {
    if (topology.alive(node)) {
      codes[node] = 1;
      order.push_back(node);
    }
  }

  util::RngStream rng(seed, 0xC0DE);
  std::size_t rounds = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    ++rounds;
    rng.shuffle(order);
    for (const NodeId node : order) {
      std::set<CdmaCode> used;
      for (const NodeId other : two_hop_neighbors(topology, node)) {
        if (codes[other] != kInvalidCode) used.insert(codes[other]);
      }
      // A node keeps its code unless a 2-hop neighbour holds the same one.
      if (!used.contains(codes[node])) continue;
      codes[node] = smallest_free(used);
      changed = true;
    }
  }
  if (rounds_out != nullptr) *rounds_out = rounds;
  return codes;
}

bool verify_two_hop_distinct(const phy::Topology& topology,
                             const CodeMap& codes) {
  for (NodeId node = 0; node < topology.node_count(); ++node) {
    if (!topology.alive(node)) continue;
    if (node >= codes.size()) return false;
    if (codes[node] == kBroadcastCode || codes[node] == kInvalidCode) {
      return false;
    }
    for (const NodeId other : two_hop_neighbors(topology, node)) {
      if (!topology.alive(other)) continue;
      if (codes[other] == codes[node]) return false;
    }
  }
  return true;
}

std::size_t codes_used(const CodeMap& codes) {
  std::set<CdmaCode> distinct;
  for (const CdmaCode code : codes) {
    if (code != kInvalidCode) distinct.insert(code);
  }
  return distinct.size();
}

}  // namespace wrt::cdma
