// Real-time quota (bandwidth) allocation schemes.
//
// The paper deliberately leaves bandwidth allocation open: "by exploiting
// the WRT-Ring properties it is possible to apply to WRT-Ring the algorithms
// developed for FDDI" (footnote 1, citing Agrawal/Chen/Zhao [16] and
// Zhang/Burns [17]).  This module is that pointed-to extension: the classic
// timed-token synchronous-bandwidth schemes transliterated to WRT-Ring's
// l-quota, plus the Theorem-3-based feasibility test that validates an
// allocation against per-flow deadlines.
//
// A real-time flow at station i is (P_i, C_i, D_i): C_i packets arrive every
// P_i slots and each batch must reach the head of the ring within D_i slots.
// By Theorem 3 a batch of C_i packets waits at most
// access_time_bound(params, i, C_i - 1) slots, so an allocation {l_i} is
// feasible iff that bound is <= D_i for every flow.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/bounds.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace wrt::analysis {

/// One station's real-time requirement.
struct RtRequirement {
  std::size_t station = 0;          ///< index into RingParams::quotas
  std::int64_t period_slots = 0;    ///< P_i
  std::int64_t packets_per_period = 1;  ///< C_i
  std::int64_t deadline_slots = 0;  ///< D_i (relative)

  /// Utilisation of this flow in packets/slot.
  [[nodiscard]] double utilisation() const noexcept {
    return period_slots > 0 ? static_cast<double>(packets_per_period) /
                                  static_cast<double>(period_slots)
                            : 0.0;
  }
};

enum class AllocationScheme : std::uint8_t {
  kEqualPartition,          ///< l_i = L / N (the "full length" scheme)
  kProportional,            ///< l_i proportional to flow utilisation
  kNormalizedProportional,  ///< classic NPA from the timed-token literature
};

struct AllocationInput {
  std::int64_t ring_latency_slots = 0;  ///< S
  std::int64_t t_rap_slots = 0;         ///< T_rap
  std::uint32_t k_per_station = 1;      ///< best-effort quota (fixed)
  std::int64_t total_l_budget = 0;      ///< L: total real-time quota to split
  std::vector<RtRequirement> flows;     ///< at most one per station
};

/// Computes per-station quotas under the chosen scheme.  The number of
/// stations is max(station)+1 over the flows; stations without a flow get
/// l = 0 (they still get k best-effort quota).  Fails when the input is
/// inconsistent (duplicate stations, zero budget with non-empty flows).
[[nodiscard]] util::Result<RingParams> allocate(AllocationScheme scheme,
                                                const AllocationInput& input,
                                                std::size_t n_stations);

/// Theorem-3 feasibility: every flow's worst-case batch wait <= deadline.
/// Returns the failing flow's index in the error message when infeasible.
[[nodiscard]] util::Status check_feasibility(
    const RingParams& params, const std::vector<RtRequirement>& flows);

/// Largest uniform (l, k) quota such that the Theorem-1 bound stays below
/// `max_sat_time_slots`; used by admission control to translate a delay goal
/// into quota budgets.  Returns 0 when even l = 0 does not fit.
[[nodiscard]] std::uint32_t max_uniform_l(std::int64_t ring_latency_slots,
                                          std::int64_t t_rap_slots,
                                          std::int64_t n_stations,
                                          std::uint32_t k_per_station,
                                          std::int64_t max_sat_time_slots);

[[nodiscard]] std::string to_string(AllocationScheme scheme);

}  // namespace wrt::analysis
