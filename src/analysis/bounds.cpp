#include "analysis/bounds.hpp"

#include <cassert>
#include <stdexcept>

#include "util/math.hpp"

namespace wrt::analysis {

std::int64_t RingParams::quota_sum() const noexcept {
  std::int64_t sum = 0;
  for (const Quota& quota : quotas) sum += quota.total();
  return sum;
}

std::int64_t sat_time_bound(const RingParams& params) {
  return params.ring_latency_slots + params.t_rap_slots +
         2 * params.quota_sum();
}

std::int64_t sat_time_bound_uniform(std::int64_t s, std::int64_t t_rap,
                                    std::int64_t n, Quota quota) {
  return s + t_rap + 2 * n * static_cast<std::int64_t>(quota.total());
}

std::int64_t sat_time_n_rounds_bound(const RingParams& params,
                                     std::int64_t n) {
  if (n < 1) throw std::invalid_argument("n rounds must be >= 1");
  return n * params.ring_latency_slots + n * params.t_rap_slots +
         (n + 1) * params.quota_sum();
}

std::int64_t sat_time_n_rounds_bound_uniform(std::int64_t s,
                                             std::int64_t t_rap,
                                             std::int64_t n_stations,
                                             Quota quota, std::int64_t n) {
  if (n < 1) throw std::invalid_argument("n rounds must be >= 1");
  return n * s + n * t_rap +
         (n + 1) * n_stations * static_cast<std::int64_t>(quota.total());
}

std::int64_t expected_sat_time(const RingParams& params) {
  return params.ring_latency_slots + params.t_rap_slots + params.quota_sum();
}

std::int64_t access_time_bound(const RingParams& params, std::size_t station,
                               std::int64_t x) {
  if (station >= params.quotas.size()) {
    throw std::out_of_range("access_time_bound: bad station index");
  }
  if (x < 0) throw std::invalid_argument("x must be >= 0");
  const auto l = static_cast<std::int64_t>(params.quotas[station].l);
  if (l == 0) throw std::invalid_argument("station has zero real-time quota");
  const std::int64_t rounds = util::ceil_div(x + 1, l) + 1;
  return sat_time_n_rounds_bound(params, rounds);
}

std::int64_t sat_loss_detection_bound(const RingParams& params) {
  return sat_time_bound(params);
}

std::int64_t TptParams::h_sum() const noexcept {
  std::int64_t sum = 0;
  for (const std::int64_t h : h_sync_slots) sum += h;
  return sum;
}

double tpt_round_bound(const TptParams& params) {
  const auto n = static_cast<std::int64_t>(params.stations());
  return static_cast<double>(params.h_sum()) +
         2.0 * static_cast<double>(n - 1) * params.t_proc_plus_prop_slots +
         static_cast<double>(params.t_rap_slots);
}

bool tpt_feasible(const TptParams& params, std::int64_t d_slots) {
  return tpt_round_bound(params) <= static_cast<double>(d_slots) / 2.0;
}

std::int64_t tpt_reaction_bound(const TptParams& params) {
  return 2 * params.ttrt_slots;
}

}  // namespace wrt::analysis
