#include "analysis/allocation.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>

namespace wrt::analysis {

namespace {

/// Distributes `budget` units over weights, largest-remainder rounding,
/// guaranteeing at least 1 unit for any station with positive weight when
/// the budget allows.
std::vector<std::uint32_t> apportion(const std::vector<double>& weights,
                                     std::int64_t budget) {
  const std::size_t n = weights.size();
  std::vector<std::uint32_t> shares(n, 0);
  double total = 0.0;
  for (const double w : weights) total += w;
  if (total <= 0.0 || budget <= 0) return shares;

  std::vector<double> exact(n);
  std::int64_t assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    exact[i] = static_cast<double>(budget) * weights[i] / total;
    shares[i] = static_cast<std::uint32_t>(exact[i]);
    assigned += shares[i];
  }
  // Largest remainders get the leftover units.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return exact[a] - std::floor(exact[a]) > exact[b] - std::floor(exact[b]);
  });
  for (std::size_t idx = 0; assigned < budget && idx < n; ++idx, ++assigned) {
    ++shares[order[idx]];
  }
  // Floor of 1 for positive-weight stations, stolen from the largest share.
  for (std::size_t i = 0; i < n; ++i) {
    if (weights[i] > 0.0 && shares[i] == 0) {
      const auto richest = static_cast<std::size_t>(
          std::max_element(shares.begin(), shares.end()) - shares.begin());
      if (shares[richest] >= 2) {
        --shares[richest];
        ++shares[i];
      }
    }
  }
  return shares;
}

}  // namespace

util::Result<RingParams> allocate(AllocationScheme scheme,
                                  const AllocationInput& input,
                                  std::size_t n_stations) {
  std::set<std::size_t> seen;
  for (const auto& flow : input.flows) {
    if (flow.station >= n_stations) {
      return util::Error::invalid_argument("flow station out of range");
    }
    if (!seen.insert(flow.station).second) {
      return util::Error::invalid_argument(
          "multiple flows on one station; aggregate them first");
    }
    if (flow.period_slots <= 0 || flow.packets_per_period <= 0) {
      return util::Error::invalid_argument("flow needs positive P and C");
    }
  }
  if (!input.flows.empty() && input.total_l_budget <= 0) {
    return util::Error::invalid_argument("zero quota budget with flows");
  }

  std::vector<double> weights(n_stations, 0.0);
  switch (scheme) {
    case AllocationScheme::kEqualPartition:
      for (const auto& flow : input.flows) weights[flow.station] = 1.0;
      break;
    case AllocationScheme::kProportional:
      for (const auto& flow : input.flows) {
        weights[flow.station] = flow.utilisation();
      }
      break;
    case AllocationScheme::kNormalizedProportional: {
      // NPA: weight u_i / (1 - U) with U the total utilisation, which
      // reduces to proportional-to-u_i over a fixed budget; the difference
      // from kProportional is that stations also get weight for tight
      // deadlines (deadline-normalised utilisation).
      double total_util = 0.0;
      for (const auto& flow : input.flows) total_util += flow.utilisation();
      if (total_util >= 1.0) {
        return util::Error::capacity_exceeded(
            "total real-time utilisation >= 1");
      }
      for (const auto& flow : input.flows) {
        const double deadline_factor =
            flow.deadline_slots > 0
                ? static_cast<double>(flow.period_slots) /
                      static_cast<double>(flow.deadline_slots)
                : 1.0;
        weights[flow.station] =
            flow.utilisation() / (1.0 - total_util) * std::max(1.0, deadline_factor);
      }
      break;
    }
  }

  RingParams params;
  params.ring_latency_slots = input.ring_latency_slots;
  params.t_rap_slots = input.t_rap_slots;
  const std::vector<std::uint32_t> l_shares =
      apportion(weights, input.total_l_budget);
  params.quotas.resize(n_stations);
  for (std::size_t i = 0; i < n_stations; ++i) {
    params.quotas[i] = Quota{l_shares[i], input.k_per_station};
  }
  return params;
}

util::Status check_feasibility(const RingParams& params,
                               const std::vector<RtRequirement>& flows) {
  for (std::size_t idx = 0; idx < flows.size(); ++idx) {
    const auto& flow = flows[idx];
    if (flow.station >= params.quotas.size()) {
      return util::Error::invalid_argument("flow station out of range");
    }
    if (params.quotas[flow.station].l == 0) {
      return util::Error::admission_rejected(
          "flow " + std::to_string(idx) + ": station has no real-time quota");
    }
    const std::int64_t wait =
        access_time_bound(params, flow.station, flow.packets_per_period - 1);
    if (wait > flow.deadline_slots) {
      return util::Error::admission_rejected(
          "flow " + std::to_string(idx) + ": worst-case wait " +
          std::to_string(wait) + " slots exceeds deadline " +
          std::to_string(flow.deadline_slots));
    }
  }
  return util::Status::success();
}

std::uint32_t max_uniform_l(std::int64_t ring_latency_slots,
                            std::int64_t t_rap_slots, std::int64_t n_stations,
                            std::uint32_t k_per_station,
                            std::int64_t max_sat_time_slots) {
  // Invert Eq (2): S + T_rap + 2 N (l + k) <= max  =>
  // l <= (max - S - T_rap) / (2 N) - k.
  if (n_stations <= 0) return 0;
  const std::int64_t numerator =
      max_sat_time_slots - ring_latency_slots - t_rap_slots;
  const std::int64_t per_station = numerator / (2 * n_stations);
  const std::int64_t l = per_station - static_cast<std::int64_t>(k_per_station);
  return l > 0 ? static_cast<std::uint32_t>(l) : 0;
}

std::string to_string(AllocationScheme scheme) {
  switch (scheme) {
    case AllocationScheme::kEqualPartition:
      return "equal-partition";
    case AllocationScheme::kProportional:
      return "proportional";
    case AllocationScheme::kNormalizedProportional:
      return "normalized-proportional";
  }
  return "unknown";
}

}  // namespace wrt::analysis
