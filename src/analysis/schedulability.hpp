// Schedulability reporting: one call from "here are my flows" to a
// complete, explainable admission verdict.
//
// Wraps allocate() + check_feasibility() and computes, per flow, the
// Theorem-3 worst-case wait, the slack against its deadline, and which
// station is the bottleneck — the artefact an operator reads before
// signing off a configuration, and the engine room behind example
// `admission_control` and bench E12c.
#pragma once

#include <string>
#include <vector>

#include "analysis/allocation.hpp"
#include "analysis/bounds.hpp"
#include "util/result.hpp"

namespace wrt::analysis {

struct FlowVerdict {
  std::size_t flow_index = 0;
  std::size_t station = 0;
  std::int64_t worst_case_wait_slots = 0;  ///< Theorem 3 under the allocation
  std::int64_t deadline_slots = 0;
  std::int64_t slack_slots = 0;            ///< deadline - worst case
  bool feasible = false;
};

struct SchedulabilityReport {
  bool feasible = false;                 ///< every flow fits
  RingParams params;                     ///< the applied allocation
  std::vector<FlowVerdict> verdicts;     ///< per flow, input order
  std::int64_t sat_time_bound_slots = 0; ///< Theorem 1 under the allocation
  double rt_utilisation = 0.0;           ///< sum of flow utilisations
  std::size_t bottleneck_flow = 0;       ///< index of the minimum slack
  std::string summary;                   ///< one-line human verdict
};

/// Runs `scheme` over the flow set and produces the full report.  Unlike
/// check_feasibility, this never short-circuits: every flow gets a verdict
/// even when the set as a whole is infeasible.  Fails only when the
/// allocation itself cannot be computed (bad input / overload).
[[nodiscard]] util::Result<SchedulabilityReport> analyze_schedulability(
    AllocationScheme scheme, const AllocationInput& input,
    std::size_t n_stations);

}  // namespace wrt::analysis
