// Closed-form bounds from the paper, as checkable code.
//
// Section 2.6 derives the delay-bounded service:
//   Theorem 1 / Eq (1):  SAT_TIME_i < S + T_rap + 2 * sum_j (l_j + k_j)
//   Prop 1    / Eq (2):  uniform quotas: S + T_rap + 2 N (l + k)
//   Theorem 2 / Eq (3):  SAT_TIME_i[n] <= n S + n T_rap + (n+1) sum_j (l_j+k_j)
//   Prop 2    / Eq (4):  uniform: n S + n T_rap + (n+1) N (l+k)
//   Prop 3    / Eq (5):  E[SAT_TIME] = S + T_rap + sum_j (l_j + k_j)
//   Theorem 3 / Eq (6):  T_wait^i <= SAT_TIME[ ceil((x+1)/l_i) + 1 ]
// Section 3 gives the TPT comparison:
//   Eq (7): sum_i H_e,i + 2 (N-1) (T_proc + T_prop) + T_rap <= D / 2,
//           D = 2 TTRT; token reaction bound D, SAT reaction bound SAT_TIME.
//   Section 3.2.1: token traverses 2 (N-1) links per round, SAT traverses N.
//
// All quantities are in slots (the paper's time unit).  The simulator
// verifies the inequalities empirically; benches print bound-vs-measured.
#pragma once

#include <cstdint>
#include <vector>

#include "util/result.hpp"
#include "util/types.hpp"

namespace wrt::analysis {

/// WRT-Ring network parameters for the bounds.
struct RingParams {
  std::int64_t ring_latency_slots = 0;  ///< S: SAT full-circle travel time
  std::int64_t t_rap_slots = 0;         ///< T_rap = T_ear + T_update
  std::vector<Quota> quotas;            ///< per-station (l, k)

  [[nodiscard]] std::int64_t quota_sum() const noexcept;
  [[nodiscard]] std::size_t stations() const noexcept { return quotas.size(); }
};

/// Theorem 1 / Eq (1): strict upper bound on a single SAT rotation.
[[nodiscard]] std::int64_t sat_time_bound(const RingParams& params);

/// Prop 1 / Eq (2): uniform-quota form.
[[nodiscard]] std::int64_t sat_time_bound_uniform(std::int64_t s,
                                                  std::int64_t t_rap,
                                                  std::int64_t n, Quota quota);

/// Theorem 2 / Eq (3): bound on n consecutive rotations.
[[nodiscard]] std::int64_t sat_time_n_rounds_bound(const RingParams& params,
                                                   std::int64_t n);

/// Prop 2 / Eq (4): uniform-quota form of Eq (3).
[[nodiscard]] std::int64_t sat_time_n_rounds_bound_uniform(std::int64_t s,
                                                           std::int64_t t_rap,
                                                           std::int64_t n_stations,
                                                           Quota quota,
                                                           std::int64_t n);

/// Prop 3 / Eq (5): bound on the long-run average rotation.
[[nodiscard]] std::int64_t expected_sat_time(const RingParams& params);

/// Theorem 3 / Eq (6): worst-case wait of a tagged real-time packet entering
/// station `station`'s queue behind `x` queued real-time packets.
[[nodiscard]] std::int64_t access_time_bound(const RingParams& params,
                                             std::size_t station,
                                             std::int64_t x);

/// Reaction bound: a station declares the SAT lost after SAT_TIME slots
/// (Section 2.5), i.e. the Theorem 1 bound.
[[nodiscard]] std::int64_t sat_loss_detection_bound(const RingParams& params);

// ---------------------------------------------------------------------------
// TPT (Token Passing Tree) baseline formulas, Section 3.
// ---------------------------------------------------------------------------

struct TptParams {
  std::vector<std::int64_t> h_sync_slots;  ///< H_e,i per station
  double t_proc_plus_prop_slots = 1.0;     ///< token transmit + propagate
  std::int64_t t_rap_slots = 0;
  std::int64_t ttrt_slots = 0;             ///< Target Token Rotation Time

  [[nodiscard]] std::int64_t h_sum() const noexcept;
  [[nodiscard]] std::size_t stations() const noexcept {
    return h_sync_slots.size();
  }
};

/// Left side of Eq (7): worst-case token round (sync load + walk + RAP).
[[nodiscard]] double tpt_round_bound(const TptParams& params);

/// Eq (7) feasibility given the tightest application deadline D:
/// round bound <= D / 2.
[[nodiscard]] bool tpt_feasible(const TptParams& params, std::int64_t d_slots);

/// TPT loss-reaction bound: D = 2 * TTRT (Section 3.1.3).
[[nodiscard]] std::int64_t tpt_reaction_bound(const TptParams& params);

/// Section 3.2.1 hop counts per control-signal round.
[[nodiscard]] constexpr std::int64_t wrt_hops_per_round(std::int64_t n) noexcept {
  return n;
}
[[nodiscard]] constexpr std::int64_t tpt_hops_per_round(std::int64_t n) noexcept {
  return 2 * (n - 1);
}

/// Section 3.3 empty-network control-signal round trips, with t_sig the
/// per-link control transfer time (T_proc + T_prop).
[[nodiscard]] constexpr double wrt_signal_round_trip(std::int64_t n, double t_sig,
                                                     double t_rap) noexcept {
  return static_cast<double>(n) * t_sig + t_rap;
}
[[nodiscard]] constexpr double tpt_signal_round_trip(std::int64_t n, double t_sig,
                                                     double t_rap) noexcept {
  return 2.0 * static_cast<double>(n - 1) * t_sig + t_rap;
}

}  // namespace wrt::analysis
