// Average-case access-delay approximation.
//
// The paper provides only worst-case bounds (Section 2.6); provisioning a
// real deployment also wants the *expected* delay at a given load.  This
// module adds a quota-server approximation: the station may send l
// real-time packets per SAT rotation, and measurements show the rotation
// sits at its travel floor S + T_rap under steady load, so for Poisson
// arrivals the real-time queue is approximately M/D/1 with
//
//   service time   D   = (S + T_rap) / l      (slots per packet)
//   utilisation    rho = lambda * D
//   mean wait      W   = rho * D / (2 (1 - rho))
//
// There is no residual term: a station holding unused quota injects into
// the next empty slot, so an arrival at an idle station barely waits.  The
// approximation is load-monotone, diverges at rho -> 1 and vanishes at
// lambda -> 0; DelayModel.WithinEngineeringFactorOfSimulation keeps it
// honest against the simulator (engineering estimate, not a bound).
#pragma once

#include <cstdint>

#include "analysis/bounds.hpp"
#include "util/result.hpp"

namespace wrt::analysis {

struct DelayEstimate {
  double utilisation = 0.0;        ///< rho of the station's RT server
  double mean_wait_slots = 0.0;    ///< queueing + residual (access delay)
  double mean_round_slots = 0.0;   ///< the Prop-3 rotation used
  bool stable = false;             ///< rho < 1
};

/// Expected access delay for Poisson real-time arrivals of rate
/// `lambda_per_slot` at station `station` under `params`.  Fails on bad
/// station index or zero real-time quota.
[[nodiscard]] util::Result<DelayEstimate> approx_rt_access_delay(
    const RingParams& params, std::size_t station, double lambda_per_slot);

/// Largest Poisson rate the station can sustain (rho < 1): l / T_round.
[[nodiscard]] util::Result<double> rt_capacity_per_slot(
    const RingParams& params, std::size_t station);

}  // namespace wrt::analysis
