#include "analysis/schedulability.hpp"

#include <algorithm>
#include <limits>

namespace wrt::analysis {

util::Result<SchedulabilityReport> analyze_schedulability(
    AllocationScheme scheme, const AllocationInput& input,
    std::size_t n_stations) {
  auto params = allocate(scheme, input, n_stations);
  if (!params.ok()) return params.error();

  SchedulabilityReport report;
  report.params = std::move(params.value());
  report.sat_time_bound_slots = sat_time_bound(report.params);
  report.feasible = true;

  std::int64_t min_slack = std::numeric_limits<std::int64_t>::max();
  for (std::size_t idx = 0; idx < input.flows.size(); ++idx) {
    const RtRequirement& flow = input.flows[idx];
    report.rt_utilisation += flow.utilisation();

    FlowVerdict verdict;
    verdict.flow_index = idx;
    verdict.station = flow.station;
    verdict.deadline_slots = flow.deadline_slots;
    if (report.params.quotas[flow.station].l == 0) {
      verdict.worst_case_wait_slots =
          std::numeric_limits<std::int64_t>::max();
      verdict.slack_slots = std::numeric_limits<std::int64_t>::min();
      verdict.feasible = false;
    } else {
      verdict.worst_case_wait_slots = access_time_bound(
          report.params, flow.station, flow.packets_per_period - 1);
      verdict.slack_slots =
          flow.deadline_slots - verdict.worst_case_wait_slots;
      verdict.feasible = verdict.slack_slots >= 0;
    }
    if (!verdict.feasible) report.feasible = false;
    if (verdict.slack_slots < min_slack) {
      min_slack = verdict.slack_slots;
      report.bottleneck_flow = idx;
    }
    report.verdicts.push_back(verdict);
  }

  if (input.flows.empty()) {
    report.summary = "no real-time flows; trivially schedulable";
  } else if (report.feasible) {
    report.summary =
        "schedulable under " + to_string(scheme) + "; tightest slack " +
        std::to_string(min_slack) + " slots (flow " +
        std::to_string(report.bottleneck_flow) + ")";
  } else {
    report.summary = "NOT schedulable under " + to_string(scheme) +
                     "; flow " + std::to_string(report.bottleneck_flow) +
                     " misses by " + std::to_string(-min_slack) + " slots";
  }
  return report;
}

}  // namespace wrt::analysis
