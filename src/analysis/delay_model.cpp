#include "analysis/delay_model.hpp"

namespace wrt::analysis {

util::Result<double> rt_capacity_per_slot(const RingParams& params,
                                          std::size_t station) {
  if (station >= params.quotas.size()) {
    return util::Error::invalid_argument("bad station index");
  }
  const auto l = static_cast<double>(params.quotas[station].l);
  if (l <= 0.0) {
    return util::Error::invalid_argument("station has zero real-time quota");
  }
  // Simulation shows the SAT rotation sits at its travel floor S + T_rap
  // under steady load (the Prop-3 value is an upper bound approached only
  // in the bursty/seized regime), so the sustainable per-station rate is
  // l packets per floor rotation.
  const auto round = static_cast<double>(params.ring_latency_slots +
                                         params.t_rap_slots);
  return l / round;
}

util::Result<DelayEstimate> approx_rt_access_delay(const RingParams& params,
                                                   std::size_t station,
                                                   double lambda_per_slot) {
  if (lambda_per_slot < 0.0) {
    return util::Error::invalid_argument("negative arrival rate");
  }
  const auto capacity = rt_capacity_per_slot(params, station);
  if (!capacity.ok()) return capacity.error();

  DelayEstimate estimate;
  estimate.mean_round_slots = static_cast<double>(
      params.ring_latency_slots + params.t_rap_slots);
  const auto l = static_cast<double>(params.quotas[station].l);
  const double service = estimate.mean_round_slots / l;  // D
  estimate.utilisation = lambda_per_slot * service;      // rho
  estimate.stable = estimate.utilisation < 1.0;
  if (!estimate.stable) {
    estimate.mean_wait_slots = -1.0;  // unbounded
    return estimate;
  }
  // M/D/1 queueing delay with the quota as a deterministic server.  No
  // residual term: a station with unused quota injects into the next empty
  // slot, so an arrival to an idle station barely waits — matching the
  // simulator's low-load behaviour.
  estimate.mean_wait_slots = estimate.utilisation * service /
                             (2.0 * (1.0 - estimate.utilisation));
  return estimate;
}

}  // namespace wrt::analysis
