#include "fault/fault_plan.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace wrt::fault {
namespace {

const char* control_msg_name(std::uint8_t msg) noexcept {
  switch (msg) {
    case kCtrlNextFree: return "next-free";
    case kCtrlJoinReq: return "join-req";
    case kCtrlJoinAck: return "join-ack";
    default: return "unknown";
  }
}

util::Error parse_error(std::size_t line_no, const std::string& what) {
  return util::Error::invalid_argument("FaultPlan line " +
                                       std::to_string(line_no) + ": " + what);
}

/// Parses `key=value` tokens like avg=0.2 / dwell=16 / l=1.
bool split_kv(const std::string& token, std::string& key, std::string& val) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
    return false;
  }
  key = token.substr(0, eq);
  val = token.substr(eq + 1);
  return true;
}

}  // namespace

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kStall: return "stall";
    case FaultKind::kResume: return "resume";
    case FaultKind::kLeave: return "leave";
    case FaultKind::kLinkDegrade: return "link-degrade";
    case FaultKind::kLinkBreak: return "link-break";
    case FaultKind::kLinkHeal: return "link-heal";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kHealPartition: return "heal-partition";
    case FaultKind::kDropSat: return "drop-sat";
    case FaultKind::kDropControl: return "drop-control";
    case FaultKind::kJoin: return "join";
    case FaultKind::kFlap: return "flap";
    case FaultKind::kForceSwitch: return "force-switch";
    case FaultKind::kClearSwitch: return "clear-switch";
    case FaultKind::kMark: return "mark";
  }
  return "unknown";
}

void FaultPlan::add(FaultEvent event) {
  const auto at = std::upper_bound(
      events.begin(), events.end(), event.slot,
      [](std::int64_t slot, const FaultEvent& e) { return slot < e.slot; });
  events.insert(at, std::move(event));
}

std::string FaultPlan::to_text() const {
  std::ostringstream out;
  for (const FaultEvent& e : events) {
    out << '@' << e.slot << ' ' << to_string(e.kind);
    switch (e.kind) {
      case FaultKind::kCrash:
      case FaultKind::kStall:
      case FaultKind::kResume:
      case FaultKind::kLeave:
        out << ' ' << e.a;
        break;
      case FaultKind::kLinkDegrade:
        out << ' ' << e.a << ' ' << e.b << " avg=" << e.ge.average_loss()
            << " dwell="
            << (e.ge.p_bad_to_good > 0.0 ? 1.0 / e.ge.p_bad_to_good : 1.0)
            << " bad=" << e.ge.loss_bad;
        break;
      case FaultKind::kLinkBreak:
      case FaultKind::kLinkHeal:
        out << ' ' << e.a << ' ' << e.b;
        break;
      case FaultKind::kPartition:
        for (std::size_t g = 0; g < e.groups.size(); ++g) {
          if (g != 0) out << " |";
          for (const NodeId node : e.groups[g]) out << ' ' << node;
        }
        break;
      case FaultKind::kHealPartition:
      case FaultKind::kDropSat:
        break;
      case FaultKind::kDropControl:
        out << ' ' << control_msg_name(e.control_msg);
        break;
      case FaultKind::kJoin:
        out << ' ' << e.a << " l=" << e.quota.l << " k=" << e.quota.k;
        break;
      case FaultKind::kFlap:
        out << ' ' << e.a << ' ' << e.b << " period=" << e.period_slots
            << " duty=" << e.duty_pct << " cycles=" << e.cycles;
        break;
      case FaultKind::kForceSwitch:
      case FaultKind::kClearSwitch:
        out << ' ' << e.a;
        break;
      case FaultKind::kMark:
        out << ' ' << e.label;
        break;
    }
    out << '\n';
  }
  return out.str();
}

util::Result<FaultPlan> FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream tokens(line);
    std::string head;
    if (!(tokens >> head) || head[0] == '#') continue;
    if (head[0] != '@' || head.size() < 2) {
      return parse_error(line_no, "expected '@<slot> <verb>'");
    }
    FaultEvent event;
    try {
      event.slot = std::stoll(head.substr(1));
    } catch (const std::exception&) {
      return parse_error(line_no, "bad slot '" + head + "'");
    }
    if (event.slot < 0) return parse_error(line_no, "negative slot");
    std::string verb;
    if (!(tokens >> verb)) return parse_error(line_no, "missing verb");

    const auto need_node = [&](NodeId& node) {
      std::uint64_t value = 0;
      if (!(tokens >> value)) return false;
      node = static_cast<NodeId>(value);
      return true;
    };

    if (verb == "crash" || verb == "stall" || verb == "resume" ||
        verb == "leave") {
      event.kind = verb == "crash"    ? FaultKind::kCrash
                   : verb == "stall"  ? FaultKind::kStall
                   : verb == "resume" ? FaultKind::kResume
                                      : FaultKind::kLeave;
      if (!need_node(event.a)) return parse_error(line_no, "missing node");
    } else if (verb == "link-degrade") {
      event.kind = FaultKind::kLinkDegrade;
      if (!need_node(event.a) || !need_node(event.b)) {
        return parse_error(line_no, "link-degrade needs two endpoints");
      }
      double avg = 0.0;
      double dwell = 1.0;
      double bad = 1.0;
      std::string token;
      while (tokens >> token) {
        std::string key;
        std::string value;
        if (!split_kv(token, key, value)) {
          return parse_error(line_no, "bad parameter '" + token + "'");
        }
        try {
          if (key == "avg") {
            avg = std::stod(value);
          } else if (key == "dwell") {
            dwell = std::stod(value);
          } else if (key == "bad") {
            bad = std::stod(value);
          } else {
            return parse_error(line_no, "unknown parameter '" + key + "'");
          }
        } catch (const std::exception&) {
          return parse_error(line_no, "bad value in '" + token + "'");
        }
      }
      // Range-check the author's numbers before bursty() clamps them into
      // a solvable chain — a typo like avg=2.0 should be an error, not a
      // silently saturated channel.
      if (avg < 0.0 || avg > 1.0) {
        return parse_error(line_no, "avg must be in [0, 1]");
      }
      if (bad <= 0.0 || bad > 1.0) {
        return parse_error(line_no, "bad must be in (0, 1]");
      }
      if (avg > bad) {
        return parse_error(line_no,
                           "avg exceeds bad: stationary loss cannot exceed "
                           "the bad-state loss rate");
      }
      event.ge = GeParams::bursty(avg, dwell, bad);
      if (const auto status = event.ge.validate(); !status.ok()) {
        return parse_error(line_no, status.error().message);
      }
    } else if (verb == "link-break" || verb == "link-heal") {
      event.kind = verb == "link-break" ? FaultKind::kLinkBreak
                                        : FaultKind::kLinkHeal;
      if (!need_node(event.a) || !need_node(event.b)) {
        return parse_error(line_no, verb + " needs two endpoints");
      }
    } else if (verb == "partition") {
      event.kind = FaultKind::kPartition;
      event.groups.emplace_back();
      std::string token;
      while (tokens >> token) {
        if (token == "|") {
          event.groups.emplace_back();
          continue;
        }
        try {
          event.groups.back().push_back(
              static_cast<NodeId>(std::stoul(token)));
        } catch (const std::exception&) {
          return parse_error(line_no, "bad node '" + token + "'");
        }
      }
      if (event.groups.size() < 2) {
        return parse_error(line_no, "partition needs at least two groups");
      }
      for (const auto& group : event.groups) {
        if (group.empty()) {
          return parse_error(line_no, "empty partition group");
        }
      }
    } else if (verb == "heal-partition") {
      event.kind = FaultKind::kHealPartition;
    } else if (verb == "drop-sat") {
      event.kind = FaultKind::kDropSat;
    } else if (verb == "drop-control") {
      event.kind = FaultKind::kDropControl;
      std::string which;
      if (!(tokens >> which)) {
        return parse_error(line_no, "drop-control needs a message name");
      }
      if (which == "next-free") {
        event.control_msg = kCtrlNextFree;
      } else if (which == "join-req") {
        event.control_msg = kCtrlJoinReq;
      } else if (which == "join-ack") {
        event.control_msg = kCtrlJoinAck;
      } else {
        return parse_error(line_no, "unknown control message '" + which +
                                        "'");
      }
    } else if (verb == "join") {
      event.kind = FaultKind::kJoin;
      if (!need_node(event.a)) return parse_error(line_no, "missing node");
      std::string token;
      while (tokens >> token) {
        std::string key;
        std::string value;
        if (!split_kv(token, key, value)) {
          return parse_error(line_no, "bad parameter '" + token + "'");
        }
        try {
          if (key == "l") {
            event.quota.l = static_cast<std::uint32_t>(std::stoul(value));
          } else if (key == "k") {
            event.quota.k = static_cast<std::uint32_t>(std::stoul(value));
          } else {
            return parse_error(line_no, "unknown parameter '" + key + "'");
          }
        } catch (const std::exception&) {
          return parse_error(line_no, "bad value in '" + token + "'");
        }
      }
    } else if (verb == "flap") {
      event.kind = FaultKind::kFlap;
      if (!need_node(event.a) || !need_node(event.b)) {
        return parse_error(line_no, "flap needs two endpoints");
      }
      std::string token;
      while (tokens >> token) {
        std::string key;
        std::string value;
        if (!split_kv(token, key, value)) {
          return parse_error(line_no, "bad parameter '" + token + "'");
        }
        try {
          if (key == "period") {
            event.period_slots = std::stoll(value);
          } else if (key == "duty") {
            event.duty_pct = static_cast<std::uint32_t>(std::stoul(value));
          } else if (key == "cycles") {
            event.cycles = static_cast<std::uint32_t>(std::stoul(value));
          } else {
            return parse_error(line_no, "unknown parameter '" + key + "'");
          }
        } catch (const std::exception&) {
          return parse_error(line_no, "bad value in '" + token + "'");
        }
      }
      if (event.period_slots < 2) {
        return parse_error(line_no, "flap period must be >= 2 slots");
      }
      if (event.duty_pct < 1 || event.duty_pct > 99) {
        return parse_error(line_no, "flap duty must be in [1, 99] percent");
      }
      if (event.cycles < 1) {
        return parse_error(line_no, "flap needs cycles >= 1");
      }
    } else if (verb == "force-switch" || verb == "clear-switch") {
      event.kind = verb == "force-switch" ? FaultKind::kForceSwitch
                                          : FaultKind::kClearSwitch;
      if (!need_node(event.a)) return parse_error(line_no, "missing node");
    } else if (verb == "mark") {
      event.kind = FaultKind::kMark;
      std::getline(tokens, event.label);
      const std::size_t first = event.label.find_first_not_of(' ');
      event.label =
          first == std::string::npos ? "" : event.label.substr(first);
    } else {
      return parse_error(line_no, "unknown verb '" + verb + "'");
    }
    plan.add(std::move(event));
  }
  return plan;
}

util::Result<FaultPlan> FaultPlan::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return util::Error::not_found("FaultPlan::load: cannot open " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str());
}

util::Status FaultPlan::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return util::Error::invalid_argument("FaultPlan::save: cannot open " +
                                         path);
  }
  out << to_text();
  return out ? util::Status::success()
             : util::Error::invalid_argument("FaultPlan::save: write failed");
}

FaultPlan FaultPlan::random(std::uint64_t seed,
                            const RandomOptions& options) {
  util::RngStream rng(seed, 0xFA17);
  FaultPlan plan;
  const std::int64_t first = std::max<std::int64_t>(
      options.horizon_slots / 20, 1);
  const std::int64_t last = std::max(options.horizon_slots * 7 / 10, first);
  // Every stall/break/degrade/partition is undone by `settle` so the tail
  // of the horizon is fault-free and a recovery deadline can be asserted.
  const std::int64_t settle = std::max(options.horizon_slots * 9 / 10, last);

  std::vector<NodeId> alive;
  alive.reserve(options.n_stations);
  for (NodeId node = 0; node < options.n_stations; ++node) {
    alive.push_back(node);
  }
  std::vector<NodeId> parked = options.parked;
  bool partition_used = false;

  const auto take_alive = [&](util::RngStream& r) {
    const std::size_t i =
        static_cast<std::size_t>(r.uniform_int(alive.size()));
    const NodeId node = alive[i];
    alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(i));
    return node;
  };

  for (std::size_t e = 0; e < options.events; ++e) {
    const std::int64_t slot = rng.uniform_int(first, last);
    // Feasible kinds this round; uniform pick keeps the mix seed-driven.
    enum Choice : int {
      kChCrash,
      kChStall,
      kChLeave,
      kChDegrade,
      kChBreak,
      kChPartition,
      kChDropSat,
      kChJoin,
    };
    std::vector<int> feasible{kChDegrade, kChBreak, kChDropSat};
    if (alive.size() > options.min_alive) {
      feasible.push_back(kChCrash);
      feasible.push_back(kChLeave);
      feasible.push_back(kChStall);
    }
    if (!partition_used && options.n_stations >= 6) {
      feasible.push_back(kChPartition);
    }
    if (!parked.empty()) feasible.push_back(kChJoin);
    const int choice = feasible[static_cast<std::size_t>(
        rng.uniform_int(feasible.size()))];

    FaultEvent event;
    event.slot = slot;
    switch (choice) {
      case kChCrash:
        event.kind = FaultKind::kCrash;
        event.a = take_alive(rng);
        break;
      case kChLeave:
        event.kind = FaultKind::kLeave;
        event.a = take_alive(rng);
        break;
      case kChStall: {
        event.kind = FaultKind::kStall;
        // Remove from `alive` while stalled so a concurrent crash/leave
        // never targets the same station; restored by the resume below.
        const NodeId node = take_alive(rng);
        event.a = node;
        FaultEvent resume;
        resume.kind = FaultKind::kResume;
        resume.a = node;
        resume.slot = rng.uniform_int(slot + 1, settle);
        plan.add(std::move(resume));
        alive.push_back(node);
        break;
      }
      case kChDegrade: {
        event.kind = FaultKind::kLinkDegrade;
        event.a = static_cast<NodeId>(
            rng.uniform_int(static_cast<std::uint64_t>(options.n_stations)));
        do {
          event.b = static_cast<NodeId>(rng.uniform_int(
              static_cast<std::uint64_t>(options.n_stations)));
        } while (event.b == event.a);
        event.ge = GeParams::bursty(
            rng.uniform(0.05, 0.3),
            static_cast<double>(rng.uniform_int(2, 64)));
        FaultEvent heal;
        heal.kind = FaultKind::kLinkHeal;
        heal.a = event.a;
        heal.b = event.b;
        heal.slot = rng.uniform_int(slot + 1, settle);
        plan.add(std::move(heal));
        break;
      }
      case kChBreak: {
        event.kind = FaultKind::kLinkBreak;
        event.a = static_cast<NodeId>(
            rng.uniform_int(static_cast<std::uint64_t>(options.n_stations)));
        do {
          event.b = static_cast<NodeId>(rng.uniform_int(
              static_cast<std::uint64_t>(options.n_stations)));
        } while (event.b == event.a);
        FaultEvent heal;
        heal.kind = FaultKind::kLinkHeal;
        heal.a = event.a;
        heal.b = event.b;
        heal.slot = rng.uniform_int(slot + 1, settle);
        plan.add(std::move(heal));
        break;
      }
      case kChPartition: {
        event.kind = FaultKind::kPartition;
        partition_used = true;
        // Contiguous id split keeps each side ring-formable on the usual
        // circle placements.
        const std::size_t cut = static_cast<std::size_t>(
            rng.uniform_int(2, static_cast<std::int64_t>(
                                   options.n_stations - 2)));
        std::vector<NodeId> lo;
        std::vector<NodeId> hi;
        for (NodeId node = 0; node < options.n_stations; ++node) {
          (node < cut ? lo : hi).push_back(node);
        }
        event.groups = {std::move(lo), std::move(hi)};
        FaultEvent heal;
        heal.kind = FaultKind::kHealPartition;
        heal.slot = rng.uniform_int(slot + 1, settle);
        plan.add(std::move(heal));
        break;
      }
      case kChDropSat:
        event.kind = FaultKind::kDropSat;
        break;
      case kChJoin: {
        event.kind = FaultKind::kJoin;
        const std::size_t i =
            static_cast<std::size_t>(rng.uniform_int(parked.size()));
        event.a = parked[i];
        parked.erase(parked.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
      default:
        event.kind = FaultKind::kMark;
        event.label = "unreachable";
        break;
    }
    plan.add(std::move(event));
  }

  // Flapping links ride in a second pass so that turning them on never
  // changes the draws — and hence the plan — the primary loop produced for
  // an existing seed.  Each flap targets the ring link between consecutive
  // ids (always a real hop on the circle placements) and finishes before
  // `settle` so the tail stays quiet.  The down window (period * duty) is
  // kept below the SAT_REC travel time on the small rings the chaos matrix
  // uses: a flap is the transient-blip stimulus the guard window / WTR
  // hold-off are specified against, not a hard outage (kLinkBreak covers
  // those in the primary pass).
  for (std::size_t f = 0; f < options.flap_events; ++f) {
    FaultEvent flap;
    flap.kind = FaultKind::kFlap;
    flap.a = static_cast<NodeId>(
        rng.uniform_int(static_cast<std::uint64_t>(options.n_stations)));
    flap.b = static_cast<NodeId>((flap.a + 1) % options.n_stations);
    flap.period_slots = rng.uniform_int(16, 48);
    flap.duty_pct = static_cast<std::uint32_t>(rng.uniform_int(25, 50));
    flap.cycles = static_cast<std::uint32_t>(rng.uniform_int(2, 6));
    flap.slot = rng.uniform_int(first, last);
    const std::int64_t budget = settle - flap.slot;
    const auto max_cycles = static_cast<std::uint32_t>(
        std::max<std::int64_t>(budget / flap.period_slots, 1));
    flap.cycles = std::min(flap.cycles, max_cycles);
    plan.add(std::move(flap));
  }
  return plan;
}

}  // namespace wrt::fault
