// FaultPlan: a deterministic, seeded schedule of timed fault events.
//
// Recovery scenarios used to be hand-written test code (run N slots, kill
// station 3, ...).  A FaultPlan makes the fault schedule a first-class,
// serialisable artifact: a sorted list of timed events covering every
// disturbance the protocol must survive — crash, stall/resume (a wedged
// station that stays associated, unlike a crash), graceful leave, per-link
// degrade/break/heal, topology partition + heal, one-shot SAT and control
// message drops, and forced rejoins.  Plans load from a small line-based
// text format, serialise back canonically, and can be generated randomly
// from a seed (the chaos soak's input), so scenarios, benches, and tests
// all speak the same fault language.
//
// The plan is pure data: applying it to an Engine/Topology pair lives in
// wrtring::Scenario (this library must not depend on the protocol stack).
//
// Text format, one event per line (blank lines and `#` comments ignored):
//
//   @<slot> crash <node>
//   @<slot> stall <node>
//   @<slot> resume <node>
//   @<slot> leave <node>
//   @<slot> link-degrade <a> <b> avg=<p> dwell=<offers> [bad=<p>]
//   @<slot> link-break <a> <b>
//   @<slot> link-heal <a> <b>
//   @<slot> partition <node>... | <node>... [| ...]
//   @<slot> heal-partition
//   @<slot> drop-sat
//   @<slot> drop-control <next-free|join-req|join-ack>
//   @<slot> join <node> [l=<l>] [k=<k>]
//   @<slot> flap <a> <b> period=<slots> duty=<pct> cycles=<n>
//   @<slot> force-switch <node>
//   @<slot> clear-switch <node>
//   @<slot> mark <label...>
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/gilbert_elliott.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace wrt::fault {

enum class FaultKind : std::uint8_t {
  kCrash,          ///< station dies without notice (battery out)
  kStall,          ///< station wedges: stops forwarding but stays associated
  kResume,         ///< stalled station un-wedges
  kLeave,          ///< graceful leave announcement
  kLinkDegrade,    ///< per-link Gilbert–Elliott override (both directions)
  kLinkBreak,      ///< hard link failure regardless of distance
  kLinkHeal,       ///< undo break and degrade on the link
  kPartition,      ///< split the topology into isolated groups
  kHealPartition,  ///< remove the partition
  kDropSat,        ///< one-shot SAT/SAT_REC drop on its next hop
  kDropControl,    ///< one-shot handshake-message drop (arg: ControlMsg)
  kJoin,           ///< forced (re)join request
  kFlap,           ///< periodic link break/heal cycling (the WTR stimulus)
  kForceSwitch,    ///< operator forces a station out (ERPS forced switch)
  kClearSwitch,    ///< operator releases the forced switch (WTB starts)
  kMark,           ///< free-form label for logs
};

[[nodiscard]] const char* to_string(FaultKind kind) noexcept;

/// Which join-handshake message a kDropControl event kills; mirrors the
/// engine's ControlMsg enum (kept numeric here to avoid the dependency).
inline constexpr std::uint8_t kCtrlNextFree = 0;
inline constexpr std::uint8_t kCtrlJoinReq = 1;
inline constexpr std::uint8_t kCtrlJoinAck = 2;

struct FaultEvent {
  std::int64_t slot = 0;
  FaultKind kind = FaultKind::kMark;
  NodeId a = kInvalidNode;  ///< primary station / link endpoint
  NodeId b = kInvalidNode;  ///< second link endpoint
  GeParams ge{};            ///< kLinkDegrade parameters
  Quota quota{1, 1};        ///< kJoin quota
  std::uint8_t control_msg = kCtrlNextFree;      ///< kDropControl target
  std::vector<std::vector<NodeId>> groups;       ///< kPartition groups
  std::string label;                             ///< kMark text
  // kFlap: the link a <-> b cycles down/up `cycles` times starting at
  // `slot`; each cycle is `period_slots` long and the link is down for the
  // first `duty_pct` percent of it.  Scenario expands this into timed
  // break/heal pairs, so the plan stays pure data.
  std::int64_t period_slots = 0;
  std::uint32_t duty_pct = 50;
  std::uint32_t cycles = 0;
};

class FaultPlan {
 public:
  std::vector<FaultEvent> events;  ///< sorted by slot (stable)

  /// Appends an event keeping the slot order (stable for equal slots).
  void add(FaultEvent event);

  [[nodiscard]] std::int64_t last_slot() const noexcept {
    return events.empty() ? 0 : events.back().slot;
  }

  /// Canonical text form (parse(to_text()) round-trips).
  [[nodiscard]] std::string to_text() const;

  [[nodiscard]] static util::Result<FaultPlan> parse(const std::string& text);
  [[nodiscard]] static util::Result<FaultPlan> load(const std::string& path);
  [[nodiscard]] util::Status save(const std::string& path) const;

  /// Randomized-plan knobs for the chaos soak.  The generator keeps plans
  /// survivable by construction: it never plans below `min_alive` stations,
  /// resumes every stall, and heals every break/degrade/partition before
  /// `horizon_slots * 9 / 10`, so the tail of the run is quiet and a
  /// recovery deadline is meaningful.
  struct RandomOptions {
    std::size_t n_stations = 12;    ///< ring members are nodes 0..n-1
    std::vector<NodeId> parked;     ///< joiner candidates outside the ring
    std::int64_t horizon_slots = 10000;
    std::size_t events = 8;         ///< primary faults (heals come extra)
    std::size_t min_alive = 5;
    /// Flapping-link events (generated after — and independently of — the
    /// primary faults, so enabling them never perturbs the event stream an
    /// existing seed produces).  0 keeps legacy plans byte-identical.
    std::size_t flap_events = 0;
  };

  /// Deterministic: the same (seed, options) always yields the same plan.
  [[nodiscard]] static FaultPlan random(std::uint64_t seed,
                                        const RandomOptions& options);
};

}  // namespace wrt::fault
