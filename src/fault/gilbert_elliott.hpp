// Per-link bursty loss: the Gilbert–Elliott two-state channel.
//
// The engine's original channel imperfection model was two global i.i.d.
// Bernoulli knobs (Config::frame_loss_prob / sat_loss_prob) shared by every
// link.  Real indoor channels are neither independent nor global: a link in
// a fade stays bad for a while (bursty loss), and different links fade
// independently.  The classic two-state Gilbert–Elliott chain captures
// exactly that: each directed link is in a Good or Bad state with per-state
// loss probabilities, and flips state with fixed transition probabilities.
// The i.i.d. knobs survive as the degenerate case (one state, or two
// identical states).
//
// Determinism contract: every (purpose, directed link) pair owns an
// independent RngStream derived from (seed, purpose, from, to), and a draw
// happens only when that purpose's process is enabled.  Consequently
// (a) enabling data loss never perturbs the SAT or control draw sequences
// (the per-purpose-stream satellite requirement), and (b) with every loss
// knob zeroed the engine makes zero draws and its behaviour digest is
// bit-identical to a build without the fault plane.
#pragma once

#include <cstdint>

#include "util/flat_map.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace wrt::fault {

/// Two-state Gilbert–Elliott parameters.  The chain advances one step per
/// message offered to the link, so dwell times are measured in offered
/// messages (≈ slots on a busy ring link).
struct GeParams {
  double p_good_to_bad = 0.0;  ///< per-offer transition Good -> Bad
  double p_bad_to_good = 1.0;  ///< per-offer transition Bad -> Good
  double loss_good = 0.0;      ///< loss probability in Good
  double loss_bad = 0.0;       ///< loss probability in Bad

  /// Degenerate i.i.d. case: a single effective state losing with `p`.
  [[nodiscard]] static GeParams iid(double p) noexcept {
    GeParams params;
    params.loss_good = p;
    return params;
  }

  /// Bursty channel with a target stationary loss rate.  `mean_bad_dwell`
  /// is the expected number of offers spent in Bad per visit (>= 1);
  /// `loss_bad` the loss probability while Bad (Good is loss-free).
  /// Requires avg_loss < loss_bad so the stationary equation is solvable.
  [[nodiscard]] static GeParams bursty(double avg_loss, double mean_bad_dwell,
                                       double loss_bad = 1.0) noexcept;

  /// True when this process can ever lose a message (and thus draws RNG).
  [[nodiscard]] bool enabled() const noexcept {
    return loss_good > 0.0 || (loss_bad > 0.0 && p_good_to_bad > 0.0);
  }

  /// Stationary loss rate of the chain.
  [[nodiscard]] double average_loss() const noexcept;

  [[nodiscard]] util::Status validate() const;
};

/// One directed link's chain: state + its private RNG stream.
class GeProcess {
 public:
  /// Default state is a disabled (never-losing) process; LinkLossField
  /// materialises entries through FlatMap::operator[] and then assigns.
  GeProcess() = default;

  GeProcess(const GeParams& params, std::uint64_t seed,
            std::uint64_t stream) noexcept
      : params_(params), rng_(seed, stream) {}

  /// Offers one message to the link: samples loss in the current state,
  /// then advances the chain.  Returns true when the message is lost.
  [[nodiscard]] bool offer() noexcept;

  [[nodiscard]] bool in_bad_state() const noexcept { return bad_; }
  [[nodiscard]] const GeParams& params() const noexcept { return params_; }

 private:
  GeParams params_{};
  util::RngStream rng_{0, 0};
  bool bad_ = false;
};

/// What kind of message a loss draw is for.  Each purpose draws from its
/// own per-link streams so loss models compose without interference.
enum class LossPurpose : std::uint8_t {
  kData = 0,     ///< data frames on ring links
  kSat = 1,      ///< SAT / SAT_REC hops (including cut-out re-addressing)
  kControl = 2,  ///< join handshake: NEXT_FREE / JOIN_REQ / JOIN_ACK
};
inline constexpr std::size_t kLossPurposeCount = 3;

[[nodiscard]] const char* to_string(LossPurpose purpose) noexcept;

/// Channel-wide defaults, one process parameterisation per purpose.
struct ChannelConfig {
  GeParams data;
  GeParams sat;
  GeParams control;

  [[nodiscard]] const GeParams& for_purpose(LossPurpose p) const noexcept {
    switch (p) {
      case LossPurpose::kData: return data;
      case LossPurpose::kSat: return sat;
      case LossPurpose::kControl: return control;
    }
    return data;
  }

  [[nodiscard]] bool any_enabled() const noexcept {
    return data.enabled() || sat.enabled() || control.enabled();
  }

  [[nodiscard]] util::Status validate() const;
};

/// The field of per-(purpose, directed link) Gilbert–Elliott processes an
/// engine draws from.  Processes are materialised lazily on a link's first
/// offer, so idle links cost nothing; per-link parameter overrides support
/// the FaultPlan's link-degrade events.
class LinkLossField {
 public:
  LinkLossField() = default;

  /// Installs channel defaults and the master seed.  Existing per-link
  /// state is discarded (call once at engine init).
  void configure(const ChannelConfig& config, std::uint64_t seed);

  /// Overrides `from -> to` for one purpose (FaultPlan link-degrade).  The
  /// link's process restarts in Good with the new parameters.
  void set_link_params(LossPurpose purpose, NodeId from, NodeId to,
                       const GeParams& params);

  /// Removes a per-link override; the link reverts to the channel default
  /// (link-heal).
  void clear_link_params(LossPurpose purpose, NodeId from, NodeId to);

  /// True when offers for this purpose can be lost anywhere.
  [[nodiscard]] bool enabled(LossPurpose purpose) const noexcept {
    const auto i = static_cast<std::size_t>(purpose);
    return default_enabled_[i] || !overrides_[i].empty();
  }

  /// Offers one message on `from -> to`; true when it is lost.  Makes no
  /// RNG draw when the purpose is entirely disabled.
  [[nodiscard]] bool offer(LossPurpose purpose, NodeId from, NodeId to);

 private:
  using LinkKey = std::uint64_t;
  [[nodiscard]] static LinkKey key(NodeId from, NodeId to) noexcept {
    return (static_cast<LinkKey>(from) << 32) | to;
  }
  [[nodiscard]] std::uint64_t stream_for(LossPurpose purpose, NodeId from,
                                         NodeId to) const noexcept;

  ChannelConfig config_{};
  std::uint64_t seed_ = 0;
  bool default_enabled_[kLossPurposeCount] = {false, false, false};
  util::FlatMap<LinkKey, GeParams> overrides_[kLossPurposeCount];
  util::FlatMap<LinkKey, GeProcess> processes_[kLossPurposeCount];
};

}  // namespace wrt::fault
