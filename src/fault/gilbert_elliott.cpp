#include "fault/gilbert_elliott.hpp"

#include <algorithm>

namespace wrt::fault {

GeParams GeParams::bursty(double avg_loss, double mean_bad_dwell,
                          double loss_bad) noexcept {
  GeParams params;
  if (avg_loss <= 0.0 || loss_bad <= 0.0) return params;  // disabled
  params.loss_bad = std::min(loss_bad, 1.0);
  // Mean Bad dwell is geometric: E[dwell] = 1 / p_bad_to_good.
  const double dwell = std::max(mean_bad_dwell, 1.0);
  params.p_bad_to_good = 1.0 / dwell;
  // Stationary Bad occupancy pi_b must satisfy avg = pi_b * loss_bad
  // (Good is loss-free), and pi_b = p_gb / (p_gb + p_bg).
  const double pi_b = std::min(avg_loss / params.loss_bad, 0.999);
  params.p_good_to_bad =
      std::min(pi_b * params.p_bad_to_good / (1.0 - pi_b), 1.0);
  return params;
}

double GeParams::average_loss() const noexcept {
  if (p_good_to_bad <= 0.0) return loss_good;
  const double pi_b = p_good_to_bad / (p_good_to_bad + p_bad_to_good);
  return (1.0 - pi_b) * loss_good + pi_b * loss_bad;
}

util::Status GeParams::validate() const {
  if (p_good_to_bad < 0.0 || p_good_to_bad > 1.0 || p_bad_to_good < 0.0 ||
      p_bad_to_good > 1.0) {
    return util::Error::invalid_argument(
        "GE transition probabilities must be in [0, 1]");
  }
  if (loss_good < 0.0 || loss_good >= 1.0) {
    return util::Error::invalid_argument(
        "GE loss_good must be in [0, 1) — a link losing everything in its "
        "good state never delivers");
  }
  if (loss_bad < 0.0 || loss_bad > 1.0) {
    return util::Error::invalid_argument("GE loss_bad must be in [0, 1]");
  }
  if (p_good_to_bad > 0.0 && p_bad_to_good <= 0.0) {
    return util::Error::invalid_argument(
        "GE chain would trap in the bad state (p_bad_to_good = 0); model a "
        "dead link with Topology::fail_link instead");
  }
  return util::Status::success();
}

bool GeProcess::offer() noexcept {
  const double loss = bad_ ? params_.loss_bad : params_.loss_good;
  const bool lost = loss > 0.0 && rng_.bernoulli(loss);
  if (bad_) {
    if (rng_.bernoulli(params_.p_bad_to_good)) bad_ = false;
  } else if (params_.p_good_to_bad > 0.0 &&
             rng_.bernoulli(params_.p_good_to_bad)) {
    bad_ = true;
  }
  return lost;
}

const char* to_string(LossPurpose purpose) noexcept {
  switch (purpose) {
    case LossPurpose::kData: return "data";
    case LossPurpose::kSat: return "sat";
    case LossPurpose::kControl: return "control";
  }
  return "unknown";
}

util::Status ChannelConfig::validate() const {
  if (const auto status = data.validate(); !status.ok()) return status;
  if (const auto status = sat.validate(); !status.ok()) return status;
  return control.validate();
}

void LinkLossField::configure(const ChannelConfig& config,
                              std::uint64_t seed) {
  config_ = config;
  seed_ = seed;
  for (std::size_t i = 0; i < kLossPurposeCount; ++i) {
    overrides_[i].clear();
    processes_[i].clear();
  }
  default_enabled_[static_cast<std::size_t>(LossPurpose::kData)] =
      config.data.enabled();
  default_enabled_[static_cast<std::size_t>(LossPurpose::kSat)] =
      config.sat.enabled();
  default_enabled_[static_cast<std::size_t>(LossPurpose::kControl)] =
      config.control.enabled();
}

std::uint64_t LinkLossField::stream_for(LossPurpose purpose, NodeId from,
                                        NodeId to) const noexcept {
  // Distinct stream per (purpose, directed link): the purpose occupies the
  // top bits so data/SAT/control streams on the same link never collide.
  return (static_cast<std::uint64_t>(purpose) + 1) << 56 ^ key(from, to) ^
         0x6C055ULL;
}

void LinkLossField::set_link_params(LossPurpose purpose, NodeId from,
                                    NodeId to, const GeParams& params) {
  const auto i = static_cast<std::size_t>(purpose);
  const LinkKey k = key(from, to);
  overrides_[i][k] = params;
  // Restart the link's process under the new parameters (fresh Good state,
  // same per-link stream so the rest of the run stays deterministic).
  processes_[i][k] = GeProcess(params, seed_, stream_for(purpose, from, to));
}

void LinkLossField::clear_link_params(LossPurpose purpose, NodeId from,
                                      NodeId to) {
  const auto i = static_cast<std::size_t>(purpose);
  const LinkKey k = key(from, to);
  overrides_[i].erase(k);
  processes_[i].erase(k);  // rematerialised from defaults on next offer
}

bool LinkLossField::offer(LossPurpose purpose, NodeId from, NodeId to) {
  const auto i = static_cast<std::size_t>(purpose);
  if (!default_enabled_[i] && overrides_[i].empty()) return false;
  const LinkKey k = key(from, to);
  auto it = processes_[i].find(k);
  if (it == processes_[i].end()) {
    const GeParams* params = &config_.for_purpose(purpose);
    if (const auto ov = overrides_[i].find(k); ov != overrides_[i].end()) {
      params = &ov->second;
    }
    if (!params->enabled()) return false;
    processes_[i][k] =
        GeProcess(*params, seed_, stream_for(purpose, from, to));
    it = processes_[i].find(k);
  }
  return it->second.offer();
}

}  // namespace wrt::fault
