// Per-station binary event journal.
//
// Counters say how much; the journal says when, where, and in what order —
// at production scale.  Each station owns a fixed-capacity ring of 24-byte
// POD records, so appending is an index computation plus a store (no
// allocation, no formatting), long runs overwrite their own oldest history
// per station instead of growing, and an overloaded station cannot evict
// another station's events.  Overwritten records are counted per ring and
// surfaced by every exporter.
//
// The journal is opt-in: engines take a Journal* and skip every record call
// when none is attached, which is why the always-on telemetry budget is the
// registry's counters alone.  save()/load() round-trip the rings plus the
// RingMeta needed to evaluate the paper's bounds offline (tools/wrt_report).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.hpp"
#include "util/thread_safety.hpp"
#include "util/types.hpp"

namespace wrt::telemetry {

/// What happened.  Kept separate from sim::EventKind because journal kinds
/// include per-slot data-plane moments the bounded protocol trace never
/// records (transmit, delivery, queue samples).
enum class JournalKind : std::uint16_t {
  kSatArrive = 0,   ///< SAT reached this station
  kSatRelease,      ///< SAT forwarded downstream (arg = next station)
  kTransmit,        ///< local injection (arg = TrafficClass, value = delay
                    ///<   queue -> tx in ticks)
  kDeliver,         ///< frame absorbed here (arg = source station)
  kJoin,            ///< this station entered the ring (arg = ingress)
  kLeave,           ///< graceful leave completed (arg = leaver)
  kCutOut,          ///< this station was cut out (arg = SAT_REC origin)
  kSatRecStart,     ///< this station generated a SAT_REC (arg = suspect)
  kSatRecDone,      ///< SAT_REC returned here; ring re-established
  kQueueDepth,      ///< periodic sample (value = packets queued)
  kSnapshot,        ///< periodic registry snapshot taken at this tick
  kStall,           ///< this station wedged (fault plane)
  kResume,          ///< this station un-wedged
  kControlLost,     ///< lost JOIN_REQ/JOIN_ACK (arg = attempt number)
  kRebuildDrop,     ///< teardown discarded in-flight frames (arg = count)
};

[[nodiscard]] const char* to_string(JournalKind kind) noexcept;

/// One fixed-width record.  POD on purpose: save()/load() move these as raw
/// bytes and the append path is a struct store.
struct JournalEvent {
  std::int64_t tick = 0;
  std::uint64_t value = 0;     ///< kind-specific payload (ticks, depth, ...)
  JournalKind kind{};
  std::uint16_t reserved = 0;  ///< zero; keeps the layout explicit
  std::uint32_t arg = 0;       ///< kind-specific peer station / class
};
static_assert(sizeof(JournalEvent) == 24, "journal record layout drifted");

/// Ring parameters embedded in the journal file so offline analysis can
/// evaluate the Theorem 1/2 bounds without the live engine.
struct RingMeta {
  std::int64_t ring_latency_slots = 0;  ///< S
  std::int64_t t_rap_slots = 0;         ///< T_rap
  std::vector<std::pair<NodeId, Quota>> quotas;  ///< per ring member
};

/// Shard-confined single-writer: the journal's append path is an index
/// computation plus a plain store, so exactly one engine thread may record
/// into a journal and readers (exporters, wrt_report) must wait for the
/// writer to quiesce.  Per-shard journals in a federation are merged
/// offline, never shared live.
class WRT_SHARD_CONFINED Journal {
 public:
  /// `capacity_per_station` bounds each station's ring (rounded up to 1).
  explicit Journal(std::size_t capacity_per_station = 4096);

  /// Appends to `station`'s ring, overwriting (and counting) the oldest
  /// record when full.  Stations are materialised lazily on first use.
  void record(NodeId station, JournalKind kind, Tick tick,
              std::uint32_t arg = 0, std::uint64_t value = 0);

  [[nodiscard]] std::size_t capacity_per_station() const noexcept {
    return capacity_;
  }

  /// Stations that have at least one record, ascending NodeId.
  [[nodiscard]] std::vector<NodeId> stations() const;

  /// `station`'s surviving records, oldest first (unwrapped copy).
  [[nodiscard]] std::vector<JournalEvent> events(NodeId station) const;

  /// Records overwritten out of `station`'s ring.
  [[nodiscard]] std::uint64_t dropped(NodeId station) const noexcept;

  /// Total appends across all stations (surviving + overwritten).
  [[nodiscard]] std::uint64_t total_recorded() const noexcept {
    return total_;
  }
  [[nodiscard]] std::uint64_t total_dropped() const noexcept;

  void set_meta(RingMeta meta) { meta_ = std::move(meta); }
  [[nodiscard]] const RingMeta& meta() const noexcept { return meta_; }

  void clear();

  /// Binary serialisation (little-endian host assumed, versioned header).
  [[nodiscard]] util::Status save(const std::string& path) const;
  [[nodiscard]] static util::Result<Journal> load(const std::string& path);

 private:
  struct StationRing {
    NodeId station = kInvalidNode;
    std::vector<JournalEvent> slots;  ///< capacity_ entries once touched
    std::size_t head = 0;             ///< oldest surviving record
    std::size_t count = 0;
    std::uint64_t dropped = 0;
  };

  [[nodiscard]] StationRing& ring_for(NodeId station);
  [[nodiscard]] const StationRing* find_ring(NodeId station) const noexcept;

  std::size_t capacity_;
  // Indexed by NodeId (dense: station ids are small by construction).
  std::vector<StationRing> rings_;
  std::uint64_t total_ = 0;
  RingMeta meta_;
};

}  // namespace wrt::telemetry
