// Post-hoc exporters for the telemetry layer.
//
// Three consumers, three formats:
//  * Chrome trace_event JSON — open in about://tracing or Perfetto; SAT
//    residency at each station renders as a per-station (tid) track of
//    complete ("X") slices, data-plane and membership moments as instants.
//  * Flat JSON — one object per snapshot: counters as numbers, histograms
//    with explicit bucket edges; stable schema for dashboards and scripts.
//  * CSV — `metric,value` rows for spreadsheet-grade consumers.
//
// All exporters format from immutable inputs (RegistrySnapshot, Journal,
// sim::EventTrace) so exporting never perturbs a running engine.
#pragma once

#include <iosfwd>
#include <vector>

#include "telemetry/journal.hpp"
#include "telemetry/registry.hpp"
#include "util/types.hpp"

namespace wrt::telemetry {

/// Writes a registry snapshot as one flat JSON object.
void write_snapshot_json(std::ostream& out, const RegistrySnapshot& snapshot);

/// Writes a registry snapshot as `metric,value` CSV (histograms contribute
/// <name>_count / _mean / _p50 / _p99 derived rows).
void write_snapshot_csv(std::ostream& out, const RegistrySnapshot& snapshot);

/// Writes a journal as a Chrome trace_event JSON document.  Ticks map to
/// trace microseconds at 1 slot = 1 us; station N becomes thread id N with
/// a named metadata record.  SAT residency (kSatArrive -> kSatRelease)
/// becomes "X" duration slices; everything else becomes instant events.
/// Per-station drop counts are emitted as trace metadata so a wrapped ring
/// is visible in the viewer.
void write_chrome_trace(std::ostream& out, const Journal& journal);

/// A timestamped sequence of registry snapshots (periodic snapshotting).
/// Install on a sim::Scheduler via schedule_every, or call capture()
/// directly from an engine-stepping loop.
class SnapshotTimeline {
 public:
  void capture(Tick now) {
    entries_.push_back({now, MetricRegistry::instance().snapshot()});
    MetricRegistry::instance().count(CounterId::kSnapshots);
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const RegistrySnapshot& at(std::size_t i) const {
    return entries_[i].snapshot;
  }
  [[nodiscard]] Tick tick_at(std::size_t i) const {
    return entries_[i].tick;
  }

  /// JSON array of {tick, snapshot} objects.
  void write_json(std::ostream& out) const;

 private:
  struct Entry {
    Tick tick = 0;
    RegistrySnapshot snapshot;
  };
  std::vector<Entry> entries_;
};

}  // namespace wrt::telemetry
