// Telemetry macro layer and metric catalogue.
//
// The engines are instrumented with WRT_COUNT / WRT_OBSERVE / WRT_SPAN at
// the protocol's observable moments (SAT handoff, slot transmit, membership
// churn, SAT_REC recovery).  In a WRT_TELEMETRY=ON build each WRT_COUNT is
// exactly one relaxed atomic increment into a cache-line-padded slot of the
// process-wide MetricRegistry; WRT_OBSERVE adds one bucket-index computation
// on top.  With WRT_TELEMETRY=OFF every macro expands to `((void)0)` so the
// hot path is bit-for-bit the release binary (the check.sh digest oracle
// and CI's telemetry gate rely on this).
//
// The counter/histogram ids are closed enums rather than string keys: the
// hot path never hashes, and the exporters recover stable snake_case names
// from the tables below.  Pure observation only — nothing in this layer may
// feed back into protocol decisions, which is what keeps the --digest
// output identical whether telemetry is compiled in or out.
#pragma once

#include <cstddef>
#include <cstdint>

#ifndef WRT_TELEMETRY_LEVEL
#define WRT_TELEMETRY_LEVEL 1
#endif

namespace wrt::telemetry {

inline constexpr bool kTelemetryEnabled = WRT_TELEMETRY_LEVEL != 0;

/// Monotonic counters.  Keep in sync with counter_name().
enum class CounterId : std::uint16_t {
  kSlotsStepped = 0,      ///< engine MAC slots advanced
  kSatHandoffs,           ///< SAT released downstream (link traversals)
  kSatArrivals,           ///< SAT arrivals at a station
  kSatHolds,              ///< SAT seized by a not-satisfied station
  kTxRealTime,            ///< local injections, Premium (l quota)
  kTxAssured,             ///< local injections, Assured (k1 share)
  kTxBestEffort,          ///< local injections, best-effort (k2 share)
  kTransitForwards,       ///< frames forwarded in transit
  kDeliveries,            ///< frames absorbed by their destination
  kFramesLost,            ///< frames dropped on a broken/lossy hop
  kFramesLostRebuild,     ///< in-flight frames discarded by a teardown
  kFramesLostChurn,       ///< in-flight frames discarded by a join update
  kControlMsgsLost,       ///< lost NEXT_FREE / JOIN_REQ / JOIN_ACK
  kJoinRetries,           ///< joiner backoffs after a lost handshake
  kJoins,                 ///< completed join handshakes
  kJoinsRejected,         ///< admission-refused joins
  kLeaves,                ///< completed graceful leaves
  kCutOuts,               ///< SAT_REC cut-outs (incl. graceful)
  kSatLossesDetected,     ///< SAT_TIMER expiries
  kSatRecoveries,         ///< SAT_REC made it back (ring survived)
  kRingRebuilds,          ///< full ring re-formations
  kRapsStarted,           ///< random access periods opened
  kTptTokenPasses,        ///< TPT: token link traversals
  kTptTokenRounds,        ///< TPT: completed token tours
  kTptClaims,             ///< TPT: claim processes started
  kTptTreeRebuilds,       ///< TPT: full tree re-formations
  kJournalEvents,         ///< journal appends (any station)
  kSnapshots,             ///< registry snapshots taken
  kRecoveryFsmTransitions,///< RecoveryFsm state changes
  kStaleRecSuppressed,    ///< stale SAT_REC / SF indications suppressed
  kWtrHoldoffs,           ///< rejoins held back by the WTR timer
  kSpuriousCutOuts,       ///< healthy stations cut out by a stale SAT_REC
  kCount_,                ///< sentinel — number of counters
};

/// Fixed-bucket histograms.  Keep in sync with histogram_name() and
/// histogram_layout().
enum class HistogramId : std::uint16_t {
  kSatRotationSlots = 0,  ///< per-station SAT inter-arrival time
  kRtAccessDelaySlots,    ///< real-time packet queue -> first tx
  kBeAccessDelaySlots,    ///< non-real-time packet queue -> first tx
  kQueueDepth,            ///< station queue depth at sample points
  kJoinLatencySlots,      ///< join request -> in ring
  kSatRecSlots,           ///< SAT loss -> SAT restored
  kSatDetectSlots,        ///< SAT loss -> SAT_TIMER detection (MTTD)
  kSpanNanos,             ///< WRT_SPAN wall-clock durations (cold paths)
  kRecoveryMttrSlots,     ///< RecoveryFsm MTTR: loss -> ring restored
  kCount_,                ///< sentinel — number of histograms
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(CounterId::kCount_);
inline constexpr std::size_t kHistogramCount =
    static_cast<std::size_t>(HistogramId::kCount_);

/// Stable snake_case export name of a counter.
[[nodiscard]] const char* counter_name(CounterId id) noexcept;

/// Stable snake_case export name of a histogram.
[[nodiscard]] const char* histogram_name(HistogramId id) noexcept;

/// Bucket layout of a histogram: `bucket_count` linear buckets of `width`
/// starting at `lo`; values past the top land in the overflow bucket.
struct HistogramLayout {
  double lo = 0.0;
  double width = 1.0;
  std::uint32_t bucket_count = 32;
};

[[nodiscard]] HistogramLayout histogram_layout(HistogramId id) noexcept;

}  // namespace wrt::telemetry

// ---------------------------------------------------------------------------
// Instrumentation macros
// ---------------------------------------------------------------------------
//
//   WRT_COUNT(kSatHandoffs);              // += 1
//   WRT_COUNT_N(kTxRealTime, burst);      // += burst
//   WRT_OBSERVE(kSatRotationSlots, 42.0); // histogram sample
//   { WRT_SPAN(); heavy_cold_work(); }    // wall-clock ns -> kSpanNanos
//
// WRT_SPAN measures host wall-clock, not simulated time, so it belongs on
// cold paths (rebuilds, exports) where real cost matters and determinism
// doesn't — simulated-time spans live in the telemetry::Journal instead.
//
// The WRT_BATCH_* variants route through an engine-owned TelemetryBatch
// (plain integer bumps, no atomics) instead of the shared registry; the
// owner flushes periodically via WRT_BATCH_FLUSH.  Use them on per-slot /
// per-frame paths where even an uncontended lock add is measurable.

#if WRT_TELEMETRY_LEVEL

#include "telemetry/registry.hpp"

#define WRT_COUNT(id)                          \
  ::wrt::telemetry::MetricRegistry::instance() \
      .count(::wrt::telemetry::CounterId::id)
#define WRT_COUNT_N(id, n)                     \
  ::wrt::telemetry::MetricRegistry::instance() \
      .count(::wrt::telemetry::CounterId::id,  \
             static_cast<std::uint64_t>(n))
#define WRT_OBSERVE(id, value)                   \
  ::wrt::telemetry::MetricRegistry::instance()   \
      .observe(::wrt::telemetry::HistogramId::id, \
               static_cast<double>(value))
#define WRT_TELEM_CAT2(a, b) a##b
#define WRT_TELEM_CAT(a, b) WRT_TELEM_CAT2(a, b)
#define WRT_SPAN() \
  ::wrt::telemetry::ScopedSpan WRT_TELEM_CAT(wrt_span_, __LINE__) {}
#define WRT_BATCH_COUNT(batch, id) \
  (batch).count(::wrt::telemetry::CounterId::id)
#define WRT_BATCH_COUNT_N(batch, id, n)        \
  (batch).count(::wrt::telemetry::CounterId::id, \
                static_cast<std::uint64_t>(n))
#define WRT_BATCH_OBSERVE(batch, id, value)        \
  (batch).observe(::wrt::telemetry::HistogramId::id, \
                  static_cast<double>(value))
#define WRT_BATCH_FLUSH(batch) (batch).flush()

#else

#define WRT_COUNT(id) ((void)0)
#define WRT_COUNT_N(id, n) ((void)(n))
#define WRT_OBSERVE(id, value) ((void)(value))
#define WRT_SPAN() ((void)0)
#define WRT_BATCH_COUNT(batch, id) ((void)0)
#define WRT_BATCH_COUNT_N(batch, id, n) ((void)(n))
#define WRT_BATCH_OBSERVE(batch, id, value) ((void)(value))
#define WRT_BATCH_FLUSH(batch) ((void)0)

#endif
