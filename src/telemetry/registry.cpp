#include "telemetry/registry.hpp"

#include <algorithm>
#include <cmath>

namespace wrt::telemetry {

const char* counter_name(CounterId id) noexcept {
  switch (id) {
    case CounterId::kSlotsStepped: return "slots_stepped";
    case CounterId::kSatHandoffs: return "sat_handoffs";
    case CounterId::kSatArrivals: return "sat_arrivals";
    case CounterId::kSatHolds: return "sat_holds";
    case CounterId::kTxRealTime: return "tx_real_time";
    case CounterId::kTxAssured: return "tx_assured";
    case CounterId::kTxBestEffort: return "tx_best_effort";
    case CounterId::kTransitForwards: return "transit_forwards";
    case CounterId::kDeliveries: return "deliveries";
    case CounterId::kFramesLost: return "frames_lost";
    case CounterId::kFramesLostRebuild: return "frames_lost_rebuild";
    case CounterId::kFramesLostChurn: return "frames_lost_churn";
    case CounterId::kControlMsgsLost: return "control_msgs_lost";
    case CounterId::kJoinRetries: return "join_retries";
    case CounterId::kJoins: return "joins";
    case CounterId::kJoinsRejected: return "joins_rejected";
    case CounterId::kLeaves: return "leaves";
    case CounterId::kCutOuts: return "cut_outs";
    case CounterId::kSatLossesDetected: return "sat_losses_detected";
    case CounterId::kSatRecoveries: return "sat_recoveries";
    case CounterId::kRingRebuilds: return "ring_rebuilds";
    case CounterId::kRapsStarted: return "raps_started";
    case CounterId::kTptTokenPasses: return "tpt_token_passes";
    case CounterId::kTptTokenRounds: return "tpt_token_rounds";
    case CounterId::kTptClaims: return "tpt_claims";
    case CounterId::kTptTreeRebuilds: return "tpt_tree_rebuilds";
    case CounterId::kJournalEvents: return "journal_events";
    case CounterId::kSnapshots: return "snapshots";
    case CounterId::kRecoveryFsmTransitions: return "recovery_fsm_transitions";
    case CounterId::kStaleRecSuppressed: return "stale_rec_suppressed";
    case CounterId::kWtrHoldoffs: return "wtr_holdoffs";
    case CounterId::kSpuriousCutOuts: return "spurious_cut_outs";
    case CounterId::kCount_: break;
  }
  return "unknown";
}

const char* histogram_name(HistogramId id) noexcept {
  switch (id) {
    case HistogramId::kSatRotationSlots: return "sat_rotation_slots";
    case HistogramId::kRtAccessDelaySlots: return "rt_access_delay_slots";
    case HistogramId::kBeAccessDelaySlots: return "be_access_delay_slots";
    case HistogramId::kQueueDepth: return "queue_depth";
    case HistogramId::kJoinLatencySlots: return "join_latency_slots";
    case HistogramId::kSatRecSlots: return "sat_rec_slots";
    case HistogramId::kSatDetectSlots: return "sat_detect_slots";
    case HistogramId::kSpanNanos: return "span_nanos";
    case HistogramId::kRecoveryMttrSlots: return "recovery_mttr_slots";
    case HistogramId::kCount_: break;
  }
  return "unknown";
}

HistogramLayout histogram_layout(HistogramId id) noexcept {
  switch (id) {
    // Rotation: Theorem-1 bounds on the reference rings land well under
    // 1024 slots; 64 x 16-slot buckets resolve the distribution shape.
    case HistogramId::kSatRotationSlots: return {0.0, 16.0, 64};
    case HistogramId::kRtAccessDelaySlots: return {0.0, 8.0, 64};
    case HistogramId::kBeAccessDelaySlots: return {0.0, 32.0, 64};
    case HistogramId::kQueueDepth: return {0.0, 2.0, 64};
    case HistogramId::kJoinLatencySlots: return {0.0, 64.0, 64};
    case HistogramId::kSatRecSlots: return {0.0, 32.0, 64};
    // Detection latency is bounded by SAT_TIME (Theorem 1); finer buckets
    // than kSatRecSlots since MTTD excludes the rebuild tail.
    case HistogramId::kSatDetectSlots: return {0.0, 16.0, 64};
    // Wall-clock spans: 1us buckets up to 64us; slower spans overflow.
    case HistogramId::kSpanNanos: return {0.0, 1000.0, 64};
    // MTTR spans detection + SAT_REC circuit (and, worst case, a rebuild);
    // wider buckets than kSatRecSlots to keep the rebuild tail resolved.
    case HistogramId::kRecoveryMttrSlots: return {0.0, 32.0, 64};
    case HistogramId::kCount_: break;
  }
  return {};
}

double RegistrySnapshot::HistogramData::quantile(double q) const noexcept {
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(total == 0 ? 0 : total - 1));
  std::uint64_t seen = underflow;
  if (rank < seen) return layout.lo;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (rank < seen) {
      return layout.lo + layout.width * static_cast<double>(b);
    }
  }
  return layout.lo + layout.width * static_cast<double>(layout.bucket_count);
}

void MetricRegistry::observe(HistogramId id, double value) noexcept {
  PaddedHistogram& h = histograms_[static_cast<std::size_t>(id)];
  const HistogramLayout layout = histogram_layout(id);
  h.sum_scaled.fetch_add(static_cast<std::int64_t>(value * kSumScale),
                        std::memory_order_relaxed);
  if (value < layout.lo) {
    h.underflow.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const double offset = (value - layout.lo) / layout.width;
  std::size_t bucket = offset >= static_cast<double>(layout.bucket_count)
                           ? layout.bucket_count  // overflow bucket
                           : static_cast<std::size_t>(offset);
  h.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
}

void MetricRegistry::merge_histogram(HistogramId id,
                                     const std::uint64_t* buckets,
                                     std::size_t bucket_count,
                                     std::uint64_t underflow,
                                     std::int64_t sum_scaled) noexcept {
  PaddedHistogram& h = histograms_[static_cast<std::size_t>(id)];
  if (sum_scaled != 0) {
    h.sum_scaled.fetch_add(sum_scaled, std::memory_order_relaxed);
  }
  if (underflow != 0) {
    h.underflow.fetch_add(underflow, std::memory_order_relaxed);
  }
  for (std::size_t b = 0; b < bucket_count && b <= kMaxBuckets; ++b) {
    if (buckets[b] != 0) {
      h.buckets[b].fetch_add(buckets[b], std::memory_order_relaxed);
    }
  }
}

void TelemetryBatch::flush() noexcept {
  auto& registry = MetricRegistry::instance();
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    if (counters_[i] != 0) {
      registry.count(static_cast<CounterId>(i), counters_[i]);
      counters_[i] = 0;
    }
  }
  for (std::size_t i = 0; i < kHistogramCount; ++i) {
    Histogram& h = histograms_[i];
    if (!h.touched) continue;
    registry.merge_histogram(static_cast<HistogramId>(i), h.buckets.data(),
                             h.buckets.size(), h.underflow, h.sum_scaled);
    h = Histogram{};
  }
}

void MetricRegistry::add_flush_source(TelemetryBatch* batch) {
  if (batch == nullptr) return;
  const util::MutexLock lock(sources_mutex_);
  if (std::find(sources_.begin(), sources_.end(), batch) == sources_.end()) {
    sources_.push_back(batch);
  }
}

void MetricRegistry::remove_flush_source(TelemetryBatch* batch) noexcept {
  const util::MutexLock lock(sources_mutex_);
  sources_.erase(std::remove(sources_.begin(), sources_.end(), batch),
                 sources_.end());
}

RegistrySnapshot MetricRegistry::snapshot() const {
  {
    const util::MutexLock lock(sources_mutex_);
    for (TelemetryBatch* source : sources_) source->flush();
  }
  RegistrySnapshot snap;
  snap.counters.reserve(kCounterCount);
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const auto id = static_cast<CounterId>(i);
    snap.counters.emplace_back(
        counter_name(id), counters_[i].value.load(std::memory_order_relaxed));
  }
  snap.histograms.reserve(kHistogramCount);
  for (std::size_t i = 0; i < kHistogramCount; ++i) {
    const auto id = static_cast<HistogramId>(i);
    RegistrySnapshot::HistogramData data;
    data.name = histogram_name(id);
    data.layout = histogram_layout(id);
    const PaddedHistogram& h = histograms_[i];
    data.underflow = h.underflow.load(std::memory_order_relaxed);
    data.sum = static_cast<double>(
                   h.sum_scaled.load(std::memory_order_relaxed)) /
               kSumScale;
    data.buckets.resize(data.layout.bucket_count + 1);
    data.total = data.underflow;
    for (std::size_t b = 0; b <= data.layout.bucket_count; ++b) {
      data.buckets[b] = h.buckets[b].load(std::memory_order_relaxed);
      data.total += data.buckets[b];
    }
    snap.histograms.push_back(std::move(data));
  }
  return snap;
}

void MetricRegistry::reset() noexcept {
  for (auto& counter : counters_) {
    counter.value.store(0, std::memory_order_relaxed);
  }
  for (auto& h : histograms_) {
    h.underflow.store(0, std::memory_order_relaxed);
    h.sum_scaled.store(0, std::memory_order_relaxed);
    for (auto& bucket : h.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace wrt::telemetry
