#include "telemetry/exporters.hpp"

#include <algorithm>
#include <ostream>

namespace wrt::telemetry {

namespace {

/// Minimal JSON number formatting: doubles print round-trippably, and the
/// exporters only ever emit names from the closed metric catalogue, so no
/// string escaping is required.
void json_double(std::ostream& out, double value) {
  const auto old_precision = out.precision(17);
  out << value;
  out.precision(old_precision);
}

void write_histogram_json(std::ostream& out,
                          const RegistrySnapshot::HistogramData& h) {
  out << "{\"name\":\"" << h.name << "\",\"lo\":";
  json_double(out, h.layout.lo);
  out << ",\"width\":";
  json_double(out, h.layout.width);
  out << ",\"total\":" << h.total << ",\"underflow\":" << h.underflow
      << ",\"mean\":";
  json_double(out, h.mean());
  out << ",\"p50\":";
  json_double(out, h.quantile(0.5));
  out << ",\"p99\":";
  json_double(out, h.quantile(0.99));
  out << ",\"buckets\":[";
  for (std::size_t b = 0; b < h.buckets.size(); ++b) {
    if (b != 0) out << ',';
    out << h.buckets[b];
  }
  out << "]}";
}

}  // namespace

void write_snapshot_json(std::ostream& out,
                         const RegistrySnapshot& snapshot) {
  out << "{\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i != 0) out << ',';
    out << '"' << snapshot.counters[i].first
        << "\":" << snapshot.counters[i].second;
  }
  out << "},\"histograms\":[";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    if (i != 0) out << ',';
    write_histogram_json(out, snapshot.histograms[i]);
  }
  out << "]}";
}

void write_snapshot_csv(std::ostream& out,
                        const RegistrySnapshot& snapshot) {
  out << "metric,value\n";
  for (const auto& [name, value] : snapshot.counters) {
    out << name << ',' << value << '\n';
  }
  for (const auto& h : snapshot.histograms) {
    out << h.name << "_count," << h.total << '\n';
    out << h.name << "_mean,";
    json_double(out, h.mean());
    out << '\n';
    out << h.name << "_p50,";
    json_double(out, h.quantile(0.5));
    out << '\n';
    out << h.name << "_p99,";
    json_double(out, h.quantile(0.99));
    out << '\n';
  }
}

void write_chrome_trace(std::ostream& out, const Journal& journal) {
  // 1 slot = 1 trace microsecond; ticks are kTicksPerSlot per slot, so the
  // conversion keeps sub-slot resolution as fractional microseconds.
  const auto us = [](Tick tick) {
    return static_cast<double>(tick) /
           static_cast<double>(kTicksPerSlot);
  };

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out << ',';
    first = false;
  };

  for (const NodeId station : journal.stations()) {
    // Name the per-station track.
    comma();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
        << station << ",\"args\":{\"name\":\"station " << station << "\"}}";
    const std::uint64_t dropped = journal.dropped(station);
    if (dropped != 0) {
      // Surface ring wrap in the viewer rather than dropping silently.
      comma();
      out << "{\"name\":\"journal_dropped\",\"ph\":\"C\",\"pid\":1,\"tid\":"
          << station << ",\"ts\":0,\"args\":{\"dropped\":" << dropped
          << "}}";
    }

    Tick sat_arrived = kNeverTick;
    for (const JournalEvent& event : journal.events(station)) {
      switch (event.kind) {
        case JournalKind::kSatArrive:
          sat_arrived = event.tick;
          break;
        case JournalKind::kSatRelease: {
          // SAT residency slice; an arrive lost to ring wrap degrades to a
          // zero-length slice at the release instant.
          const Tick begin =
              sat_arrived == kNeverTick ? event.tick : sat_arrived;
          comma();
          out << "{\"name\":\"SAT\",\"cat\":\"sat\",\"ph\":\"X\",\"pid\":1,"
              << "\"tid\":" << station << ",\"ts\":";
          json_double(out, us(begin));
          out << ",\"dur\":";
          json_double(out, us(event.tick - begin));
          out << ",\"args\":{\"next\":" << event.arg << "}}";
          sat_arrived = kNeverTick;
          break;
        }
        default: {
          comma();
          out << "{\"name\":\"" << to_string(event.kind)
              << "\",\"cat\":\"protocol\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,"
              << "\"tid\":" << station << ",\"ts\":";
          json_double(out, us(event.tick));
          out << ",\"args\":{\"arg\":" << event.arg
              << ",\"value\":" << event.value << "}}";
          break;
        }
      }
    }
  }
  out << "],\"otherData\":{\"total_recorded\":" << journal.total_recorded()
      << ",\"total_dropped\":" << journal.total_dropped() << "}}";
}

void SnapshotTimeline::write_json(std::ostream& out) const {
  out << '[';
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i != 0) out << ',';
    out << "{\"tick\":" << entries_[i].tick << ",\"slots\":"
        << ticks_to_slots(entries_[i].tick) << ",\"registry\":";
    write_snapshot_json(out, entries_[i].snapshot);
    out << '}';
  }
  out << ']';
}

}  // namespace wrt::telemetry
