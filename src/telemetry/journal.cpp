#include "telemetry/journal.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>

namespace wrt::telemetry {

namespace {
constexpr char kMagic[8] = {'W', 'R', 'T', 'J', 'R', 'N', 'L', '1'};
constexpr std::uint32_t kVersion = 1;
}  // namespace

const char* to_string(JournalKind kind) noexcept {
  switch (kind) {
    case JournalKind::kSatArrive: return "sat-arrive";
    case JournalKind::kSatRelease: return "sat-release";
    case JournalKind::kTransmit: return "transmit";
    case JournalKind::kDeliver: return "deliver";
    case JournalKind::kJoin: return "join";
    case JournalKind::kLeave: return "leave";
    case JournalKind::kCutOut: return "cut-out";
    case JournalKind::kSatRecStart: return "sat-rec-start";
    case JournalKind::kSatRecDone: return "sat-rec-done";
    case JournalKind::kQueueDepth: return "queue-depth";
    case JournalKind::kSnapshot: return "snapshot";
    case JournalKind::kStall: return "stall";
    case JournalKind::kResume: return "resume";
    case JournalKind::kControlLost: return "control-lost";
    case JournalKind::kRebuildDrop: return "rebuild-drop";
  }
  return "unknown";
}

Journal::Journal(std::size_t capacity_per_station)
    : capacity_(std::max<std::size_t>(1, capacity_per_station)) {}

Journal::StationRing& Journal::ring_for(NodeId station) {
  if (station >= rings_.size()) {
    rings_.resize(static_cast<std::size_t>(station) + 1);
  }
  StationRing& ring = rings_[station];
  if (ring.slots.empty()) {
    ring.station = station;
    ring.slots.resize(capacity_);
  }
  return ring;
}

const Journal::StationRing* Journal::find_ring(
    NodeId station) const noexcept {
  if (station >= rings_.size()) return nullptr;
  const StationRing& ring = rings_[station];
  return ring.slots.empty() ? nullptr : &ring;
}

void Journal::record(NodeId station, JournalKind kind, Tick tick,
                     std::uint32_t arg, std::uint64_t value) {
  StationRing& ring = ring_for(station);
  std::size_t slot;
  if (ring.count == capacity_) {
    // Overwrite the oldest record; the wrap is counted, never silent.
    slot = ring.head;
    ring.head = ring.head + 1 == capacity_ ? 0 : ring.head + 1;
    ++ring.dropped;
  } else {
    slot = ring.head + ring.count;
    if (slot >= capacity_) slot -= capacity_;
    ++ring.count;
  }
  ring.slots[slot] = JournalEvent{tick, value, kind, 0, arg};
  ++total_;
}

std::vector<NodeId> Journal::stations() const {
  std::vector<NodeId> result;
  for (const StationRing& ring : rings_) {
    if (!ring.slots.empty() && ring.count > 0) result.push_back(ring.station);
  }
  return result;
}

std::vector<JournalEvent> Journal::events(NodeId station) const {
  std::vector<JournalEvent> result;
  const StationRing* ring = find_ring(station);
  if (ring == nullptr) return result;
  result.reserve(ring->count);
  for (std::size_t i = 0; i < ring->count; ++i) {
    std::size_t slot = ring->head + i;
    if (slot >= capacity_) slot -= capacity_;
    result.push_back(ring->slots[slot]);
  }
  return result;
}

std::uint64_t Journal::dropped(NodeId station) const noexcept {
  const StationRing* ring = find_ring(station);
  return ring == nullptr ? 0 : ring->dropped;
}

std::uint64_t Journal::total_dropped() const noexcept {
  std::uint64_t total = 0;
  for (const StationRing& ring : rings_) total += ring.dropped;
  return total;
}

void Journal::clear() {
  rings_.clear();
  total_ = 0;
  meta_ = RingMeta{};
}

namespace {
template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool read_pod(std::ifstream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}
}  // namespace

util::Status Journal::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return util::Error::invalid_argument("journal save: cannot open " + path);
  }
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint64_t>(capacity_));
  write_pod(out, total_);
  // Meta block.
  write_pod(out, meta_.ring_latency_slots);
  write_pod(out, meta_.t_rap_slots);
  write_pod(out, static_cast<std::uint32_t>(meta_.quotas.size()));
  for (const auto& [node, quota] : meta_.quotas) {
    write_pod(out, node);
    write_pod(out, quota.l);
    write_pod(out, quota.k);
  }
  // Rings: only materialised ones, unwrapped to oldest-first order.
  std::uint32_t ring_count = 0;
  for (const StationRing& ring : rings_) {
    if (!ring.slots.empty()) ++ring_count;
  }
  write_pod(out, ring_count);
  for (const StationRing& ring : rings_) {
    if (ring.slots.empty()) continue;
    write_pod(out, ring.station);
    write_pod(out, ring.dropped);
    write_pod(out, static_cast<std::uint64_t>(ring.count));
    for (std::size_t i = 0; i < ring.count; ++i) {
      std::size_t slot = ring.head + i;
      if (slot >= capacity_) slot -= capacity_;
      write_pod(out, ring.slots[slot]);
    }
  }
  if (!out) {
    return util::Error::invalid_argument("journal save: write failed: " +
                                         path);
  }
  return util::Status::success();
}

util::Result<Journal> Journal::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Error::not_found("journal load: cannot open " + path);
  }
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return util::Error::invalid_argument("journal load: bad magic: " + path);
  }
  std::uint32_t version = 0;
  std::uint64_t capacity = 0;
  std::uint64_t total = 0;
  if (!read_pod(in, version) || version != kVersion) {
    return util::Error::invalid_argument("journal load: unsupported version");
  }
  if (!read_pod(in, capacity) || !read_pod(in, total) || capacity == 0) {
    return util::Error::invalid_argument("journal load: corrupt header");
  }
  Journal journal(static_cast<std::size_t>(capacity));
  journal.total_ = total;
  RingMeta meta;
  std::uint32_t quota_count = 0;
  if (!read_pod(in, meta.ring_latency_slots) ||
      !read_pod(in, meta.t_rap_slots) || !read_pod(in, quota_count)) {
    return util::Error::invalid_argument("journal load: corrupt meta");
  }
  meta.quotas.reserve(quota_count);
  for (std::uint32_t i = 0; i < quota_count; ++i) {
    NodeId node = kInvalidNode;
    Quota quota;
    if (!read_pod(in, node) || !read_pod(in, quota.l) ||
        !read_pod(in, quota.k)) {
      return util::Error::invalid_argument("journal load: corrupt quotas");
    }
    meta.quotas.emplace_back(node, quota);
  }
  journal.meta_ = std::move(meta);
  std::uint32_t ring_count = 0;
  if (!read_pod(in, ring_count)) {
    return util::Error::invalid_argument("journal load: corrupt ring table");
  }
  for (std::uint32_t r = 0; r < ring_count; ++r) {
    NodeId station = kInvalidNode;
    std::uint64_t dropped = 0;
    std::uint64_t count = 0;
    if (!read_pod(in, station) || !read_pod(in, dropped) ||
        !read_pod(in, count) || count > capacity) {
      return util::Error::invalid_argument("journal load: corrupt ring");
    }
    StationRing& ring = journal.ring_for(station);
    ring.dropped = dropped;
    ring.head = 0;
    ring.count = static_cast<std::size_t>(count);
    for (std::size_t i = 0; i < ring.count; ++i) {
      if (!read_pod(in, ring.slots[i])) {
        return util::Error::invalid_argument("journal load: truncated ring");
      }
    }
  }
  return journal;
}

}  // namespace wrt::telemetry
