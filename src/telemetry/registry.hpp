// Process-wide metric registry.
//
// One fixed-size block of cache-line-padded relaxed atomics, shared by every
// engine in the process.  Parallel replications (sim::run_replications) all
// write the same registry concurrently; padding keeps their counters from
// false-sharing, relaxed ordering keeps an increment a single uncontended
// `lock add`.  Snapshots are advisory (taken while writers run), which is
// the standard contract for monitoring counters: totals are exact once
// writers quiesce, momentarily skewed while they don't.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "util/thread_safety.hpp"

namespace wrt::telemetry {

class TelemetryBatch;

/// Fixed-point scale for histogram running sums: atomic doubles would need
/// a CAS loop, a 1/1024th-scaled integer keeps the hot path to one add.
inline constexpr double kSumScale = 1024.0;

/// Point-in-time copy of every counter and histogram; what the exporters
/// and the periodic snapshotter consume.
struct RegistrySnapshot {
  struct HistogramData {
    std::string name;
    HistogramLayout layout;
    std::vector<std::uint64_t> buckets;  ///< bucket_count + 1 (overflow last)
    std::uint64_t underflow = 0;
    std::uint64_t total = 0;
    double sum = 0.0;  ///< sum of observed values (mean = sum / total)

    [[nodiscard]] double mean() const noexcept {
      return total == 0 ? 0.0 : sum / static_cast<double>(total);
    }
    /// Quantile estimate: lower edge of the bucket holding rank q*total.
    [[nodiscard]] double quantile(double q) const noexcept;
  };

  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<HistogramData> histograms;

  [[nodiscard]] std::uint64_t counter(CounterId id) const {
    return counters[static_cast<std::size_t>(id)].second;
  }
  [[nodiscard]] const HistogramData& histogram(HistogramId id) const {
    return histograms[static_cast<std::size_t>(id)];
  }
};

// The registry is the one sanctioned piece of cross-shard mutable state:
// every worker thread (replication workers today, federation shards
// tomorrow) writes it concurrently.  Each field is therefore an atomic, a
// lock, or annotated with the lock that guards it — enforced by wrt_lint's
// `unguarded-shared-field` rule via the registrations below and by Clang's
// `-Wthread-safety` on the annotations themselves.
//
// wrt-lint-shared-type(MetricRegistry): written concurrently by every shard
// wrt-lint-shared-type(PaddedCounter): element of the registry counter block
// wrt-lint-shared-type(PaddedHistogram): element of the registry histogram block
class MetricRegistry {
 public:
  /// Largest bucket_count any HistogramLayout may declare.
  static constexpr std::uint32_t kMaxBuckets = 64;

  [[nodiscard]] static MetricRegistry& instance() noexcept {
    // wrt-lint-allow(mutable-global-state): the one sanctioned cross-shard sink (every field atomic or lock-guarded)
    static MetricRegistry registry;
    return registry;
  }

  /// The WRT_COUNT hot path: one relaxed fetch_add on a padded slot.
  void count(CounterId id, std::uint64_t by = 1) noexcept {
    counters_[static_cast<std::size_t>(id)].value.fetch_add(
        by, std::memory_order_relaxed);
  }

  /// The WRT_OBSERVE hot path: bucket index + one relaxed fetch_add (plus
  /// a relaxed sum update so snapshots can report means).
  void observe(HistogramId id, double value) noexcept;

  /// Bulk merge of locally staged histogram state (TelemetryBatch::flush):
  /// one fetch_add per *touched* bucket rather than per observation.
  void merge_histogram(HistogramId id, const std::uint64_t* buckets,
                       std::size_t bucket_count, std::uint64_t underflow,
                       std::int64_t sum_scaled) noexcept;

  [[nodiscard]] std::uint64_t counter(CounterId id) const noexcept {
    return counters_[static_cast<std::size_t>(id)].value.load(
        std::memory_order_relaxed);
  }

  /// Copies every metric out (advisory while writers run).  Registered
  /// flush sources are drained first, so totals include deltas an engine
  /// has staged but not yet batch-flushed (see add_flush_source).
  [[nodiscard]] RegistrySnapshot snapshot() const
      WRT_EXCLUDES(sources_mutex_);

  /// Registers a staging batch to be drained by every snapshot().  An
  /// engine driven by bare step() calls flushes its batch only every
  /// kTelemetryFlushSlots slots; without this hook a snapshot taken
  /// between flushes under-reports by up to one flush interval.  The
  /// caller must remove_flush_source() before the batch is destroyed.
  /// Contract: a registered batch must only be written from the thread
  /// that takes snapshots (the single-threaded driver pattern) — batches
  /// owned by replication worker threads must NOT be registered, and no
  /// thread may take a snapshot() while engines run on other threads (the
  /// drain would race their batch writes; see DESIGN.md "Concurrency
  /// model").
  void add_flush_source(TelemetryBatch* batch) WRT_EXCLUDES(sources_mutex_);

  void remove_flush_source(TelemetryBatch* batch) noexcept
      WRT_EXCLUDES(sources_mutex_);

  /// Zeroes everything.  For tests and bench isolation only — production
  /// consumers difference successive snapshots instead.
  void reset() noexcept;

 private:
  MetricRegistry() = default;

  // One cache line per counter: replication threads hammer disjoint lines.
  struct alignas(64) PaddedCounter {
    std::atomic<std::uint64_t> value{0};
  };

  /// Histogram over linear buckets; bucket bucket_count is the overflow.
  /// No running total: every observation lands in exactly one of
  /// underflow/buckets, so snapshot() derives the total by summation and
  /// the hot path stays at two relaxed fetch_adds (sum + bucket).
  struct PaddedHistogram {
    alignas(64) std::atomic<std::uint64_t> underflow{0};
    /// Sum of observations, in fixed-point 1/1024ths (atomic doubles need a
    /// CAS loop; a scaled integer keeps the hot path to one fetch_add).
    std::atomic<std::int64_t> sum_scaled{0};
    /// kMaxBuckets linear buckets + 1 overflow slot.
    std::array<std::atomic<std::uint64_t>, kMaxBuckets + 1> buckets{};
  };

  std::array<PaddedCounter, kCounterCount> counters_{};
  std::array<PaddedHistogram, kHistogramCount> histograms_{};
  // Flush-source list: cold (mutated on engine construction/destruction,
  // walked per snapshot), so a mutex-guarded vector is plenty.  mutable
  // because snapshot() is logically const but must drain the sources.
  mutable util::Mutex sources_mutex_;
  mutable std::vector<TelemetryBatch*> sources_ WRT_GUARDED_BY(sources_mutex_);
};

/// Single-writer staging area for a hot loop (one per engine).  Events bump
/// plain integers — no atomics, no cache-line protocol — and flush()
/// publishes the accumulated deltas to the process-wide registry with one
/// fetch_add per touched slot.  An engine flushing every K slots amortises
/// its per-slot telemetry to a handful of atomics per K slots, which is
/// what keeps the instrumented hot path within the <= 2 % budget.
///
/// Registry totals therefore lag a live engine by at most one flush
/// interval; Engine::run_slots flushes on return (and the batch flushes on
/// destruction), so totals are exact whenever a driving loop has handed
/// control back.
///
/// Shard-confined: exactly one thread (the owning engine's) may touch a
/// batch.  flush() publishes through atomics, so concurrent batches on
/// different threads are safe; one batch on two threads is not.
class WRT_SHARD_CONFINED TelemetryBatch {
 public:
  TelemetryBatch() = default;
  TelemetryBatch(const TelemetryBatch&) = delete;
  TelemetryBatch& operator=(const TelemetryBatch&) = delete;
  ~TelemetryBatch() { flush(); }

  void count(CounterId id, std::uint64_t by = 1) noexcept {
    counters_[static_cast<std::size_t>(id)] += by;
  }

  void observe(HistogramId id, double value) noexcept {
    const HistogramLayout layout = histogram_layout(id);
    Histogram& h = histograms_[static_cast<std::size_t>(id)];
    h.touched = true;
    h.sum_scaled += static_cast<std::int64_t>(value * kSumScale);
    if (value < layout.lo) {
      ++h.underflow;
      return;
    }
    const double offset = (value - layout.lo) / layout.width;
    const std::size_t bucket =
        offset >= static_cast<double>(layout.bucket_count)
            ? layout.bucket_count  // overflow bucket
            : static_cast<std::size_t>(offset);
    ++h.buckets[bucket];
  }

  /// Publishes every staged delta to MetricRegistry::instance() and zeroes
  /// the staging arrays.
  void flush() noexcept;

 private:
  struct Histogram {
    std::int64_t sum_scaled = 0;
    std::uint64_t underflow = 0;
    bool touched = false;
    std::array<std::uint64_t, MetricRegistry::kMaxBuckets + 1> buckets{};
  };

  std::array<std::uint64_t, kCounterCount> counters_{};
  std::array<Histogram, kHistogramCount> histograms_{};
};

/// RAII wall-clock span for WRT_SPAN: observes elapsed nanoseconds into
/// HistogramId::kSpanNanos on destruction.  Cold paths only.
class ScopedSpan {
 public:
  ScopedSpan() noexcept : start_(std::chrono::steady_clock::now()) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    MetricRegistry::instance().observe(
        HistogramId::kSpanNanos,
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace wrt::telemetry
