// Differentiated Services substrate (Section 2.3 / Figure 2).
//
// The paper maps WRT-Ring onto the two-bit Diffserv architecture of
// Nichols/Jacobson/Zhang [15]: the guaranteed l quota is Premium, the k
// quota splits into k1 (Assured) and k2 (best-effort).  For the gateway
// scenario (ad hoc ring <-> wired LAN, Figure 2) we need the LAN half:
// per-class token-bucket meters/policers at the edge and a priority
// per-hop behaviour on the LAN link.  This module provides those pieces;
// the ring half (quota bookkeeping, reservation check at station G1) lives
// in wrtring::Gateway.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "sim/stats.hpp"
#include "traffic/traffic.hpp"
#include "util/types.hpp"

namespace wrt::diffserv {

/// Token-bucket meter: `rate` tokens per slot, capacity `burst`.  A packet
/// conforms when one token is available.
class TokenBucket {
 public:
  TokenBucket(double rate_per_slot, double burst);

  /// Advances to `now` and tries to consume one token.
  [[nodiscard]] bool conforms(Tick now);

  [[nodiscard]] double tokens(Tick now);
  [[nodiscard]] double rate() const noexcept { return rate_per_slot_; }

 private:
  void refill(Tick now);

  double rate_per_slot_;
  double burst_;
  double tokens_;
  Tick last_refill_ = 0;
};

/// Per-class policing configuration at a Diffserv edge.
struct EdgePolicy {
  double premium_rate = 0.05;   ///< packets/slot; excess is DROPPED
  double premium_burst = 2.0;
  double assured_rate = 0.10;   ///< excess is demoted to best-effort
  double assured_burst = 8.0;
};

/// Edge conditioner: meters a packet and returns its (possibly demoted)
/// class, or nullopt when the packet must be dropped (out-of-profile
/// Premium, per the two-bit architecture).
class EdgeConditioner {
 public:
  explicit EdgeConditioner(const EdgePolicy& policy);

  [[nodiscard]] std::optional<TrafficClass> condition(
      const traffic::Packet& packet, Tick now);

  [[nodiscard]] std::uint64_t premium_drops() const noexcept {
    return premium_drops_;
  }
  [[nodiscard]] std::uint64_t assured_demotions() const noexcept {
    return assured_demotions_;
  }

 private:
  TokenBucket premium_meter_;
  TokenBucket assured_meter_;
  std::uint64_t premium_drops_ = 0;
  std::uint64_t assured_demotions_ = 0;
};

/// One LAN output link with strict-priority service: Premium > Assured >
/// best-effort, `service_rate` packets per slot, bounded per-class queues.
/// step() must be called once per slot; it appends the packets served this
/// slot to `served` (the caller forwards them to the next hop or the sink).
class PriorityLink {
 public:
  PriorityLink(double service_rate_per_slot, std::size_t queue_capacity);

  /// Enqueues; drops (and records) when the class queue is full.
  // wrt-lint-allow(by-value-frame-param): deliberate sink, moved into queue
  void enqueue(traffic::Packet packet);

  /// Serves the slot; appends served packets to `served`.
  void step(std::vector<traffic::Packet>& served);

  [[nodiscard]] std::size_t queue_depth(TrafficClass cls) const;
  [[nodiscard]] std::uint64_t tail_drops(TrafficClass cls) const;

 private:
  double service_rate_;
  double service_credit_ = 0.0;
  std::size_t capacity_;
  std::array<std::deque<traffic::Packet>, 3> queues_;
  std::array<std::uint64_t, 3> drops_{};
};

/// Minimal Diffserv LAN: an edge conditioner feeding a chain of priority
/// links (one per LAN hop).  Models the wired network on the far side of
/// gateway G1 in Figure 2.
class LanModel {
 public:
  LanModel(const EdgePolicy& policy, std::size_t hops,
           double service_rate_per_slot, std::size_t queue_capacity);

  /// Injects a packet arriving at the LAN edge at `now`.
  void inject(const traffic::Packet& packet, Tick now);

  /// Advances all hops one slot.
  void step(Tick now);

  [[nodiscard]] const traffic::Sink& sink() const noexcept { return sink_; }
  [[nodiscard]] const EdgeConditioner& edge() const noexcept { return edge_; }

  /// Admission query: can the LAN carry an extra Premium stream of
  /// `rate_per_slot` without exceeding the configured Premium capacity?
  [[nodiscard]] bool can_reserve_premium(double rate_per_slot) const noexcept;

  /// Registers a granted Premium reservation.
  void reserve_premium(double rate_per_slot) noexcept {
    reserved_premium_ += rate_per_slot;
  }

  /// Returns a previously granted Premium reservation to the pool.
  void release_premium(double rate_per_slot) noexcept {
    reserved_premium_ -= rate_per_slot;
    if (reserved_premium_ < 0.0) reserved_premium_ = 0.0;
  }

  [[nodiscard]] double reserved_premium() const noexcept {
    return reserved_premium_;
  }

 private:
  EdgeConditioner edge_;
  EdgePolicy policy_;
  traffic::Sink sink_;
  std::vector<PriorityLink> hops_;
  double reserved_premium_ = 0.0;
};

/// Federation backbone segment: the Diffserv cloud between ring gateways.
/// Same strict-priority per-hop behaviour as LanModel, but transit instead
/// of terminal — packets that cross the last hop are handed back through
/// `step()`'s egress parameter for re-injection into the destination ring
/// rather than absorbed by a sink — and it carries its own Premium
/// reservation budget (packets/slot), the backbone leg of the three-way
/// inter-ring admission check (source ring, backbone class, destination
/// ring).  No edge conditioner: admitted crossings are already policed by
/// the rings' l-quota grants, and rejected ones travel best-effort.
class BackboneSegment {
 public:
  BackboneSegment(std::size_t hops, double service_rate_per_slot,
                  std::size_t queue_capacity, double premium_capacity);

  /// Enqueues a packet at the ingress hop.
  void inject(const traffic::Packet& packet);

  /// Advances all hops one slot; appends packets leaving the last hop to
  /// `egress` (the caller routes them to their destination ring).
  void step(std::vector<traffic::Packet>& egress);

  /// Admission query for the backbone leg of a crossing reservation.
  [[nodiscard]] bool can_reserve_premium(double rate_per_slot) const noexcept {
    return reserved_premium_ + rate_per_slot <= premium_capacity_;
  }
  void reserve_premium(double rate_per_slot) noexcept {
    reserved_premium_ += rate_per_slot;
  }
  void release_premium(double rate_per_slot) noexcept {
    reserved_premium_ -= rate_per_slot;
    if (reserved_premium_ < 0.0) reserved_premium_ = 0.0;
  }
  [[nodiscard]] double reserved_premium() const noexcept {
    return reserved_premium_;
  }
  [[nodiscard]] double premium_capacity() const noexcept {
    return premium_capacity_;
  }

  [[nodiscard]] std::size_t hop_count() const noexcept { return hops_.size(); }
  [[nodiscard]] std::size_t queue_depth() const;

  /// Total per-class tail drops summed over every hop.
  [[nodiscard]] std::uint64_t tail_drops() const;

 private:
  std::vector<PriorityLink> hops_;
  double premium_capacity_;
  double reserved_premium_ = 0.0;
};

}  // namespace wrt::diffserv
