#include "diffserv/diffserv.hpp"

#include <algorithm>
#include <cassert>

namespace wrt::diffserv {

TokenBucket::TokenBucket(double rate_per_slot, double burst)
    : rate_per_slot_(rate_per_slot), burst_(burst), tokens_(burst) {}

void TokenBucket::refill(Tick now) {
  assert(now >= last_refill_);
  const double elapsed_slots = ticks_to_slots_real(now - last_refill_);
  tokens_ = std::min(burst_, tokens_ + rate_per_slot_ * elapsed_slots);
  last_refill_ = now;
}

bool TokenBucket::conforms(Tick now) {
  refill(now);
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return true;
  }
  return false;
}

double TokenBucket::tokens(Tick now) {
  refill(now);
  return tokens_;
}

EdgeConditioner::EdgeConditioner(const EdgePolicy& policy)
    : premium_meter_(policy.premium_rate, policy.premium_burst),
      assured_meter_(policy.assured_rate, policy.assured_burst) {}

std::optional<TrafficClass> EdgeConditioner::condition(
    const traffic::Packet& packet, Tick now) {
  switch (packet.cls) {
    case TrafficClass::kRealTime:
      // Premium: out-of-profile packets are dropped (two-bit architecture:
      // Premium is shaped/policed hard so the core sees only the profile).
      if (premium_meter_.conforms(now)) return TrafficClass::kRealTime;
      ++premium_drops_;
      return std::nullopt;
    case TrafficClass::kAssured:
      // Assured: out-of-profile packets lose their assurance (demoted).
      if (assured_meter_.conforms(now)) return TrafficClass::kAssured;
      ++assured_demotions_;
      return TrafficClass::kBestEffort;
    case TrafficClass::kBestEffort:
      return TrafficClass::kBestEffort;
  }
  return TrafficClass::kBestEffort;
}

PriorityLink::PriorityLink(double service_rate_per_slot,
                           std::size_t queue_capacity)
    : service_rate_(service_rate_per_slot), capacity_(queue_capacity) {}

// wrt-lint-allow(by-value-frame-param): deliberate sink, moved into queue
void PriorityLink::enqueue(traffic::Packet packet) {
  auto& queue = queues_[static_cast<std::size_t>(packet.cls)];
  if (queue.size() >= capacity_) {
    ++drops_[static_cast<std::size_t>(packet.cls)];
    return;
  }
  queue.push_back(std::move(packet));
}

void PriorityLink::step(std::vector<traffic::Packet>& served) {
  service_credit_ += service_rate_;
  while (service_credit_ >= 1.0) {
    // Strict priority: Premium (kRealTime) first, then Assured, then BE.
    std::deque<traffic::Packet>* queue = nullptr;
    for (auto& candidate : queues_) {
      if (!candidate.empty()) {
        queue = &candidate;
        break;
      }
    }
    if (queue == nullptr) break;
    served.push_back(std::move(queue->front()));
    queue->pop_front();
    service_credit_ -= 1.0;
  }
  // Idle links do not accumulate unbounded credit.
  service_credit_ = std::min(service_credit_, 1.0);
}

std::size_t PriorityLink::queue_depth(TrafficClass cls) const {
  return queues_[static_cast<std::size_t>(cls)].size();
}

std::uint64_t PriorityLink::tail_drops(TrafficClass cls) const {
  return drops_[static_cast<std::size_t>(cls)];
}

LanModel::LanModel(const EdgePolicy& policy, std::size_t hops,
                   double service_rate_per_slot, std::size_t queue_capacity)
    : edge_(policy), policy_(policy) {
  assert(hops >= 1);
  hops_.reserve(hops);
  for (std::size_t i = 0; i < hops; ++i) {
    hops_.emplace_back(service_rate_per_slot, queue_capacity);
  }
}

void LanModel::inject(const traffic::Packet& packet, Tick now) {
  const std::optional<TrafficClass> cls = edge_.condition(packet, now);
  if (!cls.has_value()) {
    sink_.record_drop(packet);
    return;
  }
  traffic::Packet marked = packet;
  marked.cls = *cls;
  hops_.front().enqueue(std::move(marked));
}

void LanModel::step(Tick now) {
  // Serve from the last hop backwards so a packet crosses one hop per slot.
  for (std::size_t h = hops_.size(); h-- > 0;) {
    std::vector<traffic::Packet> served;
    hops_[h].step(served);
    for (auto& packet : served) {
      if (h + 1 == hops_.size()) {
        sink_.record_delivery(packet, now);
      } else {
        hops_[h + 1].enqueue(std::move(packet));
      }
    }
  }
}

bool LanModel::can_reserve_premium(double rate_per_slot) const noexcept {
  return reserved_premium_ + rate_per_slot <= policy_.premium_rate;
}

BackboneSegment::BackboneSegment(std::size_t hops,
                                 double service_rate_per_slot,
                                 std::size_t queue_capacity,
                                 double premium_capacity)
    : premium_capacity_(premium_capacity) {
  if (hops == 0) hops = 1;
  hops_.reserve(hops);
  for (std::size_t h = 0; h < hops; ++h) {
    hops_.emplace_back(service_rate_per_slot, queue_capacity);
  }
}

void BackboneSegment::inject(const traffic::Packet& packet) {
  hops_.front().enqueue(packet);
}

void BackboneSegment::step(std::vector<traffic::Packet>& egress) {
  // Serve from the last hop backwards so a packet crosses one hop per slot
  // (same discipline as LanModel::step); the last hop feeds the caller.
  for (std::size_t h = hops_.size(); h-- > 0;) {
    std::vector<traffic::Packet> served;
    hops_[h].step(served);
    for (auto& packet : served) {
      if (h + 1 == hops_.size()) {
        egress.push_back(std::move(packet));
      } else {
        hops_[h + 1].enqueue(std::move(packet));
      }
    }
  }
}

std::size_t BackboneSegment::queue_depth() const {
  std::size_t depth = 0;
  for (const auto& hop : hops_) {
    depth += hop.queue_depth(TrafficClass::kRealTime) +
             hop.queue_depth(TrafficClass::kAssured) +
             hop.queue_depth(TrafficClass::kBestEffort);
  }
  return depth;
}

std::uint64_t BackboneSegment::tail_drops() const {
  std::uint64_t drops = 0;
  for (const auto& hop : hops_) {
    drops += hop.tail_drops(TrafficClass::kRealTime) +
             hop.tail_drops(TrafficClass::kAssured) +
             hop.tail_drops(TrafficClass::kBestEffort);
  }
  return drops;
}

}  // namespace wrt::diffserv
