// Admission control for real-time sessions.
//
// Section 2.4.1: "After receiving the permission, the station specifies its
// QoS traffic requirements and the network checks if the requirements can
// be satisfied."  This module is that check, generalised to session
// (dis)establishment at any time: it keeps the registry of admitted
// real-time flows — (period P, packets-per-period C, deadline D) per
// station — picks station quotas with one of the FDDI-style allocation
// schemes (analysis::allocate), and accepts a new flow only if a feasible
// allocation exists for the whole registry including the newcomer
// (Theorem-3 test, analysis::check_feasibility).
//
// On acceptance the controller pushes the recomputed quotas into the
// engine, so the MAC's behaviour always matches the analytical guarantees
// it handed out.  The quota freed by a leaving or failed station is
// re-assigned the same way ("the transmission quota assigned to station i
// can be re-assigned to all the other station", Section 2.5).
#pragma once

#include <map>
#include <vector>

#include "analysis/allocation.hpp"
#include "util/result.hpp"
#include "wrtring/engine.hpp"

namespace wrt::wrtring {

struct SessionRequest {
  FlowId flow = kInvalidFlow;
  NodeId station = kInvalidNode;
  std::int64_t period_slots = 0;        ///< P
  std::int64_t packets_per_period = 1;  ///< C
  std::int64_t deadline_slots = 0;      ///< D
};

class AdmissionController {
 public:
  /// `engine` must outlive the controller.  `l_budget` is the total
  /// real-time quota the ring is willing to hand out per SAT round;
  /// `k_per_station` is the fixed best-effort quota.
  AdmissionController(Engine* engine, analysis::AllocationScheme scheme,
                      std::int64_t l_budget, std::uint32_t k_per_station);

  /// Tries to admit a session: recomputes the allocation over all admitted
  /// flows plus the request and accepts iff the result is feasible.  On
  /// success the engine's quotas are updated and the reserved quota is
  /// returned.
  [[nodiscard]] util::Result<Quota> admit(const SessionRequest& request);

  /// Releases a session; the freed quota is redistributed on the next
  /// admit/rebalance.
  [[nodiscard]] util::Status release(FlowId flow);

  /// Drops every session owned by a station that left the ring and
  /// redistributes quotas among the survivors.  Returns the number of
  /// sessions dropped.
  std::size_t on_station_left(NodeId station);

  /// Recomputes and applies the allocation for the current registry;
  /// exposed for callers that changed the ring externally.
  [[nodiscard]] util::Status rebalance();

  /// Subscribes to the engine's membership notifications so departures
  /// (cut-outs, leaves, rebuild exclusions) drop their sessions and joins
  /// trigger a rebalance automatically.  The controller must outlive the
  /// engine's use of the callback.
  void bind_membership_events();

  [[nodiscard]] std::size_t session_count() const noexcept {
    return sessions_.size();
  }
  [[nodiscard]] bool has_session(FlowId flow) const {
    return sessions_.contains(flow);
  }

  /// Worst-case access delay currently guaranteed to `flow` (Theorem 3
  /// under the applied allocation); kNotFound if the flow is unknown.
  [[nodiscard]] util::Result<std::int64_t> guaranteed_delay(FlowId flow) const;

 private:
  /// Builds the allocation input from the registry (aggregating flows that
  /// share a station) plus an optional extra request.
  [[nodiscard]] analysis::AllocationInput build_input(
      const SessionRequest* extra) const;

  /// Station index in ring order for the analysis vectors.
  [[nodiscard]] util::Result<std::size_t> station_index(NodeId station) const;

  /// Runs the scheme and feasibility test; on success applies quotas to the
  /// engine and returns the per-station params.
  [[nodiscard]] util::Result<analysis::RingParams> try_allocate(
      const SessionRequest* extra);

  // wrt-lint-allow(cross-shard-handle): the controller manages its own ring's admission — same shard by construction
  Engine* engine_;
  analysis::AllocationScheme scheme_;
  std::int64_t l_budget_;
  std::uint32_t k_per_station_;
  std::map<FlowId, SessionRequest> sessions_;
};

}  // namespace wrt::wrtring
