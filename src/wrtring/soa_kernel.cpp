#include "wrtring/soa_kernel.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace wrt::wrtring {

void SlotKernel::clear() {
  ids_.clear();
  quota_.clear();
  k1_assured_.clear();
  rt_pck_.clear();
  nrt_pck_.clear();
  assured_sent_.clear();
  drops_.clear();
  for (auto& column : queues_) column.clear();
  last_sat_arrival_.clear();
  last_sat_departure_.clear();
  last_rotation_arrival_.clear();
  rounds_since_rap_.clear();
  arrival_history_.clear();
  link_slots_.clear();
  link_head_.clear();
  link_count_.clear();
  transit_.clear();
  link_depth_ = 0;
  rot_ = 0;
  eligible_bits_.clear();
  eligible_bits_dirty_ = true;
}

void SlotKernel::push_station(NodeId id, Quota quota, std::uint32_t k1,
                              Tick now) {
  assert(k1 <= quota.k);
  ids_.push_back(id);
  quota_.push_back(quota);
  k1_assured_.push_back(k1);
  rt_pck_.push_back(0);
  nrt_pck_.push_back(0);
  assured_sent_.push_back(0);
  drops_.push_back(0);
  for (auto& column : queues_) column.emplace_back();
  last_sat_arrival_.push_back(now);
  last_sat_departure_.push_back(kNeverTick);
  last_rotation_arrival_.push_back(kNeverTick);
  rounds_since_rap_.push_back(0);
  arrival_history_.emplace_back();
  eligible_bits_dirty_ = true;
}

void SlotKernel::insert_station(std::size_t position, NodeId id, Quota quota,
                                std::uint32_t k1, Tick now) {
  assert(position <= size());
  assert(k1 <= quota.k);
  const auto at = static_cast<std::ptrdiff_t>(position);
  ids_.insert(ids_.begin() + at, id);
  quota_.insert(quota_.begin() + at, quota);
  k1_assured_.insert(k1_assured_.begin() + at, k1);
  rt_pck_.insert(rt_pck_.begin() + at, 0);
  nrt_pck_.insert(nrt_pck_.begin() + at, 0);
  assured_sent_.insert(assured_sent_.begin() + at, 0);
  drops_.insert(drops_.begin() + at, 0);
  for (auto& column : queues_) {
    column.insert(column.begin() + at, traffic::PacketRing{});
  }
  last_sat_arrival_.insert(last_sat_arrival_.begin() + at, now);
  last_sat_departure_.insert(last_sat_departure_.begin() + at, kNeverTick);
  last_rotation_arrival_.insert(last_rotation_arrival_.begin() + at,
                                kNeverTick);
  rounds_since_rap_.insert(rounds_since_rap_.begin() + at, 0);
  arrival_history_.insert(arrival_history_.begin() + at, std::vector<Tick>{});
  eligible_bits_dirty_ = true;
}

void SlotKernel::erase_station(std::size_t position) {
  assert(position < size());
  const auto at = static_cast<std::ptrdiff_t>(position);
  ids_.erase(ids_.begin() + at);
  quota_.erase(quota_.begin() + at);
  k1_assured_.erase(k1_assured_.begin() + at);
  rt_pck_.erase(rt_pck_.begin() + at);
  nrt_pck_.erase(nrt_pck_.begin() + at);
  assured_sent_.erase(assured_sent_.begin() + at);
  drops_.erase(drops_.begin() + at);
  for (auto& column : queues_) column.erase(column.begin() + at);
  last_sat_arrival_.erase(last_sat_arrival_.begin() + at);
  last_sat_departure_.erase(last_sat_departure_.begin() + at);
  last_rotation_arrival_.erase(last_rotation_arrival_.begin() + at);
  rounds_since_rap_.erase(rounds_since_rap_.begin() + at);
  arrival_history_.erase(arrival_history_.begin() + at);
  eligible_bits_dirty_ = true;
}

void SlotKernel::adopt_station(SlotKernel& other, std::size_t from) {
  assert(from < other.size());
  ids_.push_back(other.ids_[from]);
  quota_.push_back(other.quota_[from]);
  k1_assured_.push_back(other.k1_assured_[from]);
  rt_pck_.push_back(other.rt_pck_[from]);
  nrt_pck_.push_back(other.nrt_pck_[from]);
  assured_sent_.push_back(other.assured_sent_[from]);
  drops_.push_back(other.drops_[from]);
  for (std::size_t cls = 0; cls < 3; ++cls) {
    queues_[cls].push_back(std::move(other.queues_[cls][from]));
  }
  last_sat_arrival_.push_back(other.last_sat_arrival_[from]);
  last_sat_departure_.push_back(other.last_sat_departure_[from]);
  last_rotation_arrival_.push_back(other.last_rotation_arrival_[from]);
  rounds_since_rap_.push_back(other.rounds_since_rap_[from]);
  arrival_history_.push_back(std::move(other.arrival_history_[from]));
  eligible_bits_dirty_ = true;
}

void SlotKernel::reset_links(std::size_t depth) {
  const std::size_t R = size();
  link_depth_ = depth;
  link_slots_.assign(R * depth, LinkFrame{});
  link_head_.assign(R, 0);
  link_count_.assign(R, 0);
  transit_.assign(R, LinkFrame{});
  rot_ = 0;
}

void SlotKernel::rebuild_eligible() {
  eligible_bits_.assign((size() + 63) / 64, 0);
  for (std::size_t p = 0; p < size(); ++p) {
    if (eligible_class(p).has_value()) {
      eligible_bits_[p >> 6] |= std::uint64_t{1} << (p & 63);
    }
  }
  eligible_bits_dirty_ = false;
}

std::optional<TrafficClass> SlotKernel::eligible_class(std::size_t p) const {
  const Quota quota = quota_[p];
  // Send rule 1: real-time while RT_PCK has not reached l.
  if (!queues_[0][p].empty() && rt_pck_[p] < quota.l) {
    return TrafficClass::kRealTime;
  }
  // Send rule 2: non-real-time only when the real-time buffer is empty or
  // the real-time quota is exhausted, and NRT_PCK has not reached k.
  const bool rt_gate = queues_[0][p].empty() || rt_pck_[p] == quota.l;
  if (!rt_gate || nrt_pck_[p] >= quota.k) return std::nullopt;

  // Diffserv split (Section 2.3): Assured traffic draws on the k1 share
  // with priority over best-effort; best-effort uses the remainder.  With
  // k1 = 0 the assured queue competes as plain best-effort-priority class.
  const std::uint32_t k1 = k1_assured_[p];
  const bool assured_allowed =
      !queues_[1][p].empty() && (k1 == 0 || assured_sent_[p] < k1);
  if (assured_allowed) return TrafficClass::kAssured;

  // With the split enabled, leftover k1 authorizations are a reservation for
  // Assured traffic and are not usable by best-effort.
  const std::uint32_t k2 = quota.k - k1;
  const std::uint32_t be_sent = nrt_pck_[p] - assured_sent_[p];
  if (!queues_[2][p].empty() && (k1 == 0 || be_sent < k2)) {
    return TrafficClass::kBestEffort;
  }
  return std::nullopt;
}

traffic::Packet SlotKernel::take_for_transmit(std::size_t p,
                                              TrafficClass cls) {
  traffic::PacketRing& queue = queues_[static_cast<std::size_t>(cls)][p];
  assert(!queue.empty());
  traffic::Packet packet = std::move(queue.front());
  queue.pop_front();
  if (cls == TrafficClass::kRealTime) {
    assert(rt_pck_[p] < quota_[p].l);
    ++rt_pck_[p];
  } else {
    assert(nrt_pck_[p] < quota_[p].k);
    ++nrt_pck_[p];
    if (cls == TrafficClass::kAssured) ++assured_sent_[p];
  }
  refresh_eligible(p);
  return packet;
}

bool SlotKernel::enqueue(std::size_t p, traffic::Packet&& packet) {
  traffic::PacketRing& queue =
      queues_[static_cast<std::size_t>(packet.cls)][p];
  if (queue.size() >= queue_capacity_) {
    ++drops_[p];
    return false;
  }
  queue.push_back(std::move(packet));
  refresh_eligible(p);
  return true;
}

const traffic::Packet* SlotKernel::peek(std::size_t p,
                                        TrafficClass cls) const {
  const traffic::PacketRing& queue =
      queues_[static_cast<std::size_t>(cls)][p];
  return queue.empty() ? nullptr : &queue.front();
}

void SlotKernel::clear_queues(std::size_t p) {
  for (auto& column : queues_) column[p].clear();
  refresh_eligible(p);
}

void SlotKernel::set_quota(std::size_t p, Quota quota) noexcept {
  quota_[p] = quota;
  rt_pck_[p] = std::min(rt_pck_[p], quota.l);
  nrt_pck_[p] = std::min(nrt_pck_[p], quota.k);
  assured_sent_[p] = std::min(assured_sent_[p], nrt_pck_[p]);
  k1_assured_[p] = std::min(k1_assured_[p], quota.k);
  refresh_eligible(p);
}

std::uint64_t SlotKernel::frames_in_flight() const noexcept {
  std::uint64_t in_flight = 0;
  for (const std::uint32_t count : link_count_) in_flight += count;
  for (const LinkFrame& reg : transit_) {
    if (reg.busy) ++in_flight;
  }
  return in_flight;
}

}  // namespace wrt::wrtring
