#include "wrtring/recovery_fsm.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"
#include "wrtring/engine.hpp"

namespace wrt::wrtring {

RecoveryFsm::Decision RecoveryFsm::transition(RecoveryState state,
                                              RecoveryRequest request,
                                              const RecoveryTuning& tuning,
                                              bool guard_active) noexcept {
  using S = RecoveryState;
  using R = RecoveryRequest;
  using A = RecoveryAction;
  const bool guarded = tuning.guard_slots > 0;

  switch (request) {
    case R::kSignalFail:
      // A fresh failure indication.  Inside the guard window it is a stale
      // echo of the event just survived; during an active recovery it is a
      // duplicate of the request already in flight.  A forced switch does
      // not shadow real failures elsewhere in the ring.
      if (guard_active) return {state, A::kSuppress};
      if (state == S::kProtection) return {state, A::kSuppress};
      if (state == S::kIdle || state == S::kPending) {
        return {S::kProtection, A::kStartRecovery};
      }
      return {state, A::kStartRecovery};  // kForcedSwitch: handle normally
    case R::kGracefulLeave:
      // Voluntary exits are planned churn, never suppressed; the guard
      // window protects against stale failure claims, not intent.
      if (state == S::kForcedSwitch) return {state, A::kNone};
      return {S::kProtection, A::kNone};
    case R::kRecoveryComplete:
      if (state == S::kProtection) {
        return {guarded ? S::kPending : S::kIdle,
                guarded ? A::kStartGuard : A::kNone};
      }
      // Completion under a forced switch keeps the FS state; elsewhere it
      // is unsolicited bookkeeping.
      if (state == S::kForcedSwitch) {
        return {state, guarded ? A::kStartGuard : A::kNone};
      }
      return {state, A::kNone};
    case R::kRecDeadline:
      // Only an active recovery has a deadline to overrun.
      if (state == S::kProtection || state == S::kForcedSwitch) {
        return {state, A::kStartRebuild};
      }
      return {state, A::kNone};
    case R::kRingUnrepairable:
      // The engine reports a hard structural fact; re-form regardless of
      // where the FSM thinks it is.
      if (state == S::kForcedSwitch) return {state, A::kStartRebuild};
      return {S::kProtection, A::kStartRebuild};
    case R::kRebuildComplete:
      if (state == S::kProtection || state == S::kPending) {
        return {guarded ? S::kPending : S::kIdle,
                guarded ? A::kStartGuard : A::kNone};
      }
      if (state == S::kForcedSwitch) {
        return {state, guarded ? A::kStartGuard : A::kNone};
      }
      return {state, A::kNone};
    case R::kForcedSwitch:
      if (state == S::kForcedSwitch) return {state, A::kSuppress};
      return {S::kForcedSwitch, A::kNone};
    case R::kClearForced:
      if (state != S::kForcedSwitch) return {state, A::kNone};
      if (tuning.wtb_slots > 0) return {S::kPending, A::kArmWtb};
      return {guard_active ? S::kPending : S::kIdle, A::kQueueRejoin};
    case R::kWtrExpire:
    case R::kWtbExpire:
      // Hold-offs are per-candidate and may lapse in any state; admission
      // is always safe (the rejoin goes through the normal RAP handshake).
      return {state, A::kQueueRejoin};
    case R::kGuardExpire:
      if (state == S::kPending) return {S::kIdle, A::kNone};
      return {state, A::kNone};
  }
  return {state, A::kNone};
}

void RecoveryFsm::enter(RecoveryState next, Tick now) {
  (void)now;
  if (next == state_) return;
  state_ = next;
  ++transitions_;
  WRT_COUNT(kRecoveryFsmTransitions);
}

void RecoveryFsm::open_guard(Tick now) {
  if (tuning_.guard_slots <= 0) return;
  guard_until_ = now + slots_to_ticks(tuning_.guard_slots);
}

void RecoveryFsm::record_mttr(double mttr_slots) {
  if (mttr_slots < 0.0) return;
  if (mttr_samples_.size() < kMaxMttrSamples) {
    mttr_samples_.push_back(mttr_slots);
  }
  WRT_OBSERVE(kRecoveryMttrSlots, mttr_slots);
}

bool RecoveryFsm::on_signal_fail(NodeId detector, NodeId accused, Tick now) {
  const Decision d =
      transition(state_, RecoveryRequest::kSignalFail, tuning_,
                 guard_active(now));
  if (d.action == RecoveryAction::kSuppress) {
    ++stale_rec_suppressed_;
    WRT_COUNT(kStaleRecSuppressed);
    if (accused == last_failed_ && last_failed_ != kInvalidNode) {
      ++duplicate_requests_dropped_;
    }
    enter(d.next, now);
    return false;
  }
  if (guard_active(now)) accepted_sf_during_guard_ = true;  // auditor trap
  last_failed_ = accused;
  last_origin_ = detector;
  enter(d.next, now);
  // wrt-lint-allow(recovery-side-effect): the FSM IS the decision funnel
  if (engine_ != nullptr) engine_->start_recovery(detector);
  return true;
}

void RecoveryFsm::on_graceful_leave(NodeId origin, NodeId leaver, Tick now) {
  const Decision d = transition(state_, RecoveryRequest::kGracefulLeave,
                                tuning_, guard_active(now));
  last_failed_ = leaver;
  last_origin_ = origin;
  enter(d.next, now);
}

void RecoveryFsm::on_recovery_complete(Tick now, double mttr_slots) {
  const Decision d = transition(state_, RecoveryRequest::kRecoveryComplete,
                                tuning_, guard_active(now));
  record_mttr(mttr_slots);
  last_failed_ = kInvalidNode;
  last_origin_ = kInvalidNode;
  if (d.action == RecoveryAction::kStartGuard) open_guard(now);
  enter(d.next, now);
}

void RecoveryFsm::on_rec_deadline(Tick now) {
  const Decision d = transition(state_, RecoveryRequest::kRecDeadline,
                                tuning_, guard_active(now));
  enter(d.next, now);
  if (d.action == RecoveryAction::kStartRebuild && engine_ != nullptr) {
    // wrt-lint-allow(recovery-side-effect): FSM-sanctioned rebuild dispatch
    engine_->start_rebuild();
  }
}

void RecoveryFsm::on_ring_unrepairable(Tick now) {
  const Decision d = transition(state_, RecoveryRequest::kRingUnrepairable,
                                tuning_, guard_active(now));
  enter(d.next, now);
  if (d.action == RecoveryAction::kStartRebuild && engine_ != nullptr) {
    // wrt-lint-allow(recovery-side-effect): FSM-sanctioned rebuild dispatch
    engine_->start_rebuild();
  }
}

void RecoveryFsm::on_rebuild_complete(Tick now, double mttr_slots) {
  const Decision d = transition(state_, RecoveryRequest::kRebuildComplete,
                                tuning_, guard_active(now));
  record_mttr(mttr_slots);
  last_failed_ = kInvalidNode;
  last_origin_ = kInvalidNode;
  if (d.action == RecoveryAction::kStartGuard) open_guard(now);
  enter(d.next, now);
}

void RecoveryFsm::on_stale_rec_cancelled(Tick now) {
  ++stale_rec_suppressed_;
  WRT_COUNT(kStaleRecSuppressed);
  last_failed_ = kInvalidNode;
  last_origin_ = kInvalidNode;
  // The cancellation ends the protection episode the same way a completion
  // does: guard against the next echo.
  open_guard(now);
}

RecoveryFsm::Admit RecoveryFsm::on_station_cut(NodeId node, Quota quota,
                                               NodeId anchor,
                                               std::uint32_t k1, bool forced,
                                               Tick now) {
  if (!forced && tuning_.wtr_slots <= 0 && !tuning_.revertive) {
    return Admit::kNow;  // legacy immediate-rejoin path, bit-identical
  }
  if (tracks_rejoin(node)) return Admit::kHeld;  // already waiting
  RejoinCandidate candidate;
  candidate.node = node;
  candidate.quota = quota;
  candidate.anchor = anchor;
  candidate.k1 = k1;
  candidate.forced = forced;
  candidate.healthy_since = kNeverTick;  // tick() starts the clock
  candidates_.push_back(candidate);
  if (!forced && tuning_.wtr_slots > 0) {
    ++wtr_holdoffs_;
    WRT_COUNT(kWtrHoldoffs);
  }
  (void)now;
  return Admit::kHeld;
}

bool RecoveryFsm::tracks_rejoin(NodeId node) const noexcept {
  for (const RejoinCandidate& c : candidates_) {
    if (c.node == node) return true;
  }
  return false;
}

bool RecoveryFsm::take_revertive_anchor(NodeId node, NodeId* anchor,
                                        std::uint32_t* k1) {
  if (!tuning_.revertive) return false;
  const auto it = revertive_memory_.find(node);
  if (it == revertive_memory_.end()) return false;
  *anchor = it->second.anchor;
  *k1 = it->second.k1;
  revertive_memory_.erase(node);
  return true;
}

void RecoveryFsm::record_revert_outcome(NodeId node, NodeId anchor,
                                        std::uint64_t membership_epoch) {
  last_revert_ = {node, anchor, membership_epoch};
}

bool RecoveryFsm::on_forced_switch(NodeId node, Tick now) {
  const Decision d = transition(state_, RecoveryRequest::kForcedSwitch,
                                tuning_, guard_active(now));
  if (d.action == RecoveryAction::kSuppress) {
    ++duplicate_requests_dropped_;
    return false;
  }
  forced_ = node;
  enter(d.next, now);
  return true;
}

void RecoveryFsm::on_clear_forced(NodeId node, Tick now) {
  if (state_ != RecoveryState::kForcedSwitch || node != forced_) return;
  const Decision d = transition(state_, RecoveryRequest::kClearForced,
                                tuning_, guard_active(now));
  forced_ = kInvalidNode;
  for (RejoinCandidate& c : candidates_) {
    if (c.node == node && c.forced) {
      c.cleared = true;
      c.healthy_since = kNeverTick;  // WTB clock starts at the next tick
    }
  }
  if (d.action == RecoveryAction::kQueueRejoin) {
    // No WTB hold-off configured: admit immediately.
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
      if (candidates_[i].node == node) {
        admit(candidates_[i], now);
        candidates_.erase(candidates_.begin() +
                          static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
  }
  enter(d.next, now);
}

void RecoveryFsm::admit(RejoinCandidate& candidate, Tick now) {
  const std::int64_t healthy_slots =
      candidate.healthy_since == kNeverTick
          ? 0
          : ticks_to_slots(now - candidate.healthy_since);
  const std::int64_t hold =
      candidate.forced ? tuning_.wtb_slots : tuning_.wtr_slots;
  const std::int64_t slack = healthy_slots - hold;
  if (slack < min_readmit_slack_slots_) min_readmit_slack_slots_ = slack;
  if (tuning_.revertive) {
    revertive_memory_[candidate.node] = candidate;
  }
  if (engine_ != nullptr) {
    engine_->queue_rejoin(candidate.node, candidate.quota);
  }
}

void RecoveryFsm::tick(Tick now) {
  // Guard expiry: clears the window and the de-dup memory with it.
  if (guard_until_ != kNeverTick && now >= guard_until_) {
    guard_until_ = kNeverTick;
    const Decision d = transition(state_, RecoveryRequest::kGuardExpire,
                                  tuning_, false);
    last_failed_ = kInvalidNode;
    last_origin_ = kInvalidNode;
    enter(d.next, now);
  }

  if (candidates_.empty()) return;
  for (std::size_t i = 0; i < candidates_.size();) {
    RejoinCandidate& c = candidates_[i];
    if (c.forced && !c.cleared) {
      ++i;  // held until the operator clears the switch
      continue;
    }
    const bool healthy =
        engine_ == nullptr || engine_->station_active(c.node);
    if (!healthy) {
      if (c.healthy_since != kNeverTick) {
        c.healthy_since = kNeverTick;  // flapped: restart the hold-off
        ++wtr_flap_restarts_;
      }
      ++i;
      continue;
    }
    if (c.healthy_since == kNeverTick) c.healthy_since = now;
    const std::int64_t hold =
        c.forced ? tuning_.wtb_slots : tuning_.wtr_slots;
    if (ticks_to_slots(now - c.healthy_since) >= hold) {
      const Decision d = transition(
          state_,
          c.forced ? RecoveryRequest::kWtbExpire : RecoveryRequest::kWtrExpire,
          tuning_, guard_active(now));
      admit(c, now);
      enter(d.next, now);
      candidates_.erase(candidates_.begin() +
                        static_cast<std::ptrdiff_t>(i));
      continue;
    }
    ++i;
  }
}

}  // namespace wrt::wrtring
