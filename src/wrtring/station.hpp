// Per-station MAC state: the queues, the quota counters, and the two
// protocol decisions of Section 2.2 — the Send algorithm and the SAT
// algorithm's satisfied/not-satisfied predicate.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "traffic/traffic.hpp"
#include "util/types.hpp"

namespace wrt::check {
struct EngineTestHook;  // test-only state corruption (src/check/)
}  // namespace wrt::check

namespace wrt::wrtring {

/// Section 2.2, verbatim:
///   Send 1. A station can send real-time packets only if RT_PCK < l  [sic:
///           the text says "not greater than l" before increment, i.e. it
///           may transmit while RT_PCK < l and stops at l].
///   Send 2. Non-real-time only if NRT_PCK < k and (RT queue empty or
///           RT_PCK == l).
///   SAT  1. forward if satisfied (RT_PCK == l or RT queue empty);
///   SAT  2. hold until satisfied; counters cleared on SAT release.
class Station final {
 public:
  Station() = default;
  Station(NodeId id, Quota quota, std::uint32_t k1_assured,
          std::size_t queue_capacity);

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] Quota quota() const noexcept { return quota_; }

  /// Renegotiates the quota.  When it shrinks below what was already
  /// transmitted this round, the counters are clamped to the new quota —
  /// otherwise the satisfied-predicate (RT_PCK == l) could never fire and
  /// the station would seize the SAT with no way to release it.
  void set_quota(Quota quota) noexcept;

  /// Per-station Diffserv split (Section 2.3: "any single station can
  /// decide the number of classes of services to implement... without
  /// affecting and without being affected by the behavior of the other
  /// stations").  Precondition: k1 <= quota().k.
  void set_k1_assured(std::uint32_t k1) noexcept;
  [[nodiscard]] std::uint32_t k1_assured() const noexcept {
    return k1_assured_;
  }

  /// Enqueues an arriving packet into its class queue; returns false (and
  /// counts a drop) when the class queue is full.  On failure the caller's
  /// packet is left untouched — the move is committed only on acceptance —
  /// so rejected packets can still be attributed in drop accounting.
  bool enqueue(traffic::Packet&& packet);
  bool enqueue(const traffic::Packet& packet) {
    return enqueue(traffic::Packet(packet));
  }

  /// Number of real-time packets currently queued (the `x` of Theorem 3).
  [[nodiscard]] std::size_t rt_queue_depth() const noexcept {
    return queues_[0].size();
  }
  [[nodiscard]] std::size_t queue_depth(TrafficClass cls) const noexcept {
    return queues_[static_cast<std::size_t>(cls)].size();
  }
  [[nodiscard]] std::uint64_t queue_drops() const noexcept { return drops_; }

  /// Send algorithm: picks the packet this station would transmit into an
  /// empty slot right now, honouring quota counters, class priority
  /// (real-time > assured > best-effort) and the Diffserv k1/k2 split.
  /// Returns nullopt when nothing may be sent.  Does NOT pop the packet.
  [[nodiscard]] std::optional<TrafficClass> eligible_class() const;

  /// Pops and returns the head packet of `cls`, updating RT_PCK/NRT_PCK.
  /// Precondition: eligible_class() returned `cls`.
  traffic::Packet take_for_transmit(TrafficClass cls);

  /// SAT algorithm predicate: satisfied iff RT_PCK == l or RT queue empty.
  [[nodiscard]] bool satisfied() const noexcept;

  /// Called when this station releases the SAT: clears RT_PCK and NRT_PCK
  /// (new authorizations for the round that begins now).
  void on_sat_release() noexcept;

  [[nodiscard]] std::uint32_t rt_pck() const noexcept { return rt_pck_; }
  [[nodiscard]] std::uint32_t nrt_pck() const noexcept { return nrt_pck_; }

  /// Peeks the head packet of a class (for access-delay accounting).
  [[nodiscard]] const traffic::Packet* peek(TrafficClass cls) const;

  /// Drops every queued packet (station leaving the ring).
  void clear_queues();

 private:
  friend struct ::wrt::check::EngineTestHook;

  NodeId id_ = kInvalidNode;
  Quota quota_{1, 1};
  std::uint32_t k1_assured_ = 0;
  std::size_t queue_capacity_ = 4096;

  // Index by TrafficClass value: 0 = RT, 1 = assured, 2 = BE.
  std::deque<traffic::Packet> queues_[3];

  std::uint32_t rt_pck_ = 0;        ///< RT packets sent since last SAT release
  std::uint32_t nrt_pck_ = 0;       ///< non-RT packets sent since last release
  std::uint32_t assured_sent_ = 0;  ///< portion of nrt_pck_ that was Assured
  std::uint64_t drops_ = 0;
};

}  // namespace wrt::wrtring
