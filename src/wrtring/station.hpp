// Per-station MAC view: the queues, the quota counters, and the two
// protocol decisions of Section 2.2 — the Send algorithm and the SAT
// algorithm's satisfied/not-satisfied predicate.
//
// Since the structure-of-arrays refactor the state itself lives in the
// engine's SlotKernel (one dense column per field, indexed by ring
// position); a Station is a value-type view — a (kernel, position) handle —
// that keeps the object-per-station API for tests, tools and cold paths
// while the per-slot hot path sweeps the arrays directly.  Copying a
// Station copies the handle, not the state, and a view is invalidated by
// any membership change that moves its position.
#pragma once

#include <cstdint>
#include <optional>

#include "traffic/traffic.hpp"
#include "util/types.hpp"

namespace wrt::wrtring {

class SlotKernel;

/// Section 2.2, verbatim:
///   Send 1. A station can send real-time packets only if RT_PCK < l  [sic:
///           the text says "not greater than l" before increment, i.e. it
///           may transmit while RT_PCK < l and stops at l].
///   Send 2. Non-real-time only if NRT_PCK < k and (RT queue empty or
///           RT_PCK == l).
///   SAT  1. forward if satisfied (RT_PCK == l or RT queue empty);
///   SAT  2. hold until satisfied; counters cleared on SAT release.
class Station final {
 public:
  Station() = default;
  Station(SlotKernel* kernel, std::uint32_t position)
      : kernel_(kernel), position_(position) {}

  [[nodiscard]] NodeId id() const noexcept;
  [[nodiscard]] Quota quota() const noexcept;

  /// Renegotiates the quota.  When it shrinks below what was already
  /// transmitted this round, the counters are clamped to the new quota —
  /// otherwise the satisfied-predicate (RT_PCK == l) could never fire and
  /// the station would seize the SAT with no way to release it.
  void set_quota(Quota quota) noexcept;

  /// Per-station Diffserv split (Section 2.3: "any single station can
  /// decide the number of classes of services to implement... without
  /// affecting and without being affected by the behavior of the other
  /// stations").  Precondition: k1 <= quota().k.
  void set_k1_assured(std::uint32_t k1) noexcept;
  [[nodiscard]] std::uint32_t k1_assured() const noexcept;

  /// Enqueues an arriving packet into its class queue; returns false (and
  /// counts a drop) when the class queue is full.  On failure the caller's
  /// packet is left untouched — the move is committed only on acceptance —
  /// so rejected packets can still be attributed in drop accounting.
  bool enqueue(traffic::Packet&& packet);
  bool enqueue(const traffic::Packet& packet) {
    return enqueue(traffic::Packet(packet));
  }

  /// Number of real-time packets currently queued (the `x` of Theorem 3).
  [[nodiscard]] std::size_t rt_queue_depth() const noexcept {
    return queue_depth(TrafficClass::kRealTime);
  }
  [[nodiscard]] std::size_t queue_depth(TrafficClass cls) const noexcept;
  [[nodiscard]] std::uint64_t queue_drops() const noexcept;

  /// Send algorithm: picks the packet this station would transmit into an
  /// empty slot right now, honouring quota counters, class priority
  /// (real-time > assured > best-effort) and the Diffserv k1/k2 split.
  /// Returns nullopt when nothing may be sent.  Does NOT pop the packet.
  [[nodiscard]] std::optional<TrafficClass> eligible_class() const;

  /// Pops and returns the head packet of `cls`, updating RT_PCK/NRT_PCK.
  /// Precondition: eligible_class() returned `cls`.
  traffic::Packet take_for_transmit(TrafficClass cls);

  /// SAT algorithm predicate: satisfied iff RT_PCK == l or RT queue empty.
  [[nodiscard]] bool satisfied() const noexcept;

  /// Called when this station releases the SAT: clears RT_PCK and NRT_PCK
  /// (new authorizations for the round that begins now).
  void on_sat_release() noexcept;

  [[nodiscard]] std::uint32_t rt_pck() const noexcept;
  [[nodiscard]] std::uint32_t nrt_pck() const noexcept;

  /// Peeks the head packet of a class (for access-delay accounting).
  [[nodiscard]] const traffic::Packet* peek(TrafficClass cls) const;

  /// Drops every queued packet (station leaving the ring).
  void clear_queues();

 private:
  // wrt-lint-allow(cross-shard-handle): Station is the non-owning view over its own kernel's columns (same shard)
  SlotKernel* kernel_ = nullptr;
  std::uint32_t position_ = 0;
};

}  // namespace wrt::wrtring
