// Gateway between the WRT-Ring ad hoc network and a Diffserv LAN
// (Section 2.3, Figure 2).
//
// Station G1 belongs to the ring like any other station; what makes it a
// gateway is the reservation bookkeeping: before a real-time stream crosses
// the boundary, the requesting side asks G1 for bandwidth and G1 checks the
// *other* network — the ring's Theorem-1 bound for LAN->ring streams, the
// LAN's Premium capacity for ring->LAN streams.  Only if the check passes is
// the reservation installed and the stream admitted.
#pragma once

#include <cstdint>
#include <vector>

#include "diffserv/diffserv.hpp"
#include "util/result.hpp"
#include "util/types.hpp"
#include "wrtring/engine.hpp"

namespace wrt::wrtring {

/// A real-time stream reservation crossing the gateway.
struct Reservation {
  FlowId flow = kInvalidFlow;
  double rate_per_slot = 0.0;  ///< packets per slot
  bool lan_to_ring = true;     ///< direction
  std::uint32_t granted_l = 0; ///< extra l quota applied to the carrier
  /// The in-ring station whose l quota carries the stream: G1 for
  /// ring-bound reservations, the source station for federation egress
  /// reservations made with reserve_ring_capacity().
  NodeId carrier = kInvalidNode;
  /// True when the reservation also holds backbone Premium budget
  /// (federation ingress reservations).
  bool backbone_premium = false;
};

class Gateway {
 public:
  /// `engine` and `lan` must outlive the gateway.  `gateway_station` is G1's
  /// node id in the ring.
  Gateway(Engine* engine, diffserv::LanModel* lan, NodeId gateway_station);

  /// Federation variant: G1 bridges its ring to a Diffserv backbone
  /// segment instead of a terminal LAN.  Reservations made through
  /// reserve_backbone_to_ring() charge both the ring (Theorem-1 check at
  /// G1) and the segment's Premium budget.  `engine` and `backbone` must
  /// outlive the gateway.
  Gateway(Engine* engine, diffserv::BackboneSegment* backbone,
          NodeId gateway_station);

  /// LAN -> ring: "the LAN asks G1 for the needed bandwidth to transmit the
  /// real-time stream towards the ad hoc network.  Station G1 is controlled
  /// by WRT-Ring, hence the protocol checks whether it is able to reserve
  /// the required bandwidth" (Section 2.3).  The rate is converted into the
  /// extra l-quota G1 would need per SAT round and checked against the
  /// ring's admission bound.
  [[nodiscard]] util::Result<Reservation> reserve_lan_to_ring(
      FlowId flow, double rate_per_slot);

  /// Ring -> LAN: "G1 asks the Diffserv architecture if the necessary
  /// bandwidth can be guaranteed inside the LAN."
  [[nodiscard]] util::Result<Reservation> reserve_ring_to_lan(
      FlowId flow, double rate_per_slot);

  /// Federation egress leg: admit a crossing stream whose in-ring
  /// transmitter is `carrier` (the stream's source station).  Same
  /// Theorem-1 admission check and l-quota grant as reserve_lan_to_ring,
  /// applied to the carrier instead of G1; the backbone and ingress-ring
  /// legs are checked by the destination shard's gateway.
  [[nodiscard]] util::Result<Reservation> reserve_ring_capacity(
      NodeId carrier, FlowId flow, double rate_per_slot);

  /// Federation ingress leg: backbone -> ring.  Admits only if the ring
  /// can grant G1 the extra l quota (G1 relays backbone egress into the
  /// ring) AND the backbone segment's Premium class has budget for the
  /// stream; both are reserved atomically.  Requires the backbone
  /// constructor.
  [[nodiscard]] util::Result<Reservation> reserve_backbone_to_ring(
      FlowId flow, double rate_per_slot);

  /// Tears a reservation down, returning its resources (G1's extra l quota
  /// for LAN->ring streams; LAN Premium capacity for ring->LAN streams).
  [[nodiscard]] util::Status release(FlowId flow);

  /// Forwards a ring-delivered packet into the LAN (for ring->LAN flows).
  void forward_to_lan(const traffic::Packet& packet, Tick now);

  [[nodiscard]] const std::vector<Reservation>& reservations() const noexcept {
    return reservations_;
  }

  /// Total reserved ring-bound Premium rate (packets/slot).
  [[nodiscard]] double reserved_into_ring() const noexcept;

  [[nodiscard]] NodeId station() const noexcept { return station_; }

 private:
  /// Extra l-quota per SAT round needed to carry `rate_per_slot` through
  /// G1, using the expected rotation time (Prop 3) as the round length.
  [[nodiscard]] std::uint32_t quota_for_rate(double rate_per_slot) const;

  /// Installs `extra_l` additional l quota at `carrier`.
  void grant_quota(NodeId carrier, std::uint32_t extra_l);

  // wrt-lint-allow(cross-shard-handle): gateway bridges its OWN ring; other rings are reached via value-type LAN frames
  Engine* engine_;
  diffserv::LanModel* lan_;            ///< exactly one of lan_/backbone_ set
  diffserv::BackboneSegment* backbone_ = nullptr;
  NodeId station_;
  std::vector<Reservation> reservations_;
};

}  // namespace wrt::wrtring
