// Gateway between the WRT-Ring ad hoc network and a Diffserv LAN
// (Section 2.3, Figure 2).
//
// Station G1 belongs to the ring like any other station; what makes it a
// gateway is the reservation bookkeeping: before a real-time stream crosses
// the boundary, the requesting side asks G1 for bandwidth and G1 checks the
// *other* network — the ring's Theorem-1 bound for LAN->ring streams, the
// LAN's Premium capacity for ring->LAN streams.  Only if the check passes is
// the reservation installed and the stream admitted.
#pragma once

#include <cstdint>
#include <vector>

#include "diffserv/diffserv.hpp"
#include "util/result.hpp"
#include "util/types.hpp"
#include "wrtring/engine.hpp"

namespace wrt::wrtring {

/// A real-time stream reservation crossing the gateway.
struct Reservation {
  FlowId flow = kInvalidFlow;
  double rate_per_slot = 0.0;  ///< packets per slot
  bool lan_to_ring = true;     ///< direction
  std::uint32_t granted_l = 0; ///< extra l quota applied to G1 (ring-bound)
};

class Gateway {
 public:
  /// `engine` and `lan` must outlive the gateway.  `gateway_station` is G1's
  /// node id in the ring.
  Gateway(Engine* engine, diffserv::LanModel* lan, NodeId gateway_station);

  /// LAN -> ring: "the LAN asks G1 for the needed bandwidth to transmit the
  /// real-time stream towards the ad hoc network.  Station G1 is controlled
  /// by WRT-Ring, hence the protocol checks whether it is able to reserve
  /// the required bandwidth" (Section 2.3).  The rate is converted into the
  /// extra l-quota G1 would need per SAT round and checked against the
  /// ring's admission bound.
  [[nodiscard]] util::Result<Reservation> reserve_lan_to_ring(
      FlowId flow, double rate_per_slot);

  /// Ring -> LAN: "G1 asks the Diffserv architecture if the necessary
  /// bandwidth can be guaranteed inside the LAN."
  [[nodiscard]] util::Result<Reservation> reserve_ring_to_lan(
      FlowId flow, double rate_per_slot);

  /// Tears a reservation down, returning its resources (G1's extra l quota
  /// for LAN->ring streams; LAN Premium capacity for ring->LAN streams).
  [[nodiscard]] util::Status release(FlowId flow);

  /// Forwards a ring-delivered packet into the LAN (for ring->LAN flows).
  void forward_to_lan(const traffic::Packet& packet, Tick now);

  [[nodiscard]] const std::vector<Reservation>& reservations() const noexcept {
    return reservations_;
  }

  /// Total reserved ring-bound Premium rate (packets/slot).
  [[nodiscard]] double reserved_into_ring() const noexcept;

  [[nodiscard]] NodeId station() const noexcept { return station_; }

 private:
  /// Extra l-quota per SAT round needed to carry `rate_per_slot` through
  /// G1, using the expected rotation time (Prop 3) as the round length.
  [[nodiscard]] std::uint32_t quota_for_rate(double rate_per_slot) const;

  // wrt-lint-allow(cross-shard-handle): gateway bridges its OWN ring; other rings are reached via value-type LAN frames
  Engine* engine_;
  diffserv::LanModel* lan_;
  NodeId station_;
  std::vector<Reservation> reservations_;
};

}  // namespace wrt::wrtring
