// Human-readable engine reports.
//
// Examples and operational tooling repeatedly print the same digest of an
// engine's state: ring composition, the analytical guarantees currently in
// force, per-class delivery quality, and the recovery history.  These
// builders render that digest as util::Table objects (printable as text,
// CSV or markdown) so every binary shows the same numbers the same way.
#pragma once

#include "tpt/engine.hpp"
#include "util/table.hpp"
#include "wrtring/engine.hpp"

namespace wrt::wrtring {

/// Ring composition + the bounds currently in force (Theorems 1/3).
[[nodiscard]] util::Table guarantee_report(const Engine& engine);

/// Per-class delivery quality (delivered, delays, deadline misses, drops).
[[nodiscard]] util::Table traffic_report(const Engine& engine);

/// Topology-change and recovery history (losses, cut-outs, rebuilds,
/// joins, leaves, with latency statistics).
[[nodiscard]] util::Table resilience_report(const Engine& engine);

/// Per-class delivery quality for the TPT baseline (same columns as
/// traffic_report, so the two print side by side).
[[nodiscard]] util::Table traffic_report(const tpt::TptEngine& engine);

}  // namespace wrt::wrtring
