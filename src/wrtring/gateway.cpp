#include "wrtring/gateway.hpp"

#include <cassert>
#include <cmath>

#include "analysis/bounds.hpp"

namespace wrt::wrtring {

Gateway::Gateway(Engine* engine, diffserv::LanModel* lan,
                 NodeId gateway_station)
    : engine_(engine), lan_(lan), station_(gateway_station) {
  assert(engine_ != nullptr);
  assert(lan_ != nullptr);
}

Gateway::Gateway(Engine* engine, diffserv::BackboneSegment* backbone,
                 NodeId gateway_station)
    : engine_(engine),
      lan_(nullptr),
      backbone_(backbone),
      station_(gateway_station) {
  assert(engine_ != nullptr);
  assert(backbone_ != nullptr);
}

std::uint32_t Gateway::quota_for_rate(double rate_per_slot) const {
  const analysis::RingParams params = engine_->ring_params();
  const auto round_slots =
      static_cast<double>(analysis::expected_sat_time(params));
  // Carrying rate R packets/slot through a round of T slots needs ceil(R*T)
  // transmission authorizations per round.
  return static_cast<std::uint32_t>(std::ceil(rate_per_slot * round_slots));
}

util::Result<Reservation> Gateway::reserve_lan_to_ring(FlowId flow,
                                                       double rate_per_slot) {
  if (rate_per_slot <= 0.0) {
    return util::Error::invalid_argument("rate must be positive");
  }
  const std::uint32_t extra_l = quota_for_rate(rate_per_slot);
  if (!engine_->admission_allows(Quota{extra_l, 0})) {
    return util::Error::admission_rejected(
        "ring cannot reserve " + std::to_string(extra_l) +
        " extra real-time authorizations per SAT round");
  }
  // Apply the grant: G1's l quota grows so the MAC can actually carry the
  // admitted stream ("the bandwidth is allocated", Section 2.3).
  grant_quota(station_, extra_l);
  Reservation reservation{flow, rate_per_slot, /*lan_to_ring=*/true,
                          extra_l, station_, /*backbone_premium=*/false};
  reservations_.push_back(reservation);
  return reservation;
}

void Gateway::grant_quota(NodeId carrier, std::uint32_t extra_l) {
  const Quota current = engine_->station(carrier).quota();
  engine_->set_station_quota(carrier, Quota{current.l + extra_l, current.k});
}

util::Result<Reservation> Gateway::reserve_ring_capacity(
    NodeId carrier, FlowId flow, double rate_per_slot) {
  if (rate_per_slot <= 0.0) {
    return util::Error::invalid_argument("rate must be positive");
  }
  const std::uint32_t extra_l = quota_for_rate(rate_per_slot);
  if (!engine_->admission_allows(Quota{extra_l, 0})) {
    return util::Error::admission_rejected(
        "egress ring cannot reserve " + std::to_string(extra_l) +
        " extra real-time authorizations per SAT round");
  }
  grant_quota(carrier, extra_l);
  Reservation reservation{flow, rate_per_slot, /*lan_to_ring=*/true,
                          extra_l, carrier, /*backbone_premium=*/false};
  reservations_.push_back(reservation);
  return reservation;
}

util::Result<Reservation> Gateway::reserve_backbone_to_ring(
    FlowId flow, double rate_per_slot) {
  assert(backbone_ != nullptr);
  if (rate_per_slot <= 0.0) {
    return util::Error::invalid_argument("rate must be positive");
  }
  const std::uint32_t extra_l = quota_for_rate(rate_per_slot);
  if (!engine_->admission_allows(Quota{extra_l, 0})) {
    return util::Error::admission_rejected(
        "ingress ring cannot reserve " + std::to_string(extra_l) +
        " extra real-time authorizations per SAT round");
  }
  if (!backbone_->can_reserve_premium(rate_per_slot)) {
    return util::Error::admission_rejected(
        "backbone Premium capacity exhausted");
  }
  grant_quota(station_, extra_l);
  backbone_->reserve_premium(rate_per_slot);
  Reservation reservation{flow, rate_per_slot, /*lan_to_ring=*/true,
                          extra_l, station_, /*backbone_premium=*/true};
  reservations_.push_back(reservation);
  return reservation;
}

util::Status Gateway::release(FlowId flow) {
  for (auto it = reservations_.begin(); it != reservations_.end(); ++it) {
    if (it->flow != flow) continue;
    if (it->lan_to_ring) {
      const NodeId carrier =
          it->carrier == kInvalidNode ? station_ : it->carrier;
      const Quota current = engine_->station(carrier).quota();
      const std::uint32_t restored =
          current.l >= it->granted_l ? current.l - it->granted_l : 0;
      engine_->set_station_quota(carrier, Quota{restored, current.k});
      if (it->backbone_premium) backbone_->release_premium(it->rate_per_slot);
    } else {
      lan_->release_premium(it->rate_per_slot);
    }
    reservations_.erase(it);
    return util::Status::success();
  }
  return util::Error::not_found("no reservation for that flow");
}

util::Result<Reservation> Gateway::reserve_ring_to_lan(FlowId flow,
                                                       double rate_per_slot) {
  if (rate_per_slot <= 0.0) {
    return util::Error::invalid_argument("rate must be positive");
  }
  if (!lan_->can_reserve_premium(rate_per_slot)) {
    return util::Error::admission_rejected(
        "LAN Premium capacity exhausted");
  }
  lan_->reserve_premium(rate_per_slot);
  Reservation reservation{flow, rate_per_slot, /*lan_to_ring=*/false, 0};
  reservations_.push_back(reservation);
  return reservation;
}

void Gateway::forward_to_lan(const traffic::Packet& packet, Tick now) {
  lan_->inject(packet, now);
}

double Gateway::reserved_into_ring() const noexcept {
  double total = 0.0;
  for (const auto& reservation : reservations_) {
    if (reservation.lan_to_ring) total += reservation.rate_per_slot;
  }
  return total;
}

}  // namespace wrt::wrtring
