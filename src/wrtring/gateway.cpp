#include "wrtring/gateway.hpp"

#include <cassert>
#include <cmath>

#include "analysis/bounds.hpp"

namespace wrt::wrtring {

Gateway::Gateway(Engine* engine, diffserv::LanModel* lan,
                 NodeId gateway_station)
    : engine_(engine), lan_(lan), station_(gateway_station) {
  assert(engine_ != nullptr);
  assert(lan_ != nullptr);
}

std::uint32_t Gateway::quota_for_rate(double rate_per_slot) const {
  const analysis::RingParams params = engine_->ring_params();
  const auto round_slots =
      static_cast<double>(analysis::expected_sat_time(params));
  // Carrying rate R packets/slot through a round of T slots needs ceil(R*T)
  // transmission authorizations per round.
  return static_cast<std::uint32_t>(std::ceil(rate_per_slot * round_slots));
}

util::Result<Reservation> Gateway::reserve_lan_to_ring(FlowId flow,
                                                       double rate_per_slot) {
  if (rate_per_slot <= 0.0) {
    return util::Error::invalid_argument("rate must be positive");
  }
  const std::uint32_t extra_l = quota_for_rate(rate_per_slot);
  if (!engine_->admission_allows(Quota{extra_l, 0})) {
    return util::Error::admission_rejected(
        "ring cannot reserve " + std::to_string(extra_l) +
        " extra real-time authorizations per SAT round");
  }
  // Apply the grant: G1's l quota grows so the MAC can actually carry the
  // admitted stream ("the bandwidth is allocated", Section 2.3).
  const Quota current = engine_->station(station_).quota();
  engine_->set_station_quota(station_,
                             Quota{current.l + extra_l, current.k});
  Reservation reservation{flow, rate_per_slot, /*lan_to_ring=*/true,
                          extra_l};
  reservations_.push_back(reservation);
  return reservation;
}

util::Status Gateway::release(FlowId flow) {
  for (auto it = reservations_.begin(); it != reservations_.end(); ++it) {
    if (it->flow != flow) continue;
    if (it->lan_to_ring) {
      const Quota current = engine_->station(station_).quota();
      const std::uint32_t restored =
          current.l >= it->granted_l ? current.l - it->granted_l : 0;
      engine_->set_station_quota(station_, Quota{restored, current.k});
    } else {
      lan_->release_premium(it->rate_per_slot);
    }
    reservations_.erase(it);
    return util::Status::success();
  }
  return util::Error::not_found("no reservation for that flow");
}

util::Result<Reservation> Gateway::reserve_ring_to_lan(FlowId flow,
                                                       double rate_per_slot) {
  if (rate_per_slot <= 0.0) {
    return util::Error::invalid_argument("rate must be positive");
  }
  if (!lan_->can_reserve_premium(rate_per_slot)) {
    return util::Error::admission_rejected(
        "LAN Premium capacity exhausted");
  }
  lan_->reserve_premium(rate_per_slot);
  Reservation reservation{flow, rate_per_slot, /*lan_to_ring=*/false, 0};
  reservations_.push_back(reservation);
  return reservation;
}

void Gateway::forward_to_lan(const traffic::Packet& packet, Tick now) {
  lan_->inject(packet, now);
}

double Gateway::reserved_into_ring() const noexcept {
  double total = 0.0;
  for (const auto& reservation : reservations_) {
    if (reservation.lan_to_ring) total += reservation.rate_per_slot;
  }
  return total;
}

}  // namespace wrt::wrtring
