#include "wrtring/shard.hpp"

#include <cassert>
#include <ctime>
#include <utility>

namespace wrt::wrtring {

namespace {

/// CPU time consumed by the calling thread, in nanoseconds.  Used for the
/// per-shard busy accounting: unlike a wall clock it is not inflated when
/// sibling workers preempt this one on a host with fewer cores than
/// shards, so Σ_epochs max_shard(busy) is the run's critical path — the
/// wall time an adequately-cored host would see.
[[nodiscard]] std::int64_t thread_cpu_ns() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

}  // namespace

FederationShard::FederationShard(std::uint32_t index,
                                 std::uint32_t shard_count,
                                 std::size_t backbone_hops,
                                 double backbone_service_rate,
                                 std::size_t backbone_queue_capacity,
                                 double backbone_premium_capacity)
    : index_(index),
      shard_count_(shard_count),
      backbone_(backbone_hops, backbone_service_rate,
                backbone_queue_capacity, backbone_premium_capacity) {}

std::size_t FederationShard::add_ring(std::uint32_t ring_index,
                                      NodeId gateway,
                                      std::unique_ptr<phy::Topology> topology,
                                      std::unique_ptr<Engine> engine) {
  const std::size_t slot = rings_.size();
  engine->set_delivery_tap(
      [this, slot](const traffic::Packet& packet, NodeId at, Tick now) {
        on_delivery(slot, packet, at, now);
      });
  rings_.push_back(RingSlot{ring_index, gateway, std::move(topology),
                            std::move(engine)});
  return slot;
}

void FederationShard::set_mailboxes(std::vector<Mailbox*> inbound,
                                    std::vector<Mailbox*> outbound) {
  assert(inbound.size() == shard_count_);
  assert(outbound.size() == shard_count_);
  inbound_mail_ = std::move(inbound);
  outbound_mail_ = std::move(outbound);
}

void FederationShard::add_outbound_route(FlowId flow,
                                         const OutboundRoute& route) {
  outbound_[flow] = route;
}

void FederationShard::add_inbound_route(FlowId flow,
                                        const InboundRoute& route) {
  inbound_[flow] = route;
}

traffic::Packet FederationShard::reconstruct(
    const FederationFrame& frame, const InboundRoute& route) const {
  traffic::Packet packet;
  packet.flow = frame.flow;
  packet.cls = frame.cls;
  packet.src = route.gateway;  // injected into the dst ring at G1
  packet.dst = route.dst_station;
  packet.created = frame.created;
  packet.deadline = frame.deadline;
  packet.sequence = frame.sequence;
  return packet;
}

void FederationShard::on_delivery(std::size_t slot,
                                  const traffic::Packet& packet, NodeId at,
                                  Tick now) {
  const RingSlot& ring = rings_[slot];
  if (at == ring.gateway) {
    const auto out = outbound_.find(packet.flow);
    if (out != outbound_.end() && out->second.src_ring == ring.ring_index) {
      const OutboundRoute& route = out->second;
      FederationFrame frame;
      frame.flow = packet.flow;
      frame.cls = packet.cls;
      frame.src_ring = ring.ring_index;
      frame.dst_ring = route.dst_ring;
      frame.dst_station = route.dst_station;
      frame.created = packet.created;
      frame.gateway_out = now;
      frame.deadline = packet.deadline;
      frame.sequence = packet.sequence;
      outbound_mail_[route.dst_shard]->post(frame);
      ++counters_.crossings_posted;
      return;
    }
  }
  const auto in = inbound_.find(packet.flow);
  if (in != inbound_.end() && in->second.ring_slot == slot &&
      at == in->second.dst_station) {
    ++counters_.crossings_delivered;
    const Tick delay = now - packet.created;
    if (packet.cls == TrafficClass::kRealTime) {
      rt_delay_ticks_.push_back(delay);
    } else {
      be_delay_ticks_.push_back(delay);
    }
  }
}

void FederationShard::run_epoch(Tick epoch_start, std::int64_t epoch_slots) {
  (void)epoch_start;  // engines keep their own clocks, in lockstep by design
  const std::int64_t t0 = thread_cpu_ns();

  // (1) Backbone egress buffered at the end of the previous epoch enters
  // its destination ring now, at the epoch boundary — the deterministic
  // injection point regardless of worker interleaving.
  for (const PendingInject& pending : pending_) {
    if (rings_[pending.ring_slot].engine->inject_packet(pending.packet)) {
      ++counters_.crossings_injected;
    } else {
      ++counters_.crossing_drops;  // dst gateway queue full
    }
  }
  pending_.clear();

  // (2) Frames posted by every shard last epoch, drained in producer-shard
  // order (fixed, so the backbone arrival order is thread-count
  // independent).
  for (std::uint32_t producer = 0; producer < shard_count_; ++producer) {
    for (const FederationFrame& frame : inbound_mail_[producer]->inbound()) {
      const auto route = inbound_.find(frame.flow);
      if (route == inbound_.end()) {
        ++counters_.crossing_drops;  // unroutable (no such crossing flow)
        continue;
      }
      backbone_.inject(reconstruct(frame, route->second));
      ++counters_.crossings_received;
    }
  }

  // (3) The backbone serves one slot per ring slot; whatever exits the
  // last hop this epoch waits for the next epoch boundary to enter its
  // destination ring (step 1 above).
  for (std::int64_t s = 0; s < epoch_slots; ++s) {
    egress_scratch_.clear();
    backbone_.step(egress_scratch_);
    for (traffic::Packet& packet : egress_scratch_) {
      const auto route = inbound_.find(packet.flow);
      if (route == inbound_.end()) {
        ++counters_.crossing_drops;
        continue;
      }
      pending_.push_back(PendingInject{route->second.ring_slot, packet});
    }
  }

  // (4) Every ring advances epoch_slots slots; gateway deliveries observed
  // by the taps post outbound frames into this shard's mailboxes.
  for (RingSlot& ring : rings_) ring.engine->run_slots(epoch_slots);

  const std::int64_t elapsed = thread_cpu_ns() - t0;
  last_epoch_busy_ns_ = elapsed;
  busy_ns_total_ += elapsed;
}

}  // namespace wrt::wrtring
