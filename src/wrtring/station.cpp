#include "wrtring/station.hpp"

#include <cassert>

#include "wrtring/soa_kernel.hpp"

namespace wrt::wrtring {

NodeId Station::id() const noexcept { return kernel_->ids_[position_]; }

Quota Station::quota() const noexcept { return kernel_->quota_[position_]; }

void Station::set_quota(Quota quota) noexcept {
  kernel_->set_quota(position_, quota);
}

void Station::set_k1_assured(std::uint32_t k1) noexcept {
  assert(k1 <= quota().k);
  kernel_->set_k1_assured(position_, k1);
}

std::uint32_t Station::k1_assured() const noexcept {
  return kernel_->k1_assured_[position_];
}

bool Station::enqueue(traffic::Packet&& packet) {
  return kernel_->enqueue(position_, std::move(packet));
}

std::size_t Station::queue_depth(TrafficClass cls) const noexcept {
  return kernel_->queue_depth(position_, cls);
}

std::uint64_t Station::queue_drops() const noexcept {
  return kernel_->drops_[position_];
}

std::optional<TrafficClass> Station::eligible_class() const {
  return kernel_->eligible_class(position_);
}

traffic::Packet Station::take_for_transmit(TrafficClass cls) {
  return kernel_->take_for_transmit(position_, cls);
}

bool Station::satisfied() const noexcept {
  return kernel_->satisfied(position_);
}

void Station::on_sat_release() noexcept {
  kernel_->on_sat_release(position_);
}

std::uint32_t Station::rt_pck() const noexcept {
  return kernel_->rt_pck_[position_];
}

std::uint32_t Station::nrt_pck() const noexcept {
  return kernel_->nrt_pck_[position_];
}

const traffic::Packet* Station::peek(TrafficClass cls) const {
  return kernel_->peek(position_, cls);
}

void Station::clear_queues() { kernel_->clear_queues(position_); }

}  // namespace wrt::wrtring
