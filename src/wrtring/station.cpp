#include "wrtring/station.hpp"

#include <algorithm>
#include <cassert>

namespace wrt::wrtring {

Station::Station(NodeId id, Quota quota, std::uint32_t k1_assured,
                 std::size_t queue_capacity)
    : id_(id),
      quota_(quota),
      k1_assured_(k1_assured),
      queue_capacity_(queue_capacity) {
  assert(k1_assured_ <= quota_.k);
}

void Station::set_quota(Quota quota) noexcept {
  quota_ = quota;
  rt_pck_ = std::min(rt_pck_, quota_.l);
  nrt_pck_ = std::min(nrt_pck_, quota_.k);
  assured_sent_ = std::min(assured_sent_, nrt_pck_);
  k1_assured_ = std::min(k1_assured_, quota_.k);
}

void Station::set_k1_assured(std::uint32_t k1) noexcept {
  assert(k1 <= quota_.k);
  k1_assured_ = k1;
}

bool Station::enqueue(traffic::Packet&& packet) {
  auto& queue = queues_[static_cast<std::size_t>(packet.cls)];
  if (queue.size() >= queue_capacity_) {
    ++drops_;
    return false;
  }
  queue.push_back(std::move(packet));
  return true;
}

std::optional<TrafficClass> Station::eligible_class() const {
  // Send rule 1: real-time while RT_PCK has not reached l.
  if (!queues_[0].empty() && rt_pck_ < quota_.l) {
    return TrafficClass::kRealTime;
  }
  // Send rule 2: non-real-time only when the real-time buffer is empty or
  // the real-time quota is exhausted, and NRT_PCK has not reached k.
  const bool rt_gate = queues_[0].empty() || rt_pck_ == quota_.l;
  if (!rt_gate || nrt_pck_ >= quota_.k) return std::nullopt;

  // Diffserv split (Section 2.3): Assured traffic draws on the k1 share
  // with priority over best-effort; best-effort uses the remainder.  With
  // k1 = 0 the assured queue competes as plain best-effort-priority class.
  const bool assured_allowed =
      !queues_[1].empty() &&
      (k1_assured_ == 0 || assured_sent_ < k1_assured_);
  if (assured_allowed) return TrafficClass::kAssured;

  // With the split enabled, leftover k1 authorizations are a reservation for
  // Assured traffic and are not usable by best-effort.
  const std::uint32_t k2 = quota_.k - k1_assured_;
  const std::uint32_t be_sent = nrt_pck_ - assured_sent_;
  if (!queues_[2].empty() && (k1_assured_ == 0 || be_sent < k2)) {
    return TrafficClass::kBestEffort;
  }
  return std::nullopt;
}

traffic::Packet Station::take_for_transmit(TrafficClass cls) {
  auto& queue = queues_[static_cast<std::size_t>(cls)];
  assert(!queue.empty());
  traffic::Packet packet = std::move(queue.front());
  queue.pop_front();
  if (cls == TrafficClass::kRealTime) {
    assert(rt_pck_ < quota_.l);
    ++rt_pck_;
  } else {
    assert(nrt_pck_ < quota_.k);
    ++nrt_pck_;
    if (cls == TrafficClass::kAssured) ++assured_sent_;
  }
  return packet;
}

bool Station::satisfied() const noexcept {
  return rt_pck_ == quota_.l || queues_[0].empty();
}

void Station::on_sat_release() noexcept {
  rt_pck_ = 0;
  nrt_pck_ = 0;
  assured_sent_ = 0;
}

const traffic::Packet* Station::peek(TrafficClass cls) const {
  const auto& queue = queues_[static_cast<std::size_t>(cls)];
  return queue.empty() ? nullptr : &queue.front();
}

void Station::clear_queues() {
  for (auto& queue : queues_) queue.clear();
}

}  // namespace wrt::wrtring
