#include "wrtring/config.hpp"

namespace wrt::wrtring {

util::Status Config::validate() const {
  if (hop_latency_slots < 1) {
    return util::Error::invalid_argument("hop_latency_slots must be >= 1");
  }
  if (sat_hop_latency_slots < 0) {
    return util::Error::invalid_argument(
        "sat_hop_latency_slots must be >= 0 (0 = inherit)");
  }
  if (rap_policy != RapPolicy::kDisabled) {
    // The earing phase must fit the NEXT_FREE / JOIN_REQ / JOIN_ACK
    // exchange (three message slots, Section 2.4.1).
    if (t_ear_slots < 3) {
      return util::Error::invalid_argument(
          "t_ear_slots must be >= 3 for the join handshake");
    }
    if (t_update_slots < 1) {
      return util::Error::invalid_argument(
          "t_update_slots must be >= 1 to apply the insertion");
    }
  }
  if (k1_assured > default_quota.k) {
    return util::Error::invalid_argument(
        "k1_assured cannot exceed the k quota");
  }
  for (const Quota& quota : station_quotas) {
    if (k1_assured > quota.k) {
      return util::Error::invalid_argument(
          "k1_assured exceeds a per-station k quota");
    }
  }
  if (frame_loss_prob < 0.0 || frame_loss_prob >= 1.0 ||
      sat_loss_prob < 0.0 || sat_loss_prob >= 1.0 ||
      control_loss_prob < 0.0 || control_loss_prob >= 1.0) {
    return util::Error::invalid_argument(
        "loss probabilities must be in [0, 1)");
  }
  if (const auto status = channel.validate(); !status.ok()) return status;
  if (join_backoff_base_slots < 1) {
    return util::Error::invalid_argument(
        "join_backoff_base_slots must be >= 1");
  }
  if (join_backoff_exp_cap > 30) {
    return util::Error::invalid_argument(
        "join_backoff_exp_cap must be <= 30 (shift overflow)");
  }
  if (join_max_attempts < 1) {
    return util::Error::invalid_argument("join_max_attempts must be >= 1");
  }
  if (auto_rejoin && rap_policy == RapPolicy::kDisabled) {
    return util::Error::invalid_argument(
        "auto_rejoin needs an active RAP policy to re-enter through");
  }
  if (queue_capacity == 0) {
    return util::Error::invalid_argument("queue_capacity must be >= 1");
  }
  if (rebuild_base_slots < 0 || rebuild_per_station_slots < 0) {
    return util::Error::invalid_argument("rebuild costs must be >= 0");
  }
  if (sat_timeout_slots < 0) {
    return util::Error::invalid_argument(
        "sat_timeout_slots must be >= 0 (0 = Theorem-1 bound)");
  }
  if (guard_slots < 0 || wtr_slots < 0 || wtb_slots < 0) {
    return util::Error::invalid_argument(
        "recovery timers (guard/wtr/wtb) must be >= 0");
  }
  if ((wtr_slots > 0 || revertive) && !auto_rejoin) {
    return util::Error::invalid_argument(
        "wtr_slots/revertive govern re-admission and need auto_rejoin");
  }
  return util::Status::success();
}

}  // namespace wrt::wrtring
