// Inter-shard mail: double-buffered frame queues flushed at epoch barriers.
//
// Federation shards never touch each other's engines (the shard-confinement
// contract, DESIGN.md §11/§12).  All cross-shard traffic travels as
// value-type FederationFrames through one Mailbox per ordered shard pair
// (src, dst).  During an epoch the producing shard appends to the write
// buffer and the consuming shard drains the read buffer — two distinct
// vectors, so the two threads never share a byte.  At the epoch barrier,
// after every worker has joined, the coordinator flips the buffers
// serially.  The thread join is the synchronization point: there is no
// lock and no atomic in this file, and none is needed, because no buffer
// is ever written and read inside the same barrier interval.
//
// Frames are plain values on purpose: the lint rule `cross-shard-handle`
// rejects pointer/reference members in *Frame types under wrtring/, which
// is what keeps a mailbox from ever smuggling an Engine* across shards.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace wrt::wrtring {

/// One packet crossing a ring boundary, snapshotted at the source ring's
/// gateway.  Value type only — enough to rebuild a traffic::Packet at the
/// destination shard and to account the crossing end to end.
struct FederationFrame {
  FlowId flow = kInvalidFlow;
  TrafficClass cls = TrafficClass::kBestEffort;
  std::uint32_t src_ring = 0;        ///< global ring index of the egress ring
  std::uint32_t dst_ring = 0;        ///< global ring index of the ingress ring
  NodeId dst_station = kInvalidNode; ///< final destination in dst_ring
  Tick created = 0;                  ///< original packet creation time
  Tick gateway_out = 0;              ///< delivery time at the egress gateway
  Tick deadline = kNeverTick;        ///< absolute, carried across the crossing
  std::uint64_t sequence = 0;
};

/// Double-buffered SPSC frame queue for one ordered shard pair.
class Mailbox {
 public:
  /// Producer side (owning shard's worker thread, during an epoch).
  void post(const FederationFrame& frame) { write_.push_back(frame); }

  /// Consumer side (destination shard's worker thread, during an epoch):
  /// frames the producer posted in the *previous* epoch.
  [[nodiscard]] const std::vector<FederationFrame>& inbound() const noexcept {
    return read_;
  }

  /// Epoch barrier only (single-threaded): publishes this epoch's posts as
  /// next epoch's inbound and recycles the drained buffer.
  void flip() {
    read_.swap(write_);
    write_.clear();
  }

  /// Frames posted this epoch but not yet published.
  [[nodiscard]] std::size_t pending() const noexcept { return write_.size(); }

 private:
  std::vector<FederationFrame> write_;
  std::vector<FederationFrame> read_;
};

}  // namespace wrt::wrtring
