// One federation shard: a worker-thread-confined bundle of rings plus the
// Diffserv backbone segment that terminates crossings at those rings.
//
// A FederationShard owns everything its worker thread touches during an
// epoch — the ring engines (each WRT_SHARD_CONFINED per DESIGN.md §11),
// their private topologies, the backbone segment, the crossing routing
// tables and the delay accounting.  The only data that leaves the shard
// is a value-type FederationFrame posted into a Mailbox owned by the
// coordinator (drained by the destination shard next epoch), and the only
// data that enters is the read half of those mailboxes.  Everything here
// is therefore single-threaded by construction; the epoch barrier in
// FederationEngine::run_epochs is the sole synchronization point.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "diffserv/diffserv.hpp"
#include "phy/topology.hpp"
#include "util/flat_map.hpp"
#include "util/thread_safety.hpp"
#include "util/types.hpp"
#include "wrtring/engine.hpp"
#include "wrtring/mailbox.hpp"

namespace wrt::wrtring {

/// Where a crossing flow leaves its source ring.  Registered on the shard
/// owning the source ring; consulted by the gateway delivery tap.
struct OutboundRoute {
  std::uint32_t src_ring = 0;  ///< global ring index of the egress ring
  std::uint32_t dst_ring = 0;  ///< global ring index of the ingress ring
  std::uint32_t dst_shard = 0;
  NodeId dst_station = kInvalidNode;
};

/// Where a crossing flow re-enters the ring fabric.  Registered on the
/// shard owning the destination ring; consulted when draining mailboxes
/// and when backbone egress is re-injected.
struct InboundRoute {
  std::uint32_t dst_ring = 0;  ///< global ring index
  std::size_t ring_slot = 0;   ///< index into this shard's ring list
  NodeId dst_station = kInvalidNode;
  NodeId gateway = kInvalidNode;  ///< injecting station (G1 of the dst ring)
};

/// Integer crossing counters; summed across shards after the epoch loop
/// (exact — workers have joined) and folded into the federation digest.
struct ShardCounters {
  std::uint64_t crossings_posted = 0;    ///< frames handed to a mailbox
  std::uint64_t crossings_received = 0;  ///< frames drained into the backbone
  std::uint64_t crossings_injected = 0;  ///< frames injected into a dst ring
  std::uint64_t crossings_delivered = 0; ///< final in-ring deliveries seen
  std::uint64_t crossing_drops = 0;      ///< unroutable or injection-refused
};

/// Shard-confined: every method below (other than the serial wiring
/// helpers used by FederationEngine::init before workers exist) must be
/// called from the shard's owning worker thread.
class WRT_SHARD_CONFINED FederationShard {
 public:
  FederationShard(std::uint32_t index, std::uint32_t shard_count,
                  std::size_t backbone_hops, double backbone_service_rate,
                  std::size_t backbone_queue_capacity,
                  double backbone_premium_capacity);

  // -- serial wiring (FederationEngine::init, before any worker starts) --

  /// Transfers ownership of one ring (topology + engine) to the shard and
  /// installs the gateway delivery tap.  Returns the ring's slot index
  /// within this shard.
  std::size_t add_ring(std::uint32_t ring_index, NodeId gateway,
                       std::unique_ptr<phy::Topology> topology,
                       std::unique_ptr<Engine> engine);

  /// Wires the shard's mailbox views: `inbound[p]` carries frames from
  /// shard p to this shard, `outbound[d]` carries frames from this shard
  /// to shard d.  Pointers are owned by the coordinator.
  void set_mailboxes(std::vector<Mailbox*> inbound,
                     std::vector<Mailbox*> outbound);

  void add_outbound_route(FlowId flow, const OutboundRoute& route);
  void add_inbound_route(FlowId flow, const InboundRoute& route);

  // -- epoch execution (worker thread) -----------------------------------

  /// Runs one epoch: (1) injects last epoch's backbone egress into its
  /// destination rings, (2) drains inbound mailboxes (producer-shard
  /// order) into the backbone, (3) steps the backbone epoch_slots slots,
  /// buffering egress for next epoch, (4) steps every ring engine
  /// epoch_slots slots (gateway taps post outbound frames).  Touches only
  /// shard-owned state plus the mailbox halves assigned to this shard.
  void run_epoch(Tick epoch_start, std::int64_t epoch_slots);

  // -- accounting (serial, after workers have joined) --------------------

  [[nodiscard]] std::uint32_t index() const noexcept { return index_; }
  [[nodiscard]] std::size_t ring_count() const noexcept {
    return rings_.size();
  }
  [[nodiscard]] Engine& ring_engine(std::size_t slot) {
    return *rings_.at(slot).engine;
  }
  [[nodiscard]] const Engine& ring_engine(std::size_t slot) const {
    return *rings_.at(slot).engine;
  }
  [[nodiscard]] diffserv::BackboneSegment& backbone() noexcept {
    return backbone_;
  }
  [[nodiscard]] const diffserv::BackboneSegment& backbone() const noexcept {
    return backbone_;
  }
  [[nodiscard]] const ShardCounters& counters() const noexcept {
    return counters_;
  }
  /// End-to-end crossing delays (packet creation in the source ring to
  /// final delivery in the destination ring), integer ticks, in
  /// deterministic observation order.
  [[nodiscard]] const std::vector<Tick>& rt_crossing_delay_ticks()
      const noexcept {
    return rt_delay_ticks_;
  }
  [[nodiscard]] const std::vector<Tick>& be_crossing_delay_ticks()
      const noexcept {
    return be_delay_ticks_;
  }
  /// Thread-CPU nanoseconds this shard spent inside run_epoch, total and
  /// for the most recent epoch.  CLOCK_THREAD_CPUTIME_ID, so preemption
  /// by sibling workers on an undersized host does not inflate it.
  [[nodiscard]] std::int64_t busy_ns_total() const noexcept {
    return busy_ns_total_;
  }
  [[nodiscard]] std::int64_t last_epoch_busy_ns() const noexcept {
    return last_epoch_busy_ns_;
  }
  /// Crossing frames parked inside the shard (backbone queues + egress
  /// awaiting injection), for conservation accounting.
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return backbone_.queue_depth() + pending_.size();
  }

 private:
  struct RingSlot {
    std::uint32_t ring_index = 0;
    NodeId gateway = kInvalidNode;
    std::unique_ptr<phy::Topology> topology;
    std::unique_ptr<Engine> engine;
  };

  /// Backbone egress buffered for injection at the next epoch boundary.
  struct PendingInject {
    std::size_t ring_slot = 0;
    traffic::Packet packet;
  };

  /// Delivery-tap body: posts gateway-delivered crossing packets to the
  /// destination shard's mailbox; records end-to-end delay on final
  /// delivery of an inbound crossing.
  void on_delivery(std::size_t slot, const traffic::Packet& packet,
                   NodeId at, Tick now);

  [[nodiscard]] traffic::Packet reconstruct(const FederationFrame& frame,
                                            const InboundRoute& route) const;

  std::uint32_t index_;
  std::uint32_t shard_count_;
  std::vector<RingSlot> rings_;
  diffserv::BackboneSegment backbone_;
  util::FlatMap<FlowId, OutboundRoute> outbound_;
  util::FlatMap<FlowId, InboundRoute> inbound_;
  std::vector<Mailbox*> inbound_mail_;   ///< [p] = shard p -> this shard
  std::vector<Mailbox*> outbound_mail_;  ///< [d] = this shard -> shard d
  std::vector<PendingInject> pending_;
  std::vector<traffic::Packet> egress_scratch_;
  ShardCounters counters_;
  std::vector<Tick> rt_delay_ticks_;
  std::vector<Tick> be_delay_ticks_;
  std::int64_t busy_ns_total_ = 0;
  std::int64_t last_epoch_busy_ns_ = 0;
};

}  // namespace wrt::wrtring
