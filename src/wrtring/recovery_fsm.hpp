// ERPS-grade recovery state machine for WRT-Ring (DESIGN.md §14).
//
// The paper's recovery story is the bare SAT_TIMER -> SAT_REC -> re-form
// chain (Sections 2.4.2/2.5), and the engine reproduces it faithfully —
// including its weaknesses: a stale SAT_REC cuts a healthy station out
// during state churn, a flapping link re-triggers a full recovery on every
// heal/fail cycle, and a recovered station re-enters at an arbitrary ring
// position.  RecoveryFsm is the single decision funnel for all of those
// paths, shaped after carrier-grade Ethernet ring protection (ITU-T G.8032
// ERPS): an explicit per-ring state machine with
//
//   * a guard window — for `guard_slots` after a recovery or rebuild
//     completes, fresh SAT_TIMER expiries are treated as stale echoes of
//     the event just survived and suppressed (the detector's timer is
//     re-armed instead of generating a new SAT_REC);
//   * heal cancellation — a SAT_REC about to cut out a station that is
//     demonstrably alive and reachable again (the flapping-link case) is
//     forwarded through it instead, so the ring re-establishes with zero
//     membership churn;
//   * WTR (wait-to-restore) hold-off — a station cut out by recovery must
//     stay continuously healthy for `wtr_slots` before it is re-admitted;
//     a flap during the hold-off restarts the clock (WTB is the same
//     hold-off for operator-forced switches, cleared explicitly);
//   * revertive re-insertion — in revertive mode a re-admitted station is
//     inserted back at its original ring position (after the same
//     predecessor, with its original quota and Diffserv split), so
//     rotation history and the Theorem 1/2 bounds survive the blip;
//   * request de-duplication — the last (failed, origin) request is
//     tracked so the same failure observed repeatedly generates one
//     recovery, not N.
//
// Digest contract: in the all-defaults configuration (guard_slots = 0,
// wtr_slots = 0, wtb_slots = 0, revertive = false, no forced switches) the
// FSM routes every request straight into the legacy engine action in the
// identical order — the engine is bit-identical to the pre-FSM chain, and
// the SoA digest oracles gate that.  All new behaviour is opt-in.
//
// The core transition function is pure and static (state x request x
// tuning -> next state + action) so tests can table-check every pair
// without an engine; the instance wraps it with timer bookkeeping, rejoin
// candidate tracking, telemetry, and the engine callbacks.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/flat_map.hpp"
#include "util/types.hpp"

namespace wrt::check {
class InvariantAuditor;
struct EngineTestHook;
}  // namespace wrt::check

namespace wrt::wrtring {

class Engine;

/// Protection-switching states (ERPS idiom mapped onto WRT-Ring).
enum class RecoveryState : std::uint8_t {
  kIdle,          ///< plain SAT circulating, no recovery in progress
  kProtection,    ///< SAT_REC in flight or ring re-formation under way
  kPending,       ///< recovery done; guard window / hold-offs still open
  kForcedSwitch,  ///< operator holds a station out of the ring
};

/// Everything that can ask the FSM for a recovery decision.
enum class RecoveryRequest : std::uint8_t {
  kSignalFail,        ///< SAT_TIMER expiry (detector blames its predecessor)
  kGracefulLeave,     ///< successor converted the SAT into a SAT_REC
  kRecoveryComplete,  ///< SAT_REC returned to its origin
  kRecDeadline,       ///< SAT_REC overran its deadline
  kRingUnrepairable,  ///< cut-out impossible (R <= 3 or split ring)
  kRebuildComplete,   ///< full ring re-formation finished
  kForcedSwitch,      ///< operator forces a station out
  kClearForced,       ///< operator releases the forced switch
  kWtrExpire,         ///< wait-to-restore hold-off satisfied
  kWtbExpire,         ///< wait-to-block hold-off satisfied
  kGuardExpire,       ///< guard window closed
};

/// What the engine must do about a request (at most one per transition).
enum class RecoveryAction : std::uint8_t {
  kNone,           ///< bookkeeping only
  kStartRecovery,  ///< generate the SAT_REC (legacy start_recovery)
  kStartRebuild,   ///< tear down and re-form (legacy start_rebuild)
  kSuppress,       ///< stale/duplicate request: re-arm the timer, no action
  kStartGuard,     ///< open the guard window (when guard_slots > 0)
  kArmWtb,         ///< start the wait-to-block hold-off
  kQueueRejoin,    ///< hold-off satisfied: queue the station's rejoin
};

/// The opt-in knobs (mirrored from Config so the pure transition function
/// does not depend on the full engine configuration).
struct RecoveryTuning {
  std::int64_t guard_slots = 0;
  std::int64_t wtr_slots = 0;
  std::int64_t wtb_slots = 0;
  bool revertive = false;
};

class RecoveryFsm {
 public:
  struct Decision {
    RecoveryState next = RecoveryState::kIdle;
    RecoveryAction action = RecoveryAction::kNone;
  };

  /// Pure transition table: (state, request) -> (next state, action) under
  /// the given tuning.  `guard_active` is the only piece of timer state the
  /// table depends on.  Exhaustively checked by the FSM table test.
  [[nodiscard]] static Decision transition(RecoveryState state,
                                           RecoveryRequest request,
                                           const RecoveryTuning& tuning,
                                           bool guard_active) noexcept;

  RecoveryFsm() = default;

  /// Binds the FSM to its engine and tuning.  A detached FSM (engine ==
  /// nullptr, as the table tests use) records transitions but performs no
  /// engine actions.
  void bind(Engine* engine, const RecoveryTuning& tuning) {
    engine_ = engine;
    tuning_ = tuning;
  }

  [[nodiscard]] const RecoveryTuning& tuning() const noexcept {
    return tuning_;
  }
  [[nodiscard]] RecoveryState state() const noexcept { return state_; }

  /// True when any opt-in protection behaviour is enabled; the engine uses
  /// this to keep the all-defaults hot path free of new branches.
  [[nodiscard]] bool protective() const noexcept {
    return tuning_.guard_slots > 0 || tuning_.wtr_slots > 0 ||
           tuning_.wtb_slots > 0 || tuning_.revertive ||
           state_ == RecoveryState::kForcedSwitch || !candidates_.empty();
  }

  // -- requests from the engine's recovery paths ---------------------------

  /// SAT_TIMER expiry at `detector`.  Returns true when the recovery was
  /// started (legacy path); false when the request was suppressed as stale
  /// or duplicate (the detector's timer is re-armed by the engine).
  bool on_signal_fail(NodeId detector, NodeId accused, Tick now);

  /// The successor converted the SAT into a graceful-leave SAT_REC.
  void on_graceful_leave(NodeId origin, NodeId leaver, Tick now);

  /// SAT_REC returned to its origin; `mttr_slots` is loss -> restored when
  /// a ground-truth loss instant exists (< 0 otherwise).
  void on_recovery_complete(Tick now, double mttr_slots);

  /// The SAT_REC overran its deadline; the engine must re-form the ring.
  void on_rec_deadline(Tick now);

  /// A cut-out is structurally impossible (ring would drop below three
  /// stations, or the bypass hop is unreachable); re-form unconditionally.
  void on_ring_unrepairable(Tick now);

  /// finish_rebuild() ran; the ring is circulating again.
  void on_rebuild_complete(Tick now, double mttr_slots);

  /// A stale SAT_REC was cancelled in flight (the accused station proved
  /// alive and reachable); opens the guard window like a completion.
  void on_stale_rec_cancelled(Tick now);

  // -- rejoin admission (WTR / WTB / revertive) ----------------------------

  /// Verdict for a station cut out of the ring.
  enum class Admit : std::uint8_t {
    kNow,   ///< legacy path: the engine queues the rejoin immediately
    kHeld,  ///< FSM tracks the candidate; tick() admits it later
  };

  /// Called from the cut-out path with the station's pre-cut identity:
  /// `anchor` is its ring predecessor at cut time, `quota`/`k1` its
  /// allocation.  Default tuning returns kNow (bit-identical legacy
  /// behaviour); with WTR/WTB/revertive enabled the candidate is held.
  Admit on_station_cut(NodeId node, Quota quota, NodeId anchor,
                       std::uint32_t k1, bool forced, Tick now);

  /// Whether the FSM is already tracking a rejoin for `node` (the engine's
  /// resume path must not race it with a default-quota join).
  [[nodiscard]] bool tracks_rejoin(NodeId node) const noexcept;

  /// Revertive memory for a joiner about to complete its handshake:
  /// returns true and fills `anchor`/`k1` when a revertive re-insertion is
  /// recorded for `node` (the memory is consumed).
  bool take_revertive_anchor(NodeId node, NodeId* anchor, std::uint32_t* k1);

  /// Records the outcome of a revertive insertion for the auditor.
  void record_revert_outcome(NodeId node, NodeId anchor,
                             std::uint64_t membership_epoch);

  // -- operator-forced switches -------------------------------------------

  /// Operator forces `node` out (FaultPlan force-switch).  Returns false
  /// on a duplicate request (already forced).
  bool on_forced_switch(NodeId node, Tick now);
  /// Releases the forced switch; re-admission waits out WTB.
  void on_clear_forced(NodeId node, Tick now);
  [[nodiscard]] NodeId forced_station() const noexcept { return forced_; }

  // -- timers --------------------------------------------------------------

  /// True when tick() has work: open guard window or held candidates.
  [[nodiscard]] bool timers_active() const noexcept {
    return guard_until_ != kNeverTick || !candidates_.empty();
  }

  /// Advances the guard window and the per-candidate WTR/WTB clocks; called
  /// once per slot while timers_active().
  void tick(Tick now);

  [[nodiscard]] bool guard_active(Tick now) const noexcept {
    return guard_until_ != kNeverTick && now < guard_until_;
  }

  // -- observability -------------------------------------------------------

  [[nodiscard]] std::uint64_t transitions() const noexcept {
    return transitions_;
  }
  [[nodiscard]] std::uint64_t stale_rec_suppressed() const noexcept {
    return stale_rec_suppressed_;
  }
  [[nodiscard]] std::uint64_t duplicate_requests_dropped() const noexcept {
    return duplicate_requests_dropped_;
  }
  [[nodiscard]] std::uint64_t wtr_holdoffs() const noexcept {
    return wtr_holdoffs_;
  }
  [[nodiscard]] std::uint64_t wtr_flap_restarts() const noexcept {
    return wtr_flap_restarts_;
  }
  /// Loss -> restored durations (slots), bounded; the chaos matrix computes
  /// p50/p99 MTTR from these.
  [[nodiscard]] const std::vector<double>& mttr_samples() const noexcept {
    return mttr_samples_;
  }

 private:
  friend class ::wrt::check::InvariantAuditor;
  friend struct ::wrt::check::EngineTestHook;

  /// A station waiting out its WTR/WTB hold-off before re-admission.
  struct RejoinCandidate {
    NodeId node = kInvalidNode;
    Quota quota{1, 1};
    NodeId anchor = kInvalidNode;  ///< ring predecessor at cut time
    std::uint32_t k1 = 0;          ///< Diffserv split at cut time
    Tick healthy_since = kNeverTick;
    bool forced = false;  ///< WTB candidate: held until clear_forced
    bool cleared = false; ///< forced switch released; WTB clock running
  };

  /// Revertive re-insertion outcome, validated by the auditor while the
  /// membership epoch it was recorded under is still current.
  struct RevertOutcome {
    NodeId node = kInvalidNode;
    NodeId anchor = kInvalidNode;
    std::uint64_t epoch = 0;
  };

  void enter(RecoveryState next, Tick now);
  void open_guard(Tick now);
  void record_mttr(double mttr_slots);
  void admit(RejoinCandidate& candidate, Tick now);

  // wrt-lint-allow(cross-shard-handle): the FSM drives its OWN ring's engine — same shard by construction
  Engine* engine_ = nullptr;
  RecoveryTuning tuning_;
  RecoveryState state_ = RecoveryState::kIdle;

  Tick guard_until_ = kNeverTick;

  // Request de-duplication: the last failure this FSM acted on.
  NodeId last_failed_ = kInvalidNode;
  NodeId last_origin_ = kInvalidNode;

  std::vector<RejoinCandidate> candidates_;
  util::FlatMap<NodeId, RejoinCandidate> revertive_memory_;
  RevertOutcome last_revert_;
  NodeId forced_ = kInvalidNode;

  std::uint64_t transitions_ = 0;
  std::uint64_t stale_rec_suppressed_ = 0;
  std::uint64_t duplicate_requests_dropped_ = 0;
  std::uint64_t wtr_holdoffs_ = 0;
  std::uint64_t wtr_flap_restarts_ = 0;

  // Auditor bookkeeping (see check::InvariantAuditor):
  // guard_no_stale_rec — a recovery must never start inside the guard.
  bool accepted_sf_during_guard_ = false;
  // wtr_no_flap_readmit — worst (continuous-healthy − required hold) slack
  // seen at any admission; negative means a candidate was re-admitted
  // before its WTR/WTB hold-off lapsed.
  static constexpr std::int64_t kNoAdmission =
      std::numeric_limits<std::int64_t>::max();
  std::int64_t min_readmit_slack_slots_ = kNoAdmission;

  static constexpr std::size_t kMaxMttrSamples = 4096;
  std::vector<double> mttr_samples_;
};

}  // namespace wrt::wrtring
