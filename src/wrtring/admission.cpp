#include "wrtring/admission.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace wrt::wrtring {

AdmissionController::AdmissionController(Engine* engine,
                                         analysis::AllocationScheme scheme,
                                         std::int64_t l_budget,
                                         std::uint32_t k_per_station)
    : engine_(engine),
      scheme_(scheme),
      l_budget_(l_budget),
      k_per_station_(k_per_station) {}

util::Result<std::size_t> AdmissionController::station_index(
    NodeId station) const {
  const auto& ring = engine_->virtual_ring();
  if (!ring.contains(station)) {
    return util::Error::not_found("station not in ring");
  }
  return ring.position_of(station);
}

analysis::AllocationInput AdmissionController::build_input(
    const SessionRequest* extra) const {
  analysis::AllocationInput input;
  const analysis::RingParams current = engine_->ring_params();
  input.ring_latency_slots = current.ring_latency_slots;
  input.t_rap_slots = current.t_rap_slots;
  input.k_per_station = k_per_station_;
  input.total_l_budget = l_budget_;

  // Aggregate sessions per station into one conservative requirement:
  // the combined rate at the tightest period and the tightest deadline.
  struct Aggregate {
    double rate = 0.0;  // packets per slot
    std::int64_t min_period = std::numeric_limits<std::int64_t>::max();
    std::int64_t min_deadline = std::numeric_limits<std::int64_t>::max();
  };
  std::map<NodeId, Aggregate> per_station;
  const auto fold = [&per_station](const SessionRequest& session) {
    auto& agg = per_station[session.station];
    agg.rate += static_cast<double>(session.packets_per_period) /
                static_cast<double>(session.period_slots);
    agg.min_period = std::min(agg.min_period, session.period_slots);
    agg.min_deadline = std::min(agg.min_deadline, session.deadline_slots);
  };
  for (const auto& [flow, session] : sessions_) fold(session);
  if (extra != nullptr) fold(*extra);

  for (const auto& [station, agg] : per_station) {
    const auto index = station_index(station);
    if (!index.ok()) continue;  // station left; on_station_left will purge
    analysis::RtRequirement requirement;
    requirement.station = index.value();
    requirement.period_slots = agg.min_period;
    requirement.packets_per_period = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               std::ceil(agg.rate * static_cast<double>(agg.min_period))));
    requirement.deadline_slots = agg.min_deadline;
    input.flows.push_back(requirement);
  }
  return input;
}

util::Result<analysis::RingParams> AdmissionController::try_allocate(
    const SessionRequest* extra) {
  const analysis::AllocationInput input = build_input(extra);
  const std::size_t n = engine_->virtual_ring().size();
  auto params = analysis::allocate(scheme_, input, n);
  if (!params.ok()) return params.error();
  if (const auto feasible =
          analysis::check_feasibility(params.value(), input.flows);
      !feasible.ok()) {
    return feasible.error();
  }
  // Apply: the MAC now enforces exactly the quotas the analysis certified.
  for (std::size_t p = 0; p < n; ++p) {
    engine_->set_station_quota(engine_->virtual_ring().station_at(p),
                               params.value().quotas[p]);
  }
  return params;
}

util::Result<Quota> AdmissionController::admit(const SessionRequest& request) {
  if (request.flow == kInvalidFlow || sessions_.contains(request.flow)) {
    return util::Error::invalid_argument("bad or duplicate flow id");
  }
  if (request.period_slots <= 0 || request.packets_per_period <= 0 ||
      request.deadline_slots <= 0) {
    return util::Error::invalid_argument("session needs positive P, C, D");
  }
  const auto index = station_index(request.station);
  if (!index.ok()) return index.error();

  auto params = try_allocate(&request);
  if (!params.ok()) {
    // Restore the allocation without the rejected request (quotas were not
    // touched on failure, but rebalance keeps the invariant obvious).
    return params.error();
  }
  sessions_[request.flow] = request;
  return params.value().quotas[index.value()];
}

util::Status AdmissionController::release(FlowId flow) {
  if (sessions_.erase(flow) == 0) {
    return util::Error::not_found("unknown session");
  }
  return rebalance();
}

std::size_t AdmissionController::on_station_left(NodeId station) {
  std::size_t dropped = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->second.station == station) {
      it = sessions_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  (void)rebalance();
  return dropped;
}

util::Status AdmissionController::rebalance() {
  if (sessions_.empty()) return util::Status::success();
  const auto params = try_allocate(nullptr);
  if (!params.ok()) return params.error();
  return util::Status::success();
}

void AdmissionController::bind_membership_events() {
  engine_->set_membership_callback([this](NodeId node, bool joined) {
    if (joined) {
      (void)rebalance();
    } else {
      (void)on_station_left(node);
    }
  });
}

util::Result<std::int64_t> AdmissionController::guaranteed_delay(
    FlowId flow) const {
  const auto it = sessions_.find(flow);
  if (it == sessions_.end()) return util::Error::not_found("unknown session");
  const auto index = station_index(it->second.station);
  if (!index.ok()) return index.error();
  const analysis::RingParams params = engine_->ring_params();
  return analysis::access_time_bound(params, index.value(),
                                     it->second.packets_per_period - 1);
}

}  // namespace wrt::wrtring
