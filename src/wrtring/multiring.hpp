// Multi-ring coordination — the paper's deferred case.
//
// Section 2.4.1: a requester that reaches only one ring station "cannot
// join the network (in this case it may form another ring, but we don't
// present a detailed analysis of this case in this paper)".  This module
// implements that sketched extension: it partitions the alive topology
// into ring-able groups, runs one independent WRT-Ring Engine per group
// (each with its own SAT, quotas and CDMA codes — distance-2 assignment
// already keeps neighbouring rings from colliding), steps them in
// lock-step, and aggregates statistics.  Stations whose component cannot
// host a ring (fewer than 3 members or no Hamiltonian cycle) are reported
// as unserved.
//
// No inter-ring bridging is attempted here — the coordinator's value is
// serving every serveable pocket of a fragmented deployment and
// quantifying what fraction of stations that covers.  Bridging (gateways,
// the Diffserv backbone, reservation brokering) lives one layer up in the
// sharded federation engine (wrtring/federation.hpp, DESIGN.md §12).
#pragma once

#include <memory>
#include <vector>

#include "phy/topology.hpp"
#include "util/flat_map.hpp"
#include "util/result.hpp"
#include "wrtring/engine.hpp"

namespace wrt::wrtring {

class MultiRingCoordinator {
 public:
  /// `topology` must outlive the coordinator.
  MultiRingCoordinator(phy::Topology* topology, Config config,
                       std::uint64_t seed);

  /// Partitions the alive graph and starts one engine per ring-able group.
  /// Succeeds if at least one ring forms.
  [[nodiscard]] util::Status init();

  /// Advances every ring by one slot.
  void step();
  void run_slots(std::int64_t n);

  [[nodiscard]] std::size_t ring_count() const noexcept {
    return engines_.size();
  }
  [[nodiscard]] Engine& ring(std::size_t index) { return *engines_.at(index); }
  [[nodiscard]] const Engine& ring(std::size_t index) const {
    return *engines_.at(index);
  }

  /// The ring engine serving `node`, or nullptr when the node is unserved.
  /// O(log rings-total-members): answered from a membership index that is
  /// kept current by the engines' membership callbacks (the coordinator
  /// owns the callback slot of every engine it creates) — federation
  /// routing calls this on every crossing, so no linear engine scan.
  [[nodiscard]] Engine* ring_of(NodeId node);

  /// Stations alive but in no ring.
  [[nodiscard]] const std::vector<NodeId>& unserved() const noexcept {
    return unserved_;
  }

  /// Fraction of alive stations that are ring members.
  [[nodiscard]] double coverage() const;

  /// Aggregate deliveries across rings.
  [[nodiscard]] std::uint64_t total_delivered() const;

 private:
  /// Splits a connected component into ring-able groups: tries the whole
  /// component first, then greedily peels off stations that block the
  /// Hamiltonian search (lowest-degree first) until a ring forms or the
  /// group is too small.
  void form_rings_over(std::vector<NodeId> component);

  /// Membership-callback body: keeps `ring_index_` and `unserved_`
  /// consistent as engine `index` gains or loses `node` (joins, cut-outs,
  /// graceful leaves, rebuild exclusions/recruits).
  void on_membership_change(std::size_t index, NodeId node, bool joined);

  phy::Topology* topology_;
  Config config_;
  std::uint64_t seed_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<std::vector<NodeId>> memberships_;
  std::vector<NodeId> unserved_;  ///< sorted
  /// node -> index into engines_; maintained on churn via callbacks.
  util::FlatMap<NodeId, std::size_t> ring_index_;
};

}  // namespace wrt::wrtring
