// Structure-of-arrays slot kernel: the dense per-position state the per-slot
// hot path sweeps over.
//
// One engine slot touches every ring position a handful of times — arrival
// check, transit forward, Send-algorithm gate, SAT-timer expiry — and the
// old layout paid for that with an array-of-structs walk (one Station, one
// PerStationControl, one heap-backed LinkPipeline per position), so each
// pass hopped between allocations and dragged cold fields through the
// cache.  SlotKernel flips the layout: every per-station field lives in its
// own dense vector indexed by ring position, so each pass of
// data_plane_step() / check_sat_timers() streams exactly the arrays it
// needs and nothing else.
//
// The OO surface survives as views: wrtring::Station is a (kernel,
// position) handle whose accessors read/write these arrays, so tests and
// cold-path callers keep the Section-2.2 vocabulary while the hot path
// indexes the arrays directly.
//
// Position discipline: entry p of every array describes the station at ring
// position p; the link arrays describe the link from position p to p+1.
// Membership paths (join, cut-out, leave, re-formation) mutate the arrays
// and the ring order together — push/insert/erase/adopt keep all columns in
// lockstep, and reset_links() re-sizes the link columns to the current
// station count.  The link columns deliberately keep their previous length
// until reset_links() runs so a teardown can still count the in-flight
// frames of the outgoing ring.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "traffic/traffic.hpp"
#include "util/thread_safety.hpp"
#include "util/types.hpp"

namespace wrt::check {
class InvariantAuditor;   // runtime invariant auditor (src/check/)
struct EngineTestHook;    // test-only state corruption (src/check/)
}  // namespace wrt::check

namespace wrt::wrtring {

class Engine;
class Station;

/// One data frame in flight on a ring link, or parked in a transit register
/// within the current slot.
struct LinkFrame {
  traffic::Packet packet;
  Tick entered_ring = 0;
  Tick arrival = 0;
  std::uint32_t hops = 0;
  bool busy = false;
};

/// Shard-confined: the kernel's dense arrays are the per-shard mutable
/// core; they are written by the owning engine's thread only and carry no
/// internal synchronisation (see Engine's confinement contract).
class WRT_SHARD_CONFINED SlotKernel final {
 public:
  SlotKernel() = default;

  /// Sets the shared per-class queue capacity (uniform across stations).
  void configure(std::size_t queue_capacity) noexcept {
    queue_capacity_ = queue_capacity;
  }

  [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }
  void clear();

  // --- membership (cold path; keeps every column in lockstep) -------------

  /// Appends a station slot with fresh MAC counters and control state; the
  /// SAT timer starts from `now`.
  void push_station(NodeId id, Quota quota, std::uint32_t k1, Tick now);

  /// Inserts a fresh station slot at `position`, shifting later slots up.
  void insert_station(std::size_t position, NodeId id, Quota quota,
                      std::uint32_t k1, Tick now);

  /// Removes the slot at `position` (its queued packets are discarded).
  void erase_station(std::size_t position);

  /// Appends slot `from` of `other`, moving its queues, counters and
  /// control state (ring re-formation re-pack).
  void adopt_station(SlotKernel& other, std::size_t from);

  /// Re-sizes the link columns to the current station count with `depth`
  /// slots per link, emptying every pipeline and transit register.
  void reset_links(std::size_t depth);

  // --- Send / SAT algorithms (Section 2.2/2.3), by position ---------------

  /// Send algorithm: the class this station would inject into an empty slot
  /// right now (quota counters, class priority, Diffserv k1/k2 split);
  /// nullopt when nothing may be sent.  Does not pop.
  [[nodiscard]] std::optional<TrafficClass> eligible_class(
      std::size_t p) const;

  /// Pops and returns the head packet of `cls`, updating RT_PCK/NRT_PCK.
  /// Precondition: eligible_class(p) returned `cls`.
  traffic::Packet take_for_transmit(std::size_t p, TrafficClass cls);

  /// SAT predicate: satisfied iff RT_PCK == l or the RT queue is empty.
  [[nodiscard]] bool satisfied(std::size_t p) const noexcept {
    return rt_pck_[p] == quota_[p].l || queues_[0][p].empty();
  }

  /// SAT release: clears the round's RT_PCK/NRT_PCK authorizations.
  void on_sat_release(std::size_t p) noexcept {
    rt_pck_[p] = 0;
    nrt_pck_[p] = 0;
    assured_sent_[p] = 0;
    refresh_eligible(p);
  }

  /// Enqueues into the packet's class queue; false (and a counted drop)
  /// when the queue is full.  The move commits only on acceptance.
  bool enqueue(std::size_t p, traffic::Packet&& packet);

  [[nodiscard]] const traffic::Packet* peek(std::size_t p,
                                            TrafficClass cls) const;
  void clear_queues(std::size_t p);

  /// Clamps counters when the quota shrinks below what was already
  /// transmitted this round (otherwise RT_PCK == l could never fire).
  void set_quota(std::size_t p, Quota quota) noexcept;
  void set_k1_assured(std::size_t p, std::uint32_t k1) noexcept {
    k1_assured_[p] = k1;
    refresh_eligible(p);
  }

  // --- Send-eligibility bitmap (event-driven injection scan) --------------
  //
  // Bit p mirrors eligible_class(p).has_value().  Every mutator that can
  // change the Send algorithm's answer (enqueue, take_for_transmit,
  // on_sat_release, set_quota, set_k1_assured, clear_queues) refreshes its
  // own bit, so the engine's fast injection scan walks set bits instead of
  // evaluating every position each slot.  Membership ops invalidate the
  // whole map; rebuild_eligible() recomputes it in one pass.

  /// Recomputes bit `p` from eligible_class(p).  No-op while the map is
  /// marked dirty (a full rebuild is pending anyway).
  void refresh_eligible(std::size_t p) noexcept {
    if (eligible_bits_dirty_) return;
    const std::uint64_t mask = std::uint64_t{1} << (p & 63);
    if (eligible_class(p).has_value()) {
      eligible_bits_[p >> 6] |= mask;
    } else {
      eligible_bits_[p >> 6] &= ~mask;
    }
  }

  /// Recomputes the whole bitmap (cold; after membership changes).
  void rebuild_eligible();

  [[nodiscard]] std::size_t queue_depth(std::size_t p,
                                        TrafficClass cls) const noexcept {
    return queues_[static_cast<std::size_t>(cls)][p].size();
  }

  // --- link pipelines (fixed-depth FIFOs over one flat allocation) --------
  //
  // Logical link p (position p -> p+1) lives in physical column
  // link_col(p) = (p + rot_) mod R.  With depth 1 every in-flight frame
  // advances exactly one link per slot, so the engine's event-driven fast
  // regime "moves" all of them at once by decrementing rot_ — a frame's
  // physical slot never changes between injection and delivery.  Outside
  // that regime rot_ stays 0 and the translation is the identity.

  [[nodiscard]] std::size_t link_col(std::size_t p) const noexcept {
    const std::size_t c = p + rot_;
    const std::size_t columns = link_head_.size();
    return c >= columns ? c - columns : c;
  }
  /// Advances every in-flight frame one link (depth-1 fast regime only).
  void rotate_links_one() noexcept {
    rot_ = (rot_ == 0 ? static_cast<std::uint32_t>(link_head_.size()) : rot_) -
           1;
  }

  [[nodiscard]] std::size_t link_columns() const noexcept {
    return link_head_.size();
  }
  [[nodiscard]] std::size_t link_depth() const noexcept { return link_depth_; }
  [[nodiscard]] bool link_empty(std::size_t p) const noexcept {
    return link_count_[link_col(p)] == 0;
  }
  [[nodiscard]] std::size_t link_size(std::size_t p) const noexcept {
    return link_count_[link_col(p)];
  }
  [[nodiscard]] LinkFrame& link_front(std::size_t p) noexcept {
    const std::size_t c = link_col(p);
    return link_slots_[c * link_depth_ + link_head_[c]];
  }
  [[nodiscard]] const LinkFrame& link_front(std::size_t p) const noexcept {
    const std::size_t c = link_col(p);
    return link_slots_[c * link_depth_ + link_head_[c]];
  }
  void link_pop(std::size_t p) noexcept {
    const std::size_t c = link_col(p);
    link_slots_[c * link_depth_ + link_head_[c]].busy = false;
    const std::uint32_t next = link_head_[c] + 1;
    link_head_[c] =
        next == static_cast<std::uint32_t>(link_depth_) ? 0 : next;
    --link_count_[c];
  }
  /// False when the pipeline is full (cannot happen while the depth
  /// invariant holds; callers treat it as a lost frame defensively).
  [[nodiscard]] bool link_push(std::size_t p, LinkFrame&& frame) noexcept {
    const std::size_t c = link_col(p);
    if (link_count_[c] == link_depth_) return false;
    std::size_t tail = link_head_[c] + link_count_[c];
    if (tail >= link_depth_) tail -= link_depth_;
    link_slots_[c * link_depth_ + tail] = std::move(frame);
    ++link_count_[c];
    return true;
  }

  [[nodiscard]] LinkFrame& transit(std::size_t p) noexcept {
    return transit_[p];
  }
  [[nodiscard]] const LinkFrame& transit(std::size_t p) const noexcept {
    return transit_[p];
  }

  /// Frames on links plus busy transit registers (accounting identity).
  [[nodiscard]] std::uint64_t frames_in_flight() const noexcept;

  // --- cold-path column accessors -----------------------------------------

  [[nodiscard]] const std::vector<NodeId>& ids() const noexcept {
    return ids_;
  }
  [[nodiscard]] const std::vector<Quota>& quotas() const noexcept {
    return quota_;
  }

 private:
  friend class Engine;
  friend class Station;
  friend class ::wrt::check::InvariantAuditor;
  friend struct ::wrt::check::EngineTestHook;

  std::size_t queue_capacity_ = 4096;

  // Station identity and Send-algorithm state, by ring position.
  std::vector<NodeId> ids_;
  std::vector<Quota> quota_;
  std::vector<std::uint32_t> k1_assured_;
  std::vector<std::uint32_t> rt_pck_;        ///< RT sent since last release
  std::vector<std::uint32_t> nrt_pck_;       ///< non-RT since last release
  std::vector<std::uint32_t> assured_sent_;  ///< Assured share of nrt_pck_
  std::vector<std::uint64_t> drops_;         ///< queue-full rejections
  // Class queues: queues_[class][position].
  std::vector<traffic::PacketRing> queues_[3];

  // Control-plane timers and rotation history, by ring position.
  std::vector<Tick> last_sat_arrival_;    ///< for SAT_TIMER
  std::vector<Tick> last_sat_departure_;
  std::vector<Tick> last_rotation_arrival_;  ///< rotation statistics
  std::vector<std::int64_t> rounds_since_rap_;
  std::vector<std::vector<Tick>> arrival_history_;  ///< bounded, oldest first

  // Data plane: logical link p -> p+1 is a ring buffer over link_depth_
  // slots at physical column link_col(p); transit_[p] holds the frame
  // position p must forward next (absolute priority over local injection).
  std::vector<LinkFrame> link_slots_;
  std::vector<std::uint32_t> link_head_;
  std::vector<std::uint32_t> link_count_;
  std::vector<LinkFrame> transit_;
  std::size_t link_depth_ = 0;
  std::uint32_t rot_ = 0;  ///< logical->physical column rotation offset

  // Send-eligibility bitmap (see refresh_eligible); rebuilt lazily after
  // membership changes.
  std::vector<std::uint64_t> eligible_bits_;
  bool eligible_bits_dirty_ = true;
};

}  // namespace wrt::wrtring
