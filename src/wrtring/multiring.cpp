#include "wrtring/multiring.hpp"

#include <algorithm>
#include <set>

#include "ring/virtual_ring.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace wrt::wrtring {

namespace {

/// Per-ring seed: the coordinator seed mixed (splitmix64) with the ring's
/// smallest member id.  Anchoring on a stable property of the membership —
/// instead of the old `seed_ + engines_.size() * 7919`, which depended on
/// component discovery order — keeps each ring's RNG stream identical when
/// unrelated components appear, vanish, or are enumerated differently.
/// Disjoint memberships have distinct minima, so streams never collide.
[[nodiscard]] std::uint64_t ring_seed(std::uint64_t coordinator_seed,
                                      NodeId anchor) {
  std::uint64_t state =
      coordinator_seed ^ (0x9e3779b97f4a7c15ULL * (anchor + 1ULL));
  return util::splitmix64(state);
}

}  // namespace

MultiRingCoordinator::MultiRingCoordinator(phy::Topology* topology,
                                           Config config, std::uint64_t seed)
    : topology_(topology), config_(std::move(config)), seed_(seed) {}

void MultiRingCoordinator::form_rings_over(std::vector<NodeId> component) {
  std::vector<NodeId> group = std::move(component);
  std::vector<NodeId> peeled;
  while (group.size() >= 3) {
    if (ring::build_ring_over(*topology_, group).ok()) {
      Config ring_config = config_;
      ring_config.members = group;
      const NodeId anchor = *std::min_element(group.begin(), group.end());
      auto engine = std::make_unique<Engine>(topology_,
                                             std::move(ring_config),
                                             ring_seed(seed_, anchor));
      if (engine->init().ok()) {
        const std::size_t index = engines_.size();
        for (const NodeId member : group) ring_index_[member] = index;
        engine->set_membership_callback(
            [this, index](NodeId node, bool joined) {
              on_membership_change(index, node, joined);
            });
        memberships_.push_back(group);
        engines_.push_back(std::move(engine));
        if (!peeled.empty()) form_rings_over(std::move(peeled));
        return;
      }
    }
    // Peel the station with the fewest in-group neighbours — the usual
    // Hamiltonicity blocker — and retry with the rest.
    std::size_t worst_index = 0;
    std::size_t worst_degree = ~std::size_t{0};
    const std::set<NodeId> in_group(group.begin(), group.end());
    for (std::size_t i = 0; i < group.size(); ++i) {
      std::size_t degree = 0;
      for (const NodeId neighbor : topology_->neighbors(group[i])) {
        if (in_group.contains(neighbor)) ++degree;
      }
      if (degree < worst_degree) {
        worst_degree = degree;
        worst_index = i;
      }
    }
    peeled.push_back(group[worst_index]);
    group.erase(group.begin() + static_cast<std::ptrdiff_t>(worst_index));
  }
  unserved_.insert(unserved_.end(), group.begin(), group.end());
  unserved_.insert(unserved_.end(), peeled.begin(), peeled.end());
}

util::Status MultiRingCoordinator::init() {
  // Enumerate connected components of the alive graph.
  std::vector<bool> seen(topology_->node_count(), false);
  for (NodeId start = 0; start < topology_->node_count(); ++start) {
    if (seen[start] || !topology_->alive(start)) continue;
    std::vector<NodeId> component;
    std::vector<NodeId> frontier{start};
    seen[start] = true;
    while (!frontier.empty()) {
      const NodeId u = frontier.back();
      frontier.pop_back();
      component.push_back(u);
      for (const NodeId v : topology_->neighbors(u)) {
        if (!seen[v]) {
          seen[v] = true;
          frontier.push_back(v);
        }
      }
    }
    std::sort(component.begin(), component.end());
    form_rings_over(std::move(component));
  }
  std::sort(unserved_.begin(), unserved_.end());
  util::log(util::LogLevel::kInfo,
            "MultiRing: " + std::to_string(engines_.size()) + " ring(s), " +
                std::to_string(unserved_.size()) + " unserved station(s)");
  if (engines_.empty()) {
    return util::Error::no_ring_possible("no component can host a ring");
  }
  return util::Status::success();
}

void MultiRingCoordinator::step() {
  for (auto& engine : engines_) engine->step();
}

void MultiRingCoordinator::run_slots(std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) step();
}

void MultiRingCoordinator::on_membership_change(std::size_t index,
                                                NodeId node, bool joined) {
  if (joined) {
    ring_index_[node] = index;
    const auto it =
        std::lower_bound(unserved_.begin(), unserved_.end(), node);
    if (it != unserved_.end() && *it == node) unserved_.erase(it);
  } else {
    // Only clear the entry if it still points at this ring: a rebuild of
    // ring A must not erase a node that has meanwhile joined ring B.
    const auto entry = ring_index_.find(node);
    if (entry != ring_index_.end() && entry->second == index) {
      ring_index_.erase(node);
      // unserved() means "alive but in no ring": dead stations drop out of
      // the bookkeeping entirely (coverage() ignores them too).
      if (topology_->alive(node)) {
        const auto it =
            std::lower_bound(unserved_.begin(), unserved_.end(), node);
        if (it == unserved_.end() || *it != node) unserved_.insert(it, node);
      }
    }
  }
}

Engine* MultiRingCoordinator::ring_of(NodeId node) {
  const auto entry = ring_index_.find(node);
  return entry == ring_index_.end() ? nullptr
                                    : engines_[entry->second].get();
}

double MultiRingCoordinator::coverage() const {
  std::size_t alive = 0;
  for (NodeId n = 0; n < topology_->node_count(); ++n) {
    if (topology_->alive(n)) ++alive;
  }
  if (alive == 0) return 0.0;
  std::size_t served = 0;
  for (const auto& engine : engines_) served += engine->virtual_ring().size();
  return static_cast<double>(served) / static_cast<double>(alive);
}

std::uint64_t MultiRingCoordinator::total_delivered() const {
  std::uint64_t total = 0;
  for (const auto& engine : engines_) {
    total += engine->stats().sink.total_delivered();
  }
  return total;
}

}  // namespace wrt::wrtring
