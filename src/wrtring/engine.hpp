// WRT-Ring protocol engine.
//
// A slot-synchronous simulation of the full protocol of Section 2:
//
//  * Data plane — a slotted virtual ring with destination release.  Each
//    slot, every station forwards the frame in transit on its incoming link
//    or, if that link slot is empty, injects a local packet according to the
//    Send algorithm (Section 2.2).  Per-hop transmissions are CDMA-coded to
//    the downstream neighbour, so all N links are active concurrently —
//    Figure 1's spatial reuse.
//  * Control plane — the SAT signal circulates with the traffic direction,
//    held at not-satisfied stations (SAT algorithm), carrying the RAP mutex
//    flag (Section 2.4.1).
//  * Topology changes — RAP-based join (NEXT_FREE / JOIN_REQ / JOIN_ACK),
//    graceful leave, SAT-loss detection via per-station SAT_TIMER, SAT_REC
//    cut-out recovery, and full ring re-formation as last resort
//    (Sections 2.4 and 2.5).
//
// The engine steps in MAC slots; one Engine instance is single-threaded and
// owns all protocol state, so parallel replications each build their own.
//
// Storage layout: the per-slot hot path is position-indexed,
// structure-of-arrays.  All per-station state — quota/split counters,
// per-class backlog queues, link-pipeline cursors, transit registers, SAT
// timers and rotation history — lives in `kernel_` (wrtring::SlotKernel),
// one dense column per field, indexed by ring position: entry p always
// describes the station at ring_.station_at(p) and the link from position p
// to p+1.  data_plane_step() and check_sat_timers() are contiguous passes
// over exactly the columns they touch, with no associative lookups and no
// per-station object hops; the OO accessors (station(), Station) are views
// into the same columns.  Every membership path (init, join, SAT_REC
// cut-out, graceful leave, ring re-formation) mutates the kernel columns
// and the ring order together and then refreshes `position_index_`
// (NodeId -> position, -1 when not a member), which serves the by-NodeId
// control-plane accessors.  `membership_epoch_` increments on each such
// change; traffic sources cache their station's position keyed by the
// epoch, and the per-position liveness/reachability caches are keyed by
// (topology version, membership epoch, stall epoch), so steady-state
// stepping is lookup-free.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cdma/channel.hpp"
#include "cdma/code_assignment.hpp"
#include "analysis/bounds.hpp"
#include "phy/topology.hpp"
#include "ring/frame.hpp"
#include "ring/virtual_ring.hpp"
#include "sim/event_trace.hpp"
#include "sim/stats.hpp"
#include "telemetry/journal.hpp"
#include "telemetry/metrics.hpp"
#include "traffic/trace.hpp"
#include "traffic/traffic.hpp"
#include "util/flat_map.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/thread_safety.hpp"
#include "wrtring/config.hpp"
#include "wrtring/recovery_fsm.hpp"
#include "wrtring/soa_kernel.hpp"
#include "wrtring/station.hpp"

namespace wrt::check {
class InvariantAuditor;   // runtime invariant auditor (src/check/)
struct EngineTestHook;    // test-only state corruption (src/check/)
}  // namespace wrt::check

namespace wrt::wrtring {

/// Aggregate protocol statistics exposed to harnesses.
struct EngineStats {
  sim::SampleStats sat_rotation_slots;   ///< per-arrival rotation samples
  sim::SampleStats sat_hold_slots;       ///< per-seizure SAT hold durations
  sim::SampleStats access_delay_slots;   ///< packet queue -> first tx
  sim::SampleStats rt_access_delay_slots;
  traffic::Sink sink;                    ///< delivery accounting
  std::uint64_t sat_hops = 0;            ///< SAT link traversals
  std::uint64_t sat_rounds = 0;          ///< completed rotations (station 0)
  std::uint64_t data_transmissions = 0;  ///< local injections
  std::uint64_t transit_forwards = 0;
  std::uint64_t frames_lost_link = 0;    ///< frames dropped on a broken hop
  /// In-flight frames discarded when a re-formation (join update phase,
  /// cut-out, ring rebuild) resets the data plane — kept apart from
  /// frames_lost_link so link-quality metrics aren't inflated by
  /// membership churn.
  std::uint64_t frames_lost_rebuild = 0;
  /// In-flight frames discarded by a *successful join's* update phase
  /// (Section 2.4.1 resets the data plane when the ring gains a member).
  /// Kept apart from frames_lost_rebuild so recovery-casualty metrics
  /// aren't polluted by planned, healthy growth.
  std::uint64_t frames_lost_churn = 0;
  std::uint64_t frames_dropped_stale = 0;///< destination left the ring
  std::uint64_t control_messages_lost = 0;  ///< NEXT_FREE/JOIN_REQ/JOIN_ACK
  std::uint64_t join_retries = 0;        ///< backoffs after a lost handshake
  std::uint64_t joins_abandoned = 0;     ///< gave up after max attempts
  std::uint64_t sat_losses_detected = 0;
  std::uint64_t sat_recoveries = 0;      ///< successful SAT_REC cut-outs
  std::uint64_t cut_outs = 0;            ///< stations cut by a SAT_REC
  /// Cut-outs whose victim was demonstrably alive and reachable at the cut
  /// (a stale SAT_REC claimed it) — the failure mode the RecoveryFsm guard
  /// window exists to eliminate; the chaos gate asserts 0 under guard.
  std::uint64_t spurious_cutouts = 0;
  std::uint64_t ring_rebuilds = 0;
  std::uint64_t raps_started = 0;
  std::uint64_t joins_completed = 0;
  std::uint64_t joins_rejected = 0;
  std::uint64_t leaves_completed = 0;
  sim::SampleStats sat_loss_detection_slots;  ///< actual loss -> detection
  sim::SampleStats recovery_total_slots;      ///< actual loss -> SAT restored
  sim::SampleStats join_latency_slots;        ///< request -> in ring
  std::uint64_t cdma_collisions = 0;
  /// Fidelity mode: headers that failed the encode/decode round trip
  /// (must stay 0; a CRC/codec bug would show here).
  std::uint64_t header_decode_failures = 0;
  /// Time-weighted fraction of ring links carrying a frame (spatial-reuse
  /// utilisation, 0..1); sample with ring_utilization().
  sim::TimeWeightedStats busy_links;
};

/// Where the SAT (or SAT_REC) currently is.
enum class SatState : std::uint8_t {
  kInTransit,  ///< travelling a link; arrives at `arrival_tick`
  kHeld,       ///< seized by a not-satisfied station (or a station in RAP)
  kLost,       ///< dropped (injected fault or broken link); timers running
  kRebuilding, ///< ring re-formation downtime in progress
};

/// Shard-confined: one engine is one federation shard, driven by exactly
/// one thread.  Independent engines on independent threads are safe (the
/// process-wide MetricRegistry they all flush into is atomic/lock-guarded;
/// see tests/concurrency/shard_smoke_test.cpp), but every entry point
/// below — stepping, membership (request_join / request_leave /
/// kill_station), and the fault plane (stall_station, degrade_link,
/// drop_control_once) — must be called from the engine's owning thread.
/// Cross-shard interaction goes through value-type gateway messages, never
/// by poking another shard's engine (lint rule `cross-shard-handle`).
class WRT_SHARD_CONFINED Engine final {
 public:
  /// `topology` must outlive the engine; the engine mutates liveness when
  /// stations are killed and reads reachability every slot.
  Engine(phy::Topology* topology, Config config, std::uint64_t seed);

  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Builds the virtual ring, assigns CDMA codes, initialises stations and
  /// launches the SAT.  Must be called exactly once before step().
  [[nodiscard]] util::Status init();

  // -- traffic ------------------------------------------------------------

  /// Attaches a stochastic source; packets arrive at spec.src's queues.
  void add_source(const traffic::FlowSpec& spec);

  /// Attaches an always-backlogged source at spec.src (keeps the class
  /// queue topped up to `backlog` packets every slot).
  void add_saturated_source(const traffic::FlowSpec& spec,
                            std::size_t backlog = 4);

  /// Replays a recorded/synthetic trace (video GOPs, voice spurts, ...) as
  /// one flow from `src` to `dst`.
  void add_trace_source(traffic::Trace trace, FlowId flow, NodeId src,
                        NodeId dst, std::int64_t deadline_slots = 0);

  /// Direct injection for tests; returns false if the queue is full or the
  /// station is not in the ring.
  // wrt-lint-allow(by-value-frame-param): deliberate sink, moved into queue
  bool inject_packet(traffic::Packet packet);

  // -- execution ----------------------------------------------------------

  /// Advances one MAC slot.
  void step();

  /// Advances `n` slots.
  void run_slots(std::int64_t n);

  [[nodiscard]] Tick now() const noexcept { return now_; }
  [[nodiscard]] std::int64_t now_slots() const noexcept {
    return ticks_to_slots(now_);
  }

  // -- topology change & fault injection -----------------------------------

  /// Registers `node` (already placed in the topology) as wanting to join;
  /// it starts listening for NEXT_FREE broadcasts (Section 2.4.1).
  void request_join(NodeId node, Quota quota);

  /// Graceful leave (Section 2.4.2): the station announces its exit via its
  /// successor, which runs the SAT_REC cut-out.
  [[nodiscard]] util::Status request_leave(NodeId node);

  /// Kills a station without notice (battery out): it stops forwarding
  /// everything; detection happens via SAT_TIMER (Section 2.5).
  void kill_station(NodeId node);

  /// Wedges a station (hung process, stuck radio): unlike kill_station it
  /// stays alive in the topology but forwards neither frames nor the SAT,
  /// so the ring sees the same symptoms as a crash — until resume_station.
  void stall_station(NodeId node);

  /// Un-wedges a stalled station.  If the ring cut it out in the meantime
  /// and auto_rejoin is on, it re-enters through the normal join procedure.
  void resume_station(NodeId node);
  [[nodiscard]] bool station_stalled(NodeId node) const noexcept {
    return node < stalled_.size() && stalled_[node] != 0;
  }

  /// Drops the SAT the next time it crosses a link (transient control loss).
  void drop_sat_once() noexcept { drop_sat_pending_ = true; }

  /// Join-handshake messages (Section 2.4.1) that the fault plane can kill.
  enum class ControlMsg : std::uint8_t {
    kNextFree = 0,
    kJoinReq = 1,
    kJoinAck = 2,
  };

  /// Drops the next transmission of the given handshake message (one-shot,
  /// like drop_sat_once).  The affected joiner backs off and retries.
  void drop_control_once(ControlMsg which) noexcept {
    drop_control_pending_[static_cast<std::size_t>(which)] = true;
  }

  /// Overrides the Gilbert–Elliott loss process on the (undirected) link
  /// a <-> b for every purpose — data frames, SAT hops, and control
  /// messages all degrade together, as a fading radio link would.
  void degrade_link(NodeId a, NodeId b, const fault::GeParams& params);

  /// Removes a degrade_link override; the link reverts to channel defaults.
  void heal_link(NodeId a, NodeId b);

  // -- operator-forced protection switching (RecoveryFsm, DESIGN.md §14) ----

  /// Forces `node` out of the ring through the graceful-leave machinery and
  /// holds it out until clear_force_switch; re-admission then waits out the
  /// WTB hold-off (Config::wtb_slots).  Fails on a duplicate force or when
  /// the leave cannot start (ring too small, another leave pending).
  [[nodiscard]] util::Status force_switch(NodeId node);

  /// Releases an operator-forced switch; `node` becomes eligible for
  /// re-admission once it has stayed healthy for wtb_slots.
  void clear_force_switch(NodeId node);

  /// The recovery state machine (observers: state, counters, MTTR samples).
  [[nodiscard]] const RecoveryFsm& recovery_fsm() const noexcept {
    return fsm_;
  }

  // -- observers ------------------------------------------------------------

  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ring::VirtualRing& virtual_ring() const noexcept {
    return ring_;
  }

  /// Time-averaged fraction of ring links busy with a frame since start —
  /// the spatial-reuse utilisation the capacity experiments report.
  /// (Non-const: flushes the running time-weighted segment.)
  [[nodiscard]] double ring_utilization() {
    return stats_.busy_links.time_average(now_);
  }
  [[nodiscard]] SatState sat_state() const noexcept { return sat_state_; }
  [[nodiscard]] bool in_rap() const noexcept { return rap_end_ > now_; }

  /// Station accessor (by node id); throws when not in the ring.  Returns a
  /// value-type view into the slot kernel's arrays — valid until the next
  /// membership change.
  [[nodiscard]] Station station(NodeId node) const;

  /// Updates a station's quota at runtime (quota renegotiation after
  /// admissions, releases, or a cut-out's quota being re-assigned,
  /// Section 2.5).  The new quota takes effect at the next SAT release.
  void set_station_quota(NodeId node, Quota quota);

  /// Per-station Diffserv split (Section 2.3): reserves `k1` of the
  /// station's k quota for Assured traffic.  Independent of the global
  /// Config::k1_assured default and of every other station.
  void set_station_split(NodeId node, std::uint32_t k1_assured);

  /// Current analytical parameters (S, T_rap, quotas) matching this ring —
  /// feed these to analysis::sat_time_bound & friends.
  [[nodiscard]] analysis::RingParams ring_params() const;

  /// Per-station SAT inter-arrival history (most recent last, bounded);
  /// used by the Theorem-2 property tests and the check:: oracles.
  [[nodiscard]] const std::vector<Tick>& sat_arrival_history(NodeId node) const;

  /// Admission check used by the join handshake and the gateway: would the
  /// ring extended by `extra` still satisfy every admitted deadline?
  /// (Conservative: checks the Theorem-1 bound against `max_sat_time_goal_`.)
  [[nodiscard]] bool admission_allows(Quota extra) const;

  /// Sets the delay goal (slots) used by admission control; 0 disables
  /// admission rejection.
  void set_max_sat_time_goal(std::int64_t slots) noexcept {
    max_sat_time_goal_ = slots;
  }

  /// Membership-change notification: invoked with (node, joined) after a
  /// station enters the ring (join, rebuild recruit) or leaves it (cut-out,
  /// graceful leave, rebuild exclusion).  Admission controllers subscribe
  /// to keep session registries and quota allocations in sync with the
  /// ring.  Pass nullptr to unsubscribe.
  using MembershipCallback = std::function<void(NodeId, bool joined)>;
  void set_membership_callback(MembershipCallback callback) {
    membership_callback_ = std::move(callback);
  }

  /// Delivery observation hook: invoked after every frame absorption (both
  /// the literal slot loop and the event-driven fast regime route through
  /// the same deliver()) with the absorbed packet, the absorbing station
  /// and the current tick.  The federation layer uses it to tap
  /// gateway-bound crossings without polling per-station sinks.  Unset
  /// (the default) it costs one branch per delivery.  Pure observation:
  /// the callback must not re-enter the engine, and in a federation it
  /// must touch only its own shard's state.
  using DeliveryTap = std::function<void(const traffic::Packet&, NodeId, Tick)>;
  void set_delivery_tap(DeliveryTap tap) { delivery_tap_ = std::move(tap); }

  [[nodiscard]] const cdma::CodeMap& codes() const noexcept { return codes_; }

  /// Ordered protocol events (SAT losses, detections, cut-outs, joins, ...)
  /// in a bounded ring buffer; see sim::EventTrace.
  [[nodiscard]] const sim::EventTrace& event_trace() const noexcept {
    return trace_;
  }

  /// Attaches a telemetry event journal (nullptr detaches).  While attached
  /// the engine records SAT residency, transmissions, deliveries, and
  /// membership churn into per-station rings, and — when
  /// `queue_sample_every_slots` > 0 — samples every station's queue depth on
  /// that cadence.  Observation only: attaching a journal never changes
  /// protocol behaviour, and with no journal attached the per-event cost is
  /// one pointer test.  The journal must outlive the engine or be detached.
  void set_journal(telemetry::Journal* journal,
                   std::int64_t queue_sample_every_slots = 0) noexcept {
    journal_ = journal;
    journal_queue_sample_slots_ = queue_sample_every_slots;
  }

  /// Fills `meta` (S, T_rap, per-station quotas) for offline bound
  /// evaluation; Journal::set_meta + save make a self-contained artifact.
  [[nodiscard]] telemetry::RingMeta journal_meta() const;

  /// Frames currently travelling ring links (plus any busy transit
  /// register).  Closes the accounting identity the chaos soak asserts:
  /// data_transmissions == delivered + frames_lost_link +
  /// frames_lost_rebuild + frames_lost_churn + frames_dropped_stale +
  /// frames_in_flight().
  [[nodiscard]] std::uint64_t frames_in_flight() const noexcept;

  /// Internal-consistency audit (counters within quotas, ring/link/station
  /// structures aligned, SAT state coherent, frame accounting leak-free).
  /// Returns the first violation found; tests and the monkey harness call
  /// this between steps.
  [[nodiscard]] util::Status check_invariants() const;

  /// External audit hook (see check::InvariantAuditor).  Invoked with an
  /// event tag after every membership event (init, join, cut-out, graceful
  /// leave, ring re-formation) and — in audit builds only (WRT_AUDIT_LEVEL,
  /// util/audit.hpp) — every `every_k_slots` slots.  In release builds the
  /// periodic call compiles out entirely; the membership-event call costs
  /// one branch on a rare path.  Pass nullptr to detach.
  using AuditHook = std::function<void(const char* event)>;
  void set_audit_hook(AuditHook hook, std::int64_t every_k_slots = 0) {
    audit_hook_ = std::move(hook);
    audit_every_slots_ = every_k_slots;
  }

 private:
  friend class ::wrt::check::InvariantAuditor;
  friend struct ::wrt::check::EngineTestHook;
  friend class RecoveryFsm;  // sole caller of start_recovery/start_rebuild

  struct SatSignal {
    bool is_rec = false;          ///< SAT_REC rather than plain SAT
    bool graceful_leave = false;  ///< SAT_REC triggered by a voluntary leave
    NodeId rec_origin = kInvalidNode;   ///< station that generated SAT_REC
    NodeId rec_failed = kInvalidNode;   ///< station being cut out
    NodeId rap_owner = kInvalidNode;    ///< RAP mutex flag (Section 2.4.1)
  };

  struct PendingJoin {
    Quota quota{1, 1};
    Tick requested_at = 0;
    // NEXT_FREE table: ingress -> its announced successor (Section 2.4.1).
    util::FlatMap<NodeId, NodeId> heard;
    NodeId chosen_ingress = kInvalidNode;
    bool table_complete = false;
    // Lossy-handshake retry state: `attempts` counts lost JOIN_REQ/ACK
    // exchanges; until `backoff_until` the joiner ignores NEXT_FREE.
    std::uint32_t attempts = 0;
    Tick backoff_until = 0;
  };

  // --- slot phases ---
  void poll_traffic();
  void data_plane_step();
  void sat_plane_step();
  void rap_step();
  void check_sat_timers();

  // --- event-driven data-plane fast regime ---
  //
  // While the data plane is fault-free (every member active, every hop
  // reachable, no data-loss process armed, no fidelity channel) and the hop
  // latency is one slot, "every in-flight frame advances one link per slot"
  // is a global rotation: rotating the kernel's logical->physical column
  // map stands in for moving the frames, and the only per-slot work left is
  // the slot's events — deliveries/stale purges (precomputed into a slot
  // calendar at injection time) and Send-algorithm injections (walked off
  // the kernel's eligibility bitmap).  Per-slot cost is O(events), not
  // O(ring + in-flight).  Any premise breaking (fault, stall, churn,
  // depth > 1) falls back to the per-position loops below, which reproduce
  // the protocol literally — so fault slots are byte-identical by
  // construction, and clean slots are checked against the same --digest
  // oracle.
  void fast_data_plane_step();
  /// (Re)derives the slot calendar and eligibility bitmap from the current
  /// in-flight frames; stamps the epoch key the fast regime is valid for.
  void build_fast_plan();
  /// Restores per-frame hops/arrival (not maintained while the rotation
  /// regime is active) from entered_ring and now_; idempotent, called when
  /// falling back to the per-position loops and before any external
  /// observer reads frame state.
  void materialize_frame_view();
  /// Observer-facing materialization (see check::InvariantAuditor).
  void sync_frame_view() const {
    const_cast<Engine*>(this)->materialize_frame_view();
  }

  // --- SAT handling ---
  void sat_arrive(NodeId at);
  void sat_release(NodeId from);
  void launch_sat(NodeId at);
  void start_recovery(NodeId detector);
  void start_rebuild();
  void finish_rebuild();

  // --- RAP / join ---
  [[nodiscard]] bool wants_rap(NodeId node) const;
  void begin_rap(NodeId ingress);
  void finish_rap();
  void complete_join(NodeId joiner, NodeId ingress);
  /// RecoveryFsm admission callback: files the auto_rejoin PendingJoin for
  /// a station whose WTR/WTB hold-off lapsed (no-op if already joining or
  /// back in the ring).
  void queue_rejoin(NodeId node, Quota quota);

  // --- helpers ---
  void notify_audit(const char* event) {
    if (audit_hook_) audit_hook_(event);
  }
  /// Journal append guarded by attachment; one pointer test when detached.
  void journal_record(NodeId station, telemetry::JournalKind kind,
                      std::uint32_t arg = 0, std::uint64_t value = 0) {
    if (journal_ != nullptr) journal_->record(station, kind, now_, arg, value);
  }
  void maybe_sample_queues();
  void maybe_periodic_audit();
  /// Rebuilds the per-position liveness/reachability caches when their
  /// (topology version, membership epoch, stall epoch) key went stale.
  void refresh_hot_caches();
  /// Which casualty counter a data-plane teardown charges its in-flight
  /// frames to: recovery paths (cut-out, ring re-formation) indict the
  /// failure machinery, a join's update phase is planned churn.
  enum class TeardownCause : std::uint8_t { kRecovery, kJoin };
  void drop_in_flight_frames(TeardownCause cause = TeardownCause::kRecovery);
  /// Alive in the topology and not wedged — the liveness test every plane
  /// applies (a stalled station is present but silent).
  [[nodiscard]] bool station_active(NodeId node) const noexcept {
    return topology_->alive(node) &&
           (node >= stalled_.size() || stalled_[node] == 0);
  }
  /// Consumes a one-shot drop_control_once flag.
  [[nodiscard]] bool take_control_drop(ControlMsg which) noexcept {
    bool& flag = drop_control_pending_[static_cast<std::size_t>(which)];
    const bool armed = flag;
    flag = false;
    return armed;
  }
  /// Lost JOIN_REQ/JOIN_ACK bookkeeping: bump the retry counter, enter
  /// exponential backoff, abandon cleanly past the attempt budget.
  void register_join_backoff(NodeId joiner);
  [[nodiscard]] std::int64_t effective_sat_timeout(NodeId node) const;
  [[nodiscard]] Quota quota_for_position(std::size_t position) const;
  void record_rotation(std::size_t position, Tick arrival);
  [[nodiscard]] CdmaCode allocate_code_for(NodeId node) const;
  void assign_codes();
  void deliver(LinkFrame& frame, NodeId at);
  [[nodiscard]] bool data_allowed() const noexcept;

  // --- position-indexed membership maintenance ---
  /// Ring position of `node`, or -1 when it is not a member.
  [[nodiscard]] std::int32_t station_position(NodeId node) const noexcept;
  /// Rebuilds position_index_ from ring_ and bumps membership_epoch_.
  void rebuild_position_index();
  /// Resizes links_/transit_regs_ to the ring and empties them.
  void reset_data_plane();
  /// Inserts `joiner` (with its station/control state) right after
  /// `ingress`, keeping kernel columns and ring order aligned.
  void insert_member(NodeId ingress, NodeId joiner, Quota quota);
  /// Removes the member at `position` from the ring and all kernel columns.
  void erase_member(std::size_t position);
  /// Cached ring position for a bound traffic source (epoch-validated);
  /// -1 when the source's station is not a member.
  template <typename Bound>
  [[nodiscard]] std::int32_t bound_position(Bound& bound);

  phy::Topology* topology_;
  Config config_;
  std::uint64_t seed_;
  Tick now_ = 0;
  bool initialised_ = false;

  ring::VirtualRing ring_;
  cdma::CodeMap codes_;

  // Structure-of-arrays per-position storage (see the header comment):
  // station counters, class queues, SAT timers, link pipelines and transit
  // registers, one dense column per field, all kept in lockstep with the
  // ring order by the membership paths.
  SlotKernel kernel_;
  std::vector<std::int32_t> position_index_;  ///< NodeId -> position, -1 out
  std::uint64_t membership_epoch_ = 1;

  // Per-position liveness and next-hop reachability, cached off the
  // topology so the data plane does not re-derive unit-disk geometry and
  // failed-link sets every slot.  Exact: keyed on (topology version,
  // membership epoch, stall epoch), all of which bump on every mutation
  // the cached predicates depend on.
  std::vector<std::uint8_t> active_cache_;
  std::vector<std::uint8_t> link_ok_cache_;
  std::uint64_t cache_topology_version_ = ~std::uint64_t{0};
  std::uint64_t cache_membership_epoch_ = 0;
  std::uint64_t cache_stall_epoch_ = ~std::uint64_t{0};
  std::uint64_t stall_epoch_ = 0;  ///< bumped by stall/resume
  bool all_active_ok_ = false;     ///< refresh_hot_caches: no stalled/dead member
  bool all_links_ok_ = false;      ///< refresh_hot_caches: every hop reachable

  // Event-driven fast regime (see the private-method comment block).
  // calendar_[slot % (R + 3)] holds the frames whose one terminal event
  // (delivery at the destination, or stale purge after R + 1 hops) lands in
  // that slot; `column` is the frame's physical link column, fixed for its
  // whole flight under the rotation representation.
  struct DataEvent {
    std::uint32_t column;
    std::uint32_t position;  ///< arrival position (slow-loop visit order)
    bool stale;
  };
  std::vector<std::vector<DataEvent>> calendar_;
  std::uint64_t fast_in_flight_ = 0;
  bool fast_valid_ = false;
  /// True while frames' hops/arrival fields lag behind the rotation regime.
  bool frames_view_stale_ = false;
  std::uint64_t fast_topology_version_ = 0;
  std::uint64_t fast_membership_epoch_ = 0;
  std::uint64_t fast_stall_epoch_ = 0;

  // Saturated-source fast poll: a bound needs a refill only after its
  // station transmitted, so the data plane records drained positions and
  // poll_traffic() visits just those — after one full pass has verified
  // every bound is topped up (and falls back whenever that base case or the
  // position map goes stale).
  std::vector<std::uint32_t> drained_positions_;
  std::vector<std::int32_t> position_to_saturated_;
  bool full_poll_pending_ = true;
  bool saturated_fast_ok_ = true;  ///< false: two bounds share a station
  std::uint64_t poll_epoch_ = 0;

  // SAT state.
  SatState sat_state_ = SatState::kLost;
  SatSignal sat_;
  NodeId sat_location_ = kInvalidNode;  ///< held-at or transit-destination
  Tick sat_arrival_tick_ = kNeverTick;
  Tick sat_hold_started_ = kNeverTick;  ///< seizure instant (kHeld only)
  Tick sat_lost_at_ = kNeverTick;       ///< ground-truth loss instant
  Tick rebuild_done_ = kNeverTick;
  Tick rec_deadline_ = kNeverTick;      ///< SAT_REC must return by this tick
  NodeId leave_pending_ = kInvalidNode; ///< graceful leave in progress
  NodeId rotation_anchor_ = kInvalidNode;  ///< station whose arrivals count rounds

  // RAP state.
  Tick rap_end_ = 0;
  Tick rap_ear_end_ = 0;
  NodeId rap_ingress_ = kInvalidNode;
  NodeId rap_accepted_joiner_ = kInvalidNode;

  // Joins.  Sorted by NodeId (deterministic NEXT_FREE scan order).
  util::FlatMap<NodeId, PendingJoin> pending_joins_;

  // Traffic.  Each bound source caches its station's ring position keyed by
  // membership_epoch_, so steady-state polling performs no lookups.
  struct BoundSource {
    traffic::TrafficSource source;
    NodeId station;
    std::int32_t position = -1;
    std::uint64_t epoch = 0;
  };
  struct BoundSaturated {
    traffic::SaturatedSource source;
    NodeId station;
    std::size_t backlog;
    std::int32_t position = -1;
    std::uint64_t epoch = 0;
  };
  struct BoundTrace {
    traffic::TraceSource source;
    NodeId station;
    std::int32_t position = -1;
    std::uint64_t epoch = 0;
  };
  /// Tops the bound's class queue back up to its backlog.
  void refill_saturated(BoundSaturated& bound, std::size_t position);

  std::vector<BoundSource> sources_;
  std::vector<BoundSaturated> saturated_;
  std::vector<BoundTrace> traces_;
  std::vector<traffic::Packet> arrival_scratch_;

  // Fault plane.  link_loss_ owns every loss draw (per purpose, per
  // directed link); stalled_ is indexed by NodeId and grown on demand.
  bool drop_sat_pending_ = false;
  bool drop_control_pending_[3] = {false, false, false};
  fault::LinkLossField link_loss_;
  std::vector<std::uint8_t> stalled_;

  // Admission.
  std::int64_t max_sat_time_goal_ = 0;
  MembershipCallback membership_callback_;
  DeliveryTap delivery_tap_;

  // Correctness tooling (src/check/): membership events always notify an
  // attached hook; the per-slot cadence exists only in audit builds.
  AuditHook audit_hook_;
  std::int64_t audit_every_slots_ = 0;

  // Derived SAT timeout (Theorem 1 bound over the current ring), cached so
  // the per-slot timer scan does not recompute ring_params().  Invalidated
  // by every membership change and by quota renegotiation.
  mutable std::int64_t sat_timeout_cache_ = 0;
  mutable bool sat_timeout_dirty_ = true;

  // SAT-timer scan guard: the earliest expiry found by the last full
  // check_sat_timers() sweep.  last_sat_arrival only ever advances to now_
  // and the timeout is constant while the guard is valid, so no station can
  // expire before this tick and the O(R) sweep is skipped until it passes.
  // Invalidated whenever the effective timeout may change (membership
  // change, quota renegotiation).
  Tick sat_timer_guard_ = kNeverTick;
  bool sat_timer_guard_valid_ = false;

  // Recovery decision funnel (guard window, WTR/WTB hold-offs, revertive
  // re-insertion, request de-dup).  All-defaults tuning makes every call a
  // pass-through to the legacy actions — the digest-identity contract.
  RecoveryFsm fsm_;

  // CDMA fidelity channel (allocated only when config_.cdma_fidelity).
  std::unique_ptr<cdma::Channel<traffic::Packet>> channel_;

  EngineStats stats_;
  sim::EventTrace trace_;

  // Telemetry journal (opt-in; see set_journal).
  telemetry::Journal* journal_ = nullptr;
  std::int64_t journal_queue_sample_slots_ = 0;

#if WRT_TELEMETRY_LEVEL
  // Engine-local staging for hot-path counters and histograms (plain
  // integer bumps); published to the process-wide registry every
  // kTelemetryFlushSlots slots, at run_slots() return, and on destruction.
  static constexpr std::int64_t kTelemetryFlushSlots = 64;
  telemetry::TelemetryBatch telem_batch_;
#endif
};

}  // namespace wrt::wrtring
