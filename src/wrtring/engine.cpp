#include "wrtring/engine.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <string>

#include "telemetry/metrics.hpp"
#include "util/audit.hpp"
#include "util/log.hpp"

namespace wrt::wrtring {

namespace {
constexpr std::size_t kArrivalHistoryCap = 64;

/// True when `node` is in the sorted vector (cold-path membership test used
/// by the rebuild paths; keeps associative containers out of this file).
bool sorted_contains(const std::vector<NodeId>& sorted, NodeId node) {
  return std::binary_search(sorted.begin(), sorted.end(), node);
}
}  // namespace

Engine::Engine(phy::Topology* topology, Config config, std::uint64_t seed)
    : topology_(topology), config_(std::move(config)), seed_(seed) {
  assert(topology_ != nullptr);
  assert(config_.hop_latency_slots >= 1);
#if WRT_TELEMETRY_LEVEL
  // Snapshots drain this batch, so registry totals stay exact even for
  // drivers that call bare step() between flush boundaries.
  telemetry::MetricRegistry::instance().add_flush_source(&telem_batch_);
#endif
}

Engine::~Engine() {
#if WRT_TELEMETRY_LEVEL
  telemetry::MetricRegistry::instance().remove_flush_source(&telem_batch_);
#endif
}

util::Status Engine::init() {
  assert(!initialised_);
  if (const auto valid = config_.validate(); !valid.ok()) return valid;
  fsm_.bind(this, {config_.guard_slots, config_.wtr_slots, config_.wtb_slots,
                   config_.revertive});

  // Channel model: the scalar i.i.d. knobs are the degenerate form of the
  // per-link Gilbert–Elliott field; each folds in only when the richer
  // process for that purpose is not configured.  With everything disabled
  // the field makes zero RNG draws — behaviour is bit-identical to a build
  // without the fault plane.
  fault::ChannelConfig channel = config_.channel;
  if (!channel.data.enabled() && config_.frame_loss_prob > 0.0) {
    channel.data = fault::GeParams::iid(config_.frame_loss_prob);
  }
  if (!channel.sat.enabled() && config_.sat_loss_prob > 0.0) {
    channel.sat = fault::GeParams::iid(config_.sat_loss_prob);
  }
  if (!channel.control.enabled() && config_.control_loss_prob > 0.0) {
    channel.control = fault::GeParams::iid(config_.control_loss_prob);
  }
  link_loss_.configure(channel, seed_);
  auto ring_result =
      config_.members.empty()
          ? ring::build_ring(*topology_)
          : ring::build_ring_over(*topology_, config_.members);
  if (!ring_result.ok()) return ring_result.error();
  ring_ = std::move(ring_result.value());

  assign_codes();
  if (!cdma::verify_two_hop_distinct(*topology_, codes_)) {
    return util::Error::protocol_violation(
        "CDMA code assignment violates the distance-2 condition");
  }

  kernel_.clear();
  kernel_.configure(config_.queue_capacity);
  for (std::size_t p = 0; p < ring_.size(); ++p) {
    kernel_.push_station(ring_.station_at(p), quota_for_position(p),
                         config_.k1_assured, now_);
  }
  rebuild_position_index();
  reset_data_plane();
  rotation_anchor_ = ring_.station_at(0);

  if (config_.cdma_fidelity) {
    channel_ = std::make_unique<cdma::Channel<traffic::Packet>>(topology_);
    for (std::size_t p = 0; p < ring_.size(); ++p) {
      const NodeId node = ring_.station_at(p);
      channel_->set_listen_codes(node, {codes_[node], kBroadcastCode});
    }
  }

  initialised_ = true;
  launch_sat(ring_.station_at(0));
  notify_audit("init");
  return util::Status::success();
}

void Engine::assign_codes() {
  codes_ = cdma::assign_greedy_two_hop(*topology_);
}

Quota Engine::quota_for_position(std::size_t position) const {
  if (position < config_.station_quotas.size()) {
    return config_.station_quotas[position];
  }
  return config_.default_quota;
}

// ---------------------------------------------------------------------------
// Position-indexed membership maintenance
// ---------------------------------------------------------------------------

std::int32_t Engine::station_position(NodeId node) const noexcept {
  return node < position_index_.size() ? position_index_[node] : -1;
}

void Engine::rebuild_position_index() {
  position_index_.assign(topology_->node_count(), -1);
  const std::vector<NodeId>& order = ring_.order();
  for (std::size_t p = 0; p < order.size(); ++p) {
    position_index_[order[p]] = static_cast<std::int32_t>(p);
  }
  ++membership_epoch_;
  sat_timeout_dirty_ = true;
  sat_timer_guard_valid_ = false;
}

void Engine::reset_data_plane() {
  kernel_.reset_links(static_cast<std::size_t>(config_.hop_latency_slots));
  // Every teardown funnels through here: the slot calendar now describes
  // frames that no longer exist.
  fast_valid_ = false;
  frames_view_stale_ = false;
  fast_in_flight_ = 0;
}

void Engine::insert_member(NodeId ingress, NodeId joiner, Quota quota) {
  const std::size_t position = ring_.position_of(ingress) + 1;
  ring_.insert_after(ingress, joiner);
  kernel_.insert_station(position, joiner, quota, config_.k1_assured, now_);
  rebuild_position_index();
}

void Engine::erase_member(std::size_t position) {
  assert(position < ring_.size());
  const NodeId node = ring_.station_at(position);
  ring_.remove(node);
  kernel_.erase_station(position);
  // A departing RAP-round owner would leave the mutex flag dangling forever
  // (the flag is cleared only when the SAT completes a round back at the
  // owner), permanently blocking every future RAP.
  if (sat_.rap_owner == node) sat_.rap_owner = kInvalidNode;
  rebuild_position_index();
}

template <typename Bound>
std::int32_t Engine::bound_position(Bound& bound) {
  if (bound.epoch != membership_epoch_) {
    bound.position = station_position(bound.station);
    bound.epoch = membership_epoch_;
  }
  return bound.position;
}

CdmaCode Engine::allocate_code_for(NodeId node) const {
  std::vector<CdmaCode> used;
  for (const NodeId other : cdma::two_hop_neighbors(*topology_, node)) {
    if (other < codes_.size() && codes_[other] != kInvalidCode) {
      used.push_back(codes_[other]);
    }
  }
  std::sort(used.begin(), used.end());
  CdmaCode code = 1;
  for (const CdmaCode taken : used) {
    if (taken > code) break;      // smallest free code found
    if (taken == code) ++code;    // duplicates in `used` just re-test `code`
  }
  return code;
}

Station Engine::station(NodeId node) const {
  const std::int32_t position = station_position(node);
  if (position < 0) {
    throw std::out_of_range("Engine::station: node not in ring");
  }
  // The view is handed out for reading; Station's mutators exist for the
  // engine's own paths and the unit tests, which hold non-const kernels.
  return Station(const_cast<SlotKernel*>(&kernel_),
                 static_cast<std::uint32_t>(position));
}

void Engine::set_station_quota(NodeId node, Quota quota) {
  const std::int32_t position = station_position(node);
  if (position < 0) {
    throw std::out_of_range("Engine::set_station_quota: node not in ring");
  }
  kernel_.set_quota(static_cast<std::size_t>(position), quota);
  sat_timeout_dirty_ = true;
  sat_timer_guard_valid_ = false;
}

void Engine::set_station_split(NodeId node, std::uint32_t k1_assured) {
  const std::int32_t position = station_position(node);
  if (position < 0) {
    throw std::out_of_range("Engine::set_station_split: node not in ring");
  }
  const auto p = static_cast<std::size_t>(position);
  if (k1_assured > kernel_.quotas()[p].k) {
    throw std::invalid_argument(
        "Engine::set_station_split: k1 exceeds the station's k quota");
  }
  kernel_.set_k1_assured(p, k1_assured);
}

analysis::RingParams Engine::ring_params() const {
  analysis::RingParams params;
  params.ring_latency_slots = static_cast<std::int64_t>(ring_.size()) *
                              config_.effective_sat_hop_latency();
  params.t_rap_slots = config_.t_rap_slots();
  params.quotas = kernel_.quotas();
  return params;
}

telemetry::RingMeta Engine::journal_meta() const {
  telemetry::RingMeta meta;
  meta.ring_latency_slots = static_cast<std::int64_t>(ring_.size()) *
                            config_.effective_sat_hop_latency();
  meta.t_rap_slots = config_.t_rap_slots();
  meta.quotas.reserve(ring_.size());
  for (std::size_t p = 0; p < ring_.size(); ++p) {
    meta.quotas.emplace_back(ring_.station_at(p), kernel_.quotas()[p]);
  }
  return meta;
}

const std::vector<Tick>& Engine::sat_arrival_history(NodeId node) const {
  static const std::vector<Tick> kEmpty;
  const std::int32_t position = station_position(node);
  return position < 0
             ? kEmpty
             : kernel_.arrival_history_[static_cast<std::size_t>(position)];
}

bool Engine::admission_allows(Quota extra) const {
  if (max_sat_time_goal_ <= 0) return true;
  analysis::RingParams params = ring_params();
  params.ring_latency_slots += config_.effective_sat_hop_latency();
  params.quotas.push_back(extra);
  return analysis::sat_time_bound(params) <= max_sat_time_goal_;
}

// ---------------------------------------------------------------------------
// Traffic
// ---------------------------------------------------------------------------

void Engine::add_source(const traffic::FlowSpec& spec) {
  sources_.push_back(
      {traffic::TrafficSource(spec, seed_ ^ (0xABCD1234u + spec.id)),
       spec.src});
}

void Engine::add_saturated_source(const traffic::FlowSpec& spec,
                                  std::size_t backlog) {
  for (const auto& other : saturated_) {
    // Two bounds on one station would need a per-position refill *list*;
    // keep the drained-position fast poll for the common one-bound shape.
    if (other.station == spec.src) saturated_fast_ok_ = false;
  }
  saturated_.push_back({traffic::SaturatedSource(spec), spec.src, backlog});
  full_poll_pending_ = true;
}

void Engine::add_trace_source(traffic::Trace trace, FlowId flow, NodeId src,
                              NodeId dst, std::int64_t deadline_slots) {
  traces_.push_back(
      {traffic::TraceSource(std::move(trace), flow, src, dst, deadline_slots),
       src});
}

// wrt-lint-allow(by-value-frame-param): deliberate sink, moved into queue
bool Engine::inject_packet(traffic::Packet packet) {
  const std::int32_t position = station_position(packet.src);
  if (position < 0) return false;
  return kernel_.enqueue(static_cast<std::size_t>(position),
                         std::move(packet));
}

void Engine::poll_traffic() {
  for (auto& bound : sources_) {
    arrival_scratch_.clear();
    bound.source.poll(now_, arrival_scratch_);
    if (arrival_scratch_.empty()) continue;
    const std::int32_t position = bound_position(bound);
    for (auto& packet : arrival_scratch_) {
      // enqueue() moves only on acceptance, so a rejected (queue-full)
      // packet is still intact for drop attribution.
      if (position < 0 ||
          !kernel_.enqueue(static_cast<std::size_t>(position),
                           std::move(packet))) {
        stats_.sink.record_drop(packet);
      }
    }
  }
  for (auto& bound : traces_) {
    arrival_scratch_.clear();
    bound.source.poll(now_, arrival_scratch_);
    if (arrival_scratch_.empty()) continue;
    const std::int32_t position = bound_position(bound);
    for (auto& packet : arrival_scratch_) {
      if (position < 0 ||
          !kernel_.enqueue(static_cast<std::size_t>(position),
                           std::move(packet))) {
        stats_.sink.record_drop(packet);
      }
    }
  }
  if (saturated_.empty()) return;
  // A saturated bound needs a refill exactly when its queue depth dropped
  // below the backlog, and the only depth-reducing operation on the data
  // path is take_for_transmit — which both data-plane regimes record into
  // drained_positions_.  So after one full pass has verified every bound is
  // topped up, later slots refill just the drained stations.  Any escape
  // hatch (membership change, new bound, a refill that could not reach the
  // backlog, two bounds on one station) re-arms the full pass.
  if (!saturated_fast_ok_ || full_poll_pending_ ||
      poll_epoch_ != membership_epoch_) {
    poll_epoch_ = membership_epoch_;
    position_to_saturated_.assign(ring_.size(), -1);
    bool all_full = true;
    for (std::size_t i = 0; i < saturated_.size(); ++i) {
      auto& bound = saturated_[i];
      const std::int32_t position32 = bound_position(bound);
      if (position32 < 0) continue;
      const auto position = static_cast<std::size_t>(position32);
      position_to_saturated_[position] = static_cast<std::int32_t>(i);
      refill_saturated(bound, position);
      all_full = all_full &&
                 kernel_.queue_depth(position, bound.source.spec().cls) >=
                     bound.backlog;
    }
    full_poll_pending_ = !all_full;
    drained_positions_.clear();
    return;
  }
  for (const std::uint32_t position : drained_positions_) {
    if (position >= position_to_saturated_.size()) continue;
    const std::int32_t i = position_to_saturated_[position];
    if (i < 0) continue;
    auto& bound = saturated_[static_cast<std::size_t>(i)];
    refill_saturated(bound, position);
    if (kernel_.queue_depth(position, bound.source.spec().cls) <
        bound.backlog) {
      full_poll_pending_ = true;  // queue at capacity: fall back next slot
    }
  }
  drained_positions_.clear();
}

void Engine::refill_saturated(BoundSaturated& bound, std::size_t position) {
  const std::size_t depth =
      kernel_.queue_depth(position, bound.source.spec().cls);
  if (depth >= bound.backlog) return;
  arrival_scratch_.clear();
  bound.source.take_into(now_, bound.backlog - depth, arrival_scratch_);
  for (auto& packet : arrival_scratch_) {
    (void)kernel_.enqueue(position, std::move(packet));
  }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

void Engine::step() {
  assert(initialised_);

  if (sat_state_ == SatState::kRebuilding) {
    if (now_ >= rebuild_done_) {
      finish_rebuild();
    }
  }

  poll_traffic();
  rap_step();
  if (sat_state_ != SatState::kRebuilding) {
    data_plane_step();
    sat_plane_step();
    check_sat_timers();
  }
  // Recovery timers (guard window, WTR/WTB hold-offs) run even through a
  // rebuild; with all-defaults tuning timers_active() is always false.
  if (fsm_.timers_active()) fsm_.tick(now_);
  if (journal_queue_sample_slots_ > 0) maybe_sample_queues();

  now_ += kTicksPerSlot;
  WRT_BATCH_COUNT(telem_batch_, kSlotsStepped);
#if WRT_TELEMETRY_LEVEL
  if ((now_slots() & (kTelemetryFlushSlots - 1)) == 0) telem_batch_.flush();
#endif
  WRT_AUDIT(maybe_periodic_audit());
}

void Engine::maybe_sample_queues() {
  if (now_slots() % journal_queue_sample_slots_ != 0) return;
  for (std::size_t p = 0; p < kernel_.size(); ++p) {
    const std::size_t depth =
        kernel_.queue_depth(p, TrafficClass::kRealTime) +
        kernel_.queue_depth(p, TrafficClass::kAssured) +
        kernel_.queue_depth(p, TrafficClass::kBestEffort);
    WRT_BATCH_OBSERVE(telem_batch_, kQueueDepth, depth);
    journal_record(kernel_.ids()[p], telemetry::JournalKind::kQueueDepth, 0,
                   static_cast<std::uint64_t>(depth));
  }
}

void Engine::maybe_periodic_audit() {
  if (audit_hook_ && audit_every_slots_ > 0 &&
      now_slots() % audit_every_slots_ == 0) {
    audit_hook_("periodic");
  }
}

void Engine::run_slots(std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) step();
  // Publish staged hot-path telemetry so registry totals are exact whenever
  // a driving loop has handed control back.
  WRT_BATCH_FLUSH(telem_batch_);
}

bool Engine::data_allowed() const noexcept {
  // Section 2.4.1: during the RAP "transmissions are not allowed and hence
  // the network is idle" — no new injections (transit keeps draining).
  return !in_rap() && sat_state_ != SatState::kRebuilding;
}

// ---------------------------------------------------------------------------
// Data plane
// ---------------------------------------------------------------------------

void Engine::deliver(LinkFrame& frame, NodeId at) {
  // Deliveries are counted per slot (WRT_COUNT_N in data_plane_step), not
  // here: one batched atomic per slot instead of one per absorbed frame.
  stats_.sink.record_delivery(frame.packet, now_);
  journal_record(at, telemetry::JournalKind::kDeliver, frame.packet.src);
  if (delivery_tap_) delivery_tap_(frame.packet, at, now_);
}

void Engine::refresh_hot_caches() {
  const std::uint64_t topology_version = topology_->version();
  if (cache_topology_version_ == topology_version &&
      cache_membership_epoch_ == membership_epoch_ &&
      cache_stall_epoch_ == stall_epoch_) {
    return;
  }
  const std::size_t R = ring_.size();
  const std::vector<NodeId>& order = ring_.order();
  active_cache_.resize(R);
  link_ok_cache_.resize(R);
  bool all_active = true;
  bool all_links = true;
  for (std::size_t p = 0; p < R; ++p) {
    active_cache_[p] = station_active(order[p]) ? 1 : 0;
    link_ok_cache_[p] =
        topology_->reachable(order[p], order[p + 1 == R ? 0 : p + 1]) ? 1 : 0;
    all_active = all_active && active_cache_[p] != 0;
    all_links = all_links && link_ok_cache_[p] != 0;
  }
  all_active_ok_ = all_active;
  all_links_ok_ = all_links;
  cache_topology_version_ = topology_version;
  cache_membership_epoch_ = membership_epoch_;
  cache_stall_epoch_ = stall_epoch_;
}

void Engine::data_plane_step() {
  const std::size_t R = ring_.size();
  if (R == 0) return;
  const Tick hop_ticks = slots_to_ticks(config_.hop_latency_slots);
  const std::vector<NodeId>& order = ring_.order();
  refresh_hot_caches();
  // Hoisted per slot: with the data-loss purpose entirely disabled, offer()
  // makes no RNG draw, so skipping the call is behaviour-identical.
  const bool data_loss_possible =
      link_loss_.enabled(fault::LossPurpose::kData);

  // Event-driven fast regime: with no fault machinery armed and a one-slot
  // hop, every clean slot is a pure rotation plus its scheduled events —
  // see the comment at the private method block.  Any premise breaking
  // falls through to the literal per-position loops below.
  const bool fast_ok = !config_.cdma_fidelity && !data_loss_possible &&
                       all_active_ok_ && all_links_ok_ &&
                       config_.hop_latency_slots == 1 &&
                       kernel_.link_depth() == 1 && kernel_.link_columns() == R;
  if (fast_ok) {
    if (!fast_valid_ || fast_membership_epoch_ != membership_epoch_ ||
        fast_topology_version_ != cache_topology_version_ ||
        fast_stall_epoch_ != stall_epoch_) {
      build_fast_plan();
    }
    if (fast_valid_) {
      fast_data_plane_step();
      return;
    }
  } else if (fast_valid_) {
    materialize_frame_view();
    fast_valid_ = false;
  }

  if (config_.cdma_fidelity) channel_->begin_slot(now_);

  // Phase 1: arrivals.  A frame sent last slot reaches the next station now;
  // the destination absorbs it (destination release, enabling spatial
  // reuse), everything else becomes this slot's transit load.
  std::uint64_t delivered_now = 0;
  for (std::size_t p = 0; p < R; ++p) {
    const std::size_t upstream = p == 0 ? R - 1 : p - 1;
    if (kernel_.link_empty(upstream)) continue;
    LinkFrame& frame = kernel_.link_front(upstream);
    if (frame.arrival > now_) continue;
    if (!active_cache_[p]) {
      kernel_.link_pop(upstream);
      ++stats_.frames_lost_link;
      continue;
    }
    const NodeId here = order[p];
    if (frame.packet.dst == here) {
      deliver(frame, here);
      ++delivered_now;
      kernel_.link_pop(upstream);
      continue;
    }
    ++frame.hops;
    if (frame.hops > R + 1) {
      // Destination is no longer a ring member; purge the stale frame.
      ++stats_.frames_dropped_stale;
      stats_.sink.record_drop(frame.packet);
      kernel_.link_pop(upstream);
      continue;
    }
    // One move, link slot -> transit register; the pop only rewinds the
    // cursor of the (now moved-from) slot.
    kernel_.transit(p) = std::move(frame);
    kernel_.transit(p).busy = true;
    kernel_.link_pop(upstream);
  }

  // Phase 2: transmissions.  A slot carrying transit is forwarded in the
  // same slot time (the slot structure rotates one position per slot); an
  // empty slot may be filled by a local packet per the Send algorithm.
  const bool injection_allowed = data_allowed();
  std::size_t busy_links_now = 0;
  // Per-slot telemetry accumulators: one relaxed atomic per class per slot
  // instead of one per transmission (dead code when WRT_TELEMETRY=OFF).
  std::uint64_t tx_by_class[3] = {0, 0, 0};
  std::uint64_t transit_now = 0;
  LinkFrame inject_scratch;
  for (std::size_t p = 0; p < R; ++p) {
    LinkFrame* out = nullptr;
    if (kernel_.transit(p).busy) {
      out = &kernel_.transit(p);
      ++stats_.transit_forwards;
      ++transit_now;
    } else if (injection_allowed && active_cache_[p]) {
      if (const auto cls = kernel_.eligible_class(p)) {
        traffic::Packet packet = kernel_.take_for_transmit(p, *cls);
        if (!saturated_.empty()) {
          drained_positions_.push_back(static_cast<std::uint32_t>(p));
        }
        const double delay = ticks_to_slots_real(now_ - packet.created);
        stats_.access_delay_slots.add(delay);
        if (packet.cls == TrafficClass::kRealTime) {
          stats_.rt_access_delay_slots.add(delay);
          WRT_BATCH_OBSERVE(telem_batch_, kRtAccessDelaySlots, delay);
        } else {
          WRT_BATCH_OBSERVE(telem_batch_, kBeAccessDelaySlots, delay);
        }
        ++tx_by_class[static_cast<std::size_t>(packet.cls)];
        journal_record(order[p], telemetry::JournalKind::kTransmit,
                       static_cast<std::uint32_t>(packet.cls),
                       static_cast<std::uint64_t>(now_ - packet.created));
        ++stats_.data_transmissions;
        inject_scratch.packet = std::move(packet);
        inject_scratch.entered_ring = now_;
        inject_scratch.hops = 0;
        inject_scratch.busy = true;
        out = &inject_scratch;
      }
    }
    if (out == nullptr) continue;

    if (!link_ok_cache_[p]) {
      out->busy = false;
      ++stats_.frames_lost_link;
      WRT_BATCH_COUNT(telem_batch_, kFramesLost);
      continue;
    }
    const NodeId sender = order[p];
    const NodeId receiver = order[p + 1 == R ? 0 : p + 1];
    if (data_loss_possible &&
        link_loss_.offer(fault::LossPurpose::kData, sender, receiver)) {
      out->busy = false;
      ++stats_.frames_lost_link;
      WRT_BATCH_COUNT(telem_batch_, kFramesLost);
      continue;
    }
    if (config_.cdma_fidelity) {
      // Fidelity mode also exercises the wire format: every hop's header
      // is serialised and re-parsed exactly as a receiver would.
      const auto decoded =
          ring::decode_header(ring::encode_packet_header(out->packet));
      if (!decoded.has_value()) ++stats_.header_decode_failures;
      channel_->transmit(sender, codes_[receiver], out->packet);
    }
    out->arrival = now_ + hop_ticks;
    // One move into the link column; the frame keeps busy=true there and
    // the moved-from register/scratch is cleared right after.
    if (!kernel_.link_push(p, std::move(*out))) {
      // Unreachable while the depth invariant holds; account, don't corrupt.
      out->busy = false;
      ++stats_.frames_lost_link;
      continue;
    }
    out->busy = false;
    ++busy_links_now;
  }
  stats_.busy_links.update(
      now_, static_cast<double>(busy_links_now) / static_cast<double>(R));
  WRT_BATCH_COUNT_N(telem_batch_, kTxRealTime, tx_by_class[0]);
  WRT_BATCH_COUNT_N(telem_batch_, kTxAssured, tx_by_class[1]);
  WRT_BATCH_COUNT_N(telem_batch_, kTxBestEffort, tx_by_class[2]);
  WRT_BATCH_COUNT_N(telem_batch_, kTransitForwards, transit_now);
  WRT_BATCH_COUNT_N(telem_batch_, kDeliveries, delivered_now);

  if (config_.cdma_fidelity) {
    stats_.cdma_collisions += channel_->end_slot();
  }
}

// ---------------------------------------------------------------------------
// Data plane, event-driven fast regime
//
// Premise (checked every slot): hop latency one slot, depth-1 links, every
// member active, every hop reachable, no data-loss process, no fidelity
// channel.  Then each slot the slow loops above do exactly three things:
// advance every in-flight frame one link, absorb the frames whose terminal
// event (delivery, stale purge) falls due, and inject per the Send
// algorithm.  The advance becomes one rotation of the kernel's
// logical->physical column map; the terminal events were precomputed into
// calendar_ when the frame entered the ring (its physical column never
// changes under the rotation, so the event can name it years in advance);
// injections walk the kernel's Send-eligibility bitmap.  Per-slot work is
// O(deliveries + injections), independent of ring size and in-flight count.
//
// Digest equivalence is structural, not approximate: the fast step performs
// the same stats/journal/telemetry mutations in the same order as the slow
// loops (deliveries in ascending arrival-position order, then injections in
// ascending position order), makes zero RNG draws — just like the slow path
// under the same premises — and every slot where a premise fails runs the
// literal loops.  Frame hops/arrival fields are not maintained while the
// regime is active; materialize_frame_view() restores them (they are pure
// functions of entered_ring and now_) before anyone looks.
// ---------------------------------------------------------------------------

void Engine::build_fast_plan() {
  fast_valid_ = false;
  // Frames' cached view must be consistent before (or after) any regime
  // change; cheap no-op unless a fast regime just ended.
  materialize_frame_view();
  const std::size_t R = ring_.size();
  // A busy transit register between slots only exists via test-hook state
  // corruption; the rotation regime cannot represent it, so stay slow.
  for (std::size_t p = 0; p < R; ++p) {
    if (kernel_.transit_[p].busy) return;
  }
  const std::size_t buckets = R + 3;
  if (calendar_.size() != buckets) calendar_.resize(buckets);
  for (auto& bucket : calendar_) bucket.clear();

  const std::int64_t now_slot = now_slots();
  const auto sr = static_cast<std::int64_t>(R);
  fast_in_flight_ = 0;
  for (std::size_t p = 0; p < R; ++p) {
    if (kernel_.link_empty(p)) continue;
    const LinkFrame& frame = kernel_.link_front(p);
    // The frame on logical link p arrives at position p+1 this slot; that
    // arrival is its number `age` (it entered the ring `age` slots ago and
    // advances one link per slot).  The slow loop purges a frame at arrival
    // R+2 (hops would exceed R+1) and checks delivery before the hop count,
    // so when both fall on the same arrival the delivery wins.
    const std::int64_t arrive = p + 1 == R ? 0 : static_cast<std::int64_t>(p) + 1;
    const std::int64_t age = now_slot - ticks_to_slots(frame.entered_ring);
    std::int64_t j_stale = sr + 2 - age;
    if (j_stale < 0) j_stale = 0;
    const std::int32_t pd = station_position(frame.packet.dst);
    std::int64_t j;
    bool stale;
    if (pd >= 0 && (j = (pd - arrive + sr) % sr) <= j_stale) {
      stale = false;
    } else {
      j = j_stale;
      stale = true;
    }
    calendar_[static_cast<std::size_t>((now_slot + j) %
                                       static_cast<std::int64_t>(buckets))]
        .push_back({static_cast<std::uint32_t>(kernel_.link_col(p)),
                    static_cast<std::uint32_t>((arrive + j) % sr), stale});
    ++fast_in_flight_;
  }
  if (kernel_.eligible_bits_dirty_) kernel_.rebuild_eligible();
  fast_membership_epoch_ = membership_epoch_;
  fast_topology_version_ = cache_topology_version_;
  fast_stall_epoch_ = stall_epoch_;
  fast_valid_ = true;
}

void Engine::fast_data_plane_step() {
  const std::size_t R = ring_.size();
  const std::vector<NodeId>& order = ring_.order();
  const std::size_t buckets = R + 3;
  const std::int64_t now_slot = now_slots();

  // Every in-flight frame advances one link: rotate the column map.
  kernel_.rotate_links_one();

  // Terminal events due this slot.  Arrival positions within a slot are
  // unique (each column feeds one position), and the slow loop visits
  // arrivals in ascending position order — sort to reproduce its stats and
  // journal ordering exactly.
  std::uint64_t delivered_now = 0;
  auto& bucket =
      calendar_[static_cast<std::size_t>(now_slot) % buckets];
  if (!bucket.empty()) {
    std::sort(bucket.begin(), bucket.end(),
              [](const DataEvent& a, const DataEvent& b) {
                return a.position < b.position;
              });
    for (const DataEvent& ev : bucket) {
      LinkFrame& frame = kernel_.link_slots_[ev.column];  // depth 1
      if (ev.stale) {
        ++stats_.frames_dropped_stale;
        stats_.sink.record_drop(frame.packet);
      } else {
        deliver(frame, order[ev.position]);
        ++delivered_now;
      }
      frame.busy = false;
      kernel_.link_count_[ev.column] = 0;
      --fast_in_flight_;
    }
    bucket.clear();
  }

  // Every surviving frame was forwarded by the station it just reached.
  stats_.transit_forwards += fast_in_flight_;
  const std::uint64_t transit_now = fast_in_flight_;

  // Injections: walk the Send-eligibility bitmap in ascending position
  // order (word snapshot; set bits are re-verified so a stale bit can only
  // cost a check, never a wrong transmission).
  std::uint64_t tx_by_class[3] = {0, 0, 0};
  std::uint64_t injected_now = 0;
  if (data_allowed()) {
    auto& bits = kernel_.eligible_bits_;
    for (std::size_t w = 0; w < bits.size(); ++w) {
      std::uint64_t word = bits[w];
      while (word != 0) {
        const std::size_t p =
            (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
        word &= word - 1;
        if (p >= R) break;
        const std::size_t c = kernel_.link_col(p);
        if (kernel_.link_count_[c] != 0) continue;  // carrying transit
        const auto cls = kernel_.eligible_class(p);
        if (!cls) {
          // Stale bit (test hooks mutate Send state behind the mutators).
          bits[w] &= ~(std::uint64_t{1} << (p & 63));
          continue;
        }
        traffic::Packet packet = kernel_.take_for_transmit(p, *cls);
        if (!saturated_.empty()) {
          drained_positions_.push_back(static_cast<std::uint32_t>(p));
        }
        const double delay = ticks_to_slots_real(now_ - packet.created);
        stats_.access_delay_slots.add(delay);
        if (packet.cls == TrafficClass::kRealTime) {
          stats_.rt_access_delay_slots.add(delay);
          WRT_BATCH_OBSERVE(telem_batch_, kRtAccessDelaySlots, delay);
        } else {
          WRT_BATCH_OBSERVE(telem_batch_, kBeAccessDelaySlots, delay);
        }
        ++tx_by_class[static_cast<std::size_t>(packet.cls)];
        journal_record(order[p], telemetry::JournalKind::kTransmit,
                       static_cast<std::uint32_t>(packet.cls),
                       static_cast<std::uint64_t>(now_ - packet.created));
        ++stats_.data_transmissions;
        const std::int32_t pd = station_position(packet.dst);
        LinkFrame& slot = kernel_.link_slots_[c];
        slot.packet = std::move(packet);
        slot.entered_ring = now_;
        slot.hops = 0;
        slot.arrival = now_ + kTicksPerSlot;
        slot.busy = true;
        kernel_.link_count_[c] = 1;
        ++fast_in_flight_;
        ++injected_now;
        // Schedule the frame's terminal event: delivery after the hop count
        // to its destination (a full circle when dst == src), or the stale
        // purge at arrival R+2 when the destination is not a member.
        const auto sr = static_cast<std::int64_t>(R);
        std::int64_t j;
        bool stale_ev;
        if (pd >= 0) {
          j = (pd - static_cast<std::int64_t>(p) - 1 + sr) % sr + 1;
          stale_ev = false;
        } else {
          j = sr + 2;
          stale_ev = true;
        }
        calendar_[static_cast<std::size_t>(
                      (now_slot + j) % static_cast<std::int64_t>(buckets))]
            .push_back({static_cast<std::uint32_t>(c),
                        static_cast<std::uint32_t>(
                            (static_cast<std::int64_t>(p) + j) % sr),
                        stale_ev});
      }
    }
  }

  stats_.busy_links.update(now_,
                           static_cast<double>(transit_now + injected_now) /
                               static_cast<double>(R));
  WRT_BATCH_COUNT_N(telem_batch_, kTxRealTime, tx_by_class[0]);
  WRT_BATCH_COUNT_N(telem_batch_, kTxAssured, tx_by_class[1]);
  WRT_BATCH_COUNT_N(telem_batch_, kTxBestEffort, tx_by_class[2]);
  WRT_BATCH_COUNT_N(telem_batch_, kTransitForwards, transit_now);
  WRT_BATCH_COUNT_N(telem_batch_, kDeliveries, delivered_now);
  frames_view_stale_ = true;
}

void Engine::materialize_frame_view() {
  if (!frames_view_stale_) return;
  frames_view_stale_ = false;
  // Under the rotation regime a frame's hop count and arrival tick are pure
  // functions of when it entered the ring: it advances one link per slot,
  // so by `now_` it has completed (now - entered)/slot - 1 forwarding hops
  // and its pending arrival is due now.
  const std::size_t columns = kernel_.link_columns();
  for (std::size_t c = 0; c < columns; ++c) {
    if (kernel_.link_count_[c] == 0) continue;
    LinkFrame& frame = kernel_.link_slots_[c];  // depth 1 in this regime
    frame.hops = static_cast<std::uint32_t>(
        ticks_to_slots(now_ - frame.entered_ring) - 1);
    frame.arrival = now_;
  }
}

// ---------------------------------------------------------------------------
// SAT plane
// ---------------------------------------------------------------------------

void Engine::launch_sat(NodeId at) {
  sat_ = SatSignal{};
  sat_state_ = SatState::kHeld;
  sat_location_ = at;
  sat_lost_at_ = kNeverTick;
  for (Tick& arrival : kernel_.last_sat_arrival_) arrival = now_;
  trace_.record(sim::EventKind::kSatLaunched, now_, at);
  sat_arrive(at);
}

void Engine::record_rotation(std::size_t position, Tick arrival) {
  if (kernel_.last_rotation_arrival_[position] != kNeverTick) {
    const double rotation = ticks_to_slots_real(
        arrival - kernel_.last_rotation_arrival_[position]);
    stats_.sat_rotation_slots.add(rotation);
    WRT_BATCH_OBSERVE(telem_batch_, kSatRotationSlots, rotation);
  }
  kernel_.last_rotation_arrival_[position] = arrival;
  std::vector<Tick>& history = kernel_.arrival_history_[position];
  history.push_back(arrival);
  WRT_BATCH_COUNT(telem_batch_, kSatArrivals);
  if (history.size() > kArrivalHistoryCap) {
    // Once per rotation per station: the 64-entry shift is cheaper than a
    // deque's allocation churn and keeps the history contiguous.
    history.erase(history.begin());
  }
  if (kernel_.ids_[position] == rotation_anchor_) ++stats_.sat_rounds;
}

void Engine::sat_arrive(NodeId at) {
  const std::int32_t position32 = station_position(at);
  if (position32 < 0 || !station_active(at)) {
    // Arrived at a station that just vanished: the signal is lost here.
    sat_state_ = SatState::kLost;
    if (sat_lost_at_ == kNeverTick) sat_lost_at_ = now_;
    return;
  }
  const auto position = static_cast<std::size_t>(position32);
  kernel_.last_sat_arrival_[position] = now_;
  record_rotation(position, now_);
  journal_record(at, telemetry::JournalKind::kSatArrive);

  if (sat_.is_rec && at == sat_.rec_origin) {
    // Section 2.5: the SAT_REC made it back — the ring is re-established;
    // substitute it with a plain SAT.
    if (sat_.graceful_leave) {
      ++stats_.leaves_completed;
      WRT_COUNT(kLeaves);
      journal_record(at, telemetry::JournalKind::kLeave, sat_.rec_failed);
      trace_.record(sim::EventKind::kLeaveCompleted, now_, at,
                    sat_.rec_failed);
    } else {
      ++stats_.sat_recoveries;
      WRT_COUNT(kSatRecoveries);
      if (sat_lost_at_ != kNeverTick) {
        const double rec = ticks_to_slots_real(now_ - sat_lost_at_);
        stats_.recovery_total_slots.add(rec);
        WRT_OBSERVE(kSatRecSlots, rec);
      }
      trace_.record(sim::EventKind::kRecovered, now_, at, sat_.rec_failed);
    }
    journal_record(at, telemetry::JournalKind::kSatRecDone, sat_.rec_failed);
    fsm_.on_recovery_complete(now_, sat_lost_at_ != kNeverTick
                                        ? ticks_to_slots_real(now_ -
                                                              sat_lost_at_)
                                        : -1.0);
    sat_.is_rec = false;
    sat_.rec_origin = kInvalidNode;
    sat_.rec_failed = kInvalidNode;
    sat_.graceful_leave = false;
    sat_lost_at_ = kNeverTick;
    rec_deadline_ = kNeverTick;
  }

  // RAP mutex: the owner clears the flag when the SAT completes the round.
  if (sat_.rap_owner == at) sat_.rap_owner = kInvalidNode;

  // Graceful leave: the successor of a leaving station converts the SAT
  // into a SAT_REC (Section 2.4.2).  A pending leave becomes moot when a
  // concurrent recovery already cut the leaver out.
  if (leave_pending_ != kInvalidNode && !ring_.contains(leave_pending_)) {
    leave_pending_ = kInvalidNode;
  }
  if (leave_pending_ != kInvalidNode && !sat_.is_rec &&
      at == ring_.successor(leave_pending_)) {
    sat_.is_rec = true;
    sat_.graceful_leave = true;
    sat_.rec_origin = at;
    sat_.rec_failed = leave_pending_;
    rec_deadline_ = now_ + slots_to_ticks(effective_sat_timeout(at));
    leave_pending_ = kInvalidNode;
    fsm_.on_graceful_leave(at, sat_.rec_failed, now_);
  }

  // RAP entry (Section 2.4.1): one station per round, guarded by the mutex.
  if (!sat_.is_rec && sat_.rap_owner == kInvalidNode && !in_rap() &&
      wants_rap(at)) {
    begin_rap(at);
    return;  // SAT held for the duration of the RAP.
  }

  // SAT algorithm (Section 2.2): forward when satisfied, else hold.
  sat_location_ = at;
  if (kernel_.satisfied(position)) {
    sat_release(at);
  } else {
    sat_state_ = SatState::kHeld;
    sat_hold_started_ = now_;
    WRT_BATCH_COUNT(telem_batch_, kSatHolds);
  }
}

void Engine::sat_release(NodeId from) {
  if (sat_hold_started_ != kNeverTick) {
    stats_.sat_hold_slots.add(ticks_to_slots_real(now_ - sat_hold_started_));
    sat_hold_started_ = kNeverTick;
  }
  const auto from_position = static_cast<std::size_t>(ring_.position_of(from));
  kernel_.on_sat_release(from_position);
  kernel_.last_sat_departure_[from_position] = now_;
  ++kernel_.rounds_since_rap_[from_position];

  const std::size_t R = ring_.size();
  NodeId target = ring_.order()[(from_position + 1) % R];
  bool rerouted = false;

  if (sat_.is_rec && target == sat_.rec_failed) {
    // Heal cancellation (guard mode only): the accused station is alive
    // again and the hop to it works — the SAT_REC is a stale claim left
    // over from a transient (the flapping-link case).  Withdrawing the
    // claim ends the protection episode right here (the ERPS semantic:
    // clearing the defect stops the switch): the REC reverts to a plain
    // SAT instead of burning another loop to its origin, which would
    // overrun the REC deadline and force a needless re-formation.
    bool heal_cancelled = false;
    if (fsm_.tuning().guard_slots > 0 && !sat_.graceful_leave &&
        station_active(target)) {
      refresh_hot_caches();
      heal_cancelled = link_ok_cache_[from_position] != 0;
    }
    if (heal_cancelled) {
      fsm_.on_stale_rec_cancelled(now_);
      ++stats_.sat_recoveries;
      WRT_COUNT(kSatRecoveries);
      if (sat_lost_at_ != kNeverTick) {
        const double rec = ticks_to_slots_real(now_ - sat_lost_at_);
        stats_.recovery_total_slots.add(rec);
        WRT_OBSERVE(kSatRecSlots, rec);
      }
      trace_.record(sim::EventKind::kRecovered, now_, from, sat_.rec_failed);
      journal_record(from, telemetry::JournalKind::kSatRecDone,
                     sat_.rec_failed);
      fsm_.on_recovery_complete(
          now_, sat_lost_at_ != kNeverTick
                    ? ticks_to_slots_real(now_ - sat_lost_at_)
                    : -1.0);
      sat_.is_rec = false;
      sat_.rec_origin = kInvalidNode;
      sat_.rec_failed = kInvalidNode;
      sat_.graceful_leave = false;
      sat_lost_at_ = kNeverTick;
      rec_deadline_ = kNeverTick;
    } else {
      // This station plays the role of i-1: skip the failed station by
      // addressing i+1 directly with code i+1 (Section 2.5).
      const NodeId beyond = ring_.order()[(from_position + 2) % R];
      if (R <= 3 || !topology_->reachable(from, beyond)) {
        // "station i-1 could be too far to directly reach station i+1":
        // the previous ring is no longer valid.
        fsm_.on_ring_unrepairable(now_);
        return;
      }
      const NodeId failed = target;
      const std::size_t failed_position = (from_position + 1) % R;
      const Quota failed_quota = kernel_.quota_[failed_position];
      const std::uint32_t failed_k1 = kernel_.k1_assured_[failed_position];
      const bool spurious = station_active(failed) && !sat_.graceful_leave;
      erase_member(failed_position);
      drop_in_flight_frames();
      // Re-anchor the round counter: a cut-out anchor would otherwise
      // freeze stats_.sat_rounds until a full rebuild.
      if (rotation_anchor_ == failed) rotation_anchor_ = beyond;
      target = beyond;
      rerouted = true;
      util::log(util::LogLevel::kInfo,
                "WRT-Ring: cut out station " + std::to_string(failed));
      ++stats_.cut_outs;
      WRT_COUNT(kCutOuts);
      if (spurious) {
        ++stats_.spurious_cutouts;
        WRT_COUNT(kSpuriousCutOuts);
      }
      journal_record(failed, telemetry::JournalKind::kCutOut,
                     sat_.rec_origin);
      trace_.record(sim::EventKind::kCutOut, now_, from, failed);
      if (membership_callback_) membership_callback_(failed, false);
      notify_audit(sat_.graceful_leave ? "leave" : "cut-out");
      // A station cut out by a SAT_REC re-enters through the normal join
      // procedure when configured to.  The FSM decides when: immediately
      // (legacy default) or after the WTR/WTB hold-off lapses.
      if (config_.auto_rejoin && config_.rap_policy != RapPolicy::kDisabled) {
        const bool forced = failed == fsm_.forced_station();
        if (fsm_.on_station_cut(failed, failed_quota, from, failed_k1,
                                forced, now_) == RecoveryFsm::Admit::kNow) {
          if (station_active(failed)) {
            PendingJoin rejoin;
            rejoin.quota = failed_quota;
            rejoin.requested_at = now_;
            pending_joins_[failed] = std::move(rejoin);
          }
        }
      }
    }
  }

  if (drop_sat_pending_) {
    drop_sat_pending_ = false;
    sat_state_ = SatState::kLost;
    sat_lost_at_ = now_;
    trace_.record(sim::EventKind::kSatLost, now_, from, target);
    return;
  }
  // The un-rerouted handoff is exactly the cached ring-successor hop; a
  // cut-out reroute (rare) addresses a two-hop target the cache doesn't
  // cover.  Gating offer() on the purpose being armed is draw-free: a
  // disabled purpose makes zero RNG draws inside offer() anyway.
  bool target_reachable;
  if (rerouted) {
    target_reachable = topology_->reachable(from, target);
  } else {
    refresh_hot_caches();
    target_reachable = link_ok_cache_[from_position] != 0;
  }
  if (!target_reachable ||
      (link_loss_.enabled(fault::LossPurpose::kSat) &&
       link_loss_.offer(fault::LossPurpose::kSat, from, target))) {
    sat_state_ = SatState::kLost;
    if (sat_lost_at_ == kNeverTick) sat_lost_at_ = now_;
    trace_.record(sim::EventKind::kSatLost, now_, from, target);
    return;
  }
  sat_state_ = SatState::kInTransit;
  sat_location_ = target;
  sat_arrival_tick_ =
      now_ + slots_to_ticks(config_.effective_sat_hop_latency());
  ++stats_.sat_hops;
  WRT_BATCH_COUNT(telem_batch_, kSatHandoffs);
  journal_record(from, telemetry::JournalKind::kSatRelease, target);
}

void Engine::sat_plane_step() {
  switch (sat_state_) {
    case SatState::kInTransit:
      if (now_ >= sat_arrival_tick_) sat_arrive(sat_location_);
      break;
    case SatState::kHeld: {
      const NodeId holder = sat_location_;
      if (in_rap() && holder == rap_ingress_) break;  // held for the RAP
      const std::int32_t position = station_position(holder);
      if (position < 0 || !station_active(holder)) {
        sat_state_ = SatState::kLost;
        if (sat_lost_at_ == kNeverTick) sat_lost_at_ = now_;
        break;
      }
      if (kernel_.satisfied(static_cast<std::size_t>(position))) {
        sat_release(holder);
      }
      break;
    }
    case SatState::kLost:
    case SatState::kRebuilding:
      break;
  }
}

std::int64_t Engine::effective_sat_timeout(NodeId) const {
  if (config_.sat_timeout_slots > 0) return config_.sat_timeout_slots;
  if (sat_timeout_dirty_) {
    sat_timeout_cache_ = analysis::sat_time_bound(ring_params());
    sat_timeout_dirty_ = false;
  }
  return sat_timeout_cache_;
}

void Engine::check_sat_timers() {
  if (sat_state_ == SatState::kRebuilding) return;

  // A pending SAT_REC that fails to return within SAT_TIME invalidates the
  // ring (Section 2.5, last paragraph).
  if (sat_.is_rec && rec_deadline_ != kNeverTick && now_ > rec_deadline_) {
    fsm_.on_rec_deadline(now_);
    return;
  }
  if (sat_.is_rec) return;  // recovery already in progress

  // Timer-scan guard: every last_sat_arrival_ write is `= now_` (monotone)
  // and the timeout is constant while the guard is valid (invalidated with
  // sat_timeout_dirty_), so the earliest possible expiry only moves later.
  // Skipping the O(R) scan until the cached earliest expiry has passed is
  // therefore exact, not an approximation.
  if (sat_timer_guard_valid_ && now_ <= sat_timer_guard_) return;

  // Earliest-expiry station detects the loss.  Stations run their timers
  // independently; the first expiry wins and generates the SAT_REC (ties
  // break toward the lowest NodeId, matching the historical scan order).
  const Tick timeout_ticks =
      slots_to_ticks(effective_sat_timeout(kInvalidNode));
  const std::vector<NodeId>& order = ring_.order();
  NodeId detector = kInvalidNode;
  Tick earliest = kNeverTick;
  Tick next_expiry = kNeverTick;
  for (std::size_t p = 0; p < order.size(); ++p) {
    const NodeId node = order[p];
    // A wedged station's timer process is wedged with it — only active
    // stations can detect the loss.
    if (!station_active(node)) continue;
    const Tick expiry = kernel_.last_sat_arrival_[p] + timeout_ticks;
    if (expiry < next_expiry) next_expiry = expiry;
    if (now_ > expiry &&
        (expiry < earliest || (expiry == earliest && node < detector))) {
      earliest = expiry;
      detector = node;
    }
  }
  if (detector != kInvalidNode) {
    sat_timer_guard_valid_ = false;
    if (!fsm_.on_signal_fail(detector, ring_.predecessor(detector), now_)) {
      // Suppressed as a stale echo of the event just survived: re-arm the
      // detector's timer so the sweep does not re-accuse every slot for
      // the remainder of the guard window.
      kernel_.last_sat_arrival_[static_cast<std::size_t>(
          ring_.position_of(detector))] = now_;
    }
    return;
  }
  sat_timer_guard_ = next_expiry;
  sat_timer_guard_valid_ = next_expiry != kNeverTick;
}

void Engine::start_recovery(NodeId detector) {
  ++stats_.sat_losses_detected;
  WRT_COUNT(kSatLossesDetected);
  journal_record(detector, telemetry::JournalKind::kSatRecStart,
                 ring_.predecessor(detector));
  trace_.record(sim::EventKind::kLossDetected, now_, detector,
                ring_.predecessor(detector));
  if (sat_lost_at_ != kNeverTick) {
    stats_.sat_loss_detection_slots.add(
        ticks_to_slots_real(now_ - sat_lost_at_));
    WRT_OBSERVE(kSatDetectSlots, ticks_to_slots(now_ - sat_lost_at_));
  }
  util::log(util::LogLevel::kInfo,
            "WRT-Ring: SAT loss detected by station " +
                std::to_string(detector));
  // Section 2.5: the detector generates SAT_REC naming its predecessor as
  // the (supposedly) failed station.
  sat_.is_rec = true;
  sat_.graceful_leave = false;
  sat_.rec_origin = detector;
  sat_.rec_failed = ring_.predecessor(detector);
  sat_.rap_owner = kInvalidNode;
  rec_deadline_ = now_ + slots_to_ticks(effective_sat_timeout(detector));
  kernel_.last_sat_arrival_[static_cast<std::size_t>(
      ring_.position_of(detector))] = now_;
  trace_.record(sim::EventKind::kSatRecStarted, now_, detector,
                sat_.rec_failed);
  sat_state_ = SatState::kHeld;
  sat_location_ = detector;
  // The detector itself gets a fresh round and forwards the SAT_REC.
  sat_release(detector);
}

void Engine::drop_in_flight_frames(TeardownCause cause) {
  // Frames abandoned by a ring teardown are a different casualty class than
  // channel losses: they indict the recovery path (or, for a join's update
  // phase, planned churn), not the link quality.
  const std::uint64_t dropped = kernel_.frames_in_flight();
  if (dropped > 0) {
    if (cause == TeardownCause::kJoin) {
      stats_.frames_lost_churn += dropped;
      WRT_COUNT_N(kFramesLostChurn, dropped);
    } else {
      stats_.frames_lost_rebuild += dropped;
      WRT_COUNT_N(kFramesLostRebuild, dropped);
    }
    if (ring_.size() > 0) {
      journal_record(ring_.station_at(0), telemetry::JournalKind::kRebuildDrop,
                     static_cast<NodeId>(dropped));
    }
  }
  reset_data_plane();
}

void Engine::start_rebuild() {
  ++stats_.ring_rebuilds;
  WRT_COUNT(kRingRebuilds);
  trace_.record(sim::EventKind::kRebuildStarted, now_);
  util::log(util::LogLevel::kInfo, "WRT-Ring: ring re-formation started");
  drop_in_flight_frames();
  sat_state_ = SatState::kRebuilding;
  sat_.is_rec = false;
  sat_.graceful_leave = false;
  rec_deadline_ = kNeverTick;
  std::int64_t alive = 0;
  for (NodeId n = 0; n < topology_->node_count(); ++n) {
    if (topology_->alive(n)) ++alive;
  }
  rebuild_done_ = now_ + slots_to_ticks(config_.rebuild_base_slots +
                                        config_.rebuild_per_station_slots *
                                            alive);
}

void Engine::finish_rebuild() {
  // Re-formation recruits only stations that can hear the broadcast: the
  // largest connected component (restricted to this engine's member set
  // when one is configured).  Stations that wandered out of range stay
  // out and may rejoin later through the RAP.
  std::vector<NodeId> candidates = ring::largest_component(*topology_);
  if (!config_.members.empty()) {
    std::vector<NodeId> allowed = config_.members;
    std::sort(allowed.begin(), allowed.end());
    std::erase_if(candidates,
                  [&](NodeId n) { return !sorted_contains(allowed, n); });
  }
  auto ring_result = ring::build_ring_over(*topology_, std::move(candidates));
  if (!ring_result.ok()) {
    // Try again after another rebuild period; the network stays down.
    rebuild_done_ = now_ + slots_to_ticks(config_.rebuild_base_slots);
    return;
  }
  const ring::VirtualRing new_ring = std::move(ring_result.value());

  // Keep state for surviving members; create state for (re)joining ones.
  std::vector<NodeId> members = new_ring.order();
  std::sort(members.begin(), members.end());
  std::vector<NodeId> departed;
  for (const NodeId node : kernel_.ids()) {
    if (!sorted_contains(members, node)) departed.push_back(node);
  }
  std::sort(departed.begin(), departed.end());
  if (membership_callback_) {
    for (const NodeId node : departed) membership_callback_(node, false);
  }

  // Re-pack the position-indexed vectors against the new ring order, moving
  // surviving stations' state (queues, quotas, splits) into place.  The old
  // position_index_ stays valid until rebuild_position_index() below.
  SlotKernel new_kernel;
  new_kernel.configure(config_.queue_capacity);
  std::vector<NodeId> joined;
  for (std::size_t p = 0; p < new_ring.size(); ++p) {
    const NodeId node = new_ring.station_at(p);
    const std::int32_t old_position = station_position(node);
    if (old_position >= 0) {
      new_kernel.adopt_station(kernel_,
                               static_cast<std::size_t>(old_position));
    } else {
      new_kernel.push_station(node, config_.default_quota,
                              config_.k1_assured, now_);
      joined.push_back(node);
    }
  }
  ring_ = new_ring;
  kernel_ = std::move(new_kernel);
  rebuild_position_index();
  if (membership_callback_) {
    for (const NodeId node : joined) membership_callback_(node, true);
  }
  assign_codes();
  reset_data_plane();
  rotation_anchor_ = ring_.station_at(0);
  // The re-formation may have recruited stations that were waiting to
  // rejoin; their pending requests are now moot.
  for (auto it = pending_joins_.begin(); it != pending_joins_.end();) {
    it = ring_.contains(it->first) ? pending_joins_.erase(it) : ++it;
  }
  // Rotation history across a rebuild would mix two different rings.
  for (Tick& arrival : kernel_.last_rotation_arrival_) arrival = kNeverTick;
  for (auto& history : kernel_.arrival_history_) history.clear();
  if (sat_lost_at_ != kNeverTick) {
    stats_.recovery_total_slots.add(ticks_to_slots_real(now_ - sat_lost_at_));
  }
  fsm_.on_rebuild_complete(now_, sat_lost_at_ != kNeverTick
                                     ? ticks_to_slots_real(now_ -
                                                           sat_lost_at_)
                                     : -1.0);
  util::log(util::LogLevel::kInfo, "WRT-Ring: ring re-formed, size " +
                                       std::to_string(ring_.size()));
  trace_.record(sim::EventKind::kRebuildCompleted, now_);
  launch_sat(ring_.station_at(0));
  notify_audit("rebuild");
}

util::Status Engine::check_invariants() const {
  const std::size_t R = ring_.size();
  if (kernel_.size() != R || kernel_.last_sat_arrival_.size() != R) {
    return util::Error::protocol_violation(
        "station/control columns do not match ring size");
  }
  if (kernel_.link_columns() != R || kernel_.transit_.size() != R) {
    return util::Error::protocol_violation("link structures out of sync");
  }
  for (std::size_t p = 0; p < R; ++p) {
    const NodeId node = ring_.station_at(p);
    if (kernel_.ids_[p] != node) {
      return util::Error::protocol_violation(
          "station vector misaligned with ring order at position " +
          std::to_string(p));
    }
    if (station_position(node) != static_cast<std::int32_t>(p)) {
      return util::Error::protocol_violation(
          "position index stale for station " + std::to_string(node));
    }
    if (kernel_.rt_pck_[p] > kernel_.quota_[p].l ||
        kernel_.nrt_pck_[p] > kernel_.quota_[p].k) {
      return util::Error::protocol_violation(
          "quota counters exceed quotas at station " + std::to_string(node));
    }
    if (kernel_.k1_assured_[p] > kernel_.quota_[p].k) {
      return util::Error::protocol_violation(
          "k1 split exceeds k at station " + std::to_string(node));
    }
    // Per-link pipeline depth is bounded by the hop latency.
    if (kernel_.link_size(p) >
            static_cast<std::size_t>(config_.hop_latency_slots) ||
        kernel_.link_depth() !=
            static_cast<std::size_t>(config_.hop_latency_slots)) {
      return util::Error::protocol_violation("link pipeline overfull");
    }
  }
  switch (sat_state_) {
    case SatState::kHeld:
      if (!ring_.contains(sat_location_)) {
        return util::Error::protocol_violation(
            "SAT held at a station not in the ring");
      }
      break;
    case SatState::kInTransit:
      if (!ring_.contains(sat_location_)) {
        return util::Error::protocol_violation(
            "SAT in transit toward a station not in the ring");
      }
      if (sat_arrival_tick_ < now_) {
        return util::Error::protocol_violation("SAT arrival in the past");
      }
      break;
    case SatState::kLost:
    case SatState::kRebuilding:
      break;
  }
  if (stats_.sink.total_delivered() > stats_.data_transmissions) {
    return util::Error::protocol_violation(
        "more deliveries than transmissions");
  }
  // Frame conservation: every injected frame is delivered, lost on a hop,
  // discarded by a teardown, purged as stale, or still in flight.  A leak
  // here means some fault path dropped frames without accounting for them.
  const std::uint64_t accounted =
      stats_.sink.total_delivered() + stats_.frames_lost_link +
      stats_.frames_lost_rebuild + stats_.frames_lost_churn +
      stats_.frames_dropped_stale + frames_in_flight();
  if (accounted != stats_.data_transmissions) {
    return util::Error::protocol_violation(
        "frame accounting leak: " + std::to_string(stats_.data_transmissions) +
        " transmitted vs " + std::to_string(accounted) + " accounted");
  }
  return util::Status::success();
}

// ---------------------------------------------------------------------------
// RAP & join (Section 2.4.1)
// ---------------------------------------------------------------------------

bool Engine::wants_rap(NodeId node) const {
  if (config_.rap_policy != RapPolicy::kRotating) return false;
  const std::int32_t position = station_position(node);
  if (position < 0) return false;
  const std::int64_t min_rounds =
      config_.s_round_min > 0 ? config_.s_round_min
                              : static_cast<std::int64_t>(ring_.size());
  return kernel_.rounds_since_rap_[static_cast<std::size_t>(position)] >=
         min_rounds;
}

void Engine::request_join(NodeId node, Quota quota) {
  // A ring re-formation may have recruited the requester already (it is an
  // alive, reachable station); joining twice is a no-op.
  if (ring_.contains(node)) return;
  PendingJoin join;
  join.quota = quota;
  join.requested_at = now_;
  pending_joins_[node] = std::move(join);
}

util::Status Engine::request_leave(NodeId node) {
  if (!ring_.contains(node)) {
    return util::Error::not_found("station not in ring");
  }
  if (ring_.size() <= 3) {
    return util::Error::no_ring_possible(
        "leaving would drop the ring below 3 stations");
  }
  if (leave_pending_ != kInvalidNode) {
    return util::Error::protocol_violation("another leave is in progress");
  }
  leave_pending_ = node;
  return util::Status::success();
}

void Engine::kill_station(NodeId node) {
  topology_->set_alive(node, false);
  if (sat_location_ == node &&
      (sat_state_ == SatState::kHeld || sat_state_ == SatState::kInTransit)) {
    sat_state_ = SatState::kLost;
    sat_lost_at_ = now_;
  }
}

void Engine::stall_station(NodeId node) {
  if (node >= stalled_.size()) {
    stalled_.resize(static_cast<std::size_t>(node) + 1, 0);
  }
  if (stalled_[node] != 0) return;
  stalled_[node] = 1;
  ++stall_epoch_;
  journal_record(node, telemetry::JournalKind::kStall);
  trace_.record(sim::EventKind::kStationStalled, now_, node);
  // A wedged holder takes the SAT down with it, exactly like a crash —
  // except the station is still topologically present and may come back.
  if (sat_location_ == node &&
      (sat_state_ == SatState::kHeld || sat_state_ == SatState::kInTransit)) {
    sat_state_ = SatState::kLost;
    sat_lost_at_ = now_;
  }
}

void Engine::resume_station(NodeId node) {
  if (!station_stalled(node)) return;
  stalled_[node] = 0;
  ++stall_epoch_;
  journal_record(node, telemetry::JournalKind::kResume);
  trace_.record(sim::EventKind::kStationResumed, now_, node);
  const std::int32_t position = station_position(node);
  if (position >= 0) {
    // Still a member: its SAT_TIMER slept through the wedge and would fire
    // immediately on wake; restart it instead of spuriously starting a
    // recovery against a healthy ring.
    kernel_.last_sat_arrival_[static_cast<std::size_t>(position)] = now_;
  } else if (config_.auto_rejoin && topology_->alive(node) &&
             config_.rap_policy != RapPolicy::kDisabled &&
             !fsm_.tracks_rejoin(node)) {
    // The ring cut it out while it was wedged; re-enter via Section 2.4.1.
    // When the RecoveryFsm holds the station under a WTR/WTB hold-off it
    // owns the rejoin (with the original quota), so don't race it here.
    PendingJoin rejoin;
    rejoin.quota = config_.default_quota;
    rejoin.requested_at = now_;
    pending_joins_[node] = std::move(rejoin);
  }
}

void Engine::degrade_link(NodeId a, NodeId b, const fault::GeParams& params) {
  for (std::size_t i = 0; i < fault::kLossPurposeCount; ++i) {
    const auto purpose = static_cast<fault::LossPurpose>(i);
    link_loss_.set_link_params(purpose, a, b, params);
    link_loss_.set_link_params(purpose, b, a, params);
  }
}

void Engine::heal_link(NodeId a, NodeId b) {
  for (std::size_t i = 0; i < fault::kLossPurposeCount; ++i) {
    const auto purpose = static_cast<fault::LossPurpose>(i);
    link_loss_.clear_link_params(purpose, a, b);
    link_loss_.clear_link_params(purpose, b, a);
  }
}

std::uint64_t Engine::frames_in_flight() const noexcept {
  return kernel_.frames_in_flight();
}

void Engine::begin_rap(NodeId ingress) {
  ++stats_.raps_started;
  WRT_COUNT(kRapsStarted);
  trace_.record(sim::EventKind::kRapStarted, now_, ingress);
  rap_ingress_ = ingress;
  rap_ear_end_ = now_ + slots_to_ticks(config_.t_ear_slots);
  rap_end_ = now_ + slots_to_ticks(config_.t_rap_slots());
  rap_accepted_joiner_ = kInvalidNode;
  sat_.rap_owner = ingress;
  sat_state_ = SatState::kHeld;
  sat_location_ = ingress;
  kernel_.rounds_since_rap_[static_cast<std::size_t>(
      ring_.position_of(ingress))] = 0;

  // Slot 0 of the earing phase: the ingress broadcasts NEXT_FREE with its
  // own address/code and its successor's (Section 2.4.1).
  const NodeId announced_next = ring_.successor(ingress);
  // One-shot fault: the broadcast itself dies and every listener misses this
  // round.  No backoff — a joiner cannot tell a lost NEXT_FREE from an
  // ingress that simply is not RAPing yet.
  const bool next_free_dropped = take_control_drop(ControlMsg::kNextFree);
  std::vector<NodeId> repliers;
  for (auto it = pending_joins_.begin(); it != pending_joins_.end();) {
    // A pending joiner that re-entered through a ring re-formation no
    // longer needs the handshake.
    if (ring_.contains(it->first)) {
      it = pending_joins_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& [joiner, join] : pending_joins_) {
    if (!station_active(joiner) ||
        !topology_->reachable(ingress, joiner)) {
      continue;
    }
    // A joiner backing off after a lost handshake is not listening yet.
    if (now_ < join.backoff_until) continue;
    if (next_free_dropped ||
        link_loss_.offer(fault::LossPurpose::kControl, ingress, joiner)) {
      ++stats_.control_messages_lost;
      WRT_COUNT(kControlMsgsLost);
      continue;
    }
    // "When the station receives another NEXT_FREE message from the same
    // station, all the other stations have already entered their RAP."
    if (join.heard.contains(ingress)) join.table_complete = true;
    join.heard[ingress] = announced_next;

    if (join.table_complete && join.chosen_ingress == kInvalidNode) {
      for (const auto& [sender, next] : join.heard) {
        if (topology_->reachable(joiner, sender) &&
            topology_->reachable(joiner, next)) {
          join.chosen_ingress = sender;
          break;
        }
      }
    }
    if (join.chosen_ingress == ingress) repliers.push_back(joiner);
  }

  // Earing phase, slot 1: eligible joiners answer on code(ingress).  Two
  // simultaneous replies spread with the same code collide (Figure 1's
  // converse) and neither is decoded; both wait for a later NEXT_FREE.
  if (repliers.size() > 1) {
    ++stats_.cdma_collisions;
    return;
  }
  if (repliers.empty()) return;

  const NodeId joiner = repliers.front();
  auto& join = pending_joins_.at(joiner);
  // Earing slot 1: the JOIN_REQ travels joiner -> ingress and can be lost.
  // The RAP then simply ends empty — the mutex is freed when the SAT
  // completes its round as usual, nothing is half-inserted — and the joiner,
  // seeing no acknowledged insertion, backs off before listening again.
  if (take_control_drop(ControlMsg::kJoinReq) ||
      link_loss_.offer(fault::LossPurpose::kControl, joiner, ingress)) {
    ++stats_.control_messages_lost;
    WRT_COUNT(kControlMsgsLost);
    register_join_backoff(joiner);
    return;
  }
  // Slot 2: admission check + JOIN_ACK on code(ingress).
  if (!admission_allows(join.quota)) {
    ++stats_.joins_rejected;
    WRT_COUNT(kJoinsRejected);
    trace_.record(sim::EventKind::kJoinRejected, now_, joiner, ingress);
    pending_joins_.erase(joiner);
    return;
  }
  // The JOIN_ACK travels ingress -> joiner and can die too.  The update
  // phase only ever runs for an acknowledged joiner, so a lost ACK leaves
  // the ring untouched; the joiner retries like a lost JOIN_REQ.
  if (take_control_drop(ControlMsg::kJoinAck) ||
      link_loss_.offer(fault::LossPurpose::kControl, ingress, joiner)) {
    ++stats_.control_messages_lost;
    WRT_COUNT(kControlMsgsLost);
    register_join_backoff(joiner);
    return;
  }
  rap_accepted_joiner_ = joiner;
}

void Engine::register_join_backoff(NodeId joiner) {
  const auto it = pending_joins_.find(joiner);
  if (it == pending_joins_.end()) return;
  PendingJoin& join = it->second;
  ++join.attempts;
  ++stats_.join_retries;
  WRT_COUNT(kJoinRetries);
  journal_record(joiner, telemetry::JournalKind::kControlLost, join.attempts);
  if (join.attempts >= config_.join_max_attempts) {
    ++stats_.joins_abandoned;
    trace_.record(sim::EventKind::kJoinRejected, now_, joiner, rap_ingress_);
    pending_joins_.erase(it);
    return;
  }
  const std::uint32_t exponent =
      std::min(join.attempts - 1, config_.join_backoff_exp_cap);
  join.backoff_until =
      now_ +
      slots_to_ticks(config_.join_backoff_base_slots << exponent);
  // The ring may look completely different by the time the backoff expires;
  // restart the NEXT_FREE table from scratch.
  join.heard.clear();
  join.table_complete = false;
  join.chosen_ingress = kInvalidNode;
}

void Engine::rap_step() {
  if (rap_ingress_ == kInvalidNode) return;
  if (now_ < rap_end_) return;
  finish_rap();
}

void Engine::finish_rap() {
  const NodeId ingress = rap_ingress_;
  rap_ingress_ = kInvalidNode;
  if (rap_accepted_joiner_ != kInvalidNode) {
    complete_join(rap_accepted_joiner_, ingress);
    rap_accepted_joiner_ = kInvalidNode;
  }
  // The RAP over, the ingress resumes the normal SAT algorithm.
  if (sat_state_ == SatState::kHeld && sat_location_ == ingress) {
    const std::int32_t position = station_position(ingress);
    if (position >= 0 &&
        kernel_.satisfied(static_cast<std::size_t>(position))) {
      sat_release(ingress);
    }
  }
}

void Engine::complete_join(NodeId joiner, NodeId ingress) {
  const auto join_it = pending_joins_.find(joiner);
  if (join_it == pending_joins_.end()) return;
  const PendingJoin join = join_it->second;
  pending_joins_.erase(join_it);

  // Update phase: insert between the ingress and its successor, assign a
  // fresh distance-2-safe code, and initialise MAC state.  In-flight frames
  // abandoned here are planned churn, not recovery casualties.
  //
  // Revertive recovery (RecoveryFsm): when the joiner is a station the FSM
  // held through its WTR/WTB hold-off, re-insert it after its original ring
  // predecessor with its original Diffserv split (the update phase may
  // announce any insertion point), provided that position still physically
  // works — rotation history and the Theorem 1/2 bounds then survive the
  // blip.  Otherwise fall back to the RAP ingress.
  NodeId insert_after = ingress;
  NodeId revert_anchor = kInvalidNode;
  std::uint32_t revert_k1 = 0;
  const bool revert =
      fsm_.take_revertive_anchor(joiner, &revert_anchor, &revert_k1);
  if (revert && revert_anchor != joiner && ring_.contains(revert_anchor) &&
      topology_->reachable(revert_anchor, joiner) &&
      topology_->reachable(joiner, ring_.successor(revert_anchor))) {
    insert_after = revert_anchor;
  }
  drop_in_flight_frames(TeardownCause::kJoin);
  insert_member(insert_after, joiner, join.quota);
  if (revert && insert_after == revert_anchor) {
    kernel_.set_k1_assured(
        static_cast<std::size_t>(station_position(joiner)), revert_k1);
    fsm_.record_revert_outcome(joiner, revert_anchor, membership_epoch_);
  }
  if (codes_.size() <= joiner) codes_.resize(joiner + 1, kInvalidCode);
  codes_[joiner] = allocate_code_for(joiner);
  reset_data_plane();
  if (channel_) {
    channel_->set_listen_codes(joiner, {codes_[joiner], kBroadcastCode});
  }
  ++stats_.joins_completed;
  const double join_latency = ticks_to_slots_real(now_ - join.requested_at);
  stats_.join_latency_slots.add(join_latency);
  WRT_COUNT(kJoins);
  WRT_OBSERVE(kJoinLatencySlots, join_latency);
  journal_record(joiner, telemetry::JournalKind::kJoin, ingress);
  util::log(util::LogLevel::kInfo,
            "WRT-Ring: station " + std::to_string(joiner) +
                " joined after ingress " + std::to_string(ingress));
  trace_.record(sim::EventKind::kJoinCompleted, now_, joiner, ingress);
  if (membership_callback_) membership_callback_(joiner, true);
  notify_audit("join");
}

void Engine::queue_rejoin(NodeId node, Quota quota) {
  if (!config_.auto_rejoin || config_.rap_policy == RapPolicy::kDisabled) {
    return;
  }
  if (ring_.contains(node) || !station_active(node)) return;
  if (pending_joins_.find(node) != pending_joins_.end()) return;
  PendingJoin rejoin;
  rejoin.quota = quota;
  rejoin.requested_at = now_;
  pending_joins_[node] = std::move(rejoin);
}

util::Status Engine::force_switch(NodeId node) {
  if (!fsm_.on_forced_switch(node, now_)) {
    return util::Error::protocol_violation(
        "force_switch: a forced switch is already active");
  }
  const auto status = request_leave(node);
  if (!status.ok()) {
    fsm_.on_clear_forced(node, now_);
    return status;
  }
  return status;
}

void Engine::clear_force_switch(NodeId node) {
  fsm_.on_clear_forced(node, now_);
}

}  // namespace wrt::wrtring
