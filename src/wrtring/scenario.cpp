#include "wrtring/scenario.hpp"

#include <algorithm>

namespace wrt::wrtring {

Scenario& Scenario::join_at(std::int64_t slot, NodeId node, Quota quota) {
  actions_.push_back({slot, Action::Kind::kJoin, node, kInvalidNode, quota,
                      "join request station " + std::to_string(node)});
  return *this;
}

Scenario& Scenario::leave_at(std::int64_t slot, NodeId node) {
  actions_.push_back({slot, Action::Kind::kLeave, node, kInvalidNode, {},
                      "graceful leave station " + std::to_string(node)});
  return *this;
}

Scenario& Scenario::kill_at(std::int64_t slot, NodeId node) {
  actions_.push_back({slot, Action::Kind::kKill, node, kInvalidNode, {},
                      "kill station " + std::to_string(node)});
  return *this;
}

Scenario& Scenario::drop_sat_at(std::int64_t slot) {
  actions_.push_back({slot, Action::Kind::kDropSat, kInvalidNode,
                      kInvalidNode, {}, "drop SAT"});
  return *this;
}

Scenario& Scenario::fail_link_at(std::int64_t slot, NodeId a, NodeId b) {
  actions_.push_back({slot, Action::Kind::kFailLink, a, b, {},
                      "fail link " + std::to_string(a) + "-" +
                          std::to_string(b)});
  return *this;
}

Scenario& Scenario::restore_link_at(std::int64_t slot, NodeId a, NodeId b) {
  actions_.push_back({slot, Action::Kind::kRestoreLink, a, b, {},
                      "restore link " + std::to_string(a) + "-" +
                          std::to_string(b)});
  return *this;
}

Scenario& Scenario::mark_at(std::int64_t slot, std::string label) {
  actions_.push_back({slot, Action::Kind::kMark, kInvalidNode, kInvalidNode,
                      {}, std::move(label)});
  return *this;
}

std::vector<Scenario::LogEntry> Scenario::run(
    Engine& engine, phy::Topology& topology, std::int64_t until_slot,
    phy::MobilityModel* mobility, std::int64_t mobility_period_slots) {
  std::stable_sort(actions_.begin(), actions_.end(),
                   [](const Action& x, const Action& y) {
                     return x.slot < y.slot;
                   });

  std::vector<LogEntry> log;
  const auto record = [&](const std::string& what) {
    log.push_back({engine.now_slots(), what, engine.virtual_ring().size(),
                   engine.sat_state()});
  };

  std::size_t next_action = 0;
  std::size_t last_ring_size = engine.virtual_ring().size();
  std::int64_t last_mobility = engine.now_slots();

  while (engine.now_slots() < until_slot) {
    while (next_action < actions_.size() &&
           actions_[next_action].slot <= engine.now_slots()) {
      const Action& action = actions_[next_action];
      switch (action.kind) {
        case Action::Kind::kJoin:
          engine.request_join(action.a, action.quota);
          break;
        case Action::Kind::kLeave: {
          const auto status = engine.request_leave(action.a);
          if (!status.ok()) {
            record("leave refused: " + status.error().message);
          }
          break;
        }
        case Action::Kind::kKill:
          engine.kill_station(action.a);
          break;
        case Action::Kind::kDropSat:
          engine.drop_sat_once();
          break;
        case Action::Kind::kFailLink:
          topology.fail_link(action.a, action.b);
          break;
        case Action::Kind::kRestoreLink:
          topology.restore_link(action.a, action.b);
          break;
        case Action::Kind::kMark:
          break;
      }
      record(action.label);
      ++next_action;
    }

    if (mobility != nullptr &&
        engine.now_slots() - last_mobility >= mobility_period_slots) {
      mobility->step(topology, engine.now(),
                     slots_to_ticks(engine.now_slots() - last_mobility));
      last_mobility = engine.now_slots();
    }

    engine.step();

    if (engine.virtual_ring().size() != last_ring_size) {
      record(engine.virtual_ring().size() > last_ring_size
                 ? "ring grew"
                 : "ring shrank");
      last_ring_size = engine.virtual_ring().size();
    }
  }
  return log;
}

}  // namespace wrt::wrtring
