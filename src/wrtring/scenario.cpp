#include "wrtring/scenario.hpp"

#include <algorithm>

namespace wrt::wrtring {

Scenario& Scenario::join_at(std::int64_t slot, NodeId node, Quota quota) {
  Action action;
  action.slot = slot;
  action.kind = Action::Kind::kJoin;
  action.a = node;
  action.quota = quota;
  action.label = "join request station " + std::to_string(node);
  actions_.push_back(std::move(action));
  return *this;
}

Scenario& Scenario::leave_at(std::int64_t slot, NodeId node) {
  Action action;
  action.slot = slot;
  action.kind = Action::Kind::kLeave;
  action.a = node;
  action.label = "graceful leave station " + std::to_string(node);
  actions_.push_back(std::move(action));
  return *this;
}

Scenario& Scenario::kill_at(std::int64_t slot, NodeId node) {
  Action action;
  action.slot = slot;
  action.kind = Action::Kind::kKill;
  action.a = node;
  action.label = "kill station " + std::to_string(node);
  actions_.push_back(std::move(action));
  return *this;
}

Scenario& Scenario::stall_at(std::int64_t slot, NodeId node) {
  Action action;
  action.slot = slot;
  action.kind = Action::Kind::kStall;
  action.a = node;
  action.label = "stall station " + std::to_string(node);
  actions_.push_back(std::move(action));
  return *this;
}

Scenario& Scenario::resume_at(std::int64_t slot, NodeId node) {
  Action action;
  action.slot = slot;
  action.kind = Action::Kind::kResume;
  action.a = node;
  action.label = "resume station " + std::to_string(node);
  actions_.push_back(std::move(action));
  return *this;
}

Scenario& Scenario::drop_sat_at(std::int64_t slot) {
  Action action;
  action.slot = slot;
  action.kind = Action::Kind::kDropSat;
  action.label = "drop SAT";
  actions_.push_back(std::move(action));
  return *this;
}

Scenario& Scenario::drop_control_at(std::int64_t slot,
                                    Engine::ControlMsg which) {
  static const char* kNames[] = {"NEXT_FREE", "JOIN_REQ", "JOIN_ACK"};
  Action action;
  action.slot = slot;
  action.kind = Action::Kind::kDropControl;
  action.control_msg = which;
  action.label =
      std::string("drop ") + kNames[static_cast<std::size_t>(which)];
  actions_.push_back(std::move(action));
  return *this;
}

Scenario& Scenario::fail_link_at(std::int64_t slot, NodeId a, NodeId b) {
  Action action;
  action.slot = slot;
  action.kind = Action::Kind::kFailLink;
  action.a = a;
  action.b = b;
  action.label =
      "fail link " + std::to_string(a) + "-" + std::to_string(b);
  actions_.push_back(std::move(action));
  return *this;
}

Scenario& Scenario::restore_link_at(std::int64_t slot, NodeId a, NodeId b) {
  Action action;
  action.slot = slot;
  action.kind = Action::Kind::kRestoreLink;
  action.a = a;
  action.b = b;
  action.label =
      "restore link " + std::to_string(a) + "-" + std::to_string(b);
  actions_.push_back(std::move(action));
  return *this;
}

Scenario& Scenario::degrade_link_at(std::int64_t slot, NodeId a, NodeId b,
                                    const fault::GeParams& params) {
  Action action;
  action.slot = slot;
  action.kind = Action::Kind::kDegradeLink;
  action.a = a;
  action.b = b;
  action.ge = params;
  action.label =
      "degrade link " + std::to_string(a) + "-" + std::to_string(b);
  actions_.push_back(std::move(action));
  return *this;
}

Scenario& Scenario::heal_link_at(std::int64_t slot, NodeId a, NodeId b) {
  Action action;
  action.slot = slot;
  action.kind = Action::Kind::kHealLink;
  action.a = a;
  action.b = b;
  action.label =
      "heal link " + std::to_string(a) + "-" + std::to_string(b);
  actions_.push_back(std::move(action));
  return *this;
}

Scenario& Scenario::partition_at(std::int64_t slot,
                                 std::vector<std::vector<NodeId>> groups) {
  Action action;
  action.slot = slot;
  action.kind = Action::Kind::kPartition;
  action.groups = std::move(groups);
  action.label =
      "partition into " + std::to_string(action.groups.size()) + " groups";
  actions_.push_back(std::move(action));
  return *this;
}

Scenario& Scenario::heal_partition_at(std::int64_t slot) {
  Action action;
  action.slot = slot;
  action.kind = Action::Kind::kHealPartition;
  action.label = "heal partition";
  actions_.push_back(std::move(action));
  return *this;
}

Scenario& Scenario::flap_link_at(std::int64_t slot, NodeId a, NodeId b,
                                 std::int64_t period_slots,
                                 std::uint32_t duty_pct,
                                 std::uint32_t cycles) {
  // Down for the first duty_pct percent of each period (at least 1 slot,
  // at most period - 1 so the link is also provably up every cycle).
  const std::int64_t down = std::clamp<std::int64_t>(
      period_slots * duty_pct / 100, 1, period_slots - 1);
  for (std::uint32_t c = 0; c < cycles; ++c) {
    const std::int64_t start = slot + static_cast<std::int64_t>(c) *
                                          period_slots;
    fail_link_at(start, a, b);
    restore_link_at(start + down, a, b);
  }
  return *this;
}

Scenario& Scenario::force_switch_at(std::int64_t slot, NodeId node) {
  Action action;
  action.slot = slot;
  action.kind = Action::Kind::kForceSwitch;
  action.a = node;
  action.label = "force switch station " + std::to_string(node);
  actions_.push_back(std::move(action));
  return *this;
}

Scenario& Scenario::clear_switch_at(std::int64_t slot, NodeId node) {
  Action action;
  action.slot = slot;
  action.kind = Action::Kind::kClearSwitch;
  action.a = node;
  action.label = "clear forced switch station " + std::to_string(node);
  actions_.push_back(std::move(action));
  return *this;
}

Scenario& Scenario::mark_at(std::int64_t slot, std::string label) {
  Action action;
  action.slot = slot;
  action.kind = Action::Kind::kMark;
  action.label = std::move(label);
  actions_.push_back(std::move(action));
  return *this;
}

Scenario& Scenario::apply_plan(const fault::FaultPlan& plan) {
  for (const fault::FaultEvent& event : plan.events) {
    switch (event.kind) {
      case fault::FaultKind::kCrash:
        kill_at(event.slot, event.a);
        break;
      case fault::FaultKind::kStall:
        stall_at(event.slot, event.a);
        break;
      case fault::FaultKind::kResume:
        resume_at(event.slot, event.a);
        break;
      case fault::FaultKind::kLeave:
        leave_at(event.slot, event.a);
        break;
      case fault::FaultKind::kLinkDegrade:
        degrade_link_at(event.slot, event.a, event.b, event.ge);
        break;
      case fault::FaultKind::kLinkBreak:
        fail_link_at(event.slot, event.a, event.b);
        break;
      case fault::FaultKind::kLinkHeal:
        heal_link_at(event.slot, event.a, event.b);
        break;
      case fault::FaultKind::kPartition:
        partition_at(event.slot, event.groups);
        break;
      case fault::FaultKind::kHealPartition:
        heal_partition_at(event.slot);
        break;
      case fault::FaultKind::kDropSat:
        drop_sat_at(event.slot);
        break;
      case fault::FaultKind::kDropControl:
        drop_control_at(event.slot,
                        static_cast<Engine::ControlMsg>(event.control_msg));
        break;
      case fault::FaultKind::kJoin:
        join_at(event.slot, event.a, event.quota);
        break;
      case fault::FaultKind::kFlap:
        flap_link_at(event.slot, event.a, event.b, event.period_slots,
                     event.duty_pct, event.cycles);
        break;
      case fault::FaultKind::kForceSwitch:
        force_switch_at(event.slot, event.a);
        break;
      case fault::FaultKind::kClearSwitch:
        clear_switch_at(event.slot, event.a);
        break;
      case fault::FaultKind::kMark:
        mark_at(event.slot, event.label);
        break;
    }
  }
  return *this;
}

std::vector<Scenario::LogEntry> Scenario::run(
    Engine& engine, phy::Topology& topology, std::int64_t until_slot,
    phy::MobilityModel* mobility, std::int64_t mobility_period_slots) {
  std::stable_sort(actions_.begin(), actions_.end(),
                   [](const Action& x, const Action& y) {
                     return x.slot < y.slot;
                   });

  std::vector<LogEntry> log;
  const auto record = [&](const std::string& what) {
    log.push_back({engine.now_slots(), what, engine.virtual_ring().size(),
                   engine.sat_state()});
  };

  std::size_t next_action = 0;
  std::size_t last_ring_size = engine.virtual_ring().size();
  std::int64_t last_mobility = engine.now_slots();

  while (engine.now_slots() < until_slot) {
    while (next_action < actions_.size() &&
           actions_[next_action].slot <= engine.now_slots()) {
      const Action& action = actions_[next_action];
      switch (action.kind) {
        case Action::Kind::kJoin:
          // A scripted join means the station has arrived / powered on;
          // chaos plans park joiner candidates as dead nodes until then.
          topology.set_alive(action.a, true);
          engine.request_join(action.a, action.quota);
          break;
        case Action::Kind::kLeave: {
          const auto status = engine.request_leave(action.a);
          if (!status.ok()) {
            record("leave refused: " + status.error().message);
          }
          break;
        }
        case Action::Kind::kKill:
          engine.kill_station(action.a);
          break;
        case Action::Kind::kStall:
          engine.stall_station(action.a);
          break;
        case Action::Kind::kResume:
          engine.resume_station(action.a);
          break;
        case Action::Kind::kDropSat:
          engine.drop_sat_once();
          break;
        case Action::Kind::kDropControl:
          engine.drop_control_once(action.control_msg);
          break;
        case Action::Kind::kFailLink:
          topology.fail_link(action.a, action.b);
          break;
        case Action::Kind::kRestoreLink:
          topology.restore_link(action.a, action.b);
          break;
        case Action::Kind::kDegradeLink:
          engine.degrade_link(action.a, action.b, action.ge);
          break;
        case Action::Kind::kHealLink:
          // A FaultPlan's link-heal undoes whichever hit the link: the GE
          // override, the hard break, or both.
          engine.heal_link(action.a, action.b);
          topology.restore_link(action.a, action.b);
          break;
        case Action::Kind::kPartition:
          topology.set_partition(action.groups);
          break;
        case Action::Kind::kHealPartition:
          topology.clear_partition();
          break;
        case Action::Kind::kForceSwitch: {
          const auto status = engine.force_switch(action.a);
          if (!status.ok()) {
            record("force switch refused: " + status.error().message);
          }
          break;
        }
        case Action::Kind::kClearSwitch:
          engine.clear_force_switch(action.a);
          break;
        case Action::Kind::kMark:
          break;
      }
      record(action.label);
      ++next_action;
    }

    if (mobility != nullptr &&
        engine.now_slots() - last_mobility >= mobility_period_slots) {
      mobility->step(topology, engine.now(),
                     slots_to_ticks(engine.now_slots() - last_mobility));
      last_mobility = engine.now_slots();
    }

    engine.step();

    if (engine.virtual_ring().size() != last_ring_size) {
      record(engine.virtual_ring().size() > last_ring_size
                 ? "ring grew"
                 : "ring shrank");
      last_ring_size = engine.virtual_ring().size();
    }
  }
  return log;
}

}  // namespace wrt::wrtring
