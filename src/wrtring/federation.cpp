#include "wrtring/federation.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <thread>
#include <utility>

#include "phy/topology.hpp"
#include "traffic/traffic.hpp"
#include "util/rng.hpp"
#include "wrtring/gateway.hpp"

namespace wrt::wrtring {

namespace {

/// Crossing-stream flow ids live above every local flow id so the two
/// spaces cannot collide (local ids are dense from 0).
constexpr FlowId kCrossingFlowBase = FlowId{1} << 30;

/// Every station is the gateway candidate; by convention node 0 bridges
/// its ring to the backbone (it exists in every ring and never churns in
/// a federation run).
constexpr NodeId kGatewayNode = 0;

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFFU;
    h *= kFnvPrime;
  }
}

/// Stable per-ring seed: mixes the federation seed with the ring's global
/// index through splitmix64, so ring streams are independent and do not
/// depend on construction order.
[[nodiscard]] std::uint64_t ring_seed(std::uint64_t federation_seed,
                                      std::uint32_t ring_index) {
  std::uint64_t state =
      federation_seed ^ (0x9e3779b97f4a7c15ULL * (ring_index + 1ULL));
  return util::splitmix64(state);
}

}  // namespace

util::Status FederationConfig::validate() const {
  if (shards == 0) return util::Error::invalid_argument("shards must be >= 1");
  if (rings == 0) return util::Error::invalid_argument("rings must be >= 1");
  if (stations_per_ring < 4) {
    return util::Error::invalid_argument("stations_per_ring must be >= 4");
  }
  if (epoch_slots < 1) {
    return util::Error::invalid_argument("epoch_slots must be >= 1");
  }
  if (crossing_flows_per_ring > 0 && rings < 2) {
    return util::Error::invalid_argument(
        "crossing flows need at least 2 rings");
  }
  if (crossing_flows_per_ring > 0 && crossing_rate_per_slot <= 0.0) {
    return util::Error::invalid_argument("crossing rate must be positive");
  }
  if (!ring.members.empty() || !ring.station_quotas.empty()) {
    return util::Error::invalid_argument(
        "ring template must leave members/station_quotas empty");
  }
  return util::Status::success();
}

FederationEngine::FederationEngine(FederationConfig config,
                                   std::uint64_t seed)
    : config_(std::move(config)), seed_(seed) {}

FederationEngine::~FederationEngine() = default;

util::Status FederationEngine::init() {
  assert(!initialized_);
  if (util::Status status = config_.validate(); !status.ok()) return status;

  const std::uint32_t K = config_.shards;
  shards_.reserve(K);
  for (std::uint32_t s = 0; s < K; ++s) {
    shards_.push_back(std::make_unique<FederationShard>(
        s, K, config_.backbone_hops, config_.backbone_service_rate,
        config_.backbone_queue_capacity, config_.backbone_premium_capacity));
  }
  mailboxes_.resize(static_cast<std::size_t>(K) * K);
  for (std::uint32_t s = 0; s < K; ++s) {
    std::vector<Mailbox*> inbound(K);
    std::vector<Mailbox*> outbound(K);
    for (std::uint32_t p = 0; p < K; ++p) {
      inbound[p] = &mailboxes_[static_cast<std::size_t>(p) * K + s];
      outbound[p] = &mailboxes_[static_cast<std::size_t>(s) * K + p];
    }
    shards_[s]->set_mailboxes(std::move(inbound), std::move(outbound));
  }

  if (util::Status status = build_rings(); !status.ok()) return status;
  install_crossing_flows();
  initialized_ = true;
  return util::Status::success();
}

util::Status FederationEngine::build_rings() {
  const std::uint32_t K = config_.shards;
  const std::size_t n = config_.stations_per_ring;
  // Same geometry as the bench "ring room": n stations on a circle with
  // radio range ~2.4 chord lengths (cut-out capable, ring always forms).
  const double radius = 10.0;
  const double chord =
      2.0 * radius * std::sin(std::numbers::pi / static_cast<double>(n));
  const phy::RadioParams radio{chord * 2.4, 0.0};

  for (std::uint32_t r = 0; r < config_.rings; ++r) {
    auto topology = std::make_unique<phy::Topology>(
        phy::placement::circle(n, radius), radio, ring_seed(seed_, r) | 1U);
    auto engine = std::make_unique<Engine>(topology.get(), config_.ring,
                                           ring_seed(seed_, r));
    if (util::Status status = engine->init(); !status.ok()) return status;

    // Local best-effort backlog: `saturated_per_ring` always-backlogged
    // sources, gateway exempt so crossings are not starved at G1.
    const auto span = static_cast<std::uint32_t>(n - 1);
    for (std::uint32_t i = 0; i < config_.saturated_per_ring; ++i) {
      traffic::FlowSpec spec;
      spec.id = static_cast<FlowId>(r) * config_.saturated_per_ring + i;
      spec.src = 1 + (i % span);
      spec.dst = 1 + ((i + span / 2) % span);
      if (spec.dst == spec.src) spec.dst = 1 + (spec.src % span);
      spec.cls = TrafficClass::kBestEffort;
      engine->add_saturated_source(spec, /*backlog=*/4);
    }

    shards_[r % K]->add_ring(r, kGatewayNode, std::move(topology),
                             std::move(engine));
  }
  return util::Status::success();
}

void FederationEngine::install_crossing_flows() {
  if (config_.crossing_flows_per_ring == 0) return;
  const std::uint32_t K = config_.shards;
  const auto span = static_cast<std::uint32_t>(config_.stations_per_ring - 1);
  std::int64_t deadline = config_.crossing_deadline_slots;
  if (deadline == 0) {
    // Generous enough for the epoch-quantized hand-offs (up to two epoch
    // waits) plus ring access on both sides; see DESIGN.md §12.
    deadline = 4 * config_.epoch_slots +
               8 * static_cast<std::int64_t>(config_.stations_per_ring) + 64;
  }
  // Destination rings are drawn from a dedicated stream of the federation
  // seed; discovery order cannot perturb it (satellite fix vs. the old
  // multiring `engines_.size() * 7919` scheme).
  util::RngStream rng(seed_, /*stream=*/0xFEDEull);

  for (std::uint32_t r = 0; r < config_.rings; ++r) {
    for (std::uint32_t c = 0; c < config_.crossing_flows_per_ring; ++c) {
      CrossingFlow crossing;
      crossing.flow = kCrossingFlowBase +
                      static_cast<FlowId>(r) * config_.crossing_flows_per_ring +
                      c;
      crossing.src_ring = r;
      const std::uint64_t offset = 1 + rng.uniform_int(config_.rings - 1ULL);
      crossing.dst_ring =
          static_cast<std::uint32_t>((r + offset) % config_.rings);
      crossing.src_station = 1 + (c % span);
      crossing.dst_station = 1 + ((c + span / 2) % span);

      const std::uint32_t src_shard = crossing.src_ring % K;
      const std::uint32_t dst_shard = crossing.dst_ring % K;
      const std::size_t src_slot = crossing.src_ring / K;
      const std::size_t dst_slot = crossing.dst_ring / K;

      // Three-way reservation brokering (serial): source ring, then the
      // destination shard's backbone segment + destination ring together.
      // Any refusal demotes the stream to best-effort.
      Gateway src_gateway(&shards_[src_shard]->ring_engine(src_slot),
                          &shards_[src_shard]->backbone(), kGatewayNode);
      Gateway dst_gateway(&shards_[dst_shard]->ring_engine(dst_slot),
                          &shards_[dst_shard]->backbone(), kGatewayNode);
      auto egress = src_gateway.reserve_ring_capacity(
          crossing.src_station, crossing.flow, config_.crossing_rate_per_slot);
      if (egress.ok()) {
        auto ingress = dst_gateway.reserve_backbone_to_ring(
            crossing.flow, config_.crossing_rate_per_slot);
        if (ingress.ok()) {
          crossing.admitted = true;
        } else {
          (void)src_gateway.release(crossing.flow);
        }
      }
      if (crossing.admitted) {
        ++rt_admitted_;
      } else {
        ++rt_rejected_;
      }

      traffic::FlowSpec spec;
      spec.id = crossing.flow;
      spec.src = crossing.src_station;
      spec.dst = kGatewayNode;  // first leg terminates at the egress gateway
      spec.cls = crossing.admitted ? TrafficClass::kRealTime
                                   : TrafficClass::kBestEffort;
      spec.kind = traffic::ArrivalKind::kCbr;
      spec.period_slots = 1.0 / config_.crossing_rate_per_slot;
      spec.deadline_slots = crossing.admitted ? deadline : 0;
      shards_[src_shard]->ring_engine(src_slot).add_source(spec);

      OutboundRoute out;
      out.src_ring = crossing.src_ring;
      out.dst_ring = crossing.dst_ring;
      out.dst_shard = dst_shard;
      out.dst_station = crossing.dst_station;
      shards_[src_shard]->add_outbound_route(crossing.flow, out);

      InboundRoute in;
      in.dst_ring = crossing.dst_ring;
      in.ring_slot = dst_slot;
      in.dst_station = crossing.dst_station;
      in.gateway = kGatewayNode;
      shards_[dst_shard]->add_inbound_route(crossing.flow, in);

      crossing_flows_.push_back(crossing);
    }
  }
}

void FederationEngine::run_epochs(std::int64_t epochs) {
  assert(initialized_);
  const auto K = static_cast<std::uint32_t>(shards_.size());
  std::uint32_t W = config_.worker_threads == 0 ? K : config_.worker_threads;
  W = std::min(W, K);
  if (W == 0) W = 1;

  for (std::int64_t e = 0; e < epochs; ++e) {
    const Tick epoch_start = slots_to_ticks(now_slots_);
    if (W == 1) {
      for (auto& shard : shards_) {
        shard->run_epoch(epoch_start, config_.epoch_slots);
      }
    } else {
      // Static shard -> worker assignment (s mod W); the assignment has no
      // semantic weight — shards never observe each other mid-epoch.
      std::vector<std::thread> workers;
      workers.reserve(W - 1);
      for (std::uint32_t w = 1; w < W; ++w) {
        workers.emplace_back([this, w, W, epoch_start, K] {
          for (std::uint32_t s = w; s < K; s += W) {
            shards_[s]->run_epoch(epoch_start, config_.epoch_slots);
          }
        });
      }
      for (std::uint32_t s = 0; s < K; s += W) {
        shards_[s]->run_epoch(epoch_start, config_.epoch_slots);
      }
      for (std::thread& worker : workers) worker.join();
    }

    // Barrier passed (threads joined): flip every mailbox serially so this
    // epoch's posts become next epoch's inbound.
    for (Mailbox& mailbox : mailboxes_) mailbox.flip();

    std::int64_t epoch_max_ns = 0;
    for (const auto& shard : shards_) {
      epoch_max_ns = std::max(epoch_max_ns, shard->last_epoch_busy_ns());
    }
    critical_path_ns_ += epoch_max_ns;

    now_slots_ += config_.epoch_slots;
    ++epochs_run_;
  }
}

const Engine& FederationEngine::ring_engine(std::uint32_t ring) const {
  return shards_.at(ring % shards_.size())->ring_engine(ring / shards_.size());
}

Engine& FederationEngine::ring_engine(std::uint32_t ring) {
  return shards_.at(ring % shards_.size())->ring_engine(ring / shards_.size());
}

std::vector<Tick> FederationEngine::rt_crossing_delay_ticks() const {
  std::vector<Tick> merged;
  for (const auto& shard : shards_) {
    const auto& samples = shard->rt_crossing_delay_ticks();
    merged.insert(merged.end(), samples.begin(), samples.end());
  }
  return merged;
}

FederationStats FederationEngine::stats() const {
  FederationStats out;
  out.ring_slots = static_cast<std::uint64_t>(config_.rings) *
                   static_cast<std::uint64_t>(now_slots_);
  out.station_slots = out.ring_slots * config_.stations_per_ring;
  out.rt_admitted = rt_admitted_;
  out.rt_rejected = rt_rejected_;
  std::int64_t busy_ns = 0;
  for (const auto& shard : shards_) {
    const ShardCounters& counters = shard->counters();
    out.crossings.crossings_posted += counters.crossings_posted;
    out.crossings.crossings_received += counters.crossings_received;
    out.crossings.crossings_injected += counters.crossings_injected;
    out.crossings.crossings_delivered += counters.crossings_delivered;
    out.crossings.crossing_drops += counters.crossing_drops;
    out.backbone_tail_drops += shard->backbone().tail_drops();
    busy_ns += shard->busy_ns_total();
    for (std::size_t slot = 0; slot < shard->ring_count(); ++slot) {
      out.total_delivered +=
          shard->ring_engine(slot).stats().sink.total_delivered();
    }
  }
  out.busy_seconds = static_cast<double>(busy_ns) * 1e-9;
  out.critical_path_seconds = static_cast<double>(critical_path_ns_) * 1e-9;
  return out;
}

std::uint64_t FederationEngine::digest() const {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, seed_);
  fnv_mix(h, config_.shards);
  fnv_mix(h, config_.rings);
  fnv_mix(h, config_.stations_per_ring);
  fnv_mix(h, static_cast<std::uint64_t>(config_.epoch_slots));
  for (std::uint32_t r = 0; r < config_.rings; ++r) {
    const EngineStats& stats = ring_engine(r).stats();
    fnv_mix(h, ring_engine(r).virtual_ring().size());
    fnv_mix(h, stats.sat_rounds);
    fnv_mix(h, stats.sat_hops);
    fnv_mix(h, stats.data_transmissions);
    fnv_mix(h, stats.transit_forwards);
    fnv_mix(h, stats.frames_lost_link);
    fnv_mix(h, stats.frames_lost_rebuild);
    fnv_mix(h, stats.frames_lost_churn);
    fnv_mix(h, stats.frames_dropped_stale);
    fnv_mix(h, stats.sink.total_delivered());
    const auto& rt = stats.sink.by_class(TrafficClass::kRealTime);
    fnv_mix(h, rt.delivered);
    fnv_mix(h, rt.deadline_misses);
    fnv_mix(h, stats.sink.by_class(TrafficClass::kBestEffort).delivered);
    fnv_mix(h, stats.sat_recoveries);
    fnv_mix(h, stats.ring_rebuilds);
  }
  for (const auto& shard : shards_) {
    const ShardCounters& counters = shard->counters();
    fnv_mix(h, counters.crossings_posted);
    fnv_mix(h, counters.crossings_received);
    fnv_mix(h, counters.crossings_injected);
    fnv_mix(h, counters.crossings_delivered);
    fnv_mix(h, counters.crossing_drops);
    fnv_mix(h, shard->backbone().tail_drops());
    fnv_mix(h, shard->in_flight());
    const auto& rt_samples = shard->rt_crossing_delay_ticks();
    fnv_mix(h, rt_samples.size());
    for (const Tick tick : rt_samples) {
      fnv_mix(h, static_cast<std::uint64_t>(tick));
    }
    const auto& be_samples = shard->be_crossing_delay_ticks();
    fnv_mix(h, be_samples.size());
    for (const Tick tick : be_samples) {
      fnv_mix(h, static_cast<std::uint64_t>(tick));
    }
  }
  fnv_mix(h, rt_admitted_);
  fnv_mix(h, rt_rejected_);
  return h;
}

}  // namespace wrt::wrtring
