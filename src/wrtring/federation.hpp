// Sharded multi-ring federation: thousands of WRT-Rings on K worker
// threads with epoch-synchronized gateway exchange.
//
// The paper scopes one ring to a small cell and sketches the rest
// ("it may form another ring", §2.4.1; the Diffserv gateway, §2.3).  The
// FederationEngine is that rest at scale: rings are partitioned into K
// shards (ring r -> shard r mod K), each shard steps its rings and its
// Diffserv backbone segment locally, and inter-ring traffic crosses only
// at epoch boundaries through double-buffered per-shard-pair mailboxes.
//
// Determinism contract: for a fixed (seed, shard count) the run is
// bit-identical for ANY worker-thread count, including 1.  K is the
// semantic partition — it decides which backbone segment a crossing
// traverses and the epoch quantization of its hand-offs; W ≤ K is pure
// execution.  This holds because (a) shards touch only their own state
// during an epoch, (b) mailbox buffers flip serially at the barrier,
// (c) mailboxes are drained in fixed producer order, and (d) nothing in
// the protocol reads a wall clock.  See DESIGN.md §12 for the argument
// and tests/concurrency/federation_determinism_test.cpp for the proof.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/result.hpp"
#include "util/types.hpp"
#include "wrtring/config.hpp"
#include "wrtring/mailbox.hpp"
#include "wrtring/shard.hpp"

namespace wrt::wrtring {

struct FederationConfig {
  std::uint32_t shards = 1;          ///< K: the determinism partition
  std::uint32_t worker_threads = 0;  ///< W: execution only; 0 = one per shard
  std::int64_t epoch_slots = 64;     ///< E: slots between mailbox flips

  std::uint32_t rings = 8;
  std::uint32_t stations_per_ring = 16;  ///< >= 4; station 0 is the gateway
  Config ring;  ///< per-ring template (members/station_quotas left empty)

  /// Best-effort backlog sources per ring (local load; station 0 exempt).
  std::uint32_t saturated_per_ring = 2;

  /// Inter-ring RT streams originating in each ring.  Each is brokered at
  /// init: admitted (RealTime) only if the source ring, the destination
  /// shard's backbone segment AND the destination ring all have budget;
  /// otherwise demoted to best-effort.
  std::uint32_t crossing_flows_per_ring = 1;
  double crossing_rate_per_slot = 0.02;  ///< per crossing stream
  /// Relative RT deadline for admitted crossings; 0 derives one generous
  /// enough for the epoch-quantized hand-offs (see DESIGN.md §12).
  std::int64_t crossing_deadline_slots = 0;

  // One Diffserv backbone segment per shard (terminating crossings whose
  // destination ring lives on that shard).
  std::size_t backbone_hops = 2;
  double backbone_service_rate = 4.0;   ///< packets/slot per segment
  std::size_t backbone_queue_capacity = 4096;
  double backbone_premium_capacity = 1.0;  ///< packets/slot per segment

  [[nodiscard]] util::Status validate() const;
};

/// One brokered crossing stream (bookkeeping snapshot, serial init).
struct CrossingFlow {
  FlowId flow = kInvalidFlow;
  std::uint32_t src_ring = 0;
  std::uint32_t dst_ring = 0;
  NodeId src_station = kInvalidNode;
  NodeId dst_station = kInvalidNode;
  bool admitted = false;  ///< RealTime if true, demoted to best-effort else
};

/// Aggregate run statistics (serial, after the epoch loop).
struct FederationStats {
  std::uint64_t ring_slots = 0;     ///< Σ over rings of slots stepped
  std::uint64_t station_slots = 0;  ///< ring_slots × stations per ring
  std::uint64_t total_delivered = 0;
  ShardCounters crossings;          ///< summed over shards
  std::uint32_t rt_admitted = 0;
  std::uint32_t rt_rejected = 0;
  std::uint64_t backbone_tail_drops = 0;
  /// Σ over shards of thread-CPU busy time (total work).
  double busy_seconds = 0.0;
  /// Σ over epochs of max-shard busy time: the run's critical path, i.e.
  /// the wall time a host with ≥ K free cores would observe.
  double critical_path_seconds = 0.0;
};

class FederationEngine {
 public:
  FederationEngine(FederationConfig config, std::uint64_t seed);
  ~FederationEngine();

  FederationEngine(const FederationEngine&) = delete;
  FederationEngine& operator=(const FederationEngine&) = delete;

  /// Builds every ring (serially), wires shards and mailboxes, installs
  /// local + crossing traffic and brokers every crossing reservation.
  [[nodiscard]] util::Status init();

  /// Runs `epochs` epochs of epoch_slots slots each.  With W > 1, each
  /// epoch fans shards out over W workers and joins them at the barrier
  /// before the serial mailbox flip.
  void run_epochs(std::int64_t epochs);

  [[nodiscard]] std::int64_t now_slots() const noexcept { return now_slots_; }
  [[nodiscard]] std::int64_t epochs_run() const noexcept {
    return epochs_run_;
  }
  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] std::uint32_t ring_count() const noexcept {
    return config_.rings;
  }
  [[nodiscard]] std::uint64_t total_stations() const noexcept {
    return static_cast<std::uint64_t>(config_.rings) *
           config_.stations_per_ring;
  }
  [[nodiscard]] const std::vector<CrossingFlow>& crossing_flows()
      const noexcept {
    return crossing_flows_;
  }

  /// Engine serving global ring r (shard r mod K, slot r div K).  The
  /// non-const overload is for the serial phases only (wiring, external
  /// brokering, post-run inspection) — never while workers are running.
  [[nodiscard]] const Engine& ring_engine(std::uint32_t ring) const;
  [[nodiscard]] Engine& ring_engine(std::uint32_t ring);
  [[nodiscard]] const FederationShard& shard(std::uint32_t index) const {
    return *shards_.at(index);
  }

  /// End-to-end RT crossing delays in ticks, merged in shard order
  /// (deterministic).
  [[nodiscard]] std::vector<Tick> rt_crossing_delay_ticks() const;

  [[nodiscard]] FederationStats stats() const;

  /// FNV-1a digest over every ring's integer protocol counters (global
  /// ring order), every shard's crossing counters and delay samples, and
  /// the brokering outcome.  Integer-only inputs; bit-identical for a
  /// fixed (seed, shard count) regardless of worker-thread count.
  [[nodiscard]] std::uint64_t digest() const;

 private:
  [[nodiscard]] util::Status build_rings();
  void install_crossing_flows();

  FederationConfig config_;
  std::uint64_t seed_;
  std::vector<std::unique_ptr<FederationShard>> shards_;
  std::vector<Mailbox> mailboxes_;  ///< K×K, [src * K + dst]
  std::vector<CrossingFlow> crossing_flows_;
  std::uint32_t rt_admitted_ = 0;
  std::uint32_t rt_rejected_ = 0;
  std::int64_t now_slots_ = 0;
  std::int64_t epochs_run_ = 0;
  std::int64_t critical_path_ns_ = 0;
  bool initialized_ = false;
};

}  // namespace wrt::wrtring
