// Scenario scripting: deterministic timelines of topology events.
//
// Experiments and examples repeatedly need "run N slots, then a station
// dies, then a joiner appears, then a link drops ...".  A Scenario is that
// script: a sorted list of timed actions applied to an Engine (plus its
// Topology and an optional mobility model) while the simulation advances,
// with an event log recording what happened and when — so tests can assert
// on the protocol's externally visible timeline.
#pragma once

#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "phy/mobility.hpp"
#include "wrtring/engine.hpp"

namespace wrt::wrtring {

class Scenario {
 public:
  Scenario& join_at(std::int64_t slot, NodeId node, Quota quota);
  Scenario& leave_at(std::int64_t slot, NodeId node);
  Scenario& kill_at(std::int64_t slot, NodeId node);
  Scenario& stall_at(std::int64_t slot, NodeId node);
  Scenario& resume_at(std::int64_t slot, NodeId node);
  Scenario& drop_sat_at(std::int64_t slot);
  Scenario& drop_control_at(std::int64_t slot, Engine::ControlMsg which);
  Scenario& fail_link_at(std::int64_t slot, NodeId a, NodeId b);
  Scenario& restore_link_at(std::int64_t slot, NodeId a, NodeId b);
  /// Gilbert–Elliott override on link a <-> b (all purposes).
  Scenario& degrade_link_at(std::int64_t slot, NodeId a, NodeId b,
                            const fault::GeParams& params);
  /// Undoes both degrade_link_at and fail_link_at on the link.
  Scenario& heal_link_at(std::int64_t slot, NodeId a, NodeId b);
  Scenario& partition_at(std::int64_t slot,
                         std::vector<std::vector<NodeId>> groups);
  Scenario& heal_partition_at(std::int64_t slot);
  /// Link a <-> b cycles down/up `cycles` times from `slot`: each cycle is
  /// `period_slots` long with the link down for its first `duty_pct`
  /// percent (>= 1 slot).  Expands into fail/restore pairs at build time.
  Scenario& flap_link_at(std::int64_t slot, NodeId a, NodeId b,
                         std::int64_t period_slots, std::uint32_t duty_pct,
                         std::uint32_t cycles);
  /// Operator-forced protection switch on `node` (Engine::force_switch).
  Scenario& force_switch_at(std::int64_t slot, NodeId node);
  /// Releases the forced switch (Engine::clear_force_switch; WTB starts).
  Scenario& clear_switch_at(std::int64_t slot, NodeId node);
  /// Free-form marker copied into the log (phase labels).
  Scenario& mark_at(std::int64_t slot, std::string label);

  /// Appends every event of a FaultPlan; this is how scripted/randomized
  /// plans (tools/wrt_chaos, tests) become live engine faults.
  Scenario& apply_plan(const fault::FaultPlan& plan);

  struct LogEntry {
    std::int64_t slot = 0;
    std::string what;
    std::size_t ring_size = 0;
    SatState sat_state = SatState::kLost;
  };

  /// Runs the engine to `until_slot`, applying actions as their time comes
  /// and stepping `mobility` (when non-null) every `mobility_period_slots`.
  /// Returns the event log (scripted actions plus automatic entries for
  /// ring-size changes observed between steps).
  std::vector<LogEntry> run(Engine& engine, phy::Topology& topology,
                            std::int64_t until_slot,
                            phy::MobilityModel* mobility = nullptr,
                            std::int64_t mobility_period_slots = 100);

 private:
  struct Action {
    enum class Kind {
      kJoin,
      kLeave,
      kKill,
      kStall,
      kResume,
      kDropSat,
      kDropControl,
      kFailLink,
      kRestoreLink,
      kDegradeLink,
      kHealLink,
      kPartition,
      kHealPartition,
      kForceSwitch,
      kClearSwitch,
      kMark,
    };
    std::int64_t slot = 0;
    Kind kind = Kind::kMark;
    NodeId a = kInvalidNode;
    NodeId b = kInvalidNode;
    Quota quota{1, 1};
    fault::GeParams ge{};
    Engine::ControlMsg control_msg = Engine::ControlMsg::kNextFree;
    std::vector<std::vector<NodeId>> groups;
    std::string label;
  };

  std::vector<Action> actions_;
};

}  // namespace wrt::wrtring
