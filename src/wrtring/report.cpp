#include "wrtring/report.hpp"

#include "analysis/bounds.hpp"

namespace wrt::wrtring {

namespace {

void add_class_rows(util::Table& table, const traffic::Sink& sink) {
  for (const TrafficClass cls :
       {TrafficClass::kRealTime, TrafficClass::kAssured,
        TrafficClass::kBestEffort}) {
    const auto& stats = sink.by_class(cls);
    if (stats.delivered == 0 && stats.dropped == 0) continue;
    table.add_row({to_string(cls),
                   static_cast<std::int64_t>(stats.delivered),
                   stats.delay_slots.mean(), stats.delay_slots.max(),
                   stats.delay_slots.count() > 0
                       ? stats.delay_slots.quantile(0.99)
                       : 0.0,
                   static_cast<std::int64_t>(stats.deadline_misses),
                   static_cast<std::int64_t>(stats.dropped)});
  }
}

}  // namespace

util::Table guarantee_report(const Engine& engine) {
  util::Table table("guarantees in force",
                    {"station", "ring position", "l", "k",
                     "Theorem-3 wait bound (x=0)"});
  const analysis::RingParams params = engine.ring_params();
  for (std::size_t p = 0; p < engine.virtual_ring().size(); ++p) {
    const NodeId node = engine.virtual_ring().station_at(p);
    const Quota quota = engine.station(node).quota();
    table.add_row({static_cast<std::int64_t>(node),
                   static_cast<std::int64_t>(p),
                   static_cast<std::int64_t>(quota.l),
                   static_cast<std::int64_t>(quota.k),
                   quota.l > 0 ? analysis::access_time_bound(params, p, 0)
                               : std::int64_t{-1}});
  }
  return table;
}

util::Table traffic_report(const Engine& engine) {
  util::Table table("per-class delivery (WRT-Ring)",
                    {"class", "delivered", "mean delay", "max delay",
                     "p99 delay", "deadline misses", "dropped"});
  add_class_rows(table, engine.stats().sink);
  return table;
}

util::Table traffic_report(const tpt::TptEngine& engine) {
  util::Table table("per-class delivery (TPT)",
                    {"class", "delivered", "mean delay", "max delay",
                     "p99 delay", "deadline misses", "dropped"});
  add_class_rows(table, engine.stats().sink);
  return table;
}

util::Table resilience_report(const Engine& engine) {
  util::Table table("resilience history",
                    {"event", "count", "latency mean (slots)",
                     "latency max (slots)"});
  const EngineStats& stats = engine.stats();
  table.add_row({std::string("SAT losses detected"),
                 static_cast<std::int64_t>(stats.sat_losses_detected),
                 stats.sat_loss_detection_slots.mean(),
                 stats.sat_loss_detection_slots.count() > 0
                     ? stats.sat_loss_detection_slots.max()
                     : 0.0});
  table.add_row({std::string("cut-out recoveries"),
                 static_cast<std::int64_t>(stats.sat_recoveries),
                 stats.recovery_total_slots.mean(),
                 stats.recovery_total_slots.count() > 0
                     ? stats.recovery_total_slots.max()
                     : 0.0});
  table.add_row({std::string("ring re-formations"),
                 static_cast<std::int64_t>(stats.ring_rebuilds), 0.0, 0.0});
  table.add_row({std::string("joins completed"),
                 static_cast<std::int64_t>(stats.joins_completed),
                 stats.join_latency_slots.mean(),
                 stats.join_latency_slots.count() > 0
                     ? stats.join_latency_slots.max()
                     : 0.0});
  table.add_row({std::string("joins rejected"),
                 static_cast<std::int64_t>(stats.joins_rejected), 0.0, 0.0});
  table.add_row({std::string("control messages lost"),
                 static_cast<std::int64_t>(stats.control_messages_lost), 0.0,
                 0.0});
  table.add_row({std::string("join retries (backoff)"),
                 static_cast<std::int64_t>(stats.join_retries), 0.0, 0.0});
  table.add_row({std::string("joins abandoned"),
                 static_cast<std::int64_t>(stats.joins_abandoned), 0.0, 0.0});
  table.add_row({std::string("frames lost (links)"),
                 static_cast<std::int64_t>(stats.frames_lost_link), 0.0, 0.0});
  table.add_row({std::string("frames lost (teardowns)"),
                 static_cast<std::int64_t>(stats.frames_lost_rebuild), 0.0,
                 0.0});
  table.add_row({std::string("frames lost (join churn)"),
                 static_cast<std::int64_t>(stats.frames_lost_churn), 0.0,
                 0.0});
  table.add_row({std::string("graceful leaves"),
                 static_cast<std::int64_t>(stats.leaves_completed), 0.0,
                 0.0});
  table.add_row({std::string("SAT seizures"),
                 static_cast<std::int64_t>(stats.sat_hold_slots.count()),
                 stats.sat_hold_slots.mean(),
                 stats.sat_hold_slots.count() > 0
                     ? stats.sat_hold_slots.max()
                     : 0.0});
  return table;
}

}  // namespace wrt::wrtring
