// WRT-Ring protocol configuration.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/gilbert_elliott.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace wrt::wrtring {

/// When stations open Random Access Periods (Section 2.4.1).
enum class RapPolicy : std::uint8_t {
  kDisabled,  ///< no RAP, T_rap = 0 (closed network; pure Section 2.6 bounds)
  kRotating,  ///< every station RAPs when eligible (mutex + S_round fairness)
};

struct Config {
  /// Default per-station quota (l real-time, k non-real-time packets per
  /// SAT round, Section 2.2).  Overridden per station by `station_quotas`
  /// when non-empty (index = ring-construction order).
  Quota default_quota{1, 1};
  std::vector<Quota> station_quotas;

  /// When non-empty, the engine rings exactly these stations rather than
  /// every alive node — used by MultiRingCoordinator to run several
  /// independent rings over one topology (the Section-2.4.1 "may form
  /// another ring" case).  Re-formation after failures stays within this
  /// member set.
  std::vector<NodeId> members;

  /// Diffserv split of k (Section 2.3): k1 packets of the k quota are
  /// reserved for Assured traffic, the rest (k2 = k - k1) for best-effort.
  /// k1 = 0 disables the split (plain two-class WRT-Ring).
  std::uint32_t k1_assured = 0;

  /// Data-frame per-hop latency in slots (>= 1).  The SAT inherits this
  /// unless `sat_hop_latency_slots` > 0.  Ring latency S = N * hop latency.
  std::int64_t hop_latency_slots = 1;
  std::int64_t sat_hop_latency_slots = 0;  ///< 0 = same as hop_latency_slots

  /// RAP timing (Section 2.4.1): T_rap = T_ear + T_update.  T_ear must be
  /// >= 3 slots for the NEXT_FREE / JOIN_REQ / JOIN_ACK exchange.
  RapPolicy rap_policy = RapPolicy::kDisabled;
  std::int64_t t_ear_slots = 4;
  std::int64_t t_update_slots = 2;

  /// Minimum SAT rounds a station waits between its RAPs; the paper
  /// requires S_round(i) >= N; 0 means "track the current ring size".
  std::int64_t s_round_min = 0;

  /// SAT-loss timer (Section 2.5).  0 = derive automatically from the
  /// Theorem 1 bound for the current ring parameters.
  std::int64_t sat_timeout_slots = 0;

  /// Modelled cost of a full ring re-formation after an unrecoverable SAT
  /// loss: base + per_station * N slots of network downtime.
  std::int64_t rebuild_base_slots = 8;
  std::int64_t rebuild_per_station_slots = 2;

  /// Per-station queue capacity per class (packets); arrivals beyond this
  /// are dropped and recorded.
  std::size_t queue_capacity = 4096;

  /// When true, every data-slot transmission is resolved through the full
  /// CDMA interference model (O(N^2) per slot; used by fidelity tests and
  /// the Figure-1 bench).  When false, the distance-2 code-assignment
  /// invariant is checked once and per-hop delivery is direct.
  bool cdma_fidelity = false;

  /// Channel imperfection injection: independent per-hop loss probability
  /// for data frames, the SAT control signal, and join-handshake control
  /// messages.  A lost SAT triggers the full Section-2.5 machinery
  /// (detection, SAT_REC, cut-out), so this models the "control signal can
  /// be frequently lost" wireless regime the Section-3.3 reaction-time
  /// comparison worries about.  These scalars are the degenerate i.i.d.
  /// form of `channel` below: each is folded into the corresponding
  /// Gilbert–Elliott process when that process is not itself configured.
  double frame_loss_prob = 0.0;
  double sat_loss_prob = 0.0;
  double control_loss_prob = 0.0;

  /// Bursty per-link loss (src/fault/): the default channel imperfection
  /// model.  Every (purpose, directed link) pair runs an independent
  /// seeded Gilbert–Elliott chain, so losses are correlated in time but
  /// independent across links and purposes — and zero draws happen when
  /// every process is disabled (the digest-preservation contract).
  fault::ChannelConfig channel;

  /// Lossy-join retry policy (Section 2.4.1 under loss).  A joiner whose
  /// JOIN_REQ or JOIN_ACK is lost observes a RAP round with no acknowledged
  /// insertion and backs off: it ignores NEXT_FREE broadcasts for
  /// base << min(attempt-1, exp_cap) slots, then listens again with a
  /// cleared NEXT_FREE table.  After `join_max_attempts` lost messages the
  /// join is abandoned cleanly (nothing half-inserted, RAP_mutex free).
  std::int64_t join_backoff_base_slots = 8;
  std::uint32_t join_backoff_exp_cap = 6;
  std::uint32_t join_max_attempts = 10;

  /// A healthy station cut out by a spurious SAT_REC (the paper blames the
  /// detector's predecessor, which may be innocent after a transient loss)
  /// immediately starts the Section-2.4.1 join procedure again when this
  /// is set and a RAP policy is active.
  bool auto_rejoin = false;

  /// ERPS-grade protection switching (RecoveryFsm, DESIGN.md §14).  All
  /// defaults keep the engine bit-identical to the paper's bare
  /// SAT_TIMER -> SAT_REC -> re-form chain (the SoA digest oracles gate
  /// that); each knob opts one hardening in.
  ///
  /// Guard window: for this many slots after a recovery, rebuild, or
  /// cancelled stale SAT_REC, fresh SAT_TIMER expiries are suppressed as
  /// stale echoes (the detector's timer is re-armed instead).  With the
  /// guard configured, a SAT_REC about to cut out a station that is alive
  /// and reachable again is cancelled in flight instead of cutting.
  std::int64_t guard_slots = 0;
  /// Wait-to-restore: a station cut out of the ring must stay continuously
  /// healthy this many slots before auto_rejoin re-admits it (a flap
  /// restarts the clock).  0 = re-admit immediately (legacy).
  std::int64_t wtr_slots = 0;
  /// Wait-to-block: same hold-off for stations released from an
  /// operator-forced switch (force_switch / clear_force_switch).
  std::int64_t wtb_slots = 0;
  /// Revertive recovery: a re-admitted station is inserted back after its
  /// original ring predecessor with its original quota and Diffserv split,
  /// so rotation history and the Theorem 1/2 bounds survive the blip.
  /// Non-revertive (default) keeps the arbitrary-ingress legacy behaviour.
  bool revertive = false;

  [[nodiscard]] std::int64_t effective_sat_hop_latency() const noexcept {
    return sat_hop_latency_slots > 0 ? sat_hop_latency_slots
                                     : hop_latency_slots;
  }

  [[nodiscard]] std::int64_t t_rap_slots() const noexcept {
    return rap_policy == RapPolicy::kDisabled ? 0
                                              : t_ear_slots + t_update_slots;
  }

  /// Rejects configurations the protocol cannot run correctly (checked by
  /// Engine::init before anything else).
  [[nodiscard]] util::Status validate() const;
};

}  // namespace wrt::wrtring
