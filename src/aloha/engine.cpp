#include "aloha/engine.hpp"

#include <algorithm>
#include <cassert>

namespace wrt::aloha {

util::Status AlohaConfig::validate() const {
  if (p_persist <= 0.0 || p_persist > 1.0) {
    return util::Error::invalid_argument("p_persist must be in (0, 1]");
  }
  if (cw_min < 1 || cw_max < cw_min) {
    return util::Error::invalid_argument("need 1 <= cw_min <= cw_max");
  }
  if (max_attempts < 1) {
    return util::Error::invalid_argument("max_attempts must be >= 1");
  }
  return channel.validate();
}

AlohaEngine::AlohaEngine(phy::Topology* topology, AlohaConfig config,
                         std::uint64_t seed)
    : topology_(topology), config_(std::move(config)), seed_(seed) {
  assert(topology_ != nullptr);
}

util::Status AlohaEngine::init() {
  assert(!initialised_);
  if (const auto status = config_.validate(); !status.ok()) return status;
  bool any = false;
  for (NodeId n = 0; n < topology_->node_count(); ++n) {
    if (!topology_->alive(n)) continue;
    StationState& st = stations_[n];
    st.cw = config_.cw_min;
    // Per-station stream: one station's backoff history never perturbs
    // another's (the same per-entity-stream rule as the ring's kernel).
    st.rng = util::RngStream(seed_, 0xA70A000u + n);
    any = true;
  }
  if (!any) return util::Error::invalid_argument("no alive stations");
  loss_field_.configure(config_.channel, seed_ ^ 0xA70AFEEDu);
  initialised_ = true;
  return util::Status::success();
}

void AlohaEngine::add_source(const traffic::FlowSpec& spec) {
  sources_.push_back(
      {traffic::TrafficSource(spec, seed_ ^ (0xA10AA10Au + spec.id)),
       spec.src});
}

void AlohaEngine::add_saturated_source(const traffic::FlowSpec& spec,
                                       std::size_t backlog) {
  saturated_.push_back({traffic::SaturatedSource(spec), spec.src, backlog});
}

void AlohaEngine::add_trace_source(traffic::Trace trace, FlowId flow,
                                   NodeId src, NodeId dst,
                                   std::int64_t deadline_slots) {
  traces_.push_back(
      {traffic::TraceSource(std::move(trace), flow, src, dst, deadline_slots),
       src});
}

// wrt-lint-allow(by-value-frame-param): deliberate sink, moved into queue
bool AlohaEngine::inject_packet(traffic::Packet packet) {
  const auto it = stations_.find(packet.src);
  if (it == stations_.end() || !it->second.alive) return false;
  auto& queue = packet.cls == TrafficClass::kRealTime ? it->second.rt_queue
                                                      : it->second.be_queue;
  if (queue.size() >= config_.queue_capacity) return false;
  queue.push_back(std::move(packet));
  return true;
}

void AlohaEngine::poll_traffic() {
  for (auto& bound : sources_) {
    scratch_.clear();
    bound.source.poll(now_, scratch_);
    for (auto& packet : scratch_) {
      if (!inject_packet(std::move(packet))) {
        stats_.sink.record_drop(packet);
      }
    }
  }
  for (auto& bound : traces_) {
    scratch_.clear();
    bound.source.poll(now_, scratch_);
    for (auto& packet : scratch_) {
      if (!inject_packet(std::move(packet))) {
        stats_.sink.record_drop(packet);
      }
    }
  }
  for (auto& bound : saturated_) {
    const auto it = stations_.find(bound.station);
    if (it == stations_.end() || !it->second.alive) continue;
    auto& queue = bound.source.spec().cls == TrafficClass::kRealTime
                      ? it->second.rt_queue
                      : it->second.be_queue;
    if (queue.size() < bound.backlog) {
      scratch_.clear();
      bound.source.take_into(now_, bound.backlog - queue.size(), scratch_);
      for (auto& packet : scratch_) queue.push_back(std::move(packet));
    }
  }
}

traffic::Packet* AlohaEngine::head_of_line(StationState& st) {
  // Real-time frames pre-empt best-effort, matching the class priority the
  // other engines give their synchronous windows.
  if (!st.rt_queue.empty()) return &st.rt_queue.front();
  if (!st.be_queue.empty()) return &st.be_queue.front();
  return nullptr;
}

void AlohaEngine::pop_head(StationState& st) {
  if (!st.rt_queue.empty()) {
    st.rt_queue.pop_front();
  } else {
    st.be_queue.pop_front();
  }
  st.attempts = 0;
  st.cw = config_.cw_min;
  st.backoff = 0;
}

void AlohaEngine::on_failure(NodeId node, StationState& st) {
  (void)node;
  ++st.attempts;
  if (st.attempts >= config_.max_attempts) {
    traffic::Packet* head = head_of_line(st);
    assert(head != nullptr);
    ++stats_.retry_drops;
    stats_.sink.record_drop(*head);
    pop_head(st);
    return;
  }
  st.cw = std::min(st.cw * 2, config_.cw_max);
  st.backoff = static_cast<std::int64_t>(
      st.rng.uniform_int(static_cast<std::uint64_t>(st.cw)));
}

void AlohaEngine::step() {
  assert(initialised_);
  poll_traffic();

  // Phase 1: every ready station decides independently (no coordination —
  // that is the protocol), so decisions must not observe this slot's other
  // transmitters.
  transmitters_.clear();
  for (auto& [node, st] : stations_) {
    if (!st.alive) continue;
    if (head_of_line(st) == nullptr) continue;
    if (st.backoff > 0) {
      --st.backoff;
      continue;
    }
    // p_persist == 1 short-circuits before the draw so the pure-BEB regime
    // makes zero persistence draws (digest parity with the default config).
    if (config_.p_persist < 1.0 && !st.rng.bernoulli(config_.p_persist)) {
      continue;
    }
    transmitters_.push_back(node);
  }

  if (transmitters_.empty()) {
    ++stats_.idle_slots;
  } else {
    ++stats_.busy_slots;
    if (transmitters_.size() >= 2) ++stats_.collisions;
  }

  // Phase 2: receiver-centric outcome per transmitted frame.
  for (const NodeId sender : transmitters_) {
    StationState& st = stations_.at(sender);
    traffic::Packet* head = head_of_line(st);
    assert(head != nullptr);
    const NodeId dst = head->dst;
    ++stats_.transmissions;

    const bool dst_up = dst < topology_->node_count() &&
                        topology_->alive(dst) &&
                        stations_.count(dst) != 0 &&
                        stations_.at(dst).alive;
    if (!dst_up || !topology_->reachable(sender, dst)) {
      ++stats_.unreachable_losses;
      on_failure(sender, st);
      continue;
    }
    // Half-duplex receiver, plus interference from any other transmitter
    // audible at dst (dense room: any two transmitters collide; sparse:
    // capture and hidden terminals fall out of reachability).
    bool collided = false;
    for (const NodeId other : transmitters_) {
      if (other == sender) continue;
      if (other == dst || topology_->reachable(other, dst)) {
        collided = true;
        break;
      }
    }
    if (collided || std::find(transmitters_.begin(), transmitters_.end(),
                              dst) != transmitters_.end()) {
      ++stats_.collided_frames;
      on_failure(sender, st);
      continue;
    }
    if (loss_field_.enabled(fault::LossPurpose::kData) &&
        loss_field_.offer(fault::LossPurpose::kData, sender, dst)) {
      ++stats_.channel_losses;
      on_failure(sender, st);
      continue;
    }

    // Success.
    const double delay = ticks_to_slots_real(now_ - head->created);
    stats_.access_delay_slots.add(delay);
    if (head->cls == TrafficClass::kRealTime) {
      stats_.rt_access_delay_slots.add(delay);
    }
    stats_.attempts_per_success.add(static_cast<double>(st.attempts) + 1.0);
    ++stats_.successes;
    stats_.sink.record_delivery(*head, now_);
    pop_head(st);
  }

  now_ += kTicksPerSlot;
}

void AlohaEngine::run_slots(std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) step();
}

void AlohaEngine::kill_station(NodeId node) {
  const auto it = stations_.find(node);
  if (it == stations_.end() || !it->second.alive) return;
  topology_->set_alive(node, false);
  it->second.alive = false;
  for (auto& packet : it->second.rt_queue) stats_.sink.record_drop(packet);
  for (auto& packet : it->second.be_queue) stats_.sink.record_drop(packet);
  it->second.rt_queue.clear();
  it->second.be_queue.clear();
}

void AlohaEngine::degrade_link(NodeId a, NodeId b,
                               const fault::GeParams& params) {
  loss_field_.set_link_params(fault::LossPurpose::kData, a, b, params);
  loss_field_.set_link_params(fault::LossPurpose::kData, b, a, params);
}

void AlohaEngine::heal_link(NodeId a, NodeId b) {
  loss_field_.clear_link_params(fault::LossPurpose::kData, a, b);
  loss_field_.clear_link_params(fault::LossPurpose::kData, b, a);
}

util::Status AlohaEngine::check_invariants() const {
  if (!initialised_) {
    return util::Error::invalid_argument("engine not initialised");
  }
  std::uint64_t failures = stats_.collided_frames + stats_.channel_losses +
                           stats_.unreachable_losses;
  if (stats_.successes + failures != stats_.transmissions) {
    return util::Error::protocol_violation("transmission accounting mismatch");
  }
  if (stats_.successes != stats_.sink.total_delivered()) {
    return util::Error::protocol_violation("success / delivery mismatch");
  }
  for (const auto& [node, st] : stations_) {
    (void)node;
    if (st.backoff < 0 || st.cw < config_.cw_min || st.cw > config_.cw_max) {
      return util::Error::protocol_violation("backoff state out of range");
    }
    if (st.attempts >= config_.max_attempts) {
      return util::Error::protocol_violation("head-of-line frame exceeded retry cap");
    }
    if (st.rt_queue.size() > config_.queue_capacity ||
        st.be_queue.size() > config_.queue_capacity) {
      return util::Error::protocol_violation("queue over capacity");
    }
  }
  return util::Status::success();
}

}  // namespace wrt::aloha
