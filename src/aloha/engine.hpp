// Slotted-Aloha contention MAC — the saturation-regime baseline
// (after Politis & Hilas, "Throughput and Delay Performance of Slotted
// Aloha in SmartBANs under Saturation Conditions").
//
// The deliberately un-coordinated contrast to WRT-Ring's reservation ring
// and TPT's timed token: every backlogged station contends for the single
// shared channel each slot with no schedule at all.
//
//  * Slot-aligned transmissions: a station whose backoff has expired (and
//    whose persistence draw succeeds) transmits its head-of-line frame in
//    the current slot.
//  * Collision detection via the PHY: a frame from s to d is received iff d
//    is alive, reachable(s, d), and no *other* transmitter this slot is
//    audible at d — so in a dense room any two simultaneous transmitters
//    collide, while sparse topologies exhibit capture and hidden-terminal
//    collisions for free.
//  * Saturation-correct retransmission: a collided (or faded) frame stays
//    head-of-line; the station doubles its contention window from cw_min up
//    to cw_max and backs off uniformly in [0, cw); after max_attempts the
//    frame is dropped.  This is the binary-exponential-backoff regime whose
//    saturation throughput tops out near 1/e — the analytic cliff the
//    three-way capacity bench demonstrates.
//  * Fault-plane parity: the same fault::LinkLossField as WRT-Ring/TPT
//    (kData purpose on every delivery attempt), with degrade_link /
//    heal_link overrides, and zero RNG draws when every process is disabled
//    so the fixed-seed digest is independent of the fault plane's mere
//    presence.
//
// The engine implements the shared MAC surface (add_source /
// add_saturated_source / add_trace_source / inject_packet / step /
// run_slots / kill_station / stats) so the identical traffic::Workload and
// fault configuration drive all three MACs.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "fault/gilbert_elliott.hpp"
#include "phy/topology.hpp"
#include "sim/stats.hpp"
#include "traffic/trace.hpp"
#include "traffic/traffic.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace wrt::aloha {

struct AlohaConfig {
  double p_persist = 1.0;        ///< tx probability once backoff expires
  std::int64_t cw_min = 4;       ///< initial contention window (slots)
  std::int64_t cw_max = 1024;    ///< BEB ceiling
  std::uint32_t max_attempts = 16;  ///< drop the frame after this many tries
  std::size_t queue_capacity = 4096;
  fault::ChannelConfig channel;  ///< same Gilbert–Elliott plane as the ring

  [[nodiscard]] util::Status validate() const;
};

struct AlohaStats {
  traffic::Sink sink;
  sim::SampleStats access_delay_slots;     ///< creation -> successful tx
  sim::SampleStats rt_access_delay_slots;
  sim::SampleStats attempts_per_success;   ///< tx tries each delivery took
  std::uint64_t transmissions = 0;   ///< frames put on the air
  std::uint64_t successes = 0;       ///< frames received at their dst
  std::uint64_t collisions = 0;      ///< slots with >= 2 audible transmitters
  std::uint64_t collided_frames = 0; ///< frames lost to those slots
  std::uint64_t channel_losses = 0;  ///< Gilbert–Elliott fades
  std::uint64_t unreachable_losses = 0;  ///< dst dead / out of range
  std::uint64_t retry_drops = 0;     ///< frames dropped at max_attempts
  std::uint64_t idle_slots = 0;
  std::uint64_t busy_slots = 0;      ///< slots with >= 1 transmitter
};

class AlohaEngine final {
 public:
  AlohaEngine(phy::Topology* topology, AlohaConfig config,
              std::uint64_t seed);

  AlohaEngine(const AlohaEngine&) = delete;
  AlohaEngine& operator=(const AlohaEngine&) = delete;

  /// Registers every alive station as a contender.
  [[nodiscard]] util::Status init();

  void add_source(const traffic::FlowSpec& spec);
  void add_saturated_source(const traffic::FlowSpec& spec,
                            std::size_t backlog = 4);

  /// Replays a trace as one flow (same semantics as the other engines).
  void add_trace_source(traffic::Trace trace, FlowId flow, NodeId src,
                        NodeId dst, std::int64_t deadline_slots = 0);

  // wrt-lint-allow(by-value-frame-param): deliberate sink, moved into queue
  bool inject_packet(traffic::Packet packet);

  void step();
  void run_slots(std::int64_t n);
  [[nodiscard]] Tick now() const noexcept { return now_; }

  /// Removes a station: it stops contending and its queued frames are
  /// dropped.  Frames addressed to it keep failing and die by retry limit —
  /// contention MACs have no membership signal to react faster with.
  void kill_station(NodeId node);

  /// Gilbert–Elliott override on a <-> b (both directions, data purpose).
  void degrade_link(NodeId a, NodeId b, const fault::GeParams& params);
  void heal_link(NodeId a, NodeId b);

  [[nodiscard]] const AlohaStats& stats() const noexcept { return stats_; }

  /// Internal-consistency audit; mirrors the other engines'
  /// check_invariants so harnesses can assert it uniformly.
  [[nodiscard]] util::Status check_invariants() const;

 private:
  struct StationState {
    std::deque<traffic::Packet> rt_queue;
    std::deque<traffic::Packet> be_queue;
    std::int64_t backoff = 0;        ///< slots until the next attempt
    std::int64_t cw = 0;             ///< current contention window
    std::uint32_t attempts = 0;      ///< tries for the head-of-line frame
    util::RngStream rng{0, 0};       ///< persistence + backoff draws
    bool alive = true;
  };

  void poll_traffic();
  [[nodiscard]] traffic::Packet* head_of_line(StationState& st);
  void pop_head(StationState& st);
  void on_failure(NodeId node, StationState& st);

  phy::Topology* topology_;
  AlohaConfig config_;
  std::uint64_t seed_;
  Tick now_ = 0;
  bool initialised_ = false;

  std::map<NodeId, StationState> stations_;
  fault::LinkLossField loss_field_;

  struct BoundSource {
    traffic::TrafficSource source;
    NodeId station;
  };
  struct BoundSaturated {
    traffic::SaturatedSource source;
    NodeId station;
    std::size_t backlog;
  };
  struct BoundTrace {
    traffic::TraceSource source;
    NodeId station;
  };
  std::vector<BoundSource> sources_;
  std::vector<BoundSaturated> saturated_;
  std::vector<BoundTrace> traces_;
  std::vector<traffic::Packet> scratch_;
  std::vector<NodeId> transmitters_;  ///< per-slot scratch

  AlohaStats stats_;
};

}  // namespace wrt::aloha
