// Runtime protocol-invariant auditor.
//
// PR 1 made the engine hot path position-indexed and documented its
// structural invariants (dense vectors in lockstep with the ring order, a
// NodeId->position bijection, epoch-keyed caches); the paper's Section 2.6
// worst-case analysis additionally gives *analytic oracles* — Theorem 1
// (Eq 1) bounds every SAT rotation, Theorem 2 (Eq 3) every n-rotation span
// — that any correct simulation run must satisfy in fault-free stretches.
// This module turns both into a registry of named, individually reportable
// checks that run against a live Engine:
//
//   ring-lockstep       stations_/control_/links_/transit_regs_ sized and
//                       ordered exactly like the virtual ring
//   position-bijection  NodeId -> position index is a bijection onto the
//                       current members
//   single-sat          exactly one coherent SAT (held at a member, or in
//                       transit toward one with a future arrival tick)
//   rap-mutex           RAP exclusivity: a live RAP has a member ingress
//                       holding the SAT; the round-robin owner flag never
//                       dangles on a departed station
//   quota-conservation  per-round RT_PCK/NRT_PCK counters within (l, k),
//                       Diffserv split within k, deliveries <= transmissions
//   link-pipeline       per-link FIFO depth bounded by the hop latency, no
//                       in-flight frame with an arrival in the past, no
//                       transit register left busy between slots
//   theorem1-oracle     observed SAT inter-arrival < Eq (1) bound (strict)
//   theorem2-oracle     every window of n rotations <= Eq (3) bound
//   guard_no_stale_rec  RecoveryFsm never starts a recovery inside its own
//                       guard window (stale SAT_REC suppression holds)
//   wtr_no_flap_readmit no station re-admitted before its WTR/WTB hold-off
//                       was continuously satisfied
//   revertive_position_restored
//                       a revertive re-insertion put the station back after
//                       its recorded anchor (checked while the membership
//                       epoch it was recorded under is still current)
//
// The analytic oracles self-gate on "disturbances": a membership change,
// SAT loss, rebuild, or quota renegotiation invalidates history collected
// under the previous ring parameters, so only arrival spans recorded
// entirely after the most recent disturbance are compared against the
// bounds of the current ring.  This is what lets the auditor run clean
// over churn-heavy scenarios while still catching genuine bound breaches.
//
// Wiring: construct over an Engine and either call run() manually (tests,
// monkey harnesses) or install() it so the engine invokes it after every
// membership event and — in audit builds (WRT_AUDIT_LEVEL, util/audit.hpp)
// — every K slots.  Release builds compile the periodic hook out entirely.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace wrt::wrtring {
class Engine;
}  // namespace wrt::wrtring

namespace wrt::check {

/// One failed check instance.
struct Violation {
  std::string check;   ///< registry name, e.g. "position-bijection"
  std::string detail;  ///< human-readable specifics
  Tick at = 0;         ///< engine time when detected
  std::string event;   ///< audit trigger ("periodic", "join", "manual", ...)
};

struct AuditOptions {
  /// Run the Theorem 1/2 analytic oracles (disable for scenarios that are
  /// deliberately outside the paper's fault-free assumptions).
  bool theorem_oracles = true;
  /// Window n for the Theorem-2 oracle (spans of n consecutive rotations).
  std::int64_t theorem2_window = 4;
  /// Recorded-violation cap; counting continues past it.
  std::size_t max_recorded = 256;
};

/// Per-check tally, exposed for reports and test assertions.
struct CheckStats {
  std::string name;
  std::uint64_t runs = 0;
  std::uint64_t violations = 0;
};

class InvariantAuditor {
 public:
  explicit InvariantAuditor(const wrtring::Engine& engine,
                            AuditOptions options = {});

  /// Runs every registered check once; returns the number of violations
  /// found by *this* run (all are also recorded).
  std::size_t run(const char* event = "manual");

  /// Attaches this auditor to `engine` (must be the audited engine):
  /// membership events always trigger run(); in audit builds the engine
  /// additionally calls it every `every_k_slots` slots (0 = never).
  void install(wrtring::Engine& engine, std::int64_t every_k_slots = 0);

  [[nodiscard]] bool clean() const noexcept { return total_violations_ == 0; }
  [[nodiscard]] std::uint64_t audits_run() const noexcept { return audits_; }
  [[nodiscard]] std::uint64_t total_violations() const noexcept {
    return total_violations_;
  }
  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  /// Violations recorded by the named check so far.
  [[nodiscard]] std::uint64_t violation_count(const std::string& check) const;
  /// Tally for every registered check, registry order.
  [[nodiscard]] std::vector<CheckStats> check_stats() const;
  /// Registry names, in execution order.
  [[nodiscard]] static std::vector<std::string> check_names();

 private:
  // Each check appends one detail string per violation found.
  using Details = std::vector<std::string>;
  void check_ring_lockstep(Details& out) const;
  void check_position_bijection(Details& out) const;
  void check_single_sat(Details& out) const;
  void check_rap_mutex(Details& out) const;
  void check_quota_conservation(Details& out) const;
  void check_link_pipeline(Details& out) const;
  void check_theorem1_oracle(Details& out) const;
  void check_theorem2_oracle(Details& out) const;
  void check_guard_no_stale_rec(Details& out) const;
  void check_wtr_no_flap_readmit(Details& out) const;
  void check_revertive_position_restored(Details& out) const;

  /// Detects ring-parameter / fault disturbances and advances the oracle
  /// horizon past history the current bounds do not cover.
  void observe_disturbances();

  const wrtring::Engine& engine_;
  AuditOptions options_;

  std::uint64_t audits_ = 0;
  std::uint64_t total_violations_ = 0;
  std::vector<Violation> violations_;
  std::vector<std::uint64_t> per_check_runs_;
  std::vector<std::uint64_t> per_check_violations_;

  // Oracle gating state (see observe_disturbances()).
  Tick oracle_horizon_ = 0;
  std::uint64_t last_epoch_ = 0;
  std::uint64_t last_losses_ = 0;
  std::uint64_t last_rebuilds_ = 0;
  std::uint64_t last_recoveries_ = 0;
  std::int64_t last_bound_ = 0;
  std::size_t last_ring_size_ = 0;
};

}  // namespace wrt::check
