// Test-only engine-state corruption.
//
// The fault-injection tests for the invariant auditor need to produce
// states the protocol can never reach on its own — a stale position index,
// a duplicate SAT, an over-quota counter — and then assert that exactly
// the matching named check fires.  EngineTestHook is the single befriended
// back door for that: every method corrupts one specific structure and is
// named after the check it is meant to trip.
//
// This header must never be included from src/ production code; it exists
// for tests/check/ only.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/types.hpp"
#include "wrtring/engine.hpp"

namespace wrt::check {

struct EngineTestHook {
  /// Smallest NodeId that is not currently a ring member (ids are dense
  /// small integers in every test topology).
  [[nodiscard]] static NodeId non_member(const wrtring::Engine& engine) {
    NodeId candidate = 0;
    while (engine.ring_.contains(candidate)) ++candidate;
    return candidate;
  }

  // --- position-bijection -------------------------------------------------
  /// Drops a member from the NodeId -> position index.
  static void desync_position_index(wrtring::Engine& engine, NodeId node) {
    engine.position_index_[node] = -1;
  }

  // --- ring-lockstep ------------------------------------------------------
  /// Swaps two adjacent station slots without touching the ring order.
  static void swap_adjacent_stations(wrtring::Engine& engine,
                                     std::size_t position) {
    std::swap(engine.stations_[position], engine.stations_[position + 1]);
  }

  // --- single-sat ---------------------------------------------------------
  /// Puts the (held) SAT at a station that is not a ring member.
  static void corrupt_sat_location(wrtring::Engine& engine) {
    engine.sat_state_ = wrtring::SatState::kHeld;
    engine.sat_location_ = non_member(engine);
  }

  /// Leaves the SAT in transit with an arrival tick already elapsed.
  static void sat_arrival_in_past(wrtring::Engine& engine) {
    engine.sat_state_ = wrtring::SatState::kInTransit;
    engine.sat_location_ = engine.ring_.station_at(0);
    engine.sat_arrival_tick_ = engine.now_ - slots_to_ticks(1);
  }

  // --- rap-mutex ----------------------------------------------------------
  /// Sets the RAP owner flag to a station that is not in the ring (the
  /// dangling-owner state a departed round owner would leave behind).
  static void dangling_rap_owner(wrtring::Engine& engine) {
    engine.sat_.rap_owner = non_member(engine);
  }

  /// Fakes a RAP in progress at one member while the SAT is held at
  /// another — two stations believing they hold the access period.
  static void phantom_rap(wrtring::Engine& engine) {
    const NodeId ingress = engine.ring_.station_at(0);
    const NodeId elsewhere = engine.ring_.station_at(1);
    engine.sat_state_ = wrtring::SatState::kHeld;
    engine.sat_location_ = elsewhere;
    engine.sat_.is_rec = false;
    engine.sat_.rap_owner = ingress;
    engine.rap_ingress_ = ingress;
    engine.rap_end_ = engine.now_ + slots_to_ticks(100);
  }

  // --- quota-conservation -------------------------------------------------
  /// Bumps a station's RT_PCK counter past its l quota.
  static void force_over_quota(wrtring::Engine& engine, NodeId node) {
    const auto position =
        static_cast<std::size_t>(engine.station_position(node));
    wrtring::Station& station = engine.stations_[position];
    station.rt_pck_ = station.quota_.l + 1;
  }

  // --- link-pipeline ------------------------------------------------------
  /// Parks a phantom frame in a transit register between slots.
  static void mark_transit_busy(wrtring::Engine& engine,
                                std::size_t position) {
    engine.transit_regs_[position].busy = true;
  }

  // --- theorem1-oracle / theorem2-oracle ----------------------------------
  /// Replaces a station's SAT inter-arrival history wholesale (ticks,
  /// oldest first) so the analytic oracles can be fed crafted spans.
  static void forge_sat_history(wrtring::Engine& engine, NodeId node,
                                std::vector<Tick> arrivals) {
    const auto position =
        static_cast<std::size_t>(engine.station_position(node));
    engine.control_[position].arrival_history = std::move(arrivals);
  }
};

}  // namespace wrt::check
