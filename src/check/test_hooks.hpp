// Test-only engine-state corruption.
//
// The fault-injection tests for the invariant auditor need to produce
// states the protocol can never reach on its own — a stale position index,
// a duplicate SAT, an over-quota counter — and then assert that exactly
// the matching named check fires.  EngineTestHook is the single befriended
// back door for that: every method corrupts one specific structure and is
// named after the check it is meant to trip.
//
// This header must never be included from src/ production code; it exists
// for tests/check/ only.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/types.hpp"
#include "wrtring/engine.hpp"

namespace wrt::check {

struct EngineTestHook {
  /// Smallest NodeId that is not currently a ring member (ids are dense
  /// small integers in every test topology).
  [[nodiscard]] static NodeId non_member(const wrtring::Engine& engine) {
    NodeId candidate = 0;
    while (engine.ring_.contains(candidate)) ++candidate;
    return candidate;
  }

  // --- position-bijection -------------------------------------------------
  /// Drops a member from the NodeId -> position index.
  static void desync_position_index(wrtring::Engine& engine, NodeId node) {
    engine.position_index_[node] = -1;
  }

  // --- ring-lockstep ------------------------------------------------------
  /// Swaps two adjacent station slots without touching the ring order.
  /// Mirrors the old Station-object swap: identity, quotas, Send-algorithm
  /// counters and queues move; the control-plane timer columns stay put.
  static void swap_adjacent_stations(wrtring::Engine& engine,
                                     std::size_t position) {
    wrtring::SlotKernel& k = engine.kernel_;
    const std::size_t a = position;
    const std::size_t b = position + 1;
    std::swap(k.ids_[a], k.ids_[b]);
    std::swap(k.quota_[a], k.quota_[b]);
    std::swap(k.k1_assured_[a], k.k1_assured_[b]);
    std::swap(k.rt_pck_[a], k.rt_pck_[b]);
    std::swap(k.nrt_pck_[a], k.nrt_pck_[b]);
    std::swap(k.assured_sent_[a], k.assured_sent_[b]);
    std::swap(k.drops_[a], k.drops_[b]);
    for (auto& column : k.queues_) std::swap(column[a], column[b]);
    // Send state moved behind the mutators' backs: keep the eligibility
    // bitmap coherent for the engine's fast injection scan.
    k.refresh_eligible(a);
    k.refresh_eligible(b);
  }

  // --- single-sat ---------------------------------------------------------
  /// Puts the (held) SAT at a station that is not a ring member.
  static void corrupt_sat_location(wrtring::Engine& engine) {
    engine.sat_state_ = wrtring::SatState::kHeld;
    engine.sat_location_ = non_member(engine);
  }

  /// Leaves the SAT in transit with an arrival tick already elapsed.
  static void sat_arrival_in_past(wrtring::Engine& engine) {
    engine.sat_state_ = wrtring::SatState::kInTransit;
    engine.sat_location_ = engine.ring_.station_at(0);
    engine.sat_arrival_tick_ = engine.now_ - slots_to_ticks(1);
  }

  // --- rap-mutex ----------------------------------------------------------
  /// Sets the RAP owner flag to a station that is not in the ring (the
  /// dangling-owner state a departed round owner would leave behind).
  static void dangling_rap_owner(wrtring::Engine& engine) {
    engine.sat_.rap_owner = non_member(engine);
  }

  /// Fakes a RAP in progress at one member while the SAT is held at
  /// another — two stations believing they hold the access period.
  static void phantom_rap(wrtring::Engine& engine) {
    const NodeId ingress = engine.ring_.station_at(0);
    const NodeId elsewhere = engine.ring_.station_at(1);
    engine.sat_state_ = wrtring::SatState::kHeld;
    engine.sat_location_ = elsewhere;
    engine.sat_.is_rec = false;
    engine.sat_.rap_owner = ingress;
    engine.rap_ingress_ = ingress;
    engine.rap_end_ = engine.now_ + slots_to_ticks(100);
  }

  // --- quota-conservation -------------------------------------------------
  /// Bumps a station's RT_PCK counter past its l quota.
  static void force_over_quota(wrtring::Engine& engine, NodeId node) {
    const auto position =
        static_cast<std::size_t>(engine.station_position(node));
    engine.kernel_.rt_pck_[position] = engine.kernel_.quota_[position].l + 1;
    engine.kernel_.refresh_eligible(position);
  }

  // --- link-pipeline ------------------------------------------------------
  /// Parks a phantom frame in a transit register between slots.
  static void mark_transit_busy(wrtring::Engine& engine,
                                std::size_t position) {
    engine.kernel_.transit_[position].busy = true;
  }

  // --- theorem1-oracle / theorem2-oracle ----------------------------------
  /// Replaces a station's SAT inter-arrival history wholesale (ticks,
  /// oldest first) so the analytic oracles can be fed crafted spans.
  static void forge_sat_history(wrtring::Engine& engine, NodeId node,
                                std::vector<Tick> arrivals) {
    const auto position =
        static_cast<std::size_t>(engine.station_position(node));
    engine.kernel_.arrival_history_[position] = std::move(arrivals);
  }

  // --- RecoveryFsm --------------------------------------------------------
  /// Backdates a member's last SAT arrival so its SAT_TIMER reads as
  /// expired `slots` slots ago — the stale-SAT_REC stimulus the guard
  /// window must suppress (and, without a guard, must spuriously act on).
  static void age_sat_timer(wrtring::Engine& engine, NodeId node,
                            std::int64_t slots) {
    const auto position =
        static_cast<std::size_t>(engine.station_position(node));
    engine.kernel_.last_sat_arrival_[position] -= slots_to_ticks(slots);
    engine.sat_timer_guard_valid_ = false;
  }

  /// Opens the FSM's guard window directly (as a completed recovery would).
  static void open_guard(wrtring::Engine& engine) {
    engine.fsm_.open_guard(engine.now_);
  }

  // --- guard_no_stale_rec -------------------------------------------------
  /// Latches the trap the transition table makes unreachable: a recovery
  /// accepted while the guard window was open.
  static void force_guard_violation(wrtring::Engine& engine) {
    engine.fsm_.accepted_sf_during_guard_ = true;
  }

  // --- wtr_no_flap_readmit ------------------------------------------------
  /// Records an admission that undercut its hold-off by `slots` slots.
  static void force_wtr_violation(wrtring::Engine& engine,
                                  std::int64_t slots) {
    engine.fsm_.min_readmit_slack_slots_ = -slots;
  }

  // --- revertive_position_restored ----------------------------------------
  /// Records a revertive insertion whose anchor the ring does not
  /// corroborate (the engine never writes such an outcome itself).
  static void force_revertive_mismatch(wrtring::Engine& engine) {
    engine.fsm_.tuning_.revertive = true;
    engine.fsm_.last_revert_ = {engine.ring_.station_at(0),
                                engine.ring_.station_at(1),
                                engine.membership_epoch_};
  }
};

}  // namespace wrt::check
