#include "check/invariants.hpp"

#include <cassert>
#include <string>
#include <utility>

#include "analysis/bounds.hpp"
#include "wrtring/engine.hpp"

namespace wrt::check {
namespace {

// Registry order; must match the check_* dispatch in run().
constexpr const char* kCheckNames[] = {
    "ring-lockstep",      "position-bijection", "single-sat",
    "rap-mutex",          "quota-conservation", "link-pipeline",
    "theorem1-oracle",    "theorem2-oracle",    "guard_no_stale_rec",
    "wtr_no_flap_readmit", "revertive_position_restored",
};
constexpr std::size_t kCheckCount = std::size(kCheckNames);

std::string node_str(NodeId node) { return std::to_string(node); }

}  // namespace

InvariantAuditor::InvariantAuditor(const wrtring::Engine& engine,
                                   AuditOptions options)
    : engine_(engine),
      options_(options),
      per_check_runs_(kCheckCount, 0),
      per_check_violations_(kCheckCount, 0) {}

std::vector<std::string> InvariantAuditor::check_names() {
  return {kCheckNames, kCheckNames + kCheckCount};
}

std::uint64_t InvariantAuditor::violation_count(
    const std::string& check) const {
  for (std::size_t i = 0; i < kCheckCount; ++i) {
    if (check == kCheckNames[i]) return per_check_violations_[i];
  }
  return 0;
}

std::vector<CheckStats> InvariantAuditor::check_stats() const {
  std::vector<CheckStats> stats;
  stats.reserve(kCheckCount);
  for (std::size_t i = 0; i < kCheckCount; ++i) {
    stats.push_back({kCheckNames[i], per_check_runs_[i],
                     per_check_violations_[i]});
  }
  return stats;
}

void InvariantAuditor::install(wrtring::Engine& engine,
                               std::int64_t every_k_slots) {
  assert(&engine == &engine_);
  engine.set_audit_hook([this](const char* event) { run(event); },
                        every_k_slots);
}

std::size_t InvariantAuditor::run(const char* event) {
  ++audits_;
  observe_disturbances();

  std::size_t found = 0;
  Details details;
  const auto execute = [&](std::size_t index, auto&& check) {
    details.clear();
    ++per_check_runs_[index];
    check(details);
    per_check_violations_[index] += details.size();
    total_violations_ += details.size();
    found += details.size();
    for (std::string& detail : details) {
      if (violations_.size() >= options_.max_recorded) break;
      violations_.push_back(
          {kCheckNames[index], std::move(detail), engine_.now_, event});
    }
  };

  execute(0, [&](Details& d) { check_ring_lockstep(d); });
  execute(1, [&](Details& d) { check_position_bijection(d); });
  execute(2, [&](Details& d) { check_single_sat(d); });
  execute(3, [&](Details& d) { check_rap_mutex(d); });
  execute(4, [&](Details& d) { check_quota_conservation(d); });
  execute(5, [&](Details& d) { check_link_pipeline(d); });
  if (options_.theorem_oracles) {
    execute(6, [&](Details& d) { check_theorem1_oracle(d); });
    execute(7, [&](Details& d) { check_theorem2_oracle(d); });
  }
  execute(8, [&](Details& d) { check_guard_no_stale_rec(d); });
  execute(9, [&](Details& d) { check_wtr_no_flap_readmit(d); });
  execute(10, [&](Details& d) { check_revertive_position_restored(d); });
  return found;
}

void InvariantAuditor::observe_disturbances() {
  const wrtring::Engine& e = engine_;
  bool disturbed = false;

  if (e.membership_epoch_ != last_epoch_) {
    last_epoch_ = e.membership_epoch_;
    disturbed = true;
  }
  if (e.stats_.sat_losses_detected != last_losses_) {
    last_losses_ = e.stats_.sat_losses_detected;
    disturbed = true;
  }
  if (e.stats_.ring_rebuilds != last_rebuilds_) {
    last_rebuilds_ = e.stats_.ring_rebuilds;
    disturbed = true;
  }
  if (e.stats_.sat_recoveries != last_recoveries_) {
    last_recoveries_ = e.stats_.sat_recoveries;
    disturbed = true;
  }
  // An in-progress fault is a disturbance even before its counter ticks.
  if (e.sat_state_ == wrtring::SatState::kLost ||
      e.sat_state_ == wrtring::SatState::kRebuilding) {
    disturbed = true;
  }
  // Quota renegotiation has no counter; it shows up as a bound change.
  const std::int64_t bound = analysis::sat_time_bound(e.ring_params());
  if (bound != last_bound_ || e.ring_.size() != last_ring_size_) {
    last_bound_ = bound;
    last_ring_size_ = e.ring_.size();
    disturbed = true;
  }
  if (disturbed) oracle_horizon_ = e.now_;
}

void InvariantAuditor::check_ring_lockstep(Details& out) const {
  const wrtring::Engine& e = engine_;
  const std::size_t R = e.ring_.size();
  const wrtring::SlotKernel& k = e.kernel_;
  if (k.ids_.size() != R || k.last_sat_arrival_.size() != R) {
    out.push_back("station/control columns out of lockstep with ring: ring=" +
                  std::to_string(R) + " stations=" +
                  std::to_string(k.ids_.size()) + " control=" +
                  std::to_string(k.last_sat_arrival_.size()));
    return;  // positional comparison below would be meaningless
  }
  if (k.link_columns() != R || k.transit_.size() != R) {
    out.push_back("link structures out of lockstep with ring: ring=" +
                  std::to_string(R) + " links=" +
                  std::to_string(k.link_columns()) + " transit=" +
                  std::to_string(k.transit_.size()));
  }
  for (std::size_t p = 0; p < R; ++p) {
    const NodeId expected = e.ring_.station_at(p);
    if (k.ids_[p] != expected) {
      out.push_back("station column misaligned at position " +
                    std::to_string(p) + ": holds " +
                    node_str(k.ids_[p]) + ", ring says " +
                    node_str(expected));
    }
  }
}

void InvariantAuditor::check_position_bijection(Details& out) const {
  const wrtring::Engine& e = engine_;
  const std::size_t R = e.ring_.size();
  std::size_t mapped = 0;
  for (std::size_t n = 0; n < e.position_index_.size(); ++n) {
    const std::int32_t pos = e.position_index_[n];
    if (pos < 0) continue;
    ++mapped;
    const auto node = static_cast<NodeId>(n);
    if (static_cast<std::size_t>(pos) >= R ||
        e.ring_.station_at(static_cast<std::size_t>(pos)) != node) {
      out.push_back("position index maps node " + node_str(node) +
                    " to position " + std::to_string(pos) +
                    ", which the ring does not corroborate");
    }
  }
  if (mapped != R) {
    out.push_back("position index covers " + std::to_string(mapped) +
                  " nodes but the ring has " + std::to_string(R));
  }
  for (std::size_t p = 0; p < R; ++p) {
    const NodeId node = e.ring_.station_at(p);
    if (e.station_position(node) != static_cast<std::int32_t>(p)) {
      out.push_back("member " + node_str(node) + " at ring position " +
                    std::to_string(p) + " resolves to position " +
                    std::to_string(e.station_position(node)));
    }
  }
}

void InvariantAuditor::check_single_sat(Details& out) const {
  const wrtring::Engine& e = engine_;
  switch (e.sat_state_) {
    case wrtring::SatState::kHeld:
      if (!e.ring_.contains(e.sat_location_)) {
        out.push_back("SAT held at " + node_str(e.sat_location_) +
                      ", which is not a ring member");
      }
      break;
    case wrtring::SatState::kInTransit: {
      if (!e.ring_.contains(e.sat_location_)) {
        out.push_back("SAT in transit toward " + node_str(e.sat_location_) +
                      ", which is not a ring member");
      }
      if (e.sat_arrival_tick_ == kNeverTick) {
        out.push_back("SAT in transit with no arrival tick");
      } else if (e.sat_arrival_tick_ < e.now_) {
        out.push_back("SAT arrival tick " +
                      std::to_string(e.sat_arrival_tick_) +
                      " is in the past (now=" + std::to_string(e.now_) + ")");
      } else if (e.sat_arrival_tick_ - e.now_ >
                 slots_to_ticks(e.config_.effective_sat_hop_latency())) {
        out.push_back("SAT arrival tick " +
                      std::to_string(e.sat_arrival_tick_) +
                      " is further out than one hop latency");
      }
      break;
    }
    case wrtring::SatState::kLost:
      if (e.sat_lost_at_ == kNeverTick) {
        out.push_back("SAT lost without a recorded loss instant");
      }
      break;
    case wrtring::SatState::kRebuilding:
      break;
  }
}

void InvariantAuditor::check_rap_mutex(Details& out) const {
  const wrtring::Engine& e = engine_;
  // The owner flag is cleared when the SAT completes its round back at the
  // owner; a departed owner must not leave it dangling (that would block
  // every future RAP).
  if (e.sat_.rap_owner != kInvalidNode &&
      !e.ring_.contains(e.sat_.rap_owner)) {
    out.push_back("RAP owner flag names " + node_str(e.sat_.rap_owner) +
                  ", which is not a ring member");
  }
  if (!e.in_rap()) return;
  if (e.rap_ingress_ == kInvalidNode) return;  // RAP already wound down
  if (!e.ring_.contains(e.rap_ingress_)) {
    out.push_back("RAP in progress with non-member ingress " +
                  node_str(e.rap_ingress_));
  }
  // Exclusivity: while the original RAP's SAT is still the live signal
  // (owner flag intact, not a SAT_REC), it must be held at the ingress —
  // a plain SAT anywhere else during the RAP breaks the mutex.  A recovery
  // relaunched mid-RAP resets the owner flag, so it is excluded here.
  if (e.sat_state_ == wrtring::SatState::kHeld && !e.sat_.is_rec &&
      e.sat_.rap_owner == e.rap_ingress_ &&
      e.sat_location_ != e.rap_ingress_) {
    out.push_back("RAP mutex broken: SAT held at " +
                  node_str(e.sat_location_) + " while ingress " +
                  node_str(e.rap_ingress_) + " owns the RAP");
  }
}

void InvariantAuditor::check_quota_conservation(Details& out) const {
  const wrtring::Engine& e = engine_;
  const wrtring::SlotKernel& k = e.kernel_;
  for (std::size_t p = 0; p < k.ids_.size(); ++p) {
    if (k.rt_pck_[p] > k.quota_[p].l) {
      out.push_back("station " + node_str(k.ids_[p]) + " RT_PCK=" +
                    std::to_string(k.rt_pck_[p]) + " exceeds l=" +
                    std::to_string(k.quota_[p].l));
    }
    if (k.nrt_pck_[p] > k.quota_[p].k) {
      out.push_back("station " + node_str(k.ids_[p]) + " NRT_PCK=" +
                    std::to_string(k.nrt_pck_[p]) + " exceeds k=" +
                    std::to_string(k.quota_[p].k));
    }
    if (k.k1_assured_[p] > k.quota_[p].k) {
      out.push_back("station " + node_str(k.ids_[p]) + " k1=" +
                    std::to_string(k.k1_assured_[p]) + " exceeds k=" +
                    std::to_string(k.quota_[p].k));
    }
  }
  if (e.stats_.sink.total_delivered() > e.stats_.data_transmissions) {
    out.push_back("more deliveries (" +
                  std::to_string(e.stats_.sink.total_delivered()) +
                  ") than transmissions (" +
                  std::to_string(e.stats_.data_transmissions) + ")");
  }
}

void InvariantAuditor::check_link_pipeline(Details& out) const {
  const wrtring::Engine& e = engine_;
  // Frame hops/arrival fields lag behind the engine's rotation fast regime;
  // materialize them before reading (no-op outside that regime).
  e.sync_frame_view();
  const wrtring::SlotKernel& k = e.kernel_;
  const auto depth = static_cast<std::size_t>(e.config_.hop_latency_slots);
  // The depth is one shared column attribute in the SoA layout, but the
  // per-link message shape is kept for continuity with recorded violations.
  for (std::size_t p = 0; p < k.link_columns(); ++p) {
    if (k.link_depth() != depth) {
      out.push_back("link " + std::to_string(p) + " pipeline depth " +
                    std::to_string(k.link_depth()) + " != hop latency " +
                    std::to_string(depth));
    }
    if (k.link_size(p) > k.link_depth()) {
      out.push_back("link " + std::to_string(p) + " overfull: " +
                    std::to_string(k.link_size(p)) + " frames in depth " +
                    std::to_string(k.link_depth()));
    }
    if (!k.link_empty(p)) {
      if (!k.link_front(p).busy) {
        out.push_back("link " + std::to_string(p) +
                      " front frame is not marked busy");
      } else if (k.link_front(p).arrival < e.now_) {
        out.push_back("link " + std::to_string(p) +
                      " front frame arrival " +
                      std::to_string(k.link_front(p).arrival) +
                      " is in the past (now=" + std::to_string(e.now_) + ")");
      }
    }
  }
  // Transit registers are filled and drained within the same slot; a busy
  // one between slots means a frame was parked and never forwarded.
  for (std::size_t p = 0; p < k.transit_.size(); ++p) {
    if (k.transit_[p].busy) {
      out.push_back("transit register " + std::to_string(p) +
                    " busy between slots");
    }
  }
}

void InvariantAuditor::check_theorem1_oracle(Details& out) const {
  const wrtring::Engine& e = engine_;
  const Tick bound_ticks =
      slots_to_ticks(analysis::sat_time_bound(e.ring_params()));
  for (std::size_t p = 0; p < e.kernel_.arrival_history_.size(); ++p) {
    const std::vector<Tick>& history = e.kernel_.arrival_history_[p];
    for (std::size_t i = 1; i < history.size(); ++i) {
      // Only spans recorded entirely after the last disturbance are covered
      // by the current ring's bound (strict >: an arrival at the
      // disturbance tick itself predates the new regime).
      if (history[i - 1] <= oracle_horizon_) continue;
      const Tick delta = history[i] - history[i - 1];
      if (delta >= bound_ticks) {  // Theorem 1 is a strict bound
        out.push_back(
            "station " + node_str(e.ring_.station_at(p)) +
            " SAT inter-arrival " + std::to_string(ticks_to_slots(delta)) +
            " slots >= Theorem-1 bound " +
            std::to_string(ticks_to_slots(bound_ticks)) + " slots");
      }
    }
  }
}

void InvariantAuditor::check_theorem2_oracle(Details& out) const {
  const wrtring::Engine& e = engine_;
  const std::int64_t window = options_.theorem2_window;
  if (window <= 0) return;
  const Tick bound_ticks = slots_to_ticks(
      analysis::sat_time_n_rounds_bound(e.ring_params(), window));
  const auto v = static_cast<std::size_t>(window);
  for (std::size_t p = 0; p < e.kernel_.arrival_history_.size(); ++p) {
    const std::vector<Tick>& history = e.kernel_.arrival_history_[p];
    if (history.size() <= v) continue;
    for (std::size_t i = 0; i + v < history.size(); ++i) {
      if (history[i] <= oracle_horizon_) continue;
      const Tick span = history[i + v] - history[i];
      if (span > bound_ticks) {  // Theorem 2 is a non-strict bound
        out.push_back(
            "station " + node_str(e.ring_.station_at(p)) + " " +
            std::to_string(window) + "-round span " +
            std::to_string(ticks_to_slots(span)) +
            " slots > Theorem-2 bound " +
            std::to_string(ticks_to_slots(bound_ticks)) + " slots");
      }
    }
  }
}

void InvariantAuditor::check_guard_no_stale_rec(Details& out) const {
  // The RecoveryFsm latches acceptance of a signal-fail request while its
  // own guard window was open — by construction that must never happen
  // (guard-active requests map to kSuppress in the transition table).
  const wrtring::RecoveryFsm& fsm = engine_.fsm_;
  if (fsm.accepted_sf_during_guard_) {
    out.push_back(
        "RecoveryFsm started a recovery inside its own guard window "
        "(stale SAT_REC suppression violated)");
  }
}

void InvariantAuditor::check_wtr_no_flap_readmit(Details& out) const {
  // admit() records the worst (continuous-healthy - required hold) slack;
  // a negative slack means a flapping station was re-admitted before its
  // WTR/WTB hold-off was continuously satisfied.
  const wrtring::RecoveryFsm& fsm = engine_.fsm_;
  if (fsm.min_readmit_slack_slots_ != wrtring::RecoveryFsm::kNoAdmission &&
      fsm.min_readmit_slack_slots_ < 0) {
    out.push_back("a rejoin candidate was admitted " +
                  std::to_string(-fsm.min_readmit_slack_slots_) +
                  " slots before its WTR/WTB hold-off lapsed");
  }
}

void InvariantAuditor::check_revertive_position_restored(Details& out) const {
  // Validated only while the membership epoch the insertion was recorded
  // under is still current — any later churn legitimately moves stations.
  const wrtring::RecoveryFsm& fsm = engine_.fsm_;
  const wrtring::Engine& e = engine_;
  if (!fsm.tuning_.revertive) return;
  if (fsm.last_revert_.node == kInvalidNode) return;
  if (fsm.last_revert_.epoch != e.membership_epoch_) return;
  if (!e.ring_.contains(fsm.last_revert_.node) ||
      !e.ring_.contains(fsm.last_revert_.anchor) ||
      e.ring_.predecessor(fsm.last_revert_.node) != fsm.last_revert_.anchor) {
    out.push_back("revertive re-insertion of station " +
                  node_str(fsm.last_revert_.node) +
                  " did not restore it after anchor " +
                  node_str(fsm.last_revert_.anchor));
  }
}

}  // namespace wrt::check
