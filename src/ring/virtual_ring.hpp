// Virtual ring over the connectivity graph.
//
// Section 2.1: "WRT-Ring requires the stations to form a virtual ring...
// it is required that each station can communicate with, at least, two
// stations over a single hop.  The implementation of the virtual ring goes
// beyond the design of a MAC protocol, since routing protocols can be used
// for this purpose."  This module is that routing substrate: it finds a
// cyclic order in which consecutive stations are one-hop reachable
// (a Hamiltonian cycle of the unit-disk graph), validates rings against a
// topology, and provides the repair primitives the MAC uses — insert a
// joining station between two consecutive members (Section 2.4.1) and cut
// a failed station out (Section 2.5).
#pragma once

#include <optional>
#include <vector>

#include "phy/topology.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace wrt::ring {

/// A cyclic order of stations.  Position arithmetic is modulo size().
class VirtualRing {
 public:
  VirtualRing() = default;
  explicit VirtualRing(std::vector<NodeId> order);

  [[nodiscard]] std::size_t size() const noexcept { return order_.size(); }
  [[nodiscard]] bool empty() const noexcept { return order_.empty(); }

  /// Station at ring position `pos` (mod size()).
  [[nodiscard]] NodeId station_at(std::size_t pos) const;

  /// Ring position of `node`; throws std::out_of_range if absent.
  [[nodiscard]] std::size_t position_of(NodeId node) const;

  /// Non-throwing variant: nullopt when `node` is not a ring member.  The
  /// engine's membership paths use this to update their position-indexed
  /// storage in lockstep with ring mutations.
  [[nodiscard]] std::optional<std::size_t> find_position(
      NodeId node) const noexcept;

  [[nodiscard]] bool contains(NodeId node) const noexcept;

  /// Downstream neighbour (the station the SAT is forwarded to).
  [[nodiscard]] NodeId successor(NodeId node) const;
  /// Upstream neighbour.
  [[nodiscard]] NodeId predecessor(NodeId node) const;

  /// Inserts `newcomer` immediately after `existing` (Section 2.4.1: the new
  /// station enters between the ingress station i and station i+1).
  void insert_after(NodeId existing, NodeId newcomer);

  /// Removes a station, joining its neighbours (Section 2.5 cut-out).
  void remove(NodeId node);

  /// True iff every consecutive pair is mutually reachable in `topology`.
  [[nodiscard]] bool valid_over(const phy::Topology& topology) const;

  [[nodiscard]] const std::vector<NodeId>& order() const noexcept {
    return order_;
  }

 private:
  std::vector<NodeId> order_;
};

/// Attempts to build a ring over all alive nodes.  Tries a cheap geometric
/// heuristic (angular sort around the centroid) first, then a bounded
/// backtracking Hamiltonian-cycle search.  Fails with kNoRingPossible when
/// no cycle exists or the search budget is exhausted.
[[nodiscard]] util::Result<VirtualRing> build_ring(
    const phy::Topology& topology, std::size_t backtrack_budget = 200000);

/// Same, restricted to the given member set (all must be alive).  Used by
/// ring re-formation, which can only recruit stations that heard the
/// broadcast — i.e. the initiator's connected component.
[[nodiscard]] util::Result<VirtualRing> build_ring_over(
    const phy::Topology& topology, std::vector<NodeId> members,
    std::size_t backtrack_budget = 200000);

/// The largest connected component of the alive subgraph.
[[nodiscard]] std::vector<NodeId> largest_component(
    const phy::Topology& topology);

/// True if `newcomer` can be inserted into `ring`: there exist consecutive
/// stations s_i, s_{i+1} both one-hop reachable from `newcomer`
/// (Section 2.4.1).  Writes the chosen ingress station to `ingress_out`
/// when non-null.
[[nodiscard]] bool can_insert(const VirtualRing& ring,
                              const phy::Topology& topology, NodeId newcomer,
                              NodeId* ingress_out = nullptr);

}  // namespace wrt::ring
