// Slot wire format.
//
// Section 2.1: "fixed-size slots continuously circulate into the ring.
// Each slot has a header and a data field.  Among other information, the
// header contains a bit that indicates the status busy or empty of the
// slot."  This module pins that header down to bytes so the simulator's
// in-memory frames have a defined over-the-air representation:
//
//   byte 0      flags: bit0 = busy, bits1-2 = traffic class, bits3-7 = 0
//   bytes 1-4   source station id     (little endian)
//   bytes 5-8   destination station id
//   bytes 9-12  flow id
//   bytes 13-20 sequence number
//   bytes 21-22 header CRC-16/CCITT over bytes 0-20
//
// An empty slot is all zeros with a valid CRC.  encode/decode round-trip
// exactly; decode rejects corrupted headers (wrong CRC, bad class bits),
// which is how a receiver discards frames damaged by a code collision.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "traffic/traffic.hpp"
#include "util/types.hpp"

namespace wrt::ring {

inline constexpr std::size_t kFrameHeaderBytes = 23;
using FrameHeaderBytes = std::array<std::uint8_t, kFrameHeaderBytes>;

/// The decoded header.
struct FrameHeader {
  bool busy = false;
  TrafficClass cls = TrafficClass::kBestEffort;
  NodeId src = 0;
  NodeId dst = 0;
  FlowId flow = 0;
  std::uint64_t sequence = 0;

  friend bool operator==(const FrameHeader&, const FrameHeader&) = default;
};

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF).
[[nodiscard]] std::uint16_t crc16_ccitt(const std::uint8_t* data,
                                        std::size_t length);

/// Serialises a header (CRC appended).
[[nodiscard]] FrameHeaderBytes encode_header(const FrameHeader& header);

/// Header for a busy slot carrying `packet`.
[[nodiscard]] FrameHeaderBytes encode_packet_header(
    const traffic::Packet& packet);

/// The canonical empty-slot header.
[[nodiscard]] FrameHeaderBytes encode_empty_header();

/// Parses and CRC-checks; nullopt on any corruption.
[[nodiscard]] std::optional<FrameHeader> decode_header(
    const FrameHeaderBytes& bytes);

}  // namespace wrt::ring
