#include "ring/virtual_ring.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace wrt::ring {

VirtualRing::VirtualRing(std::vector<NodeId> order) : order_(std::move(order)) {
  std::set<NodeId> unique(order_.begin(), order_.end());
  if (unique.size() != order_.size()) {
    throw std::invalid_argument("VirtualRing: duplicate station in order");
  }
}

NodeId VirtualRing::station_at(std::size_t pos) const {
  if (order_.empty()) throw std::out_of_range("VirtualRing: empty");
  return order_[pos % order_.size()];
}

std::size_t VirtualRing::position_of(NodeId node) const {
  const auto position = find_position(node);
  if (!position.has_value()) {
    throw std::out_of_range("VirtualRing: node not in ring");
  }
  return *position;
}

std::optional<std::size_t> VirtualRing::find_position(
    NodeId node) const noexcept {
  const auto it = std::find(order_.begin(), order_.end(), node);
  if (it == order_.end()) return std::nullopt;
  return static_cast<std::size_t>(it - order_.begin());
}

bool VirtualRing::contains(NodeId node) const noexcept {
  return std::find(order_.begin(), order_.end(), node) != order_.end();
}

NodeId VirtualRing::successor(NodeId node) const {
  return station_at(position_of(node) + 1);
}

NodeId VirtualRing::predecessor(NodeId node) const {
  return station_at(position_of(node) + order_.size() - 1);
}

void VirtualRing::insert_after(NodeId existing, NodeId newcomer) {
  if (contains(newcomer)) {
    throw std::invalid_argument("VirtualRing: newcomer already in ring");
  }
  const std::size_t pos = position_of(existing);
  order_.insert(order_.begin() + static_cast<std::ptrdiff_t>(pos) + 1,
                newcomer);
}

void VirtualRing::remove(NodeId node) {
  const std::size_t pos = position_of(node);
  order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(pos));
}

bool VirtualRing::valid_over(const phy::Topology& topology) const {
  if (order_.size() < 3) return false;
  for (std::size_t i = 0; i < order_.size(); ++i) {
    const NodeId a = order_[i];
    const NodeId b = order_[(i + 1) % order_.size()];
    if (!topology.reachable(a, b)) return false;
  }
  return true;
}

namespace {

/// Backtracking Hamiltonian-cycle search.  Nodes are extended in
/// fewest-remaining-neighbours order (Warnsdorff-style) which resolves most
/// unit-disk instances without exhausting the budget.
class HamiltonianSearch {
 public:
  HamiltonianSearch(const phy::Topology& topology,
                    std::vector<NodeId> alive_nodes, std::size_t budget)
      : topology_(topology), nodes_(std::move(alive_nodes)), budget_(budget) {}

  [[nodiscard]] bool run(std::vector<NodeId>& cycle_out) {
    if (nodes_.size() < 3) return false;
    path_.clear();
    in_path_.assign(topology_.node_count(), false);
    path_.push_back(nodes_.front());
    in_path_[nodes_.front()] = true;
    if (!extend()) return false;
    cycle_out = path_;
    return true;
  }

 private:
  [[nodiscard]] bool extend() {
    if (budget_ == 0) return false;
    --budget_;
    if (path_.size() == nodes_.size()) {
      return topology_.reachable(path_.back(), path_.front());
    }
    const NodeId tail = path_.back();
    std::vector<NodeId> candidates;
    for (const NodeId n : topology_.neighbors(tail)) {
      if (!in_path_[n] && is_candidate(n)) candidates.push_back(n);
    }
    // Fewest-onward-moves first.
    std::sort(candidates.begin(), candidates.end(),
              [this](NodeId a, NodeId b) {
                return free_degree(a) < free_degree(b);
              });
    for (const NodeId n : candidates) {
      path_.push_back(n);
      in_path_[n] = true;
      if (extend()) return true;
      in_path_[n] = false;
      path_.pop_back();
    }
    return false;
  }

  [[nodiscard]] bool is_candidate(NodeId n) const {
    return std::find(nodes_.begin(), nodes_.end(), n) != nodes_.end();
  }

  [[nodiscard]] std::size_t free_degree(NodeId n) const {
    std::size_t degree = 0;
    for (const NodeId m : topology_.neighbors(n)) {
      if (!in_path_[m]) ++degree;
    }
    return degree;
  }

  const phy::Topology& topology_;
  std::vector<NodeId> nodes_;
  std::size_t budget_;
  std::vector<NodeId> path_;
  std::vector<bool> in_path_;
};

}  // namespace

util::Result<VirtualRing> build_ring(const phy::Topology& topology,
                                     std::size_t backtrack_budget) {
  std::vector<NodeId> alive;
  for (NodeId i = 0; i < topology.node_count(); ++i) {
    if (topology.alive(i)) alive.push_back(i);
  }
  return build_ring_over(topology, std::move(alive), backtrack_budget);
}

std::vector<NodeId> largest_component(const phy::Topology& topology) {
  const std::size_t n = topology.node_count();
  std::vector<bool> seen(n, false);
  std::vector<NodeId> best;
  for (NodeId start = 0; start < n; ++start) {
    if (seen[start] || !topology.alive(start)) continue;
    std::vector<NodeId> component;
    std::vector<NodeId> frontier{start};
    seen[start] = true;
    while (!frontier.empty()) {
      const NodeId u = frontier.back();
      frontier.pop_back();
      component.push_back(u);
      for (const NodeId v : topology.neighbors(u)) {
        if (!seen[v]) {
          seen[v] = true;
          frontier.push_back(v);
        }
      }
    }
    if (component.size() > best.size()) best = std::move(component);
  }
  std::sort(best.begin(), best.end());
  return best;
}

util::Result<VirtualRing> build_ring_over(const phy::Topology& topology,
                                          std::vector<NodeId> members,
                                          std::size_t backtrack_budget) {
  const std::vector<NodeId>& alive = members;
  for (const NodeId n : alive) {
    if (!topology.alive(n)) {
      return util::Error::invalid_argument("dead station in member set");
    }
  }
  if (alive.size() < 3) {
    return util::Error::no_ring_possible("need at least 3 alive stations");
  }

  // Heuristic 1: angular order around the centroid.  Indoor placements are
  // blob-shaped, so this usually yields a feasible cycle immediately.
  phy::Vec2 centroid{0.0, 0.0};
  for (const NodeId n : alive) centroid = centroid + topology.position(n);
  centroid = centroid * (1.0 / static_cast<double>(alive.size()));
  std::vector<NodeId> angular = alive;
  std::sort(angular.begin(), angular.end(), [&](NodeId a, NodeId b) {
    const phy::Vec2 pa = topology.position(a) - centroid;
    const phy::Vec2 pb = topology.position(b) - centroid;
    return std::atan2(pa.y, pa.x) < std::atan2(pb.y, pb.x);
  });
  VirtualRing angular_ring(angular);
  if (angular_ring.valid_over(topology)) return angular_ring;

  // Heuristic 2: bounded backtracking Hamiltonian-cycle search.
  HamiltonianSearch search(topology, alive, backtrack_budget);
  std::vector<NodeId> cycle;
  if (search.run(cycle)) return VirtualRing(cycle);

  return util::Error::no_ring_possible(
      "no Hamiltonian cycle found within the search budget");
}

bool can_insert(const VirtualRing& ring, const phy::Topology& topology,
                NodeId newcomer, NodeId* ingress_out) {
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const NodeId a = ring.station_at(i);
    const NodeId b = ring.station_at(i + 1);
    if (topology.reachable(newcomer, a) && topology.reachable(newcomer, b)) {
      if (ingress_out != nullptr) *ingress_out = a;
      return true;
    }
  }
  return false;
}

}  // namespace wrt::ring
