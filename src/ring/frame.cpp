#include "ring/frame.hpp"

namespace wrt::ring {

namespace {

void put_u32(FrameHeaderBytes& bytes, std::size_t at, std::uint32_t value) {
  bytes[at] = static_cast<std::uint8_t>(value);
  bytes[at + 1] = static_cast<std::uint8_t>(value >> 8);
  bytes[at + 2] = static_cast<std::uint8_t>(value >> 16);
  bytes[at + 3] = static_cast<std::uint8_t>(value >> 24);
}

void put_u64(FrameHeaderBytes& bytes, std::size_t at, std::uint64_t value) {
  put_u32(bytes, at, static_cast<std::uint32_t>(value));
  put_u32(bytes, at + 4, static_cast<std::uint32_t>(value >> 32));
}

std::uint32_t get_u32(const FrameHeaderBytes& bytes, std::size_t at) {
  return static_cast<std::uint32_t>(bytes[at]) |
         static_cast<std::uint32_t>(bytes[at + 1]) << 8 |
         static_cast<std::uint32_t>(bytes[at + 2]) << 16 |
         static_cast<std::uint32_t>(bytes[at + 3]) << 24;
}

std::uint64_t get_u64(const FrameHeaderBytes& bytes, std::size_t at) {
  return static_cast<std::uint64_t>(get_u32(bytes, at)) |
         static_cast<std::uint64_t>(get_u32(bytes, at + 4)) << 32;
}

}  // namespace

std::uint16_t crc16_ccitt(const std::uint8_t* data, std::size_t length) {
  std::uint16_t crc = 0xFFFF;
  for (std::size_t i = 0; i < length; ++i) {
    crc ^= static_cast<std::uint16_t>(data[i]) << 8;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x8000) != 0
                ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021)
                : static_cast<std::uint16_t>(crc << 1);
    }
  }
  return crc;
}

FrameHeaderBytes encode_header(const FrameHeader& header) {
  FrameHeaderBytes bytes{};
  std::uint8_t flags = header.busy ? 0x01 : 0x00;
  flags = static_cast<std::uint8_t>(
      flags | (static_cast<std::uint8_t>(header.cls) << 1));
  bytes[0] = flags;
  put_u32(bytes, 1, header.src);
  put_u32(bytes, 5, header.dst);
  put_u32(bytes, 9, header.flow);
  put_u64(bytes, 13, header.sequence);
  const std::uint16_t crc = crc16_ccitt(bytes.data(), 21);
  bytes[21] = static_cast<std::uint8_t>(crc);
  bytes[22] = static_cast<std::uint8_t>(crc >> 8);
  return bytes;
}

FrameHeaderBytes encode_packet_header(const traffic::Packet& packet) {
  FrameHeader header;
  header.busy = true;
  header.cls = packet.cls;
  header.src = packet.src;
  header.dst = packet.dst;
  header.flow = packet.flow;
  header.sequence = packet.sequence;
  return encode_header(header);
}

FrameHeaderBytes encode_empty_header() { return encode_header({}); }

std::optional<FrameHeader> decode_header(const FrameHeaderBytes& bytes) {
  const std::uint16_t stored =
      static_cast<std::uint16_t>(bytes[21]) |
      static_cast<std::uint16_t>(static_cast<std::uint16_t>(bytes[22]) << 8);
  if (crc16_ccitt(bytes.data(), 21) != stored) return std::nullopt;
  const std::uint8_t flags = bytes[0];
  if ((flags & ~0x07u) != 0) return std::nullopt;  // reserved bits must be 0
  const std::uint8_t cls_bits = (flags >> 1) & 0x03u;
  if (cls_bits > 2) return std::nullopt;
  FrameHeader header;
  header.busy = (flags & 0x01u) != 0;
  header.cls = static_cast<TrafficClass>(cls_bits);
  header.src = get_u32(bytes, 1);
  header.dst = get_u32(bytes, 5);
  header.flow = get_u32(bytes, 9);
  header.sequence = get_u64(bytes, 13);
  return header;
}

}  // namespace wrt::ring
