#include "phy/geometry.hpp"

#include <algorithm>

namespace wrt::phy {

Vec2 Rect::clamp(Vec2 p) const noexcept {
  return {std::clamp(p.x, lo.x, hi.x), std::clamp(p.y, lo.y, hi.y)};
}

}  // namespace wrt::phy
