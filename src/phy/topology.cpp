#include "phy/topology.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <queue>
#include <stdexcept>

namespace wrt::phy {
namespace {

std::pair<NodeId, NodeId> ordered(NodeId a, NodeId b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}

}  // namespace

Topology::Topology(std::vector<Vec2> positions, RadioParams radio,
                   std::uint64_t seed)
    : positions_(std::move(positions)),
      alive_(positions_.size(), true),
      radio_(radio),
      seed_(seed) {}

Vec2 Topology::position(NodeId node) const {
  return positions_.at(node);
}

void Topology::set_position(NodeId node, Vec2 pos) {
  positions_.at(node) = pos;
  ++version_;
}

NodeId Topology::add_node(Vec2 pos) {
  positions_.push_back(pos);
  alive_.push_back(true);
  ++version_;
  return static_cast<NodeId>(positions_.size() - 1);
}

void Topology::set_alive(NodeId node, bool is_alive) {
  alive_.at(node) = is_alive;
  ++version_;
}

bool Topology::alive(NodeId node) const { return alive_.at(node); }

void Topology::fail_link(NodeId a, NodeId b) {
  failed_links_.insert(ordered(a, b));
  ++version_;
}

void Topology::restore_link(NodeId a, NodeId b) {
  failed_links_.erase(ordered(a, b));
  ++version_;
}

void Topology::set_partition(const std::vector<std::vector<NodeId>>& groups) {
  // Group 0 is the implicit "everyone else"; named groups start at 1.
  partition_group_.assign(positions_.size(), 0);
  std::int32_t id = 1;
  for (const auto& group : groups) {
    for (const NodeId node : group) {
      if (node < partition_group_.size()) partition_group_[node] = id;
    }
    ++id;
  }
  ++version_;
}

double Topology::effective_range(NodeId a, NodeId b) const {
  if (radio_.shadowing_sigma <= 0.0) return radio_.range;
  // Deterministic per-link shadowing: hash the link into a stream so the
  // same link always sees the same fade.
  const auto [lo, hi] = ordered(a, b);
  util::RngStream stream(seed_,
                         (static_cast<std::uint64_t>(lo) << 32) | hi);
  const double shrink = std::abs(stream.normal(0.0, radio_.shadowing_sigma));
  return std::max(0.0, radio_.range - shrink);
}

bool Topology::reachable(NodeId a, NodeId b) const {
  if (a == b) return false;
  if (a >= positions_.size() || b >= positions_.size()) return false;
  if (!alive_[a] || !alive_[b]) return false;
  if (failed_links_.contains(ordered(a, b))) return false;
  if (!partition_group_.empty() &&
      partition_group_[a] != partition_group_[b]) {
    return false;
  }
  return distance(positions_[a], positions_[b]) <= effective_range(a, b);
}

std::vector<NodeId> Topology::neighbors(NodeId node) const {
  std::vector<NodeId> result;
  for (NodeId other = 0; other < positions_.size(); ++other) {
    if (reachable(node, other)) result.push_back(other);
  }
  return result;
}

bool Topology::hidden_pair(NodeId a, NodeId c, NodeId receiver) const {
  return reachable(a, receiver) && reachable(c, receiver) && !reachable(a, c);
}

bool Topology::connected() const {
  const std::size_t n = positions_.size();
  std::size_t alive_count = 0;
  NodeId start = kInvalidNode;
  for (NodeId i = 0; i < n; ++i) {
    if (alive_[i]) {
      ++alive_count;
      if (start == kInvalidNode) start = i;
    }
  }
  if (alive_count <= 1) return true;

  std::vector<bool> seen(n, false);
  std::queue<NodeId> frontier;
  frontier.push(start);
  seen[start] = true;
  std::size_t visited = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v = 0; v < n; ++v) {
      if (!seen[v] && reachable(u, v)) {
        seen[v] = true;
        ++visited;
        frontier.push(v);
      }
    }
  }
  return visited == alive_count;
}

bool Topology::min_degree_at_least(std::size_t min_degree) const {
  for (NodeId i = 0; i < positions_.size(); ++i) {
    if (!alive_[i]) continue;
    if (neighbors(i).size() < min_degree) return false;
  }
  return true;
}

namespace placement {

std::vector<Vec2> circle(std::size_t n, double radius, Vec2 center) {
  std::vector<Vec2> positions;
  positions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double angle =
        2.0 * std::numbers::pi * static_cast<double>(i) / static_cast<double>(n);
    positions.push_back(
        {center.x + radius * std::cos(angle), center.y + radius * std::sin(angle)});
  }
  return positions;
}

util::Result<std::vector<Vec2>> random_connected(std::size_t n, Rect area,
                                                 double range,
                                                 std::uint64_t seed,
                                                 std::size_t max_attempts) {
  util::RngStream rng(seed, 0x91ACE);
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    std::vector<Vec2> positions;
    positions.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      positions.push_back({rng.uniform(area.lo.x, area.hi.x),
                           rng.uniform(area.lo.y, area.hi.y)});
    }
    Topology probe(positions, RadioParams{range, 0.0});
    if (probe.connected() && probe.min_degree_at_least(2)) return positions;
  }
  return util::Error::no_ring_possible(
      "random_connected: could not draw a connected min-degree-2 placement");
}

std::vector<Vec2> grid(std::size_t rows, std::size_t cols, double spacing,
                       Vec2 origin) {
  std::vector<Vec2> positions;
  positions.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      positions.push_back({origin.x + spacing * static_cast<double>(c),
                           origin.y + spacing * static_cast<double>(r)});
    }
  }
  return positions;
}

std::vector<Vec2> chain(std::size_t n, double spacing, Vec2 origin) {
  std::vector<Vec2> positions;
  positions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    positions.push_back({origin.x + spacing * static_cast<double>(i), origin.y});
  }
  return positions;
}

}  // namespace placement

}  // namespace wrt::phy
