// Node registry, radio model and connectivity graph.
//
// The paper's network scenario (Section 2.1) is an indoor ad hoc network
// where each station can reach at least two others over a single hop and
// hidden terminals exist (a station may not hear every other station).  A
// unit-disk radio over 2-D positions reproduces exactly that structure:
// i and j are neighbours iff distance(i, j) <= range.  Link failure
// injection lets tests and the recovery benches break specific links.
#pragma once

#include <set>
#include <vector>

#include "phy/geometry.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace wrt::phy {

/// Radio parameters.  Unit-disk: perfect reception within `range`, nothing
/// beyond.  An optional shadowing term randomly shrinks the effective range
/// per link to model indoor clutter.
struct RadioParams {
  double range = 30.0;          ///< metres
  double shadowing_sigma = 0.0; ///< std-dev of per-link range shrink (m)
};

/// A static snapshot of who-can-hear-whom.  Recomputed after mobility steps
/// or forced link failures.
class Topology {
 public:
  Topology(std::vector<Vec2> positions, RadioParams radio,
           std::uint64_t seed = 1);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return positions_.size();
  }
  [[nodiscard]] Vec2 position(NodeId node) const;
  void set_position(NodeId node, Vec2 pos);

  /// Adds a node; returns its id.
  NodeId add_node(Vec2 pos);

  /// Marks a node dead (battery out / left the area).  Dead nodes hear and
  /// reach nothing.
  void set_alive(NodeId node, bool alive);
  [[nodiscard]] bool alive(NodeId node) const;

  /// Forces a specific link down regardless of distance (failure injection).
  void fail_link(NodeId a, NodeId b);
  void restore_link(NodeId a, NodeId b);
  void clear_failed_links() {
    failed_links_.clear();
    ++version_;
  }

  /// Splits the network into isolated groups (a wall slides in / the
  /// spectrum is jammed between rooms): nodes in different groups are
  /// unreachable regardless of distance until clear_partition().  Nodes not
  /// named in any group share an implicit group of their own.
  void set_partition(const std::vector<std::vector<NodeId>>& groups);
  void clear_partition() {
    partition_group_.clear();
    ++version_;
  }
  [[nodiscard]] bool partitioned() const noexcept {
    return !partition_group_.empty();
  }

  /// True iff a and b can communicate over a single hop right now.
  [[nodiscard]] bool reachable(NodeId a, NodeId b) const;

  /// All current one-hop neighbours of `node`.
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId node) const;

  /// Hidden-terminal test: c is hidden from a w.r.t. receiver b when both
  /// a and c reach b but a and c do not reach each other.
  [[nodiscard]] bool hidden_pair(NodeId a, NodeId c, NodeId receiver) const;

  /// True iff the alive subgraph is connected.
  [[nodiscard]] bool connected() const;

  /// True iff every alive node has at least `min_degree` alive neighbours
  /// (the paper requires >= 2 for ring formation).
  [[nodiscard]] bool min_degree_at_least(std::size_t min_degree) const;

  [[nodiscard]] const RadioParams& radio() const noexcept { return radio_; }

  /// Monotonic change counter, bumped by every mutator (positions, liveness,
  /// link failures, partitions).  Connectivity queries are pure functions of
  /// the topology state, so callers may cache reachable()/alive() results
  /// keyed on this version and stay exact.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

 private:
  [[nodiscard]] double effective_range(NodeId a, NodeId b) const;

  std::vector<Vec2> positions_;
  std::vector<bool> alive_;
  RadioParams radio_;
  std::set<std::pair<NodeId, NodeId>> failed_links_;
  std::vector<std::int32_t> partition_group_;  ///< empty = no partition
  std::uint64_t seed_;
  std::uint64_t version_ = 0;
};

/// Deterministic placements used across tests/benches/examples.
namespace placement {

/// N nodes evenly spaced on a circle of the given radius: every node reaches
/// exactly its near neighbours when range is slightly above the chord length.
[[nodiscard]] std::vector<Vec2> circle(std::size_t n, double radius,
                                       Vec2 center = {0.0, 0.0});

/// Uniform random placement in a rect; retries until the unit-disk graph is
/// connected with min degree 2 (up to `max_attempts`).
[[nodiscard]] util::Result<std::vector<Vec2>> random_connected(
    std::size_t n, Rect area, double range, std::uint64_t seed,
    std::size_t max_attempts = 256);

/// Grid placement (rows x cols, given spacing).
[[nodiscard]] std::vector<Vec2> grid(std::size_t rows, std::size_t cols,
                                     double spacing, Vec2 origin = {0.0, 0.0});

/// A chain: nodes on a line, spaced so only adjacent nodes are in range —
/// the canonical hidden-terminal arrangement.
[[nodiscard]] std::vector<Vec2> chain(std::size_t n, double spacing,
                                      Vec2 origin = {0.0, 0.0});

}  // namespace placement

}  // namespace wrt::phy
