// Mobility models.
//
// WRT-Ring (like TPT) targets indoor scenarios "in which terminals have low
// mobility and limited movement space" (Section 1).  BoundedRandomWaypoint
// confines each node to a small disc around its home position and moves it
// at pedestrian speed, so the connectivity graph changes slowly — exactly
// the regime the join/leave/recovery machinery is designed for.  StaticModel
// keeps nodes fixed for bound-verification runs.
#pragma once

#include <vector>

#include "phy/topology.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace wrt::phy {

/// Interface: advances node positions from `now` to `now + dt`.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  virtual void step(Topology& topology, Tick now, Tick dt) = 0;
};

/// No movement.
class StaticModel final : public MobilityModel {
 public:
  void step(Topology&, Tick, Tick) override {}
};

struct WaypointParams {
  double speed_min = 0.3;   ///< m/s — slow walk
  double speed_max = 1.5;   ///< m/s
  double pause_mean_s = 20.0;
  double leash_radius = 8.0;  ///< max distance from the home position (m)
  double slot_seconds = 1e-3; ///< wall-clock length of one MAC slot
};

struct GaussMarkovParams {
  double mean_speed = 0.8;     ///< m/s
  double alpha = 0.85;         ///< memory: 1 = straight line, 0 = Brownian
  double speed_sigma = 0.3;    ///< randomness injected per step
  double heading_sigma = 0.5;  ///< radians
  double step_seconds = 1.0;   ///< integration step
  double slot_seconds = 1e-3;
};

/// Gauss-Markov mobility: speed and heading evolve as mean-reverting AR(1)
/// processes, giving smooth, temporally correlated trajectories (no sharp
/// waypoint turns).  Nodes reflect off the area boundary.  The standard
/// alternative to random waypoint for evaluating topology-maintenance
/// protocols.
class GaussMarkov final : public MobilityModel {
 public:
  GaussMarkov(Rect area, GaussMarkovParams params, std::uint64_t seed);

  void step(Topology& topology, Tick now, Tick dt) override;

 private:
  struct NodeState {
    double speed = 0.0;
    double heading = 0.0;
    bool initialised = false;
  };

  Rect area_;
  GaussMarkovParams params_;
  std::uint64_t seed_;
  std::vector<NodeState> states_;
};

/// Random waypoint with a per-node leash: each node draws destinations
/// uniformly inside the intersection of the area and a disc around its home
/// position, walks there, pauses, repeats.
class BoundedRandomWaypoint final : public MobilityModel {
 public:
  BoundedRandomWaypoint(Rect area, WaypointParams params, std::uint64_t seed);

  /// Must be called once positions are known; records home positions.
  void bind(const Topology& topology);

  void step(Topology& topology, Tick now, Tick dt) override;

 private:
  struct NodeState {
    Vec2 home;
    Vec2 target;
    double speed = 0.0;      // m/s; 0 while paused
    double pause_left = 0.0; // seconds
    bool bound = false;
  };

  void pick_new_target(NodeState& state, util::RngStream& rng);

  Rect area_;
  WaypointParams params_;
  std::uint64_t seed_;
  std::vector<NodeState> states_;
};

}  // namespace wrt::phy
