#include "phy/mobility.hpp"

#include <algorithm>
#include <cmath>

namespace wrt::phy {

GaussMarkov::GaussMarkov(Rect area, GaussMarkovParams params,
                         std::uint64_t seed)
    : area_(area), params_(params), seed_(seed) {}

void GaussMarkov::step(Topology& topology, Tick now, Tick dt) {
  if (states_.size() < topology.node_count()) {
    states_.resize(topology.node_count());
  }
  const double dt_seconds = ticks_to_slots_real(dt) * params_.slot_seconds;
  for (NodeId i = 0; i < topology.node_count(); ++i) {
    if (!topology.alive(i)) continue;
    auto& state = states_[i];
    util::RngStream rng(seed_,
                        0x6A55 + i * 104729 + static_cast<std::uint64_t>(now));
    if (!state.initialised) {
      state.speed = params_.mean_speed;
      state.heading = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
      state.initialised = true;
    }
    Vec2 pos = topology.position(i);
    double remaining = dt_seconds;
    while (remaining > 0.0) {
      const double step = std::min(remaining, params_.step_seconds);
      remaining -= step;
      // Mean-reverting AR(1) updates (the Gauss-Markov recurrences).
      const double root = std::sqrt(1.0 - params_.alpha * params_.alpha);
      state.speed = params_.alpha * state.speed +
                    (1.0 - params_.alpha) * params_.mean_speed +
                    root * params_.speed_sigma * rng.normal();
      state.speed = std::max(0.0, state.speed);
      state.heading += root * params_.heading_sigma * rng.normal();
      pos.x += state.speed * std::cos(state.heading) * step;
      pos.y += state.speed * std::sin(state.heading) * step;
      // Reflect off walls.
      if (pos.x < area_.lo.x || pos.x > area_.hi.x) {
        state.heading = 3.14159265358979323846 - state.heading;
        pos.x = std::clamp(pos.x, area_.lo.x, area_.hi.x);
      }
      if (pos.y < area_.lo.y || pos.y > area_.hi.y) {
        state.heading = -state.heading;
        pos.y = std::clamp(pos.y, area_.lo.y, area_.hi.y);
      }
    }
    topology.set_position(i, pos);
  }
}

BoundedRandomWaypoint::BoundedRandomWaypoint(Rect area, WaypointParams params,
                                             std::uint64_t seed)
    : area_(area), params_(params), seed_(seed) {}

void BoundedRandomWaypoint::bind(const Topology& topology) {
  states_.resize(topology.node_count());
  for (NodeId i = 0; i < topology.node_count(); ++i) {
    states_[i].home = topology.position(i);
    states_[i].target = states_[i].home;
    states_[i].bound = true;
  }
}

void BoundedRandomWaypoint::pick_new_target(NodeState& state,
                                            util::RngStream& rng) {
  // Rejection-sample a point inside both the leash disc and the area.
  for (int attempt = 0; attempt < 32; ++attempt) {
    const double angle = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
    const double radius = params_.leash_radius * std::sqrt(rng.uniform());
    const Vec2 candidate = {state.home.x + radius * std::cos(angle),
                            state.home.y + radius * std::sin(angle)};
    if (area_.contains(candidate)) {
      state.target = candidate;
      state.speed = rng.uniform(params_.speed_min, params_.speed_max);
      return;
    }
  }
  state.target = area_.clamp(state.home);
  state.speed = params_.speed_min;
}

void BoundedRandomWaypoint::step(Topology& topology, Tick now, Tick dt) {
  if (states_.size() < topology.node_count()) {
    // New nodes joined since bind(); adopt their current position as home.
    const std::size_t old = states_.size();
    states_.resize(topology.node_count());
    for (std::size_t i = old; i < states_.size(); ++i) {
      states_[i].home = topology.position(static_cast<NodeId>(i));
      states_[i].target = states_[i].home;
      states_[i].bound = true;
    }
  }

  const double dt_seconds =
      ticks_to_slots_real(dt) * params_.slot_seconds;
  for (NodeId i = 0; i < topology.node_count(); ++i) {
    auto& state = states_[i];
    if (!state.bound || !topology.alive(i)) continue;
    util::RngStream rng(seed_, 0xB0B0 + i * 7919 + static_cast<std::uint64_t>(now));
    double remaining = dt_seconds;
    Vec2 pos = topology.position(i);
    while (remaining > 0.0) {
      if (state.pause_left > 0.0) {
        const double pause = std::min(state.pause_left, remaining);
        state.pause_left -= pause;
        remaining -= pause;
        continue;
      }
      if (state.speed <= 0.0) pick_new_target(state, rng);
      const Vec2 to_target = state.target - pos;
      const double dist = to_target.norm();
      const double reachable_in = state.speed * remaining;
      if (dist <= reachable_in || dist < 1e-9) {
        pos = state.target;
        remaining -= state.speed > 0.0 ? dist / state.speed : remaining;
        state.pause_left = rng.exponential(params_.pause_mean_s);
        state.speed = 0.0;
      } else {
        pos = pos + to_target * (reachable_in / dist);
        remaining = 0.0;
      }
    }
    topology.set_position(i, area_.clamp(pos));
  }
}

}  // namespace wrt::phy
