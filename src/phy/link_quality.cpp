#include "phy/link_quality.hpp"

#include <algorithm>
#include <cmath>

namespace wrt::phy {

double path_loss_db(const LinkBudget& budget, double distance_m) {
  const double d = std::max(distance_m, 0.1);
  return budget.path_loss_d0_db +
         10.0 * budget.path_loss_exponent * std::log10(d);
}

double snr_db(const LinkBudget& budget, double distance_m) {
  return budget.tx_power_dbm - path_loss_db(budget, distance_m) -
         budget.noise_floor_dbm;
}

double bpsk_ber(double snr_db_value) {
  const double snr_linear = std::pow(10.0, snr_db_value / 10.0);
  // Q(x) = erfc(x / sqrt(2)) / 2;  BER = Q(sqrt(2 SNR)).
  return 0.5 * std::erfc(std::sqrt(std::max(snr_linear, 0.0)));
}

double frame_error_rate(const LinkBudget& budget, double distance_m) {
  const double ber = bpsk_ber(snr_db(budget, distance_m));
  const double per =
      1.0 - std::pow(1.0 - ber, static_cast<double>(budget.frame_bits));
  return std::clamp(per, 0.0, 1.0);
}

double distance_for_per(const LinkBudget& budget, double target_per) {
  double lo = 0.1;
  double hi = 10000.0;
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (frame_error_rate(budget, mid) < target_per) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace wrt::phy
