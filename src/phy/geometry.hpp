// 2-D geometry for indoor node placement.
#pragma once

#include <cmath>

namespace wrt::phy {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) noexcept {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) noexcept {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Vec2 operator*(Vec2 a, double s) noexcept {
    return {a.x * s, a.y * s};
  }
  friend constexpr bool operator==(Vec2 a, Vec2 b) noexcept {
    return a.x == b.x && a.y == b.y;
  }

  [[nodiscard]] double norm() const noexcept { return std::hypot(x, y); }
};

[[nodiscard]] inline double distance(Vec2 a, Vec2 b) noexcept {
  return (a - b).norm();
}

/// Axis-aligned rectangle, used as the movement area ("the room").
struct Rect {
  Vec2 lo;
  Vec2 hi;

  [[nodiscard]] constexpr double width() const noexcept { return hi.x - lo.x; }
  [[nodiscard]] constexpr double height() const noexcept { return hi.y - lo.y; }
  [[nodiscard]] constexpr bool contains(Vec2 p) const noexcept {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  /// Clamps a point into the rectangle.
  [[nodiscard]] Vec2 clamp(Vec2 p) const noexcept;
};

}  // namespace wrt::phy
