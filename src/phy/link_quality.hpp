// Link-quality models: from geometry to packet error rate.
//
// The paper's analysis assumes an error-free channel; real indoor radios
// are not.  This module provides the standard log-distance path-loss /
// SNR / BER chain so experiments can derive a principled per-hop frame
// loss probability (fed into wrtring::Config::frame_loss_prob /
// sat_loss_prob) instead of picking magic numbers:
//
//   path loss  PL(d) = PL(d0) + 10 n log10(d / d0)          [dB]
//   SNR        = P_tx - PL(d) - noise_floor                 [dB]
//   BER        ~ Q(sqrt(2 SNR_linear))   (BPSK, AWGN)
//   PER        = 1 - (1 - BER)^bits
//
// The numbers are textbook indoor values; what matters to the MAC is the
// shape — PER rising steeply past a distance knee — which these reproduce.
#pragma once

#include <cstdint>

namespace wrt::phy {

struct LinkBudget {
  double tx_power_dbm = 0.0;      ///< typical low-power WLAN card
  double path_loss_d0_db = 40.0;  ///< loss at the 1 m reference distance
  double path_loss_exponent = 3.0;///< indoor with obstructions: 2.7-3.5
  double noise_floor_dbm = -90.0;
  std::uint32_t frame_bits = 1024;///< MAC frame size
};

/// Path loss in dB at `distance_m` (>= 0.1 m enforced).
[[nodiscard]] double path_loss_db(const LinkBudget& budget,
                                  double distance_m);

/// Signal-to-noise ratio in dB at the receiver.
[[nodiscard]] double snr_db(const LinkBudget& budget, double distance_m);

/// BPSK-over-AWGN bit error rate for the given SNR (in dB).
[[nodiscard]] double bpsk_ber(double snr_db_value);

/// Frame/packet error rate at `distance_m` for `budget.frame_bits` bits.
[[nodiscard]] double frame_error_rate(const LinkBudget& budget,
                                      double distance_m);

/// The distance at which PER crosses `target_per` (bisection); useful for
/// choosing radio ranges that match a loss budget.
[[nodiscard]] double distance_for_per(const LinkBudget& budget,
                                      double target_per);

}  // namespace wrt::phy
