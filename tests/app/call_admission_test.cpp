#include "app/call_admission.hpp"

#include <gtest/gtest.h>

#include "tests/wrtring/test_helpers.hpp"

namespace wrt::app {
namespace {

class CallAdmissionTest : public ::testing::Test {
 protected:
  CallAdmissionTest()
      : harness_(8, wrtring::Config{}),
        controller_(&harness_.engine,
                    analysis::AllocationScheme::kProportional,
                    /*l_budget=*/8, /*k_per_station=*/1),
        fleet_(64, 8, slots_to_ticks(20000), 3) {}

  wrtring::testing::Harness harness_;
  wrtring::AdmissionController controller_;
  VoiceFleet fleet_;
};

TEST_F(CallAdmissionTest, AdmitsUntilQuotaExhausts) {
  CallAdmission admission(&controller_, /*transit_allowance_slots=*/10);
  std::size_t accepted = 0;
  for (const VoiceCall& call : fleet_.calls()) {
    if (admission.offer(call, fleet_.params())) ++accepted;
  }
  // 64 calls on an 8-station ring: the 150-slot playout deadline admits a
  // batch, but the Theorem-3 feasibility test must eventually say no.
  EXPECT_GT(accepted, 0u);
  EXPECT_LT(accepted, fleet_.calls().size());
  EXPECT_EQ(admission.admitted_count(), accepted);
  EXPECT_EQ(admission.offered_count(), fleet_.calls().size());
  EXPECT_EQ(controller_.session_count(), accepted);
}

TEST_F(CallAdmissionTest, FrontierIsMonotoneAndComplete) {
  CallAdmission admission(&controller_, 10);
  for (const VoiceCall& call : fleet_.calls()) {
    (void)admission.offer(call, fleet_.params());
  }
  const auto& frontier = admission.frontier();
  ASSERT_EQ(frontier.size(), fleet_.calls().size());
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    EXPECT_EQ(frontier[i].offered, i + 1);
    EXPECT_LE(frontier[i].admitted, frontier[i].offered);
    if (i > 0) {
      EXPECT_GE(frontier[i].admitted, frontier[i - 1].admitted);
    }
  }
}

TEST_F(CallAdmissionTest, RejectsNonPositiveMacDeadline) {
  // Transit allowance at/above the playout deadline leaves no MAC budget.
  CallAdmission admission(&controller_,
                          fleet_.params().deadline_slots + 1);
  EXPECT_FALSE(admission.offer(fleet_.calls()[0], fleet_.params()));
  EXPECT_EQ(controller_.session_count(), 0u);
}

TEST_F(CallAdmissionTest, ReleaseFreesHeadroom) {
  CallAdmission admission(&controller_, 10);
  std::vector<FlowId> admitted;
  for (const VoiceCall& call : fleet_.calls()) {
    if (admission.offer(call, fleet_.params())) admitted.push_back(call.flow);
  }
  ASSERT_FALSE(admitted.empty());
  const std::size_t before = admission.admitted_count();
  const FlowId released = admitted.front();
  admission.release(released);
  EXPECT_EQ(admission.admitted_count(), before - 1);
  EXPECT_FALSE(admission.is_admitted(released));
  EXPECT_EQ(controller_.session_count(), before - 1);

  // The freed quota re-admits the same call.
  const VoiceCall* call = nullptr;
  for (const VoiceCall& c : fleet_.calls()) {
    if (c.flow == released) call = &c;
  }
  ASSERT_NE(call, nullptr);
  EXPECT_TRUE(admission.offer(*call, fleet_.params()));
}

TEST_F(CallAdmissionTest, AttachIfOnlyDrivesAdmittedCalls) {
  CallAdmission admission(&controller_, 10);
  for (const VoiceCall& call : fleet_.calls()) {
    (void)admission.offer(call, fleet_.params());
  }
  // Count trace sources the engine would receive via attach_if.
  struct CountingEngine {
    std::size_t count = 0;
    void add_trace_source(const traffic::Trace&, FlowId, NodeId, NodeId,
                          std::int64_t) {
      ++count;
    }
  } counting;
  fleet_.attach_if(counting, [&](FlowId flow) {
    return admission.is_admitted(flow);
  });
  EXPECT_EQ(counting.count, admission.admitted_count());
}

}  // namespace
}  // namespace wrt::app
