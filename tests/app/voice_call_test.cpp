#include "app/voice_call.hpp"

#include <gtest/gtest.h>

#include <set>

#include "aloha/engine.hpp"

namespace wrt::app {
namespace {

constexpr Tick kHorizon = slots_to_ticks(20000);

TEST(VoiceFleet, PlacesDistinctCalls) {
  const VoiceFleet fleet(12, 8, kHorizon, 42);
  ASSERT_EQ(fleet.calls().size(), 12u);
  std::set<FlowId> flows;
  for (const VoiceCall& call : fleet.calls()) {
    flows.insert(call.flow);
    EXPECT_NE(call.src, call.dst);
    EXPECT_LT(call.src, 8u);
    EXPECT_LT(call.dst, 8u);
    EXPECT_EQ(call.offered, call.trace.total_packets());
    EXPECT_GT(call.offered, 0u);
  }
  EXPECT_EQ(flows.size(), 12u) << "flow ids must be unique";
}

TEST(VoiceFleet, DeterministicPerSeed) {
  const VoiceFleet a(4, 8, kHorizon, 7);
  const VoiceFleet b(4, 8, kHorizon, 7);
  const VoiceFleet c(4, 8, kHorizon, 8);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(a.calls()[i].offered, b.calls()[i].offered);
  }
  // Different master seed -> at least one call's spurt pattern differs.
  bool any_diff = false;
  for (std::size_t i = 0; i < 4; ++i) {
    if (a.calls()[i].offered != c.calls()[i].offered) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(VoiceFleet, CallsGetDistinctSpurtPhases) {
  // Within one fleet, per-call seeds must differ or every call talks in
  // lockstep and the fleet is one giant burst.
  const VoiceFleet fleet(6, 12, kHorizon, 3);
  std::set<std::uint64_t> offered;
  for (const VoiceCall& call : fleet.calls()) offered.insert(call.offered);
  EXPECT_GT(offered.size(), 1u);
}

TEST(VoiceFleet, OfferedLoadMatchesVoiceModel) {
  // Brady duty cycle ~ 1000/(1000+1350) at one frame per 20 slots:
  // ~0.0213 pkt/slot per call.
  const VoiceFleet fleet(10, 10, kHorizon, 11);
  const double per_call = fleet.offered_load(kHorizon) / 10.0;
  EXPECT_GT(per_call, 0.012);
  EXPECT_LT(per_call, 0.032);
}

TEST(ScoreCall, AllOnTimeIsNearCeiling) {
  VoiceCallParams params;
  VoiceCall call;
  call.flow = 1;
  call.offered = 100;
  traffic::Sink sink;
  traffic::Packet p;
  p.flow = 1;
  p.cls = TrafficClass::kRealTime;
  for (int i = 0; i < 100; ++i) {
    p.created = slots_to_ticks(20 * i);
    p.deadline = p.created + slots_to_ticks(params.deadline_slots);
    sink.record_delivery(p, p.created + slots_to_ticks(10));  // 10 ms MAC
  }
  const CallScore score = score_call(call, sink, params);
  EXPECT_EQ(score.on_time, 100u);
  EXPECT_DOUBLE_EQ(score.loss_fraction, 0.0);
  EXPECT_NEAR(score.mean_delay_ms, 10.0, 1e-9);
  EXPECT_GT(score.mos, 4.3);
}

TEST(ScoreCall, NoDeliveriesScoresOne) {
  const VoiceCallParams params;
  VoiceCall call;
  call.flow = 9;
  call.offered = 50;
  const traffic::Sink sink;  // never saw the flow
  const CallScore score = score_call(call, sink, params);
  EXPECT_EQ(score.on_time, 0u);
  EXPECT_DOUBLE_EQ(score.loss_fraction, 1.0);
  EXPECT_DOUBLE_EQ(score.mos, 1.0);
}

TEST(ScoreCall, LateFramesCountAsLost) {
  VoiceCallParams params;
  VoiceCall call;
  call.flow = 2;
  call.offered = 100;
  traffic::Sink sink;
  traffic::Packet p;
  p.flow = 2;
  p.cls = TrafficClass::kRealTime;
  for (int i = 0; i < 100; ++i) {
    p.created = slots_to_ticks(20 * i);
    p.deadline = p.created + slots_to_ticks(params.deadline_slots);
    // Every 10th frame arrives one slot past its playout deadline.
    const Tick arrive = i % 10 == 0
                            ? p.deadline + slots_to_ticks(1)
                            : p.created + slots_to_ticks(5);
    sink.record_delivery(p, arrive);
  }
  const CallScore score = score_call(call, sink, params);
  EXPECT_EQ(score.on_time, 90u);
  EXPECT_NEAR(score.loss_fraction, 0.10, 1e-9);
  EXPECT_LT(score.mos, 3.8) << "10% effective loss must break compliance";
  EXPECT_GT(score.mos, 1.0);
}

TEST(ScoreFleet, CompliantCountsThreshold) {
  std::vector<CallScore> scores(5);
  scores[0].mos = 4.4;
  scores[1].mos = 3.8;
  scores[2].mos = 3.79;
  scores[3].mos = 1.0;
  scores[4].mos = 4.0;
  EXPECT_EQ(compliant_calls(scores), 3u);
  EXPECT_EQ(compliant_calls(scores, 1.0), 5u);
}

TEST(VoiceFleet, AttachDrivesAnEngine) {
  // End-to-end through the Aloha MAC: a tiny fleet in a dense room where
  // contention is light delivers most frames on time.
  phy::Topology topology(phy::placement::circle(8, 5.0),
                         phy::RadioParams{100.0, 0.0});
  aloha::AlohaEngine engine(&topology, aloha::AlohaConfig{}, 1);
  ASSERT_TRUE(engine.init().ok());
  const VoiceFleet fleet(2, 8, slots_to_ticks(8000), 5);
  fleet.attach(engine);
  engine.run_slots(8000 + 400);
  ASSERT_TRUE(engine.check_invariants().ok());
  const auto scores = score_fleet(fleet, engine.stats().sink);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_EQ(compliant_calls(scores), 2u);
  for (const CallScore& s : scores) {
    EXPECT_GT(s.mos, 3.8);
    EXPECT_LT(s.loss_fraction, 0.05);
  }
}

}  // namespace
}  // namespace wrt::app
