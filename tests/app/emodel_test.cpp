#include "app/emodel.hpp"

#include <gtest/gtest.h>

namespace wrt::app {
namespace {

// Published G.107 reference points, so MOS numbers are anchored to the
// standard rather than invented.

TEST(EModel, ZeroImpairmentIsDefaultRating) {
  // With no delay and no loss, R equals the default transmission rating
  // R0 = 93.2, whose Annex-B MOS is ~4.41 — the narrowband ceiling quoted
  // everywhere VoIP quality is discussed.
  EXPECT_DOUBLE_EQ(r_factor(0.0, 0.0), 93.2);
  EXPECT_NEAR(mos_from_r(93.2), 4.41, 0.005);
}

TEST(EModel, SatisfiedThresholdNearR75) {
  // R = 75 sits at the bottom of the "satisfied" band; its MOS is ~3.8 —
  // the compliance bar the capacity bench uses.
  EXPECT_NEAR(mos_from_r(75.0), 3.8, 0.03);
}

TEST(EModel, R50IsPoor) {
  // R = 50 is the "nearly all users dissatisfied" boundary, MOS ~2.6.
  EXPECT_NEAR(mos_from_r(50.0), 2.6, 0.03);
}

TEST(EModel, MosClampsAtExtremes) {
  EXPECT_DOUBLE_EQ(mos_from_r(-10.0), 1.0);
  EXPECT_DOUBLE_EQ(mos_from_r(0.0), 1.0);
  EXPECT_DOUBLE_EQ(mos_from_r(100.0), 4.5);
  EXPECT_DOUBLE_EQ(mos_from_r(150.0), 4.5);
}

TEST(EModel, DelayImpairmentPiecewise) {
  // Below the 177.3 ms knee only the linear term applies.
  EXPECT_NEAR(delay_impairment_ms(100.0), 2.4, 1e-9);
  // Above the knee the second linear term kicks in.
  EXPECT_NEAR(delay_impairment_ms(277.3), 0.024 * 277.3 + 0.11 * 100.0,
              1e-9);
  EXPECT_DOUBLE_EQ(delay_impairment_ms(0.0), 0.0);
  // Negative delay cannot produce a negative impairment.
  EXPECT_DOUBLE_EQ(delay_impairment_ms(-5.0), 0.0);
}

TEST(EModel, LossImpairmentG711Shape) {
  // G.711: Ie = 0, Bpl = 4.3.  Zero loss -> zero impairment; the curve is
  // monotone and saturates toward 95.
  EXPECT_DOUBLE_EQ(loss_impairment(0.0), 0.0);
  const double at_1pct = loss_impairment(0.01);
  const double at_5pct = loss_impairment(0.05);
  const double at_20pct = loss_impairment(0.20);
  EXPECT_NEAR(at_1pct, 95.0 * 1.0 / (1.0 + 4.3), 1e-9);
  EXPECT_LT(at_1pct, at_5pct);
  EXPECT_LT(at_5pct, at_20pct);
  EXPECT_LT(at_20pct, 95.0);
  // Total loss converges to (almost) the full 95-point impairment.
  EXPECT_NEAR(loss_impairment(1.0), 95.0 * 100.0 / 104.3, 1e-9);
}

TEST(EModel, RoughlyOnePercentLossCostsHalfAMos) {
  // Sanity on the composed mapping: 1% random loss on an otherwise clean
  // G.711 call costs ~0.4 MOS (93.2 -> ~75.3 R).
  const double clean = mos(0.0, 0.0);
  const double lossy = mos(0.0, 0.01);
  EXPECT_GT(clean - lossy, 0.3);
  EXPECT_LT(clean - lossy, 0.7);
}

TEST(EModel, DelayBelowKneeBarelyHurts) {
  // 150 ms one-way (the classic interactive budget) costs only the linear
  // term: R = 93.2 - 3.6 -> still comfortably "satisfied".
  EXPECT_GT(mos(150.0, 0.0), 4.2);
  // 400 ms is past the knee and noticeably worse, but the piecewise Id is
  // gentle: it alone does not cross the 3.8 bar.
  EXPECT_LT(mos(400.0, 0.0), mos(150.0, 0.0));
}

TEST(EModel, CustomCodecParams) {
  // A codec with intrinsic impairment shifts the whole curve down.
  EModelParams g729;
  g729.ie = 11.0;
  g729.bpl = 19.0;
  EXPECT_DOUBLE_EQ(loss_impairment(0.0, g729), 11.0);
  EXPECT_LT(mos(0.0, 0.0, g729), mos(0.0, 0.0));
}

}  // namespace
}  // namespace wrt::app
