// Fixture: a namespace-scope mutable global and a mutable function-local
// static (2 findings).
namespace fixture {
int g_counter = 0;
int bump() {
  static int calls;
  return ++calls + g_counter;
}
}  // namespace fixture
