// Fixture: the same globals, each with a justified suppression.
namespace fixture {
// wrt-lint-allow(mutable-global-state): fixture — written once before any shard starts
int g_counter = 0;
int bump() {
  // wrt-lint-allow(mutable-global-state): fixture — per-process call counter, test-only
  static int calls;
  return ++calls + g_counter;
}
}  // namespace fixture
