// Fixture: <sstream> included, nothing from it used (1 finding).
#include <sstream>
namespace fixture {
int answer() { return 42; }
}  // namespace fixture
