// Fixture: stale include with a justified suppression.
// wrt-lint-allow(stale-include): fixture — kept for a macro expansion the table cannot see
#include <sstream>
namespace fixture {
int answer() { return 42; }
}  // namespace fixture
