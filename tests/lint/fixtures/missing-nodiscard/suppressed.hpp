// Fixture: the same accessor with a justified suppression.
#pragma once
namespace fixture {
class Counter {
 public:
  // wrt-lint-allow(missing-nodiscard): fixture — result intentionally droppable in the demo API
  int value() const { return value_; }

 private:
  int value_ = 0;
};
}  // namespace fixture
