// Fixture: zero-argument const accessor without [[nodiscard]] (1 finding).
#pragma once
namespace fixture {
class Counter {
 public:
  int value() const { return value_; }

 private:
  int value_ = 0;
};
}  // namespace fixture
