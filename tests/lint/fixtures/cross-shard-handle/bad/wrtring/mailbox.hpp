// Fixture: a mailbox frame smuggling a pointer across shards (1 finding).
#pragma once
namespace fixture {
struct Payload;
struct CrossingFrame {
  long flow = 0;
  Payload* origin = nullptr;
};
}  // namespace fixture
