// Fixture: stored raw Engine pointer in ring code (1 finding).
#pragma once
namespace fixture {
class Engine;
class PeerTable {
 private:
  Engine* neighbor_ = nullptr;
};
}  // namespace fixture
