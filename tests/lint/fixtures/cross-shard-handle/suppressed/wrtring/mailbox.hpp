// Fixture: the same frame member with a justified suppression.
#pragma once
namespace fixture {
struct Payload;
struct CrossingFrame {
  long flow = 0;
  // wrt-lint-allow(cross-shard-handle): fixture — scratch pointer, cleared before the frame is posted
  Payload* origin = nullptr;
};
}  // namespace fixture
