// Fixture: the same handle with a justified same-shard suppression.
#pragma once
namespace fixture {
class Engine;
class PeerTable {
 private:
  // wrt-lint-allow(cross-shard-handle): fixture — handle to the table's own engine, same shard
  Engine* neighbor_ = nullptr;
};
}  // namespace fixture
