// Fixture: suppression naming a rule that does not exist (1 finding; also
// makes --list-suppressions exit non-zero).
// wrt-lint-allow(no-such-rule): this rule was retired
namespace fixture {
const int kAnswer = 42;
}  // namespace fixture
