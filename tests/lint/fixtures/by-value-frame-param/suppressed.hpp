// Fixture: by-value Packet with a justified suppression.
#pragma once
namespace fixture {
struct Packet {
  int bytes = 0;
};
// wrt-lint-allow(by-value-frame-param): fixture — sink takes ownership by copy on purpose
void deliver(Packet packet);
}  // namespace fixture
