// Fixture: Packet passed by value (1 finding).
#pragma once
namespace fixture {
struct Packet {
  int bytes = 0;
};
void deliver(Packet packet);
}  // namespace fixture
