// Fixture: the same direct dispatch with a justified suppression.
namespace fixture {
struct Engine {
  void start_rebuild();
};
void on_unrepairable(Engine& engine) {
  // wrt-lint-allow(recovery-side-effect): fixture — FSM-sanctioned dispatch
  engine.start_rebuild();
}
}  // namespace fixture
