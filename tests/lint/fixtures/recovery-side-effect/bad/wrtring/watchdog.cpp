// Fixture: recovery side effects outside the FSM (2 findings).  The
// declarations and the Engine method definition below must NOT fire —
// only the two call sites do.
namespace fixture {
struct Engine {
  void start_recovery(int detector);
  void start_rebuild();
};
void Engine::start_rebuild() {}
void on_timeout(Engine& engine, int detector) {
  engine.start_recovery(detector);
}
void on_unrepairable(Engine& engine) { engine.start_rebuild(); }
}  // namespace fixture
