// Fixture: the same AoS access with a justified suppression.
#include <vector>
namespace fixture {
struct StationState {
  int rt_pck = 0;
};
struct Kernel {
  std::vector<StationState> stations_;
  // wrt-lint-allow(kernel-aos-access): fixture — cold debug dump, not a per-slot pass
  int rt(int position) { return stations_[position].rt_pck; }
};
}  // namespace fixture
