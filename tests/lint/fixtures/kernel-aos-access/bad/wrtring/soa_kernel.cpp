// Fixture: per-station object indexing in a kernel file (1 finding).
#include <vector>
namespace fixture {
struct StationState {
  int rt_pck = 0;
};
struct Kernel {
  std::vector<StationState> stations_;
  int rt(int position) { return stations_[position].rt_pck; }
};
}  // namespace fixture
