// Fixture: registered shared type whose plain field carries a justified
// suppression.
#pragma once
namespace fixture {
// wrt-lint-shared-type(SuppressedBox): fixture shared type
struct SuppressedBox {
  // wrt-lint-allow(unguarded-shared-field): fixture — synchronised externally by the harness
  int cold = 0;
};
}  // namespace fixture
