// Fixture: registered shared type with one unannotated field (1 finding —
// the atomic field is fine, the plain int is not).
#pragma once
#include <atomic>
namespace fixture {
// wrt-lint-shared-type(SharedBox): fixture shared type
struct SharedBox {
  std::atomic<int> hits{0};
  int unguarded = 0;
};
}  // namespace fixture
