// Fixture: associative container in a hot-path file (2 findings — the
// include and the member declaration).
#pragma once
#include <map>
namespace fixture {
class StationIndex {
 public:
  void insert(int key, int value) { lookup_[key] = value; }

 private:
  std::map<int, int> lookup_;
};
}  // namespace fixture
