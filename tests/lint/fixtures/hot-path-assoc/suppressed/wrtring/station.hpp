// Fixture: the same hot-path associative container, silenced file-wide.
// wrt-lint-allow-file(hot-path-assoc): fixture — cold lookup table, not the per-slot path
#pragma once
#include <map>
namespace fixture {
class StationIndex {
 public:
  void insert(int key, int value) { lookup_[key] = value; }

 private:
  std::map<int, int> lookup_;
};
}  // namespace fixture
