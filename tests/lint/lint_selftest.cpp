// Self-test for wrt_lint: runs the real binary over the fixture tree in
// tests/lint/fixtures/ and asserts the exact findings.  Every rule has one
// known-bad fixture (must fire, with a known count and line) and one
// suppressed fixture (a justified wrt-lint-allow must silence it); because
// the expected set is exact, a fixture that fires twice, a rule that stops
// firing, or a suppression that stops working all fail loudly.
//
// WRT_LINT_BIN and WRT_LINT_FIXTURES are injected by tests/CMakeLists.txt.
#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

/// Runs `WRT_LINT_BIN <args>` capturing stdout+stderr.
RunResult run_lint(const std::string& args) {
  const std::string command =
      std::string(WRT_LINT_BIN) + " " + args + " 2>&1";
  RunResult result;
  FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> chunk{};
  std::size_t got = 0;
  while ((got = std::fread(chunk.data(), 1, chunk.size(), pipe)) > 0) {
    result.output.append(chunk.data(), got);
  }
  const int status = ::pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string fixture(const std::string& relative) {
  return std::string(WRT_LINT_FIXTURES) + "/" + relative;
}

/// Reduces a findings line to "relative-path:line:rule" (paths are printed
/// absolute because the fixtures dir is passed absolute).
std::multiset<std::string> parse_findings(const std::string& output) {
  const std::string prefix = std::string(WRT_LINT_FIXTURES) + "/";
  std::multiset<std::string> findings;
  std::istringstream stream(output);
  std::string line;
  while (std::getline(stream, line)) {
    const std::size_t at = line.find(prefix);
    if (at != 0) continue;  // summary / non-finding line
    const std::size_t bracket = line.find('[');
    const std::size_t close = line.find(']');
    if (bracket == std::string::npos || close == std::string::npos) continue;
    std::string location = line.substr(prefix.size(),
                                       line.find(": [") - prefix.size());
    findings.insert(location + ":" +
                    line.substr(bracket + 1, close - bracket - 1));
  }
  return findings;
}

TEST(LintSelftest, EveryRuleFiresOnItsBadFixtureAndOnlyThere) {
  const RunResult result = run_lint(std::string(WRT_LINT_FIXTURES));
  EXPECT_EQ(result.exit_code, 1) << result.output;

  const std::multiset<std::string> expected = {
      "hot-path-assoc/bad/wrtring/station.hpp:4:hot-path-assoc",
      "hot-path-assoc/bad/wrtring/station.hpp:11:hot-path-assoc",
      "by-value-frame-param/bad.hpp:7:by-value-frame-param",
      "stale-include/bad.cpp:2:stale-include",
      "missing-nodiscard/bad.hpp:6:missing-nodiscard",
      "kernel-aos-access/bad/wrtring/soa_kernel.cpp:9:kernel-aos-access",
      "mutable-global-state/bad.cpp:4:mutable-global-state",
      "mutable-global-state/bad.cpp:6:mutable-global-state",
      "cross-shard-handle/bad/wrtring/peers.hpp:7:cross-shard-handle",
      "cross-shard-handle/bad/wrtring/mailbox.hpp:7:cross-shard-handle",
      "unguarded-shared-field/bad.hpp:9:unguarded-shared-field",
      "recovery-side-effect/bad/wrtring/watchdog.cpp:11:recovery-side-effect",
      "recovery-side-effect/bad/wrtring/watchdog.cpp:13:recovery-side-effect",
      "lint-suppression/bad.cpp:3:lint-suppression",
  };
  EXPECT_EQ(parse_findings(result.output), expected) << result.output;
}

TEST(LintSelftest, SuppressedFixturesAloneAreClean) {
  // The suppressed halves on their own must exit 0: proves each
  // wrt-lint-allow actually lands on its finding.
  const std::string roots =
      fixture("hot-path-assoc/suppressed") + " " +
      fixture("by-value-frame-param/suppressed.hpp") + " " +
      fixture("stale-include/suppressed.cpp") + " " +
      fixture("missing-nodiscard/suppressed.hpp") + " " +
      fixture("kernel-aos-access/suppressed") + " " +
      fixture("mutable-global-state/suppressed.cpp") + " " +
      fixture("cross-shard-handle/suppressed") + " " +
      fixture("unguarded-shared-field/suppressed.hpp") + " " +
      fixture("recovery-side-effect/suppressed");
  const RunResult result = run_lint(roots);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("clean"), std::string::npos) << result.output;
}

TEST(LintSelftest, ListSuppressionsInventoriesJustifications) {
  const RunResult result =
      run_lint("--list-suppressions " + std::string(WRT_LINT_FIXTURES));
  // The unknown-rule fixture must make the audit fail...
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("unknown rule 'no-such-rule'"),
            std::string::npos)
      << result.output;
  // ...while the 11 legitimate suppressions are inventoried with their
  // scope tag and justification text.
  EXPECT_NE(result.output.find("11 active suppression(s)"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find(
                "[file] hot-path-assoc: fixture — cold lookup table"),
            std::string::npos)
      << result.output;
  EXPECT_NE(
      result.output.find(
          "[line] cross-shard-handle: fixture — handle to the table's own"),
      std::string::npos)
      << result.output;
}

TEST(LintSelftest, ListSuppressionsCleanTreeExitsZero) {
  const RunResult result = run_lint("--list-suppressions " +
                                    fixture("mutable-global-state"));
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("2 active suppression(s)"), std::string::npos)
      << result.output;
}

TEST(LintSelftest, ListRulesNamesAllRules) {
  const RunResult result = run_lint("--list-rules");
  EXPECT_EQ(result.exit_code, 0);
  for (const char* rule :
       {"hot-path-assoc", "by-value-frame-param", "stale-include",
        "missing-nodiscard", "kernel-aos-access", "mutable-global-state",
        "cross-shard-handle", "unguarded-shared-field",
        "recovery-side-effect"}) {
    EXPECT_NE(result.output.find(rule), std::string::npos) << rule;
  }
}

}  // namespace
