// Section 2.4 / 2.5 behaviour: joins via RAP, graceful leaves, SAT loss
// detection, SAT_REC cut-out recovery, and ring re-formation.
#include <gtest/gtest.h>

#include "analysis/bounds.hpp"
#include "tests/wrtring/test_helpers.hpp"
#include "wrtring/engine.hpp"

namespace wrt::wrtring {
namespace {

using testing::Harness;
using testing::circle_topology;
using testing::rt_flow;

Config rap_config() {
  Config config;
  config.rap_policy = RapPolicy::kRotating;
  config.t_ear_slots = 4;
  config.t_update_slots = 2;
  return config;
}

TEST(Join, NewStationEntersBetweenTwoNeighbours) {
  Harness h(8, rap_config());
  // Place the newcomer between ring neighbours 0 and 1, inside range.
  const phy::Vec2 mid =
      (h.topology.position(0) + h.topology.position(1)) * 0.5;
  const NodeId newcomer = h.topology.add_node(mid);
  h.engine.request_join(newcomer, {1, 1});
  // The joiner needs to hear every station's NEXT_FREE plus a repeat, then
  // wait for its chosen ingress again: run generously.
  h.engine.run_slots(8 * 40 * 8);
  ASSERT_EQ(h.engine.stats().joins_completed, 1u);
  EXPECT_TRUE(h.engine.virtual_ring().contains(newcomer));
  EXPECT_EQ(h.engine.virtual_ring().size(), 9u);
  // The ring stays geometrically valid.
  EXPECT_TRUE(h.engine.virtual_ring().valid_over(h.topology));
  // Codes stay distance-2 clean after the insertion.
  EXPECT_TRUE(cdma::verify_two_hop_distinct(h.topology, h.engine.codes()));
}

TEST(Join, JoinedStationCarriesTraffic) {
  Harness h(6, rap_config());
  const phy::Vec2 mid =
      (h.topology.position(2) + h.topology.position(3)) * 0.5;
  const NodeId newcomer = h.topology.add_node(mid);
  h.engine.request_join(newcomer, {2, 1});
  h.engine.run_slots(6 * 40 * 8);
  ASSERT_TRUE(h.engine.virtual_ring().contains(newcomer));
  traffic::Packet p;
  p.flow = 9;
  p.cls = TrafficClass::kRealTime;
  p.src = newcomer;
  p.dst = h.engine.virtual_ring().successor(newcomer);
  p.created = h.engine.now();
  ASSERT_TRUE(h.engine.inject_packet(p));
  const auto before = h.engine.stats().sink.total_delivered();
  h.engine.run_slots(200);
  EXPECT_GT(h.engine.stats().sink.total_delivered(), before);
}

TEST(Join, OutOfRangeRequesterNeverJoins) {
  Harness h(6, rap_config());
  const NodeId far = h.topology.add_node({500.0, 500.0});
  h.engine.request_join(far, {1, 1});
  h.engine.run_slots(6 * 40 * 8);
  EXPECT_EQ(h.engine.stats().joins_completed, 0u);
  EXPECT_FALSE(h.engine.virtual_ring().contains(far));
}

TEST(Join, SingleNeighbourRequesterCannotJoin) {
  // Section 2.4.1: the requester must reach TWO consecutive stations.
  Harness h(8, rap_config(), 1, 1.2);  // tight range: ~1 hop
  // Just outside the circle near station 0 only.
  const phy::Vec2 p0 = h.topology.position(0);
  const NodeId lonely = h.topology.add_node({p0.x * 1.35, p0.y * 1.35});
  // Confirm the premise: exactly one ring member in range.
  std::size_t in_range = 0;
  for (NodeId n = 0; n < 8; ++n) {
    if (h.topology.reachable(lonely, n)) ++in_range;
  }
  ASSERT_LE(in_range, 1u);
  h.engine.request_join(lonely, {1, 1});
  h.engine.run_slots(8 * 40 * 8);
  EXPECT_EQ(h.engine.stats().joins_completed, 0u);
}

TEST(Join, AdmissionControlRejectsOversizedQuota) {
  Config config = rap_config();
  config.default_quota = {1, 1};
  Harness h(6, config);
  h.engine.set_max_sat_time_goal(
      analysis::sat_time_bound(h.engine.ring_params()) + 4);
  const phy::Vec2 mid =
      (h.topology.position(0) + h.topology.position(1)) * 0.5;
  const NodeId greedy = h.topology.add_node(mid);
  h.engine.request_join(greedy, {50, 50});  // would blow the bound
  h.engine.run_slots(6 * 40 * 8);
  EXPECT_EQ(h.engine.stats().joins_completed, 0u);
  EXPECT_GE(h.engine.stats().joins_rejected, 1u);
}

TEST(Join, RapMutexAllowsAtMostOneRapPerRound) {
  Harness h(6, rap_config());
  h.engine.run_slots(2000);
  const auto& stats = h.engine.stats();
  ASSERT_GT(stats.raps_started, 0u);
  // One RAP per SAT round at most.
  EXPECT_LE(stats.raps_started, stats.sat_rounds + 1);
}

TEST(Join, TwoSimultaneousJoinersEventuallyBothEnter) {
  Harness h(8, rap_config());
  const phy::Vec2 mid01 =
      (h.topology.position(0) + h.topology.position(1)) * 0.5;
  const phy::Vec2 mid45 =
      (h.topology.position(4) + h.topology.position(5)) * 0.5;
  const NodeId j1 = h.topology.add_node(mid01);
  const NodeId j2 = h.topology.add_node(mid45);
  h.engine.request_join(j1, {1, 1});
  h.engine.request_join(j2, {1, 1});
  h.engine.run_slots(8 * 40 * 24);
  EXPECT_EQ(h.engine.stats().joins_completed, 2u);
  EXPECT_TRUE(h.engine.virtual_ring().contains(j1));
  EXPECT_TRUE(h.engine.virtual_ring().contains(j2));
}

TEST(Leave, GracefulLeaveCutsStationOut) {
  Harness h(8, Config{});
  const NodeId leaver = h.engine.virtual_ring().station_at(3);
  ASSERT_TRUE(h.engine.request_leave(leaver).ok());
  h.engine.run_slots(500);
  EXPECT_FALSE(h.engine.virtual_ring().contains(leaver));
  EXPECT_EQ(h.engine.virtual_ring().size(), 7u);
  EXPECT_EQ(h.engine.stats().leaves_completed, 1u);
  // Graceful exit requires neither loss detection nor rebuild.
  EXPECT_EQ(h.engine.stats().sat_losses_detected, 0u);
  EXPECT_EQ(h.engine.stats().ring_rebuilds, 0u);
  // The SAT keeps circulating in the smaller ring.
  const auto rounds_before = h.engine.stats().sat_rounds;
  h.engine.run_slots(100);
  EXPECT_GT(h.engine.stats().sat_rounds, rounds_before);
}

TEST(Leave, RejectsUnknownAndTinyRings) {
  Harness h(8, Config{});
  EXPECT_FALSE(h.engine.request_leave(77).ok());
  Harness tiny(3, Config{});
  const auto status =
      tiny.engine.request_leave(tiny.engine.virtual_ring().station_at(0));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, util::Error::Code::kNoRingPossible);
}

TEST(SatLoss, TransientDropDetectedWithinBound) {
  Harness h(8, Config{});
  h.engine.run_slots(100);
  h.engine.drop_sat_once();
  h.engine.run_slots(2 * analysis::sat_time_bound(h.engine.ring_params()) +
                     50);
  const auto& stats = h.engine.stats();
  EXPECT_EQ(stats.sat_losses_detected, 1u);
  ASSERT_EQ(stats.sat_loss_detection_slots.count(), 1u);
  // Detection within SAT_TIME (the Theorem-1 bound).
  EXPECT_LE(stats.sat_loss_detection_slots.max(),
            static_cast<double>(
                analysis::sat_time_bound(h.engine.ring_params())));
}

TEST(SatLoss, TransientDropRecoversByCutOut) {
  // Paper behaviour: the detector blames its predecessor, which gets cut
  // out even though it is healthy; the ring survives with N-1 stations and
  // the SAT keeps circulating.
  Harness h(8, Config{});
  h.engine.run_slots(100);
  h.engine.drop_sat_once();
  h.engine.run_slots(3 * analysis::sat_time_bound(h.engine.ring_params()));
  const auto& stats = h.engine.stats();
  EXPECT_EQ(stats.sat_recoveries, 1u);
  EXPECT_EQ(stats.ring_rebuilds, 0u);
  EXPECT_EQ(h.engine.virtual_ring().size(), 7u);
  const auto rounds = stats.sat_rounds;
  h.engine.run_slots(100);
  EXPECT_GT(h.engine.stats().sat_rounds, rounds);
}

TEST(SatLoss, DeadStationCutOutByRecovery) {
  Harness h(8, Config{});
  h.engine.run_slots(50);
  const NodeId victim = h.engine.virtual_ring().station_at(4);
  h.engine.kill_station(victim);
  h.engine.run_slots(4 * analysis::sat_time_bound(h.engine.ring_params()));
  const auto& stats = h.engine.stats();
  EXPECT_GE(stats.sat_losses_detected, 1u);
  EXPECT_FALSE(h.engine.virtual_ring().contains(victim));
  EXPECT_EQ(h.engine.virtual_ring().size(), 7u);
  EXPECT_TRUE(h.engine.virtual_ring().valid_over(h.topology));
  // Recovery, not a full rebuild: i-1 could reach i+1 (2-hop range).
  EXPECT_EQ(stats.ring_rebuilds, 0u);
  EXPECT_EQ(stats.sat_recoveries, 1u);
}

TEST(SatLoss, RebuildAttemptedWhenCutOutImpossible) {
  // Range restricted to ~1 hop: after killing a station, i-1 cannot reach
  // i+1, so the SAT_REC cannot bridge the gap and the full re-formation
  // procedure runs (Section 2.5 last paragraph).  On this 1-hop circle the
  // survivors form a path, so no replacement ring exists and the network
  // stays down — the engine keeps retrying the re-formation.
  Harness h(12, Config{}, 1, 1.2);
  h.engine.run_slots(50);
  const NodeId victim = h.engine.virtual_ring().station_at(6);
  h.engine.kill_station(victim);
  const auto bound = analysis::sat_time_bound(h.engine.ring_params());
  h.engine.run_slots(8 * bound + 200);
  const auto& stats = h.engine.stats();
  EXPECT_GE(stats.ring_rebuilds, 1u);
  EXPECT_EQ(stats.sat_recoveries, 0u);
  EXPECT_EQ(h.engine.sat_state(), SatState::kRebuilding);
}

TEST(SatLoss, RebuildRecruitsOnlyReachableComponent) {
  // A station that wandered far away is excluded from the re-formed ring.
  Harness h(8, Config{});
  h.engine.run_slots(50);
  const NodeId wanderer = h.engine.virtual_ring().station_at(4);
  h.topology.set_position(wanderer, {500.0, 500.0});
  h.engine.run_slots(10 * analysis::sat_time_bound(h.engine.ring_params()));
  EXPECT_FALSE(h.engine.virtual_ring().contains(wanderer));
  EXPECT_EQ(h.engine.virtual_ring().size(), 7u);
}

TEST(SatLoss, TrafficSurvivesRecovery) {
  Harness h(8, Config{});
  for (NodeId n = 0; n < 8; ++n) {
    h.engine.add_source(rt_flow(n, n, 8, 32.0));
  }
  h.engine.run_slots(300);
  const NodeId victim = h.engine.virtual_ring().station_at(2);
  h.engine.kill_station(victim);
  h.engine.run_slots(4 * analysis::sat_time_bound(h.engine.ring_params()));
  const auto delivered_mid = h.engine.stats().sink.total_delivered();
  h.engine.run_slots(1000);
  // Surviving stations' flows keep flowing after the cut-out.
  EXPECT_GT(h.engine.stats().sink.total_delivered(), delivered_mid + 20);
}

TEST(SatLoss, RecoveryFasterThanTptReactionBound) {
  // Section 3.3: SAT_TIME < D = 2 TTRT under equal reserved bandwidth.
  Config config;
  config.default_quota = {1, 1};
  Harness h(10, config);
  h.engine.run_slots(100);
  h.engine.drop_sat_once();
  const auto params = h.engine.ring_params();
  h.engine.run_slots(4 * analysis::sat_time_bound(params));
  ASSERT_EQ(h.engine.stats().sat_recoveries, 1u);
  analysis::TptParams tpt;
  tpt.h_sync_slots.assign(10, 2);  // same reserved bandwidth l + k = 2
  tpt.t_proc_plus_prop_slots = 1.0;
  tpt.ttrt_slots = analysis::sat_time_bound(params);  // generous for TPT
  EXPECT_LT(h.engine.stats().sat_loss_detection_slots.max(),
            static_cast<double>(analysis::tpt_reaction_bound(tpt)));
}

}  // namespace
}  // namespace wrt::wrtring
