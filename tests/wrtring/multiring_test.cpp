#include "wrtring/multiring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <tuple>

namespace wrt::wrtring {
namespace {

bool is_unserved(const MultiRingCoordinator& coordinator, NodeId node) {
  return std::find(coordinator.unserved().begin(),
                   coordinator.unserved().end(),
                   node) != coordinator.unserved().end();
}

/// Bookkeeping invariant: every station is in exactly one of {a ring,
/// unserved(), dead}, ring_of agrees with the engines' own membership, and
/// coverage() matches a from-scratch recount.
void expect_bookkeeping_consistent(MultiRingCoordinator& coordinator,
                                   const phy::Topology& topology) {
  std::size_t alive = 0;
  std::size_t served = 0;
  for (NodeId node = 0; node < topology.node_count(); ++node) {
    if (topology.alive(node)) ++alive;
    Engine* engine = coordinator.ring_of(node);
    if (engine != nullptr) {
      ++served;
      EXPECT_TRUE(engine->virtual_ring().contains(node)) << "node " << node;
      EXPECT_FALSE(is_unserved(coordinator, node)) << "node " << node;
    } else {
      for (std::size_t r = 0; r < coordinator.ring_count(); ++r) {
        EXPECT_FALSE(coordinator.ring(r).virtual_ring().contains(node))
            << "ring " << r << " claims node " << node
            << " behind ring_of's back";
      }
      EXPECT_EQ(is_unserved(coordinator, node), topology.alive(node))
          << "node " << node;
    }
  }
  if (alive > 0) {
    EXPECT_DOUBLE_EQ(coordinator.coverage(),
                     static_cast<double>(served) / static_cast<double>(alive));
  }
}

/// Two separate 6-station circles, far apart.
phy::Topology two_islands() {
  std::vector<phy::Vec2> positions = phy::placement::circle(6, 10.0);
  const auto second = phy::placement::circle(6, 10.0, {200.0, 0.0});
  positions.insert(positions.end(), second.begin(), second.end());
  const double chord = 2.0 * 10.0 * std::sin(std::numbers::pi / 6.0);
  return phy::Topology(positions, phy::RadioParams{chord * 2.2, 0.0});
}

TEST(MultiRing, OneRingPerIsland) {
  phy::Topology topology = two_islands();
  MultiRingCoordinator coordinator(&topology, Config{}, 1);
  ASSERT_TRUE(coordinator.init().ok());
  EXPECT_EQ(coordinator.ring_count(), 2u);
  EXPECT_TRUE(coordinator.unserved().empty());
  EXPECT_DOUBLE_EQ(coordinator.coverage(), 1.0);
}

TEST(MultiRing, RingsRunIndependently) {
  phy::Topology topology = two_islands();
  MultiRingCoordinator coordinator(&topology, Config{}, 1);
  ASSERT_TRUE(coordinator.init().ok());
  // One flow inside each island.
  for (std::size_t r = 0; r < 2; ++r) {
    auto& engine = coordinator.ring(r);
    traffic::Packet p;
    p.flow = static_cast<FlowId>(r + 1);
    p.cls = TrafficClass::kRealTime;
    p.src = engine.virtual_ring().station_at(0);
    p.dst = engine.virtual_ring().station_at(2);
    p.created = engine.now();
    ASSERT_TRUE(engine.inject_packet(p));
  }
  coordinator.run_slots(100);
  EXPECT_EQ(coordinator.total_delivered(), 2u);
  // SATs circulate in both rings.
  EXPECT_GT(coordinator.ring(0).stats().sat_rounds, 2u);
  EXPECT_GT(coordinator.ring(1).stats().sat_rounds, 2u);
}

TEST(MultiRing, RingOfLocatesMembers) {
  phy::Topology topology = two_islands();
  MultiRingCoordinator coordinator(&topology, Config{}, 1);
  ASSERT_TRUE(coordinator.init().ok());
  Engine* first = coordinator.ring_of(0);
  Engine* second = coordinator.ring_of(7);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_NE(first, second);
  EXPECT_EQ(coordinator.ring_of(999), nullptr);
}

TEST(MultiRing, PeelsUnringableAppendage) {
  // A 6-circle plus a pendant station that reaches only one member: the
  // paper's "can reach only one station" case — it must end up unserved
  // while the circle still rings.
  std::vector<phy::Vec2> positions = phy::placement::circle(6, 10.0);
  const double chord = 2.0 * 10.0 * std::sin(std::numbers::pi / 6.0);
  const phy::Vec2 p0 = positions[0];
  positions.push_back({p0.x * 1.0 + chord * 1.8, p0.y});
  phy::Topology topology(positions, phy::RadioParams{chord * 2.2, 0.0});
  const NodeId pendant = 6;
  // Premise check: the pendant reaches at most 2 stations but cannot be on
  // a cycle if its neighbours are not helpful; the coordinator must still
  // serve the 6-circle.
  MultiRingCoordinator coordinator(&topology, Config{}, 1);
  ASSERT_TRUE(coordinator.init().ok());
  ASSERT_GE(coordinator.ring_count(), 1u);
  EXPECT_GE(coordinator.ring(0).virtual_ring().size(), 5u);
  const bool pendant_served = coordinator.ring_of(pendant) != nullptr;
  const bool pendant_unserved =
      std::find(coordinator.unserved().begin(), coordinator.unserved().end(),
                pendant) != coordinator.unserved().end();
  EXPECT_TRUE(pendant_served || pendant_unserved);
  EXPECT_GT(coordinator.coverage(), 0.8);
}

TEST(MultiRing, AllIsolatedMeansNoRing) {
  std::vector<phy::Vec2> positions{{0, 0}, {100, 0}, {200, 0}};
  phy::Topology topology(positions, phy::RadioParams{5.0, 0.0});
  MultiRingCoordinator coordinator(&topology, Config{}, 1);
  const auto status = coordinator.init();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, util::Error::Code::kNoRingPossible);
  EXPECT_EQ(coordinator.unserved().size(), 3u);
}

TEST(MultiRing, FailureInOneRingDoesNotTouchTheOther) {
  phy::Topology topology = two_islands();
  MultiRingCoordinator coordinator(&topology, Config{}, 1);
  ASSERT_TRUE(coordinator.init().ok());
  coordinator.run_slots(100);
  auto& victim_ring = coordinator.ring(0);
  const NodeId victim = victim_ring.virtual_ring().station_at(2);
  victim_ring.kill_station(victim);
  coordinator.run_slots(2000);
  EXPECT_EQ(victim_ring.virtual_ring().size(), 5u);
  EXPECT_EQ(coordinator.ring(1).virtual_ring().size(), 6u);
  EXPECT_EQ(coordinator.ring(1).stats().sat_losses_detected, 0u);
}

TEST(MultiRing, MemberScopedRebuildStaysInIsland) {
  phy::Topology topology = two_islands();
  MultiRingCoordinator coordinator(&topology, Config{}, 1);
  ASSERT_TRUE(coordinator.init().ok());
  // Force ring 0 into a full re-formation by making the cut-out
  // impossible: kill two adjacent stations.
  auto& ring0 = coordinator.ring(0);
  coordinator.run_slots(50);
  const NodeId a = ring0.virtual_ring().station_at(1);
  const NodeId b = ring0.virtual_ring().station_at(2);
  ring0.kill_station(a);
  ring0.kill_station(b);
  coordinator.run_slots(6000);
  // Whatever ring 0 rebuilt, it never absorbed island-2 stations.
  for (std::size_t p = 0; p < ring0.virtual_ring().size(); ++p) {
    EXPECT_LT(ring0.virtual_ring().station_at(p), 6u);
  }
}

// -- Churn bookkeeping (PR 8) -----------------------------------------------
//
// ring_of / unserved() / coverage() must stay consistent while rings churn
// underneath the coordinator: graceful leaves, rejoins, wedged stations cut
// out and recruited back, and outright deaths.

TEST(MultiRing, LeaveThenRejoinKeepsBookkeepingConsistent) {
  phy::Topology topology = two_islands();
  Config config;
  config.rap_policy = RapPolicy::kRotating;
  MultiRingCoordinator coordinator(&topology, config, 1);
  ASSERT_TRUE(coordinator.init().ok());
  coordinator.run_slots(100);
  expect_bookkeeping_consistent(coordinator, topology);

  Engine& ring0 = coordinator.ring(0);
  const NodeId victim = ring0.virtual_ring().station_at(2);
  ASSERT_TRUE(ring0.request_leave(victim).ok());
  coordinator.run_slots(2000);
  ASSERT_EQ(ring0.virtual_ring().size(), 5u);
  EXPECT_EQ(coordinator.ring_of(victim), nullptr);
  EXPECT_TRUE(is_unserved(coordinator, victim));
  EXPECT_LT(coordinator.coverage(), 1.0);
  expect_bookkeeping_consistent(coordinator, topology);

  ring0.request_join(victim, {1, 1});
  coordinator.run_slots(4000);
  ASSERT_EQ(ring0.virtual_ring().size(), 6u);
  EXPECT_EQ(coordinator.ring_of(victim), &ring0);
  EXPECT_FALSE(is_unserved(coordinator, victim));
  EXPECT_DOUBLE_EQ(coordinator.coverage(), 1.0);
  expect_bookkeeping_consistent(coordinator, topology);
}

TEST(MultiRing, StallSplitsAndAutoRejoinRemerges) {
  phy::Topology topology = two_islands();
  Config config;
  config.rap_policy = RapPolicy::kRotating;
  config.auto_rejoin = true;
  MultiRingCoordinator coordinator(&topology, config, 1);
  ASSERT_TRUE(coordinator.init().ok());
  coordinator.run_slots(100);

  // Wedge a station: the ring cuts it out (membership splits) while it
  // stays alive in the topology, so it must surface as unserved.
  Engine& ring0 = coordinator.ring(0);
  const NodeId wedged = ring0.virtual_ring().station_at(3);
  ring0.stall_station(wedged);
  coordinator.run_slots(3000);
  ASSERT_EQ(ring0.virtual_ring().size(), 5u);
  EXPECT_EQ(coordinator.ring_of(wedged), nullptr);
  EXPECT_TRUE(is_unserved(coordinator, wedged));
  expect_bookkeeping_consistent(coordinator, topology);

  // Un-wedge: auto_rejoin recruits it back through the normal RAP join and
  // the membership callback re-merges the bookkeeping.
  ring0.resume_station(wedged);
  coordinator.run_slots(4000);
  ASSERT_EQ(ring0.virtual_ring().size(), 6u);
  EXPECT_EQ(coordinator.ring_of(wedged), &ring0);
  EXPECT_FALSE(is_unserved(coordinator, wedged));
  EXPECT_DOUBLE_EQ(coordinator.coverage(), 1.0);
  expect_bookkeeping_consistent(coordinator, topology);
}

TEST(MultiRing, DeadStationsLeaveTheBookkeepingEntirely) {
  phy::Topology topology = two_islands();
  MultiRingCoordinator coordinator(&topology, Config{}, 1);
  ASSERT_TRUE(coordinator.init().ok());
  coordinator.run_slots(100);

  Engine& ring0 = coordinator.ring(0);
  const NodeId victim = ring0.virtual_ring().station_at(2);
  ring0.kill_station(victim);
  coordinator.run_slots(2000);
  ASSERT_EQ(ring0.virtual_ring().size(), 5u);
  EXPECT_EQ(coordinator.ring_of(victim), nullptr);
  // Dead, not unserved: unserved() means "alive but in no ring", and
  // coverage() likewise ignores the dead.
  EXPECT_FALSE(is_unserved(coordinator, victim));
  EXPECT_DOUBLE_EQ(coordinator.coverage(), 1.0);
  expect_bookkeeping_consistent(coordinator, topology);
}

TEST(MultiRing, RingSeedIsAnchoredOnMembershipNotDiscoveryOrder) {
  // The same 6-circle over nodes {6..11} in two worlds that differ only in
  // what the OTHER six nodes do: a second ring-able island (world A) vs six
  // isolated stragglers (world B).  The circle is the second engine
  // discovered in A and the first in B; under the old discovery-order
  // seeding (seed + engines_.size() * 7919) its RNG stream — and with
  // channel loss enabled, every loss draw — would differ between worlds.
  // Anchoring the per-ring seed on the smallest member id makes the two
  // runs bit-identical.
  const double chord = 2.0 * 10.0 * std::sin(std::numbers::pi / 6.0);
  const auto circle = phy::placement::circle(6, 10.0, {200.0, 0.0});

  std::vector<phy::Vec2> world_a = phy::placement::circle(6, 10.0);
  world_a.insert(world_a.end(), circle.begin(), circle.end());
  std::vector<phy::Vec2> world_b;
  for (int i = 0; i < 6; ++i) {
    world_b.push_back({1000.0 + 100.0 * i, 500.0});  // isolated stragglers
  }
  world_b.insert(world_b.end(), circle.begin(), circle.end());

  Config config;
  config.frame_loss_prob = 0.05;  // make the RNG stream observable

  const auto run = [&](const std::vector<phy::Vec2>& positions) {
    phy::Topology topology(positions, phy::RadioParams{chord * 2.2, 0.0});
    MultiRingCoordinator coordinator(&topology, config, 1234);
    EXPECT_TRUE(coordinator.init().ok());
    Engine* engine = coordinator.ring_of(6);
    EXPECT_NE(engine, nullptr);
    traffic::FlowSpec spec;
    spec.id = 77;
    spec.src = 6;
    spec.dst = 9;
    spec.cls = TrafficClass::kBestEffort;
    engine->add_saturated_source(spec, /*backlog=*/4);
    coordinator.run_slots(600);
    return std::tuple{engine->stats().data_transmissions,
                      engine->stats().frames_lost_link,
                      engine->stats().sink.total_delivered()};
  };
  EXPECT_EQ(run(world_a), run(world_b));
}

}  // namespace
}  // namespace wrt::wrtring
