#include "wrtring/multiring.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace wrt::wrtring {
namespace {

/// Two separate 6-station circles, far apart.
phy::Topology two_islands() {
  std::vector<phy::Vec2> positions = phy::placement::circle(6, 10.0);
  const auto second = phy::placement::circle(6, 10.0, {200.0, 0.0});
  positions.insert(positions.end(), second.begin(), second.end());
  const double chord = 2.0 * 10.0 * std::sin(std::numbers::pi / 6.0);
  return phy::Topology(positions, phy::RadioParams{chord * 2.2, 0.0});
}

TEST(MultiRing, OneRingPerIsland) {
  phy::Topology topology = two_islands();
  MultiRingCoordinator coordinator(&topology, Config{}, 1);
  ASSERT_TRUE(coordinator.init().ok());
  EXPECT_EQ(coordinator.ring_count(), 2u);
  EXPECT_TRUE(coordinator.unserved().empty());
  EXPECT_DOUBLE_EQ(coordinator.coverage(), 1.0);
}

TEST(MultiRing, RingsRunIndependently) {
  phy::Topology topology = two_islands();
  MultiRingCoordinator coordinator(&topology, Config{}, 1);
  ASSERT_TRUE(coordinator.init().ok());
  // One flow inside each island.
  for (std::size_t r = 0; r < 2; ++r) {
    auto& engine = coordinator.ring(r);
    traffic::Packet p;
    p.flow = static_cast<FlowId>(r + 1);
    p.cls = TrafficClass::kRealTime;
    p.src = engine.virtual_ring().station_at(0);
    p.dst = engine.virtual_ring().station_at(2);
    p.created = engine.now();
    ASSERT_TRUE(engine.inject_packet(p));
  }
  coordinator.run_slots(100);
  EXPECT_EQ(coordinator.total_delivered(), 2u);
  // SATs circulate in both rings.
  EXPECT_GT(coordinator.ring(0).stats().sat_rounds, 2u);
  EXPECT_GT(coordinator.ring(1).stats().sat_rounds, 2u);
}

TEST(MultiRing, RingOfLocatesMembers) {
  phy::Topology topology = two_islands();
  MultiRingCoordinator coordinator(&topology, Config{}, 1);
  ASSERT_TRUE(coordinator.init().ok());
  Engine* first = coordinator.ring_of(0);
  Engine* second = coordinator.ring_of(7);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_NE(first, second);
  EXPECT_EQ(coordinator.ring_of(999), nullptr);
}

TEST(MultiRing, PeelsUnringableAppendage) {
  // A 6-circle plus a pendant station that reaches only one member: the
  // paper's "can reach only one station" case — it must end up unserved
  // while the circle still rings.
  std::vector<phy::Vec2> positions = phy::placement::circle(6, 10.0);
  const double chord = 2.0 * 10.0 * std::sin(std::numbers::pi / 6.0);
  const phy::Vec2 p0 = positions[0];
  positions.push_back({p0.x * 1.0 + chord * 1.8, p0.y});
  phy::Topology topology(positions, phy::RadioParams{chord * 2.2, 0.0});
  const NodeId pendant = 6;
  // Premise check: the pendant reaches at most 2 stations but cannot be on
  // a cycle if its neighbours are not helpful; the coordinator must still
  // serve the 6-circle.
  MultiRingCoordinator coordinator(&topology, Config{}, 1);
  ASSERT_TRUE(coordinator.init().ok());
  ASSERT_GE(coordinator.ring_count(), 1u);
  EXPECT_GE(coordinator.ring(0).virtual_ring().size(), 5u);
  const bool pendant_served = coordinator.ring_of(pendant) != nullptr;
  const bool pendant_unserved =
      std::find(coordinator.unserved().begin(), coordinator.unserved().end(),
                pendant) != coordinator.unserved().end();
  EXPECT_TRUE(pendant_served || pendant_unserved);
  EXPECT_GT(coordinator.coverage(), 0.8);
}

TEST(MultiRing, AllIsolatedMeansNoRing) {
  std::vector<phy::Vec2> positions{{0, 0}, {100, 0}, {200, 0}};
  phy::Topology topology(positions, phy::RadioParams{5.0, 0.0});
  MultiRingCoordinator coordinator(&topology, Config{}, 1);
  const auto status = coordinator.init();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, util::Error::Code::kNoRingPossible);
  EXPECT_EQ(coordinator.unserved().size(), 3u);
}

TEST(MultiRing, FailureInOneRingDoesNotTouchTheOther) {
  phy::Topology topology = two_islands();
  MultiRingCoordinator coordinator(&topology, Config{}, 1);
  ASSERT_TRUE(coordinator.init().ok());
  coordinator.run_slots(100);
  auto& victim_ring = coordinator.ring(0);
  const NodeId victim = victim_ring.virtual_ring().station_at(2);
  victim_ring.kill_station(victim);
  coordinator.run_slots(2000);
  EXPECT_EQ(victim_ring.virtual_ring().size(), 5u);
  EXPECT_EQ(coordinator.ring(1).virtual_ring().size(), 6u);
  EXPECT_EQ(coordinator.ring(1).stats().sat_losses_detected, 0u);
}

TEST(MultiRing, MemberScopedRebuildStaysInIsland) {
  phy::Topology topology = two_islands();
  MultiRingCoordinator coordinator(&topology, Config{}, 1);
  ASSERT_TRUE(coordinator.init().ok());
  // Force ring 0 into a full re-formation by making the cut-out
  // impossible: kill two adjacent stations.
  auto& ring0 = coordinator.ring(0);
  coordinator.run_slots(50);
  const NodeId a = ring0.virtual_ring().station_at(1);
  const NodeId b = ring0.virtual_ring().station_at(2);
  ring0.kill_station(a);
  ring0.kill_station(b);
  coordinator.run_slots(6000);
  // Whatever ring 0 rebuilt, it never absorbed island-2 stations.
  for (std::size_t p = 0; p < ring0.virtual_ring().size(); ++p) {
    EXPECT_LT(ring0.virtual_ring().station_at(p), 6u);
  }
}

}  // namespace
}  // namespace wrt::wrtring
