#include "wrtring/station.hpp"

#include <gtest/gtest.h>

#include "wrtring/soa_kernel.hpp"

namespace wrt::wrtring {
namespace {

traffic::Packet make_packet(TrafficClass cls) {
  traffic::Packet p;
  p.cls = cls;
  p.src = 0;
  p.dst = 1;
  return p;
}

// Since the structure-of-arrays refactor a Station is a view into a
// SlotKernel; this fixture owns a single-slot kernel so the Send/SAT
// algorithm tests keep their standalone-station shape.
struct TestStation {
  SlotKernel kernel;
  explicit TestStation(Quota quota, std::uint32_t k1 = 0,
                       std::size_t capacity = 16) {
    kernel.configure(capacity);
    kernel.push_station(0, quota, k1, 0);
  }
  [[nodiscard]] Station view() { return Station(&kernel, 0); }
};

TEST(SendAlgorithm, RealTimeUpToQuota) {
  TestStation t({2, 1});
  Station s = t.view();
  for (int i = 0; i < 5; ++i) s.enqueue(make_packet(TrafficClass::kRealTime));
  // Rule 1: RT while RT_PCK < l.
  ASSERT_EQ(s.eligible_class(), TrafficClass::kRealTime);
  s.take_for_transmit(TrafficClass::kRealTime);
  ASSERT_EQ(s.eligible_class(), TrafficClass::kRealTime);
  s.take_for_transmit(TrafficClass::kRealTime);
  // Quota exhausted, only RT queued: nothing eligible.
  EXPECT_EQ(s.eligible_class(), std::nullopt);
  EXPECT_EQ(s.rt_pck(), 2u);
}

TEST(SendAlgorithm, NonRtGatedByRtQueue) {
  TestStation t({2, 2});
  Station s = t.view();
  s.enqueue(make_packet(TrafficClass::kRealTime));
  s.enqueue(make_packet(TrafficClass::kBestEffort));
  // Rule 2: BE only if RT queue empty or RT_PCK == l.  RT is pending and
  // quota not exhausted -> RT first.
  ASSERT_EQ(s.eligible_class(), TrafficClass::kRealTime);
  s.take_for_transmit(TrafficClass::kRealTime);
  // RT queue now empty -> BE allowed.
  EXPECT_EQ(s.eligible_class(), TrafficClass::kBestEffort);
}

TEST(SendAlgorithm, NonRtAllowedWhenRtQuotaExhausted) {
  TestStation t({1, 1});
  Station s = t.view();
  s.enqueue(make_packet(TrafficClass::kRealTime));
  s.enqueue(make_packet(TrafficClass::kRealTime));
  s.enqueue(make_packet(TrafficClass::kBestEffort));
  s.take_for_transmit(TrafficClass::kRealTime);
  // RT backlog remains but RT_PCK == l: rule 2 admits non-RT.
  EXPECT_EQ(s.eligible_class(), TrafficClass::kBestEffort);
}

TEST(SendAlgorithm, NonRtQuotaCaps) {
  TestStation t({1, 2});
  Station s = t.view();
  for (int i = 0; i < 4; ++i) s.enqueue(make_packet(TrafficClass::kBestEffort));
  s.take_for_transmit(TrafficClass::kBestEffort);
  s.take_for_transmit(TrafficClass::kBestEffort);
  EXPECT_EQ(s.eligible_class(), std::nullopt);
  EXPECT_EQ(s.nrt_pck(), 2u);
}

TEST(SendAlgorithm, AssuredBeforeBestEffort) {
  TestStation t({1, 2});
  Station s = t.view();
  s.enqueue(make_packet(TrafficClass::kBestEffort));
  s.enqueue(make_packet(TrafficClass::kAssured));
  EXPECT_EQ(s.eligible_class(), TrafficClass::kAssured);
}

TEST(SendAlgorithm, DiffservSplitReservesK1) {
  // k = 3 split as k1 = 2 (assured) + k2 = 1 (BE).
  TestStation t({0, 3}, 2);
  Station s = t.view();
  for (int i = 0; i < 3; ++i) s.enqueue(make_packet(TrafficClass::kBestEffort));
  // BE may use only k2 = 1 even though assured queue is empty.
  ASSERT_EQ(s.eligible_class(), TrafficClass::kBestEffort);
  s.take_for_transmit(TrafficClass::kBestEffort);
  EXPECT_EQ(s.eligible_class(), std::nullopt);
}

TEST(SendAlgorithm, DiffservSplitCapsAssured) {
  TestStation t({0, 3}, 2);
  Station s = t.view();
  for (int i = 0; i < 3; ++i) s.enqueue(make_packet(TrafficClass::kAssured));
  s.take_for_transmit(TrafficClass::kAssured);
  ASSERT_EQ(s.eligible_class(), TrafficClass::kAssured);
  s.take_for_transmit(TrafficClass::kAssured);
  // k1 = 2 exhausted; assured cannot eat into k2.
  EXPECT_EQ(s.eligible_class(), std::nullopt);
}

TEST(SendAlgorithm, SplitZeroMeansSharedK) {
  TestStation t({0, 2}, 0);
  Station s = t.view();
  s.enqueue(make_packet(TrafficClass::kAssured));
  s.enqueue(make_packet(TrafficClass::kBestEffort));
  s.take_for_transmit(TrafficClass::kAssured);
  EXPECT_EQ(s.eligible_class(), TrafficClass::kBestEffort);
}

TEST(SatAlgorithm, SatisfiedWhenRtQueueEmpty) {
  TestStation t({2, 1});
  Station s = t.view();
  EXPECT_TRUE(s.satisfied());
  s.enqueue(make_packet(TrafficClass::kBestEffort));
  EXPECT_TRUE(s.satisfied());  // BE backlog does not hold the SAT
}

TEST(SatAlgorithm, NotSatisfiedWithRtBacklog) {
  TestStation t({2, 1});
  Station s = t.view();
  s.enqueue(make_packet(TrafficClass::kRealTime));
  EXPECT_FALSE(s.satisfied());
}

TEST(SatAlgorithm, SatisfiedAfterQuotaTransmitted) {
  TestStation t({1, 1});
  Station s = t.view();
  s.enqueue(make_packet(TrafficClass::kRealTime));
  s.enqueue(make_packet(TrafficClass::kRealTime));
  s.take_for_transmit(TrafficClass::kRealTime);
  // Backlog remains but RT_PCK == l -> satisfied.
  EXPECT_TRUE(s.satisfied());
}

TEST(SatAlgorithm, ReleaseClearsCounters) {
  TestStation t({1, 1});
  Station s = t.view();
  s.enqueue(make_packet(TrafficClass::kRealTime));
  s.enqueue(make_packet(TrafficClass::kBestEffort));
  s.take_for_transmit(TrafficClass::kRealTime);
  s.take_for_transmit(TrafficClass::kBestEffort);
  EXPECT_EQ(s.rt_pck(), 1u);
  EXPECT_EQ(s.nrt_pck(), 1u);
  s.on_sat_release();
  EXPECT_EQ(s.rt_pck(), 0u);
  EXPECT_EQ(s.nrt_pck(), 0u);
}

TEST(StationQueues, CapacityDrops) {
  TestStation t({1, 1}, 0, 2);
  Station s = t.view();
  EXPECT_TRUE(s.enqueue(make_packet(TrafficClass::kRealTime)));
  EXPECT_TRUE(s.enqueue(make_packet(TrafficClass::kRealTime)));
  EXPECT_FALSE(s.enqueue(make_packet(TrafficClass::kRealTime)));
  EXPECT_EQ(s.queue_drops(), 1u);
  // Other class queues are independent.
  EXPECT_TRUE(s.enqueue(make_packet(TrafficClass::kBestEffort)));
}

TEST(StationQueues, DepthAndPeek) {
  TestStation t({1, 1});
  Station s = t.view();
  EXPECT_EQ(s.peek(TrafficClass::kRealTime), nullptr);
  traffic::Packet p = make_packet(TrafficClass::kRealTime);
  p.sequence = 77;
  s.enqueue(p);
  EXPECT_EQ(s.rt_queue_depth(), 1u);
  ASSERT_NE(s.peek(TrafficClass::kRealTime), nullptr);
  EXPECT_EQ(s.peek(TrafficClass::kRealTime)->sequence, 77u);
}

TEST(StationQueues, ClearQueues) {
  TestStation t({1, 1});
  Station s = t.view();
  s.enqueue(make_packet(TrafficClass::kRealTime));
  s.enqueue(make_packet(TrafficClass::kBestEffort));
  s.clear_queues();
  EXPECT_EQ(s.queue_depth(TrafficClass::kRealTime), 0u);
  EXPECT_EQ(s.queue_depth(TrafficClass::kBestEffort), 0u);
}

TEST(StationQueues, FifoWithinClass) {
  TestStation t({3, 0});
  Station s = t.view();
  for (std::uint64_t i = 0; i < 3; ++i) {
    traffic::Packet p = make_packet(TrafficClass::kRealTime);
    p.sequence = i;
    s.enqueue(p);
  }
  EXPECT_EQ(s.take_for_transmit(TrafficClass::kRealTime).sequence, 0u);
  EXPECT_EQ(s.take_for_transmit(TrafficClass::kRealTime).sequence, 1u);
  EXPECT_EQ(s.take_for_transmit(TrafficClass::kRealTime).sequence, 2u);
}

TEST(StationQueues, QuotaUpdate) {
  TestStation t({1, 1});
  Station s = t.view();
  s.set_quota({4, 2});
  EXPECT_EQ(s.quota(), (Quota{4, 2}));
}

TEST(StationQueues, ShrinkingQuotaClampsCounters) {
  // Regression (found by the invariant monkey): shrinking the quota below
  // the round's already-transmitted count must not strand the station in a
  // never-satisfied state where it would seize the SAT forever.
  TestStation t({3, 2});
  Station s = t.view();
  for (int i = 0; i < 5; ++i) s.enqueue(make_packet(TrafficClass::kRealTime));
  s.enqueue(make_packet(TrafficClass::kBestEffort));
  s.take_for_transmit(TrafficClass::kRealTime);
  s.take_for_transmit(TrafficClass::kRealTime);
  s.take_for_transmit(TrafficClass::kRealTime);  // RT_PCK = 3
  s.set_quota({1, 2});
  EXPECT_EQ(s.rt_pck(), 1u);
  EXPECT_TRUE(s.satisfied());              // RT_PCK == l, backlog or not
  EXPECT_EQ(s.eligible_class(), TrafficClass::kBestEffort);
}

TEST(StationQueues, ShrinkingKClampsSplit) {
  TestStation t({1, 4}, 3, 16);
  Station s = t.view();
  s.set_quota({1, 2});
  EXPECT_EQ(s.k1_assured(), 2u);
}

// Invariant sweep: a station can never authorize more than l + k packets
// between SAT releases (Section 2.2: "a station cannot transmit more than
// l + k packets" per round).
class QuotaSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(QuotaSweep, NeverExceedsLPlusK) {
  const auto [l, k] = GetParam();
  TestStation t({static_cast<std::uint32_t>(l),
                 static_cast<std::uint32_t>(k)});
  Station s = t.view();
  for (int i = 0; i < 3 * (l + k) + 4; ++i) {
    s.enqueue(make_packet(i % 2 == 0 ? TrafficClass::kRealTime
                                     : TrafficClass::kBestEffort));
  }
  int transmitted = 0;
  while (const auto cls = s.eligible_class()) {
    s.take_for_transmit(*cls);
    ++transmitted;
    ASSERT_LE(transmitted, l + k);
  }
  EXPECT_LE(transmitted, l + k);
  // After a release, a fresh round begins.
  s.on_sat_release();
  EXPECT_NE(s.eligible_class(), std::nullopt);
}

INSTANTIATE_TEST_SUITE_P(
    Quotas, QuotaSweep,
    ::testing::Combine(::testing::Values(1, 2, 5), ::testing::Values(0, 1, 4)));

}  // namespace
}  // namespace wrt::wrtring
