#include "wrtring/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/wrtring/test_helpers.hpp"

namespace wrt::wrtring {
namespace {

using testing::Harness;

bool log_contains(const std::vector<Scenario::LogEntry>& log,
                  const std::string& needle) {
  return std::any_of(log.begin(), log.end(),
                     [&](const Scenario::LogEntry& entry) {
                       return entry.what.find(needle) != std::string::npos;
                     });
}

TEST(Scenario, AppliesActionsAtScriptedSlots) {
  Harness h(10, Config{});
  Scenario scenario;
  scenario.kill_at(200, h.engine.virtual_ring().station_at(4))
      .mark_at(100, "checkpoint");
  const auto log = scenario.run(h.engine, h.topology, 2000);
  ASSERT_TRUE(log_contains(log, "kill station"));
  ASSERT_TRUE(log_contains(log, "checkpoint"));
  // The marker fired before the kill despite insertion order.
  const auto mark = std::find_if(log.begin(), log.end(),
                                 [](const auto& e) {
                                   return e.what == "checkpoint";
                                 });
  const auto kill = std::find_if(log.begin(), log.end(), [](const auto& e) {
    return e.what.find("kill") != std::string::npos;
  });
  ASSERT_NE(mark, log.end());
  ASSERT_NE(kill, log.end());
  EXPECT_LT(mark->slot, kill->slot);
  // The automatic ring-size entry follows the recovery.
  EXPECT_TRUE(log_contains(log, "ring shrank"));
  EXPECT_EQ(h.engine.virtual_ring().size(), 9u);
}

TEST(Scenario, JoinScript) {
  Config config;
  config.rap_policy = RapPolicy::kRotating;
  Harness h(6, config);
  const phy::Vec2 mid =
      (h.topology.position(0) + h.topology.position(1)) * 0.5;
  const NodeId joiner = h.topology.add_node(mid);
  Scenario scenario;
  scenario.join_at(50, joiner, {1, 1});
  const auto log = scenario.run(h.engine, h.topology, 12000);
  EXPECT_TRUE(log_contains(log, "join request"));
  EXPECT_TRUE(log_contains(log, "ring grew"));
  EXPECT_TRUE(h.engine.virtual_ring().contains(joiner));
}

TEST(Scenario, LeaveRefusalIsLogged) {
  Harness h(3, Config{});
  Scenario scenario;
  scenario.leave_at(10, h.engine.virtual_ring().station_at(0));
  const auto log = scenario.run(h.engine, h.topology, 100);
  EXPECT_TRUE(log_contains(log, "leave refused"));
  EXPECT_EQ(h.engine.virtual_ring().size(), 3u);
}

TEST(Scenario, LinkFailureAndRestore) {
  Harness h(8, Config{});
  const NodeId a = h.engine.virtual_ring().station_at(1);
  const NodeId b = h.engine.virtual_ring().station_at(2);
  Scenario scenario;
  scenario.fail_link_at(100, a, b).restore_link_at(150, a, b);
  const auto log = scenario.run(h.engine, h.topology, 1500);
  EXPECT_TRUE(log_contains(log, "fail link"));
  EXPECT_TRUE(log_contains(log, "restore link"));
  EXPECT_TRUE(h.topology.reachable(a, b));
}

TEST(Scenario, DropSatTimeline) {
  Harness h(8, Config{});
  Scenario scenario;
  scenario.drop_sat_at(100);
  const auto log = scenario.run(h.engine, h.topology, 2000);
  EXPECT_TRUE(log_contains(log, "drop SAT"));
  EXPECT_EQ(h.engine.stats().sat_losses_detected, 1u);
}

TEST(Scenario, LogCarriesRingStateSnapshots) {
  Harness h(8, Config{});
  Scenario scenario;
  scenario.mark_at(10, "snap");
  const auto log = scenario.run(h.engine, h.topology, 100);
  const auto snap = std::find_if(log.begin(), log.end(), [](const auto& e) {
    return e.what == "snap";
  });
  ASSERT_NE(snap, log.end());
  EXPECT_EQ(snap->ring_size, 8u);
}

TEST(Scenario, MobilityHookRuns) {
  Harness h(8, Config{}, 1, 3.0);
  phy::WaypointParams params;
  params.leash_radius = 0.3;
  params.slot_seconds = 1e-3;
  phy::BoundedRandomWaypoint mobility(phy::Rect{{-30, -30}, {30, 30}},
                                      params, 3);
  mobility.bind(h.topology);
  const phy::Vec2 before = h.topology.position(0);
  Scenario scenario;
  (void)scenario.run(h.engine, h.topology, 20000, &mobility, 50);
  // Tight leash: ring survives; position drifted at least a little.
  EXPECT_EQ(h.engine.virtual_ring().size(), 8u);
  const double moved = phy::distance(h.topology.position(0), before);
  EXPECT_GT(moved, 0.0);
  EXPECT_LE(moved, 0.3 + 1e-6);
}

TEST(Scenario, FlapExpandsIntoBreakHealPairsPerCycle) {
  Harness h(8, Config{});
  Scenario scenario;
  scenario.flap_link_at(100, 0, 1, /*period_slots=*/40, /*duty_pct=*/25,
                        /*cycles=*/3);
  const auto log = scenario.run(h.engine, h.topology, 400);
  std::size_t fails = 0;
  std::size_t restores = 0;
  std::int64_t first_fail = -1;
  std::int64_t first_restore = -1;
  for (const Scenario::LogEntry& entry : log) {
    if (entry.what == "fail link 0-1") {
      if (fails == 0) first_fail = entry.slot;
      ++fails;
    }
    if (entry.what == "restore link 0-1") {
      if (restores == 0) first_restore = entry.slot;
      ++restores;
    }
  }
  // One break/heal pair per cycle; down for period * duty / 100 slots.
  EXPECT_EQ(fails, 3u);
  EXPECT_EQ(restores, 3u);
  EXPECT_EQ(first_fail, 100);
  EXPECT_EQ(first_restore, 110);
}

TEST(Scenario, ForcedSwitchScriptHoldsAndReleasesStation) {
  Config config;
  config.rap_policy = RapPolicy::kRotating;
  config.auto_rejoin = true;
  Harness h(8, config);
  const NodeId victim = h.engine.virtual_ring().station_at(4);
  Scenario scenario;
  scenario.force_switch_at(100, victim).clear_switch_at(2000, victim);
  const auto log = scenario.run(h.engine, h.topology, 12000);
  EXPECT_TRUE(log_contains(log, "force switch station"));
  EXPECT_TRUE(log_contains(log, "clear forced switch station"));
  // Forced out via graceful leave, re-admitted after the clear (wtb = 0).
  EXPECT_TRUE(log_contains(log, "ring shrank"));
  EXPECT_TRUE(h.engine.virtual_ring().contains(victim));
  EXPECT_EQ(h.engine.virtual_ring().size(), 8u);
}

}  // namespace
}  // namespace wrt::wrtring
