#include "wrtring/engine.hpp"

#include <gtest/gtest.h>

#include "analysis/bounds.hpp"
#include "tests/wrtring/test_helpers.hpp"

namespace wrt::wrtring {
namespace {

using testing::Harness;
using testing::be_flow;
using testing::circle_topology;
using testing::rt_flow;

TEST(EngineInit, BuildsRingAndCodes) {
  Harness h(8, Config{});
  EXPECT_EQ(h.engine.virtual_ring().size(), 8u);
  EXPECT_TRUE(cdma::verify_two_hop_distinct(h.topology, h.engine.codes()));
}

TEST(EngineInit, FailsWithoutRing) {
  // A star has no Hamiltonian cycle.
  phy::Topology star({{0, 0}, {10, 0}, {-10, 0}, {0, 10}},
                     phy::RadioParams{11.0, 0.0});
  Engine engine(&star, Config{}, 1);
  const auto status = engine.init();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, util::Error::Code::kNoRingPossible);
}

TEST(EngineIdle, SatCirculatesAtRingLatency) {
  Harness h(10, Config{});
  h.engine.run_slots(200);
  // With no traffic, every rotation takes exactly S = N slots (hop = 1).
  const auto& rotation = h.engine.stats().sat_rotation_slots;
  ASSERT_GT(rotation.count(), 0u);
  EXPECT_DOUBLE_EQ(rotation.min(), 10.0);
  EXPECT_DOUBLE_EQ(rotation.max(), 10.0);
  EXPECT_EQ(h.engine.sat_state(), SatState::kInTransit);
}

TEST(EngineIdle, HopsPerRoundEqualsN) {
  Harness h(12, Config{});
  h.engine.run_slots(12 * 20);
  const auto& stats = h.engine.stats();
  ASSERT_GT(stats.sat_rounds, 0u);
  EXPECT_NEAR(static_cast<double>(stats.sat_hops) /
                  static_cast<double>(stats.sat_rounds),
              12.0, 0.5);
}

TEST(EngineDelivery, SingleHopPacket) {
  Harness h(6, Config{});
  traffic::Packet p;
  p.flow = 1;
  p.cls = TrafficClass::kBestEffort;
  p.src = h.engine.virtual_ring().station_at(0);
  p.dst = h.engine.virtual_ring().station_at(1);
  p.created = h.engine.now();
  ASSERT_TRUE(h.engine.inject_packet(p));
  h.engine.run_slots(20);
  EXPECT_EQ(h.engine.stats().sink.total_delivered(), 1u);
}

TEST(EngineDelivery, MultiHopTakesRingPath) {
  Harness h(8, Config{});
  traffic::Packet p;
  p.flow = 1;
  p.cls = TrafficClass::kRealTime;
  p.src = h.engine.virtual_ring().station_at(0);
  p.dst = h.engine.virtual_ring().station_at(5);
  p.created = h.engine.now();
  ASSERT_TRUE(h.engine.inject_packet(p));
  h.engine.run_slots(40);
  const auto& sink = h.engine.stats().sink;
  ASSERT_EQ(sink.total_delivered(), 1u);
  // 5 hops minimum (injection + 5 link crossings).
  EXPECT_GE(sink.by_class(TrafficClass::kRealTime).delay_slots.min(), 5.0);
}

TEST(EngineDelivery, InjectIntoUnknownStationFails) {
  Harness h(6, Config{});
  traffic::Packet p;
  p.src = 99;
  p.dst = 0;
  EXPECT_FALSE(h.engine.inject_packet(p));
}

TEST(EngineDelivery, CbrFlowDeliversEverything) {
  Harness h(8, Config{});
  auto spec = rt_flow(1, 0, 8, 16.0);
  h.engine.add_source(spec);
  h.engine.run_slots(2000);
  const auto& sink = h.engine.stats().sink;
  // ~125 packets generated; all but the in-flight tail must arrive.
  EXPECT_GT(sink.total_delivered(), 115u);
  EXPECT_EQ(sink.by_class(TrafficClass::kRealTime).deadline_misses, 0u);
}

TEST(EngineQuota, StationNeverExceedsLPlusKPerRound) {
  Config config;
  config.default_quota = {2, 1};
  Harness h(6, config);
  // Saturate every station with both classes.
  for (NodeId n = 0; n < 6; ++n) {
    auto rt = rt_flow(n * 2, n, 6);
    auto be = be_flow(n * 2 + 1, n, 6);
    h.engine.add_saturated_source(rt, 8);
    h.engine.add_saturated_source(be, 8);
  }
  h.engine.run_slots(3000);
  const auto& stats = h.engine.stats();
  ASSERT_GT(stats.sat_rounds, 10u);
  // Global conservation: transmissions <= rounds * N * (l + k) + slack for
  // the partial current round.
  const double max_per_round = 6.0 * 3.0;
  EXPECT_LE(static_cast<double>(stats.data_transmissions),
            (static_cast<double>(stats.sat_rounds) + 2.0) * max_per_round);
}

TEST(EngineFairness, SaturatedStationsShareEvenly) {
  Config config;
  config.default_quota = {1, 1};
  Harness h(6, config);
  for (NodeId n = 0; n < 6; ++n) {
    h.engine.add_saturated_source(rt_flow(n, n, 6), 8);
  }
  h.engine.run_slots(5000);
  const auto& per_flow = h.engine.stats().sink.per_flow();
  ASSERT_EQ(per_flow.size(), 6u);
  std::uint64_t min_count = ~0ull, max_count = 0;
  for (const auto& [flow, stats] : per_flow) {
    min_count = std::min(min_count, stats.count());
    max_count = std::max(max_count, stats.count());
  }
  ASSERT_GT(min_count, 0u);
  // Fairness: no station gets more than ~15% above another.
  EXPECT_LT(static_cast<double>(max_count) / static_cast<double>(min_count),
            1.15);
}

TEST(EngineRotation, SaturationApproachesProposition3) {
  Config config;
  config.default_quota = {1, 1};
  Harness h(8, config);
  for (NodeId n = 0; n < 8; ++n) {
    h.engine.add_saturated_source(rt_flow(n, n, 8), 8);
    h.engine.add_saturated_source(be_flow(n + 8, n, 8), 8);
  }
  h.engine.run_slots(8000);
  const analysis::RingParams params = h.engine.ring_params();
  const auto expected =
      static_cast<double>(analysis::expected_sat_time(params));
  const double measured = h.engine.stats().sat_rotation_slots.mean();
  // Under full saturation the mean rotation is within the Prop-3 value
  // (which the paper derives as the limit bound).
  EXPECT_LE(measured, expected + 1.0);
  EXPECT_GE(measured, static_cast<double>(params.ring_latency_slots));
}

TEST(EngineRotation, Theorem1BoundHolds) {
  Config config;
  config.default_quota = {2, 1};
  Harness h(8, config);
  for (NodeId n = 0; n < 8; ++n) {
    h.engine.add_saturated_source(rt_flow(n, n, 8), 8);
    h.engine.add_saturated_source(be_flow(n + 8, n, 8), 8);
  }
  h.engine.run_slots(10000);
  const auto bound = static_cast<double>(
      analysis::sat_time_bound(h.engine.ring_params()));
  EXPECT_LT(h.engine.stats().sat_rotation_slots.max(), bound);
}

TEST(EngineRotation, RtPriorityBeatsBestEffort) {
  Config config;
  config.default_quota = {1, 1};
  Harness h(8, config);
  h.engine.add_saturated_source(rt_flow(1, 0, 8), 4);
  h.engine.add_saturated_source(be_flow(2, 0, 8), 4);
  h.engine.run_slots(4000);
  const auto& sink = h.engine.stats().sink;
  const auto& rt = sink.by_class(TrafficClass::kRealTime);
  const auto& be = sink.by_class(TrafficClass::kBestEffort);
  ASSERT_GT(rt.delivered, 0u);
  ASSERT_GT(be.delivered, 0u);
  // RT packets from the same station wait no longer than BE packets do.
  EXPECT_LE(h.engine.stats().rt_access_delay_slots.mean(),
            h.engine.stats().access_delay_slots.mean() + 1.0);
}

TEST(EngineRing, ParamsTrackConfiguration) {
  Config config;
  config.default_quota = {3, 2};
  config.rap_policy = RapPolicy::kRotating;
  config.t_ear_slots = 4;
  config.t_update_slots = 2;
  Harness h(5, config);
  const analysis::RingParams params = h.engine.ring_params();
  EXPECT_EQ(params.ring_latency_slots, 5);
  EXPECT_EQ(params.t_rap_slots, 6);
  ASSERT_EQ(params.quotas.size(), 5u);
  EXPECT_EQ(params.quotas[0], (Quota{3, 2}));
}

TEST(EngineRing, PerStationQuotas) {
  Config config;
  config.station_quotas = {{1, 1}, {2, 1}, {3, 1}, {4, 1}, {5, 1}};
  Harness h(5, config);
  const analysis::RingParams params = h.engine.ring_params();
  std::int64_t total = 0;
  for (const Quota& q : params.quotas) total += q.l;
  EXPECT_EQ(total, 1 + 2 + 3 + 4 + 5);
}

TEST(EngineAdmission, GoalGatesExtraQuota) {
  Config config;
  config.default_quota = {1, 1};
  Harness h(6, config);
  // Current bound: S + 2*N*(l+k) = 6 + 24 = 30.
  h.engine.set_max_sat_time_goal(38);
  EXPECT_TRUE(h.engine.admission_allows({1, 0}));   // 7 + 2*13 = 33 <= 38
  EXPECT_FALSE(h.engine.admission_allows({4, 0}));  // 7 + 2*16 = 39 > 38
  h.engine.set_max_sat_time_goal(0);
  EXPECT_TRUE(h.engine.admission_allows({100, 100}));
}

TEST(EngineHistory, ArrivalHistoryGrows) {
  Harness h(6, Config{});
  h.engine.run_slots(100);
  const NodeId anchor = h.engine.virtual_ring().station_at(0);
  EXPECT_GE(h.engine.sat_arrival_history(anchor).size(), 10u);
  EXPECT_TRUE(h.engine.sat_arrival_history(999).empty());
}

TEST(EngineCdmaFidelity, NoCollisionsWithValidCodes) {
  Config config;
  config.cdma_fidelity = true;
  Harness h(8, config);
  for (NodeId n = 0; n < 8; ++n) {
    h.engine.add_saturated_source(rt_flow(n, n, 8), 4);
  }
  h.engine.run_slots(500);
  EXPECT_EQ(h.engine.stats().cdma_collisions, 0u);
  EXPECT_EQ(h.engine.stats().header_decode_failures, 0u);
  EXPECT_GT(h.engine.stats().sink.total_delivered(), 0u);
}

TEST(EngineAccessDelay, RecordedOnInjection) {
  Harness h(6, Config{});
  auto spec = rt_flow(1, 0, 6, 32.0);
  h.engine.add_source(spec);
  h.engine.run_slots(1000);
  EXPECT_GT(h.engine.stats().access_delay_slots.count(), 0u);
  // Uncontended: the head packet waits less than one full rotation.
  EXPECT_LE(h.engine.stats().access_delay_slots.mean(), 12.0);
}

TEST(EngineStation, AccessorThrowsForStranger) {
  Harness h(6, Config{});
  EXPECT_THROW((void)h.engine.station(42), std::out_of_range);
  EXPECT_NO_THROW((void)h.engine.station(
      h.engine.virtual_ring().station_at(2)));
}

}  // namespace
}  // namespace wrt::wrtring
