// Digest-equivalence property suite for the SoA slot kernel.
//
// Each (ring size, scenario mode) cell runs a fixed-seed simulation and
// reduces the full EngineStats to one canonical digest string.  The
// expected strings below were recorded against the pre-SoA object-oriented
// engine (PR 5 seed); the SoA kernel must reproduce them bit-for-bit —
// including the floating-point means, whose accumulation order is part of
// the contract — across clean, membership-churn, and bursty-loss runs.
//
// Regenerating after a *deliberate* protocol change:
//   WRT_DIGEST_CAPTURE=1 ./test_wrtring --gtest_filter='SoaDigest*' 2>,out
// and paste the printed table back into kExpected.
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <numbers>
#include <string>

#include <gtest/gtest.h>

#include "fault/gilbert_elliott.hpp"
#include "phy/topology.hpp"
#include "wrtring/engine.hpp"

namespace wrt::wrtring {
namespace {

enum class Mode { kClean, kChurn, kFault };

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kClean: return "clean";
    case Mode::kChurn: return "churn";
    case Mode::kFault: return "fault";
  }
  return "?";
}

/// N stations on a circle, range covering ~2 ring hops (same placement the
/// hot-path bench uses, inlined to keep tests off the bench headers).
phy::Topology circle_room(std::size_t n) {
  const double radius = 10.0;
  const double chord =
      2.0 * radius * std::sin(std::numbers::pi / static_cast<double>(n));
  return phy::Topology(phy::placement::circle(n, radius),
                       phy::RadioParams{chord * 2.4, 0.0});
}

void saturate(Engine& engine, std::size_t n, std::size_t members) {
  for (NodeId node = 0; node < members; ++node) {
    traffic::FlowSpec spec;
    spec.id = node;
    spec.src = node;
    spec.dst = static_cast<NodeId>((node + n / 2) % members);
    spec.cls = node % 3 == 0 ? TrafficClass::kBestEffort
                             : TrafficClass::kRealTime;
    engine.add_saturated_source(spec, 4);
  }
}

std::string field(const char* key, std::uint64_t value) {
  return std::string(key) + "=" + std::to_string(value) + ";";
}

std::string field_milli(const char* key, double value) {
  return std::string(key) + "=" +
         std::to_string(static_cast<long long>(value * 1000.0)) + ";";
}

/// Reduces the run's EngineStats to the canonical digest line.  Teardown
/// losses are printed as one summed field so the digest stays comparable
/// across the rebuild/churn counter split.
std::string engine_digest(Engine& engine) {
  const EngineStats& stats = engine.stats();
  std::string digest;
  digest += field("ring", engine.virtual_ring().size());
  digest += field("rounds", stats.sat_rounds);
  digest += field("hops", stats.sat_hops);
  digest += field("tx", stats.data_transmissions);
  digest += field("transit", stats.transit_forwards);
  digest += field("delivered", stats.sink.total_delivered());
  digest += field("lost_link", stats.frames_lost_link);
  digest += field("lost_teardown",
                  stats.frames_lost_rebuild + stats.frames_lost_churn);
  digest += field("stale", stats.frames_dropped_stale);
  digest += field("rt_del",
                  stats.sink.by_class(TrafficClass::kRealTime).delivered);
  digest += field("as_del",
                  stats.sink.by_class(TrafficClass::kAssured).delivered);
  digest += field("be_del",
                  stats.sink.by_class(TrafficClass::kBestEffort).delivered);
  digest += field("joins", stats.joins_completed);
  digest += field("leaves", stats.leaves_completed);
  digest += field("recoveries", stats.sat_recoveries);
  digest += field("losses_detected", stats.sat_losses_detected);
  digest += field("rebuilds", stats.ring_rebuilds);
  digest += field("raps", stats.raps_started);
  digest += field("ctrl_lost", stats.control_messages_lost);
  std::uint64_t queue_drops = 0;
  for (const NodeId node : engine.virtual_ring().order()) {
    queue_drops += engine.station(node).queue_drops();
  }
  digest += field("qdrops", queue_drops);
  digest += field_milli("delay", stats.access_delay_slots.mean());
  digest += field_milli("rt_delay", stats.rt_access_delay_slots.mean());
  digest += field_milli("rotation", stats.sat_rotation_slots.mean());
  digest += field_milli("hold", stats.sat_hold_slots.mean());
  digest += field_milli("util", engine.ring_utilization());
  digest += field("invariants_ok", engine.check_invariants().ok() ? 1 : 0);
  return digest;
}

std::string scenario_digest(std::size_t n, Mode mode) {
  phy::Topology topology = circle_room(n);
  Config config;
  // Explicit SAT timeout: keeps the cut-out recovery length O(n) rather
  // than letting the Theorem-1 default grow the run, and must stay above
  // the saturated rotation time (~2n slots) to avoid spurious detections.
  config.sat_timeout_slots = static_cast<std::int64_t>(4 * n + 64);
  std::size_t members = n;
  if (mode == Mode::kChurn) {
    config.rap_policy = RapPolicy::kRotating;
    config.s_round_min = 4;
    if (n <= 64) {
      // Park the last node outside the ring so the run exercises a real
      // RAP join.  At larger n a rotating RAP reaches the joiner's
      // neighbourhood only after O(n^2) slots, so big-ring churn sticks
      // to leave + cut-out.
      members = n - 1;
      config.members.resize(members);
      for (std::size_t i = 0; i < members; ++i) {
        config.members[i] = static_cast<NodeId>(i);
      }
    }
  }
  if (mode == Mode::kFault) {
    // Bursty data loss (FaultPlan's link-degrade parameterisation) plus a
    // one-shot SAT drop: exercises loss accounting and a full recovery.
    config.channel.data = fault::GeParams::bursty(0.05, 8.0);
  }
  Engine engine(&topology, config, /*seed=*/7);
  saturate(engine, n, members);
  if (!engine.init().ok()) return "init-failed";

  engine.run_slots(512);
  if (mode == Mode::kChurn) {
    if (members < n) {
      engine.request_join(static_cast<NodeId>(n - 1), Quota{1, 1});
      engine.run_slots(6000);
    }
    if (!engine.request_leave(engine.virtual_ring().station_at(5)).ok()) {
      return "leave-failed";
    }
    engine.run_slots(512);
    engine.kill_station(engine.virtual_ring().station_at(11));
    engine.run_slots(2 * config.sat_timeout_slots + 512);
  } else if (mode == Mode::kFault) {
    engine.drop_sat_once();
    engine.run_slots(2 * config.sat_timeout_slots + 512);
  } else {
    engine.run_slots(1024);
  }
  return engine_digest(engine);
}

struct Cell {
  std::size_t n;
  Mode mode;
  const char* expected;
};

// Pre-SoA oracle, recorded at the PR 5 seed (see header comment).
constexpr Cell kExpected[] = {
    {32, Mode::kClean,
     "ring=32;rounds=48;hops=1536;tx=1551;transit=23265;delivered=1535;lost_link=0;lost_teardown=0;stale=0;rt_del=1007;as_del=0;be_del=528;joins=0;leaves=0;recoveries=0;losses_detected=0;rebuilds=0;raps=0;ctrl_lost=0;qdrops=0;delay=119902;rt_delay=119971;rotation=32000;hold=0;util=504;invariants_ok=1;"},
    {32, Mode::kChurn,
     "ring=30;rounds=209;hops=6580;tx=6443;transit=98697;delivered=6323;lost_link=16;lost_teardown=39;stale=50;rt_del=4096;as_del=0;be_del=2227;joins=1;leaves=1;recoveries=1;losses_detected=1;rebuilds=0;raps=197;ctrl_lost=0;qdrops=0;delay=148634;rt_delay=148668;rotation=37918;hold=0;util=421;invariants_ok=1;"},
    {32, Mode::kFault,
     "ring=31;rounds=40;hops=1246;tx=1269;transit=14029;delivered=645;lost_link=597;lost_teardown=9;stale=7;rt_del=410;as_del=0;be_del=235;joins=0;leaves=0;recoveries=1;losses_detected=1;rebuilds=0;raps=0;ctrl_lost=0;qdrops=0;delay=131810;rt_delay=131678;rotation=35558;hold=0;util=332;invariants_ok=1;"},
    {256, Mode::kClean,
     "ring=256;rounds=6;hops=1536;tx=1663;transit=211201;delivered=1535;lost_link=0;lost_teardown=0;stale=0;rt_del=1020;as_del=0;be_del=515;joins=0;leaves=0;recoveries=0;losses_detected=0;rebuilds=0;raps=0;ctrl_lost=0;qdrops=0;delay=590740;rt_delay=590456;rotation=256000;hold=0;util=541;invariants_ok=1;"},
    {256, Mode::kChurn,
     "ring=254;rounds=12;hops=2834;tx=3027;transit=344779;delivered=2506;lost_link=128;lost_teardown=255;stale=11;rt_del=1667;as_del=0;be_del=839;joins=0;leaves=1;recoveries=1;losses_detected=1;rebuilds=0;raps=8;ctrl_lost=0;qdrops=0;delay=1069953;rt_delay=1070302;rotation=340454;hold=0;util=367;invariants_ok=1;"},
    {256, Mode::kFault,
     "ring=255;rounds=10;hops=2366;tx=2612;transit=51948;delivered=5;lost_link=2573;lost_teardown=22;stale=0;rt_del=3;as_del=0;be_del=2;joins=0;leaves=0;recoveries=1;losses_detected=1;rebuilds=0;raps=0;ctrl_lost=0;qdrops=0;delay=1051256;rt_delay=1052140;rotation=356034;hold=0;util=63;invariants_ok=1;"},
    {1024, Mode::kClean,
     "ring=1024;rounds=2;hops=1536;tx=2047;transit=1046017;delivered=1535;lost_link=0;lost_teardown=0;stale=0;rt_del=1022;as_del=0;be_del=513;joins=0;leaves=0;recoveries=0;losses_detected=0;rebuilds=0;raps=0;ctrl_lost=0;qdrops=0;delay=383937;rt_delay=384375;rotation=1024000;hold=0;util=666;invariants_ok=1;"},
    {1024, Mode::kChurn,
     "ring=1023;rounds=5;hops=3639;tx=4406;transit=1990080;delivered=3381;lost_link=512;lost_teardown=0;stale=1;rt_del=2253;as_del=0;be_del=1128;joins=0;leaves=0;recoveries=0;losses_detected=0;rebuilds=1;raps=1;ctrl_lost=0;qdrops=0;delay=4797121;rt_delay=4797091;rotation=1025104;hold=0;util=197;invariants_ok=1;"},
    {1024, Mode::kFault,
     "ring=1023;rounds=6;hops=5695;tx=6700;transit=141864;delivered=0;lost_link=6649;lost_teardown=34;stale=0;rt_del=0;as_del=0;be_del=0;joins=0;leaves=0;recoveries=1;losses_detected=1;rebuilds=0;raps=0;ctrl_lost=0;qdrops=0;delay=4454256;rt_delay=4453470;rotation=1422976;hold=0;util=14;invariants_ok=1;"},
    {4096, Mode::kClean,
     "ring=4096;rounds=1;hops=1536;tx=4096;transit=6287360;delivered=0;lost_link=0;lost_teardown=0;stale=0;rt_del=0;as_del=0;be_del=0;joins=0;leaves=0;recoveries=0;losses_detected=0;rebuilds=0;raps=0;ctrl_lost=0;qdrops=0;delay=0;rt_delay=0;rotation=0;hold=0;util=1000;invariants_ok=1;"},
    {4096, Mode::kChurn,
     "ring=4095;rounds=4;hops=9789;tx=12860;transit=21585903;delivered=7729;lost_link=3083;lost_teardown=0;stale=0;rt_del=5153;as_del=0;be_del=2576;joins=0;leaves=0;recoveries=0;losses_detected=0;rebuilds=1;raps=0;ctrl_lost=0;qdrops=0;delay=12572769;rt_delay=12569653;rotation=4095006;hold=0;util=153;invariants_ok=1;"},
    {4096, Mode::kFault,
     "ring=4095;rounds=5;hops=17983;tx=22056;transit=471249;delivered=0;lost_link=22009;lost_teardown=22;stale=0;rt_del=0;as_del=0;be_del=0;joins=0;leaves=0;recoveries=1;losses_detected=1;rebuilds=0;raps=0;ctrl_lost=0;qdrops=0;delay=19102373;rt_delay=19102583;rotation=4627023;hold=0;util=3;invariants_ok=1;"},
};

class SoaDigest : public ::testing::TestWithParam<Cell> {};

TEST_P(SoaDigest, MatchesPreSoaOracle) {
  const Cell& cell = GetParam();
  const std::string digest = scenario_digest(cell.n, cell.mode);
  if (std::getenv("WRT_DIGEST_CAPTURE") != nullptr) {
    std::printf("CAPTURE {%zu, Mode::k%c%s, \"%s\"},\n", cell.n,
                static_cast<char>(std::toupper(mode_name(cell.mode)[0])),
                mode_name(cell.mode) + 1, digest.c_str());
    GTEST_SKIP() << "capture mode";
  }
  EXPECT_EQ(digest, cell.expected)
      << "n=" << cell.n << " mode=" << mode_name(cell.mode);
}

std::string cell_name(const ::testing::TestParamInfo<Cell>& cell_info) {
  std::string name = "N";
  name += std::to_string(cell_info.param.n);
  name += '_';
  name += mode_name(cell_info.param.mode);
  return name;
}

INSTANTIATE_TEST_SUITE_P(Oracle, SoaDigest, ::testing::ValuesIn(kExpected),
                         cell_name);

}  // namespace
}  // namespace wrt::wrtring
