#include "wrtring/admission.hpp"

#include <gtest/gtest.h>

#include "tests/wrtring/test_helpers.hpp"

namespace wrt::wrtring {
namespace {

using testing::Harness;

SessionRequest session(FlowId flow, NodeId station, std::int64_t period,
                       std::int64_t packets, std::int64_t deadline) {
  SessionRequest request;
  request.flow = flow;
  request.station = station;
  request.period_slots = period;
  request.packets_per_period = packets;
  request.deadline_slots = deadline;
  return request;
}

class AdmissionTest : public ::testing::Test {
 protected:
  AdmissionTest()
      : harness_(8, Config{}),
        controller_(&harness_.engine,
                    analysis::AllocationScheme::kProportional,
                    /*l_budget=*/8, /*k_per_station=*/1) {}

  Harness harness_;
  AdmissionController controller_;
};

TEST_F(AdmissionTest, AdmitsFeasibleSession) {
  const auto result = controller_.admit(session(1, 0, 200, 1, 2000));
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result.value().l, 1u);
  EXPECT_EQ(controller_.session_count(), 1u);
  EXPECT_TRUE(controller_.has_session(1));
}

TEST_F(AdmissionTest, AppliesQuotaToEngine) {
  ASSERT_TRUE(controller_.admit(session(1, 3, 100, 2, 3000)).ok());
  EXPECT_GE(harness_.engine.station(3).quota().l, 1u);
  // Stations without sessions end up with zero real-time quota.
  EXPECT_EQ(harness_.engine.station(5).quota().l, 0u);
  EXPECT_EQ(harness_.engine.station(5).quota().k, 1u);
}

TEST_F(AdmissionTest, RejectsImpossibleDeadline) {
  const auto result = controller_.admit(session(1, 0, 100, 1, 10));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, util::Error::Code::kAdmissionRejected);
  EXPECT_EQ(controller_.session_count(), 0u);
}

TEST_F(AdmissionTest, RejectionLeavesExistingGuaranteesIntact) {
  ASSERT_TRUE(controller_.admit(session(1, 0, 200, 1, 4000)).ok());
  const auto delay_before = controller_.guaranteed_delay(1);
  ASSERT_TRUE(delay_before.ok());
  ASSERT_FALSE(controller_.admit(session(2, 1, 100, 1, 5)).ok());
  const auto delay_after = controller_.guaranteed_delay(1);
  ASSERT_TRUE(delay_after.ok());
  EXPECT_EQ(delay_before.value(), delay_after.value());
}

TEST_F(AdmissionTest, RejectsDuplicateFlow) {
  ASSERT_TRUE(controller_.admit(session(1, 0, 200, 1, 4000)).ok());
  EXPECT_FALSE(controller_.admit(session(1, 1, 200, 1, 4000)).ok());
}

TEST_F(AdmissionTest, RejectsBadParameters) {
  EXPECT_FALSE(controller_.admit(session(1, 0, 0, 1, 1000)).ok());
  EXPECT_FALSE(controller_.admit(session(2, 0, 100, 0, 1000)).ok());
  EXPECT_FALSE(controller_.admit(session(3, 0, 100, 1, 0)).ok());
  EXPECT_FALSE(controller_.admit(session(4, 99, 100, 1, 1000)).ok());
}

TEST_F(AdmissionTest, ReleaseRedistributes) {
  ASSERT_TRUE(controller_.admit(session(1, 0, 100, 2, 4000)).ok());
  ASSERT_TRUE(controller_.admit(session(2, 4, 100, 2, 4000)).ok());
  const std::uint32_t l_station4 = harness_.engine.station(4).quota().l;
  ASSERT_TRUE(controller_.release(1).ok());
  EXPECT_FALSE(controller_.has_session(1));
  // With the competitor gone, station 4 keeps at least its share.
  EXPECT_GE(harness_.engine.station(4).quota().l, l_station4);
}

TEST_F(AdmissionTest, ReleaseUnknownFails) {
  EXPECT_FALSE(controller_.release(77).ok());
}

TEST_F(AdmissionTest, MultipleSessionsPerStationAggregate) {
  ASSERT_TRUE(controller_.admit(session(1, 2, 100, 1, 4000)).ok());
  ASSERT_TRUE(controller_.admit(session(2, 2, 50, 1, 4000)).ok());
  EXPECT_EQ(controller_.session_count(), 2u);
  // Aggregated load 0.03 pkt/slot still fits the budget.
  EXPECT_GE(harness_.engine.station(2).quota().l, 1u);
}

TEST_F(AdmissionTest, GuaranteedDelayMatchesTheorem3) {
  ASSERT_TRUE(controller_.admit(session(2, 1, 100, 3, 4000)).ok());
  const auto delay = controller_.guaranteed_delay(2);
  ASSERT_TRUE(delay.ok());
  const auto params = harness_.engine.ring_params();
  const std::size_t index =
      harness_.engine.virtual_ring().position_of(1);
  EXPECT_EQ(delay.value(), analysis::access_time_bound(params, index, 2));
  EXPECT_FALSE(controller_.guaranteed_delay(99).ok());
}

TEST_F(AdmissionTest, StationDepartureDropsItsSessions) {
  ASSERT_TRUE(controller_.admit(session(1, 2, 100, 1, 4000)).ok());
  ASSERT_TRUE(controller_.admit(session(2, 2, 100, 1, 4000)).ok());
  ASSERT_TRUE(controller_.admit(session(3, 5, 100, 1, 4000)).ok());
  // Simulate the ring losing station 2 (e.g. after a cut-out).
  ASSERT_TRUE(harness_.engine.request_leave(2).ok());
  harness_.engine.run_slots(500);
  ASSERT_FALSE(harness_.engine.virtual_ring().contains(2));
  EXPECT_EQ(controller_.on_station_left(2), 2u);
  EXPECT_EQ(controller_.session_count(), 1u);
  EXPECT_TRUE(controller_.has_session(3));
}

TEST_F(AdmissionTest, AdmittedSessionMeetsItsGuaranteeInSimulation) {
  const auto quota = controller_.admit(session(1, 0, 64, 1, 4000));
  ASSERT_TRUE(quota.ok());
  const auto guaranteed = controller_.guaranteed_delay(1);
  ASSERT_TRUE(guaranteed.ok());

  traffic::FlowSpec spec;
  spec.id = 1;
  spec.src = 0;
  spec.dst = 4;
  spec.cls = TrafficClass::kRealTime;
  spec.kind = traffic::ArrivalKind::kCbr;
  spec.period_slots = 64.0;
  spec.deadline_slots = guaranteed.value() + 10;
  harness_.engine.add_source(spec);
  harness_.engine.run_slots(8000);
  const auto& rt =
      harness_.engine.stats().sink.by_class(TrafficClass::kRealTime);
  ASSERT_GT(rt.delivered, 100u);
  EXPECT_EQ(rt.deadline_misses, 0u);
}

}  // namespace
}  // namespace wrt::wrtring
