// Accounting regressions for the slot-kernel bugfix sweep (PR 6):
//
//   1. Bare step() drivers must see exact registry totals — snapshot()
//      drains the engine's staged TelemetryBatch, so counters no longer
//      lag by up to kTelemetryFlushSlots when nobody calls run_slots().
//   2. In-flight frames discarded when a join splices the ring are churn
//      losses (frames_lost_churn), not teardown losses — a graceful join
//      is not a rebuild, and dashboards alerting on frames_lost_rebuild
//      must not fire on healthy admissions.
//   3. The stale-frame purge (hops > R + 1) is reachable: after a graceful
//      leave, frames addressed to the ex-member keep entering the ring and
//      must be purged instead of circulating forever.
#include <cstdint>

#include <gtest/gtest.h>

#include "phy/topology.hpp"
#include "telemetry/registry.hpp"
#include "wrtring/engine.hpp"

namespace wrt::wrtring {
namespace {

phy::Topology small_room(std::size_t n) {
  return phy::Topology(phy::placement::circle(n, 10.0),
                       phy::RadioParams{25.0, 0.0});
}

void saturate_all(Engine& engine, std::size_t members, NodeId dst_shift) {
  for (NodeId node = 0; node < members; ++node) {
    traffic::FlowSpec spec;
    spec.id = node;
    spec.src = node;
    spec.dst = static_cast<NodeId>((node + dst_shift) % members);
    spec.cls = TrafficClass::kRealTime;
    engine.add_saturated_source(spec, 4);
  }
}

std::uint64_t accounted(const Engine& engine) {
  const EngineStats& stats = engine.stats();
  return stats.sink.total_delivered() + stats.frames_lost_link +
         stats.frames_lost_rebuild + stats.frames_lost_churn +
         stats.frames_dropped_stale + engine.frames_in_flight();
}

// Satellite 1: a driver that never calls run_slots() must still read exact
// totals from a registry snapshot.  163 bare step() calls end mid-flush
// interval (163 & 63 != 0), so without the snapshot-time drain the
// slots_stepped delta would be short by the staged remainder.
TEST(EngineAccounting, BareStepTotalsVisibleInSnapshot) {
  if (!telemetry::kTelemetryEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  const std::size_t n = 8;
  phy::Topology topology = small_room(n);
  Engine engine(&topology, Config{}, /*seed=*/3);
  saturate_all(engine, n, static_cast<NodeId>(n / 2));
  ASSERT_TRUE(engine.init().ok());

  const auto& registry = telemetry::MetricRegistry::instance();
  const telemetry::RegistrySnapshot before = registry.snapshot();
  const int kSteps = 163;
  for (int i = 0; i < kSteps; ++i) engine.step();
  const telemetry::RegistrySnapshot after = registry.snapshot();
  EXPECT_EQ(after.counter(telemetry::CounterId::kSlotsStepped) -
                before.counter(telemetry::CounterId::kSlotsStepped),
            static_cast<std::uint64_t>(kSteps));
  // Deliveries staged between flush boundaries must be visible too; the
  // engine is fresh, so the snapshot delta is exactly its sink total.
  EXPECT_EQ(after.counter(telemetry::CounterId::kDeliveries) -
                before.counter(telemetry::CounterId::kDeliveries),
            engine.stats().sink.total_delivered());
}

// Satellite 2: join-path drops are churn, not rebuild.  The RAP halts
// injections, so with 1-slot hops the ring would drain before the update
// phase; 4-slot hop pipelines keep frames in flight across the RAP, and
// the splice at join completion must charge them to frames_lost_churn
// while the teardown counter stays zero (nothing was rebuilt or
// recovered).
TEST(EngineAccounting, JoinDropsChargeChurnNotRebuild) {
  const std::size_t n = 8;
  phy::Topology topology = small_room(n);
  Config config;
  config.rap_policy = RapPolicy::kRotating;
  config.s_round_min = 4;
  config.hop_latency_slots = 4;
  config.members.resize(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    config.members[i] = static_cast<NodeId>(i);
  }
  Engine engine(&topology, config, /*seed=*/3);
  saturate_all(engine, n - 1, static_cast<NodeId>(n / 2));
  ASSERT_TRUE(engine.init().ok());

  engine.run_slots(256);
  engine.request_join(static_cast<NodeId>(n - 1), Quota{1, 1});
  engine.run_slots(4000);

  const EngineStats& stats = engine.stats();
  ASSERT_EQ(stats.joins_completed, 1u);
  EXPECT_GT(stats.frames_lost_churn, 0u);
  EXPECT_EQ(stats.frames_lost_rebuild, 0u);
  EXPECT_EQ(stats.data_transmissions, accounted(engine));
  EXPECT_TRUE(engine.check_invariants().ok());
}

// Satellite 3: every station floods the eventual leaver, so after the
// graceful leave the ring carries frames addressed to a non-member; they
// must hit the hops > R + 1 purge rather than orbiting indefinitely.
TEST(EngineAccounting, StalePurgeReachableAfterLeave) {
  const std::size_t n = 8;
  const NodeId leaver = 5;
  phy::Topology topology = small_room(n);
  Engine engine(&topology, Config{}, /*seed=*/3);
  for (NodeId node = 0; node < n; ++node) {
    traffic::FlowSpec spec;
    spec.id = node;
    spec.src = node;
    spec.dst = node == leaver ? NodeId{0} : leaver;
    spec.cls = TrafficClass::kRealTime;
    engine.add_saturated_source(spec, 4);
  }
  ASSERT_TRUE(engine.init().ok());

  engine.run_slots(256);
  EXPECT_EQ(engine.stats().frames_dropped_stale, 0u);
  ASSERT_TRUE(engine.request_leave(leaver).ok());
  engine.run_slots(512);

  const EngineStats& stats = engine.stats();
  EXPECT_EQ(stats.leaves_completed, 1u);
  EXPECT_GT(stats.frames_dropped_stale, 0u);
  EXPECT_EQ(stats.data_transmissions, accounted(engine));
  EXPECT_TRUE(engine.check_invariants().ok());
}

}  // namespace
}  // namespace wrt::wrtring
