// FederationEngine: sharded multi-ring fabric with epoch-synchronized
// gateway exchange (DESIGN.md §12).
//
// Covers construction and crossing delivery, the worker-count determinism
// contract (same (seed, K) -> same digest for any W), the three-way
// reservation brokering (source ring + backbone class + destination
// ring), conservation of crossing frames through the
// mailbox -> backbone -> ring pipeline, and the Gateway backbone mode.
#include <cstdint>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include "diffserv/diffserv.hpp"
#include "wrtring/federation.hpp"
#include "wrtring/gateway.hpp"

namespace wrt::wrtring {
namespace {

FederationConfig small_config() {
  FederationConfig config;
  config.shards = 2;
  config.rings = 4;
  config.stations_per_ring = 8;
  config.epoch_slots = 32;
  config.saturated_per_ring = 1;
  config.crossing_flows_per_ring = 1;
  config.crossing_rate_per_slot = 0.02;
  config.backbone_service_rate = 4.0;
  config.backbone_premium_capacity = 1.0;
  return config;
}

std::uint64_t run_digest(FederationConfig config, std::uint64_t seed,
                         std::int64_t epochs) {
  FederationEngine federation(config, seed);
  EXPECT_TRUE(federation.init().ok());
  federation.run_epochs(epochs);
  return federation.digest();
}

TEST(FederationTest, ValidatesConfig) {
  FederationConfig config = small_config();
  config.shards = 0;
  EXPECT_FALSE(config.validate().ok());
  config = small_config();
  config.stations_per_ring = 3;
  EXPECT_FALSE(config.validate().ok());
  config = small_config();
  config.rings = 1;  // crossing flows need a second ring
  EXPECT_FALSE(config.validate().ok());
  config = small_config();
  EXPECT_TRUE(config.validate().ok());
}

TEST(FederationTest, DeliversCrossingsEndToEnd) {
  FederationEngine federation(small_config(), 42);
  ASSERT_TRUE(federation.init().ok());
  federation.run_epochs(16);

  const FederationStats stats = federation.stats();
  EXPECT_GT(stats.crossings.crossings_posted, 0U);
  EXPECT_GT(stats.crossings.crossings_delivered, 0U);
  EXPECT_GT(stats.total_delivered, stats.crossings.crossings_delivered);
  // Pipeline conservation: frames only move forward through
  // posted -> received -> injected -> delivered, and nothing is lost
  // silently (the difference at each stage is in a mailbox, the backbone,
  // the pending buffer, or the destination ring).
  EXPECT_GE(stats.crossings.crossings_posted,
            stats.crossings.crossings_received);
  EXPECT_GE(stats.crossings.crossings_received,
            stats.crossings.crossings_injected);
  EXPECT_GE(stats.crossings.crossings_injected +
                stats.crossings.crossing_drops,
            stats.crossings.crossings_delivered);
  EXPECT_EQ(stats.crossings.crossing_drops, 0U);
  // Every crossing was brokered one way or the other.
  EXPECT_EQ(stats.rt_admitted + stats.rt_rejected,
            federation.ring_count() * 1U);
  EXPECT_EQ(federation.now_slots(), 16 * small_config().epoch_slots);
}

TEST(FederationTest, RecordsEndToEndRtDelay) {
  FederationConfig config = small_config();
  config.backbone_premium_capacity = 8.0;  // admit everything
  FederationEngine federation(config, 7);
  ASSERT_TRUE(federation.init().ok());
  federation.run_epochs(16);

  ASSERT_GT(federation.stats().rt_admitted, 0U);
  const std::vector<Tick> delays = federation.rt_crossing_delay_ticks();
  ASSERT_FALSE(delays.empty());
  // A crossing spans two rings and the backbone: it cannot be faster than
  // one backbone hop, and the epoch quantization means multi-epoch delays
  // are normal.
  for (const Tick delay : delays) {
    EXPECT_GT(delay, 0);
    EXPECT_LT(ticks_to_slots(delay),
              federation.now_slots());  // sane upper bound
  }
}

TEST(FederationTest, DigestInvariantUnderWorkerCount) {
  FederationConfig config = small_config();
  config.shards = 4;
  config.rings = 8;
  std::vector<std::uint64_t> digests;
  for (const std::uint32_t workers : {1U, 2U, 4U}) {
    config.worker_threads = workers;
    digests.push_back(run_digest(config, 99, 8));
  }
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[0], digests[2]);
}

TEST(FederationTest, DigestRespondsToSeed) {
  const FederationConfig config = small_config();
  EXPECT_NE(run_digest(config, 1, 6), run_digest(config, 2, 6));
}

TEST(FederationTest, ZeroBackboneBudgetDemotesEveryCrossing) {
  FederationConfig config = small_config();
  config.backbone_premium_capacity = 0.0;
  FederationEngine federation(config, 5);
  ASSERT_TRUE(federation.init().ok());
  federation.run_epochs(16);

  const FederationStats stats = federation.stats();
  EXPECT_EQ(stats.rt_admitted, 0U);
  EXPECT_EQ(stats.rt_rejected, federation.ring_count());
  for (const CrossingFlow& crossing : federation.crossing_flows()) {
    EXPECT_FALSE(crossing.admitted);
  }
  // Demoted crossings still travel — as best-effort.
  EXPECT_TRUE(federation.rt_crossing_delay_ticks().empty());
  EXPECT_GT(stats.crossings.crossings_delivered, 0U);
}

TEST(FederationTest, GenerousBudgetAdmitsEveryCrossing) {
  FederationConfig config = small_config();
  config.backbone_premium_capacity = 8.0;
  FederationEngine federation(config, 5);
  ASSERT_TRUE(federation.init().ok());
  const FederationStats stats = federation.stats();
  EXPECT_EQ(stats.rt_admitted, federation.ring_count());
  EXPECT_EQ(stats.rt_rejected, 0U);
  // The brokered budget is visible on each shard's backbone segment.
  double reserved = 0.0;
  for (std::uint32_t s = 0; s < federation.shard_count(); ++s) {
    reserved += federation.shard(s).backbone().reserved_premium();
  }
  EXPECT_NEAR(reserved,
              config.crossing_rate_per_slot * federation.ring_count(), 1e-9);
}

TEST(FederationTest, ShardCountIsASemanticParameter) {
  // K is part of the run's identity (it decides backbone placement and
  // epoch interleaving); digests for different K are not expected to
  // match, but both runs must be healthy.
  FederationConfig config = small_config();
  config.shards = 1;
  FederationEngine one(config, 11);
  ASSERT_TRUE(one.init().ok());
  one.run_epochs(8);
  config.shards = 4;
  FederationEngine four(config, 11);
  ASSERT_TRUE(four.init().ok());
  four.run_epochs(8);
  EXPECT_GT(one.stats().crossings.crossings_delivered, 0U);
  EXPECT_GT(four.stats().crossings.crossings_delivered, 0U);
}

// -- Gateway backbone mode --------------------------------------------------

TEST(FederationTest, GatewayBrokersBackboneReservations) {
  FederationConfig config = small_config();
  config.crossing_flows_per_ring = 0;  // quiet fabric, we broker by hand
  config.rings = 2;
  config.shards = 1;
  FederationEngine federation(config, 3);
  ASSERT_TRUE(federation.init().ok());

  diffserv::BackboneSegment backbone(/*hops=*/2, /*service_rate=*/4.0,
                                     /*queue_capacity=*/64,
                                     /*premium_capacity=*/0.05);
  Engine& ring = federation.ring_engine(0);
  Gateway gateway(&ring, &backbone, /*gateway_station=*/0);

  const Quota before = ring.station(0).quota();
  auto granted = gateway.reserve_backbone_to_ring(/*flow=*/501, 0.04);
  ASSERT_TRUE(granted.ok());
  EXPECT_TRUE(granted.value().backbone_premium);
  EXPECT_GT(granted.value().granted_l, 0U);
  EXPECT_NEAR(backbone.reserved_premium(), 0.04, 1e-12);
  EXPECT_EQ(ring.station(0).quota().l, before.l + granted.value().granted_l);

  // Over budget: the backbone leg refuses even though the ring could.
  auto refused = gateway.reserve_backbone_to_ring(/*flow=*/502, 0.04);
  EXPECT_FALSE(refused.ok());

  // Release restores both the ring quota and the backbone budget.
  ASSERT_TRUE(gateway.release(501).ok());
  EXPECT_NEAR(backbone.reserved_premium(), 0.0, 1e-12);
  EXPECT_EQ(ring.station(0).quota().l, before.l);
}

TEST(FederationTest, GatewayReservesRingCapacityForCarrier) {
  FederationConfig config = small_config();
  config.crossing_flows_per_ring = 0;
  config.rings = 2;
  config.shards = 1;
  FederationEngine federation(config, 3);
  ASSERT_TRUE(federation.init().ok());

  diffserv::BackboneSegment backbone(2, 4.0, 64, 1.0);
  Engine& ring = federation.ring_engine(1);
  Gateway gateway(&ring, &backbone, 0);

  const NodeId carrier = 3;
  const Quota before = ring.station(carrier).quota();
  auto granted = gateway.reserve_ring_capacity(carrier, /*flow=*/601, 0.05);
  ASSERT_TRUE(granted.ok());
  EXPECT_EQ(granted.value().carrier, carrier);
  EXPECT_FALSE(granted.value().backbone_premium);
  EXPECT_EQ(ring.station(carrier).quota().l,
            before.l + granted.value().granted_l);
  // The carrier's grant, not G1's.
  EXPECT_EQ(ring.station(0).quota().l, before.l);

  ASSERT_TRUE(gateway.release(601).ok());
  EXPECT_EQ(ring.station(carrier).quota().l, before.l);
}

}  // namespace
}  // namespace wrt::wrtring
