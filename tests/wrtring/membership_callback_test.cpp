#include <gtest/gtest.h>

#include "analysis/bounds.hpp"
#include "tests/wrtring/test_helpers.hpp"
#include "wrtring/admission.hpp"
#include "wrtring/engine.hpp"

namespace wrt::wrtring {
namespace {

using testing::Harness;

TEST(MembershipCallback, FiresOnCutOut) {
  Harness h(8, Config{});
  std::vector<std::pair<NodeId, bool>> events;
  h.engine.set_membership_callback([&](NodeId node, bool joined) {
    events.emplace_back(node, joined);
  });
  h.engine.run_slots(100);
  const NodeId victim = h.engine.virtual_ring().station_at(4);
  h.engine.kill_station(victim);
  h.engine.run_slots(4 * analysis::sat_time_bound(h.engine.ring_params()));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], std::make_pair(victim, false));
}

TEST(MembershipCallback, FiresOnJoin) {
  Config config;
  config.rap_policy = RapPolicy::kRotating;
  Harness h(6, config);
  std::vector<std::pair<NodeId, bool>> events;
  h.engine.set_membership_callback([&](NodeId node, bool joined) {
    events.emplace_back(node, joined);
  });
  const phy::Vec2 mid =
      (h.topology.position(0) + h.topology.position(1)) * 0.5;
  const NodeId joiner = h.topology.add_node(mid);
  h.engine.request_join(joiner, {1, 1});
  h.engine.run_slots(6 * 40 * 10);
  ASSERT_GE(events.size(), 1u);
  EXPECT_EQ(events.back(), std::make_pair(joiner, true));
}

TEST(MembershipCallback, FiresOnGracefulLeave) {
  Harness h(8, Config{});
  std::vector<NodeId> departed;
  h.engine.set_membership_callback([&](NodeId node, bool joined) {
    if (!joined) departed.push_back(node);
  });
  const NodeId leaver = h.engine.virtual_ring().station_at(2);
  ASSERT_TRUE(h.engine.request_leave(leaver).ok());
  h.engine.run_slots(500);
  ASSERT_EQ(departed.size(), 1u);
  EXPECT_EQ(departed[0], leaver);
}

TEST(MembershipCallback, UnsubscribeStopsEvents) {
  Harness h(8, Config{});
  int count = 0;
  h.engine.set_membership_callback([&](NodeId, bool) { ++count; });
  h.engine.set_membership_callback(nullptr);
  ASSERT_TRUE(
      h.engine.request_leave(h.engine.virtual_ring().station_at(1)).ok());
  h.engine.run_slots(500);
  EXPECT_EQ(count, 0);
}

TEST(MembershipCallback, BoundAdmissionControllerDropsSessions) {
  Harness h(8, Config{});
  AdmissionController controller(
      &h.engine, analysis::AllocationScheme::kProportional, 8, 1);
  controller.bind_membership_events();

  SessionRequest request;
  request.flow = 1;
  request.station = h.engine.virtual_ring().station_at(3);
  request.period_slots = 100;
  request.packets_per_period = 1;
  request.deadline_slots = 3000;
  ASSERT_TRUE(controller.admit(request).ok());
  SessionRequest other = request;
  other.flow = 2;
  other.station = h.engine.virtual_ring().station_at(5);
  ASSERT_TRUE(controller.admit(other).ok());
  ASSERT_EQ(controller.session_count(), 2u);

  // The station dies; the cut-out must automatically drop its session and
  // rebalance the survivor's quota.
  h.engine.run_slots(100);
  h.engine.kill_station(request.station);
  h.engine.run_slots(4 * analysis::sat_time_bound(h.engine.ring_params()));
  EXPECT_EQ(controller.session_count(), 1u);
  EXPECT_FALSE(controller.has_session(1));
  EXPECT_TRUE(controller.has_session(2));
  EXPECT_GE(h.engine.station(other.station).quota().l, 1u);
}

}  // namespace
}  // namespace wrt::wrtring
