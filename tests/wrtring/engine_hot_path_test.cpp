// Regression tests for the position-indexed hot-path restructure:
//  * full-queue drops are attributed to the right class (the enqueue move
//    is committed only on acceptance),
//  * the rotation anchor survives SAT_REC cut-outs and graceful leaves
//    (stats_.sat_rounds must keep advancing),
//  * fixed-seed runs are bit-identical,
//  * the position index and dense vectors stay aligned across churn.
#include <gtest/gtest.h>

#include "analysis/bounds.hpp"
#include "wrtring/engine.hpp"

#include "test_helpers.hpp"

namespace wrt::wrtring {
namespace {

using testing::Harness;
using testing::be_flow;
using testing::rt_flow;

TEST(DropAccounting, FullQueueDropsAttributedToRealTimeClass) {
  // One packet per slot into a quota of l=1 per SAT round: the queue fills
  // in a few rounds and every further arrival must be dropped AND recorded
  // against the real-time class.
  Config config;
  config.queue_capacity = 4;
  Harness h(8, config);
  h.engine.add_source(rt_flow(1, 0, 8, /*period_slots=*/1.0));
  h.engine.run_slots(2000);

  const auto& stats = h.engine.stats();
  const std::uint64_t station_drops = h.engine.station(0).queue_drops();
  EXPECT_GT(station_drops, 0u);
  // No stale purges in a stable ring, so every sink drop came from the
  // enqueue path and carries the rejected packet's (intact) class.
  EXPECT_EQ(stats.frames_dropped_stale, 0u);
  EXPECT_EQ(stats.sink.by_class(TrafficClass::kRealTime).dropped,
            station_drops);
  EXPECT_EQ(stats.sink.by_class(TrafficClass::kAssured).dropped, 0u);
  EXPECT_EQ(stats.sink.by_class(TrafficClass::kBestEffort).dropped, 0u);
}

TEST(RotationAnchor, RoundsKeepAdvancingAfterAnchorCutOut) {
  // Killing the round-counting anchor station forces the SAT_REC cut-out to
  // re-anchor; before the fix stats_.sat_rounds froze forever.
  Harness h(8, Config{});
  h.engine.run_slots(50);
  const NodeId anchor = h.engine.virtual_ring().station_at(0);
  h.engine.kill_station(anchor);
  h.engine.run_slots(4 * analysis::sat_time_bound(h.engine.ring_params()));
  ASSERT_EQ(h.engine.stats().sat_recoveries, 1u);
  ASSERT_FALSE(h.engine.virtual_ring().contains(anchor));
  const auto rounds = h.engine.stats().sat_rounds;
  h.engine.run_slots(200);
  EXPECT_GT(h.engine.stats().sat_rounds, rounds);
}

TEST(RotationAnchor, RoundsKeepAdvancingAfterAnchorGracefulLeave) {
  Harness h(8, Config{});
  h.engine.run_slots(50);
  const NodeId anchor = h.engine.virtual_ring().station_at(0);
  ASSERT_TRUE(h.engine.request_leave(anchor).ok());
  h.engine.run_slots(500);
  ASSERT_EQ(h.engine.stats().leaves_completed, 1u);
  ASSERT_FALSE(h.engine.virtual_ring().contains(anchor));
  EXPECT_EQ(h.engine.stats().ring_rebuilds, 0u);
  const auto rounds = h.engine.stats().sat_rounds;
  h.engine.run_slots(200);
  EXPECT_GT(h.engine.stats().sat_rounds, rounds);
}

TEST(Determinism, FixedSeedRunsAreBitIdentical) {
  const auto build = [](Harness& h) {
    h.engine.add_source(rt_flow(1, 0, 12, /*period_slots=*/4.0));
    h.engine.add_source(rt_flow(2, 5, 12, /*period_slots=*/6.0));
    h.engine.add_source(be_flow(3, 2, 12, /*rate_per_slot=*/0.3));
    h.engine.add_source(be_flow(4, 9, 12, /*rate_per_slot=*/0.2));
  };
  Config config;
  config.frame_loss_prob = 0.01;  // exercise the RNG path too
  Harness a(12, config, /*seed=*/7);
  Harness b(12, config, /*seed=*/7);
  build(a);
  build(b);
  a.engine.run_slots(4000);
  b.engine.run_slots(4000);

  const auto& sa = a.engine.stats();
  const auto& sb = b.engine.stats();
  EXPECT_EQ(sa.sat_rounds, sb.sat_rounds);
  EXPECT_EQ(sa.sat_hops, sb.sat_hops);
  EXPECT_EQ(sa.data_transmissions, sb.data_transmissions);
  EXPECT_EQ(sa.transit_forwards, sb.transit_forwards);
  EXPECT_EQ(sa.frames_lost_link, sb.frames_lost_link);
  EXPECT_EQ(sa.sink.total_delivered(), sb.sink.total_delivered());
  for (const TrafficClass cls :
       {TrafficClass::kRealTime, TrafficClass::kBestEffort}) {
    EXPECT_EQ(sa.sink.by_class(cls).delivered, sb.sink.by_class(cls).delivered);
    EXPECT_EQ(sa.sink.by_class(cls).dropped, sb.sink.by_class(cls).dropped);
    EXPECT_EQ(sa.sink.by_class(cls).delay_slots.mean(),
              sb.sink.by_class(cls).delay_slots.mean());
  }
  EXPECT_EQ(sa.access_delay_slots.count(), sb.access_delay_slots.count());
  EXPECT_EQ(sa.access_delay_slots.mean(), sb.access_delay_slots.mean());
  EXPECT_EQ(sa.sat_rotation_slots.mean(), sb.sat_rotation_slots.mean());
}

TEST(PositionIndex, StaysAlignedAcrossMembershipChurn) {
  Harness h(10, Config{});
  h.engine.add_source(rt_flow(1, 1, 10));
  h.engine.run_slots(100);
  ASSERT_TRUE(h.engine.check_invariants().ok());

  // Crash-failure cut-out.
  const NodeId victim = h.engine.virtual_ring().station_at(4);
  h.engine.kill_station(victim);
  const std::int64_t bound =
      4 * analysis::sat_time_bound(h.engine.ring_params());
  for (std::int64_t i = 0; i < bound; ++i) {
    h.engine.step();
    ASSERT_TRUE(h.engine.check_invariants().ok()) << "slot " << i;
  }
  ASSERT_FALSE(h.engine.virtual_ring().contains(victim));
  EXPECT_THROW((void)h.engine.station(victim), std::out_of_range);

  // Graceful leave of another member.
  const NodeId leaver = h.engine.virtual_ring().station_at(2);
  ASSERT_TRUE(h.engine.request_leave(leaver).ok());
  for (int i = 0; i < 500; ++i) {
    h.engine.step();
    ASSERT_TRUE(h.engine.check_invariants().ok()) << "slot " << i;
  }
  ASSERT_EQ(h.engine.stats().leaves_completed, 1u);
  EXPECT_EQ(h.engine.virtual_ring().size(), 8u);

  // Every survivor is still reachable by id at its ring position.
  const auto& ring = h.engine.virtual_ring();
  for (std::size_t p = 0; p < ring.size(); ++p) {
    EXPECT_EQ(h.engine.station(ring.station_at(p)).id(), ring.station_at(p));
  }
}

TEST(LinkPipeline, DeepHopLatencyKeepsInvariants) {
  Config config;
  config.hop_latency_slots = 3;
  Harness h(8, config);
  auto spec = rt_flow(1, 0, 8, /*period_slots=*/2.0);
  h.engine.add_saturated_source(spec);
  for (int i = 0; i < 500; ++i) {
    h.engine.step();
    ASSERT_TRUE(h.engine.check_invariants().ok()) << "slot " << i;
  }
  EXPECT_GT(h.engine.stats().sink.total_delivered(), 0u);
}

}  // namespace
}  // namespace wrt::wrtring
