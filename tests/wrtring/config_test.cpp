#include "wrtring/config.hpp"

#include <gtest/gtest.h>

#include "tests/wrtring/test_helpers.hpp"

namespace wrt::wrtring {
namespace {

TEST(ConfigValidate, DefaultIsValid) {
  EXPECT_TRUE(Config{}.validate().ok());
}

TEST(ConfigValidate, HopLatencyPositive) {
  Config config;
  config.hop_latency_slots = 0;
  EXPECT_FALSE(config.validate().ok());
}

TEST(ConfigValidate, NegativeSatHopRejected) {
  Config config;
  config.sat_hop_latency_slots = -1;
  EXPECT_FALSE(config.validate().ok());
}

TEST(ConfigValidate, RapHandshakeNeedsThreeEarSlots) {
  Config config;
  config.rap_policy = RapPolicy::kRotating;
  config.t_ear_slots = 2;
  EXPECT_FALSE(config.validate().ok());
  config.t_ear_slots = 3;
  EXPECT_TRUE(config.validate().ok());
}

TEST(ConfigValidate, RapUpdatePhaseNonEmpty) {
  Config config;
  config.rap_policy = RapPolicy::kRotating;
  config.t_update_slots = 0;
  EXPECT_FALSE(config.validate().ok());
}

TEST(ConfigValidate, EarSlotsIrrelevantWithoutRap) {
  Config config;
  config.t_ear_slots = 0;  // fine: RAP disabled
  EXPECT_TRUE(config.validate().ok());
}

TEST(ConfigValidate, SplitCannotExceedK) {
  Config config;
  config.default_quota = {1, 2};
  config.k1_assured = 3;
  EXPECT_FALSE(config.validate().ok());
  config.k1_assured = 2;
  EXPECT_TRUE(config.validate().ok());
}

TEST(ConfigValidate, SplitCheckedAgainstPerStationQuotas) {
  Config config;
  config.default_quota = {1, 4};
  config.k1_assured = 2;
  config.station_quotas = {{1, 4}, {1, 1}};  // second station's k < k1
  EXPECT_FALSE(config.validate().ok());
}

TEST(ConfigValidate, LossProbabilityRange) {
  Config config;
  config.frame_loss_prob = 1.0;
  EXPECT_FALSE(config.validate().ok());
  config.frame_loss_prob = -0.1;
  EXPECT_FALSE(config.validate().ok());
  config.frame_loss_prob = 0.5;
  config.sat_loss_prob = 0.999;
  EXPECT_TRUE(config.validate().ok());
}

TEST(ConfigValidate, AutoRejoinNeedsRap) {
  Config config;
  config.auto_rejoin = true;
  EXPECT_FALSE(config.validate().ok());
  config.rap_policy = RapPolicy::kRotating;
  EXPECT_TRUE(config.validate().ok());
}

TEST(ConfigValidate, QueueCapacityPositive) {
  Config config;
  config.queue_capacity = 0;
  EXPECT_FALSE(config.validate().ok());
}

TEST(ConfigValidate, EngineInitRejectsInvalidConfig) {
  Config config;
  config.auto_rejoin = true;  // without RAP: invalid
  phy::Topology topology = testing::circle_topology(6);
  Engine engine(&topology, config, 1);
  const auto status = engine.init();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, util::Error::Code::kInvalidArgument);
}

}  // namespace
}  // namespace wrt::wrtring
