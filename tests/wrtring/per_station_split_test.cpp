// Section 2.3's per-station class independence: "any single station can
// decide the number of classes of services to implement.  These classes
// are provided to its own traffic, without affecting and without being
// affected by the behavior of the other stations."
#include <gtest/gtest.h>

#include "tests/wrtring/test_helpers.hpp"
#include "wrtring/engine.hpp"

namespace wrt::wrtring {
namespace {

using testing::Harness;

traffic::FlowSpec saturated(FlowId id, NodeId src, NodeId dst,
                            TrafficClass cls) {
  traffic::FlowSpec spec;
  spec.id = id;
  spec.src = src;
  spec.dst = dst;
  spec.cls = cls;
  return spec;
}

TEST(PerStationSplit, SetterValidates) {
  Config config;
  config.default_quota = {1, 3};
  Harness h(6, config);
  EXPECT_NO_THROW(h.engine.set_station_split(0, 2));
  EXPECT_EQ(h.engine.station(0).k1_assured(), 2u);
  EXPECT_THROW(h.engine.set_station_split(0, 4), std::invalid_argument);
  EXPECT_THROW(h.engine.set_station_split(99, 1), std::out_of_range);
}

TEST(PerStationSplit, DifferentStationsDifferentClasses) {
  // Station 0 reserves 3 of its k = 4 for Assured; station 3 keeps the
  // plain two-class behaviour (k1 = 0, priority only).  Both saturated in
  // Assured + BE toward their successors.
  Config config;
  config.default_quota = {0, 4};
  Harness h(8, config);
  h.engine.set_station_split(0, 3);

  for (const NodeId src : {NodeId{0}, NodeId{3}}) {
    const NodeId dst = h.engine.virtual_ring().successor(src);
    h.engine.add_saturated_source(
        saturated(src * 2 + 1, src, dst, TrafficClass::kAssured), 8);
    h.engine.add_saturated_source(
        saturated(src * 2 + 2, src, dst, TrafficClass::kBestEffort), 8);
  }
  h.engine.run_slots(8000);
  const auto& per_flow = h.engine.stats().sink.per_flow();

  // Station 0 (split 3/1): Assured gets ~3x the BE throughput.
  const double s0_ratio =
      static_cast<double>(per_flow.at(1).count()) /
      static_cast<double>(per_flow.at(2).count());
  EXPECT_NEAR(s0_ratio, 3.0, 0.5);

  // Station 3 (no split): strict priority starves BE entirely under
  // Assured saturation.
  EXPECT_GT(per_flow.at(7).count(), 1000u);
  EXPECT_EQ(per_flow.count(8), 0u);
}

TEST(PerStationSplit, SplitDoesNotAffectNeighbours) {
  Config config;
  config.default_quota = {1, 2};
  const auto run = [&](bool with_split) {
    Harness h(8, config, 3);
    if (with_split) h.engine.set_station_split(0, 2);
    // Only station 4 carries traffic; station 0's split must not matter.
    h.engine.add_saturated_source(
        saturated(1, 4, h.engine.virtual_ring().successor(4),
                  TrafficClass::kBestEffort),
        8);
    h.engine.run_slots(4000);
    return h.engine.stats().sink.total_delivered();
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(RingUtilization, TracksLoad) {
  Config config;
  config.default_quota = {4, 0};
  Harness idle(12, config, 3);
  idle.engine.run_slots(2000);
  EXPECT_NEAR(idle.engine.ring_utilization(), 0.0, 1e-9);

  Harness loaded(12, config, 3);
  for (NodeId n = 0; n < 12; ++n) {
    loaded.engine.add_saturated_source(
        saturated(n, n, loaded.engine.virtual_ring().successor(n),
                  TrafficClass::kRealTime),
        8);
  }
  loaded.engine.run_slots(4000);
  const double utilization = loaded.engine.ring_utilization();
  EXPECT_GT(utilization, 0.2);
  EXPECT_LE(utilization, 1.0);
}

TEST(RingUtilization, HigherUnderTransitTraffic) {
  // Ring-crossing traffic occupies ~N/2 links per delivered packet, so at
  // equal delivered throughput the utilisation is far higher than for
  // neighbour traffic.
  Config config;
  config.default_quota = {2, 0};
  Harness neighbour(12, config, 3);
  Harness crossing(12, config, 3);
  for (NodeId n = 0; n < 12; ++n) {
    neighbour.engine.add_saturated_source(
        saturated(n, n, neighbour.engine.virtual_ring().successor(n),
                  TrafficClass::kRealTime),
        8);
    crossing.engine.add_saturated_source(
        saturated(n, n,
                  crossing.engine.virtual_ring().station_at(
                      crossing.engine.virtual_ring().position_of(n) + 6),
                  TrafficClass::kRealTime),
        8);
  }
  neighbour.engine.run_slots(6000);
  crossing.engine.run_slots(6000);
  EXPECT_GT(crossing.engine.ring_utilization(),
            1.5 * neighbour.engine.ring_utilization());
}

}  // namespace
}  // namespace wrt::wrtring
