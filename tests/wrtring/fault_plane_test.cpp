// Fault-plane semantics at the engine level: stall/resume (a wedged station
// is cut out and rejoins on resume), partition teardown accounting, the
// degrade/heal link override, and the per-purpose RNG isolation contract
// (enabling data loss must not move SAT behaviour).
#include <gtest/gtest.h>

#include <tuple>

#include "analysis/bounds.hpp"
#include "fault/gilbert_elliott.hpp"
#include "tests/wrtring/test_helpers.hpp"
#include "wrtring/engine.hpp"

namespace wrt::wrtring {
namespace {

using testing::Harness;
using testing::rt_flow;

Config resilient_config() {
  Config config;
  config.rap_policy = RapPolicy::kRotating;
  config.auto_rejoin = true;
  return config;
}

std::uint64_t accounted_frames(const Engine& engine) {
  const EngineStats& stats = engine.stats();
  return stats.sink.total_delivered() + stats.frames_lost_link +
         stats.frames_lost_rebuild + stats.frames_lost_churn +
         stats.frames_dropped_stale + engine.frames_in_flight();
}

TEST(FaultPlane, StalledStationIsCutOutAndStaysOut) {
  Harness h(8, resilient_config(), 21);
  h.engine.run_slots(200);
  h.engine.stall_station(3);
  EXPECT_TRUE(h.engine.station_stalled(3));
  // The wedged station swallows the SAT; detection + SAT_REC cut it out.
  // Mis-blamed healthy neighbours auto-rejoin, the stalled one cannot.
  h.engine.run_slots(8000);
  EXPECT_GE(h.engine.stats().sat_losses_detected, 1u);
  EXPECT_FALSE(h.engine.virtual_ring().contains(3));
  EXPECT_EQ(h.engine.virtual_ring().size(), 7u);
  EXPECT_TRUE(h.engine.sat_state() == SatState::kInTransit ||
              h.engine.sat_state() == SatState::kHeld);
  EXPECT_TRUE(h.engine.check_invariants().ok());
}

TEST(FaultPlane, ResumeRejoinsTheRing) {
  Harness h(8, resilient_config(), 21);
  h.engine.run_slots(200);
  h.engine.stall_station(3);
  h.engine.run_slots(8000);
  ASSERT_FALSE(h.engine.virtual_ring().contains(3));
  h.engine.resume_station(3);
  EXPECT_FALSE(h.engine.station_stalled(3));
  h.engine.run_slots(8000);
  EXPECT_TRUE(h.engine.virtual_ring().contains(3));
  EXPECT_EQ(h.engine.virtual_ring().size(), 8u);
  EXPECT_TRUE(h.engine.check_invariants().ok());
}

TEST(FaultPlane, PartitionAndRejoinSplitTheLossBuckets) {
  Harness h(12, resilient_config(), 5);
  for (NodeId n = 0; n < 12; ++n) {
    h.engine.add_source(rt_flow(n, n, 12, 6.0));
  }
  h.engine.run_slots(500);
  h.topology.set_partition({{0, 1, 2, 3, 4, 5}, {6, 7, 8, 9, 10, 11}});
  h.engine.run_slots(6000);
  const EngineStats& mid = h.engine.stats();
  EXPECT_GE(mid.ring_rebuilds, 1u);
  // Frames caught crossing the cut die on a broken hop: that is link loss,
  // not teardown loss.
  EXPECT_GT(mid.frames_lost_link, 0u);
  EXPECT_LE(h.engine.virtual_ring().size(), 6u);
  EXPECT_EQ(mid.data_transmissions, accounted_frames(h.engine));

  h.topology.clear_partition();
  for (NodeId n = 0; n < 12; ++n) {
    if (!h.engine.virtual_ring().contains(n)) {
      h.engine.request_join(n, {1, 1});
    }
  }
  h.engine.run_slots(12000);
  EXPECT_EQ(h.engine.virtual_ring().size(), 12u);
  // Re-admitting stations while traffic flows tears down in-flight frames
  // (the ring order changes under them): joins are healthy churn, so the
  // loss lands in the churn bucket and must inflate neither the rebuild
  // nor the link-quality bucket.
  EXPECT_GT(h.engine.stats().frames_lost_churn, 0u)
      << "join teardowns must land in frames_lost_churn";
  EXPECT_EQ(h.engine.stats().data_transmissions, accounted_frames(h.engine));
  EXPECT_TRUE(h.engine.check_invariants().ok());
}

TEST(FaultPlane, DegradeAndHealLinkOverride) {
  Config config = resilient_config();
  Harness h(8, config, 13);
  for (NodeId n = 0; n < 8; ++n) {
    h.engine.add_source(rt_flow(n, n, 8, 8.0));
  }
  h.engine.run_slots(500);
  ASSERT_EQ(h.engine.stats().frames_lost_link, 0u);

  const NodeId a = h.engine.virtual_ring().station_at(0);
  const NodeId b = h.engine.virtual_ring().successor(a);
  h.engine.degrade_link(a, b, fault::GeParams::bursty(0.5, 4.0));
  h.engine.run_slots(4000);
  const std::uint64_t lost_during = h.engine.stats().frames_lost_link;
  EXPECT_GT(lost_during, 0u) << "degraded ring link must lose data frames";

  h.engine.heal_link(a, b);
  // Let any in-flight recovery settle, then measure a clean window.
  h.engine.run_slots(
      4 * analysis::sat_time_bound(h.engine.ring_params()));
  const std::uint64_t settled = h.engine.stats().frames_lost_link;
  h.engine.run_slots(4000);
  EXPECT_EQ(h.engine.stats().frames_lost_link, settled)
      << "healed link must stop losing frames";
  EXPECT_TRUE(h.engine.sat_state() == SatState::kInTransit ||
              h.engine.sat_state() == SatState::kHeld);
  EXPECT_EQ(h.engine.stats().data_transmissions, accounted_frames(h.engine));
}

/// Per-purpose stream isolation at the engine level: enabling control loss
/// when the handshake never runs (no joiners) makes zero control draws, so
/// the whole trajectory — including the SAT and data planes, which draw
/// from their own streams — is bit-identical to the control-clean run.
TEST(FaultPlane, UnusedControlLossIsAPerfectNoOp) {
  const auto trajectory = [](bool with_control_loss) {
    // RAP disabled: the handshake never runs, so the control purpose is
    // never offered a message (auto_rejoin would create joiners).
    Config config;
    config.channel.sat = fault::GeParams::iid(0.004);
    config.channel.data = fault::GeParams::bursty(0.1, 8.0);
    if (with_control_loss) {
      config.channel.control = fault::GeParams::iid(0.5);
    }
    Harness h(8, config, 31);
    for (NodeId n = 0; n < 8; ++n) {
      h.engine.add_source(rt_flow(n, n, 8, 16.0));
    }
    h.engine.run_slots(20000);
    return std::tuple{h.engine.stats().sat_rounds,
                      h.engine.stats().sat_losses_detected,
                      h.engine.stats().sat_recoveries,
                      h.engine.stats().frames_lost_link,
                      h.engine.stats().sink.total_delivered(),
                      h.engine.stats().control_messages_lost};
  };
  const auto clean = trajectory(false);
  const auto armed = trajectory(true);
  EXPECT_EQ(clean, armed);
  EXPECT_EQ(std::get<5>(armed), 0u);
}

/// Data loss must never touch the SAT recovery machinery — the bursty
/// channel analogue of the legacy frame_loss_prob guarantee.
TEST(FaultPlane, BurstyDataLossDoesNotTouchTheSat) {
  Config config;
  config.channel.data = fault::GeParams::bursty(0.3, 16.0);
  Harness h(8, config, 37);
  for (NodeId n = 0; n < 8; ++n) {
    h.engine.add_source(rt_flow(n, n, 8, 8.0));
  }
  h.engine.run_slots(10000);
  EXPECT_GT(h.engine.stats().frames_lost_link, 0u);
  EXPECT_EQ(h.engine.stats().sat_losses_detected, 0u);
  EXPECT_EQ(h.engine.stats().ring_rebuilds, 0u);
}

/// Legacy scalar knobs remain the degenerate i.i.d. case of the channel.
TEST(FaultPlane, ScalarKnobsFoldIntoTheChannel) {
  const auto run = [](Config config) {
    Harness h(8, config, 17);
    for (NodeId n = 0; n < 8; ++n) {
      h.engine.add_source(rt_flow(n, n, 8, 16.0));
    }
    h.engine.run_slots(10000);
    return std::tuple{h.engine.stats().frames_lost_link,
                      h.engine.stats().sat_losses_detected};
  };
  Config scalars;
  scalars.frame_loss_prob = 0.1;
  scalars.sat_loss_prob = 0.002;
  Config channel;
  channel.channel.data = fault::GeParams::iid(0.1);
  channel.channel.sat = fault::GeParams::iid(0.002);
  EXPECT_EQ(run(scalars), run(channel));
}

TEST(FaultPlane, AccountingIdentityHoldsUnderBurstyLossAndChurn) {
  Config config = resilient_config();
  config.channel.data = fault::GeParams::bursty(0.1, 16.0);
  config.channel.sat = fault::GeParams::iid(0.002);
  Harness h(10, config, 23);
  for (NodeId n = 0; n < 10; ++n) {
    h.engine.add_source(rt_flow(n, n, 10, 6.0));
  }
  h.engine.run_slots(5000);
  h.engine.kill_station(h.engine.virtual_ring().station_at(4));
  h.engine.run_slots(5000);
  h.engine.stall_station(h.engine.virtual_ring().station_at(1));
  h.engine.run_slots(5000);
  const EngineStats& stats = h.engine.stats();
  EXPECT_GT(stats.frames_lost_link, 0u);
  EXPECT_EQ(stats.data_transmissions, accounted_frames(h.engine));
  EXPECT_TRUE(h.engine.check_invariants().ok());
}

}  // namespace
}  // namespace wrt::wrtring
