// Section 2.4.1 fairness: "To ensure the fairness, after acting as ingress
// station, a node has to wait S_round(i) >= N SAT rounds in order to enter
// the RAP period again" — and the RAP_mutex admits at most one RAP per SAT
// round.  Verified from the protocol event trace.
#include <gtest/gtest.h>

#include <map>

#include "tests/wrtring/test_helpers.hpp"
#include "wrtring/engine.hpp"

namespace wrt::wrtring {
namespace {

using sim::EventKind;
using testing::Harness;

Config rap_config() {
  Config config;
  config.rap_policy = RapPolicy::kRotating;
  config.t_ear_slots = 3;
  config.t_update_slots = 1;
  return config;
}

TEST(RapFairness, EveryStationGetsIngressTurns) {
  Harness h(6, rap_config());
  h.engine.run_slots(6000);
  std::map<NodeId, int> raps;
  for (const auto& event : h.engine.event_trace().of_kind(
           EventKind::kRapStarted)) {
    ++raps[event.station];
  }
  EXPECT_EQ(raps.size(), 6u) << "every station must act as ingress";
  int min_raps = 1 << 30, max_raps = 0;
  for (const auto& [node, count] : raps) {
    min_raps = std::min(min_raps, count);
    max_raps = std::max(max_raps, count);
  }
  EXPECT_GE(min_raps, 1);
  EXPECT_LE(max_raps - min_raps, 2) << "ingress duty must rotate evenly";
}

TEST(RapFairness, SRoundSpacingRespected) {
  constexpr std::size_t kN = 8;
  Harness h(kN, rap_config());
  h.engine.run_slots(10000);
  // Between two RAPs of the same station, every other station RAPs once:
  // consecutive same-station RAPs are >= N-1 other RAP events apart.
  const auto raps = h.engine.event_trace().of_kind(EventKind::kRapStarted);
  ASSERT_GT(raps.size(), 2 * kN);
  std::map<NodeId, std::size_t> last_index;
  for (std::size_t i = 0; i < raps.size(); ++i) {
    const NodeId station = raps[i].station;
    if (const auto it = last_index.find(station);
        it != last_index.end()) {
      EXPECT_GE(i - it->second, kN - 1)
          << "station " << station << " re-entered the RAP too soon";
    }
    last_index[station] = i;
  }
}

TEST(RapFairness, AtMostOneRapPerRound) {
  Harness h(8, rap_config());
  h.engine.run_slots(6000);
  const auto& stats = h.engine.stats();
  EXPECT_LE(stats.raps_started, stats.sat_rounds + 1);
  // And RAPs genuinely happen (the cost term T_rap is real).
  EXPECT_GT(stats.raps_started, stats.sat_rounds / 3);
}

TEST(RapFairness, DisabledPolicyNeverRaps) {
  Harness h(8, Config{});
  h.engine.run_slots(4000);
  EXPECT_EQ(h.engine.stats().raps_started, 0u);
  EXPECT_TRUE(
      h.engine.event_trace().of_kind(EventKind::kRapStarted).empty());
}

}  // namespace
}  // namespace wrt::wrtring
