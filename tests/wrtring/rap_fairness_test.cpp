// Section 2.4.1 fairness: "To ensure the fairness, after acting as ingress
// station, a node has to wait S_round(i) >= N SAT rounds in order to enter
// the RAP period again" — and the RAP_mutex admits at most one RAP per SAT
// round.  Verified from the protocol event trace.
#include <gtest/gtest.h>

#include <map>

#include "tests/wrtring/test_helpers.hpp"
#include "wrtring/engine.hpp"

namespace wrt::wrtring {
namespace {

using sim::EventKind;
using testing::Harness;

Config rap_config() {
  Config config;
  config.rap_policy = RapPolicy::kRotating;
  config.t_ear_slots = 3;
  config.t_update_slots = 1;
  return config;
}

TEST(RapFairness, EveryStationGetsIngressTurns) {
  Harness h(6, rap_config());
  h.engine.run_slots(6000);
  std::map<NodeId, int> raps;
  for (const auto& event : h.engine.event_trace().of_kind(
           EventKind::kRapStarted)) {
    ++raps[event.station];
  }
  EXPECT_EQ(raps.size(), 6u) << "every station must act as ingress";
  int min_raps = 1 << 30, max_raps = 0;
  for (const auto& [node, count] : raps) {
    min_raps = std::min(min_raps, count);
    max_raps = std::max(max_raps, count);
  }
  EXPECT_GE(min_raps, 1);
  EXPECT_LE(max_raps - min_raps, 2) << "ingress duty must rotate evenly";
}

TEST(RapFairness, SRoundSpacingRespected) {
  constexpr std::size_t kN = 8;
  Harness h(kN, rap_config());
  h.engine.run_slots(10000);
  // Between two RAPs of the same station, every other station RAPs once:
  // consecutive same-station RAPs are >= N-1 other RAP events apart.
  const auto raps = h.engine.event_trace().of_kind(EventKind::kRapStarted);
  ASSERT_GT(raps.size(), 2 * kN);
  std::map<NodeId, std::size_t> last_index;
  for (std::size_t i = 0; i < raps.size(); ++i) {
    const NodeId station = raps[i].station;
    if (const auto it = last_index.find(station);
        it != last_index.end()) {
      EXPECT_GE(i - it->second, kN - 1)
          << "station " << station << " re-entered the RAP too soon";
    }
    last_index[station] = i;
  }
}

TEST(RapFairness, AtMostOneRapPerRound) {
  Harness h(8, rap_config());
  h.engine.run_slots(6000);
  const auto& stats = h.engine.stats();
  EXPECT_LE(stats.raps_started, stats.sat_rounds + 1);
  // And RAPs genuinely happen (the cost term T_rap is real).
  EXPECT_GT(stats.raps_started, stats.sat_rounds / 3);
}

TEST(RapFairness, DisabledPolicyNeverRaps) {
  Harness h(8, Config{});
  h.engine.run_slots(4000);
  EXPECT_EQ(h.engine.stats().raps_started, 0u);
  EXPECT_TRUE(
      h.engine.event_trace().of_kind(EventKind::kRapStarted).empty());
}

/// A 7-node topology ringing only stations 0..5, leaving node 6 as a live
/// joiner candidate for the lossy-handshake tests.
Harness harness_with_joiner(Config config, std::uint64_t seed) {
  config.members = {0, 1, 2, 3, 4, 5};
  return Harness(7, std::move(config), seed);
}

/// Section 2.4.1 under loss: whichever single handshake message is lost
/// (NEXT_FREE, JOIN_REQ, or JOIN_ACK), the join must still complete — via
/// simply hearing the next broadcast, or via the retry/backoff path — and
/// nothing may be half-inserted meanwhile.
TEST(LossyJoin, SingleMessageLossAtEveryPositionStillJoins) {
  for (const auto msg :
       {Engine::ControlMsg::kNextFree, Engine::ControlMsg::kJoinReq,
        Engine::ControlMsg::kJoinAck}) {
    SCOPED_TRACE(static_cast<int>(msg));
    Harness h = harness_with_joiner(rap_config(), 41);
    h.engine.run_slots(100);
    h.engine.request_join(6, {1, 1});
    h.engine.drop_control_once(msg);
    h.engine.run_slots(8000);
    const auto& stats = h.engine.stats();
    EXPECT_GE(stats.control_messages_lost, 1u);
    EXPECT_EQ(stats.joins_completed, 1u);
    EXPECT_EQ(stats.joins_abandoned, 0u);
    EXPECT_TRUE(h.engine.virtual_ring().contains(6));
    EXPECT_EQ(h.engine.virtual_ring().size(), 7u);
    if (msg != Engine::ControlMsg::kNextFree) {
      // A joiner that sent JOIN_REQ and saw no acknowledged insertion
      // backs off; a lost NEXT_FREE is invisible to it (no retry charged).
      EXPECT_GE(stats.join_retries, 1u);
    }
    EXPECT_TRUE(h.engine.check_invariants().ok());
  }
}

/// Losing the handshake every single time must end in a clean abandonment
/// after join_max_attempts: nothing half-inserted, RAP_mutex free, and a
/// later retry under a clean channel succeeds.
TEST(LossyJoin, PersistentLossAbandonsCleanlyWithoutWedgingTheRap) {
  Config config = rap_config();
  config.join_max_attempts = 5;
  Harness h = harness_with_joiner(config, 43);
  h.engine.run_slots(100);
  h.engine.request_join(6, {1, 1});
  // Re-arm the drop the moment each one is consumed, so every attempt of
  // the backoff ladder loses its JOIN_REQ (backoff >= base slots keeps the
  // re-arm ahead of the next attempt).
  std::uint64_t seen = 0;
  while (h.engine.stats().joins_abandoned == 0 &&
         h.engine.now_slots() < 60000) {
    h.engine.drop_control_once(Engine::ControlMsg::kJoinReq);
    while (h.engine.stats().control_messages_lost == seen &&
           h.engine.now_slots() < 60000) {
      h.engine.run_slots(1);
    }
    seen = h.engine.stats().control_messages_lost;
  }
  const auto& stats = h.engine.stats();
  EXPECT_EQ(stats.joins_abandoned, 1u);
  EXPECT_EQ(stats.join_retries, config.join_max_attempts);
  EXPECT_EQ(stats.joins_completed, 0u);
  EXPECT_FALSE(h.engine.virtual_ring().contains(6));
  EXPECT_EQ(h.engine.virtual_ring().size(), 6u);
  EXPECT_TRUE(h.engine.check_invariants().ok());

  // The RAP machinery survived: a fresh, loss-free join goes through.
  const auto raps_before = h.engine.stats().raps_started;
  h.engine.request_join(6, {1, 1});
  h.engine.run_slots(4000);
  EXPECT_GT(h.engine.stats().raps_started, raps_before);
  EXPECT_EQ(h.engine.stats().joins_completed, 1u);
  EXPECT_TRUE(h.engine.virtual_ring().contains(6));
}

/// Exponential backoff must actually space the retries out: with the
/// channel losing every control message, later attempts are further apart.
TEST(LossyJoin, BackoffDelaysGrow) {
  Config config = rap_config();
  config.join_max_attempts = 4;
  // Large enough base that the exponential ladder dominates the RAP
  // cadence quantisation by the final attempt.
  config.join_backoff_base_slots = 256;
  Harness h = harness_with_joiner(config, 47);
  h.engine.run_slots(100);
  h.engine.request_join(6, {1, 1});
  std::vector<std::int64_t> loss_slots;
  std::uint64_t seen = 0;
  while (h.engine.stats().joins_abandoned == 0 &&
         h.engine.now_slots() < 40000) {
    h.engine.drop_control_once(Engine::ControlMsg::kJoinReq);
    while (h.engine.stats().control_messages_lost == seen &&
           h.engine.now_slots() < 40000) {
      h.engine.run_slots(1);
    }
    if (h.engine.stats().control_messages_lost > seen) {
      seen = h.engine.stats().control_messages_lost;
      loss_slots.push_back(h.engine.now_slots());
    }
  }
  ASSERT_EQ(loss_slots.size(), 4u);
  // Attempt 3 -> 4 waits at least base << 2 slots; attempt 1 -> 2 only
  // base << 0 plus RAP cadence, so the last gap dominates the first.
  const auto first_gap = loss_slots[1] - loss_slots[0];
  const auto last_gap = loss_slots[3] - loss_slots[2];
  EXPECT_GE(last_gap, config.join_backoff_base_slots << 2);
  EXPECT_GT(last_gap, first_gap);
}

}  // namespace
}  // namespace wrt::wrtring
