// Shared fixtures for WRT-Ring engine tests.
#pragma once

#include <cmath>
#include <memory>
#include <numbers>

#include "phy/topology.hpp"
#include "wrtring/engine.hpp"

namespace wrt::wrtring::testing {

/// N stations on a circle with radio range covering ~2 hops, so the ring is
/// buildable and stays repairable after one station is cut out.
inline phy::Topology circle_topology(std::size_t n,
                                     double range_hops = 2.4) {
  const double radius = 10.0;
  const double chord =
      2.0 * radius * std::sin(std::numbers::pi / static_cast<double>(n));
  return phy::Topology(phy::placement::circle(n, radius),
                       phy::RadioParams{chord * range_hops, 0.0});
}

struct Harness {
  Harness(std::size_t n, Config config, std::uint64_t seed = 1,
          double range_hops = 2.4)
      : topology(circle_topology(n, range_hops)),
        engine(&topology, std::move(config), seed) {
    const auto status = engine.init();
    if (!status.ok()) {
      throw std::runtime_error("engine init failed: " +
                               status.error().message);
    }
  }

  phy::Topology topology;
  Engine engine;
};

/// A real-time flow from station `src` to the diametrically opposite
/// station (worst-case ring distance).
inline traffic::FlowSpec rt_flow(FlowId id, NodeId src, std::size_t n,
                                 double period_slots = 8.0,
                                 std::int64_t deadline_slots = 10000) {
  traffic::FlowSpec spec;
  spec.id = id;
  spec.src = src;
  spec.dst = static_cast<NodeId>((src + n / 2) % n);
  spec.cls = TrafficClass::kRealTime;
  spec.kind = traffic::ArrivalKind::kCbr;
  spec.period_slots = period_slots;
  spec.deadline_slots = deadline_slots;
  return spec;
}

inline traffic::FlowSpec be_flow(FlowId id, NodeId src, std::size_t n,
                                 double rate_per_slot = 0.2) {
  traffic::FlowSpec spec;
  spec.id = id;
  spec.src = src;
  spec.dst = static_cast<NodeId>((src + 1) % n);
  spec.cls = TrafficClass::kBestEffort;
  spec.kind = traffic::ArrivalKind::kPoisson;
  spec.rate_per_slot = rate_per_slot;
  return spec;
}

}  // namespace wrt::wrtring::testing
