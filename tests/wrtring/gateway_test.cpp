#include "wrtring/gateway.hpp"

#include <gtest/gtest.h>

#include "tests/wrtring/test_helpers.hpp"

namespace wrt::wrtring {
namespace {

using testing::Harness;

diffserv::EdgePolicy lan_policy() {
  diffserv::EdgePolicy policy;
  policy.premium_rate = 0.10;
  policy.premium_burst = 4.0;
  policy.assured_rate = 0.2;
  return policy;
}

class GatewayTest : public ::testing::Test {
 protected:
  GatewayTest()
      : harness_(8, Config{}),
        lan_(lan_policy(), 2, 1.0, 256),
        gateway_(&harness_.engine, &lan_,
                 harness_.engine.virtual_ring().station_at(0)) {
    harness_.engine.set_max_sat_time_goal(60);
  }

  Harness harness_;
  diffserv::LanModel lan_;
  Gateway gateway_;
};

TEST_F(GatewayTest, LanToRingReservationWithinBoundAccepted) {
  const auto result = gateway_.reserve_lan_to_ring(1, 0.02);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().lan_to_ring);
  EXPECT_DOUBLE_EQ(gateway_.reserved_into_ring(), 0.02);
}

TEST_F(GatewayTest, LanToRingReservationBeyondBoundRejected) {
  // A rate needing more l quota than the SAT-time goal admits.
  const auto result = gateway_.reserve_lan_to_ring(2, 2.0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, util::Error::Code::kAdmissionRejected);
  EXPECT_DOUBLE_EQ(gateway_.reserved_into_ring(), 0.0);
}

TEST_F(GatewayTest, RingToLanHonoursPremiumCapacity) {
  ASSERT_TRUE(gateway_.reserve_ring_to_lan(3, 0.06).ok());
  // 0.06 + 0.05 > 0.10 Premium capacity.
  const auto second = gateway_.reserve_ring_to_lan(4, 0.05);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, util::Error::Code::kAdmissionRejected);
  // A smaller stream still fits.
  EXPECT_TRUE(gateway_.reserve_ring_to_lan(5, 0.03).ok());
}

TEST_F(GatewayTest, RejectsNonPositiveRates) {
  EXPECT_FALSE(gateway_.reserve_lan_to_ring(1, 0.0).ok());
  EXPECT_FALSE(gateway_.reserve_ring_to_lan(1, -0.5).ok());
}

TEST_F(GatewayTest, ForwardedPacketsCrossTheLan) {
  traffic::Packet p;
  p.flow = 6;
  p.cls = TrafficClass::kRealTime;
  p.created = 0;
  gateway_.forward_to_lan(p, 0);
  for (int slot = 1; slot <= 10; ++slot) {
    lan_.step(slots_to_ticks(slot));
  }
  EXPECT_EQ(lan_.sink().total_delivered(), 1u);
}

TEST_F(GatewayTest, ReservationLedger) {
  ASSERT_TRUE(gateway_.reserve_lan_to_ring(1, 0.01).ok());
  ASSERT_TRUE(gateway_.reserve_ring_to_lan(2, 0.02).ok());
  ASSERT_EQ(gateway_.reservations().size(), 2u);
  EXPECT_TRUE(gateway_.reservations()[0].lan_to_ring);
  EXPECT_FALSE(gateway_.reservations()[1].lan_to_ring);
  EXPECT_DOUBLE_EQ(gateway_.reserved_into_ring(), 0.01);
}

TEST_F(GatewayTest, StationAccessor) {
  EXPECT_EQ(gateway_.station(),
            harness_.engine.virtual_ring().station_at(0));
}

TEST_F(GatewayTest, GrantRaisesG1Quota) {
  const Quota before = harness_.engine.station(gateway_.station()).quota();
  const auto result = gateway_.reserve_lan_to_ring(7, 0.05);
  ASSERT_TRUE(result.ok());
  const Quota after = harness_.engine.station(gateway_.station()).quota();
  EXPECT_EQ(after.l, before.l + result.value().granted_l);
  EXPECT_GE(result.value().granted_l, 1u);
  EXPECT_EQ(after.k, before.k);
}

TEST_F(GatewayTest, ReleaseRestoresRingQuota) {
  const Quota before = harness_.engine.station(gateway_.station()).quota();
  ASSERT_TRUE(gateway_.reserve_lan_to_ring(7, 0.05).ok());
  ASSERT_TRUE(gateway_.release(7).ok());
  EXPECT_EQ(harness_.engine.station(gateway_.station()).quota(), before);
  EXPECT_TRUE(gateway_.reservations().empty());
}

TEST_F(GatewayTest, ReleaseRestoresLanCapacity) {
  ASSERT_TRUE(gateway_.reserve_ring_to_lan(8, 0.08).ok());
  EXPECT_FALSE(gateway_.reserve_ring_to_lan(9, 0.05).ok());
  ASSERT_TRUE(gateway_.release(8).ok());
  EXPECT_TRUE(gateway_.reserve_ring_to_lan(9, 0.05).ok());
}

TEST_F(GatewayTest, ReleaseUnknownFlowFails) {
  EXPECT_FALSE(gateway_.release(99).ok());
}

TEST_F(GatewayTest, GrantedStreamActuallyFitsThroughG1) {
  // Without the grant a 0.2 pkt/slot inbound stream would exceed G1's
  // default l = 1 per round; with it, the ring carries the stream with no
  // queue growth at G1.
  harness_.engine.set_max_sat_time_goal(200);
  const auto result = gateway_.reserve_lan_to_ring(7, 0.2);
  ASSERT_TRUE(result.ok());
  traffic::FlowSpec inbound;
  inbound.id = 7;
  inbound.src = gateway_.station();
  inbound.dst = harness_.engine.virtual_ring().station_at(4);
  inbound.cls = TrafficClass::kRealTime;
  inbound.kind = traffic::ArrivalKind::kCbr;
  inbound.period_slots = 5.0;  // 0.2 pkt/slot
  inbound.deadline_slots = 1 << 20;
  harness_.engine.add_source(inbound);
  harness_.engine.run_slots(6000);
  const auto& per_flow = harness_.engine.stats().sink.per_flow();
  ASSERT_TRUE(per_flow.contains(7));
  // ~1200 generated; nearly all must be through.
  EXPECT_GT(per_flow.at(7).count(), 1100u);
  EXPECT_LT(harness_.engine.station(gateway_.station()).rt_queue_depth(),
            20u);
}

}  // namespace
}  // namespace wrt::wrtring
