// RecoveryFsm tests (DESIGN.md §14).
//
// Three layers:
//   1. the pure transition table, checked exhaustively over every
//      (state, request, tuning, guard_active) combination via invariants
//      plus pointwise legacy-parity cases;
//   2. the detached instance (no engine bound): timer bookkeeping, WTB
//      candidate tracking, revertive memory round-trip;
//   3. full-engine property tests: the guard window suppresses a stale
//      SAT_TIMER expiry, heal-cancel rescues an alive station without
//      membership churn, WTR delays re-admission and a flap restarts the
//      clock, revertive re-insertion restores position and quota, and a
//      forced switch holds a station out until cleared plus WTB.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "check/invariants.hpp"
#include "check/test_hooks.hpp"
#include "tests/wrtring/test_helpers.hpp"
#include "wrtring/engine.hpp"
#include "wrtring/recovery_fsm.hpp"

namespace wrt::wrtring {
namespace {

using S = RecoveryState;
using R = RecoveryRequest;
using A = RecoveryAction;

constexpr std::array<S, 4> kStates = {S::kIdle, S::kProtection, S::kPending,
                                      S::kForcedSwitch};
constexpr std::array<R, 11> kRequests = {
    R::kSignalFail,   R::kGracefulLeave, R::kRecoveryComplete,
    R::kRecDeadline,  R::kRingUnrepairable, R::kRebuildComplete,
    R::kForcedSwitch, R::kClearForced,   R::kWtrExpire,
    R::kWtbExpire,    R::kGuardExpire};

RecoveryTuning tuning(std::int64_t guard, std::int64_t wtr, std::int64_t wtb,
                      bool revertive) {
  RecoveryTuning t;
  t.guard_slots = guard;
  t.wtr_slots = wtr;
  t.wtb_slots = wtb;
  t.revertive = revertive;
  return t;
}

// ---------------------------------------------------------------------------
// 1. Pure transition table.
// ---------------------------------------------------------------------------

TEST(RecoveryFsmTable, ExhaustiveInvariants) {
  const std::array<RecoveryTuning, 5> tunings = {
      tuning(0, 0, 0, false),   tuning(32, 0, 0, false),
      tuning(0, 128, 0, false), tuning(0, 0, 64, false),
      tuning(32, 128, 64, true)};
  for (const RecoveryTuning& t : tunings) {
    for (const S state : kStates) {
      for (const R request : kRequests) {
        for (const bool guard : {false, true}) {
          const auto d = RecoveryFsm::transition(state, request, t, guard);
          // Deterministic.
          const auto again = RecoveryFsm::transition(state, request, t, guard);
          EXPECT_EQ(d.next, again.next);
          EXPECT_EQ(d.action, again.action);

          // The core guard_no_stale_rec safety property: no failure
          // indication ever starts a recovery inside the guard window.
          if (guard && request == R::kSignalFail) {
            EXPECT_EQ(d.action, A::kSuppress);
            EXPECT_EQ(d.next, state);
          }
          // A recovery already in flight absorbs duplicate indications.
          if (state == S::kProtection && request == R::kSignalFail) {
            EXPECT_EQ(d.action, A::kSuppress);
          }
          // Recoveries start only from a signal-fail outside the guard.
          if (d.action == A::kStartRecovery) {
            EXPECT_EQ(request, R::kSignalFail);
            EXPECT_FALSE(guard);
          }
          // Rebuilds come only from a deadline overrun or a structurally
          // unrepairable ring — and the latter always re-forms.
          if (d.action == A::kStartRebuild) {
            EXPECT_TRUE(request == R::kRecDeadline ||
                        request == R::kRingUnrepairable);
          }
          if (request == R::kRingUnrepairable) {
            EXPECT_EQ(d.action, A::kStartRebuild);
          }
          // Guard windows open only when configured, only on completion.
          if (d.action == A::kStartGuard) {
            EXPECT_GT(t.guard_slots, 0);
            EXPECT_TRUE(request == R::kRecoveryComplete ||
                        request == R::kRebuildComplete);
          }
          if (d.action == A::kArmWtb) {
            EXPECT_EQ(request, R::kClearForced);
            EXPECT_GT(t.wtb_slots, 0);
          }
          // A forced switch is sticky: only kClearForced leaves the state.
          if (state == S::kForcedSwitch && request != R::kClearForced) {
            EXPECT_EQ(d.next, S::kForcedSwitch);
          }
          if (request == R::kForcedSwitch) {
            EXPECT_EQ(d.next, S::kForcedSwitch);
          }
          if (request == R::kClearForced && state != S::kForcedSwitch) {
            EXPECT_EQ(d.next, state);
            EXPECT_EQ(d.action, A::kNone);
          }
          // Hold-off expiries admit and never change protection state.
          if (request == R::kWtrExpire || request == R::kWtbExpire) {
            EXPECT_EQ(d.next, state);
            EXPECT_EQ(d.action, A::kQueueRejoin);
          }
          // All-defaults tuning must stay on the legacy action set.
          if (t.guard_slots == 0 && t.wtb_slots == 0) {
            EXPECT_NE(d.action, A::kStartGuard);
            EXPECT_NE(d.action, A::kArmWtb);
          }
        }
      }
    }
  }
}

TEST(RecoveryFsmTable, LegacyParityPointwise) {
  const RecoveryTuning defaults = tuning(0, 0, 0, false);
  auto d = RecoveryFsm::transition(S::kIdle, R::kSignalFail, defaults, false);
  EXPECT_EQ(d.next, S::kProtection);
  EXPECT_EQ(d.action, A::kStartRecovery);

  d = RecoveryFsm::transition(S::kProtection, R::kRecoveryComplete, defaults,
                              false);
  EXPECT_EQ(d.next, S::kIdle);
  EXPECT_EQ(d.action, A::kNone);

  d = RecoveryFsm::transition(S::kProtection, R::kRecDeadline, defaults,
                              false);
  EXPECT_EQ(d.next, S::kProtection);
  EXPECT_EQ(d.action, A::kStartRebuild);

  d = RecoveryFsm::transition(S::kProtection, R::kRebuildComplete, defaults,
                              false);
  EXPECT_EQ(d.next, S::kIdle);
  EXPECT_EQ(d.action, A::kNone);
}

TEST(RecoveryFsmTable, GuardedCompletionOpensPendingWindow) {
  const RecoveryTuning guarded = tuning(32, 0, 0, false);
  auto d = RecoveryFsm::transition(S::kProtection, R::kRecoveryComplete,
                                   guarded, false);
  EXPECT_EQ(d.next, S::kPending);
  EXPECT_EQ(d.action, A::kStartGuard);

  d = RecoveryFsm::transition(S::kPending, R::kGuardExpire, guarded, false);
  EXPECT_EQ(d.next, S::kIdle);
  EXPECT_EQ(d.action, A::kNone);

  // A fresh failure straight after the guard closes is handled normally.
  d = RecoveryFsm::transition(S::kPending, R::kSignalFail, guarded, false);
  EXPECT_EQ(d.next, S::kProtection);
  EXPECT_EQ(d.action, A::kStartRecovery);
}

TEST(RecoveryFsmTable, ClearForcedRoutesThroughWtb) {
  auto d = RecoveryFsm::transition(S::kForcedSwitch, R::kClearForced,
                                   tuning(0, 0, 64, false), false);
  EXPECT_EQ(d.next, S::kPending);
  EXPECT_EQ(d.action, A::kArmWtb);

  d = RecoveryFsm::transition(S::kForcedSwitch, R::kClearForced,
                              tuning(0, 0, 0, false), false);
  EXPECT_EQ(d.next, S::kIdle);
  EXPECT_EQ(d.action, A::kQueueRejoin);
}

// ---------------------------------------------------------------------------
// 2. Detached instance (no engine bound).
// ---------------------------------------------------------------------------

TEST(RecoveryFsmDetached, DefaultsMirrorLegacyPaths) {
  RecoveryFsm fsm;
  fsm.bind(nullptr, tuning(0, 0, 0, false));
  EXPECT_FALSE(fsm.protective());
  EXPECT_EQ(fsm.on_station_cut(3, Quota{1, 1}, 2, 0, false,
                               slots_to_ticks(10)),
            RecoveryFsm::Admit::kNow);
  EXPECT_FALSE(fsm.timers_active());

  EXPECT_TRUE(fsm.on_signal_fail(4, 3, slots_to_ticks(20)));
  EXPECT_EQ(fsm.state(), S::kProtection);
  // Same accused again while the recovery is in flight: dropped as a dup.
  EXPECT_FALSE(fsm.on_signal_fail(5, 3, slots_to_ticks(21)));
  EXPECT_EQ(fsm.stale_rec_suppressed(), 1u);
  EXPECT_EQ(fsm.duplicate_requests_dropped(), 1u);

  fsm.on_recovery_complete(slots_to_ticks(40), 20.0);
  EXPECT_EQ(fsm.state(), S::kIdle);
  EXPECT_FALSE(fsm.timers_active());  // no guard window in defaults
  ASSERT_EQ(fsm.mttr_samples().size(), 1u);
  EXPECT_DOUBLE_EQ(fsm.mttr_samples()[0], 20.0);

  NodeId anchor = kInvalidNode;
  std::uint32_t k1 = 0;
  EXPECT_FALSE(fsm.take_revertive_anchor(3, &anchor, &k1));
}

TEST(RecoveryFsmDetached, GuardWindowLifecycle) {
  RecoveryFsm fsm;
  fsm.bind(nullptr, tuning(32, 0, 0, false));
  EXPECT_TRUE(fsm.protective());

  EXPECT_TRUE(fsm.on_signal_fail(4, 3, slots_to_ticks(0)));
  fsm.on_recovery_complete(slots_to_ticks(10), 10.0);
  EXPECT_EQ(fsm.state(), S::kPending);
  EXPECT_TRUE(fsm.guard_active(slots_to_ticks(11)));
  EXPECT_TRUE(fsm.timers_active());

  // Inside the window every fresh failure claim is a stale echo.
  EXPECT_FALSE(fsm.on_signal_fail(5, 4, slots_to_ticks(20)));
  EXPECT_GE(fsm.stale_rec_suppressed(), 1u);
  EXPECT_EQ(fsm.state(), S::kPending);

  // Expiry closes the window and returns to idle...
  fsm.tick(slots_to_ticks(50));
  EXPECT_EQ(fsm.state(), S::kIdle);
  EXPECT_FALSE(fsm.guard_active(slots_to_ticks(50)));
  EXPECT_FALSE(fsm.timers_active());

  // ...after which real failures are handled again.
  EXPECT_TRUE(fsm.on_signal_fail(5, 4, slots_to_ticks(60)));
  EXPECT_EQ(fsm.state(), S::kProtection);
}

TEST(RecoveryFsmDetached, ForcedSwitchHoldsUntilClearThenWtb) {
  RecoveryFsm fsm;
  fsm.bind(nullptr, tuning(0, 0, 16, false));

  EXPECT_TRUE(fsm.on_forced_switch(5, slots_to_ticks(0)));
  EXPECT_EQ(fsm.state(), S::kForcedSwitch);
  EXPECT_EQ(fsm.forced_station(), 5u);
  EXPECT_FALSE(fsm.on_forced_switch(5, slots_to_ticks(1)));  // duplicate
  EXPECT_GE(fsm.duplicate_requests_dropped(), 1u);

  EXPECT_EQ(fsm.on_station_cut(5, Quota{2, 1}, 3, 1, true, slots_to_ticks(5)),
            RecoveryFsm::Admit::kHeld);
  EXPECT_TRUE(fsm.tracks_rejoin(5));

  // Held indefinitely while the operator keeps the switch forced.
  for (std::int64_t s = 6; s < 200; s += 7) fsm.tick(slots_to_ticks(s));
  EXPECT_TRUE(fsm.tracks_rejoin(5));

  fsm.on_clear_forced(5, slots_to_ticks(200));
  EXPECT_EQ(fsm.state(), S::kPending);  // kArmWtb
  EXPECT_EQ(fsm.forced_station(), kInvalidNode);

  // WTB clock starts at the first tick after the clear; 15 < 16 holds.
  fsm.tick(slots_to_ticks(201));
  fsm.tick(slots_to_ticks(216));
  EXPECT_TRUE(fsm.tracks_rejoin(5));
  fsm.tick(slots_to_ticks(217));  // 16 slots continuously healthy
  EXPECT_FALSE(fsm.tracks_rejoin(5));
}

TEST(RecoveryFsmDetached, WtbZeroAdmitsImmediatelyOnClear) {
  RecoveryFsm fsm;
  fsm.bind(nullptr, tuning(0, 0, 0, false));
  EXPECT_TRUE(fsm.on_forced_switch(7, slots_to_ticks(0)));
  EXPECT_EQ(fsm.on_station_cut(7, Quota{1, 1}, 6, 0, true, slots_to_ticks(3)),
            RecoveryFsm::Admit::kHeld);
  fsm.on_clear_forced(7, slots_to_ticks(10));
  EXPECT_FALSE(fsm.tracks_rejoin(7));
  EXPECT_EQ(fsm.state(), S::kIdle);
}

TEST(RecoveryFsmDetached, RevertiveMemoryRoundTrips) {
  RecoveryFsm fsm;
  fsm.bind(nullptr, tuning(0, 0, 0, true));
  EXPECT_TRUE(fsm.protective());
  EXPECT_EQ(fsm.on_station_cut(4, Quota{3, 2}, 2, 7, false,
                               slots_to_ticks(0)),
            RecoveryFsm::Admit::kHeld);
  // wtr = 0: admitted on the first healthy tick, into revertive memory.
  fsm.tick(slots_to_ticks(1));
  EXPECT_FALSE(fsm.tracks_rejoin(4));

  NodeId anchor = kInvalidNode;
  std::uint32_t k1 = 0;
  ASSERT_TRUE(fsm.take_revertive_anchor(4, &anchor, &k1));
  EXPECT_EQ(anchor, 2u);
  EXPECT_EQ(k1, 7u);
  // The memory is consumed by the take.
  EXPECT_FALSE(fsm.take_revertive_anchor(4, &anchor, &k1));
}

// ---------------------------------------------------------------------------
// 3. Full-engine property tests.
// ---------------------------------------------------------------------------

Config protected_config(std::int64_t guard, std::int64_t wtr,
                        std::int64_t wtb, bool revertive) {
  Config config;
  config.rap_policy = RapPolicy::kRotating;
  config.auto_rejoin = true;
  config.guard_slots = guard;
  config.wtr_slots = wtr;
  config.wtb_slots = wtb;
  config.revertive = revertive;
  return config;
}

/// Backdates `detector`'s SAT_TIMER so the engine reads it as long expired —
/// the stale-SAT_REC stimulus.  The accused station is the detector's ring
/// predecessor (Section 2.5).
NodeId inject_stale_expiry(Engine& engine, NodeId detector) {
  const NodeId accused = engine.virtual_ring().predecessor(detector);
  check::EngineTestHook::age_sat_timer(engine, detector, 100000);
  return accused;
}

TEST(RecoveryFsmEngine, BaselineWithoutGuardCutsHealthyStation) {
  testing::Harness harness(8, Config{}, 1);
  harness.engine.run_slots(500);
  const NodeId detector = harness.engine.virtual_ring().station_at(3);
  const NodeId accused = inject_stale_expiry(harness.engine, detector);
  harness.engine.run_slots(300);

  // The paper's bare recovery chain acts on the stale claim: the healthy
  // station is cut out — the weakness the guard window exists to fix.
  EXPECT_EQ(harness.engine.stats().cut_outs, 1u);
  EXPECT_EQ(harness.engine.stats().spurious_cutouts, 1u);
  EXPECT_FALSE(harness.engine.virtual_ring().contains(accused));
  EXPECT_EQ(harness.engine.virtual_ring().size(), 7u);
}

TEST(RecoveryFsmEngine, GuardWindowSuppressesStaleExpiry) {
  testing::Harness harness(8, protected_config(64, 0, 0, false), 1);
  harness.engine.run_slots(500);
  check::EngineTestHook::open_guard(harness.engine);
  inject_stale_expiry(harness.engine,
                      harness.engine.virtual_ring().station_at(3));
  harness.engine.run_slots(16);  // well inside the 64-slot window

  const RecoveryFsm& fsm = harness.engine.recovery_fsm();
  EXPECT_GE(fsm.stale_rec_suppressed(), 1u);
  EXPECT_EQ(harness.engine.stats().cut_outs, 0u);
  EXPECT_EQ(harness.engine.stats().spurious_cutouts, 0u);
  EXPECT_EQ(harness.engine.virtual_ring().size(), 8u);

  check::InvariantAuditor auditor(harness.engine);
  EXPECT_EQ(auditor.run("guard-suppression"), 0u);
}

TEST(RecoveryFsmEngine, HealCancelRescuesAliveStationOutsideGuard) {
  testing::Harness harness(8, protected_config(64, 0, 0, false), 1);
  harness.engine.run_slots(500);
  const NodeId detector = harness.engine.virtual_ring().station_at(3);
  inject_stale_expiry(harness.engine, detector);
  harness.engine.run_slots(300);

  // Outside the guard the SAT_REC launches, but the accused station proves
  // alive and reachable, so the REC resolves in place: zero churn.
  const RecoveryFsm& fsm = harness.engine.recovery_fsm();
  EXPECT_GE(fsm.stale_rec_suppressed(), 1u);
  EXPECT_GE(harness.engine.stats().sat_recoveries, 1u);
  EXPECT_EQ(harness.engine.stats().cut_outs, 0u);
  EXPECT_EQ(harness.engine.stats().spurious_cutouts, 0u);
  EXPECT_EQ(harness.engine.virtual_ring().size(), 8u);

  check::InvariantAuditor auditor(harness.engine);
  EXPECT_EQ(auditor.run("heal-cancel"), 0u);
}

TEST(RecoveryFsmEngine, WtrDelaysReadmissionAndFlapRestartsClock) {
  // guard = 0 so the stale claim actually cuts (the WTR stimulus).
  testing::Harness harness(8, protected_config(0, 400, 0, false), 1);
  harness.engine.run_slots(500);
  const NodeId detector = harness.engine.virtual_ring().station_at(3);
  const NodeId victim = inject_stale_expiry(harness.engine, detector);
  harness.engine.run_slots(100);

  const RecoveryFsm& fsm = harness.engine.recovery_fsm();
  ASSERT_EQ(harness.engine.stats().cut_outs, 1u);
  ASSERT_FALSE(harness.engine.virtual_ring().contains(victim));
  EXPECT_TRUE(fsm.tracks_rejoin(victim));
  EXPECT_EQ(fsm.wtr_holdoffs(), 1u);

  // Well short of the 400-slot hold-off: still held out.
  harness.engine.run_slots(250);
  EXPECT_FALSE(harness.engine.virtual_ring().contains(victim));

  // A flap during the hold-off restarts the clock.
  harness.engine.stall_station(victim);
  harness.engine.run_slots(30);
  harness.engine.resume_station(victim);
  harness.engine.run_slots(30);
  EXPECT_GE(fsm.wtr_flap_restarts(), 1u);
  EXPECT_FALSE(harness.engine.virtual_ring().contains(victim));
  EXPECT_TRUE(fsm.tracks_rejoin(victim));

  // After a full continuously-healthy window (plus RAP time) it is back.
  harness.engine.run_slots(2000);
  EXPECT_TRUE(harness.engine.virtual_ring().contains(victim));
  EXPECT_FALSE(fsm.tracks_rejoin(victim));
  EXPECT_EQ(harness.engine.virtual_ring().size(), 8u);

  // wtr_no_flap_readmit corroborates: no admission undercut its hold-off.
  check::InvariantAuditor auditor(harness.engine);
  EXPECT_EQ(auditor.run("wtr-holdoff"), 0u);
}

TEST(RecoveryFsmEngine, RevertiveReinsertionRestoresPositionAndQuota) {
  testing::Harness harness(8, protected_config(0, 0, 0, true), 1);
  harness.engine.run_slots(500);

  const NodeId victim = harness.engine.virtual_ring().station_at(2);
  const NodeId anchor = harness.engine.virtual_ring().predecessor(victim);
  const NodeId detector = harness.engine.virtual_ring().successor(victim);
  harness.engine.set_station_quota(victim, Quota{3, 2});
  harness.engine.run_slots(100);  // quota takes effect at a SAT release

  inject_stale_expiry(harness.engine, detector);
  harness.engine.run_slots(2500);

  ASSERT_EQ(harness.engine.stats().cut_outs, 1u);
  ASSERT_TRUE(harness.engine.virtual_ring().contains(victim));
  // Re-inserted at its original position, after the same predecessor...
  EXPECT_EQ(harness.engine.virtual_ring().predecessor(victim), anchor);
  // ...with its original quota.
  const analysis::RingParams params = harness.engine.ring_params();
  const ring::VirtualRing& ring = harness.engine.virtual_ring();
  for (std::size_t pos = 0; pos < ring.size(); ++pos) {
    if (ring.station_at(pos) != victim) continue;
    EXPECT_EQ(params.quotas[pos].l, 3);
    EXPECT_EQ(params.quotas[pos].k, 2);
  }

  // revertive_position_restored corroborates the recorded outcome.
  check::InvariantAuditor auditor(harness.engine);
  EXPECT_EQ(auditor.run("revertive"), 0u);
}

TEST(RecoveryFsmEngine, ForcedSwitchHoldsOutUntilClearedThenWtb) {
  testing::Harness harness(8, protected_config(0, 0, 300, false), 1);
  harness.engine.run_slots(500);
  const NodeId victim = harness.engine.virtual_ring().station_at(4);

  ASSERT_TRUE(harness.engine.force_switch(victim).ok());
  // Duplicate forces are rejected while one is active — any node.
  EXPECT_FALSE(harness.engine.force_switch(victim).ok());
  EXPECT_FALSE(
      harness.engine.force_switch(harness.engine.virtual_ring().station_at(1))
          .ok());

  harness.engine.run_slots(400);  // graceful leave completes
  const RecoveryFsm& fsm = harness.engine.recovery_fsm();
  ASSERT_FALSE(harness.engine.virtual_ring().contains(victim));
  EXPECT_EQ(fsm.forced_station(), victim);
  EXPECT_TRUE(fsm.tracks_rejoin(victim));

  // Held out indefinitely until the operator clears the switch.
  harness.engine.run_slots(800);
  EXPECT_FALSE(harness.engine.virtual_ring().contains(victim));

  harness.engine.clear_force_switch(victim);
  EXPECT_EQ(fsm.forced_station(), kInvalidNode);
  harness.engine.run_slots(150);  // < wtb_slots: WTB still holding
  EXPECT_FALSE(harness.engine.virtual_ring().contains(victim));

  harness.engine.run_slots(2000);
  EXPECT_TRUE(harness.engine.virtual_ring().contains(victim));
  EXPECT_FALSE(fsm.tracks_rejoin(victim));

  check::InvariantAuditor auditor(harness.engine);
  EXPECT_EQ(auditor.run("forced-switch"), 0u);
}

TEST(RecoveryFsmEngine, WtbZeroReadmitsPromptlyAfterClear) {
  testing::Harness harness(8, protected_config(0, 0, 0, false), 1);
  harness.engine.run_slots(500);
  const NodeId victim = harness.engine.virtual_ring().station_at(4);

  ASSERT_TRUE(harness.engine.force_switch(victim).ok());
  harness.engine.run_slots(400);
  ASSERT_FALSE(harness.engine.virtual_ring().contains(victim));

  harness.engine.clear_force_switch(victim);
  harness.engine.run_slots(1500);
  EXPECT_TRUE(harness.engine.virtual_ring().contains(victim));
  EXPECT_EQ(harness.engine.virtual_ring().size(), 8u);
}

}  // namespace
}  // namespace wrt::wrtring
