#include "wrtring/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/bounds.hpp"
#include "tests/wrtring/test_helpers.hpp"

namespace wrt::wrtring {
namespace {

using testing::Harness;

TEST(Report, GuaranteeRowsPerStation) {
  Config config;
  config.default_quota = {2, 1};
  Harness h(6, config);
  const util::Table table = guarantee_report(h.engine);
  EXPECT_EQ(table.rows(), 6u);
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("Theorem-3"), std::string::npos);
}

TEST(Report, GuaranteeBoundsMatchAnalysis) {
  Harness h(6, Config{});
  const auto params = h.engine.ring_params();
  const util::Table table = guarantee_report(h.engine);
  std::ostringstream os;
  table.print_csv(os);
  // Spot-check: station at position 0's bound appears in the output.
  const std::string expected =
      std::to_string(analysis::access_time_bound(params, 0, 0));
  EXPECT_NE(os.str().find(expected), std::string::npos);
}

TEST(Report, TrafficRowsOnlyForActiveClasses) {
  Harness h(6, Config{});
  traffic::Packet p;
  p.flow = 1;
  p.cls = TrafficClass::kRealTime;
  p.src = h.engine.virtual_ring().station_at(0);
  p.dst = h.engine.virtual_ring().station_at(1);
  p.created = h.engine.now();
  ASSERT_TRUE(h.engine.inject_packet(p));
  h.engine.run_slots(50);
  const util::Table table = traffic_report(h.engine);
  EXPECT_EQ(table.rows(), 1u);  // only real-time saw traffic
}

TEST(Report, ResilienceCountsMatchStats) {
  Harness h(8, Config{});
  h.engine.run_slots(100);
  h.engine.drop_sat_once();
  h.engine.run_slots(4 * analysis::sat_time_bound(h.engine.ring_params()));
  const util::Table table = resilience_report(h.engine);
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_NE(os.str().find("SAT losses detected,1"), std::string::npos);
  EXPECT_NE(os.str().find("cut-out recoveries,1"), std::string::npos);
}

TEST(Report, TptVariantCompiles) {
  phy::Topology room(phy::placement::circle(6, 5.0),
                     phy::RadioParams{100.0, 0.0});
  tpt::TptEngine engine(&room, tpt::TptConfig{}, 1);
  ASSERT_TRUE(engine.init().ok());
  traffic::Packet p;
  p.flow = 1;
  p.cls = TrafficClass::kBestEffort;
  p.src = 0;
  p.dst = 3;
  p.created = engine.now();
  ASSERT_TRUE(engine.inject_packet(p));
  engine.run_slots(200);
  const util::Table table = traffic_report(engine);
  EXPECT_EQ(table.rows(), 1u);
}

}  // namespace
}  // namespace wrt::wrtring
