// Lossy-channel robustness: frame/SAT loss probabilities and auto-rejoin
// (the "control signal can be frequently lost" regime of Section 3.3).
#include <gtest/gtest.h>

#include "analysis/bounds.hpp"
#include "tests/wrtring/test_helpers.hpp"
#include "wrtring/engine.hpp"

namespace wrt::wrtring {
namespace {

using testing::Harness;
using testing::rt_flow;

TEST(LossyChannel, FrameLossReducesDeliveries) {
  Config lossy;
  lossy.frame_loss_prob = 0.2;
  Harness clean(8, Config{}, 3);
  Harness noisy(8, lossy, 3);
  for (NodeId n = 0; n < 8; ++n) {
    clean.engine.add_source(rt_flow(n, n, 8, 16.0));
    noisy.engine.add_source(rt_flow(n, n, 8, 16.0));
  }
  clean.engine.run_slots(4000);
  noisy.engine.run_slots(4000);
  EXPECT_GT(noisy.engine.stats().frames_lost_link, 100u);
  EXPECT_LT(noisy.engine.stats().sink.total_delivered(),
            clean.engine.stats().sink.total_delivered());
}

TEST(LossyChannel, FrameLossDoesNotTouchTheSat) {
  Config lossy;
  lossy.frame_loss_prob = 0.3;
  Harness h(8, lossy, 3);
  for (NodeId n = 0; n < 8; ++n) {
    h.engine.add_source(rt_flow(n, n, 8, 16.0));
  }
  h.engine.run_slots(4000);
  // Data loss alone must never trigger the SAT recovery machinery.
  EXPECT_EQ(h.engine.stats().sat_losses_detected, 0u);
}

TEST(LossyChannel, SatLossTriggersRepeatedRecoveries) {
  Config config;
  config.sat_loss_prob = 0.002;  // roughly one loss per ~60 rounds (N=8)
  Harness h(8, config, 7);
  h.engine.run_slots(30000);
  const auto& stats = h.engine.stats();
  EXPECT_GE(stats.sat_losses_detected, 2u);
  // Every detected loss was handled (cut-out or rebuild), and the SAT is
  // alive at the end.
  EXPECT_GE(stats.sat_recoveries + stats.ring_rebuilds, 1u);
  EXPECT_TRUE(h.engine.sat_state() == SatState::kInTransit ||
              h.engine.sat_state() == SatState::kHeld);
}

TEST(LossyChannel, AutoRejoinRestoresMembership) {
  Config config;
  config.rap_policy = RapPolicy::kRotating;
  config.auto_rejoin = true;
  Harness h(8, config, 5);
  h.engine.run_slots(100);
  h.engine.drop_sat_once();
  // The spurious SAT_REC cuts a healthy station out; with auto_rejoin it
  // re-enters through the RAP.
  const auto bound = analysis::sat_time_bound(h.engine.ring_params());
  h.engine.run_slots(3 * bound);
  ASSERT_EQ(h.engine.virtual_ring().size(), 7u);
  h.engine.run_slots(8 * 40 * 10);
  EXPECT_EQ(h.engine.stats().joins_completed, 1u);
  EXPECT_EQ(h.engine.virtual_ring().size(), 8u);
}

TEST(LossyChannel, AutoRejoinKeepsLossyRingPopulated) {
  Config config;
  config.rap_policy = RapPolicy::kRotating;
  config.auto_rejoin = true;
  config.sat_loss_prob = 0.001;
  Harness h(8, config, 11);
  h.engine.run_slots(60000);
  // Losses happened, cut-outs happened, rejoins happened — and the ring is
  // still near full strength.
  EXPECT_GE(h.engine.stats().sat_losses_detected, 1u);
  EXPECT_GE(h.engine.stats().joins_completed, 1u);
  EXPECT_GE(h.engine.virtual_ring().size(), 6u);
}

TEST(LossyChannel, DeterministicGivenSeed) {
  Config config;
  config.frame_loss_prob = 0.1;
  config.sat_loss_prob = 0.001;
  const auto run = [&](std::uint64_t seed) {
    Harness h(8, config, seed);
    for (NodeId n = 0; n < 8; ++n) {
      h.engine.add_source(rt_flow(n, n, 8, 24.0));
    }
    h.engine.run_slots(20000);
    return std::tuple{h.engine.stats().frames_lost_link,
                      h.engine.stats().sat_losses_detected,
                      h.engine.stats().sink.total_delivered()};
  };
  EXPECT_EQ(run(9), run(9));
  EXPECT_NE(run(9), run(10));
}

TEST(QuotaRenegotiation, SetStationQuotaTakesEffect) {
  Harness h(6, Config{});
  const NodeId station = h.engine.virtual_ring().station_at(2);
  h.engine.set_station_quota(station, {5, 3});
  EXPECT_EQ(h.engine.station(station).quota(), (Quota{5, 3}));
  const auto params = h.engine.ring_params();
  EXPECT_EQ(params.quotas[2], (Quota{5, 3}));
  EXPECT_THROW(h.engine.set_station_quota(99, {1, 1}), std::out_of_range);
}

TEST(QuotaRenegotiation, HigherQuotaRaisesStationThroughput) {
  Config config;
  config.default_quota = {1, 0};
  Harness h(6, config);
  traffic::FlowSpec spec;
  spec.id = 1;
  spec.src = 0;
  spec.dst = 3;
  spec.cls = TrafficClass::kRealTime;
  h.engine.add_saturated_source(spec, 16);
  h.engine.run_slots(3000);
  const auto before = h.engine.stats().sink.total_delivered();
  h.engine.set_station_quota(0, {4, 0});
  h.engine.run_slots(3000);
  const auto delta =
      h.engine.stats().sink.total_delivered() - before;
  // Quadrupled quota: clearly more than 2x the first window's deliveries.
  EXPECT_GT(delta, 2 * before);
}

}  // namespace
}  // namespace wrt::wrtring
