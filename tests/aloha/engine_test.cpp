#include "aloha/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace wrt::aloha {
namespace {

/// Dense room: every station hears every other, so any two simultaneous
/// transmitters collide — the textbook slotted-Aloha channel.
phy::Topology room(std::size_t n) {
  return phy::Topology(phy::placement::circle(n, 5.0),
                       phy::RadioParams{100.0, 0.0});
}

struct Harness {
  Harness(std::size_t n, AlohaConfig config = {}, std::uint64_t seed = 1)
      : topology(room(n)), engine(&topology, std::move(config), seed) {
    const auto status = engine.init();
    if (!status.ok()) {
      throw std::runtime_error(status.error().message);
    }
  }
  phy::Topology topology;
  AlohaEngine engine;
};

traffic::FlowSpec cbr_flow(FlowId id, NodeId src, NodeId dst,
                           double period = 20.0,
                           TrafficClass cls = TrafficClass::kRealTime) {
  traffic::FlowSpec spec;
  spec.id = id;
  spec.src = src;
  spec.dst = dst;
  spec.cls = cls;
  spec.kind = traffic::ArrivalKind::kCbr;
  spec.period_slots = period;
  spec.deadline_slots = cls == TrafficClass::kRealTime ? 10000 : 0;
  return spec;
}

TEST(AlohaInit, RequiresAliveStations) {
  phy::Topology topology = room(4);
  for (NodeId n = 0; n < 4; ++n) topology.set_alive(n, false);
  AlohaEngine engine(&topology, AlohaConfig{}, 1);
  EXPECT_FALSE(engine.init().ok());
}

TEST(AlohaInit, RejectsBadConfig) {
  phy::Topology topology = room(4);
  AlohaConfig config;
  config.cw_min = 8;
  config.cw_max = 4;
  AlohaEngine engine(&topology, config, 1);
  EXPECT_FALSE(engine.init().ok());
}

TEST(AlohaUncontended, DeliversNextSlot) {
  // A single light flow never collides: every frame goes out the slot it
  // arrives in, so access delay is ~0 and nothing is dropped.
  Harness h(8);
  h.engine.add_source(cbr_flow(1, 0, 4));
  h.engine.run_slots(2000);
  const AlohaStats& stats = h.engine.stats();
  EXPECT_GT(stats.successes, 90u);
  EXPECT_EQ(stats.collisions, 0u);
  EXPECT_EQ(stats.retry_drops, 0u);
  EXPECT_LT(stats.access_delay_slots.mean(), 1.0);
  EXPECT_TRUE(h.engine.check_invariants().ok());
}

TEST(AlohaContention, TwoSaturatedStationsCollideAndRecover) {
  Harness h(8);
  traffic::FlowSpec a = cbr_flow(1, 0, 4);
  traffic::FlowSpec b = cbr_flow(2, 1, 5);
  h.engine.add_saturated_source(a, 2);
  h.engine.add_saturated_source(b, 2);
  h.engine.run_slots(4000);
  const AlohaStats& stats = h.engine.stats();
  // Both start backlogged in slot 0: the first slot must collide, and BEB
  // must then de-synchronise them into sustained successes.
  EXPECT_GT(stats.collisions, 0u);
  EXPECT_GT(stats.successes, 1000u);
  EXPECT_TRUE(h.engine.check_invariants().ok());
}

TEST(AlohaSaturation, ThroughputNearTheContentionCeiling) {
  // 16 always-backlogged stations: delivered throughput must sit well below
  // the slot rate (collisions burn slots) but well above zero (BEB keeps
  // the channel usable) — the saturation regime the capacity bench leans on.
  Harness h(16);
  for (NodeId node = 0; node < 16; ++node) {
    h.engine.add_saturated_source(
        cbr_flow(node + 1, node, (node + 8) % 16), 2);
  }
  const std::int64_t slots = 20000;
  h.engine.run_slots(slots);
  const double throughput =
      h.engine.stats().sink.throughput(0, slots_to_ticks(slots));
  EXPECT_GT(throughput, 0.08);
  EXPECT_LT(throughput, 0.7);
  EXPECT_GT(h.engine.stats().collisions, 100u);
  EXPECT_TRUE(h.engine.check_invariants().ok());
}

TEST(AlohaRetryLimit, DropsAfterMaxAttempts) {
  AlohaConfig config;
  config.max_attempts = 2;
  config.cw_min = 1;
  config.cw_max = 2;  // keep the duel colliding often
  Harness h(4, config);
  h.engine.add_saturated_source(cbr_flow(1, 0, 2), 2);
  h.engine.add_saturated_source(cbr_flow(2, 1, 3), 2);
  h.engine.run_slots(2000);
  EXPECT_GT(h.engine.stats().retry_drops, 0u);
  EXPECT_TRUE(h.engine.check_invariants().ok());
}

TEST(AlohaChannel, GilbertElliottLossesRetryAndCount) {
  AlohaConfig config;
  config.channel.data = fault::GeParams::iid(0.3);
  Harness h(8, config);
  h.engine.add_source(cbr_flow(1, 0, 4, 10.0));
  h.engine.run_slots(4000);
  const AlohaStats& stats = h.engine.stats();
  EXPECT_GT(stats.channel_losses, 0u);
  // Retransmission recovers most fades at this rate.
  EXPECT_GT(stats.successes, 300u);
  EXPECT_TRUE(h.engine.check_invariants().ok());
}

TEST(AlohaChannel, DegradeAndHealLink) {
  AlohaConfig config;
  config.max_attempts = 6;  // keep the per-frame BEB wait short
  Harness h(8, config);
  h.engine.add_source(cbr_flow(1, 0, 4, 10.0));
  h.engine.degrade_link(0, 4, fault::GeParams::iid(1.0));
  h.engine.run_slots(1000);
  // Total loss on the only link: nothing delivered, frames die at the
  // retry limit.
  EXPECT_EQ(h.engine.stats().successes, 0u);
  EXPECT_GT(h.engine.stats().retry_drops, 0u);
  h.engine.heal_link(0, 4);
  const std::uint64_t before = h.engine.stats().successes;
  h.engine.run_slots(1000);
  EXPECT_GT(h.engine.stats().successes, before);
  EXPECT_TRUE(h.engine.check_invariants().ok());
}

TEST(AlohaChannel, DisabledChannelMakesNoDraws) {
  // Digest parity: configuring a disabled channel must not change behaviour
  // relative to the default config (zero-draw contract).
  Harness a(8, AlohaConfig{}, 9);
  AlohaConfig with_channel;
  with_channel.channel.data = fault::GeParams::iid(0.0);
  Harness b(8, with_channel, 9);
  for (Harness* h : {&a, &b}) {
    h->engine.add_saturated_source(cbr_flow(1, 0, 4), 2);
    h->engine.add_saturated_source(cbr_flow(2, 1, 5), 2);
    h->engine.run_slots(3000);
  }
  EXPECT_EQ(a.engine.stats().successes, b.engine.stats().successes);
  EXPECT_EQ(a.engine.stats().collisions, b.engine.stats().collisions);
}

TEST(AlohaKill, DeadStationStopsAndDstFramesDie) {
  AlohaConfig config;
  config.max_attempts = 6;  // a doomed frame dies in ~100 slots, not ~5000
  Harness h(8, config);
  h.engine.add_source(cbr_flow(1, 0, 4, 10.0));
  h.engine.add_source(cbr_flow(2, 4, 0, 10.0));
  h.engine.run_slots(500);
  const std::uint64_t tx_before = h.engine.stats().transmissions;
  h.engine.kill_station(4);
  h.engine.run_slots(2000);
  const AlohaStats& stats = h.engine.stats();
  // Station 4 no longer transmits; station 0's frames to it fail and are
  // eventually dropped by the retry limit.
  EXPECT_GT(stats.unreachable_losses, 0u);
  EXPECT_GT(stats.retry_drops, 0u);
  EXPECT_GT(stats.transmissions, tx_before);
  EXPECT_TRUE(h.engine.check_invariants().ok());
}

TEST(AlohaPersistence, FractionalPersistenceStillDelivers) {
  AlohaConfig config;
  config.p_persist = 0.5;
  Harness h(8, config);
  h.engine.add_source(cbr_flow(1, 0, 4, 10.0));
  h.engine.run_slots(2000);
  EXPECT_GT(h.engine.stats().successes, 150u);
  EXPECT_TRUE(h.engine.check_invariants().ok());
}

TEST(AlohaDeterminism, SameSeedSameRun) {
  auto run = [](std::uint64_t seed) {
    Harness h(12, AlohaConfig{}, seed);
    for (NodeId node = 0; node < 12; ++node) {
      h.engine.add_saturated_source(
          cbr_flow(node + 1, node, (node + 6) % 12), 2);
    }
    h.engine.run_slots(5000);
    return h.engine.stats();
  };
  const AlohaStats a = run(3);
  const AlohaStats b = run(3);
  const AlohaStats c = run(4);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_DOUBLE_EQ(a.access_delay_slots.mean(), b.access_delay_slots.mean());
  // A different seed draws different backoffs.
  EXPECT_NE(a.transmissions, c.transmissions);
}

TEST(AlohaClassPriority, RtPreemptsBestEffort) {
  Harness h(8);
  traffic::FlowSpec rt = cbr_flow(1, 0, 4, 20.0);
  traffic::FlowSpec be = cbr_flow(2, 0, 5, 20.0, TrafficClass::kBestEffort);
  h.engine.add_saturated_source(be, 8);
  h.engine.add_source(rt);
  h.engine.run_slots(4000);
  const auto& sink = h.engine.stats().sink;
  // RT frames from the same station cut the line: their delay stays small
  // even though the BE queue is always full.
  EXPECT_GT(sink.by_class(TrafficClass::kRealTime).delivered, 150u);
  EXPECT_LT(h.engine.stats().rt_access_delay_slots.mean(), 2.0);
}

}  // namespace
}  // namespace wrt::aloha
