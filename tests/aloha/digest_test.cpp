// Fixed-seed digest oracle for the slotted-Aloha engine.
//
// The third MAC inherits the same reproducibility contract as WRT-Ring
// (soa_digest_test.cpp) and the hot-path bench --digest mode: each
// (station count, scenario mode) cell runs a fully seeded simulation and
// reduces AlohaStats to one canonical string; any behavioural drift —
// backoff draws, collision resolution order, fault-plane draw sequencing —
// shows up as a digest mismatch in CI.
//
// Regenerating after a *deliberate* protocol change:
//   WRT_DIGEST_CAPTURE=1 ./test_aloha --gtest_filter='AlohaDigest*' 2>,out
// and paste the printed table back into kExpected.
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "aloha/engine.hpp"
#include "fault/gilbert_elliott.hpp"
#include "phy/topology.hpp"

namespace wrt::aloha {
namespace {

enum class Mode { kClean, kChurn, kFault };

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kClean: return "clean";
    case Mode::kChurn: return "churn";
    case Mode::kFault: return "fault";
  }
  return "?";
}

phy::Topology room(std::size_t n) {
  return phy::Topology(phy::placement::circle(n, 5.0),
                       phy::RadioParams{100.0, 0.0});
}

std::string field(const char* key, std::uint64_t value) {
  return std::string(key) + "=" + std::to_string(value) + ";";
}

std::string field_milli(const char* key, double value) {
  return std::string(key) + "=" +
         std::to_string(static_cast<long long>(value * 1000.0)) + ";";
}

std::string engine_digest(const AlohaEngine& engine) {
  const AlohaStats& stats = engine.stats();
  std::string digest;
  digest += field("tx", stats.transmissions);
  digest += field("ok", stats.successes);
  digest += field("coll_slots", stats.collisions);
  digest += field("coll_frames", stats.collided_frames);
  digest += field("fades", stats.channel_losses);
  digest += field("unreach", stats.unreachable_losses);
  digest += field("retry_drops", stats.retry_drops);
  digest += field("idle", stats.idle_slots);
  digest += field("busy", stats.busy_slots);
  digest += field("delivered", stats.sink.total_delivered());
  digest += field("rt_del",
                  stats.sink.by_class(TrafficClass::kRealTime).delivered);
  digest += field("be_del",
                  stats.sink.by_class(TrafficClass::kBestEffort).delivered);
  digest += field("rt_miss",
                  stats.sink.by_class(TrafficClass::kRealTime).deadline_misses);
  digest += field_milli("delay", stats.access_delay_slots.mean());
  digest += field_milli("rt_delay", stats.rt_access_delay_slots.mean());
  digest += field_milli("tries", stats.attempts_per_success.mean());
  digest += field("invariants_ok", engine.check_invariants().ok() ? 1 : 0);
  return digest;
}

std::string scenario_digest(std::size_t n, Mode mode) {
  phy::Topology topology = room(n);
  AlohaConfig config;
  if (mode == Mode::kFault) {
    config.channel.data = fault::GeParams::bursty(0.05, 8.0);
  }
  AlohaEngine engine(&topology, config, /*seed=*/7);
  if (!engine.init().ok()) return "init-failed";
  // Half the stations saturated (the contention floor), half on periodic
  // voice-period CBR — mirrors the mixed regime the capacity bench runs.
  for (NodeId node = 0; node < n; ++node) {
    traffic::FlowSpec spec;
    spec.id = node + 1;
    spec.src = node;
    spec.dst = static_cast<NodeId>((node + n / 2) % n);
    spec.cls = node % 3 == 0 ? TrafficClass::kBestEffort
                             : TrafficClass::kRealTime;
    spec.deadline_slots = spec.cls == TrafficClass::kRealTime ? 150 : 0;
    if (node % 2 == 0) {
      engine.add_saturated_source(spec, 2);
    } else {
      spec.kind = traffic::ArrivalKind::kCbr;
      spec.period_slots = 20.0;
      engine.add_source(spec);
    }
  }
  engine.run_slots(512);
  if (mode == Mode::kChurn) {
    engine.kill_station(static_cast<NodeId>(n / 2));
    engine.run_slots(1024);
    engine.kill_station(static_cast<NodeId>(1));
    engine.run_slots(1024);
  } else if (mode == Mode::kFault) {
    engine.degrade_link(0, static_cast<NodeId>(n / 2),
                        fault::GeParams::iid(0.5));
    engine.run_slots(1024);
    engine.heal_link(0, static_cast<NodeId>(n / 2));
    engine.run_slots(1024);
  } else {
    engine.run_slots(2048);
  }
  return engine_digest(engine);
}

struct Cell {
  std::size_t n;
  Mode mode;
  const char* expected;
};

// Golden digests recorded at the engine's introduction (seed 7); see the
// header comment for the capture procedure.
constexpr Cell kExpected[] = {
    {8, Mode::kClean,
     "tx=2313;ok=1882;coll_slots=195;coll_frames=431;fades=0;unreach=0;retry_drops=0;idle=483;busy=2077;delivered=1882;rt_del=1760;be_del=122;rt_miss=153;delay=102246;rt_delay=105251;tries=1200;invariants_ok=1;"},
    {8, Mode::kChurn,
     "tx=2355;ok=2052;coll_slots=137;coll_frames=295;fades=0;unreach=8;retry_drops=0;idle=371;busy=2189;delivered=2052;rt_del=1962;be_del=90;rt_miss=29;delay=9086;rt_delay=7959;tries=1117;invariants_ok=1;"},
    {8, Mode::kFault,
     "tx=1725;ok=984;coll_slots=304;coll_frames=714;fades=27;unreach=0;retry_drops=0;idle=1245;busy=1315;delivered=984;rt_del=728;be_del=256;rt_miss=44;delay=66714;rt_delay=31923;tries=1697;invariants_ok=1;"},
    {32, Mode::kClean,
     "tx=2761;ok=1099;coll_slots=711;coll_frames=1662;fades=0;unreach=0;retry_drops=0;idle=750;busy=1810;delivered=1099;rt_del=644;be_del=455;rt_miss=241;delay=367727;rt_delay=381895;tries=2303;invariants_ok=1;"},
    {32, Mode::kChurn,
     "tx=2650;ok=1160;coll_slots=634;coll_frames=1477;fades=0;unreach=13;retry_drops=0;idle=762;busy=1798;delivered=1160;rt_del=764;be_del=396;rt_miss=318;delay=408568;rt_delay=426294;tries=2083;invariants_ok=1;"},
    {32, Mode::kFault,
     "tx=2515;ok=1167;coll_slots=568;coll_frames=1329;fades=19;unreach=0;retry_drops=0;idle=806;busy=1754;delivered=1167;rt_del=558;be_del=609;rt_miss=248;delay=451461;rt_delay=522865;tries=1941;invariants_ok=1;"},
};

class AlohaDigest : public ::testing::TestWithParam<Cell> {};

TEST_P(AlohaDigest, MatchesGoldenOracle) {
  const Cell& cell = GetParam();
  const std::string digest = scenario_digest(cell.n, cell.mode);
  if (std::getenv("WRT_DIGEST_CAPTURE") != nullptr) {
    std::printf("CAPTURE {%zu, Mode::k%c%s,\n     \"%s\"},\n", cell.n,
                static_cast<char>(std::toupper(mode_name(cell.mode)[0])),
                mode_name(cell.mode) + 1, digest.c_str());
    GTEST_SKIP() << "capture mode";
  }
  EXPECT_EQ(digest, cell.expected)
      << "n=" << cell.n << " mode=" << mode_name(cell.mode);
}

std::string cell_name(const ::testing::TestParamInfo<Cell>& cell_info) {
  std::string name = "N";
  name += std::to_string(cell_info.param.n);
  name += '_';
  name += mode_name(cell_info.param.mode);
  return name;
}

INSTANTIATE_TEST_SUITE_P(Oracle, AlohaDigest, ::testing::ValuesIn(kExpected),
                         cell_name);

}  // namespace
}  // namespace wrt::aloha
