// Gilbert–Elliott channel unit tests: parameter algebra, chain statistics,
// burstiness, and the LinkLossField determinism contract (per-purpose,
// per-link streams; zero draws when disabled).
#include <gtest/gtest.h>

#include <vector>

#include "fault/gilbert_elliott.hpp"

namespace wrt::fault {
namespace {

TEST(GeParams, DefaultIsDisabledAndValid) {
  const GeParams params;
  EXPECT_FALSE(params.enabled());
  EXPECT_DOUBLE_EQ(params.average_loss(), 0.0);
  EXPECT_TRUE(params.validate().ok());
}

TEST(GeParams, IidIsTheDegenerateCase) {
  const GeParams params = GeParams::iid(0.25);
  EXPECT_TRUE(params.enabled());
  EXPECT_DOUBLE_EQ(params.average_loss(), 0.25);
  EXPECT_TRUE(params.validate().ok());
  EXPECT_FALSE(GeParams::iid(0.0).enabled());
}

TEST(GeParams, BurstyHitsTargetStationaryLoss) {
  for (const double avg : {0.01, 0.1, 0.4}) {
    for (const double dwell : {1.0, 4.0, 32.0}) {
      const GeParams params = GeParams::bursty(avg, dwell);
      ASSERT_TRUE(params.validate().ok())
          << "avg=" << avg << " dwell=" << dwell;
      EXPECT_NEAR(params.average_loss(), avg, 1e-9)
          << "avg=" << avg << " dwell=" << dwell;
      EXPECT_NEAR(1.0 / params.p_bad_to_good, dwell, 1e-9);
    }
  }
}

TEST(GeParams, ValidateRejectsNonProbabilities) {
  GeParams params;
  params.loss_good = 1.5;
  EXPECT_FALSE(params.validate().ok());
  params = GeParams{};
  params.p_good_to_bad = -0.1;
  EXPECT_FALSE(params.validate().ok());
}

TEST(GeProcess, EmpiricalLossMatchesStationaryRate) {
  GeProcess process(GeParams::bursty(0.2, 8.0), 42, 7);
  std::size_t lost = 0;
  constexpr std::size_t kOffers = 200000;
  for (std::size_t i = 0; i < kOffers; ++i) {
    if (process.offer()) ++lost;
  }
  EXPECT_NEAR(static_cast<double>(lost) / kOffers, 0.2, 0.01);
}

TEST(GeProcess, SameSeedSameSequence) {
  GeProcess a(GeParams::bursty(0.3, 4.0), 99, 5);
  GeProcess b(GeParams::bursty(0.3, 4.0), 99, 5);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.offer(), b.offer()) << "diverged at offer " << i;
  }
}

/// Same average loss, longer Bad dwell => longer loss bursts.  This is the
/// property the i.i.d. knobs cannot express.
TEST(GeProcess, DwellControlsBurstLength) {
  const auto mean_burst = [](double dwell) {
    GeProcess process(GeParams::bursty(0.1, dwell), 4242, 1);
    std::size_t bursts = 0;
    std::size_t lost = 0;
    bool in_burst = false;
    for (std::size_t i = 0; i < 300000; ++i) {
      const bool loss = process.offer();
      if (loss) {
        ++lost;
        if (!in_burst) ++bursts;
      }
      in_burst = loss;
    }
    return static_cast<double>(lost) / static_cast<double>(bursts);
  };
  const double short_dwell = mean_burst(1.0);
  const double long_dwell = mean_burst(32.0);
  EXPECT_LT(short_dwell, 2.0);
  EXPECT_GT(long_dwell, 4.0 * short_dwell);
}

TEST(ChannelConfig, AnyEnabledAndValidate) {
  ChannelConfig config;
  EXPECT_FALSE(config.any_enabled());
  EXPECT_TRUE(config.validate().ok());
  config.sat = GeParams::iid(0.01);
  EXPECT_TRUE(config.any_enabled());
  config.data.loss_good = 2.0;
  EXPECT_FALSE(config.validate().ok());
}

TEST(LinkLossField, DisabledPurposeNeverLoses) {
  LinkLossField field;
  ChannelConfig config;
  config.data = GeParams::iid(1.0);
  field.configure(config, 1);
  EXPECT_TRUE(field.enabled(LossPurpose::kData));
  EXPECT_FALSE(field.enabled(LossPurpose::kSat));
  EXPECT_FALSE(field.enabled(LossPurpose::kControl));
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(field.offer(LossPurpose::kData, 0, 1));
    EXPECT_FALSE(field.offer(LossPurpose::kSat, 0, 1));
    EXPECT_FALSE(field.offer(LossPurpose::kControl, 0, 1));
  }
}

TEST(LinkLossField, SameSeedSameOfferSequence) {
  ChannelConfig config;
  config.data = GeParams::bursty(0.2, 8.0);
  config.sat = GeParams::iid(0.05);
  LinkLossField a;
  LinkLossField b;
  a.configure(config, 77);
  b.configure(config, 77);
  for (int i = 0; i < 2000; ++i) {
    const NodeId from = static_cast<NodeId>(i % 5);
    const NodeId to = static_cast<NodeId>((i + 1) % 5);
    ASSERT_EQ(a.offer(LossPurpose::kData, from, to),
              b.offer(LossPurpose::kData, from, to));
    ASSERT_EQ(a.offer(LossPurpose::kSat, from, to),
              b.offer(LossPurpose::kSat, from, to));
  }
}

/// The per-purpose stream isolation contract: interleaving draws for one
/// purpose must not perturb another purpose's sequence.
TEST(LinkLossField, PurposesDrawFromIndependentStreams) {
  ChannelConfig sat_only;
  sat_only.sat = GeParams::iid(0.3);
  ChannelConfig sat_and_data = sat_only;
  sat_and_data.data = GeParams::bursty(0.4, 4.0);

  LinkLossField a;
  LinkLossField b;
  a.configure(sat_only, 123);
  b.configure(sat_and_data, 123);
  for (int i = 0; i < 2000; ++i) {
    (void)b.offer(LossPurpose::kData, 2, 3);  // extra draws on b only
    ASSERT_EQ(a.offer(LossPurpose::kSat, 2, 3),
              b.offer(LossPurpose::kSat, 2, 3))
        << "data draws perturbed the SAT stream at offer " << i;
  }
}

TEST(LinkLossField, LinksDrawFromIndependentStreams) {
  ChannelConfig config;
  config.data = GeParams::iid(0.5);
  LinkLossField a;
  LinkLossField b;
  a.configure(config, 9);
  b.configure(config, 9);
  // Interleave offers on another link in b only: link 0->1's sequence must
  // be unaffected.
  for (int i = 0; i < 2000; ++i) {
    (void)b.offer(LossPurpose::kData, 7, 8);
    ASSERT_EQ(a.offer(LossPurpose::kData, 0, 1),
              b.offer(LossPurpose::kData, 0, 1));
  }
}

TEST(LinkLossField, PerLinkOverrideIsDirectedAndRevertible) {
  LinkLossField field;
  field.configure(ChannelConfig{}, 5);
  EXPECT_FALSE(field.enabled(LossPurpose::kData));

  field.set_link_params(LossPurpose::kData, 1, 2, GeParams::iid(1.0));
  EXPECT_TRUE(field.enabled(LossPurpose::kData));
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(field.offer(LossPurpose::kData, 1, 2));
    EXPECT_FALSE(field.offer(LossPurpose::kData, 2, 1))
        << "override must be directed";
    EXPECT_FALSE(field.offer(LossPurpose::kData, 3, 4));
  }

  field.clear_link_params(LossPurpose::kData, 1, 2);
  EXPECT_FALSE(field.enabled(LossPurpose::kData));
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(field.offer(LossPurpose::kData, 1, 2));
  }
}

}  // namespace
}  // namespace wrt::fault
