// FaultPlan tests: text grammar round-trips, parse diagnostics, and the
// survivability guarantees of randomly generated plans.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "fault/fault_plan.hpp"

namespace wrt::fault {
namespace {

FaultPlan sample_plan() {
  FaultPlan plan;
  FaultEvent crash;
  crash.slot = 100;
  crash.kind = FaultKind::kCrash;
  crash.a = 3;
  plan.add(crash);

  FaultEvent degrade;
  degrade.slot = 50;
  degrade.kind = FaultKind::kLinkDegrade;
  degrade.a = 1;
  degrade.b = 2;
  degrade.ge = GeParams::bursty(0.2, 16.0);
  plan.add(degrade);

  FaultEvent partition;
  partition.slot = 200;
  partition.kind = FaultKind::kPartition;
  partition.groups = {{0, 1, 2}, {3, 4, 5}};
  plan.add(partition);

  FaultEvent heal;
  heal.slot = 300;
  heal.kind = FaultKind::kHealPartition;
  plan.add(heal);

  FaultEvent drop;
  drop.slot = 400;
  drop.kind = FaultKind::kDropControl;
  drop.control_msg = kCtrlJoinAck;
  plan.add(drop);

  FaultEvent join;
  join.slot = 500;
  join.kind = FaultKind::kJoin;
  join.a = 9;
  join.quota = {2, 1};
  plan.add(join);

  FaultEvent mark;
  mark.slot = 600;
  mark.kind = FaultKind::kMark;
  mark.label = "storm over";
  plan.add(mark);
  return plan;
}

TEST(FaultPlan, AddKeepsEventsSortedBySlot) {
  const FaultPlan plan = sample_plan();
  ASSERT_EQ(plan.events.size(), 7u);
  for (std::size_t i = 1; i < plan.events.size(); ++i) {
    EXPECT_LE(plan.events[i - 1].slot, plan.events[i].slot);
  }
  EXPECT_EQ(plan.last_slot(), 600);
}

TEST(FaultPlan, TextRoundTrips) {
  const FaultPlan plan = sample_plan();
  const std::string text = plan.to_text();
  const auto reparsed = FaultPlan::parse(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().message;
  EXPECT_EQ(reparsed.value().to_text(), text);
  ASSERT_EQ(reparsed.value().events.size(), plan.events.size());
  EXPECT_EQ(reparsed.value().events[1].kind, FaultKind::kCrash);
  EXPECT_EQ(reparsed.value().events[2].groups,
            (std::vector<std::vector<NodeId>>{{0, 1, 2}, {3, 4, 5}}));
  EXPECT_NEAR(reparsed.value().events[0].ge.average_loss(), 0.2, 1e-6);
}

TEST(FaultPlan, ParseSkipsCommentsAndBlankLines) {
  const auto plan = FaultPlan::parse(
      "# a comment\n"
      "\n"
      "@10 crash 2\n"
      "@20 drop-sat\n");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan.value().events.size(), 2u);
  EXPECT_EQ(plan.value().events[0].kind, FaultKind::kCrash);
  EXPECT_EQ(plan.value().events[1].kind, FaultKind::kDropSat);
}

TEST(FaultPlan, ParseRejectsMalformedLines) {
  EXPECT_FALSE(FaultPlan::parse("crash 2").ok());
  EXPECT_FALSE(FaultPlan::parse("@x crash 2").ok());
  EXPECT_FALSE(FaultPlan::parse("@-5 crash 2").ok());
  EXPECT_FALSE(FaultPlan::parse("@10 explode 2").ok());
  EXPECT_FALSE(FaultPlan::parse("@10 crash").ok());
  EXPECT_FALSE(FaultPlan::parse("@10 link-degrade 1").ok());
  EXPECT_FALSE(FaultPlan::parse("@10 link-degrade 1 2 avg=2.0").ok());
  EXPECT_FALSE(FaultPlan::parse("@10 partition 0 1 2").ok());
  EXPECT_FALSE(FaultPlan::parse("@10 partition 0 |").ok());
  EXPECT_FALSE(FaultPlan::parse("@10 drop-control maybe").ok());
}

TEST(FaultPlan, FlapAndSwitchTextRoundTrips) {
  const auto plan = FaultPlan::parse(
      "@10 flap 1 2 period=32 duty=40 cycles=3\n"
      "@50 force-switch 4\n"
      "@900 clear-switch 4\n");
  ASSERT_TRUE(plan.ok()) << plan.error().message;
  ASSERT_EQ(plan.value().events.size(), 3u);
  const FaultEvent& flap = plan.value().events[0];
  EXPECT_EQ(flap.kind, FaultKind::kFlap);
  EXPECT_EQ(flap.a, 1u);
  EXPECT_EQ(flap.b, 2u);
  EXPECT_EQ(flap.period_slots, 32);
  EXPECT_EQ(flap.duty_pct, 40u);
  EXPECT_EQ(flap.cycles, 3u);
  EXPECT_EQ(plan.value().events[1].kind, FaultKind::kForceSwitch);
  EXPECT_EQ(plan.value().events[1].a, 4u);
  EXPECT_EQ(plan.value().events[2].kind, FaultKind::kClearSwitch);

  const std::string text = plan.value().to_text();
  const auto reparsed = FaultPlan::parse(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().message;
  EXPECT_EQ(reparsed.value().to_text(), text);
}

TEST(FaultPlan, ParseRejectsMalformedFlapAndSwitch) {
  EXPECT_FALSE(FaultPlan::parse("@10 flap 1").ok());
  // period < 2, duty outside [1, 99], cycles < 1.
  EXPECT_FALSE(
      FaultPlan::parse("@10 flap 1 2 period=1 duty=40 cycles=3").ok());
  EXPECT_FALSE(
      FaultPlan::parse("@10 flap 1 2 period=32 duty=0 cycles=3").ok());
  EXPECT_FALSE(
      FaultPlan::parse("@10 flap 1 2 period=32 duty=100 cycles=3").ok());
  EXPECT_FALSE(
      FaultPlan::parse("@10 flap 1 2 period=32 duty=40 cycles=0").ok());
  EXPECT_FALSE(FaultPlan::parse("@10 force-switch").ok());
  EXPECT_FALSE(FaultPlan::parse("@10 clear-switch").ok());
}

TEST(FaultPlan, SaveLoadRoundTrips) {
  const FaultPlan plan = sample_plan();
  const std::string path =
      ::testing::TempDir() + "/fault_plan_roundtrip.fplan";
  ASSERT_TRUE(plan.save(path).ok());
  const auto loaded = FaultPlan::load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(loaded.value().to_text(), plan.to_text());
  std::remove(path.c_str());
  EXPECT_FALSE(FaultPlan::load(path).ok());
}

TEST(FaultPlanRandom, DeterministicPerSeed) {
  FaultPlan::RandomOptions options;
  options.parked = {12, 13};
  EXPECT_EQ(FaultPlan::random(7, options).to_text(),
            FaultPlan::random(7, options).to_text());
  EXPECT_NE(FaultPlan::random(7, options).to_text(),
            FaultPlan::random(8, options).to_text());
}

TEST(FaultPlanRandom, EveryDisturbanceHealsBeforeTheTail) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    FaultPlan::RandomOptions options;
    options.events = 10;
    options.parked = {12, 13, 14};
    const FaultPlan plan = FaultPlan::random(seed, options);
    // The final tenth of the horizon is quiet so recovery can be asserted.
    EXPECT_LE(plan.last_slot(), options.horizon_slots * 9 / 10)
        << "seed " << seed;

    int stalled = 0;
    int broken_or_degraded = 0;
    int partitions = 0;
    std::size_t dead = 0;
    for (const FaultEvent& event : plan.events) {
      switch (event.kind) {
        case FaultKind::kStall: ++stalled; break;
        case FaultKind::kResume: --stalled; break;
        case FaultKind::kLinkDegrade:
        case FaultKind::kLinkBreak: ++broken_or_degraded; break;
        case FaultKind::kLinkHeal: --broken_or_degraded; break;
        case FaultKind::kPartition: ++partitions; break;
        case FaultKind::kHealPartition: --partitions; break;
        case FaultKind::kCrash:
        case FaultKind::kLeave: ++dead; break;
        default: break;
      }
    }
    EXPECT_EQ(stalled, 0) << "seed " << seed << ": unresumed stall";
    EXPECT_EQ(broken_or_degraded, 0) << "seed " << seed << ": unhealed link";
    EXPECT_EQ(partitions, 0) << "seed " << seed << ": unhealed partition";
    EXPECT_LE(dead, options.n_stations - options.min_alive)
        << "seed " << seed << ": plan kills below min_alive";
  }
}

TEST(FaultPlanRandom, FlapEventsLayerWithoutPerturbingPrimaries) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    FaultPlan::RandomOptions base;
    base.events = 6;
    FaultPlan::RandomOptions flappy = base;
    flappy.flap_events = 4;
    const FaultPlan plain = FaultPlan::random(seed, base);
    const FaultPlan with_flaps = FaultPlan::random(seed, flappy);

    // The flaps are generated in a second pass: stripping them must
    // recover the primary stream byte-for-byte (existing seeds keep their
    // plans when flap_events stays 0).
    FaultPlan stripped;
    std::size_t flaps = 0;
    for (const FaultEvent& event : with_flaps.events) {
      if (event.kind == FaultKind::kFlap) {
        ++flaps;
        continue;
      }
      stripped.add(event);
    }
    EXPECT_EQ(flaps, 4u) << "seed " << seed;
    EXPECT_EQ(stripped.to_text(), plain.to_text()) << "seed " << seed;

    for (const FaultEvent& event : with_flaps.events) {
      if (event.kind != FaultKind::kFlap) continue;
      // Transient-blip envelope: short periods, down window at most half a
      // period, adjacent ring link, finished before the quiet tail.
      EXPECT_GE(event.period_slots, 16) << "seed " << seed;
      EXPECT_LE(event.period_slots, 48) << "seed " << seed;
      EXPECT_GE(event.duty_pct, 25u) << "seed " << seed;
      EXPECT_LE(event.duty_pct, 50u) << "seed " << seed;
      EXPECT_GE(event.cycles, 1u) << "seed " << seed;
      EXPECT_EQ(event.b,
                static_cast<NodeId>((event.a + 1) % base.n_stations))
          << "seed " << seed;
      EXPECT_LE(event.slot + static_cast<std::int64_t>(event.cycles) *
                                 event.period_slots,
                base.horizon_slots * 9 / 10)
          << "seed " << seed;
    }
  }
}

TEST(FaultPlanRandom, ParkedJoinersJoinAtMostOnce) {
  FaultPlan::RandomOptions options;
  options.events = 20;
  options.parked = {12, 13};
  const FaultPlan plan = FaultPlan::random(3, options);
  int joins_12 = 0;
  int joins_13 = 0;
  for (const FaultEvent& event : plan.events) {
    if (event.kind != FaultKind::kJoin) continue;
    if (event.a == 12) ++joins_12;
    if (event.a == 13) ++joins_13;
  }
  EXPECT_LE(joins_12, 1);
  EXPECT_LE(joins_13, 1);
}

}  // namespace
}  // namespace wrt::fault
